module altroute

go 1.24
