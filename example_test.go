package altroute_test

import (
	"fmt"
	"log"

	"altroute"
)

// ExampleAttack forces an alternative route on a hand-built street grid:
// the victim drives from one corner to the other, and two blockages make
// the attacker's chosen 3rd-shortest route the only optimal one.
func ExampleAttack() {
	net := altroute.NewNetwork("demo")
	var nodes [2][3]altroute.NodeID
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			nodes[r][c] = net.AddIntersection(altroute.Point{
				Lat: 42.36 + 0.001*float64(r),
				Lon: -71.06 + 0.001*float64(c),
			})
		}
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if c+1 < 3 {
				if _, _, err := net.AddTwoWayRoad(nodes[r][c], nodes[r][c+1], altroute.Road{}); err != nil {
					log.Fatal(err)
				}
			}
			if r+1 < 2 {
				if _, _, err := net.AddTwoWayRoad(nodes[r][c], nodes[r+1][c], altroute.Road{}); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	problem, err := altroute.NewProblem(net, nodes[0][0], nodes[1][2], 3,
		altroute.WeightTime, altroute.CostUniform, 0)
	if err != nil {
		log.Fatal(err)
	}
	result, err := altroute.Attack(altroute.AlgGreedyPathCover, problem, altroute.Options{})
	if err != nil {
		log.Fatal(err)
	}

	altroute.Apply(net.Graph(), result.Removed)
	victim, _ := altroute.NewRouter(net.Graph()).ShortestPath(
		problem.Source, problem.Dest, net.Weight(altroute.WeightTime))
	fmt.Println("victim forced onto p*:", victim.SameEdges(problem.PStar))
	fmt.Println("blocked any segments:", len(result.Removed) > 0)
	// Output:
	// victim forced onto p*: true
	// blocked any segments: true
}

// ExampleBuildCity generates the paper's Chicago at 2% scale and prints
// its Table I style summary shape.
func ExampleBuildCity() {
	net, err := altroute.BuildCity(altroute.Chicago, 0.02, 1)
	if err != nil {
		log.Fatal(err)
	}
	s := altroute.Summarize(net)
	fmt.Println("hospitals:", len(net.POIsOfKind(altroute.KindHospital)))
	fmt.Println("grid-like:", altroute.Latticeness(net) > 0.8)
	fmt.Println("has intersections:", s.Nodes > 100)
	// Output:
	// hospitals: 4
	// grid-like: true
	// has intersections: true
}

// ExampleParseAlgorithm shows the accepted algorithm spellings.
func ExampleParseAlgorithm() {
	for _, s := range []string{"LP-PathCover", "greedypathcover", "GreedyEdge", "greedyeig"} {
		alg, err := altroute.ParseAlgorithm(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(alg)
	}
	// Output:
	// LP-PathCover
	// GreedyPathCover
	// GreedyEdge
	// GreedyEig
}
