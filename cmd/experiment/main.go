// Command experiment regenerates the paper's evaluation artifacts: Tables
// I-X as text tables and Figures 1-4 as SVG files.
//
// Table/city mapping (paper §III):
//
//	-table 1   city graph summaries (Table I)
//	-table 2   Boston,        weight LENGTH (Table II)
//	-table 3   Boston,        weight TIME   (Table III)
//	-table 4   San Francisco, weight LENGTH (Table IV)
//	-table 5   San Francisco, weight TIME   (Table V)
//	-table 6   Chicago,       weight LENGTH (Table VI)
//	-table 7   Chicago,       weight TIME   (Table VII)
//	-table 8   Los Angeles,   weight TIME   (Table VIII)
//	-table 9   cross-cost-type averages     (Table IX, from tables 2-8)
//	-table 10  path-rank thresholds         (Table X)
//	-all       everything above
//	-figures DIR  write Figures 1-4 SVGs into DIR
//
// The default -scale 0.05 keeps the whole suite in CPU-minutes territory;
// -scale 1 reproduces the paper's full Table I graph sizes. -rank scales
// the alternative-route rank (the paper uses 100) so small graphs stay
// feasible.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"altroute"
	"altroute/internal/citygen"
	"altroute/internal/experiment"
	"altroute/internal/metrics"
	"altroute/internal/roadnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiment:", err)
		os.Exit(1)
	}
}

// tableSpec maps a paper table number to its city and weight type.
type tableSpec struct {
	city   citygen.City
	weight roadnet.WeightType
}

var tableSpecs = map[int]tableSpec{
	2: {citygen.Boston, roadnet.WeightLength},
	3: {citygen.Boston, roadnet.WeightTime},
	4: {citygen.SanFrancisco, roadnet.WeightLength},
	5: {citygen.SanFrancisco, roadnet.WeightTime},
	6: {citygen.Chicago, roadnet.WeightLength},
	7: {citygen.Chicago, roadnet.WeightTime},
	8: {citygen.LosAngeles, roadnet.WeightTime},
}

// figureSpec maps a paper figure to its city/weight/cost combination.
type figureSpec struct {
	num    int
	city   citygen.City
	weight roadnet.WeightType
	cost   roadnet.CostType
}

var figureSpecs = []figureSpec{
	{1, citygen.Boston, roadnet.WeightLength, roadnet.CostWidth},
	{2, citygen.SanFrancisco, roadnet.WeightLength, roadnet.CostWidth},
	{3, citygen.Chicago, roadnet.WeightLength, roadnet.CostUniform},
	{4, citygen.LosAngeles, roadnet.WeightTime, roadnet.CostLanes},
}

type runner struct {
	scale   float64
	seed    int64
	rank    int
	sources int
	workers int
	overlay bool
	timeout time.Duration
	ctx     context.Context
	ckpt    *experiment.Checkpoint
	nets    map[citygen.City]*altroute.Network
}

func (r *runner) network(c citygen.City) (*altroute.Network, error) {
	if net, ok := r.nets[c]; ok {
		return net, nil
	}
	net, err := citygen.Build(c, r.scale, r.seed)
	if err != nil {
		return nil, err
	}
	r.nets[c] = net
	return net, nil
}

func (r *runner) spec(ts tableSpec) (experiment.Spec, error) {
	net, err := r.network(ts.city)
	if err != nil {
		return experiment.Spec{}, err
	}
	return experiment.Spec{
		Net:                net,
		WeightType:         ts.weight,
		Seed:               r.seed,
		PathRank:           r.rank,
		SourcesPerHospital: r.sources,
		Options:            altroute.Options{Timeout: r.timeout},
		Checkpoint:         r.ckpt,
		UseOverlay:         r.overlay,
	}, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	var (
		tableNum = fs.Int("table", 0, "table to regenerate (1-10); 0 with -all unset prints usage")
		all      = fs.Bool("all", false, "regenerate every table")
		figDir   = fs.String("figures", "", "write Figures 1-4 SVGs into this directory")
		scale    = fs.Float64("scale", 0.05, "city scale (1 = full Table I size)")
		seed     = fs.Int64("seed", 1, "random seed")
		rank     = fs.Int("rank", 0, "p* path rank (default: 100*scale, min 10)")
		sources  = fs.Int("sources", 10, "random sources per hospital")
		workers  = fs.Int("workers", 0, "parallel cell workers (0 = all cores, 1 = serial)")
		useOv    = fs.Bool("overlay", false, "route oracle rounds through the CRP partition-overlay metric (identical results, corridor-pruned searches)")
		timeout  = fs.Duration("timeout", 0, "per-attack deadline (0 = none); timed-out LP-PathCover attacks degrade to greedy covers")
		ckptPath = fs.String("checkpoint", "", "journal completed attacks to this file and resume from it")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiment: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiment: memprofile:", err)
			}
		}()
	}
	if *rank <= 0 {
		*rank = int(100 * *scale)
		if *rank < 20 {
			*rank = 20
		}
	}
	// SIGINT/SIGTERM cancel the run context: the table runners stop at their
	// next poll point, the partial table is rendered, and the checkpoint
	// (if any) is flushed so the next invocation resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := &runner{scale: *scale, seed: *seed, rank: *rank, sources: *sources,
		workers: *workers, overlay: *useOv, timeout: *timeout, ctx: ctx,
		nets: map[citygen.City]*altroute.Network{}}
	if *ckptPath != "" {
		ckpt, err := experiment.OpenCheckpoint(*ckptPath, experiment.Header{
			Seed: *seed, Scale: *scale, PathRank: *rank, Sources: *sources,
		})
		if err != nil {
			return err
		}
		defer ckpt.Close()
		r.ckpt = ckpt
	}

	if !*all && *tableNum == 0 && *figDir == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -table N, -all, or -figures DIR")
	}

	wanted := func(n int) bool { return *all || *tableNum == n }

	if wanted(1) {
		if err := printTableI(r); err != nil {
			return err
		}
	}

	var tables []experiment.Table
	needAggregates := wanted(9)
	for n := 2; n <= 8; n++ {
		if !wanted(n) && !needAggregates {
			continue
		}
		spec, err := r.spec(tableSpecs[n])
		if err != nil {
			return err
		}
		table, err := r.runTable(spec)
		if errors.Is(err, experiment.ErrInterrupted) {
			// Flush what we have: the partial table plus (via the deferred
			// Close) the checkpoint journal, then report the interruption.
			fmt.Printf("\n=== TABLE %s (paper Table %d) — PARTIAL, run interrupted ===\n", roman(n), n)
			table.Render(os.Stdout)
			return fmt.Errorf("table %d: %w", n, err)
		}
		if err != nil {
			return fmt.Errorf("table %d: %w", n, err)
		}
		tables = append(tables, table)
		if wanted(n) {
			fmt.Printf("\n=== TABLE %s (paper Table %d) ===\n", roman(n), n)
			table.Render(os.Stdout)
		}
	}
	if wanted(9) {
		fmt.Printf("\n=== TABLE IX ===\n")
		experiment.RenderTableIX(os.Stdout, experiment.Aggregate(tables))
	}
	if wanted(10) {
		if err := printTableX(r); err != nil {
			return err
		}
	}
	if *figDir != "" {
		if err := writeFigures(r, *figDir); err != nil {
			return err
		}
	}
	return nil
}

// runTable executes one table under the run context, spreading cells across
// workers unless the serial runner was requested.
func (r *runner) runTable(spec experiment.Spec) (experiment.Table, error) {
	if r.workers == 1 {
		return experiment.RunTableCtx(r.ctx, spec)
	}
	units, err := experiment.SampleUnits(spec.Net, spec)
	if err != nil {
		return experiment.Table{}, err
	}
	return experiment.RunTableOnUnitsParallelCtx(r.ctx, spec.Net, units, spec, r.workers)
}

func printTableI(r *runner) error {
	var rows []metrics.GraphSummary
	fmt.Println("\n=== TABLE I ===")
	fmt.Printf("(paper targets: Boston 11171/25715, SF 9659/~26900, Chicago 29299/78046, LA 51716/141992; scale %.3f)\n", r.scale)
	for _, c := range citygen.Cities() {
		net, err := r.network(c)
		if err != nil {
			return err
		}
		rows = append(rows, metrics.Summarize(net))
	}
	experiment.RenderTableI(os.Stdout, rows)
	return nil
}

func printTableX(r *runner) error {
	fmt.Printf("\n=== TABLE X ===\n")
	var rows []experiment.ThresholdRow
	// The paper's Table X covers Boston, San Francisco, and Chicago.
	for _, c := range []citygen.City{citygen.Boston, citygen.SanFrancisco, citygen.Chicago} {
		net, err := r.network(c)
		if err != nil {
			return err
		}
		row, err := experiment.RunThreshold(experiment.Spec{
			Net:                net,
			Seed:               r.seed,
			PathRank:           r.rank,
			SourcesPerHospital: r.sources,
		})
		if err != nil {
			return fmt.Errorf("threshold %v: %w", c, err)
		}
		rows = append(rows, row)
	}
	experiment.RenderTableX(os.Stdout, rows, r.rank)
	return nil
}

func writeFigures(r *runner, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range figureSpecs {
		net, err := r.network(f.city)
		if err != nil {
			return err
		}
		w := net.Weight(f.weight)
		hospital := net.POIsOfKind(citygen.KindHospital)[0]

		// Random source with the required rank, like the paper's examples.
		rng := rand.New(rand.NewSource(r.seed + int64(f.num)))
		var problem altroute.Problem
		found := false
		for i := 0; i < 400 && !found; i++ {
			src := altroute.NodeID(rng.Intn(net.NumIntersections()))
			if src == hospital.Node {
				continue
			}
			wt := roadnet.WeightLength
			if f.weight == roadnet.WeightTime {
				wt = roadnet.WeightTime
			}
			if p, err := altroute.NewProblem(net, src, hospital.Node, r.rank, wt, f.cost, 0); err == nil {
				problem, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("figure %d: no viable source", f.num)
		}
		res, err := altroute.Attack(altroute.AlgGreedyPathCover, problem, altroute.Options{Seed: r.seed})
		if err != nil {
			return fmt.Errorf("figure %d: %w", f.num, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("figure%d.svg", f.num))
		title := fmt.Sprintf("Fig %d: %s -> %s | weight %s | cost %s | %d cuts",
			f.num, f.city, hospital.Name, f.weight, f.cost, len(res.Removed))
		err = altroute.WriteSVGFile(path, altroute.Scene{
			Net: net, Source: problem.Source, Dest: problem.Dest,
			PStar: problem.PStar, Removed: res.Removed, Title: title,
		})
		if err != nil {
			return err
		}
		_ = w
		fmt.Println("wrote", path)
	}
	return nil
}

// roman renders 1-10 as a Roman numeral for table headers.
func roman(n int) string {
	numerals := []string{"", "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"}
	if n >= 0 && n < len(numerals) {
		return numerals[n]
	}
	return fmt.Sprint(n)
}
