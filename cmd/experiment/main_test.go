package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan struct{})
	var out []byte
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		close(done)
	}()
	runErr := f()
	w.Close()
	<-done
	os.Stdout = old
	return string(out), runErr
}

func TestRunTableI(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-table", "1", "-scale", "0.01", "-sources", "1"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"TABLE I", "Boston", "San Francisco", "Chicago", "Los Angeles"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleAttackTable(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-table", "3", "-scale", "0.02", "-sources", "2", "-rank", "6"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"TABLE III", "Boston, WEIGHT TYPE: TIME", "LP-PathCover", "GreedyEig", "UNIFORM", "WIDTH"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableX(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-table", "10", "-scale", "0.02", "-sources", "2", "-rank", "6"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "THRESHOLD TABLE") {
		t.Errorf("output missing threshold table:\n%s", out)
	}
}

func TestRunFigures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "figs")
	out, err := capture(t, func() error {
		return run([]string{"-figures", dir, "-scale", "0.02", "-sources", "1", "-rank", "6"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for i := 1; i <= 4; i++ {
		p := filepath.Join(dir, "figure"+string(rune('0'+i))+".svg")
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s", p)
		}
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-op invocation should error with usage")
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRoman(t *testing.T) {
	tests := map[int]string{1: "I", 4: "IV", 9: "IX", 10: "X", 42: "42"}
	for n, want := range tests {
		if got := roman(n); got != want {
			t.Errorf("roman(%d) = %q, want %q", n, got, want)
		}
	}
}
