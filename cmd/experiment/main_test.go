package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan struct{})
	var out []byte
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		close(done)
	}()
	runErr := f()
	w.Close()
	<-done
	os.Stdout = old
	return string(out), runErr
}

func TestRunTableI(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-table", "1", "-scale", "0.01", "-sources", "1"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"TABLE I", "Boston", "San Francisco", "Chicago", "Los Angeles"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleAttackTable(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-table", "3", "-scale", "0.02", "-sources", "2", "-rank", "6"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"TABLE III", "Boston, WEIGHT TYPE: TIME", "LP-PathCover", "GreedyEig", "UNIFORM", "WIDTH"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTableWorkers smoke-tests the -workers flag: the parallel runner
// must produce the same rendered table as the serial one on the same spec.
func TestRunTableWorkers(t *testing.T) {
	args := []string{"-table", "3", "-scale", "0.02", "-sources", "1", "-rank", "6"}
	serial, err := capture(t, func() error { return run(append(args, "-workers", "1")) })
	if err != nil {
		t.Fatalf("serial run: %v\n%s", err, serial)
	}
	parallel, err := capture(t, func() error { return run(append(args, "-workers", "2")) })
	if err != nil {
		t.Fatalf("parallel run: %v\n%s", err, parallel)
	}
	if !strings.Contains(parallel, "TABLE III") {
		t.Errorf("parallel output missing table:\n%s", parallel)
	}
	// The parallel runner guarantees bit-identical cells; averaged runtimes
	// differ run to run, so compare everything but the Runtime columns.
	if got, want := stripRuntimes(parallel), stripRuntimes(serial); got != want {
		t.Errorf("parallel table differs from serial:\n--- parallel\n%s\n--- serial\n%s", got, want)
	}
}

// stripRuntimes blanks the Runtime column values (first number of every
// cost-type group) so table comparisons ignore wall-clock noise.
func stripRuntimes(table string) string {
	lines := strings.Split(table, "\n")
	for i, line := range lines {
		cols := strings.Split(line, " | ")
		if len(cols) < 2 {
			continue
		}
		for j := 1; j < len(cols); j++ {
			fields := strings.Fields(cols[j])
			if len(fields) == 3 {
				fields[0] = "-"
				cols[j] = strings.Join(fields, " ")
			}
		}
		lines[i] = strings.Join(cols, " | ")
	}
	return strings.Join(lines, "\n")
}

// TestRunProfiles smoke-tests -cpuprofile/-memprofile: both files must
// exist and be non-empty after a run.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	out, err := capture(t, func() error {
		return run([]string{"-table", "1", "-scale", "0.01", "-sources", "1",
			"-cpuprofile", cpu, "-memprofile", mem})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("missing profile %s: %v", p, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunTableX(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-table", "10", "-scale", "0.02", "-sources", "2", "-rank", "6"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "THRESHOLD TABLE") {
		t.Errorf("output missing threshold table:\n%s", out)
	}
}

func TestRunFigures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "figs")
	out, err := capture(t, func() error {
		return run([]string{"-figures", dir, "-scale", "0.02", "-sources", "1", "-rank", "6"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for i := 1; i <= 4; i++ {
		p := filepath.Join(dir, "figure"+string(rune('0'+i))+".svg")
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s", p)
		}
	}
}

// TestRunCheckpointReplay smoke-tests -checkpoint: a second run against the
// same journal replays every attack (identical table, journaled runtimes and
// all) and a journal from different run parameters is refused.
func TestRunCheckpointReplay(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	args := []string{"-table", "3", "-scale", "0.02", "-sources", "1", "-rank", "6", "-workers", "1", "-checkpoint", ckpt}
	first, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("first run: %v\n%s", err, first)
	}
	if info, err := os.Stat(ckpt); err != nil || info.Size() == 0 {
		t.Fatalf("journal missing or empty after run: %v", err)
	}
	second, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatalf("replay run: %v\n%s", err, second)
	}
	if first != second {
		t.Errorf("replayed table differs from original:\n--- first\n%s\n--- second\n%s", first, second)
	}
	// A different seed means different units: the journal must be refused.
	bad := []string{"-table", "3", "-scale", "0.02", "-sources", "1", "-rank", "6", "-seed", "2", "-checkpoint", ckpt}
	if _, err := capture(t, func() error { return run(bad) }); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
}

// TestRunTimeoutFlag smoke-tests -timeout: an absurdly small per-attack
// deadline must not crash the run; failed attacks land in the failure
// columns instead.
func TestRunTimeoutFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-table", "3", "-scale", "0.02", "-sources", "1", "-rank", "6", "-workers", "1", "-timeout", "1ns"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "TABLE III") {
		t.Errorf("output missing table:\n%s", out)
	}
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-op invocation should error with usage")
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRoman(t *testing.T) {
	tests := map[int]string{1: "I", 4: "IV", 9: "IX", 10: "X", 42: "42"}
	for n, want := range tests {
		if got := roman(n); got != want {
			t.Errorf("roman(%d) = %q, want %q", n, got, want)
		}
	}
}
