package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: altroute
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkYenK100City 	       5	  97611618 ns/op	 2276921 B/op	   20469 allocs/op
BenchmarkTableII/LP-PathCover/UNIFORM-8         	       3	 123456789 ns/op	        12.50 ANER	        37.20 ACRE	  555555 B/op	    1234 allocs/op
BenchmarkDijkstraCity 	     100	    456789 ns/op
PASS
ok  	altroute	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	results, cpu := ParseBenchOutput(sampleOutput)
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}

	r := results[0]
	if r.Name != "BenchmarkYenK100City" || r.Iterations != 5 {
		t.Errorf("result 0 = %+v", r)
	}
	if r.NsPerOp != 97611618 || r.BytesPerOp != 2276921 || r.AllocsPerOp != 20469 {
		t.Errorf("result 0 columns = %+v", r)
	}

	r = results[1]
	if r.Name != "BenchmarkTableII/LP-PathCover/UNIFORM-8" {
		t.Errorf("result 1 name = %q", r.Name)
	}
	if r.Metrics["ANER"] != 12.5 || r.Metrics["ACRE"] != 37.2 {
		t.Errorf("result 1 metrics = %v", r.Metrics)
	}
	if r.NsPerOp != 123456789 {
		t.Errorf("result 1 ns/op = %v", r.NsPerOp)
	}

	r = results[2]
	if r.NsPerOp != 456789 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("result 2 (no -benchmem columns) = %+v", r)
	}
}

func TestParseBenchOutputEmpty(t *testing.T) {
	results, _ := ParseBenchOutput("PASS\nok  \taltroute\t0.1s\n")
	if len(results) != 0 {
		t.Errorf("parsed %d results from non-bench output", len(results))
	}
}

func TestAppendSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_2026-08-06.json")
	first := Snapshot{Date: "2026-08-06", Label: "a",
		Results: []Result{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 10}}}
	second := Snapshot{Date: "2026-08-06", Label: "b",
		Results: []Result{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 5}}}

	if err := AppendSnapshot(path, first); err != nil {
		t.Fatal(err)
	}
	if err := AppendSnapshot(path, second); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatalf("file is not a snapshot array: %v\n%s", err, raw)
	}
	if len(snaps) != 2 || snaps[0].Label != "a" || snaps[1].Label != "b" {
		t.Errorf("snapshots = %+v", snaps)
	}
	if snaps[1].Results[0].NsPerOp != 5 {
		t.Errorf("second snapshot results = %+v", snaps[1].Results)
	}
}

func TestGoTestArgsMemProfile(t *testing.T) {
	base := goTestArgs("Yen", "3x", 1, "", "./...")
	for _, a := range base {
		if a == "-memprofile" {
			t.Errorf("unexpected -memprofile in %v", base)
		}
	}
	if base[len(base)-1] != "./..." {
		t.Errorf("package must be the final argument: %v", base)
	}

	withProf := goTestArgs("Yen", "3x", 1, "mem.out", "./...")
	found := false
	for i, a := range withProf {
		if a == "-memprofile" {
			found = true
			if i+1 >= len(withProf) || withProf[i+1] != "mem.out" {
				t.Errorf("-memprofile not followed by path: %v", withProf)
			}
		}
	}
	if !found {
		t.Errorf("missing -memprofile in %v", withProf)
	}
	if withProf[len(withProf)-1] != "./..." {
		t.Errorf("package must stay the final argument: %v", withProf)
	}
}

func TestAppendSnapshotRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, []byte("{not an array}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendSnapshot(path, Snapshot{}); err == nil {
		t.Error("appending over a non-array file should error")
	}
}
