package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnaps writes a snapshot-array file and returns its path.
func writeSnaps(t *testing.T, dir, name string, snaps []Snapshot) string {
	t.Helper()
	raw, err := json.Marshal(snaps)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLatestResultsPicksNewestPerName(t *testing.T) {
	dir := t.TempDir()
	path := writeSnaps(t, dir, "old.json", []Snapshot{
		{Date: "2026-01-01", Results: []Result{
			{Name: "BenchmarkA", NsPerOp: 100},
			{Name: "BenchmarkB", NsPerOp: 50},
		}},
		{Date: "2026-01-02", Results: []Result{
			{Name: "BenchmarkA", NsPerOp: 80}, // newer snapshot wins
		}},
	})
	latest, err := LatestResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := latest["BenchmarkA"].NsPerOp; got != 80 {
		t.Errorf("BenchmarkA latest ns/op = %v, want 80", got)
	}
	if got := latest["BenchmarkB"].NsPerOp; got != 50 {
		t.Errorf("BenchmarkB latest ns/op = %v, want 50", got)
	}
}

func TestCompareResultsClassification(t *testing.T) {
	oldR := map[string]Result{
		"BenchmarkSteady":  {Name: "BenchmarkSteady", NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkSlower":  {Name: "BenchmarkSlower", NsPerOp: 100},
		"BenchmarkFaster":  {Name: "BenchmarkFaster", NsPerOp: 100},
		"BenchmarkRemoved": {Name: "BenchmarkRemoved", NsPerOp: 100},
	}
	newR := map[string]Result{
		"BenchmarkSteady": {Name: "BenchmarkSteady", NsPerOp: 105, AllocsPerOp: 12},
		"BenchmarkSlower": {Name: "BenchmarkSlower", NsPerOp: 130},
		"BenchmarkFaster": {Name: "BenchmarkFaster", NsPerOp: 40},
		"BenchmarkAdded":  {Name: "BenchmarkAdded", NsPerOp: 7},
	}
	rows := CompareResults(oldR, newR, 15)
	status := map[string]string{}
	for _, r := range rows {
		status[r.Name] = r.Status
	}
	want := map[string]string{
		"BenchmarkSteady":  "ok",
		"BenchmarkSlower":  "regression",
		"BenchmarkFaster":  "improvement",
		"BenchmarkRemoved": "gone",
		"BenchmarkAdded":   "new",
	}
	for name, w := range want {
		if status[name] != w {
			t.Errorf("%s status = %q, want %q", name, status[name], w)
		}
	}
	for _, r := range rows {
		if r.Name == "BenchmarkSteady" {
			if r.NsDeltaPct != 5 {
				t.Errorf("Steady ns delta = %v, want 5", r.NsDeltaPct)
			}
			if r.AllocsDelta != 20 {
				t.Errorf("Steady allocs delta = %v, want 20", r.AllocsDelta)
			}
		}
	}
}

func TestRunCompareExitsNonzeroOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnaps(t, dir, "old.json", []Snapshot{
		{Results: []Result{{Name: "BenchmarkHot", NsPerOp: 100}}},
	})
	newPath := writeSnaps(t, dir, "new.json", []Snapshot{
		{Results: []Result{{Name: "BenchmarkHot", NsPerOp: 200}}},
	})
	var out strings.Builder
	err := runCompare(oldPath, newPath, 15, &out)
	if err == nil {
		t.Fatalf("want regression error, got nil; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkHot") {
		t.Errorf("error %q does not name the regressed benchmark", err)
	}
	if !strings.Contains(out.String(), "regression") {
		t.Errorf("table does not mark the regression:\n%s", out.String())
	}
}

func TestRunCompareOKWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnaps(t, dir, "old.json", []Snapshot{
		{Results: []Result{{Name: "BenchmarkHot", NsPerOp: 100}}},
	})
	newPath := writeSnaps(t, dir, "new.json", []Snapshot{
		{Results: []Result{{Name: "BenchmarkHot", NsPerOp: 110}}},
	})
	var out strings.Builder
	if err := runCompare(oldPath, newPath, 15, &out); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, out.String())
	}
}
