// Command bench runs the repository's Benchmark* suite through `go test`
// and appends a machine-readable snapshot to a BENCH_<date>.json file, so
// the repo accumulates a performance trajectory that future changes can be
// compared against.
//
// Typical usage from the repository root:
//
//	go run ./cmd/bench -bench 'Yen|Dijkstra' -label after-astar
//	go run ./cmd/bench -bench BenchmarkTableII -benchtime 3x
//	go run ./cmd/bench -compare BENCH_2026-07-01.json BENCH_2026-08-07.json
//
// -compare diffs the latest result per benchmark between two snapshot
// files (ns/op and allocs/op deltas) and exits nonzero when any ns/op
// regression exceeds -threshold percent (default 15), so CI can gate or
// warn on committed baselines.
//
// Each invocation appends one snapshot (an entry in the file's JSON array)
// recording go/test environment, the benchmark filter, and per-benchmark
// ns/op, B/op, allocs/op, and any custom metrics (ANER, ACRE, ...). The
// output file is BENCH_<YYYY-MM-DD>.json in -out (default "."), one file
// per day, many snapshots per file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Snapshot is one bench run: environment plus per-benchmark results.
type Snapshot struct {
	Date      string   `json:"date"`
	Label     string   `json:"label,omitempty"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPU       string   `json:"cpu,omitempty"`
	Package   string   `json:"package,omitempty"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name including the -cpus suffix go test adds.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp, and AllocsPerOp mirror go test's standard
	// columns; BytesPerOp/AllocsPerOp are 0 when -benchmem metrics were
	// not reported for the line.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any custom b.ReportMetric values (ANER, ACRE, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		bench     = fs.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = fs.String("benchtime", "3x", "go test -benchtime value")
		count     = fs.Int("count", 1, "go test -count value")
		pkg       = fs.String("pkg", ".", "package pattern to benchmark")
		outDir    = fs.String("out", ".", "directory for the BENCH_<date>.json file")
		label     = fs.String("label", "", "free-form label stored with the snapshot")
		date      = fs.String("date", "", "override snapshot date (YYYY-MM-DD; default today)")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit (passed through to go test)")
		compare   = fs.Bool("compare", false, "compare two snapshot files (old.json new.json) instead of running benchmarks; exits nonzero on regression")
		threshold = fs.Float64("threshold", 15, "with -compare: ns/op regression tolerance in percent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		rest := fs.Args()
		if len(rest) != 2 {
			return fmt.Errorf("-compare wants exactly two files: old.json new.json")
		}
		return runCompare(rest[0], rest[1], *threshold, stdout)
	}

	cmd := exec.Command("go", goTestArgs(*bench, *benchtime, *count, *memProf, *pkg)...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	fmt.Fprint(stdout, string(raw))
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}

	results, cpu := ParseBenchOutput(string(raw))
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *bench)
	}
	day := *date
	if day == "" {
		day = time.Now().Format("2006-01-02") //lint:allow wallclock snapshot date stamp, not part of any measured result
	}
	snap := Snapshot{
		Date:      day,
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpu,
		Package:   *pkg,
		Bench:     *bench,
		Benchtime: *benchtime,
		Results:   results,
	}
	path := filepath.Join(*outDir, "BENCH_"+day+".json")
	if err := AppendSnapshot(path, snap); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "appended %d results to %s\n", len(results), path)
	return nil
}

// goTestArgs builds the `go test` invocation. The heap profile flag is
// forwarded verbatim: go test writes the profile itself after the benchmark
// run, the same file cmd/experiment's -memprofile produces for table runs.
func goTestArgs(bench, benchtime string, count int, memProfile, pkg string) []string {
	args := []string{"test", "-run", "^$",
		"-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count)}
	if memProfile != "" {
		args = append(args, "-memprofile", memProfile)
	}
	return append(args, pkg)
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)((?:\s+[0-9.eE+-]+\s+\S+)+)\s*$`)

// ParseBenchOutput extracts benchmark results and the reported cpu model
// from standard `go test -bench` output.
func ParseBenchOutput(out string) ([]Result, string) {
	var results []Result
	cpu := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimRight(line, "\r")
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iterations: n}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				// throughput column: store as a metric
				fallthrough
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	return results, cpu
}

// AppendSnapshot appends snap to the JSON array in path, creating the file
// when absent.
func AppendSnapshot(path string, snap Snapshot) error {
	var snaps []Snapshot
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &snaps); err != nil {
			return fmt.Errorf("%s: existing file is not a snapshot array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	snaps = append(snaps, snap)
	raw, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
