package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CompareRow is one benchmark's old-vs-new delta.
type CompareRow struct {
	Name        string
	OldNs       float64
	NewNs       float64
	NsDeltaPct  float64
	OldAllocs   float64
	NewAllocs   float64
	AllocsDelta float64
	// Status is "ok", "regression", "improvement", "new" (no old entry),
	// or "gone" (no new entry).
	Status string
}

// LatestResults reads a BENCH_*.json snapshot array and returns the most
// recent Result per benchmark name (later snapshots win).
func LatestResults(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snaps []Snapshot
	if err := json.Unmarshal(raw, &snaps); err != nil {
		return nil, fmt.Errorf("%s: not a snapshot array: %w", path, err)
	}
	latest := make(map[string]Result)
	for _, s := range snaps {
		for _, r := range s.Results {
			latest[r.Name] = r
		}
	}
	return latest, nil
}

// CompareResults diffs two latest-result maps. thresholdPct is the ns/op
// regression tolerance in percent; rows past it are marked "regression".
func CompareResults(oldR, newR map[string]Result, thresholdPct float64) []CompareRow {
	names := make(map[string]bool, len(oldR)+len(newR))
	for n := range oldR {
		names[n] = true
	}
	for n := range newR {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	rows := make([]CompareRow, 0, len(ordered))
	for _, name := range ordered {
		o, haveOld := oldR[name]
		n, haveNew := newR[name]
		row := CompareRow{Name: name}
		switch {
		case !haveOld:
			row.NewNs, row.NewAllocs = n.NsPerOp, n.AllocsPerOp
			row.Status = "new"
		case !haveNew:
			row.OldNs, row.OldAllocs = o.NsPerOp, o.AllocsPerOp
			row.Status = "gone"
		default:
			row.OldNs, row.NewNs = o.NsPerOp, n.NsPerOp
			row.OldAllocs, row.NewAllocs = o.AllocsPerOp, n.AllocsPerOp
			if o.NsPerOp > 0 {
				row.NsDeltaPct = 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp
			}
			if o.AllocsPerOp > 0 {
				row.AllocsDelta = 100 * (n.AllocsPerOp - o.AllocsPerOp) / o.AllocsPerOp
			}
			switch {
			case row.NsDeltaPct > thresholdPct:
				row.Status = "regression"
			case row.NsDeltaPct < -thresholdPct:
				row.Status = "improvement"
			default:
				row.Status = "ok"
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteCompareTable renders the rows and returns the regressed benchmark
// names (ns/op past the threshold).
func WriteCompareTable(w io.Writer, rows []CompareRow) []string {
	fmt.Fprintf(w, "%-52s %14s %14s %9s %9s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs Δ", "status")
	var regressed []string
	for _, r := range rows {
		old, nw, delta, allocs := "-", "-", "-", "-"
		if r.Status != "new" {
			old = fmt.Sprintf("%.0f", r.OldNs)
		}
		if r.Status != "gone" {
			nw = fmt.Sprintf("%.0f", r.NewNs)
		}
		if r.Status != "new" && r.Status != "gone" {
			delta = fmt.Sprintf("%+.1f%%", r.NsDeltaPct)
			allocs = fmt.Sprintf("%+.1f%%", r.AllocsDelta)
		}
		fmt.Fprintf(w, "%-52s %14s %14s %9s %9s %12s\n",
			r.Name, old, nw, delta, allocs, r.Status)
		if r.Status == "regression" {
			regressed = append(regressed, r.Name)
		}
	}
	return regressed
}

// runCompare implements `bench -compare old.json new.json`: diff the
// latest results per benchmark and fail (nonzero exit) when any ns/op
// regression exceeds thresholdPct.
func runCompare(oldPath, newPath string, thresholdPct float64, stdout io.Writer) error {
	oldR, err := LatestResults(oldPath)
	if err != nil {
		return err
	}
	newR, err := LatestResults(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "comparing %s -> %s (threshold %.0f%%)\n",
		filepath.Base(oldPath), filepath.Base(newPath), thresholdPct)
	regressed := WriteCompareTable(stdout, CompareResults(oldR, newR, thresholdPct))
	if len(regressed) > 0 {
		return fmt.Errorf("ns/op regression past %.0f%% in: %s",
			thresholdPct, strings.Join(regressed, ", "))
	}
	return nil
}
