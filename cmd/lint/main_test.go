package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"altroute/internal/lint"
)

// fixture dirs relative to this package; each must make the driver exit
// non-zero, which is the ISSUE's acceptance criterion for the testdata
// packages.
var fixtures = []string{
	"wallclock", "seededrand", "maporder", "floateq", "errcmp", "ctxflow",
	"lockorder", "snapgen", "goroleak", "suppress",
}

func fixtureDir(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", name)
}

func TestFixturesFailTheDriver(t *testing.T) {
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{fixtureDir(name)}, &out)
			if !errors.Is(err, errFindings) {
				t.Fatalf("want errFindings for %s, got %v (output: %s)", name, err, out.String())
			}
			if out.Len() == 0 {
				t.Fatal("non-zero exit must come with diagnostics on stdout")
			}
		})
	}
}

func TestJSONShapeAndDeterministicOrder(t *testing.T) {
	var first bytes.Buffer
	if err := run([]string{"-json", fixtureDir("ctxflow"), fixtureDir("errcmp")}, &first); !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}

	var rep lint.Report
	if err := json.Unmarshal(first.Bytes(), &rep); err != nil {
		t.Fatalf("output is not the documented JSON shape: %v\n%s", err, first.String())
	}
	if rep.Count == 0 || rep.Count != len(rep.Diagnostics) {
		t.Fatalf("count %d disagrees with %d diagnostics", rep.Count, len(rep.Diagnostics))
	}
	for _, d := range rep.Diagnostics {
		if d.Analyzer == "" || d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Fatalf("incomplete diagnostic: %+v", d)
		}
	}
	ordered := sort.SliceIsSorted(rep.Diagnostics, func(i, j int) bool {
		a, b := rep.Diagnostics[i], rep.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col <= b.Col
	})
	if !ordered {
		t.Fatalf("diagnostics not position-sorted: %+v", rep.Diagnostics)
	}

	// Byte-identical across runs and across pattern order: the report is
	// deterministic however the inputs are listed.
	var second bytes.Buffer
	if err := run([]string{"-json", fixtureDir("errcmp"), fixtureDir("ctxflow")}, &second); !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("report depends on pattern order:\n%s\nvs\n%s", first.String(), second.String())
	}
}

func TestCleanTreeExitsZero(t *testing.T) {
	dir := t.TempDir()
	src := "package clean\n\nfunc Add(a, b int) int { return a + b }\n"
	if err := os.WriteFile(filepath.Join(dir, "clean.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{dir + "/..."}, &out); err != nil {
		t.Fatalf("clean tree should pass, got %v (output: %s)", err, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean tree should print nothing, got %s", out.String())
	}
}

func TestWholeRepoIsClean(t *testing.T) {
	// The CI gate: `go run ./cmd/lint ./...` from the module root must
	// exit 0. Running it here keeps the guarantee under plain `go test`.
	var out bytes.Buffer
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join("..", "..")); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	if err := run([]string{"./..."}, &out); err != nil {
		t.Fatalf("repo has unsuppressed lint findings:\n%s", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil || errors.Is(err, errFindings) {
		t.Fatal("unknown flag should be a usage error")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing")}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing directory should error")
	}
	if err := run([]string{"-mode=nope", "."}, &bytes.Buffer{}); err == nil || errors.Is(err, errFindings) {
		t.Fatal("unknown mode should be a usage error")
	}
	if err := run([]string{"-tests", fixtureDir("wallclock")}, &bytes.Buffer{}); err == nil || errors.Is(err, errFindings) {
		t.Fatal("-tests without -mode=syntactic should be a usage error")
	}
}

// TestSyntacticMode exercises the heuristic-only path: the same fixture
// still fails, and -tests folds _test.go files into the load.
func TestSyntacticMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode=syntactic", fixtureDir("wallclock")}, &out); !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v (output: %s)", err, out.String())
	}

	dir := t.TempDir()
	src := "package clean\n\nfunc Add(a, b int) int { return a + b }\n"
	if err := os.WriteFile(filepath.Join(dir, "clean.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	testSrc := "package clean\n\nimport (\n\t\"testing\"\n\t\"time\"\n)\n\n" +
		"func TestTick(t *testing.T) { _ = time.Now() }\n"
	if err := os.WriteFile(filepath.Join(dir, "clean_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-mode=syntactic", dir}, &bytes.Buffer{}); err != nil {
		t.Fatalf("without -tests the _test.go finding must not load: %v", err)
	}
	if err := run([]string{"-mode=syntactic", "-tests", dir}, &bytes.Buffer{}); !errors.Is(err, errFindings) {
		t.Fatalf("-tests should surface the wallclock finding, got %v", err)
	}
}

// TestModeFieldInJSON pins the report's mode tag to the selected mode.
func TestModeFieldInJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json", "-mode=syntactic", fixtureDir("wallclock")}, &out); !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}
	var rep lint.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "syntactic" {
		t.Fatalf("mode field = %q, want syntactic", rep.Mode)
	}

	out.Reset()
	if err := run([]string{"-json", fixtureDir("wallclock")}, &out); !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "typed" {
		t.Fatalf("default mode field = %q, want typed", rep.Mode)
	}
}
