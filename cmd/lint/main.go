// Command lint runs the repo's determinism & concurrency invariant
// suite (internal/lint) over Go packages and fails the build on any
// unsuppressed finding. It is the CI gate behind the bit-identical
// parallel-Yen and checkpoint/resume guarantees.
//
// Two modes:
//
//   - typed (default): type-checks the module and runs the syntactic
//     analyzers plus the interprocedural ones (ctxflow, lockorder,
//     snapgen, goroleak) over the cross-package call graph.
//   - syntactic: AST-only, no type information. The only mode that can
//     lint _test.go files (-tests), since external _test packages cannot
//     share a type-checked unit with their package under test.
//
// Usage:
//
//	go run ./cmd/lint ./...                   # whole repo, typed suite
//	go run ./cmd/lint -mode=syntactic -tests ./...  # test files, AST suite
//	go run ./cmd/lint -json ./...             # machine-readable report
//	go run ./cmd/lint internal/core           # one package
//
// Suppress a finding on its own line (or the line above) with a reason:
//
//	start := time.Now() //lint:allow wallclock measuring Result.Runtime
//
// Exit status: 0 when clean, 1 on findings or malformed/unused allow
// directives, 2 on usage or I/O errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"altroute/internal/lint"
)

// errFindings distinguishes "the code is dirty" (exit 1) from driver
// failures (exit 2).
var errFindings = errors.New("lint: findings reported")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	jsonOut := fs.Bool("json", false, "emit a JSON report instead of text lines")
	withTests := fs.Bool("tests", false, "also lint _test.go files (syntactic mode only)")
	mode := fs.String("mode", "typed", "analyzer suite: typed or syntactic")
	fs.Usage = func() {}
	if err := fs.Parse(args); err != nil {
		return usageError(fs)
	}
	if *mode != "typed" && *mode != "syntactic" {
		return usageError(fs)
	}
	if *withTests && *mode != "syntactic" {
		return fmt.Errorf("-tests requires -mode=syntactic: %w", usageError(fs))
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var diags []lint.Diagnostic
	var err error
	if *mode == "typed" {
		diags, err = runTyped(patterns)
	} else {
		diags, err = runSyntactic(patterns, lint.LoadOptions{Tests: *withTests})
	}
	if err != nil {
		return err
	}

	if *jsonOut {
		if err := lint.WriteJSON(out, *mode, diags); err != nil {
			return err
		}
	} else if err := lint.WriteText(out, diags); err != nil {
		return err
	}
	if len(diags) > 0 {
		return fmt.Errorf("%w: %d", errFindings, len(diags))
	}
	return nil
}

// runSyntactic is the AST-only path: parse the pattern scope, run the
// syntactic suite.
func runSyntactic(patterns []string, opts lint.LoadOptions) ([]lint.Diagnostic, error) {
	fset := token.NewFileSet()
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		loaded, err := load(fset, pat, opts)
		if err != nil {
			return nil, err
		}
		for _, p := range loaded {
			if !seen[p.Dir] {
				seen[p.Dir] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	return lint.Run(pkgs, lint.All()), nil
}

// runTyped resolves each pattern against its enclosing module: packages
// inside a module type-check together (one Program per module root, so
// the call graph spans packages), while directories outside any module
// — or excluded from the module walk, like testdata fixtures —
// type-check standalone against the standard library. Diagnostics from
// all programs merge into one globally-sorted report.
func runTyped(patterns []string) ([]lint.Diagnostic, error) {
	fset := token.NewFileSet()
	progs := make(map[string]*lint.Program) // by module root
	type group struct {
		prog *lint.Program
		pkgs []*lint.Package
	}
	var groups []*group
	groupOf := make(map[*lint.Program]*group)
	claimed := make(map[*lint.Package]bool)
	add := func(prog *lint.Program, pkgs ...*lint.Package) {
		g := groupOf[prog]
		if g == nil {
			g = &group{prog: prog}
			groupOf[prog] = g
			groups = append(groups, g)
		}
		for _, p := range pkgs {
			if !claimed[p] {
				claimed[p] = true
				g.pkgs = append(g.pkgs, p)
			}
		}
	}

	for _, pat := range patterns {
		root, recursive := splitPattern(pat)
		if modRoot, modPath, ok := lint.FindModule(root); ok {
			prog := progs[modRoot]
			if prog == nil {
				var err error
				prog, err = lint.LoadTypedModule(fset, modRoot, modPath)
				if err != nil {
					return nil, err
				}
				progs[modRoot] = prog
			}
			matched, err := matchModulePkgs(prog, modRoot, root, recursive)
			if err != nil {
				return nil, err
			}
			if len(matched) > 0 {
				add(prog, matched...)
				continue
			}
			// Inside the module but not in its walk (testdata fixture):
			// fall through to the standalone path.
		}
		dirs, err := standaloneDirs(root, recursive)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			rel := dir
			if rel == "." {
				rel = ""
			}
			prog, err := lint.LoadTypedDir(fset, dir, rel)
			if err != nil {
				return nil, err
			}
			add(prog, prog.Packages()...)
		}
	}

	var diags []lint.Diagnostic
	for _, g := range groups {
		diags = append(diags, lint.Run(g.pkgs, lint.AllTyped(g.prog))...)
	}
	lint.SortDiagnostics(diags)
	return diags, nil
}

// matchModulePkgs filters a module program's packages to those under
// the pattern root.
func matchModulePkgs(prog *lint.Program, modRoot, root string, recursive bool) ([]*lint.Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	var out []*lint.Package
	for _, p := range prog.Packages() {
		switch {
		case p.Dir == rel:
			out = append(out, p)
		case recursive && (rel == "" || strings.HasPrefix(p.Dir, rel+"/")):
			out = append(out, p)
		}
	}
	return out, nil
}

// standaloneDirs enumerates the directories a non-module pattern
// covers, mirroring the walk's skip rules.
func standaloneDirs(root string, recursive bool) ([]string, error) {
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				if dir := filepath.Dir(path); !seen[dir] {
					seen[dir] = true
					dirs = append(dirs, dir)
				}
			}
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no Go files in %s", root)
	}
	return dirs, nil
}

// load resolves one pattern: "dir/..." walks recursively, anything else
// is a single directory. "./..." therefore lints the whole tree rooted
// at the current directory.
func load(fset *token.FileSet, pattern string, opts lint.LoadOptions) ([]*lint.Package, error) {
	root, recursive := splitPattern(pattern)
	if recursive {
		return lint.Walk(fset, root, opts)
	}
	rel := root
	if rel == "." {
		rel = ""
	}
	pkg, err := lint.LoadDir(fset, root, rel, opts)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no Go files in %s", root)
	}
	return []*lint.Package{pkg}, nil
}

// splitPattern separates "dir/..." into its root and recursion flag.
func splitPattern(pattern string) (root string, recursive bool) {
	if rest, ok := strings.CutSuffix(pattern, "..."); ok {
		root = filepath.Clean(strings.TrimSuffix(rest, "/"))
		if root == "" {
			root = "."
		}
		return root, true
	}
	return filepath.Clean(pattern), false
}

func usageError(fs *flag.FlagSet) error {
	var b strings.Builder
	b.WriteString("usage: lint [-json] [-mode=typed|syntactic] [-tests] [pattern ...]\n\nsyntactic analyzers:\n")
	for _, a := range lint.All() {
		fmt.Fprintf(&b, "  %-11s %s\n", a.Name(), a.Doc())
	}
	b.WriteString("\ntyped analyzers (-mode=typed, the default):\n")
	for _, name := range []string{"ctxflow", "lockorder", "snapgen", "goroleak"} {
		b.WriteString("  " + name + "\n")
	}
	b.WriteString("\n-tests requires -mode=syntactic (test files are never type-checked)\n")
	b.WriteString("suppress with: //lint:allow <analyzer> <reason>")
	return errors.New(b.String())
}
