// Command lint runs the repo's determinism & concurrency invariant
// suite (internal/lint) over Go packages and fails the build on any
// unsuppressed finding. It is the CI gate behind the bit-identical
// parallel-Yen and checkpoint/resume guarantees.
//
// Usage:
//
//	go run ./cmd/lint ./...          # whole repo, production sources
//	go run ./cmd/lint -tests ./...   # include _test.go files
//	go run ./cmd/lint -json ./...    # machine-readable report
//	go run ./cmd/lint internal/core  # one package
//
// Suppress a finding on its own line (or the line above) with a reason:
//
//	start := time.Now() //lint:allow wallclock measuring Result.Runtime
//
// Exit status: 0 when clean, 1 on findings or malformed/unused allow
// directives, 2 on usage or I/O errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"altroute/internal/lint"
)

// errFindings distinguishes "the code is dirty" (exit 1) from driver
// failures (exit 2).
var errFindings = errors.New("lint: findings reported")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	jsonOut := fs.Bool("json", false, "emit a JSON report instead of text lines")
	withTests := fs.Bool("tests", false, "also lint _test.go files")
	fs.Usage = func() {}
	if err := fs.Parse(args); err != nil {
		return usageError(fs)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	opts := lint.LoadOptions{Tests: *withTests}
	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		loaded, err := load(fset, pat, opts)
		if err != nil {
			return err
		}
		for _, p := range loaded {
			if !seen[p.Dir] {
				seen[p.Dir] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	diags := lint.Run(pkgs, lint.All())
	if *jsonOut {
		if err := lint.WriteJSON(out, diags); err != nil {
			return err
		}
	} else if err := lint.WriteText(out, diags); err != nil {
		return err
	}
	if len(diags) > 0 {
		return fmt.Errorf("%w: %d", errFindings, len(diags))
	}
	return nil
}

// load resolves one pattern: "dir/..." walks recursively, anything else
// is a single directory. "./..." therefore lints the whole tree rooted
// at the current directory.
func load(fset *token.FileSet, pattern string, opts lint.LoadOptions) ([]*lint.Package, error) {
	if rest, ok := strings.CutSuffix(pattern, "..."); ok {
		root := filepath.Clean(strings.TrimSuffix(rest, "/"))
		if root == "" {
			root = "."
		}
		return lint.Walk(fset, root, opts)
	}
	dir := filepath.Clean(pattern)
	rel := dir
	if rel == "." {
		rel = ""
	}
	pkg, err := lint.LoadDir(fset, dir, rel, opts)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return []*lint.Package{pkg}, nil
}

func usageError(fs *flag.FlagSet) error {
	var b strings.Builder
	b.WriteString("usage: lint [-json] [-tests] [pattern ...]\n\nanalyzers:\n")
	for _, a := range lint.All() {
		fmt.Fprintf(&b, "  %-11s %s\n", a.Name(), a.Doc())
	}
	b.WriteString("\nsuppress with: //lint:allow <analyzer> <reason>")
	return errors.New(b.String())
}
