// Command citygen generates a synthetic city street network, prints its
// Table I summary, and optionally writes it out as OSM XML for use with
// other tooling (or for re-loading via attack -osm).
//
// Examples:
//
//	citygen -city chicago -scale 0.1 -out chicago.osm
//	citygen -city boston -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"altroute"
	"altroute/internal/citygen"
	"altroute/internal/metrics"
	"altroute/internal/osm"
	"altroute/internal/roadnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "citygen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("citygen", flag.ContinueOnError)
	var (
		cityName = fs.String("city", "boston", "city preset: boston, sanfrancisco, chicago, losangeles")
		scale    = fs.Float64("scale", 0.05, "scale (1 = full Table I size)")
		seed     = fs.Int64("seed", 1, "generator seed")
		outPath  = fs.String("out", "", "write the network as OSM XML to this path")
		stats    = fs.Bool("stats", false, "print extended topology statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	city, err := altroute.ParseCity(*cityName)
	if err != nil {
		return err
	}
	net, err := altroute.BuildCity(city, *scale, *seed)
	if err != nil {
		return err
	}

	s := metrics.Summarize(net)
	fmt.Printf("%-15s nodes %d, edges %d, avg node degree %.2f\n", s.Name, s.Nodes, s.Edges, s.AvgNodeDegree)
	target := citygen.TableI(city)
	fmt.Printf("paper target (scale %.3f): nodes %.0f, edges %.0f, avg degree %.2f\n",
		*scale, float64(target.Nodes)**scale, float64(target.Edges)**scale, target.AvgDegree)

	if *stats {
		fmt.Printf("latticeness: %.3f (orientation entropy %.3f nats)\n",
			metrics.Latticeness(net), metrics.OrientationEntropy(net, 36))
		classCount := map[roadnet.RoadClass]int{}
		for e := 0; e < net.NumSegments(); e++ {
			id := altroute.EdgeID(e)
			if !net.Graph().EdgeDisabled(id) {
				classCount[net.Road(id).Class]++
			}
		}
		fmt.Println("segments by class:")
		for _, c := range []roadnet.RoadClass{
			roadnet.ClassMotorway, roadnet.ClassTrunk, roadnet.ClassPrimary,
			roadnet.ClassSecondary, roadnet.ClassTertiary, roadnet.ClassResidential,
			roadnet.ClassService, roadnet.ClassUnclassified,
		} {
			if classCount[c] > 0 {
				fmt.Printf("  %-13s %7d\n", c, classCount[c])
			}
		}
		fmt.Println("hospitals:")
		for _, h := range net.POIsOfKind(citygen.KindHospital) {
			fmt.Printf("  %-40s node %d at %v\n", h.Name, h.Node, h.Loc)
		}
	}

	if *outPath != "" {
		if err := osm.WriteFile(*outPath, net); err != nil {
			return err
		}
		fmt.Println("wrote", *outPath)
	}
	return nil
}
