package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"altroute/internal/osm"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunStatsAndExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "city.osm")
	text, err := capture(t, func() error {
		return run([]string{"-city", "sanfrancisco", "-scale", "0.02", "-stats", "-out", out})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"San Francisco", "latticeness", "segments by class", "hospitals", "wrote"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// The exported file must re-parse.
	net, err := osm.ParseFile(out, osm.ParseOptions{})
	if err != nil {
		t.Fatalf("exported OSM does not parse: %v", err)
	}
	if net.NumSegments() == 0 {
		t.Error("exported OSM has no segments")
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad city", []string{"-city", "metropolis"}},
		{"unknown flag", []string{"-whatever"}},
		{"bad out path", []string{"-city", "boston", "-scale", "0.02", "-out", "/nonexistent/dir/x.osm"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}
