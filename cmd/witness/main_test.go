package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"altroute/internal/audit"
)

// syncWriter is a goroutine-safe capture of run's stdout.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`witness: listening on (\S+)`)

// startWitness launches run() on an ephemeral port and returns the base
// URL and a channel carrying run's return value.
func startWitness(t *testing.T, ctx context.Context, file string) (string, <-chan error, *syncWriter) {
	t.Helper()
	out := &syncWriter{}
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, []string{"-file", file, "-addr", "127.0.0.1:0"}, out) }()
	deadline := time.Now().Add(30 * time.Second) //lint:allow wallclock test polling deadline
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], errc, out
		}
		select {
		case err := <-errc:
			t.Fatalf("run exited before listening: %v\noutput: %s", err, out.String())
		default:
		}
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatalf("witness never listened; output: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWitnessServeAnchorRoundTrip drives the daemon end to end: anchors
// submitted over HTTP chain into the file, equivocation is refused with a
// 409, health and listing endpoints report the chain, and SIGTERM-style
// cancellation exits cleanly.
func TestWitnessServeAnchorRoundTrip(t *testing.T) {
	file := filepath.Join(t.TempDir(), "anchors.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, errc, out := startWitness(t, ctx, file)

	hw := &audit.HTTPWitness{URL: base + "/v1/witness/anchor"}
	stored, err := hw.Anchor(audit.Anchor{Batch: 0, Records: 2, SealHash: "aa", Root: "bb"})
	if err != nil || stored.Hash == "" || stored.Index != 0 {
		t.Fatalf("anchor = %+v, %v", stored, err)
	}
	// Idempotent re-anchor; then a contradictory history for the same
	// batch must come back as equivocation (the daemon's 409).
	if again, err := hw.Anchor(audit.Anchor{Batch: 0, Records: 2, SealHash: "aa", Root: "bb"}); err != nil || again.Hash != stored.Hash {
		t.Fatalf("re-anchor = %+v, %v", again, err)
	}
	if _, err := hw.Anchor(audit.Anchor{Batch: 0, Records: 2, SealHash: "cc", Root: "bb"}); !errors.Is(err, audit.ErrWitnessEquivocation) {
		t.Fatalf("forked anchor = %v, want ErrWitnessEquivocation", err)
	}

	resp, err := http.Get(base + "/v1/witness/anchors")
	if err != nil {
		t.Fatal(err)
	}
	var anchors []audit.Anchor
	if err := json.NewDecoder(resp.Body).Decode(&anchors); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(anchors) != 1 || anchors[0].Hash != stored.Hash {
		t.Fatalf("anchors = %+v", anchors)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Anchors int    `json:"anchors"`
		Head    string `json:"head"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Anchors != 1 || health.Head != stored.Hash {
		t.Fatalf("healthz = %+v", health)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run never exited; output: %s", out.String())
	}
	if !strings.Contains(out.String(), "witness: exiting") {
		t.Fatalf("missing farewell; output: %s", out.String())
	}

	// The file the daemon left behind is a verifying chain: -list prints
	// it, and a fresh daemon resumes from it.
	lout := &syncWriter{}
	if err := run(context.Background(), []string{"-file", file, "-list"}, lout); err != nil {
		t.Fatalf("-list = %v", err)
	}
	if !strings.Contains(lout.String(), "verifies: 1 anchors") || !strings.Contains(lout.String(), "batch 0") {
		t.Fatalf("-list output: %s", lout.String())
	}
}

// TestWitnessListExitContract pins the offline modes: a missing file is
// ErrNoLedger (exit 2 — nothing to verify), a tampered file is a chain
// violation (exit 1), and -file is required.
func TestWitnessListExitContract(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-created.jsonl")
	if err := run(context.Background(), []string{"-file", missing, "-list"}, &syncWriter{}); !errors.Is(err, audit.ErrNoLedger) {
		t.Fatalf("-list on missing file = %v, want ErrNoLedger", err)
	}
	if err := run(context.Background(), []string{"-list"}, &syncWriter{}); err == nil {
		t.Fatal("-list without -file succeeded")
	}

	file := filepath.Join(t.TempDir(), "anchors.jsonl")
	w, err := audit.OpenFileWitness(file, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Anchor(audit.Anchor{Batch: uint64(i), Records: uint64(2 * (i + 1)), SealHash: fmt.Sprintf("s%d", i), Root: "r"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := &syncWriter{}
	if err := run(context.Background(), []string{"-file", file, "-list"}, out); err != nil {
		t.Fatalf("-list = %v", err)
	}
	if !strings.Contains(out.String(), "verifies: 3 anchors") {
		t.Fatalf("-list output: %s", out.String())
	}

	// One flipped byte breaks the chain: exit 1, not 2.
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	data[15] ^= 0x01
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(context.Background(), []string{"-file", file, "-list"}, &syncWriter{})
	if err == nil || errors.Is(err, audit.ErrNoLedger) {
		t.Fatalf("-list on tampered file = %v, want a chain violation", err)
	}
}
