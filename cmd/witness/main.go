// Command witness runs a standalone audit witness: an append-only,
// hash-chained anchor store on a failure domain separate from the ledger
// it vouches for. A serve instance started with -audit-witness-url
// periodically POSTs its latest seal root here; once an anchor lands,
// rolling the ledger's tail back past it is detectable offline
// (`serve -verify-audit DIR -witness FILE` over a copy of the witness
// file), and submitting a contradictory history for an anchored batch is
// refused loudly as equivocation.
//
// Endpoints:
//
//	POST /v1/witness/anchor   chain one anchor (409 on equivocation)
//	GET  /v1/witness/anchors  the full anchor chain as JSON
//	GET  /healthz             liveness + anchor count and chain head
//
// Offline, `witness -file FILE -list` verifies the anchor chain and
// prints it without serving: exit 1 on a broken chain, exit 2 when the
// file does not exist.
//
//	witness -file anchors.jsonl -addr :8090
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"altroute/internal/audit"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "witness:", err)
		code := 1
		if errors.Is(err, audit.ErrNoLedger) {
			code = 2
		}
		os.Exit(code)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("witness", flag.ContinueOnError)
	var (
		file = fs.String("file", "", "append-only witness anchor file (required)")
		addr = fs.String("addr", ":8090", "listen address")
		list = fs.Bool("list", false, "verify the anchor chain and print it instead of serving")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return errors.New("-file is required")
	}
	if *list {
		return listAnchors(*file, out)
	}

	w, err := audit.OpenFileWitness(*file, nil)
	if err != nil {
		return err
	}
	defer w.Close()
	fmt.Fprintf(out, "witness: %s holds %d anchors\n", *file, len(w.Anchors()))

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/witness/anchor", func(rw http.ResponseWriter, r *http.Request) {
		var a audit.Anchor
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			httpError(rw, http.StatusBadRequest, fmt.Errorf("decoding anchor: %w", err))
			return
		}
		if a.SealHash == "" || a.Root == "" {
			httpError(rw, http.StatusBadRequest, errors.New("anchor needs seal_hash and root"))
			return
		}
		stored, err := w.Anchor(a)
		switch {
		case errors.Is(err, audit.ErrWitnessEquivocation):
			httpError(rw, http.StatusConflict, err)
		case err != nil:
			httpError(rw, http.StatusServiceUnavailable, err)
		default:
			writeJSON(rw, stored)
		}
	})
	mux.HandleFunc("GET /v1/witness/anchors", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, w.Anchors())
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		anchors := w.Anchors()
		head := ""
		if n := len(anchors); n > 0 {
			head = anchors[n-1].Hash
		}
		writeJSON(rw, map[string]any{"status": "ok", "anchors": len(anchors), "head": head})
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "witness: listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second, ReadTimeout: 30 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(out, "witness: exiting")
	return nil
}

// listAnchors is the -list mode: verify the chain read-only and print
// each anchor, one line per seal witnessed.
func listAnchors(path string, out io.Writer) error {
	anchors, torn, err := audit.LoadWitnessFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "witness: %s verifies: %d anchors\n", path, len(anchors))
	for _, a := range anchors {
		fmt.Fprintf(out, "witness: anchor %d: batch %d, %d records, seal %s, root %s\n",
			a.Index, a.Batch, a.Records, a.SealHash, a.Root)
	}
	if torn {
		fmt.Fprintln(out, "witness: torn final line (healed at the next open)")
	}
	return nil
}

func httpError(rw http.ResponseWriter, status int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(v)
}
