package main

import (
	"altroute/internal/citygen"
	"altroute/internal/geo"
	"altroute/internal/osm"
	"altroute/internal/roadnet"
)

// writeTestCity generates a small synthetic city and saves it as OSM XML,
// exercising the -osm load path end to end.
func writeTestCity(path string) error {
	net, err := citygen.Build(citygen.Chicago, 0.02, 2)
	if err != nil {
		return err
	}
	return osm.WriteFile(path, net)
}

// writeLineCity writes a 10-node two-way line street with a hospital: the
// unique-path worst case for alternative-route attacks.
func writeLineCity(path string) error {
	net := roadnet.NewNetwork("line")
	prev := net.AddIntersection(geo.Point{Lat: 42, Lon: -71})
	for i := 1; i < 10; i++ {
		cur := net.AddIntersection(geo.Point{Lat: 42 + float64(i)*0.001, Lon: -71})
		if _, _, err := net.AddTwoWayRoad(prev, cur, roadnet.Road{}); err != nil {
			return err
		}
		prev = cur
	}
	if _, err := net.AttachPOI("Line General", "hospital", geo.Point{Lat: 42.0051, Lon: -71.0002}); err != nil {
		return err
	}
	return osm.WriteFile(path, net)
}
