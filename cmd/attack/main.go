// Command attack runs a single alternative route-based attack end to end:
// build (or load) a city, pick a source and a hospital destination, choose
// the alternative route p* by path rank, compute the minimum-cost edge cut
// with the chosen algorithm, and report (optionally rendering the paper's
// figure style as SVG).
//
// Examples:
//
//	attack -city boston -alg GreedyPathCover -rank 50 -weight TIME -cost WIDTH
//	attack -city chicago -scale 0.1 -svg out.svg
//	attack -osm extract.osm -alg LP-PathCover
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"altroute"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	var (
		cityName  = fs.String("city", "boston", "city preset: boston, sanfrancisco, chicago, losangeles")
		osmPath   = fs.String("osm", "", "load an OSM XML extract instead of a synthetic city")
		scale     = fs.Float64("scale", 0.05, "synthetic city scale (1 = full Table I size)")
		seed      = fs.Int64("seed", 1, "random seed (city generation and source choice)")
		source    = fs.Int("source", -1, "source node ID (-1 = random)")
		hospital  = fs.Int("hospital", 0, "hospital index 0-3")
		rank      = fs.Int("rank", 100, "path rank of the alternative route p*")
		weightStr = fs.String("weight", "TIME", "attacker objective: LENGTH or TIME")
		costStr   = fs.String("cost", "UNIFORM", "removal cost model: UNIFORM, LANES, or WIDTH")
		algStr    = fs.String("alg", "GreedyPathCover", "algorithm: LP-PathCover, GreedyPathCover, GreedyEdge, GreedyEig")
		budget    = fs.Float64("budget", 0, "removal budget (0 = unlimited)")
		svgPath   = fs.String("svg", "", "write a Figures 1-4 style SVG to this path")
		maxTries  = fs.Int("tries", 200, "attempts to find a random source with the requested rank")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	wt, err := altroute.ParseWeightType(*weightStr)
	if err != nil {
		return err
	}
	ct, err := altroute.ParseCostType(*costStr)
	if err != nil {
		return err
	}
	alg, err := altroute.ParseAlgorithm(*algStr)
	if err != nil {
		return err
	}

	var net *altroute.Network
	if *osmPath != "" {
		f, err := os.Open(*osmPath)
		if err != nil {
			return err
		}
		defer f.Close()
		net, err = altroute.ParseOSM(f, altroute.OSMOptions{
			Name: *osmPath, AttachHospitals: true, LargestComponent: true,
		})
		if err != nil {
			return err
		}
	} else {
		city, err := altroute.ParseCity(*cityName)
		if err != nil {
			return err
		}
		net, err = altroute.BuildCity(city, *scale, *seed)
		if err != nil {
			return err
		}
	}
	s := altroute.Summarize(net)
	fmt.Printf("network: %s (%d nodes, %d edges, avg degree %.2f, latticeness %.2f)\n",
		s.Name, s.Nodes, s.Edges, s.AvgNodeDegree, altroute.Latticeness(net))

	hospitals := net.POIsOfKind(altroute.KindHospital)
	if len(hospitals) == 0 {
		return fmt.Errorf("network has no hospitals")
	}
	if *hospital < 0 || *hospital >= len(hospitals) {
		return fmt.Errorf("hospital index %d out of range [0, %d)", *hospital, len(hospitals))
	}
	dest := hospitals[*hospital]
	fmt.Printf("destination: %s (node %d)\n", dest.Name, dest.Node)

	var problem altroute.Problem
	if *source >= 0 {
		problem, err = altroute.NewProblem(net, altroute.NodeID(*source), dest.Node, *rank, wt, ct, *budget)
		if err != nil {
			return err
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		found := false
		for i := 0; i < *maxTries && !found; i++ {
			src := altroute.NodeID(rng.Intn(net.NumIntersections()))
			if src == dest.Node {
				continue
			}
			if p, err := altroute.NewProblem(net, src, dest.Node, *rank, wt, ct, *budget); err == nil {
				problem, found = p, true
			}
		}
		if !found {
			return fmt.Errorf("no source with %d simple paths to %s found in %d tries (lower -rank or raise -scale)",
				*rank, dest.Name, *maxTries)
		}
	}
	fmt.Printf("source: node %d\n", problem.Source)
	fmt.Printf("p*: rank %d, %d hops, length %.2f (%s)\n", *rank, problem.PStar.Hops(), problem.PStar.Length, wt)

	res, err := altroute.Attack(alg, problem, altroute.Options{Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s\n", res.Algorithm)
	fmt.Printf("removed %d edges, total cost %.2f (%s), %d constraint paths, runtime %s\n",
		len(res.Removed), res.TotalCost, ct, res.ConstraintPaths, res.Runtime)
	for _, e := range res.Removed {
		arc := net.Graph().Arc(e)
		r := net.Road(e)
		fmt.Printf("  cut edge %6d  %6d -> %-6d  %-12s %-24q length %7.1fm cost %.2f\n",
			e, arc.From, arc.To, r.Class, r.Name, r.LengthM, net.Cost(ct)(e))
	}

	if *svgPath != "" {
		scene := altroute.Scene{
			Net:     net,
			Source:  problem.Source,
			Dest:    problem.Dest,
			PStar:   problem.PStar,
			Removed: res.Removed,
			Title: fmt.Sprintf("%s -> %s | %s | weight %s cost %s | %d cuts",
				s.Name, dest.Name, res.Algorithm, wt, ct, len(res.Removed)),
		}
		if err := altroute.WriteSVGFile(*svgPath, scene); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	return nil
}
