package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f while capturing stdout.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunSyntheticCity(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "out.svg")
	out, err := capture(t, func() error {
		return run([]string{
			"-city", "chicago", "-scale", "0.02", "-seed", "3",
			"-rank", "8", "-alg", "GreedyPathCover", "-cost", "LANES",
			"-svg", svg,
		})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"network: Chicago", "destination:", "p*: rank 8", "removed", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(svg); err != nil {
		t.Errorf("SVG not written: %v", err)
	}
}

func TestRunExplicitSource(t *testing.T) {
	// Source 0 may or may not have rank-6 paths; accept either a clean run
	// or a rank-unavailable error, but never a panic or flag error.
	_, err := capture(t, func() error {
		return run([]string{
			"-city", "boston", "-scale", "0.02", "-seed", "3",
			"-rank", "6", "-source", "0",
		})
	})
	if err != nil && !strings.Contains(err.Error(), "rank") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad city", []string{"-city", "gotham"}},
		{"bad weight", []string{"-weight", "FUEL"}},
		{"bad cost", []string{"-cost", "GOLD"}},
		{"bad algorithm", []string{"-alg", "quantum"}},
		{"bad hospital index", []string{"-city", "boston", "-scale", "0.02", "-hospital", "99"}},
		{"unknown flag", []string{"-bogus"}},
		{"missing osm file", []string{"-osm", "/nonexistent.osm"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

func TestRunImpossibleRankFailsCleanly(t *testing.T) {
	// A line network has exactly one simple path per pair, so rank > 1 is
	// unavailable and every sampling attempt exhausts instantly. (A grid
	// city would instead make Yen enumerate all requested paths.)
	path := filepath.Join(t.TempDir(), "line.osm")
	if err := writeLineCity(path); err != nil {
		t.Fatal(err)
	}
	_, err := capture(t, func() error {
		return run([]string{"-osm", path, "-rank", "50", "-tries", "5"})
	})
	if err == nil || !strings.Contains(err.Error(), "no source") {
		t.Fatalf("err = %v, want sampling failure", err)
	}
}

func TestRunFromOSMFile(t *testing.T) {
	// Generate a city, write it as OSM, and attack it through -osm.
	dir := t.TempDir()
	osmPath := filepath.Join(dir, "city.osm")
	if err := writeTestCity(osmPath); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"-osm", osmPath, "-rank", "5", "-seed", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "removed") {
		t.Errorf("output missing attack result:\n%s", out)
	}
}
