// Command serve runs the attack pipeline as a long-running HTTP/JSON
// service over one or more street networks (synthetic city presets, or a
// single OSM extract). Each city is preloaded into a registry shard —
// frozen CSR snapshots per weight type plus reverse potentials per
// hospital — shared read-only by every worker; requests route by their
// "city" field.
//
// Endpoints:
//
//	POST /v1/attack             one s→d attack               (server.AttackRequest)
//	POST /v1/batch              one experiment table, resumable (server.BatchRequest)
//	GET  /v1/audit/{seq}/proof  Merkle inclusion proof for an audited result
//	GET  /healthz               liveness + cache/coalescing/per-city/ledger stats
//	GET  /readyz                readiness + load/breaker stats (503 while draining)
//
// Robustness behaviour (see internal/server): bounded admission queue
// with Retry-After rejections, load shedding by estimated cost, an LP
// circuit breaker that degrades to greedy covers, per-request panic
// isolation, and graceful drain on SIGINT/SIGTERM — in-flight batches
// checkpoint to -checkpoint-dir and resume on re-submission, and the
// process exits 0 after a clean drain.
//
// Performance behaviour: concurrent identical attack requests coalesce
// into one computation, and results are cached in a memory-bounded LRU
// keyed by shard generation (-cache-mb; 0 disables), so a hot working
// set serves from memory at near-zero admission cost.
//
// Auditing (-audit-dir): every served attack result and batch unit is
// hash-chained into a tamper-evident ledger, group-committed with one
// fsync per Merkle batch, rotated into sealed segments at
// -audit-rotate-bytes, and compacted into a Merkle-checkpoint stub past
// -audit-compact-keep segments. Seal roots are periodically anchored to
// an external witness (-audit-witness FILE, or -audit-witness-url URL
// pointing at another instance's POST /v1/witness/anchor; serve one
// with -witness-file). A server restarted over an altered ledger
// refuses to serve; `serve -verify-audit DIR [-witness FILE]` checks a
// ledger offline — exit 1 on the first broken record or rolled-back
// tail, exit 2 when the directory holds no ledger at all.
//
//	go run ./cmd/serve -city boston,chicago -scale 0.05 -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"altroute/internal/audit"
	"altroute/internal/citygen"
	"altroute/internal/faultinject"
	"altroute/internal/osm"
	"altroute/internal/registry"
	"altroute/internal/roadnet"
	"altroute/internal/server"
)

// chaosInjector is a test seam: when non-nil it is attached to the server
// config so the drain tests can wedge the pipeline deterministically. It is
// never set in production builds.
var chaosInjector *faultinject.Injector

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a run error to the process exit status. A missing ledger
// gets its own code so scripts can tell "nothing to verify" (a fresh or
// wrong directory — exit 2) from "verification failed" (tampering or
// corruption — exit 1).
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, audit.ErrNoLedger):
		return 2
	default:
		return 1
	}
}

// run builds the network, starts the HTTP server, and blocks until ctx is
// cancelled (SIGINT/SIGTERM), then drains gracefully. It returns nil on a
// clean drain so the process exits 0.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		city      = fs.String("city", "boston", "comma-separated city presets to serve (boston, san-francisco, chicago, los-angeles); the first is the default city")
		scale     = fs.Float64("scale", 0.05, "city scale (1 = full Table I size)")
		seed      = fs.Int64("seed", 1, "city generation seed")
		osmFile   = fs.String("osm", "", "serve this OSM XML extract instead of synthetic cities")
		cacheMB   = fs.Int64("cache-mb", 64, "result + path-set cache budget in MiB (0 disables caching)")
		capacity  = fs.Int("capacity", 0, "admission budget in cost units (0 = 4*GOMAXPROCS)")
		useOv     = fs.Bool("overlay", false, "preload a CRP partition-overlay metric per shard weight type (corridor-pruned oracle searches, identical results)")
		maxQueue  = fs.Int("queue", 32, "max queued requests before 503 + Retry-After")
		maxUnits  = fs.Int("max-units", 0, "per-request cost-unit budget; larger requests are shed (0 = capacity)")
		unitWork  = fs.Float64("unit-work", 2e6, "estimated edge relaxations per admission unit")
		timeout   = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTO     = fs.Duration("max-timeout", 5*time.Minute, "cap on client-supplied deadlines")
		brkThresh = fs.Int("breaker-threshold", 3, "consecutive LP timeouts/panics that open the breaker")
		brkCool   = fs.Duration("breaker-cooldown", 10*time.Second, "open-breaker cooldown before half-open probes")
		brkOK     = fs.Int("breaker-successes", 2, "consecutive probe successes that close the breaker")
		ckptDir   = fs.String("checkpoint-dir", "", "journal /v1/batch runs into this directory for drain/resume")
		grace     = fs.Duration("drain-grace", 30*time.Second, "max wait for in-flight requests on shutdown")
		auditDir  = fs.String("audit-dir", "", "hash-chain every served result into this directory's tamper-evident ledger")
		auditFl   = fs.Duration("audit-flush", 100*time.Millisecond, "audit group-commit time bound (seal + fsync at least this often)")
		auditRecs = fs.Int("audit-flush-records", 64, "audit group-commit size bound (seal without waiting once this many records are pending)")
		auditSync = fs.Bool("audit-sync-each", false, "fsync the audit ledger after every record (per-record durability at full fsync cost)")
		auditRot  = fs.Int64("audit-rotate-bytes", 64<<20, "rotate the active audit file into a sealed segment past this size (0 = never rotate)")
		auditKeep = fs.Int("audit-compact-keep", 16, "compact all but this many newest sealed segments into a Merkle-checkpoint stub (0 = never compact)")
		auditFull = fs.String("audit-on-full", "fail", "disk-full policy for the audit ledger: fail (refuse all work) or shed (drop audit records, mark responses degraded)")
		auditWit  = fs.String("audit-witness", "", "anchor audit seal roots into this local append-only witness file")
		auditWURL = fs.String("audit-witness-url", "", "anchor audit seal roots to this remote witness endpoint (another serve instance's POST /v1/witness/anchor)")
		auditAnch = fs.Int("audit-anchor-every", 8, "anchor to the witness at least every N sealed batches")
		witFile   = fs.String("witness-file", "", "act as a witness: chain anchors POSTed to /v1/witness/anchor into this file")
		auditVrfy = fs.String("verify-audit", "", "offline-verify the audit ledger in this directory and exit (1 broken chain, 2 no ledger)")
		vrfyWit   = fs.String("witness", "", "with -verify-audit: cross-check the ledger against this witness file (catches tail rollback)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *auditVrfy != "" {
		return verifyAudit(*auditVrfy, *vrfyWit, out)
	}
	var onFull audit.DiskFullPolicy
	switch *auditFull {
	case "fail":
		onFull = audit.DiskFullFailClosed
	case "shed":
		onFull = audit.DiskFullShed
	default:
		return fmt.Errorf("-audit-on-full must be fail or shed, got %q", *auditFull)
	}
	var witness audit.Witness
	switch {
	case *auditWit != "" && *auditWURL != "":
		return errors.New("-audit-witness and -audit-witness-url are mutually exclusive: pick one anchoring target")
	case *auditWit != "":
		fw, err := audit.OpenFileWitness(*auditWit, nil)
		if err != nil {
			return fmt.Errorf("opening witness file: %w", err)
		}
		defer fw.Close()
		witness = fw
	case *auditWURL != "":
		witness = &audit.HTTPWitness{URL: *auditWURL}
	}

	// Each served city becomes a preloaded registry shard: snapshots are
	// frozen and hospital potentials swept at startup, so the first
	// request pays no more than the thousandth.
	reg := registry.NewRegistry()
	for _, name := range strings.Split(*city, ",") {
		if *osmFile != "" && len(reg.Shards()) > 0 {
			return errors.New("-osm serves a single extract; drop the extra -city entries")
		}
		net2, err := buildNetwork(*osmFile, name, *scale, *seed)
		if err != nil {
			return err
		}
		shard, err := registry.NewShardWithOptions(ctx, name, net2, registry.ShardOptions{
			PoolSize: *capacity,
			Overlay:  *useOv,
		})
		if err != nil {
			return err
		}
		if err := reg.Add(shard); err != nil {
			return err
		}
		fmt.Fprintf(out, "serve: city %s: %d intersections, %d segments\n",
			shard.Name(), net2.NumIntersections(), net2.NumSegments())
	}

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	cacheBytes := *cacheMB << 20
	if cacheBytes <= 0 {
		cacheBytes = -1 // Config: negative disables, zero means default
	}
	srv, err := server.New(server.Config{
		Registry:        reg,
		CacheBytes:      cacheBytes,
		Capacity:        *capacity,
		MaxQueue:        *maxQueue,
		MaxRequestUnits: *maxUnits,
		UnitWork:        *unitWork,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTO,
		Breaker: server.BreakerConfig{
			Threshold: *brkThresh,
			Cooldown:  *brkCool,
			Successes: *brkOK,
		},
		CheckpointDir:       *ckptDir,
		Scale:               *scale,
		Injector:            chaosInjector,
		AuditDir:            *auditDir,
		AuditFlushEvery:     *auditFl,
		AuditFlushRecords:   *auditRecs,
		AuditSyncEachRecord: *auditSync,
		AuditRotateBytes:    *auditRot,
		AuditCompactKeep:    *auditKeep,
		AuditOnDiskFull:     onFull,
		AuditWitness:        witness,
		AuditAnchorEvery:    *auditAnch,
		WitnessFile:         *witFile,
	})
	if err != nil {
		return err
	}
	if aerr := srv.AuditErr(); aerr != nil {
		// The audit chain failed verification: the server starts, but only
		// to explain itself — every work request is refused until the
		// ledger is inspected (-verify-audit) and dealt with.
		fmt.Fprintf(out, "serve: audit chain broken, refusing work: %v\n", aerr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout bounds slow-client body dribble; the per-request
		// pipeline deadline handles everything after decode.
		ReadTimeout: 30 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, cancel in-flight batches so their
	// checkpoints flush, wait out the grace period, then close the
	// listener. Exit 0 even if stragglers were cut off — the journals
	// make their work resumable.
	fmt.Fprintln(out, "serve: draining")
	if err := srv.Drain(*grace); err != nil {
		fmt.Fprintln(out, "serve:", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// The ledger closes after the last request: its unsealed tail gets a
	// final group commit, so a clean drain leaves nothing for the next
	// open to heal. A close error is not worth a dirty exit — reopening
	// re-verifies the chain and truncates whatever was torn.
	if l := srv.Ledger(); l != nil {
		if err := l.Close(); err != nil {
			fmt.Fprintln(out, "serve: audit close:", err)
		}
	}
	if w := srv.Witness(); w != nil {
		if err := w.Close(); err != nil {
			fmt.Fprintln(out, "serve: witness close:", err)
		}
	}
	fmt.Fprintln(out, "serve: drained, exiting")
	return nil
}

// verifyAudit is the -verify-audit subcommand: an offline replay of the
// whole ledger chain — stub, sealed segments, and active file as one
// stream — usable as an external oracle after a crash or a suspected
// alteration. With a witness file it additionally cross-checks every
// anchor, catching the tail rollback the chain alone cannot see. On a
// broken chain the returned error names the first bad record and the
// process exits 1; a directory with no ledger exits 2.
func verifyAudit(dir, witnessPath string, out io.Writer) error {
	var (
		rep audit.Report
		wr  audit.WitnessReport
		err error
	)
	if witnessPath != "" {
		rep, wr, err = audit.VerifyDirWitness(dir, witnessPath)
	} else {
		rep, err = audit.VerifyDir(dir)
	}
	if err != nil {
		if errors.Is(err, audit.ErrNoLedger) {
			return fmt.Errorf("nothing to verify: %w (fresh directory, or the wrong one?)", err)
		}
		return fmt.Errorf("audit ledger %s: %w", dir, err)
	}
	fmt.Fprintf(out, "serve: audit ledger %s verifies: %d records, %d sealed in %d batches, %d pending\n",
		dir, rep.Records, rep.SealedRecords, rep.SealedBatches, rep.Pending)
	if rep.Segments > 0 || rep.CompactedSegments > 0 {
		fmt.Fprintf(out, "serve: %d sealed segments on disk; %d segments (%d records, %d batches) compacted into the checkpoint stub\n",
			rep.Segments, rep.CompactedSegments, rep.CompactedRecords, rep.CompactedBatches)
	}
	if rep.LeftoverSegments > 0 {
		fmt.Fprintf(out, "serve: %d stub-covered segment files still on disk (an interrupted compaction; the next open removes them)\n",
			rep.LeftoverSegments)
	}
	if rep.TornBytes > 0 {
		fmt.Fprintf(out, "serve: torn tail of %d bytes in %s (a kill mid-write; the next open heals it)\n",
			rep.TornBytes, rep.TornFile)
	}
	if witnessPath != "" {
		fmt.Fprintf(out, "serve: witness %s agrees: %d anchors (%d checked against live seals, %d vouch for compacted history), latest batch %d\n",
			witnessPath, wr.Anchors, wr.Checked, wr.Uncheckable, wr.LatestBatch)
		if wr.Torn {
			fmt.Fprintln(out, "serve: witness file has a torn final line (healed at its next open)")
		}
	}
	return nil
}

// buildNetwork loads an OSM extract or generates a synthetic city.
func buildNetwork(osmFile, city string, scale float64, seed int64) (*roadnet.Network, error) {
	if osmFile != "" {
		return osm.ParseFile(osmFile, osm.ParseOptions{
			AttachHospitals:  true,
			LargestComponent: true,
		})
	}
	c, err := citygen.ParseCity(strings.ReplaceAll(city, "-", " "))
	if err != nil {
		return nil, err
	}
	return citygen.Build(c, scale, seed)
}
