package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"altroute/internal/audit"
	"altroute/internal/faultinject"
	"altroute/internal/server"
)

// syncWriter is a goroutine-safe capture of run's stdout.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`serve: listening on (\S+)`)

// startServe launches run() on an ephemeral port and returns the base URL
// and a channel carrying run's return value.
func startServe(t *testing.T, ctx context.Context, extraArgs ...string) (string, <-chan error, *syncWriter) {
	t.Helper()
	out := &syncWriter{}
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-city", "boston",
		"-scale", "0.015",
		"-seed", "11",
		"-drain-grace", "30s",
	}, extraArgs...)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, out) }()

	deadline := time.Now().Add(30 * time.Second) //lint:allow wallclock test polling deadline
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], errc, out
		}
		select {
		case err := <-errc:
			t.Fatalf("run exited before listening: %v\noutput: %s", err, out.String())
		default:
		}
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatalf("server never listened; output: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testBatch() map[string]any {
	return map[string]any{
		"id":                   "sigterm-batch",
		"rank":                 4,
		"seed":                 11,
		"sources_per_hospital": 1,
		"algorithms":           []string{"GreedyPathCover", "GreedyEdge"},
		"timeout_ms":           60_000,
	}
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, out.Bytes()
}

// verifiedRecords runs the -verify-audit subcommand against dir as an
// external oracle (plus any extra flags, e.g. -witness FILE) and returns
// the verified record count. Any chain violation fails the test.
func verifiedRecords(t *testing.T, dir string, extra ...string) int {
	t.Helper()
	out := &syncWriter{}
	if err := run(context.Background(), append([]string{"-verify-audit", dir}, extra...), out); err != nil {
		t.Fatalf("-verify-audit %s = %v\noutput: %s", dir, err, out.String())
	}
	m := regexp.MustCompile(`verifies: (\d+) records`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("-verify-audit output has no record count: %s", out.String())
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSIGTERMDrainsMidBatchAndResumes is the end-to-end shape of the
// ISSUE's acceptance scenario: SIGTERM while a checkpointed, audited
// batch is in flight drains gracefully (run returns nil — exit 0), leaves
// a resumable journal and a chain-clean ledger, and a restarted server
// completes the batch from the journal with the ledger still verifying.
// Rotation is forced down to one record per segment and every seal is
// anchored to a witness file, so the resume provably crosses segment
// boundaries and the final oracle run cross-checks the witness.
func TestSIGTERMDrainsMidBatchAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a city and runs a batch; skipped in -short")
	}
	dir := t.TempDir()
	adir := t.TempDir()
	wfile := filepath.Join(t.TempDir(), "witness.jsonl")
	auditFlags := []string{
		"-checkpoint-dir", dir, "-audit-dir", adir,
		"-audit-flush-records", "1", "-audit-rotate-bytes", "1",
		"-audit-witness", wfile, "-audit-anchor-every", "1",
	}

	// Wedge the pipeline a few attack rounds in, so SIGTERM provably lands
	// mid-batch rather than racing batch completion.
	in := faultinject.New(1).Arm(faultinject.PointAttackStall, faultinject.Rule{OnHit: 4})
	chaosInjector = in
	defer func() { chaosInjector = nil }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	base, errc, out := startServe(t, ctx, auditFlags...)

	type result struct {
		code int
		body []byte
	}
	batchDone := make(chan result, 1)
	go func() {
		code, body := postJSON(t, base+"/v1/batch", testBatch())
		batchDone <- result{code, body}
	}()

	// Wait until the batch is provably wedged at the stall point, then
	// deliver a real SIGTERM to ourselves.
	waitFor(t, func() bool { return in.Hits(faultinject.PointAttackStall) >= 4 })
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	var res result
	select {
	case res = <-batchDone:
	case <-time.After(60 * time.Second):
		t.Fatal("batch request never returned after SIGTERM")
	}
	if res.code != http.StatusServiceUnavailable {
		t.Fatalf("drained batch = %d, want 503; body %s", res.code, res.body)
	}
	var bres server.BatchResponse
	if err := json.Unmarshal(res.body, &bres); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	if !bres.Interrupted || !bres.Resumable {
		t.Fatalf("batch response = %+v, want interrupted+resumable", bres)
	}

	// run() itself must return nil — the process exits 0 after the drain.
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil (exit 0)", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("run never exited after SIGTERM; output: %s", out.String())
	}
	if !strings.Contains(out.String(), "serve: drained, exiting") {
		t.Fatalf("missing drain farewell; output: %s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "sigterm-batch.jsonl")); err != nil {
		t.Fatalf("journal missing after drain: %v", err)
	}

	// External oracle: the ledger left behind by the drain verifies. (The
	// stall may land inside the very first unit, so the count can be 0 —
	// what matters is that whatever is there chains cleanly.)
	drained := verifiedRecords(t, adir)

	// Restart against the same checkpoint directory with chaos disarmed:
	// the re-submitted batch replays the journal and completes.
	chaosInjector = nil
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, errc2, _ := startServe(t, ctx2, auditFlags...)
	code, body := postJSON(t, base2+"/v1/batch", testBatch())
	if code != http.StatusOK {
		t.Fatalf("resumed batch = %d, want 200; body %s", code, body)
	}
	var resumed server.BatchResponse
	if err := json.Unmarshal(body, &resumed); err != nil {
		t.Fatalf("decode resumed response: %v", err)
	}
	if resumed.Interrupted {
		t.Fatalf("resumed batch still interrupted: %+v", resumed)
	}
	cancel2()
	if err := <-errc2; err != nil {
		t.Fatalf("second run exit = %v, want nil", err)
	}

	// The oracle again, now cross-checked against the witness file both
	// runs anchored to: the resumed run extended the same chain — journal
	// replays were not re-audited, so growth is only the remainder.
	after := verifiedRecords(t, adir, "-witness", wfile)
	if after <= drained {
		t.Fatalf("ledger did not grow across the resume: %d then %d", drained, after)
	}

	// With one record per segment, the resumed chain spans one sealed
	// segment per record: the drain and resume provably crossed segment
	// boundaries.
	segs, err := filepath.Glob(filepath.Join(adir, "segment-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("resumed ledger has %d segments, want at least 3 (records: %d)", len(segs), after)
	}
}

// TestVerifyAuditDetectsTamper pins the -verify-audit exit contract: a
// clean ledger verifies with its record count; a single flipped byte
// makes the subcommand return an error (exit 1) naming the chain break.
func TestVerifyAuditDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	l, err := audit.Open(audit.Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(audit.Record{Kind: "attack", City: "boston", Source: int64(i), Dest: 9, OK: true}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := verifiedRecords(t, dir); n != 3 {
		t.Fatalf("verified %d records, want 3", n)
	}

	path := filepath.Join(dir, "ledger.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[25] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := &syncWriter{}
	err = run(context.Background(), []string{"-verify-audit", dir}, out)
	if !errors.Is(err, audit.ErrChainBroken) {
		t.Fatalf("-verify-audit over tampered ledger = %v, want ErrChainBroken", err)
	}
	var ce *audit.ChainError
	if !errors.As(err, &ce) {
		t.Fatalf("error does not name the broken record: %v", err)
	}
}

func TestServeHealthAndCleanShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a city; skipped in -short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, errc, out := startServe(t, ctx)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run = %v, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("run never exited; output: %s", out.String())
	}
}

func TestServeBadFlags(t *testing.T) {
	cases := [][]string{
		{"-city", "atlantis"},
		{"-addr", "not-an-address"},
		{"-osm", "/nonexistent/extract.osm"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &syncWriter{}); err == nil {
			t.Errorf("run(%v) = nil, want error", args)
		}
	}
}

// TestVerifyAuditNothingToVerify pins the empty-state contract: pointing
// -verify-audit at a directory with no ledger (fresh, or the wrong one) is
// its own outcome — exit 2 with a message saying so — distinct from both
// a clean chain (0) and a violation (1).
func TestVerifyAuditNothingToVerify(t *testing.T) {
	for _, dir := range []string{t.TempDir(), filepath.Join(t.TempDir(), "never-created")} {
		out := &syncWriter{}
		err := run(context.Background(), []string{"-verify-audit", dir}, out)
		if !errors.Is(err, audit.ErrNoLedger) {
			t.Fatalf("-verify-audit %s = %v, want ErrNoLedger", dir, err)
		}
		if !strings.Contains(err.Error(), "nothing to verify") {
			t.Fatalf("error does not explain itself: %v", err)
		}
		if c := exitCode(err); c != 2 {
			t.Fatalf("exit code = %d, want 2", c)
		}
	}
}

// TestExitCodes pins the process exit mapping run's error lands in.
func TestExitCodes(t *testing.T) {
	if c := exitCode(nil); c != 0 {
		t.Fatalf("exitCode(nil) = %d", c)
	}
	if c := exitCode(errors.New("boom")); c != 1 {
		t.Fatalf("exitCode(error) = %d", c)
	}
	if c := exitCode(fmt.Errorf("wrapped: %w", audit.ErrNoLedger)); c != 2 {
		t.Fatalf("exitCode(ErrNoLedger) = %d", c)
	}
}

// TestVerifyAuditWitnessDetectsRollback rolls a ledger's tail back past
// its last witness anchor: plain -verify-audit accepts the shortened chain
// (it is internally consistent — exactly the blind spot), while
// -verify-audit -witness refuses it.
func TestVerifyAuditWitnessDetectsRollback(t *testing.T) {
	dir := t.TempDir()
	wfile := filepath.Join(t.TempDir(), "witness.jsonl")
	fw, err := audit.OpenFileWitness(wfile, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := audit.Open(audit.Config{Dir: dir, FlushRecords: 2, Witness: fw, AnchorEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(audit.Record{Kind: "attack", City: "boston", Source: int64(i), Dest: 9, OK: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean: the witness agrees, and the output says so.
	out := &syncWriter{}
	if err := run(context.Background(), []string{"-verify-audit", dir, "-witness", wfile}, out); err != nil {
		t.Fatalf("witness verify over clean ledger = %v\noutput: %s", err, out.String())
	}
	if !strings.Contains(out.String(), "agrees") {
		t.Fatalf("output has no witness agreement line: %s", out.String())
	}

	// Roll the tail back to the first sealed batch (r0, r1, seal 0): still
	// a perfectly consistent chain, so the plain oracle accepts it.
	path := filepath.Join(dir, "ledger.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if err := os.WriteFile(path, bytes.Join(lines[:3], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := verifiedRecords(t, dir); n != 2 {
		t.Fatalf("plain verify of rolled-back ledger = %d records, want 2 (the blind spot)", n)
	}
	err = run(context.Background(), []string{"-verify-audit", dir, "-witness", wfile}, &syncWriter{})
	if !errors.Is(err, audit.ErrChainBroken) || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("witness verify of rolled-back ledger = %v, want rollback refusal", err)
	}
	if c := exitCode(err); c != 1 {
		t.Fatalf("exit code = %d, want 1", c)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second) //lint:allow wallclock test polling deadline
	for !cond() {
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
