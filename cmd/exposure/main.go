// Command exposure analyzes a city from the defender's perspective: for
// each hospital it samples inbound trips and reports how many simultaneous
// blockages full denial needs (edge-disjoint paths), how cheap the
// cheapest denial is, how cheap the strongest route-forcing attack is, and
// which road segments greedy min-cut hardening would protect first.
//
//	exposure -city boston -scale 0.05 -trips 3 -harden 2
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"altroute"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exposure:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exposure", flag.ContinueOnError)
	var (
		cityName = fs.String("city", "boston", "city preset: boston, sanfrancisco, chicago, losangeles")
		scale    = fs.Float64("scale", 0.05, "synthetic city scale")
		seed     = fs.Int64("seed", 1, "random seed")
		trips    = fs.Int("trips", 3, "sampled trips per hospital")
		rank     = fs.Int("rank", 10, "path rank for the forcing-cost probe")
		costStr  = fs.String("cost", "LANES", "capability model: UNIFORM, LANES, or WIDTH")
		harden   = fs.Int("harden", 0, "rounds of greedy min-cut hardening to recommend (0 = skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	city, err := altroute.ParseCity(*cityName)
	if err != nil {
		return err
	}
	ct, err := altroute.ParseCostType(*costStr)
	if err != nil {
		return err
	}
	net, err := altroute.BuildCity(city, *scale, *seed)
	if err != nil {
		return err
	}
	s := altroute.Summarize(net)
	fmt.Printf("defender survey: %s (%d nodes, %d segments), capability model %s\n",
		s.Name, s.Nodes, s.Edges, ct)

	rng := rand.New(rand.NewSource(*seed))
	for _, h := range net.POIsOfKind(altroute.KindHospital) {
		var pairs [][2]altroute.NodeID
		for len(pairs) < *trips {
			src := altroute.NodeID(rng.Intn(net.NumIntersections()))
			if src != h.Node {
				pairs = append(pairs, [2]altroute.NodeID{src, h.Node})
			}
		}
		exposures, err := altroute.SurveyExposure(net, pairs, *rank, altroute.WeightTime, ct)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (node %d)\n", h.Name, h.Node)
		fmt.Printf("  %-18s %8s %10s %10s\n", "trip", "disjoint", "deny-cost", "force-cost")
		for _, e := range exposures {
			force := "n/a"
			if !math.IsNaN(e.ForceCost) {
				force = fmt.Sprintf("%.1f", e.ForceCost)
			}
			fmt.Printf("  %6d -> %-8d %8d %10.1f %10s\n", e.Source, e.Dest, e.DisjointPaths, e.DenyCost, force)
		}
		if *harden > 0 {
			plan, err := altroute.Harden(net.Graph(), pairs[0][0], h.Node, net.Cost(ct), *harden)
			if err != nil {
				return err
			}
			fmt.Printf("  hardening trip %d -> %d: protect %d segments; denial cost %.1f -> ",
				pairs[0][0], h.Node, len(plan.Protect), plan.CostBefore)
			if plan.Disconnectable {
				fmt.Printf("%.1f\n", plan.CostAfter)
			} else {
				fmt.Printf("impossible\n")
			}
		}
	}
	return nil
}
