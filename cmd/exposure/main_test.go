package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunSurvey(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-city", "chicago", "-scale", "0.015", "-trips", "1", "-rank", "4", "-harden", "1"})
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"defender survey: Chicago", "disjoint", "deny-cost", "force-cost", "hardening"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad city", []string{"-city", "springfield"}},
		{"bad cost", []string{"-cost", "DIAMONDS"}},
		{"unknown flag", []string{"-zzz"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}
