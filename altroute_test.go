package altroute_test

import (
	"bytes"
	"strings"
	"testing"

	"altroute"
)

// TestEndToEndAttackThroughFacade exercises the public API the way the
// README quickstart does: build a city, pick a hospital, force the 5th
// shortest path, commit the cut, and verify the victim now drives p*.
func TestEndToEndAttackThroughFacade(t *testing.T) {
	net, err := altroute.BuildCity(altroute.Chicago, 0.015, 7)
	if err != nil {
		t.Fatalf("BuildCity: %v", err)
	}
	hospitals := net.POIsOfKind(altroute.KindHospital)
	if len(hospitals) != 4 {
		t.Fatalf("hospitals = %d", len(hospitals))
	}
	dest := hospitals[0].Node
	w := net.Weight(altroute.WeightTime)

	var problem altroute.Problem
	found := false
	for n := 0; n < net.NumIntersections() && !found; n++ {
		src := altroute.NodeID(n)
		if src == dest {
			continue
		}
		if p, err := altroute.NewProblem(net, src, dest, 5, altroute.WeightTime, altroute.CostLanes, 0); err == nil {
			problem, found = p, true
		}
	}
	if !found {
		t.Fatal("no viable source")
	}

	res, err := altroute.Attack(altroute.AlgGreedyPathCover, problem, altroute.Options{})
	if err != nil {
		t.Fatalf("Attack: %v", err)
	}
	altroute.Apply(net.Graph(), res.Removed)
	defer altroute.Restore(net.Graph(), res.Removed)

	r := altroute.NewRouter(net.Graph())
	sp, ok := r.ShortestPath(problem.Source, problem.Dest, w)
	if !ok || !sp.SameEdges(problem.PStar) {
		t.Fatalf("victim path after attack = %v, want p*", sp)
	}
}

func TestFacadeParsersAndEnumerations(t *testing.T) {
	if got, err := altroute.ParseAlgorithm("GreedyEig"); err != nil || got != altroute.AlgGreedyEig {
		t.Errorf("ParseAlgorithm = %v, %v", got, err)
	}
	if got, err := altroute.ParseWeightType("time"); err != nil || got != altroute.WeightTime {
		t.Errorf("ParseWeightType = %v, %v", got, err)
	}
	if got, err := altroute.ParseCostType("width"); err != nil || got != altroute.CostWidth {
		t.Errorf("ParseCostType = %v, %v", got, err)
	}
	if got, err := altroute.ParseCity("los angeles"); err != nil || got != altroute.LosAngeles {
		t.Errorf("ParseCity = %v, %v", got, err)
	}
	if len(altroute.Cities()) != 4 || len(altroute.Algorithms()) != 4 {
		t.Error("enumerations wrong")
	}
	if names := altroute.HospitalNames(altroute.Boston); len(names) != 4 {
		t.Errorf("hospitals = %v", names)
	}
}

func TestFacadeOSMAndSummary(t *testing.T) {
	net, err := altroute.BuildCity(altroute.Boston, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := altroute.WriteOSM(&buf, net); err != nil {
		t.Fatalf("WriteOSM: %v", err)
	}
	back, err := altroute.ParseOSM(&buf, altroute.OSMOptions{Name: "boston-copy"})
	if err != nil {
		t.Fatalf("ParseOSM: %v", err)
	}
	s1, s2 := altroute.Summarize(net), altroute.Summarize(back)
	if s1.Edges != s2.Edges {
		t.Errorf("round trip edges %d != %d", s1.Edges, s2.Edges)
	}
	if l := altroute.Latticeness(net); l < 0 || l > 1 {
		t.Errorf("latticeness = %v", l)
	}
}

func TestFacadeIsolationAndSim(t *testing.T) {
	net, err := altroute.BuildCity(altroute.Chicago, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	h := net.POIsOfKind(altroute.KindHospital)[0]
	w := net.Weight(altroute.WeightTime)

	area := altroute.AreaAround(g, h.Node, 25, w)
	if len(area) < 2 {
		t.Skip("area too small at this scale")
	}
	iso, err := altroute.IsolateArea(g, area, net.Cost(altroute.CostUniform), altroute.Inbound)
	if err != nil {
		t.Fatalf("IsolateArea: %v", err)
	}
	if len(iso.Cut) == 0 {
		t.Fatal("empty isolation cut")
	}

	var blocks []altroute.Blockage
	for _, e := range iso.Cut {
		blocks = append(blocks, altroute.Blockage{Edge: e, AtS: 0})
	}
	src := altroute.NodeID(0)
	if src == h.Node {
		src = 1
	}
	baseline, attacked, _, err := altroute.CompareAttack(altroute.SimConfig{
		Net:       net,
		Vehicles:  []altroute.Vehicle{{ID: 1, Source: src, Dest: h.Node}},
		Blockages: blocks,
	})
	if err != nil {
		t.Fatalf("CompareAttack: %v", err)
	}
	if !baseline.Vehicles[0].Arrived {
		t.Fatal("baseline vehicle did not arrive")
	}
	// The area is isolated inbound: the attacked vehicle cannot arrive
	// (unless it started inside the area).
	inside := false
	for _, a := range area {
		if a == src {
			inside = true
		}
	}
	if !inside && attacked.Vehicles[0].Arrived {
		t.Error("vehicle arrived despite inbound isolation")
	}

	if top := altroute.CriticalRoads(net, w, 3, 40); len(top) != 3 {
		t.Errorf("critical roads = %d, want 3", len(top))
	}
}

func TestFacadeViz(t *testing.T) {
	net, err := altroute.BuildCity(altroute.Boston, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := net.POIsOfKind(altroute.KindHospital)[0]
	w := net.Weight(altroute.WeightTime)
	var pstar altroute.Path
	var src altroute.NodeID
	found := false
	for n := 0; n < net.NumIntersections() && !found; n++ {
		if altroute.NodeID(n) == h.Node {
			continue
		}
		if p, err := altroute.PStarByRank(net.Graph(), altroute.NodeID(n), h.Node, 2, w); err == nil {
			src, pstar, found = altroute.NodeID(n), p, true
		}
	}
	if !found {
		t.Skip("no viable source")
	}
	var buf bytes.Buffer
	err = altroute.WriteSVG(&buf, altroute.Scene{
		Net: net, Source: src, Dest: h.Node, PStar: pstar, Title: "facade",
	})
	if err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("not an SVG")
	}
}

func TestFacadeViaPath(t *testing.T) {
	net := altroute.NewNetwork("via")
	a := net.AddIntersection(altroute.Point{Lat: 42, Lon: -71})
	b := net.AddIntersection(altroute.Point{Lat: 42.001, Lon: -71})
	c := net.AddIntersection(altroute.Point{Lat: 42.002, Lon: -71})
	if _, _, err := net.AddTwoWayRoad(a, b, altroute.Road{}); err != nil {
		t.Fatal(err)
	}
	toll, _, err := net.AddTwoWayRoad(b, c, altroute.Road{})
	if err != nil {
		t.Fatal(err)
	}
	w := net.Weight(altroute.WeightLength)
	p, err := altroute.BuildViaPath(net.Graph(), a, c, toll, w)
	if err != nil {
		t.Fatalf("BuildViaPath: %v", err)
	}
	if !p.HasEdge(toll) {
		t.Error("via path misses the toll edge")
	}
}

func TestFacadeMultiVictim(t *testing.T) {
	net, err := altroute.BuildCity(altroute.Chicago, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	w := net.Weight(altroute.WeightTime)
	pois := net.POIsOfKind(altroute.KindHospital)
	// Disjoint trips (1->0, 2->3) keep the two forced routes from
	// protecting each other's competitors.
	var victims []altroute.VictimSpec
	for _, trip := range [][2]int{{1, 0}, {2, 3}} {
		p, err := altroute.PStarByRank(g, pois[trip[0]].Node, pois[trip[1]].Node, 3, w)
		if err != nil {
			t.Skipf("rank unavailable: %v", err)
		}
		victims = append(victims, altroute.VictimSpec{Source: pois[trip[0]].Node, Dest: pois[trip[1]].Node, PStar: p})
	}
	res, err := altroute.AttackMulti(altroute.AlgGreedyPathCover, altroute.MultiProblem{
		G: g, Victims: victims, Weight: w, Cost: net.Cost(altroute.CostUniform),
	}, altroute.Options{})
	if err != nil {
		// Forced routes can genuinely conflict (one victim's p* may shield
		// another victim's faster route); that is correct infeasibility.
		t.Skipf("victims conflict on this instance: %v", err)
	}
	altroute.Apply(g, res.Removed)
	defer altroute.Restore(g, res.Removed)
	r := altroute.NewRouter(g)
	for i, v := range victims {
		sp, ok := r.ShortestPath(v.Source, v.Dest, w)
		if !ok || !sp.SameEdges(v.PStar) {
			t.Errorf("victim %d not forced", i)
		}
	}
}

func TestFacadeDefense(t *testing.T) {
	net, err := altroute.BuildCity(altroute.Boston, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	h := net.POIsOfKind(altroute.KindHospital)[0]
	src := altroute.NodeID(0)
	if src == h.Node {
		src = 1
	}
	k, err := altroute.EdgeDisjointPaths(net.Graph(), src, h.Node)
	if err != nil {
		t.Fatalf("EdgeDisjointPaths: %v", err)
	}
	if k <= 0 {
		t.Errorf("disjoint paths = %d", k)
	}
	plan, err := altroute.Harden(net.Graph(), src, h.Node, net.Cost(altroute.CostUniform), 2)
	if err != nil {
		t.Fatalf("Harden: %v", err)
	}
	if len(plan.Protect) == 0 {
		t.Error("no protection recommended")
	}
	exp, err := altroute.SurveyExposure(net, [][2]altroute.NodeID{{src, h.Node}}, 4, altroute.WeightTime, altroute.CostUniform)
	if err != nil || len(exp) != 1 {
		t.Fatalf("SurveyExposure: %v, %d", err, len(exp))
	}
	if _, err := altroute.AttackCost(net, src, h.Node, 4, altroute.WeightTime, altroute.CostUniform); err != nil {
		t.Logf("AttackCost (rank may be unavailable): %v", err)
	}
}

func TestFacadeTraffic(t *testing.T) {
	net, err := altroute.BuildCity(altroute.Chicago, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	pois := net.POIsOfKind(altroute.KindHospital)
	demands := []altroute.TrafficDemand{
		{Source: pois[1].Node, Dest: pois[0].Node, VehiclesPerHour: 900},
	}
	a, err := altroute.AssignTraffic(net, demands, 3)
	if err != nil {
		t.Fatalf("AssignTraffic: %v", err)
	}
	loaded := 0
	for _, v := range a.Volumes {
		if v > 0 {
			loaded++
		}
	}
	if loaded == 0 {
		t.Fatal("no edges loaded")
	}
	_, _, extra, _, err := altroute.TrafficAttackImpact(net, demands, nil, 3)
	if err != nil {
		t.Fatalf("TrafficAttackImpact: %v", err)
	}
	if extra != 0 {
		t.Errorf("empty cut changed system time by %v", extra)
	}
}
