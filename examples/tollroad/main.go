// Toll-road forcing (paper §II-A: "force victim vehicles onto a chosen
// road segment, such as a toll road"): pick two popular locations and a
// toll segment off the natural route, build the best route that crosses
// the toll segment, force it with the core attack, and verify with the
// live-rerouting victim simulator that every driver now pays the toll —
// quantifying the delay the attacker inflicts.
//
//	go run ./examples/tollroad [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"altroute"
)

func main() {
	seed := flag.Int64("seed", 7, "seed for city generation, toll-segment choice and the attack")
	flag.Parse()
	net, err := altroute.BuildCity(altroute.Chicago, 0.04, *seed)
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph()
	w := net.Weight(altroute.WeightTime)
	fmt.Printf("%s: %d intersections, %d segments\n",
		net.Name(), net.NumIntersections(), net.NumSegments())

	// Two "popular locations": the first two hospitals stand in for, say,
	// a stadium and an airport.
	pois := net.POIsOfKind(altroute.KindHospital)
	source, dest := pois[0].Node, pois[1].Node
	fmt.Printf("popular trip: %s -> %s\n", pois[0].Name, pois[1].Name)

	natural, ok := altroute.NewRouter(g).ShortestPath(source, dest, w)
	if !ok {
		log.Fatal("endpoints disconnected")
	}

	// The "toll road": a random arterial segment that the natural route
	// does not use.
	rng := rand.New(rand.NewSource(*seed))
	var toll altroute.EdgeID = -1
	for tries := 0; tries < 10000; tries++ {
		e := altroute.EdgeID(rng.Intn(net.NumSegments()))
		if g.EdgeDisabled(e) || natural.HasEdge(e) || net.Road(e).Artificial {
			continue
		}
		if p, err := altroute.BuildViaPath(g, source, dest, e, w); err == nil && !p.SameEdges(natural) {
			toll = e
			break
		}
	}
	if toll < 0 {
		log.Fatal("no usable toll segment found")
	}
	arc := g.Arc(toll)
	fmt.Printf("toll segment: edge %d (%d -> %d, %.0f m)\n", toll, arc.From, arc.To, net.Road(toll).LengthM)

	pstar, err := altroute.BuildViaPath(g, source, dest, toll, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("natural route: %.1f s | toll route p*: %.1f s (+%.1f%%)\n",
		natural.Length, pstar.Length, (pstar.Length-natural.Length)/natural.Length*100)

	problem := altroute.Problem{
		G: g, Source: source, Dest: dest, PStar: pstar,
		Weight: w, Cost: net.Cost(altroute.CostUniform),
	}
	res, err := altroute.Attack(altroute.AlgGreedyPathCover, problem, altroute.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack: %d blocked segments (cost %.0f) computed in %s\n",
		len(res.Removed), res.TotalCost, res.Runtime)

	// Simulate a fleet of 20 drivers making the popular trip, with the
	// blockages going up at t=0.
	var fleet []altroute.Vehicle
	for i := 0; i < 20; i++ {
		fleet = append(fleet, altroute.Vehicle{
			ID: i, Source: source, Dest: dest, DepartS: float64(i * 30),
		})
	}
	var blocks []altroute.Blockage
	for _, e := range res.Removed {
		blocks = append(blocks, altroute.Blockage{Edge: e, AtS: 0})
	}
	baseline, attacked, delay, err := altroute.CompareAttack(altroute.SimConfig{
		Net: net, Vehicles: fleet, Blockages: blocks,
	})
	if err != nil {
		log.Fatal(err)
	}

	paying := 0
	altroute.Apply(g, res.Removed)
	r := altroute.NewRouter(g)
	for range fleet {
		p, _ := r.ShortestPath(source, dest, w)
		if p.HasEdge(toll) {
			paying++
		}
	}
	altroute.Restore(g, res.Removed)

	fmt.Printf("fleet of %d: %d arrived before attack, %d after\n",
		len(fleet), baseline.ArrivedCount, attacked.ArrivedCount)
	fmt.Printf("drivers routed over the toll segment after the attack: %d/%d\n", paying, len(fleet))
	fmt.Printf("total delay inflicted: %.1f s (%.1f s per driver)\n",
		delay, delay/float64(len(fleet)))
}
