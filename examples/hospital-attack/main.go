// Hospital attack: reproduce the paper's headline experiment on a
// synthetic Boston — force a driver heading to Brigham and Women's
// Hospital onto a chosen sub-optimal route, comparing all four algorithms
// and rendering the result as a Figure 1 style SVG.
//
//	go run ./examples/hospital-attack [-seed N] [out.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"altroute"
)

func main() {
	const (
		scale = 0.05
		rank  = 25 // the paper uses the 100th path on full-size graphs
	)
	seed := flag.Int64("seed", 2024, "seed for city generation, victim choice and the attack")
	flag.Parse()
	net, err := altroute.BuildCity(altroute.Boston, scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	summary := altroute.Summarize(net)
	fmt.Printf("%s: %d intersections, %d road segments, latticeness %.2f\n",
		summary.Name, summary.Nodes, summary.Edges, altroute.Latticeness(net))

	hospital := net.POIsOfKind(altroute.KindHospital)[0]
	fmt.Printf("target: %s (network node %d)\n", hospital.Name, hospital.Node)

	// Random source, as in the paper's methodology.
	rng := rand.New(rand.NewSource(*seed))
	var problem altroute.Problem
	for {
		src := altroute.NodeID(rng.Intn(net.NumIntersections()))
		if src == hospital.Node {
			continue
		}
		p, err := altroute.NewProblem(net, src, hospital.Node, rank,
			altroute.WeightLength, altroute.CostWidth, 0)
		if err == nil {
			problem = p
			break
		}
	}
	fmt.Printf("victim: node %d -> %s, forced to the %dth-shortest route (%.0f m vs ",
		problem.Source, hospital.Name, rank, problem.PStar.Length)
	best, _ := altroute.NewRouter(net.Graph()).ShortestPath(problem.Source, problem.Dest, problem.Weight)
	fmt.Printf("%.0f m optimal)\n\n", best.Length)

	fmt.Printf("%-17s %10s %6s %8s %8s\n", "Algorithm", "Runtime", "Cuts", "Cost", "Paths")
	var figure altroute.Result
	for _, alg := range altroute.Algorithms() {
		res, err := altroute.Attack(alg, problem, altroute.Options{Seed: *seed})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Printf("%-17s %10s %6d %8.2f %8d\n",
			res.Algorithm, res.Runtime.Round(1000), len(res.Removed), res.TotalCost, res.ConstraintPaths)
		if alg == altroute.AlgGreedyPathCover {
			figure = res
		}
	}

	out := "hospital-attack.svg"
	if flag.NArg() > 0 {
		out = flag.Arg(0)
	}
	err = altroute.WriteSVGFile(out, altroute.Scene{
		Net:     net,
		Source:  problem.Source,
		Dest:    problem.Dest,
		PStar:   problem.PStar,
		Removed: figure.Removed,
		Title: fmt.Sprintf("Boston -> %s | GreedyPathCover | %d cuts, cost %.1f",
			hospital.Name, len(figure.Removed), figure.TotalCost),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (blue: forced route p*, red: blocked segments, yellow: hospital)\n", out)
}
