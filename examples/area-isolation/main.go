// Area isolation (paper §II-A): disconnect the neighborhood around a
// hospital from the rest of the city with a minimum-cost set of road
// blockages (min-cut with removal costs as capacities), then demonstrate
// with the victim simulator that ambulances can no longer reach the
// hospital.
//
//	go run ./examples/area-isolation [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"altroute"
)

func main() {
	seed := flag.Int64("seed", 13, "seed for city generation and ambulance dispatch sites")
	flag.Parse()
	net, err := altroute.BuildCity(altroute.SanFrancisco, 0.04, *seed)
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph()
	w := net.Weight(altroute.WeightTime)
	hospital := net.POIsOfKind(altroute.KindHospital)[0]
	fmt.Printf("%s: %d intersections; target: %s\n",
		net.Name(), net.NumIntersections(), hospital.Name)

	// Reconnaissance: the most critical roads by betweenness centrality.
	fmt.Println("\nmost critical road segments (edge betweenness):")
	for i, e := range altroute.CriticalRoads(net, w, 5, 120) {
		arc := g.Arc(e)
		fmt.Printf("  %d. edge %d (%d -> %d, %s)\n", i+1, e, arc.From, arc.To, net.Road(e).Class)
	}

	// Target area: everything within 45 driving seconds of the hospital.
	area := altroute.AreaAround(g, hospital.Node, 45, w)
	fmt.Printf("\ntarget area: %d intersections within 45 s of the hospital\n", len(area))

	// Minimum-cost inbound cut under the LANES capability model.
	iso, err := altroute.IsolateArea(g, area, net.Cost(altroute.CostLanes), altroute.Inbound)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolation plan: block %d segments, total cost %.0f lane-blockages\n",
		len(iso.Cut), iso.TotalCost)

	// Simulate 15 ambulances dispatched from random intersections.
	rng := rand.New(rand.NewSource(*seed))
	inArea := map[altroute.NodeID]bool{}
	for _, a := range area {
		inArea[a] = true
	}
	var fleet []altroute.Vehicle
	for i := 0; len(fleet) < 15; i++ {
		src := altroute.NodeID(rng.Intn(net.NumIntersections()))
		if src == hospital.Node || inArea[src] {
			continue
		}
		fleet = append(fleet, altroute.Vehicle{ID: i, Source: src, Dest: hospital.Node})
	}
	var blocks []altroute.Blockage
	for _, e := range iso.Cut {
		blocks = append(blocks, altroute.Blockage{Edge: e, AtS: 0})
	}
	baseline, attacked, _, err := altroute.CompareAttack(altroute.SimConfig{
		Net: net, Vehicles: fleet, Blockages: blocks,
	})
	if err != nil {
		log.Fatal(err)
	}
	stranded := 0
	for _, v := range attacked.Vehicles {
		if v.Stranded {
			stranded++
		}
	}
	fmt.Printf("\nambulance fleet: %d/%d reached the hospital before the attack\n",
		baseline.ArrivedCount, len(fleet))
	fmt.Printf("after the attack: %d arrived, %d stranded with no route\n",
		attacked.ArrivedCount, stranded)
}
