// Rush-hour multi-victim attack: combine the coordinated multi-victim
// forcing from §II-A ("coerce multiple drivers to take a chosen suboptimal
// alternative route") with the congestion model — one shared set of road
// blockages redirects several commuter flows at once, and the BPR traffic
// assignment quantifies the city-wide vehicle-hours the attack adds.
//
//	go run ./examples/rushhour [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"altroute"
)

func main() {
	seed := flag.Int64("seed", 21, "seed for city generation and the attack")
	flag.Parse()
	net, err := altroute.BuildCity(altroute.LosAngeles, 0.02, *seed)
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph()
	w := net.Weight(altroute.WeightTime)
	fmt.Printf("%s: %d intersections, %d segments\n",
		net.Name(), net.NumIntersections(), net.NumSegments())

	// Three commuter flows: everyone heads downtown (hospital 0 stands in
	// for the business district) from three districts (hospitals 1-3).
	pois := net.POIsOfKind(altroute.KindHospital)
	downtown := pois[0].Node

	var victims []altroute.VictimSpec
	var demands []altroute.TrafficDemand
	for i := 1; i < 4; i++ {
		src := pois[i].Node
		pstar, err := altroute.PStarByRank(g, src, downtown, 6, w)
		if err != nil {
			log.Fatalf("flow %d: %v", i, err)
		}
		victims = append(victims, altroute.VictimSpec{Source: src, Dest: downtown, PStar: pstar})
		demands = append(demands, altroute.TrafficDemand{Source: src, Dest: downtown, VehiclesPerHour: 1200})
		best, _ := altroute.NewRouter(g).ShortestPath(src, downtown, w)
		fmt.Printf("flow %d: %s -> downtown, optimal %.0fs, forced alternative %.0fs (+%.0f%%)\n",
			i, pois[i].Name, best.Length, pstar.Length, (pstar.Length-best.Length)/best.Length*100)
	}

	// One shared cut forcing all three flows simultaneously.
	res, err := altroute.AttackMulti(altroute.AlgGreedyPathCover, altroute.MultiProblem{
		G: g, Victims: victims, Weight: w, Cost: net.Cost(altroute.CostLanes),
	}, altroute.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared attack plan: %d blockages, cost %.0f lane-blockages, %d constraint paths, %s\n",
		len(res.Removed), res.TotalCost, res.ConstraintPaths, res.Runtime)

	// Verify every flow is forced.
	altroute.Apply(g, res.Removed)
	r := altroute.NewRouter(g)
	forced := 0
	for _, v := range victims {
		if p, ok := r.ShortestPath(v.Source, v.Dest, w); ok && p.SameEdges(v.PStar) {
			forced++
		}
	}
	altroute.Restore(g, res.Removed)
	fmt.Printf("flows forced onto their alternative route: %d/%d\n", forced, len(victims))

	// City-wide congestion impact of the blockages at rush hour.
	_, _, extra, stranded, err := altroute.TrafficAttackImpact(net, demands, res.Removed, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rush-hour impact: +%.0f vehicle-seconds of system travel time per hour", extra)
	if stranded > 0 {
		fmt.Printf(", %.0f veh/h stranded", stranded)
	}
	fmt.Println()
}
