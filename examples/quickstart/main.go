// Quickstart: build a small street network by hand, choose an alternative
// route, and compute the minimum set of road blockages that forces every
// optimally-routing driver onto it.
//
//	go run ./examples/quickstart [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"altroute"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for the attack's tie-breaking")
	flag.Parse()
	// A 3x3 grid of two-way streets around downtown.
	net := altroute.NewNetwork("toytown")
	var nodes [3][3]altroute.NodeID
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			nodes[r][c] = net.AddIntersection(altroute.Point{
				Lat: 42.3600 + 0.001*float64(r),
				Lon: -71.0600 + 0.001*float64(c),
			})
		}
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			street := altroute.Road{Class: altroute.Road{}.Class, Lanes: 1 + (r+c)%2}
			if c+1 < 3 {
				if _, _, err := net.AddTwoWayRoad(nodes[r][c], nodes[r][c+1], street); err != nil {
					log.Fatal(err)
				}
			}
			if r+1 < 3 {
				if _, _, err := net.AddTwoWayRoad(nodes[r][c], nodes[r+1][c], street); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	source := nodes[0][0] // south-west corner
	dest := nodes[2][2]   // north-east corner

	// The victim normally drives the shortest TIME path. The attacker
	// wants them on the 4th-shortest path instead.
	problem, err := altroute.NewProblem(net, source, dest, 4,
		altroute.WeightTime, altroute.CostLanes, 0 /* unlimited budget */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim trip: node %d -> node %d\n", source, dest)
	fmt.Printf("forced alternative route p*: %d hops, %.1f s at the speed limits\n",
		problem.PStar.Hops(), problem.PStar.Length)

	result, err := altroute.Attack(altroute.AlgGreedyPathCover, problem, altroute.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack plan: block %d road segments (total cost %.1f lanes) in %s\n",
		len(result.Removed), result.TotalCost, result.Runtime)
	for _, e := range result.Removed {
		arc := net.Graph().Arc(e)
		fmt.Printf("  block segment %d (%d -> %d)\n", e, arc.From, arc.To)
	}

	// Commit the attack and verify the victim's navigation now picks p*.
	altroute.Apply(net.Graph(), result.Removed)
	victim := altroute.NewRouter(net.Graph())
	path, ok := victim.ShortestPath(source, dest, net.Weight(altroute.WeightTime))
	if !ok {
		log.Fatal("victim disconnected (should not happen: p* stays intact)")
	}
	fmt.Printf("victim's new best route equals p*: %v\n", path.SameEdges(problem.PStar))
}
