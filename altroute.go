// Package altroute is a library for studying alternative route-based
// attacks in metropolitan traffic systems, reproducing La Fontaine et al.
// (DSN 2022). An attacker who knows a victim's source and destination picks
// a sub-optimal alternative route p* (e.g. the 100th-shortest path) and
// computes a minimum-cost set of road segments to block so that p* becomes
// the exclusive shortest path — forcing every optimally-routing vehicle
// onto the attacker's chosen route.
//
// The package is a facade over the implementation packages:
//
//   - road networks with LENGTH/TIME weights and UNIFORM/LANES/WIDTH
//     removal costs (internal/roadnet),
//   - the four Force Path Cut algorithms — LP-PathCover, GreedyPathCover,
//     GreedyEdge, GreedyEig (internal/core),
//   - synthetic city generators calibrated to the paper's Boston, San
//     Francisco, Chicago, and Los Angeles graphs (internal/citygen),
//   - OpenStreetMap XML import/export (internal/osm),
//   - the experiment harness regenerating the paper's Tables I-X
//     (internal/experiment),
//   - SVG visualization in the style of Figures 1-4 (internal/viz),
//   - the area-isolation min-cut attack (internal/partition), and
//   - a live-rerouting victim simulator (internal/sim).
//
// Quickstart:
//
//	net, _ := altroute.BuildCity(altroute.Chicago, 0.05, 1)
//	hospital := net.POIsOfKind(altroute.KindHospital)[0]
//	problem, _ := altroute.NewProblem(net, source, hospital.Node, 100,
//		altroute.WeightTime, altroute.CostLanes, 0)
//	result, _ := altroute.Attack(altroute.AlgGreedyPathCover, problem, altroute.Options{})
//	altroute.Apply(net.Graph(), result.Removed) // commit the cut
package altroute

import (
	"context"
	"io"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/defense"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/metrics"
	"altroute/internal/osm"
	"altroute/internal/partition"
	"altroute/internal/roadnet"
	"altroute/internal/sim"
	"altroute/internal/traffic"
	"altroute/internal/viz"
)

// Graph primitives.
type (
	// NodeID identifies a road intersection.
	NodeID = graph.NodeID
	// EdgeID identifies a directed road segment.
	EdgeID = graph.EdgeID
	// Path is a route through the network.
	Path = graph.Path
	// WeightFunc maps an edge to a weight or cost.
	WeightFunc = graph.WeightFunc
	// Graph is the directed street multigraph.
	Graph = graph.Graph
	// Router answers shortest-path and k-shortest-path queries.
	Router = graph.Router
)

// Road-network types.
type (
	// Network is a road network: graph + road attributes + POIs.
	Network = roadnet.Network
	// Road is the attribute bundle of one road segment.
	Road = roadnet.Road
	// POI is a point of interest (hospitals in the paper).
	POI = roadnet.POI
	// WeightType is the attacker objective (LENGTH or TIME).
	WeightType = roadnet.WeightType
	// CostType is the removal cost model (UNIFORM, LANES, WIDTH).
	CostType = roadnet.CostType
	// RoadClass is the coarse highway classification.
	RoadClass = roadnet.RoadClass
	// Point is a geographic coordinate.
	Point = geo.Point
)

// Weight and cost models (paper §II-B).
const (
	WeightLength = roadnet.WeightLength
	WeightTime   = roadnet.WeightTime
	CostUniform  = roadnet.CostUniform
	CostLanes    = roadnet.CostLanes
	CostWidth    = roadnet.CostWidth
)

// Attack types (paper §III-A).
type (
	// Problem is a Force Path Cut instance.
	Problem = core.Problem
	// Result is a computed attack plan.
	Result = core.Result
	// Options tunes the attack algorithms.
	Options = core.Options
	// Algorithm selects one of the paper's four algorithms.
	Algorithm = core.Algorithm
)

// The four algorithms evaluated in the paper.
const (
	AlgLPPathCover     = core.AlgLPPathCover
	AlgGreedyPathCover = core.AlgGreedyPathCover
	AlgGreedyEdge      = core.AlgGreedyEdge
	AlgGreedyEig       = core.AlgGreedyEig
)

// Attack errors.
var (
	ErrInvalidProblem  = core.ErrInvalidProblem
	ErrInfeasible      = core.ErrInfeasible
	ErrBudgetExceeded  = core.ErrBudgetExceeded
	ErrRankUnavailable = core.ErrRankUnavailable
	// ErrTimeout marks an attack that exceeded Options.Timeout or an
	// ancestor context deadline (LP-PathCover instead degrades to a greedy
	// cover when it already has constraints; see Result.Degraded).
	ErrTimeout = core.ErrTimeout
	// ErrCancelled marks an attack cancelled through its context.
	ErrCancelled = core.ErrCancelled
	// ErrPanic marks an attack that panicked; AttackCtx recovers the panic
	// into this error with the offending stack attached.
	ErrPanic = core.ErrPanic
)

// City presets (paper Table I).
type City = citygen.City

// The paper's four cities.
const (
	Boston       = citygen.Boston
	SanFrancisco = citygen.SanFrancisco
	Chicago      = citygen.Chicago
	LosAngeles   = citygen.LosAngeles
)

// KindHospital is the POI kind attack destinations use.
const KindHospital = citygen.KindHospital

// NewNetwork returns an empty road network.
func NewNetwork(name string) *Network { return roadnet.NewNetwork(name) }

// NewRouter returns a shortest-path router over g.
func NewRouter(g *Graph) *Router { return graph.NewRouter(g) }

// BuildCity generates a synthetic city calibrated to the paper's Table I
// (scale 1 = full size) with its four hospitals attached.
func BuildCity(c City, scale float64, seed int64) (*Network, error) {
	return citygen.Build(c, scale, seed)
}

// Cities lists the paper's four cities.
func Cities() []City { return citygen.Cities() }

// HospitalNames returns the four hospital names used for a city.
func HospitalNames(c City) []string { return citygen.HospitalNames(c) }

// NewProblem assembles a Force Path Cut instance: p* is the rank-th
// shortest path from s to d under wt, removal costs follow ct, and budget 0
// means unlimited.
func NewProblem(net *Network, s, d NodeID, rank int, wt WeightType, ct CostType, budget float64) (Problem, error) {
	return core.NewProblem(net, s, d, rank, wt, ct, budget)
}

// PStarByRank returns the rank-th shortest simple path (1-based).
func PStarByRank(g *Graph, s, d NodeID, rank int, w WeightFunc) (Path, error) {
	return core.PStarByRank(g, s, d, rank, w)
}

// BuildViaPath constructs the toll-road alternative route: the best simple
// s->d path traversing the chosen edge.
func BuildViaPath(g *Graph, s, d NodeID, via EdgeID, w WeightFunc) (Path, error) {
	return core.BuildViaPath(g, s, d, via, w)
}

// Attack runs the chosen algorithm on p, returning the edge cut that makes
// p.PStar the exclusive shortest path. The graph is left unchanged; commit
// with Apply.
func Attack(alg Algorithm, p Problem, opts Options) (Result, error) {
	return core.Run(alg, p, opts)
}

// AttackCtx is Attack under a context: cancellation and deadlines propagate
// cooperatively into the attack's search loops and LP pivots, panics are
// recovered into ErrPanic failures, and a timed-out LP-PathCover degrades to
// the greedy cover of its constraint pool (Result.Degraded).
func AttackCtx(ctx context.Context, alg Algorithm, p Problem, opts Options) (Result, error) {
	return core.RunCtx(ctx, alg, p, opts)
}

// Algorithms lists the paper's four algorithms in presentation order.
func Algorithms() []Algorithm { return core.Algorithms() }

// Multi-victim attack (§II-A: coerce multiple drivers at once).
type (
	// MultiProblem forces one shared edge cut across several victims.
	MultiProblem = core.MultiProblem
	// VictimSpec is one victim trip in a MultiProblem.
	VictimSpec = core.VictimSpec
)

// AttackMulti computes one cut forcing every victim onto its alternative
// route (GreedyPathCover or LP-PathCover only).
func AttackMulti(alg Algorithm, p MultiProblem, opts Options) (Result, error) {
	return core.RunMulti(alg, p, opts)
}

// AttackMultiCtx is AttackMulti under a context, with the same failure
// semantics as AttackCtx.
func AttackMultiCtx(ctx context.Context, alg Algorithm, p MultiProblem, opts Options) (Result, error) {
	return core.RunMultiCtx(ctx, alg, p, opts)
}

// ParseAlgorithm parses an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// ParseWeightType parses LENGTH or TIME.
func ParseWeightType(s string) (WeightType, error) { return roadnet.ParseWeightType(s) }

// ParseCostType parses UNIFORM, LANES, or WIDTH.
func ParseCostType(s string) (CostType, error) { return roadnet.ParseCostType(s) }

// ParseCity parses a city name.
func ParseCity(s string) (City, error) { return citygen.ParseCity(s) }

// Apply disables every edge in cut on g (commits an attack plan).
func Apply(g *Graph, cut []EdgeID) { core.Apply(g, cut) }

// Restore re-enables every edge in cut on g.
func Restore(g *Graph, cut []EdgeID) { core.Restore(g, cut) }

// ParseOSM reads OpenStreetMap XML into a road network.
func ParseOSM(r io.Reader, opts OSMOptions) (*Network, error) { return osm.Parse(r, opts) }

// WriteOSM serializes a road network as OSM XML.
func WriteOSM(w io.Writer, net *Network) error { return osm.Write(w, net) }

// OSMOptions configures ParseOSM.
type OSMOptions = osm.ParseOptions

// Summary is a Table I style graph summary.
type Summary = metrics.GraphSummary

// Summarize computes the Table I row for a network.
func Summarize(net *Network) Summary { return metrics.Summarize(net) }

// Latticeness scores how grid-like a network is in [0, 1].
func Latticeness(net *Network) float64 { return metrics.Latticeness(net) }

// Area-isolation attack (paper §II-A).
type (
	// IsolationResult is an area-isolation cut.
	IsolationResult = partition.Result
	// IsolationDirection selects the severed traffic direction.
	IsolationDirection = partition.Direction
)

// Isolation directions.
const (
	Inbound  = partition.Inbound
	Outbound = partition.Outbound
	BothWays = partition.BothWays
)

// IsolateArea computes a minimum-cost cut disconnecting the target area.
func IsolateArea(g *Graph, area []NodeID, cost WeightFunc, dir IsolationDirection) (IsolationResult, error) {
	return partition.IsolateArea(g, area, cost, dir)
}

// AreaAround returns the nodes within a weight radius of center.
func AreaAround(g *Graph, center NodeID, radius float64, w WeightFunc) []NodeID {
	return partition.AreaAround(g, center, radius, w)
}

// CriticalRoads ranks road segments by betweenness centrality.
func CriticalRoads(net *Network, w WeightFunc, k, sampleSources int) []EdgeID {
	return partition.CriticalRoads(net, w, k, sampleSources)
}

// Defense analysis.
type (
	// HardeningPlan recommends segments to protect against denial.
	HardeningPlan = defense.HardeningPlan
	// TripExposure summarizes one trip's attack exposure.
	TripExposure = defense.TripExposure
)

// EdgeDisjointPaths counts edge-disjoint s->d paths (simultaneous
// blockages needed for full denial).
func EdgeDisjointPaths(g *Graph, s, d NodeID) (int, error) {
	return defense.EdgeDisjointPaths(g, s, d)
}

// AttackCost returns the strongest attacker's cheapest route-forcing cost
// for the trip.
func AttackCost(net *Network, s, d NodeID, rank int, wt WeightType, ct CostType) (float64, error) {
	return defense.AttackCost(net, s, d, rank, wt, ct)
}

// Harden recommends road segments to protect against denial of the trip.
func Harden(g *Graph, s, d NodeID, cost WeightFunc, rounds int) (HardeningPlan, error) {
	return defense.Harden(g, s, d, cost, rounds)
}

// SurveyExposure computes attack exposure for a set of trips.
func SurveyExposure(net *Network, trips [][2]NodeID, rank int, wt WeightType, ct CostType) ([]TripExposure, error) {
	return defense.Survey(net, trips, rank, wt, ct)
}

// Victim simulation.
type (
	// SimConfig describes a simulated fleet and attack schedule.
	SimConfig = sim.Config
	// Vehicle is one simulated victim trip.
	Vehicle = sim.Vehicle
	// Blockage schedules an attacker road closure.
	Blockage = sim.Blockage
	// SimResult is a simulation outcome.
	SimResult = sim.Result
)

// Simulate runs the live-rerouting victim simulator.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// CompareAttack simulates the fleet with and without the blockages and
// returns the inflicted delay.
func CompareAttack(cfg SimConfig) (baseline, attacked SimResult, delayS float64, err error) {
	return sim.CompareAttack(cfg)
}

// Congestion modeling.
type (
	// TrafficDemand is one origin-destination flow in vehicles/hour.
	TrafficDemand = traffic.Demand
	// TrafficAssignment is loaded traffic (per-edge volumes).
	TrafficAssignment = traffic.Assignment
)

// AssignTraffic loads demand onto the network with incremental assignment
// under BPR congestion.
func AssignTraffic(net *Network, demands []TrafficDemand, slices int) (TrafficAssignment, error) {
	return traffic.AssignIncremental(net, demands, slices)
}

// TrafficAttackImpact measures an attack cut's city-wide congestion
// spillover (extra vehicle-seconds and stranded demand).
func TrafficAttackImpact(net *Network, demands []TrafficDemand, cut []EdgeID, slices int) (before, after TrafficAssignment, extraVehSeconds, strandedVPH float64, err error) {
	return traffic.AttackImpact(net, demands, cut, slices)
}

// Visualization (paper Figures 1-4).
type (
	// Scene is one experiment rendering.
	Scene = viz.Scene
	// SceneStyle controls rendering colors and sizes.
	SceneStyle = viz.Style
)

// WriteSVG renders a scene as SVG.
func WriteSVG(w io.Writer, scene Scene) error { return viz.WriteSVG(w, scene) }

// WriteSVGFile renders a scene to a file.
func WriteSVGFile(path string, scene Scene) error { return viz.WriteSVGFile(path, scene) }
