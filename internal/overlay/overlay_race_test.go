package overlay_test

// Race suite: concurrent customize-vs-query on one shared Metric. The
// contract is that Apply (mutate-graph-and-recompute under the metric's
// write lock) may interleave with any number of readers, each owning its
// own Querier. Run under -race (the CI race job includes this package).
// Queries compare against nothing here — mid-flight results are
// whichever side of the customization they land on — the suite exists
// to prove the locking discipline, not bit-identity (the differential
// suite does that single-threaded).

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/graph"
	"altroute/internal/overlay"
	"altroute/internal/roadnet"
)

func TestConcurrentCustomizeAndQuery(t *testing.T) {
	net, err := citygen.Build(citygen.Chicago, 0.04, 9)
	if err != nil {
		t.Fatal(err)
	}
	snap := net.Snapshot(roadnet.WeightTime)
	ov, err := overlay.Build(context.Background(), snap, overlay.Params{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := overlay.NewMetric(context.Background(), ov)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	h := net.POIsOfKind(citygen.KindHospital)[0]
	n := net.NumIntersections()
	ctx := context.Background()

	// One interior edge per writer round; Apply holds the write lock
	// across the graph mutation and the recompute, so readers never see
	// a half-customized clique.
	var interior []graph.EdgeID
	for e := 0; e < snap.NumEdges(); e++ {
		if ov.Cell(g.Arc(graph.EdgeID(e)).From) == ov.Cell(g.Arc(graph.EdgeID(e)).To) {
			interior = append(interior, graph.EdgeID(e))
		}
		if len(interior) >= 8 {
			break
		}
	}
	if len(interior) == 0 {
		t.Skip("fixture lacks interior edges")
	}

	const readers = 4
	const rounds = 50
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			e := interior[i%len(interior)]
			m.Apply(ctx, []graph.EdgeID{e}, func() { g.DisableEdge(e) })
			m.Apply(ctx, []graph.EdgeID{e}, func() { g.EnableEdge(e) })
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			q := overlay.NewQuerier(m)
			rng := rand.New(rand.NewSource(seed))
			tl := q.BuildTargetLabels(h.Node)
			for i := 0; i < rounds; i++ {
				s := graph.NodeID(rng.Intn(n))
				if i%2 == 0 {
					q.QueryTo(s, tl)
				} else {
					q.Query(s, graph.NodeID(rng.Intn(n)))
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
}
