package overlay

// White-box tests: clique exactness against a reference restricted
// Dijkstra, the eCell customization dispatch table, the
// cells-recomputed counter, MarkStale coalescing, and Clone
// independence. Black-box partition/query differentials live in the
// overlay_test package.

import (
	"container/heap"
	"context"
	"math"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

func buildFixture(t testing.TB) (*roadnet.Network, *Overlay, *Metric) {
	t.Helper()
	net, err := citygen.Build(citygen.Chicago, 0.04, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := net.Snapshot(roadnet.WeightTime)
	ov, err := Build(context.Background(), snap, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMetric(context.Background(), ov)
	if err != nil {
		t.Fatal(err)
	}
	return net, ov, m
}

// refItem / refHeap: a plain container/heap Dijkstra queue, deliberately
// distinct from the package's bheap so the reference cannot share a bug.
type refItem struct {
	dist float64
	node int32
}
type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// refRestricted computes exact within-cell distances from src, honouring
// the live disabled flags, with an independent Dijkstra.
func refRestricted(ov *Overlay, src, c int32) map[int32]float64 {
	csr := ov.csr
	dist := map[int32]float64{src: 0}
	h := &refHeap{{0, src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(refItem)
		if it.dist > dist[it.node] {
			continue
		}
		for s, end := csr.FwdOff[it.node], csr.FwdOff[it.node+1]; s < end; s++ {
			if csr.Disabled[csr.FwdEdge[s]] {
				continue
			}
			v := csr.FwdTo[s]
			if ov.cell[v] != c {
				continue
			}
			nd := it.dist + csr.FwdW[s]
			if d, ok := dist[v]; !ok || nd < d {
				dist[v] = nd
				heap.Push(h, refItem{nd, v})
			}
		}
	}
	return dist
}

func TestCliqueMatchesReferenceRestrictedDijkstra(t *testing.T) {
	_, ov, m := buildFixture(t)
	checked := 0
	for c := int32(0); int(c) < ov.numCells && checked < 12; c++ {
		k := ov.boundaryCount(c)
		if k == 0 {
			continue
		}
		checked++
		b0 := ov.cellBOff[c]
		base := m.cliqueOff[c]
		for i := 0; i < k; i++ {
			ref := refRestricted(ov, ov.bNode[b0+int32(i)], c)
			for j := 0; j < k; j++ {
				got := m.clique[base+int64(i*k)+int64(j)]
				want, ok := ref[ov.bNode[b0+int32(j)]]
				if !ok {
					want = math.Inf(1)
				}
				if got != want {
					t.Fatalf("cell %d clique[%d][%d] = %v, reference %v", c, i, j, got, want)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cells with boundaries checked")
	}
}

func TestECellDispatchTable(t *testing.T) {
	net, ov, _ := buildFixture(t)
	g := net.Graph()
	for e := 0; e < len(ov.eCell); e++ {
		a := g.Arc(graph.EdgeID(e))
		same := ov.cell[a.From] == ov.cell[a.To]
		if same && ov.eCell[e] != ov.cell[a.From] {
			t.Fatalf("edge %d: interior to cell %d but eCell = %d", e, ov.cell[a.From], ov.eCell[e])
		}
		if !same && ov.eCell[e] != -1 {
			t.Fatalf("edge %d: cross-cell (%d->%d) but eCell = %d", e, ov.cell[a.From], ov.cell[a.To], ov.eCell[e])
		}
	}
}

// TestSingleCutCustomizationScope is the acceptance assertion: disabling
// one interior edge recomputes exactly the one affected cell, and a
// cross-cell cut recomputes none.
func TestSingleCutCustomizationScope(t *testing.T) {
	net, ov, m := buildFixture(t)
	g := net.Graph()

	interior := graph.EdgeID(-1)
	cross := graph.EdgeID(-1)
	for e := range ov.eCell {
		if ov.eCell[e] >= 0 && interior < 0 {
			interior = graph.EdgeID(e)
		}
		if ov.eCell[e] < 0 && cross < 0 {
			cross = graph.EdgeID(e)
		}
	}
	if interior < 0 || cross < 0 {
		t.Skip("fixture lacks an interior or cross-cell edge")
	}

	g.DisableEdge(interior)
	if n := m.Customize(context.Background(), interior); n != 1 {
		t.Fatalf("interior cut recomputed %d cells, want 1", n)
	}
	if got := m.CellsRecomputed(); got != 1 {
		t.Fatalf("CellsRecomputed = %d, want 1", got)
	}
	g.EnableEdge(interior)
	if n := m.Customize(context.Background(), interior); n != 1 {
		t.Fatalf("re-enable recomputed %d cells, want 1", n)
	}

	g.DisableEdge(cross)
	if n := m.Customize(context.Background(), cross); n != 0 {
		t.Fatalf("cross-cell cut recomputed %d cells, want 0", n)
	}
	g.EnableEdge(cross)
}

func TestMarkStaleCoalescesAndSettles(t *testing.T) {
	net, ov, m := buildFixture(t)
	g := net.Graph()
	interior := graph.EdgeID(-1)
	for e := range ov.eCell {
		if ov.eCell[e] >= 0 {
			interior = graph.EdgeID(e)
			break
		}
	}
	if interior < 0 {
		t.Skip("fixture lacks an interior edge")
	}

	g.DisableEdge(interior)
	m.MarkStale(interior)
	g.EnableEdge(interior)
	m.MarkStale(interior) // double toggle: same cell, coalesced
	if got := m.Pending(); got != 1 {
		t.Fatalf("Pending = %d after coalesced double toggle, want 1", got)
	}
	if got := m.CellsRecomputed(); got != 0 {
		t.Fatalf("MarkStale recomputed %d cells, want 0 (deferred)", got)
	}
	m.ensureSettled()
	if got := m.Pending(); got != 0 {
		t.Fatalf("Pending = %d after settle, want 0", got)
	}
	// The toggles net out to the base state and the clique was computed
	// all-enabled, so the coalesced repair is a recognized no-op.
	if got := m.CellsRecomputed(); got != 0 {
		t.Fatalf("settle recomputed %d cells after net-zero toggle, want 0 (base skip)", got)
	}

	// A disable that sticks must still repair on settle.
	g.DisableEdge(interior)
	m.MarkStale(interior)
	m.ensureSettled()
	if got := m.CellsRecomputed(); got != 1 {
		t.Fatalf("settle recomputed %d cells after sticking disable, want 1", got)
	}
	// And the repair back to base after re-enabling is real work too: the
	// clique bytes currently describe the cut state.
	g.EnableEdge(interior)
	m.MarkStale(interior)
	m.ensureSettled()
	if got := m.CellsRecomputed(); got != 2 {
		t.Fatalf("settle recomputed %d cells after re-enable of dirty cell, want 2", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	net, ov, m := buildFixture(t)
	g := net.Graph()
	clone := m.Clone()
	if clone.CellsRecomputed() != 0 {
		t.Fatalf("clone counters must start at zero")
	}

	interior := graph.EdgeID(-1)
	for e := range ov.eCell {
		if ov.eCell[e] >= 0 {
			interior = graph.EdgeID(e)
			break
		}
	}
	if interior < 0 {
		t.Skip("fixture lacks an interior edge")
	}
	c := ov.eCell[interior]
	base := m.cliqueOff[c]
	k := int64(ov.boundaryCount(c))
	before := append([]float64(nil), clone.clique[base:base+k*k]...)

	g.DisableEdge(interior)
	m.Customize(context.Background(), interior)
	g.EnableEdge(interior)
	defer m.Customize(context.Background(), interior)

	for i, v := range clone.clique[base : base+k*k] {
		if v != before[i] {
			t.Fatalf("customizing the original mutated the clone's clique at %d", i)
		}
	}
}

func TestPartitionDeterministicUnderSeed(t *testing.T) {
	net, ov, _ := buildFixture(t)
	snap := net.Snapshot(roadnet.WeightTime)
	again, err := Build(context.Background(), snap, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again.numCells != ov.numCells || again.nb != ov.nb {
		t.Fatalf("same seed, different shape: %d/%d cells, %d/%d boundaries",
			again.numCells, ov.numCells, again.nb, ov.nb)
	}
	for v := range ov.cell {
		if again.cell[v] != ov.cell[v] {
			t.Fatalf("same seed, node %d in cell %d vs %d", v, again.cell[v], ov.cell[v])
		}
	}
}
