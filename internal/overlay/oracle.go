package overlay

import (
	"altroute/internal/graph"
)

// Violating is the overlay-accelerated exclusivity oracle: it decides
// whether some live s->t path other than pstar has length within
// pstar.Length + tieEps, replicating core's baseline
// (BestAlternativeWithPotential + the tie comparison) on corridor
// searches instead of unbounded A* spur searches.
//
// Semantics relative to the baseline:
//
//   - The verdict always agrees: it is a property of the graph state
//     (does a distinct path within the bound exist?), and both oracles
//     decide it from exact minimum path lengths.
//   - The witness path's Length is bit-identical: per spur index, both
//     kernels compute the same minimum float path sum under the same
//     bans, and both pick the minimum candidate by the same
//     (length, hops, edges) order.
//   - The witness path's EDGES can differ only when distinct paths tie
//     at identical float length (Dijkstra-order vs A*-potential
//     tie-breaking); on jittered weights ties do not occur and the
//     witness is bit-identical too.
//
// tl must have been built (BuildTargetLabels) on this graph in a state
// whose enabled-edge set contained every currently enabled edge — the
// exact contract cached reverse potentials already carry — so its labels
// are lower bounds and pruning is lossless. Cliques may be stale for
// edges cut since tl was built: Violating reads only tl and the raw CSR
// arcs, never the cliques.
func (q *Querier) Violating(s, t graph.NodeID, pstar graph.Path, tieEps float64, tl *TargetLabels) (graph.Path, bool) {
	if q.interrupted() {
		return graph.Path{}, false
	}
	q.m.mu.RLock()
	defer q.m.mu.RUnlock()
	if !q.valid(s) || !q.valid(t) || tl == nil || tl.tcell < 0 {
		return graph.Path{}, false
	}
	bound := pstar.Length + tieEps
	q.clearBans()

	// Round zero: the overall shortest path. pstar is live and within the
	// bound, so the corridor always finds something; when it differs from
	// pstar it is the baseline's first-search witness.
	first, ok := q.corridor(s, t, tl, 0, bound)
	if !ok {
		return graph.Path{}, false
	}
	if !first.SameEdges(pstar) {
		if first.Length <= bound {
			return first, true
		}
		return graph.Path{}, false
	}

	// One Yen deviation round over pstar, mirroring bestAlternative with
	// accepted = [pstar]: ban the root nodes and pstar's next edge, search
	// from the spur node. rootLen accumulates serially left-to-right over
	// the materialized weights — the same float sums as the baseline's.
	// Unlike the baseline (which runs unbounded spur searches and filters
	// afterwards), every spur search carries the bound: the pre-skip and
	// corridor pruning drop work that provably cannot change the verdict.
	lim := bound + 1e-9*bound
	var best graph.Path
	haveBest := false
	rootLen := 0.0
	for i, n := 0, len(pstar.Edges); i < n; i++ {
		if q.interrupted() {
			break // cancelled mid-round: candidates so far are still valid
		}
		spurNode := pstar.Nodes[i]
		if rootLen+tl.pot[spurNode] <= lim {
			q.clearBans()
			q.banEdge(pstar.Edges[i])
			for j := 0; j < i; j++ {
				q.banNode(pstar.Nodes[j])
			}
			if spur, ok := q.corridor(spurNode, t, tl, rootLen, bound); ok {
				total := concatSpur(pstar, i, rootLen, spur)
				if !haveBest || pathLess(total, best) {
					best = total
					haveBest = true
				}
			}
		}
		rootLen += q.csr.W[pstar.Edges[i]]
	}
	q.clearBans()
	if haveBest && best.Length <= bound {
		return best, true
	}
	return graph.Path{}, false
}

// concatSpur joins pstar's first i edges (weight rootLen, accumulated
// exactly as the baseline does) to spur, which starts at pstar.Nodes[i].
// Identical to graph's concatSpur so candidate Lengths carry the same
// bits.
func concatSpur(base graph.Path, i int, rootLen float64, spur graph.Path) graph.Path {
	nodes := make([]graph.NodeID, 0, i+len(spur.Nodes))
	nodes = append(nodes, base.Nodes[:i]...)
	nodes = append(nodes, spur.Nodes...)
	edges := make([]graph.EdgeID, 0, i+len(spur.Edges))
	edges = append(edges, base.Edges[:i]...)
	edges = append(edges, spur.Edges...)
	return graph.Path{Nodes: nodes, Edges: edges, Length: rootLen + spur.Length}
}

// pathLess replicates graph's deterministic candidate order: length,
// then hop count, then lexicographic edge sequence.
func pathLess(a, b graph.Path) bool {
	if a.Length != b.Length {
		return a.Length < b.Length
	}
	if len(a.Edges) != len(b.Edges) {
		return len(a.Edges) < len(b.Edges)
	}
	for k := range a.Edges {
		if a.Edges[k] != b.Edges[k] {
			return a.Edges[k] < b.Edges[k]
		}
	}
	return false
}
