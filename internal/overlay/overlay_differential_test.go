package overlay_test

// Differential suite: the overlay query layer against the frozen CSR
// kernels it replicates. Queries must be bit-identical — same edges,
// same Length bits — on the intact graph, across seeded random cut
// sequences (eager customization), with cached target labels under
// disable-only cuts (deferred customization, the attack-loop usage), and
// after a SetRoad weight mutation with a rebuilt overlay. The oracle
// (Violating) must agree with the baseline on verdict and witness
// length; attack-level runs with and without the overlay must produce
// identical Results.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/graph"
	"altroute/internal/overlay"
	"altroute/internal/roadnet"
)

func diffFixture(t testing.TB, city citygen.City, seed int64) (*roadnet.Network, *graph.Snapshot, *overlay.Metric) {
	t.Helper()
	net, err := citygen.Build(city, 0.04, seed)
	if err != nil {
		t.Fatal(err)
	}
	snap := net.Snapshot(roadnet.WeightTime)
	ov, err := overlay.Build(context.Background(), snap, overlay.Params{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := overlay.NewMetric(context.Background(), ov)
	if err != nil {
		t.Fatal(err)
	}
	return net, snap, m
}

// samePathBits asserts both engines returned the same reachability, the
// same exact Length bits, and the same edge sequence.
func samePathBits(t *testing.T, label string, want graph.Path, wantOK bool, got graph.Path, gotOK bool) {
	t.Helper()
	if wantOK != gotOK {
		t.Fatalf("%s: baseline ok=%v, overlay ok=%v", label, wantOK, gotOK)
	}
	if !wantOK {
		return
	}
	if math.Float64bits(want.Length) != math.Float64bits(got.Length) {
		t.Fatalf("%s: length bits differ: baseline %v (%x), overlay %v (%x)",
			label, want.Length, math.Float64bits(want.Length), got.Length, math.Float64bits(got.Length))
	}
	if !want.SameEdges(got) {
		t.Fatalf("%s: edge sequences differ:\nbaseline %v\noverlay  %v", label, want.Edges, got.Edges)
	}
}

// pairsFor draws deterministic query endpoints spread over the graph.
func pairsFor(n int, rng *rand.Rand, count int) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, count)
	for len(out) < count {
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		if s != d {
			out = append(out, [2]graph.NodeID{s, d})
		}
	}
	return out
}

func TestQueryMatchesDijkstraIntact(t *testing.T) {
	net, snap, m := diffFixture(t, citygen.Chicago, 1)
	w := net.Weight(roadnet.WeightTime)
	r := graph.NewRouter(net.Graph())
	r.UseSnapshot(snap)
	q := overlay.NewQuerier(m)

	rng := rand.New(rand.NewSource(7))
	for _, pr := range pairsFor(net.NumIntersections(), rng, 40) {
		want, wantOK := r.ShortestPath(pr[0], pr[1], w)
		got, gotOK := q.Query(pr[0], pr[1])
		samePathBits(t, "intact", want, wantOK, got, gotOK)
	}
}

// TestQueryMatchesUnderCutSequences runs 100 seeded random cut
// sequences: disable a handful of edges, eagerly customize, compare;
// re-enable, customize again, compare. Covers both customization
// directions and the disabled-arc paths of the corridor and the
// backward label sweep.
func TestQueryMatchesUnderCutSequences(t *testing.T) {
	net, snap, m := diffFixture(t, citygen.Chicago, 1)
	g := net.Graph()
	w := net.Weight(roadnet.WeightTime)
	r := graph.NewRouter(net.Graph())
	r.UseSnapshot(snap)
	q := overlay.NewQuerier(m)
	ctx := context.Background()
	numEdges := snap.NumEdges()

	for seq := 0; seq < 100; seq++ {
		rng := rand.New(rand.NewSource(int64(1000 + seq)))
		cut := make([]graph.EdgeID, 0, 5)
		for len(cut) < 5 {
			e := graph.EdgeID(rng.Intn(numEdges))
			if !g.EdgeDisabled(e) {
				g.DisableEdge(e)
				cut = append(cut, e)
			}
		}
		m.Customize(ctx, cut...)

		pairs := pairsFor(net.NumIntersections(), rng, 3)
		for _, pr := range pairs {
			want, wantOK := r.ShortestPath(pr[0], pr[1], w)
			got, gotOK := q.Query(pr[0], pr[1])
			samePathBits(t, "cut", want, wantOK, got, gotOK)
		}

		for _, e := range cut {
			g.EnableEdge(e)
		}
		m.Customize(ctx, cut...)
		for _, pr := range pairs {
			want, wantOK := r.ShortestPath(pr[0], pr[1], w)
			got, gotOK := q.Query(pr[0], pr[1])
			samePathBits(t, "restored", want, wantOK, got, gotOK)
		}
	}
}

// TestQueryToCachedLabelsUnderCuts exercises the attack-loop usage:
// target labels built once at the base state stay valid lower bounds
// while edges are only disabled, with repair deferred through MarkStale.
func TestQueryToCachedLabelsUnderCuts(t *testing.T) {
	net, snap, m := diffFixture(t, citygen.Boston, 2)
	g := net.Graph()
	w := net.Weight(roadnet.WeightTime)
	r := graph.NewRouter(net.Graph())
	r.UseSnapshot(snap)
	q := overlay.NewQuerier(m)

	h := net.POIsOfKind(citygen.KindHospital)[0]
	tl := q.BuildTargetLabels(h.Node)
	rng := rand.New(rand.NewSource(11))
	numEdges := snap.NumEdges()

	var cut []graph.EdgeID
	for round := 0; round < 20; round++ {
		e := graph.EdgeID(rng.Intn(numEdges))
		if !g.EdgeDisabled(e) {
			g.DisableEdge(e)
			m.MarkStale(e) // deferred: the next clique read settles it
			cut = append(cut, e)
		}
		for _, pr := range pairsFor(net.NumIntersections(), rng, 2) {
			want, wantOK := r.ShortestPath(pr[0], h.Node, w)
			got, gotOK := q.QueryTo(pr[0], tl)
			samePathBits(t, "cached-labels", want, wantOK, got, gotOK)
		}
	}
	for _, e := range cut {
		g.EnableEdge(e)
	}
	m.Customize(context.Background(), cut...)
}

// TestViolatingMatchesBaselineOracle compares the overlay oracle with
// the baseline (BestAlternativeWithPotential + tie comparison) round by
// round through a simulated attack: verdicts must agree and witness
// lengths must carry identical bits. Witness edges are compared too —
// the fixture's jittered weights leave no float-length ties.
func TestViolatingMatchesBaselineOracle(t *testing.T) {
	net, snap, m := diffFixture(t, citygen.Chicago, 3)
	g := net.Graph()
	w := net.Weight(roadnet.WeightTime)
	r := graph.NewRouter(net.Graph())
	r.UseSnapshot(snap)
	q := overlay.NewQuerier(m)

	h := net.POIsOfKind(citygen.KindHospital)[0]
	rng := rand.New(rand.NewSource(21))
	src := graph.NodeID(rng.Intn(net.NumIntersections()))
	paths := r.KShortest(src, h.Node, 12, w)
	if len(paths) < 12 {
		t.Skip("fixture too thin for rank 12")
	}
	pstar := paths[11]
	tieEps := 1e-9 * math.Max(1, pstar.Length)
	pot := r.ReversePotential(h.Node, w)
	tl := q.BuildTargetLabels(h.Node)

	baseline := func() (graph.Path, bool) {
		alt, ok := r.BestAlternativeWithPotential(src, h.Node, w, pstar, pot)
		if !ok || alt.Length > pstar.Length+tieEps {
			return graph.Path{}, false
		}
		return alt, true
	}

	pstarSet := pstar.EdgeSet()
	var cut []graph.EdgeID
	for round := 0; round < 40; round++ {
		wantPath, want := baseline()
		gotPath, got := q.Violating(src, h.Node, pstar, tieEps, tl)
		if want != got {
			t.Fatalf("round %d: baseline verdict %v, overlay %v", round, want, got)
		}
		if !want {
			break
		}
		samePathBits(t, "witness", wantPath, true, gotPath, true)

		// Cut the cheapest witness edge off p*, the GreedyEdge move.
		best := graph.InvalidEdge
		for _, e := range wantPath.Edges {
			if _, on := pstarSet[e]; on {
				continue
			}
			if best == graph.InvalidEdge || w(e) < w(best) {
				best = e
			}
		}
		if best == graph.InvalidEdge {
			break
		}
		g.DisableEdge(best)
		m.MarkStale(best)
		cut = append(cut, best)
	}
	if len(cut) == 0 {
		t.Fatal("attack simulation never cut an edge")
	}
	for _, e := range cut {
		g.EnableEdge(e)
	}
	m.Customize(context.Background(), cut...)
}

// TestQueryAfterSetRoadRebuild mutates a road (generation bump: the old
// materialized weights go stale), rebuilds snapshot + overlay + metric,
// and verifies queries still match a fresh baseline.
func TestQueryAfterSetRoadRebuild(t *testing.T) {
	net, _, _ := diffFixture(t, citygen.SanFrancisco, 4)
	road := net.Road(0)
	road.SpeedMS = road.SpeedMS / 3
	if err := net.SetRoad(0, road); err != nil {
		t.Fatal(err)
	}

	snap := net.Snapshot(roadnet.WeightTime) // refrozen under the new weights
	ov, err := overlay.Build(context.Background(), snap, overlay.Params{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := overlay.NewMetric(context.Background(), ov)
	if err != nil {
		t.Fatal(err)
	}
	w := net.Weight(roadnet.WeightTime)
	r := graph.NewRouter(net.Graph())
	r.UseSnapshot(snap)
	q := overlay.NewQuerier(m)

	rng := rand.New(rand.NewSource(31))
	for _, pr := range pairsFor(net.NumIntersections(), rng, 20) {
		want, wantOK := r.ShortestPath(pr[0], pr[1], w)
		got, gotOK := q.Query(pr[0], pr[1])
		samePathBits(t, "post-SetRoad", want, wantOK, got, gotOK)
	}
}

// TestAttackResultsIdenticalWithOverlay runs full attacks with and
// without Problem.Overlay: Removed sets, costs, and round counts must be
// identical for every algorithm.
func TestAttackResultsIdenticalWithOverlay(t *testing.T) {
	net, snap, m := diffFixture(t, citygen.Chicago, 5)
	w := net.Weight(roadnet.WeightTime)
	cost := net.Cost(roadnet.CostUniform)
	r := graph.NewRouter(net.Graph())
	r.UseSnapshot(snap)

	h := net.POIsOfKind(citygen.KindHospital)[0]
	rng := rand.New(rand.NewSource(41))
	var pstar graph.Path
	var src graph.NodeID
	for tries := 0; tries < 50; tries++ {
		src = graph.NodeID(rng.Intn(net.NumIntersections()))
		paths := r.KShortest(src, h.Node, 10, w)
		if len(paths) == 10 {
			pstar = paths[9]
			break
		}
	}
	if pstar.Empty() {
		t.Skip("no rank-10 p* found")
	}

	for _, alg := range core.Algorithms() {
		base := core.Problem{
			G: net.Graph(), Source: src, Dest: h.Node, PStar: pstar,
			Weight: w, Cost: cost, Snapshot: snap,
		}
		withOv := base
		withOv.Overlay = m

		resBase, errBase := core.Run(alg, base, core.Options{Seed: 5})
		resOv, errOv := core.Run(alg, withOv, core.Options{Seed: 5})
		if (errBase == nil) != (errOv == nil) {
			t.Fatalf("%s: baseline err=%v, overlay err=%v", alg, errBase, errOv)
		}
		if errBase != nil {
			continue
		}
		if len(resBase.Removed) != len(resOv.Removed) {
			t.Fatalf("%s: removed %d vs %d edges", alg, len(resBase.Removed), len(resOv.Removed))
		}
		for i := range resBase.Removed {
			if resBase.Removed[i] != resOv.Removed[i] {
				t.Fatalf("%s: removed[%d] = %d vs %d", alg, i, resBase.Removed[i], resOv.Removed[i])
			}
		}
		if math.Float64bits(resBase.TotalCost) != math.Float64bits(resOv.TotalCost) {
			t.Fatalf("%s: total cost %v vs %v", alg, resBase.TotalCost, resOv.TotalCost)
		}
		if resBase.Rounds != resOv.Rounds {
			t.Fatalf("%s: rounds %d vs %d", alg, resBase.Rounds, resOv.Rounds)
		}
	}
}
