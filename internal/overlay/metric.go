package overlay

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"altroute/internal/graph"
)

// Metric is the weight half of the CRP structure: per-cell clique
// matrices of boundary-to-boundary shortest distances restricted to the
// cell's interior, honouring the live disabled flags at computation
// time. Cliques are exact distances, so label sweeps over the boundary
// graph compute exact overlay distances — which is what makes corridor
// pruning lossless.
//
// Concurrency: queries take the read lock for their whole run (the
// corridor reads the live disabled flags, which Customize mutators also
// cover when routed through Apply); Customize/Apply take the write
// lock. A Metric and its Queriers therefore tolerate concurrent
// customize-vs-query; the underlying graph's disable calls must go
// through Apply for that to hold.
type Metric struct {
	ov *Overlay

	mu        sync.RWMutex
	cliqueOff []int64   // cell -> offset into clique (k_c^2 entries per cell)
	clique    []float64 // row-major: clique[off + i*k + j] = dist(b_i -> b_j) within the cell

	// pending holds cells whose cliques are stale because a customization
	// was cancelled mid-drain. Queries settle it before trusting labels.
	pending      []int32
	pendingMark  []bool
	pendingCount atomic.Int32

	// baseDisabled is the disabled state captured at NewMetric time — the
	// metric's base state. Cities legitimately ship with closed roads, so
	// "base" is NOT "everything enabled": it is whatever state the cliques
	// were first built under. Immutable after construction.
	baseDisabled []bool

	// cliqueDirty[c] records whether cell c's clique was last computed
	// with at least one interior edge off its base state. A queued repair
	// for a cell that is back at base AND not dirty is a no-op: the clique
	// bytes already describe the base state. Attack loops lean on this —
	// every run's rollback re-enables its cuts, so post-run repairs skip
	// and the cliques stay at their base bytes across runs.
	cliqueDirty []bool

	// tlCache holds target labels built at the base state. Entries are
	// immutable once stored and exact for the base snapshot forever, so
	// repeated attack runs against the same destination skip the label
	// build entirely.
	tlCache map[graph.NodeID]*TargetLabels

	cellsRecomputed atomic.Int64
	buildNS         int64
	customizeNS     atomic.Int64

	// Restricted-Dijkstra scratch, guarded by mu (writers only).
	dist  []float64
	stamp []uint64
	cur   uint64
	h     bheap
}

// NewMetric computes all cell cliques for ov under the current disabled
// state. Cancelling ctx aborts with its error; the partial metric is
// discarded.
func NewMetric(ctx context.Context, ov *Overlay) (*Metric, error) {
	start := time.Now() //lint:allow wallclock build duration feeds shard stats observability, never results
	m := &Metric{
		ov:           ov,
		cliqueOff:    make([]int64, ov.numCells+1),
		pendingMark:  make([]bool, ov.numCells),
		baseDisabled: append([]bool(nil), ov.csr.Disabled...),
		cliqueDirty:  make([]bool, ov.numCells),
		tlCache:      make(map[graph.NodeID]*TargetLabels),
		dist:         make([]float64, ov.csr.N),
		stamp:        make([]uint64, ov.csr.N),
	}
	var total int64
	for c := 0; c < ov.numCells; c++ {
		m.cliqueOff[c] = total
		k := int64(ov.boundaryCount(int32(c)))
		total += k * k
	}
	m.cliqueOff[ov.numCells] = total
	m.clique = make([]float64, total)
	for c := 0; c < ov.numCells; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.computeCellLocked(int32(c))
	}
	m.cellsRecomputed.Store(0)                  // construction is not customization
	m.buildNS = time.Since(start).Nanoseconds() //lint:allow wallclock build duration feeds shard stats observability, never results
	return m, nil
}

// computeCellLocked fills cell c's clique: one restricted Dijkstra per
// boundary node, relaxing only arcs whose head stays inside the cell and
// skipping disabled edges. Caller holds the write lock (or owns m
// exclusively, as NewMetric does).
func (m *Metric) computeCellLocked(c int32) {
	ov := m.ov
	csr := ov.csr
	b0 := ov.cellBOff[c]
	k := ov.boundaryCount(c)
	base := m.cliqueOff[c]
	for i := 0; i < k; i++ {
		src := ov.bNode[b0+int32(i)]
		m.cur++
		h := m.h[:0]
		m.dist[src] = 0
		m.stamp[src] = m.cur
		h.push(bitem{dist: 0, node: src})
		for len(h) > 0 {
			it := h.pop()
			u := it.node
			if it.dist > m.dist[u] || m.stamp[u] != m.cur {
				continue
			}
			du := it.dist
			for s, end := csr.FwdOff[u], csr.FwdOff[u+1]; s < end; s++ {
				e := csr.FwdEdge[s]
				if csr.Disabled[e] {
					continue
				}
				v := csr.FwdTo[s]
				if ov.cell[v] != c {
					continue
				}
				nd := du + csr.FwdW[s]
				if m.stamp[v] != m.cur || nd < m.dist[v] {
					m.dist[v] = nd
					m.stamp[v] = m.cur
					h.push(bitem{dist: nd, node: v})
				}
			}
		}
		m.h = h
		row := base + int64(i*k)
		for j := 0; j < k; j++ {
			dst := ov.bNode[b0+int32(j)]
			if m.stamp[dst] == m.cur {
				m.clique[row+int64(j)] = m.dist[dst]
			} else {
				m.clique[row+int64(j)] = math.Inf(1)
			}
		}
	}
	m.cliqueDirty[c] = m.cellInteriorOffBase(c)
}

// cellInteriorOffBase reports whether any of cell c's interior edges
// has a disabled flag different from the metric's base state — a scan
// of the cell's slice of the edge dispatch table comparing live flags
// against the captured base.
func (m *Metric) cellInteriorOffBase(c int32) bool {
	ov := m.ov
	disabled := ov.csr.Disabled
	for i, end := ov.cellEOff[c], ov.cellEOff[c+1]; i < end; i++ {
		if e := ov.cellEdges[i]; disabled[e] != m.baseDisabled[e] {
			return true
		}
	}
	return false
}

// Customize repairs the metric after the disabled state of the given
// edges changed (disable or enable alike): every cell containing such an
// edge in its interior recomputes its clique; cross-cell edges cost
// nothing because cross arcs read the live disabled flags. Returns the
// number of cells recomputed. Cancelling ctx defers the remaining cells:
// they stay queued and are settled by the next Customize or query.
func (m *Metric) Customize(ctx context.Context, edges ...graph.EdgeID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range edges {
		if int(e) >= len(m.ov.eCell) {
			continue // edge added after freeze: snapshot is stale anyway
		}
		if c := m.ov.eCell[e]; c >= 0 && !m.pendingMark[c] {
			m.pendingMark[c] = true
			m.pending = append(m.pending, c)
		}
	}
	return m.drainLocked(ctx)
}

// Apply runs mutate under the metric's write lock and then customizes
// for the given edges. It is the race-safe way to disable or enable
// edges while Queriers run concurrently: queries hold the read lock
// across their whole search, so they observe either the pre-mutate or
// the fully-customized post-mutate state, never a torn one.
func (m *Metric) Apply(ctx context.Context, edges []graph.EdgeID, mutate func()) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	mutate()
	for _, e := range edges {
		if int(e) >= len(m.ov.eCell) {
			continue
		}
		if c := m.ov.eCell[e]; c >= 0 && !m.pendingMark[c] {
			m.pendingMark[c] = true
			m.pending = append(m.pending, c)
		}
	}
	return m.drainLocked(ctx)
}

// MarkStale queues the cells affected by a disabled-state change of the
// given edges without recomputing anything: the deferred half of
// customization. Marked cells are repaired — once, however many toggles
// were coalesced — by the next Customize call or by ensureSettled when a
// query next reads the cliques. The attack loops use this as their
// per-cut hook: the oracle reads only cached target labels (valid lower
// bounds under cuts) and raw CSR arcs mid-attack, so repair can ride
// until the next clique read instead of running inside the hot loop.
func (m *Metric) MarkStale(edges ...graph.EdgeID) {
	m.mu.Lock()
	for _, e := range edges {
		if int(e) >= len(m.ov.eCell) {
			continue
		}
		if c := m.ov.eCell[e]; c >= 0 && !m.pendingMark[c] {
			m.pendingMark[c] = true
			m.pending = append(m.pending, c)
		}
	}
	m.pendingCount.Store(int32(len(m.pending)))
	m.mu.Unlock()
}

// Pending returns the number of cells queued for repair.
func (m *Metric) Pending() int { return int(m.pendingCount.Load()) }

// drainLocked recomputes queued cells, stopping early (cells stay
// queued) when ctx is cancelled.
func (m *Metric) drainLocked(ctx context.Context) int {
	start := time.Now() //lint:allow wallclock customize duration feeds shard stats observability, never results
	done := 0
	for len(m.pending) > 0 {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		c := m.pending[len(m.pending)-1]
		m.pending = m.pending[:len(m.pending)-1]
		m.pendingMark[c] = false
		// A cell whose clique was last computed at base and whose interior
		// is back at base needs no work: coalesced toggles that net out to
		// the base state (an attack run's rollback) repair to the bytes
		// already stored.
		if !m.cliqueDirty[c] && !m.cellInteriorOffBase(c) {
			continue
		}
		m.computeCellLocked(c)
		done++
	}
	m.pendingCount.Store(int32(len(m.pending)))
	if done > 0 {
		m.cellsRecomputed.Add(int64(done))
	}
	m.customizeNS.Add(time.Since(start).Nanoseconds()) //lint:allow wallclock customize duration feeds shard stats observability, never results
	return done
}

// atBaseLocked reports whether the live disabled flags currently equal
// the metric's base state — the only state the target-label cache
// serves. One linear pass over the flags with an early out on the first
// difference; microseconds against the label build it gates.
func (m *Metric) atBaseLocked() bool {
	disabled := m.ov.csr.Disabled
	for e, d := range m.baseDisabled {
		if disabled[e] != d {
			return false
		}
	}
	return true
}

// ensureSettled drains any customization deferred by a cancelled
// Customize before a query trusts the cliques.
func (m *Metric) ensureSettled() {
	if m.pendingCount.Load() == 0 {
		return
	}
	m.mu.Lock()
	m.drainLocked(nil)
	m.mu.Unlock()
}

// Clone returns an independent copy sharing the immutable Overlay:
// cliques and pending state are copied, counters start at zero. The
// clone must only be used with a graph whose disabled state matches the
// one the cliques were computed under — in practice, clone the graph and
// rebuild, or clone metric and graph together before any divergence.
func (m *Metric) Clone() *Metric {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := &Metric{
		ov:           m.ov,
		cliqueOff:    m.cliqueOff,
		clique:       append([]float64(nil), m.clique...),
		pending:      append([]int32(nil), m.pending...),
		pendingMark:  append([]bool(nil), m.pendingMark...),
		baseDisabled: m.baseDisabled, // immutable after construction
		cliqueDirty:  append([]bool(nil), m.cliqueDirty...),
		tlCache:      make(map[graph.NodeID]*TargetLabels, len(m.tlCache)),
		dist:         make([]float64, m.ov.csr.N),
		stamp:        make([]uint64, m.ov.csr.N),
		buildNS:      m.buildNS,
	}
	for t, tl := range m.tlCache {
		c.tlCache[t] = tl // entries are immutable: sharing them is safe
	}
	c.pendingCount.Store(int32(len(c.pending)))
	return c
}

// Overlay returns the topology overlay the metric is built over.
func (m *Metric) Overlay() *Overlay { return m.ov }

// Snapshot returns the frozen snapshot the overlay was built over.
func (m *Metric) Snapshot() *graph.Snapshot { return m.ov.snap }

// CellsRecomputed returns the cumulative number of cell cliques
// recomputed by Customize/Apply calls.
func (m *Metric) CellsRecomputed() int64 { return m.cellsRecomputed.Load() }

// BuildNanos returns the wall-clock nanoseconds the initial clique build
// took — observability only.
func (m *Metric) BuildNanos() int64 { return m.buildNS }

// CustomizeNanos returns cumulative wall-clock nanoseconds spent in
// customization drains — observability only.
func (m *Metric) CustomizeNanos() int64 { return m.customizeNS.Load() }
