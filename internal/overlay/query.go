package overlay

import (
	"context"
	"math"

	"altroute/internal/graph"
)

// bitem and bheap replicate the frozen kernels' heap exactly: the same
// (distance, node) total order and the same 4-ary hole-moving layout.
// The total order is what makes pop sequences — and therefore outputs —
// independent of heap implementation, so the corridor kernel inherits
// the frozen kernels' bit-identity guarantee.
type bitem struct {
	dist float64
	node int32
}

func bless(a, b bitem) bool {
	if a.dist != b.dist { //lint:allow floateq heap order must be exact: near-ties are distinct priorities, equal bits fall through to the node tie-break
		return a.dist < b.dist
	}
	return a.node < b.node
}

type bheap []bitem

func (h *bheap) push(it bitem) {
	*h = append(*h, it)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !bless(it, hh[p]) {
			break
		}
		hh[i] = hh[p]
		i = p
	}
	hh[i] = it
}

func (h *bheap) pop() bitem {
	old := *h
	top := old[0]
	last := len(old) - 1
	*h = old[:last]
	if last == 0 {
		return top
	}
	it := old[last]
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		small := first
		end := first + 4
		if end > last {
			end = last
		}
		for child := first + 1; child < end; child++ {
			if bless(old[child], old[small]) {
				small = child
			}
		}
		if !bless(old[small], it) {
			break
		}
		old[i] = old[small]
		i = small
	}
	old[i] = it
	return top
}

// TargetLabels caches one target's backward overlay labels: for every
// global boundary index, the exact distance to the target under the
// disabled state the labels were built in; per cell, the minimum label
// (the corridor lower bound). Labels stay valid LOWER bounds under any
// further edge disables or Yen bans (removals only lengthen distances),
// which is why one build per attack serves every round of cuts. Edge
// RE-enables break that monotonicity: rebuild labels (or restore the
// disabled state and customize) before trusting them again.
type TargetLabels struct {
	target graph.NodeID
	tcell  int32     // -1 when the target is invalid
	label  []float64 // per global boundary index: dist(b -> target)
	// pot is the boundary labels completed to every node through its
	// cell's interior: the exact dist(v -> target) at build time, and a
	// valid lower bound under any further disables — a reverse potential,
	// obtained from the overlay instead of a full reverse Dijkstra. It is
	// both the corridor pruning bound and the exact upper bound queries
	// seed their cutoff with.
	pot []float64
}

// Target returns the node the labels were built for.
func (tl *TargetLabels) Target() graph.NodeID { return tl.target }

// Querier runs overlay-accelerated point-to-point queries and oracle
// checks over one Metric. It owns epoch-stamped scratch arrays exactly
// like graph.Router, so creating one is cheap relative to queries but
// not free; reuse it across queries. Not safe for concurrent use —
// create one Querier per goroutine (they may share the Metric).
type Querier struct {
	m   *Metric
	ov  *Overlay
	csr graph.CSRView
	ctx context.Context

	// Corridor scratch (node-indexed, epoch-stamped).
	dist  []float64
	prevE []int32
	stamp []uint64
	cur   uint64
	h     bheap

	// Restricted within-cell scratch (node-indexed, epoch-stamped).
	rdist  []float64
	rstamp []uint64
	rcur   uint64
	rh     bheap

	// Yen spur bans (epoch-stamped, mirroring graph.Router).
	nodeBan  []uint64
	edgeBan  []uint64
	banEpoch uint64
}

// NewQuerier returns a Querier over m.
func NewQuerier(m *Metric) *Querier {
	n := m.ov.csr.N
	return &Querier{
		m:   m,
		ov:  m.ov,
		csr: m.ov.csr,
		// Epoch 1 so the zero-filled ban arrays start with nothing
		// banned; epoch 0 would read every node and edge as banned.
		banEpoch: 1,
		dist:     make([]float64, n),
		prevE:    make([]int32, n),
		stamp:    make([]uint64, n),
		rdist:    make([]float64, n),
		rstamp:   make([]uint64, n),
		nodeBan:  make([]uint64, n),
		edgeBan:  make([]uint64, m.ov.csr.M),
	}
}

// SetContext attaches a cancellation context checked at query
// boundaries and inside label sweeps. A cancelled query reports "no
// path" — the same contract as graph.Router.SetContext.
func (q *Querier) SetContext(ctx context.Context) { q.ctx = ctx }

func (q *Querier) interrupted() bool {
	return q.ctx != nil && q.ctx.Err() != nil
}

func (q *Querier) clearBans() { q.banEpoch++ }

func (q *Querier) banNode(v graph.NodeID) { q.nodeBan[v] = q.banEpoch }

func (q *Querier) banEdge(e graph.EdgeID) { q.edgeBan[e] = q.banEpoch }

func (q *Querier) nodeBanned(v graph.NodeID) bool { return q.nodeBan[v] == q.banEpoch }

func (q *Querier) edgeBanned(e graph.EdgeID) bool { return q.edgeBan[e] == q.banEpoch }

func (q *Querier) valid(v graph.NodeID) bool { return v >= 0 && int(v) < q.csr.N }

// BuildTargetLabels computes backward overlay labels for t under the
// current disabled state: a reverse restricted Dijkstra inside t's cell
// seeds the boundary labels, then a reverse Dijkstra over clique arcs
// and cross-cell arcs (honouring live disabled flags) runs to
// exhaustion. Cost is O(B log B + Σk²) over boundary nodes — paid once
// per target and amortized over every query and oracle round against
// it. Cancelling mid-sweep leaves some labels +Inf, which makes
// dependent queries report "no path" (the cancelled-query contract).
//
// Builds at the metric's base state (the disabled flags NewMetric saw)
// are served from and stored into the metric's label cache: base labels
// are exact for that state forever, so every attack run against a
// destination after the first reuses them for free.
func (q *Querier) BuildTargetLabels(t graph.NodeID) *TargetLabels {
	m := q.m
	m.ensureSettled()
	m.mu.RLock()
	base := m.atBaseLocked()
	if base {
		if tl := m.tlCache[t]; tl != nil {
			m.mu.RUnlock()
			return tl
		}
	}
	tl := q.buildTargetLabelsLocked(t)
	m.mu.RUnlock()
	// Cache only complete base-state builds: a cancelled sweep leaves
	// +Inf holes that must not outlive this query.
	if base && !q.interrupted() {
		m.mu.Lock()
		if len(m.tlCache) >= tlCacheMax {
			// Evict one arbitrary entry: the cache exists for the few
			// hot destinations attack loops hammer, not to index every
			// target a query server is ever asked about.
			for old := range m.tlCache {
				delete(m.tlCache, old)
				break
			}
		}
		m.tlCache[t] = tl
		m.mu.Unlock()
	}
	return tl
}

// tlCacheMax bounds the per-metric base-state label cache. Labels cost
// O(N) memory each; a few dozen covers every destination an experiment
// sweep or attack campaign touches while keeping a long-lived server's
// footprint bounded.
const tlCacheMax = 64

func (q *Querier) buildTargetLabelsLocked(t graph.NodeID) *TargetLabels {
	ov := q.ov
	tl := &TargetLabels{target: t, tcell: -1}
	tl.label = make([]float64, ov.nb)
	for i := range tl.label {
		tl.label[i] = math.Inf(1)
	}
	tl.pot = make([]float64, q.csr.N)
	for i := range tl.pot {
		tl.pot[i] = math.Inf(1)
	}
	if !q.valid(t) {
		return tl
	}
	tc := ov.cell[t]
	tl.tcell = tc

	// Seed: exact distances from each of t's cell's boundary nodes to t
	// through the cell interior (reverse restricted Dijkstra from t).
	q.restrictedReverse(t, tc)
	for gb := ov.cellBOff[tc]; gb < ov.cellBOff[tc+1]; gb++ {
		if v := ov.bNode[gb]; q.rstamp[v] == q.rcur {
			tl.label[gb] = q.rdist[v]
		}
	}

	// Sweep the boundary graph backwards to exhaustion. tl.label doubles
	// as the distance array (fresh, all +Inf): lazy-deletion Dijkstra.
	bh := q.rh[:0]
	for gb := ov.cellBOff[tc]; gb < ov.cellBOff[tc+1]; gb++ {
		if d := tl.label[gb]; !math.IsInf(d, 1) {
			bh.push(bitem{dist: d, node: gb})
		}
	}
	disabled := q.csr.Disabled
	cancelled := false
	for len(bh) > 0 {
		if q.interrupted() {
			cancelled = true // unsettled labels stay +Inf: dependent queries report no path
			break
		}
		it := bh.pop()
		gb := it.node
		if it.dist > tl.label[gb] {
			continue // stale
		}
		// Reverse cross arcs: predecessors in other cells.
		for i, end := ov.rxOff[gb], ov.rxOff[gb+1]; i < end; i++ {
			if disabled[ov.rxEdge[i]] {
				continue
			}
			p := ov.rxFrom[i]
			if nd := it.dist + ov.rxW[i]; nd < tl.label[p] {
				tl.label[p] = nd
				bh.push(bitem{dist: nd, node: p})
			}
		}
		// Reverse clique arcs: other boundaries of gb's own cell.
		c := ov.cell[ov.bNode[gb]]
		b0 := ov.cellBOff[c]
		k := int32(ov.boundaryCount(c))
		j := int64(gb - b0)
		base := q.m.cliqueOff[c]
		for i := int32(0); i < k; i++ {
			w := q.m.clique[base+int64(i)*int64(k)+j]
			if math.IsInf(w, 1) {
				continue
			}
			p := b0 + i
			if nd := it.dist + w; nd < tl.label[p] {
				tl.label[p] = nd
				bh.push(bitem{dist: nd, node: p})
			}
		}
	}
	q.rh = bh[:0]

	if !cancelled {
		q.completePotential(tl)
	}
	return tl
}

// completePotential extends the boundary labels to a per-node reverse
// potential: for every node v, dist(v -> target) at build time. Any
// shortest v->target path decomposes at the first boundary node where it
// leaves v's cell, so a per-cell multi-source reverse Dijkstra seeded
// with (boundary, label) pairs — plus (target, 0) in the target's cell —
// completes the labels exactly. Cells are disjoint, so one pass with
// tiny heaps costs about one graph sweep. Cancelling mid-pass leaves
// remaining nodes at +Inf: dependent queries report "no path" (the
// cancelled-query contract), never a wrong one.
func (q *Querier) completePotential(tl *TargetLabels) {
	ov := q.ov
	csr := q.csr
	pot := tl.pot
	h := q.rh[:0]
	for c := int32(0); int(c) < ov.numCells; c++ {
		if q.interrupted() {
			break
		}
		h = h[:0]
		for gb := ov.cellBOff[c]; gb < ov.cellBOff[c+1]; gb++ {
			if d := tl.label[gb]; !math.IsInf(d, 1) {
				b := ov.bNode[gb]
				if d < pot[b] {
					pot[b] = d
					h.push(bitem{dist: d, node: b})
				}
			}
		}
		if c == tl.tcell && pot[tl.target] > 0 {
			pot[tl.target] = 0
			h.push(bitem{dist: 0, node: int32(tl.target)})
		}
		for len(h) > 0 {
			it := h.pop()
			if it.dist > pot[it.node] {
				continue // stale
			}
			for i, end := csr.RevOff[it.node], csr.RevOff[it.node+1]; i < end; i++ {
				if csr.Disabled[csr.RevEdge[i]] {
					continue
				}
				v := csr.RevFrom[i]
				if ov.cell[v] != c {
					continue
				}
				if nd := it.dist + csr.RevW[i]; nd < pot[v] {
					pot[v] = nd
					h.push(bitem{dist: nd, node: v})
				}
			}
		}
	}
	q.rh = h[:0]
}

// restrictedReverse runs a reverse Dijkstra from t relaxing only arcs
// whose tail stays inside cell c, honouring disabled flags. Results land
// in the r* scratch under epoch q.rcur.
func (q *Querier) restrictedReverse(t graph.NodeID, c int32) {
	csr := q.csr
	ov := q.ov
	q.rcur++
	h := q.rh[:0]
	q.rdist[t] = 0
	q.rstamp[t] = q.rcur
	h.push(bitem{dist: 0, node: int32(t)})
	for len(h) > 0 {
		it := h.pop()
		u := it.node
		if it.dist > q.rdist[u] || q.rstamp[u] != q.rcur {
			continue
		}
		du := it.dist
		for i, end := csr.RevOff[u], csr.RevOff[u+1]; i < end; i++ {
			if csr.Disabled[csr.RevEdge[i]] {
				continue
			}
			v := csr.RevFrom[i]
			if ov.cell[v] != c {
				continue
			}
			nd := du + csr.RevW[i]
			if q.rstamp[v] != q.rcur || nd < q.rdist[v] {
				q.rdist[v] = nd
				q.rstamp[v] = q.rcur
				h.push(bitem{dist: nd, node: v})
			}
		}
	}
	q.rh = h
}

// Query computes the exact shortest path s -> t, building target labels
// on the fly. When issuing many queries against one target (the oracle
// does), build the labels once and call QueryTo.
func (q *Querier) Query(s, t graph.NodeID) (graph.Path, bool) {
	return q.QueryTo(s, q.BuildTargetLabels(t))
}

// QueryTo computes the exact shortest path from s to tl's target. The
// result is bit-identical to the frozen Dijkstra kernel
// (Router.ShortestPath with a snapshot attached): the corridor search IS
// that kernel, with offers that provably cannot beat the known upper
// bound recorded but not pushed. REQUIRES the metric to be customized to
// the current disabled state and tl built under a state whose enabled
// set is a superset of the current one (labels must be lower bounds).
func (q *Querier) QueryTo(s graph.NodeID, tl *TargetLabels) (graph.Path, bool) {
	if q.interrupted() {
		return graph.Path{}, false
	}
	q.m.ensureSettled()
	q.m.mu.RLock()
	defer q.m.mu.RUnlock()
	if !q.valid(s) || tl == nil || tl.tcell < 0 || !q.valid(tl.target) {
		return graph.Path{}, false
	}
	u := tl.pot[s]
	if math.IsInf(u, 1) {
		// Unreachable, definitively: +Inf means s could not reach the
		// target even at build time, and disables only remove paths.
		return graph.Path{}, false
	}
	if p, ok := q.corridor(s, tl.target, tl, 0, u); ok {
		return p, true
	}
	// Labels built before cuts under-estimate u (they are lower bounds,
	// not upper bounds, once edges disappear), so the bounded pass can
	// come up empty on a reachable target. The unbounded pass degrades
	// to the plain frozen kernel — every offer passes the +Inf cutoff —
	// and stays bit-exact.
	return q.corridor(s, tl.target, tl, 0, math.Inf(1))
}

// corridor is the frozen Dijkstra kernel with lower-bound pruning: the
// exact relaxation loop of Router.shortestCSR — same CSR slot order,
// same float operations, same heap order, same early exit, same ban and
// disabled checks — except that an improving offer to v is pushed only
// when rootLen + dist(v) + pot(v) can still beat the slacked cutoff.
// The offer's distance and prev-edge are ALWAYS recorded, so a stale
// heap entry for v can never re-relax an outdated distance (the
// recorded-but-unpushed rule; see DESIGN.md §14 for why pruned runs
// settle every corridor node at identical bits). Returns the shortest
// path from s whose total rootLen + length fits the slacked cutoff,
// false when none exists (or the search was pre-empted by bans on s/t).
func (q *Querier) corridor(s, t graph.NodeID, tl *TargetLabels, rootLen, cutoff float64) (graph.Path, bool) {
	if q.nodeBanned(s) || q.nodeBanned(t) {
		return graph.Path{}, false
	}
	// The slack mirrors graph.spurBound: candidates a hair over the bound
	// survive float noise here and are re-judged exactly by the caller.
	lim := cutoff + 1e-9*cutoff
	csr := q.csr
	pot := tl.pot
	q.cur++
	h := q.h[:0]
	q.dist[s] = 0
	q.prevE[s] = int32(graph.InvalidEdge)
	q.stamp[s] = q.cur
	h.push(bitem{dist: 0, node: int32(s)})
	disabled := csr.Disabled

	for len(h) > 0 {
		it := h.pop()
		if q.stamp[t] == q.cur && q.dist[t] <= it.dist {
			q.h = h
			return q.buildPath(s, t), true
		}
		u := it.node
		if it.dist > q.dist[u] || q.stamp[u] != q.cur {
			continue // stale heap entry
		}
		du := it.dist
		for i, end := csr.FwdOff[u], csr.FwdOff[u+1]; i < end; i++ {
			e := graph.EdgeID(csr.FwdEdge[i])
			if disabled[e] || q.edgeBanned(e) {
				continue
			}
			v := graph.NodeID(csr.FwdTo[i])
			if q.nodeBanned(v) {
				continue
			}
			nd := du + csr.FwdW[i]
			if q.stamp[v] != q.cur || nd < q.dist[v] {
				q.dist[v] = nd
				q.prevE[v] = csr.FwdEdge[i]
				q.stamp[v] = q.cur
				if rootLen+nd+pot[v] <= lim {
					h.push(bitem{dist: nd, node: int32(v)})
				}
			}
		}
	}
	q.h = h
	return graph.Path{}, false
}

// buildPath reconstructs the corridor search's path from the prev-edge
// chain, exactly as Router.buildPath does: Length carries dist[t]'s
// exact bits.
func (q *Querier) buildPath(s, t graph.NodeID) graph.Path {
	var edges []graph.EdgeID
	for n := t; n != s; {
		e := graph.EdgeID(q.prevE[n])
		edges = append(edges, e)
		n = q.edgeFrom(e)
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	nodes := make([]graph.NodeID, 0, len(edges)+1)
	nodes = append(nodes, s)
	n := s
	for _, e := range edges {
		n = q.edgeTo(e)
		nodes = append(nodes, n)
	}
	return graph.Path{Nodes: nodes, Edges: edges, Length: q.dist[t]}
}

// edgeFrom/edgeTo resolve an edge's endpoints from the snapshot's graph
// (same source of truth as Router.buildPath).
func (q *Querier) edgeFrom(e graph.EdgeID) graph.NodeID {
	return q.ov.snap.Graph().Arc(e).From
}

func (q *Querier) edgeTo(e graph.EdgeID) graph.NodeID {
	return q.ov.snap.Graph().Arc(e).To
}
