// Package overlay implements a CRP-style partition overlay over frozen
// graph snapshots: a deterministic recursive bisection of the node set
// into small cells, boundary-node identification, and per-cell clique
// matrices of boundary-to-boundary shortest distances (the "metric").
//
// The overlay accelerates the attack oracle two ways. Point-to-point
// queries build backward distance labels over the boundary graph
// (cliques + cross-cell arcs) and then run the exact flat-CSR Dijkstra
// kernel with corridor pruning: an improving offer whose distance plus
// the target-label lower bound of its cell exceeds the known upper bound
// is recorded but never pushed, so the search explores only the
// near-shortest band instead of the whole ball. Because the pruned
// kernel is the *same* kernel relaxing the *same* CSR arcs in the same
// order, outputs are bit-identical to the unpruned frozen kernels (see
// DESIGN.md §14 for the proof sketch and its float-collision caveat).
//
// The attack loop disables edges; the metric is *customized*, not
// rebuilt: a cut interior to a cell recomputes only that cell's clique,
// a cross-cell cut costs nothing (cross arcs read the live disabled
// flags the snapshot already aliases).
package overlay

import (
	"context"
	"math/rand"
	"sort"

	"altroute/internal/graph"
)

// DefaultMaxCellSize is the partition leaf bound when Params.MaxCellSize
// is zero. Small enough that within-cell restricted Dijkstras stay in
// cache, large enough that the boundary graph is much smaller than the
// original.
const DefaultMaxCellSize = 64

// Params controls partition construction. The zero value is usable.
type Params struct {
	// MaxCellSize bounds the number of nodes per leaf cell.
	// Defaults to DefaultMaxCellSize when <= 0.
	MaxCellSize int
	// Seed drives the BFS-grown bisection's start-node choices. The
	// partition is a pure function of (topology, MaxCellSize, Seed).
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.MaxCellSize <= 0 {
		p.MaxCellSize = DefaultMaxCellSize
	}
	return p
}

// Overlay is the topology half of the CRP structure: the partition,
// boundary indexing, and cross-cell arc lists. It is immutable after
// Build and safe for any number of concurrent readers. Weight-dependent
// state (the cliques) lives in Metric so that edge disables never touch
// the Overlay.
type Overlay struct {
	snap   *graph.Snapshot
	csr    graph.CSRView
	params Params

	numCells  int
	cell      []int32 // node -> leaf cell
	cellOff   []int32 // cell -> offset into cellNodes
	cellNodes []int32 // nodes grouped by cell, ascending within each

	// Boundary nodes are endpoints of cross-cell arcs. Global boundary
	// indices are cell-major (all of cell 0's boundaries first), ascending
	// node ID within a cell, so a cell's clique rows are contiguous.
	nb       int
	bIndex   []int32 // node -> global boundary index, or -1
	bNode    []int32 // global boundary index -> node
	cellBOff []int32 // cell -> first global boundary index of that cell

	// Cross-cell arcs in CSR form over global boundary indices, forward
	// (out of gb) and reverse (into gb). Slot order within a boundary node
	// follows the snapshot's slot order, and each arc carries its original
	// edge ID so relaxations honour the live disabled flags.
	xOff  []int32
	xTo   []int32
	xEdge []int32
	xW    []float64

	rxOff  []int32
	rxFrom []int32
	rxEdge []int32
	rxW    []float64

	// eCell maps each edge to the cell containing both endpoints, or -1
	// for cross-cell edges: the customization dispatch table.
	eCell []int32

	// cellEOff/cellEdges list each cell's interior edges (CSR layout over
	// eCell): the metric's base-state repair check scans a cell's entry to
	// decide whether a queued repair is a no-op.
	cellEOff  []int32
	cellEdges []int32
}

// Build constructs the partition overlay for snap. The partition is
// deterministic under p.Seed: recursive bisection where each half is
// grown by BFS (over the undirected adjacency, CSR slot order) from a
// seeded start node until it holds half the set. Disabled edges are
// ignored — the partition is topology-only, so disable/enable churn
// never invalidates it.
func Build(ctx context.Context, snap *graph.Snapshot, p Params) (*Overlay, error) {
	p = p.withDefaults()
	csr := snap.View()
	n, m := csr.N, csr.M
	ov := &Overlay{snap: snap, csr: csr, params: p}

	b := &bisector{
		csr:      csr,
		max:      p.MaxCellSize,
		rng:      rand.New(rand.NewSource(p.Seed)),
		cell:     make([]int32, n),
		setStamp: make([]uint64, n),
		visStamp: make([]uint64, n),
		aStamp:   make([]uint64, n),
	}
	if n > 0 {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		if err := b.bisect(ctx, all); err != nil {
			return nil, err
		}
	}
	ov.numCells = int(b.numCells)
	ov.cell = b.cell

	// Group nodes by cell (counting sort; nodes ascend within a cell
	// because we scan them in order).
	ov.cellOff = make([]int32, ov.numCells+1)
	for _, c := range ov.cell {
		ov.cellOff[c+1]++
	}
	for c := 0; c < ov.numCells; c++ {
		ov.cellOff[c+1] += ov.cellOff[c]
	}
	ov.cellNodes = make([]int32, n)
	cursor := append([]int32(nil), ov.cellOff[:ov.numCells]...)
	for v := 0; v < n; v++ {
		c := ov.cell[v]
		ov.cellNodes[cursor[c]] = int32(v)
		cursor[c]++
	}

	// Boundary detection and the customization dispatch table: every arc
	// appears exactly once in the forward CSR.
	ov.eCell = make([]int32, m)
	isB := make([]bool, n)
	for u := 0; u < n; u++ {
		cu := ov.cell[u]
		for i, end := csr.FwdOff[u], csr.FwdOff[u+1]; i < end; i++ {
			v := csr.FwdTo[i]
			if cv := ov.cell[v]; cv != cu {
				ov.eCell[csr.FwdEdge[i]] = -1
				isB[u] = true
				isB[v] = true
			} else {
				ov.eCell[csr.FwdEdge[i]] = cu
			}
		}
	}

	// Global boundary indices, cell-major.
	ov.bIndex = make([]int32, n)
	for i := range ov.bIndex {
		ov.bIndex[i] = -1
	}
	ov.cellBOff = make([]int32, ov.numCells+1)
	for c := 0; c < ov.numCells; c++ {
		ov.cellBOff[c] = int32(ov.nb)
		for i, end := ov.cellOff[c], ov.cellOff[c+1]; i < end; i++ {
			v := ov.cellNodes[i]
			if isB[v] {
				ov.bIndex[v] = int32(ov.nb)
				ov.bNode = append(ov.bNode, v)
				ov.nb++
			}
		}
	}
	ov.cellBOff[ov.numCells] = int32(ov.nb)

	// Per-cell interior edge lists (counting sort over eCell).
	ov.cellEOff = make([]int32, ov.numCells+1)
	for _, c := range ov.eCell {
		if c >= 0 {
			ov.cellEOff[c+1]++
		}
	}
	for c := 0; c < ov.numCells; c++ {
		ov.cellEOff[c+1] += ov.cellEOff[c]
	}
	ov.cellEdges = make([]int32, ov.cellEOff[ov.numCells])
	ecur := append([]int32(nil), ov.cellEOff[:ov.numCells]...)
	for e, c := range ov.eCell {
		if c >= 0 {
			ov.cellEdges[ecur[c]] = int32(e)
			ecur[c]++
		}
	}

	ov.buildCrossArcs()
	return ov, nil
}

// buildCrossArcs assembles the forward and reverse cross-cell arc CSR
// over global boundary indices, preserving per-node slot order.
func (ov *Overlay) buildCrossArcs() {
	csr := ov.csr
	ov.xOff = make([]int32, ov.nb+1)
	ov.rxOff = make([]int32, ov.nb+1)
	for u := 0; u < csr.N; u++ {
		cu := ov.cell[u]
		for i, end := csr.FwdOff[u], csr.FwdOff[u+1]; i < end; i++ {
			if ov.cell[csr.FwdTo[i]] != cu {
				ov.xOff[ov.bIndex[u]+1]++
			}
		}
		for i, end := csr.RevOff[u], csr.RevOff[u+1]; i < end; i++ {
			if ov.cell[csr.RevFrom[i]] != cu {
				ov.rxOff[ov.bIndex[u]+1]++
			}
		}
	}
	for i := 0; i < ov.nb; i++ {
		ov.xOff[i+1] += ov.xOff[i]
		ov.rxOff[i+1] += ov.rxOff[i]
	}
	nx := ov.xOff[ov.nb]
	ov.xTo = make([]int32, nx)
	ov.xEdge = make([]int32, nx)
	ov.xW = make([]float64, nx)
	nrx := ov.rxOff[ov.nb]
	ov.rxFrom = make([]int32, nrx)
	ov.rxEdge = make([]int32, nrx)
	ov.rxW = make([]float64, nrx)
	xPos := append([]int32(nil), ov.xOff[:ov.nb]...)
	rxPos := append([]int32(nil), ov.rxOff[:ov.nb]...)
	for u := 0; u < csr.N; u++ {
		cu := ov.cell[u]
		for i, end := csr.FwdOff[u], csr.FwdOff[u+1]; i < end; i++ {
			v := csr.FwdTo[i]
			if ov.cell[v] == cu {
				continue
			}
			gb := ov.bIndex[u]
			ov.xTo[xPos[gb]] = ov.bIndex[v]
			ov.xEdge[xPos[gb]] = csr.FwdEdge[i]
			ov.xW[xPos[gb]] = csr.FwdW[i]
			xPos[gb]++
		}
		for i, end := csr.RevOff[u], csr.RevOff[u+1]; i < end; i++ {
			v := csr.RevFrom[i]
			if ov.cell[v] == cu {
				continue
			}
			gb := ov.bIndex[u]
			ov.rxFrom[rxPos[gb]] = ov.bIndex[v]
			ov.rxEdge[rxPos[gb]] = csr.RevEdge[i]
			ov.rxW[rxPos[gb]] = csr.RevW[i]
			rxPos[gb]++
		}
	}
}

// bisector carries the recursive bisection's reusable scratch.
type bisector struct {
	csr      graph.CSRView
	max      int
	rng      *rand.Rand
	cell     []int32
	numCells int32

	setStamp []uint64 // node in the current set
	visStamp []uint64 // node visited by the current BFS
	aStamp   []uint64 // node assigned to side A
	cur      uint64
	queue    []int32
	order    []int32
}

// bisect assigns leaf cell IDs to set (sorted ascending), splitting it
// until leaves fit the cell bound. Halves are grown by BFS from an
// rng-chosen start; disconnected remainders reseed from the lowest
// unvisited member, so the split is total and deterministic.
func (b *bisector) bisect(ctx context.Context, set []int32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(set) <= b.max {
		id := b.numCells
		b.numCells++
		for _, v := range set {
			b.cell[v] = id
		}
		return nil
	}
	b.cur++
	cur := b.cur
	for _, v := range set {
		b.setStamp[v] = cur
	}
	half := (len(set) + 1) / 2
	b.order = b.order[:0]
	q := b.queue[:0]
	head := 0
	start := set[b.rng.Intn(len(set))]
	b.visStamp[start] = cur
	q = append(q, start)
	reseed := 0
	for len(b.order) < half {
		if head == len(q) {
			for b.visStamp[set[reseed]] == cur {
				reseed++
			}
			v := set[reseed]
			b.visStamp[v] = cur
			q = append(q, v)
		}
		u := q[head]
		head++
		b.order = append(b.order, u)
		if len(b.order) == half {
			break
		}
		for i, end := b.csr.FwdOff[u], b.csr.FwdOff[u+1]; i < end; i++ {
			v := b.csr.FwdTo[i]
			if b.setStamp[v] == cur && b.visStamp[v] != cur {
				b.visStamp[v] = cur
				q = append(q, v)
			}
		}
		for i, end := b.csr.RevOff[u], b.csr.RevOff[u+1]; i < end; i++ {
			v := b.csr.RevFrom[i]
			if b.setStamp[v] == cur && b.visStamp[v] != cur {
				b.visStamp[v] = cur
				q = append(q, v)
			}
		}
	}
	b.queue = q[:0]
	sideA := make([]int32, half)
	copy(sideA, b.order)
	for _, v := range sideA {
		b.aStamp[v] = cur
	}
	sort.Slice(sideA, func(i, j int) bool { return sideA[i] < sideA[j] })
	rest := make([]int32, 0, len(set)-half)
	for _, v := range set {
		if b.aStamp[v] != cur {
			rest = append(rest, v)
		}
	}
	if err := b.bisect(ctx, sideA); err != nil {
		return err
	}
	return b.bisect(ctx, rest)
}

// Snapshot returns the frozen snapshot the overlay was built over.
func (ov *Overlay) Snapshot() *graph.Snapshot { return ov.snap }

// NumCells returns the number of leaf cells.
func (ov *Overlay) NumCells() int { return ov.numCells }

// NumBoundary returns the number of boundary nodes.
func (ov *Overlay) NumBoundary() int { return ov.nb }

// Cell returns the leaf cell containing node v.
func (ov *Overlay) Cell(v graph.NodeID) int { return int(ov.cell[v]) }

// CellSize returns the number of nodes in cell c.
func (ov *Overlay) CellSize(c int) int { return int(ov.cellOff[c+1] - ov.cellOff[c]) }

// boundaryCount returns the number of boundary nodes of cell c.
func (ov *Overlay) boundaryCount(c int32) int {
	return int(ov.cellBOff[c+1] - ov.cellBOff[c])
}
