// Package traffic adds a congestion model to the road network: a BPR
// (Bureau of Public Roads) volume-delay function and an incremental
// traffic-assignment procedure that loads origin-destination demand onto
// congested shortest paths.
//
// The paper's attacker targets "driving direction applications that
// dynamically account for live traffic updates": with this package the
// attack's TIME weights can reflect congested rather than free-flow travel
// times, and an attack's city-wide spillover (total vehicle-hours added by
// the blockages) can be quantified. This is the substrate behind the
// congestion ablation benches.
package traffic

import (
	"errors"
	"fmt"
	"math"

	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// BPR volume-delay parameters (standard values).
const (
	// Alpha and Beta are the classic BPR coefficients.
	Alpha = 0.15
	Beta  = 4.0
	// LaneCapacityVPH is the saturation flow of one lane in vehicles/hour.
	LaneCapacityVPH = 1800.0
)

// Demand is one origin-destination flow.
type Demand struct {
	Source graph.NodeID
	Dest   graph.NodeID
	// VehiclesPerHour is the demand rate.
	VehiclesPerHour float64
}

// Assignment is the result of loading demand onto the network.
type Assignment struct {
	// Volumes holds vehicles/hour per edge.
	Volumes []float64
	// Unrouted sums the demand that had no route (disconnected pairs).
	Unrouted float64
}

// Errors returned by assignment.
var (
	ErrNoDemand = errors.New("traffic: no demand to assign")
)

// Capacity returns the hourly vehicle capacity of segment e.
func Capacity(net *roadnet.Network, e graph.EdgeID) float64 {
	return float64(net.Road(e).Lanes) * LaneCapacityVPH
}

// CongestedTime returns the BPR travel time of edge e in seconds given its
// current volume: freeflow * (1 + Alpha*(v/c)^Beta).
func CongestedTime(net *roadnet.Network, e graph.EdgeID, volume float64) float64 {
	free := net.Road(e).TravelTimeS()
	c := Capacity(net, e)
	if c <= 0 {
		return free
	}
	ratio := volume / c
	return free * (1 + Alpha*math.Pow(ratio, Beta))
}

// Weight returns a congestion-aware TIME weight function for the given
// assignment. With a zero-volume assignment it equals the free-flow TIME
// weight.
func (a Assignment) Weight(net *roadnet.Network) graph.WeightFunc {
	return func(e graph.EdgeID) float64 {
		v := 0.0
		if int(e) < len(a.Volumes) {
			v = a.Volumes[e]
		}
		return CongestedTime(net, e, v)
	}
}

// TotalVehicleSeconds returns the system travel time: the sum over edges
// of volume x congested time (vehicles/hour x seconds; a relative measure
// used to compare scenarios).
func (a Assignment) TotalVehicleSeconds(net *roadnet.Network) float64 {
	total := 0.0
	for e, v := range a.Volumes {
		if v > 0 {
			total += v * CongestedTime(net, graph.EdgeID(e), v)
		}
	}
	return total
}

// AssignIncremental loads the demands onto the network in the given number
// of equal slices: each slice of each demand takes the shortest path under
// the travel times produced by the volume accumulated so far. Incremental
// assignment is the classic fast approximation to user equilibrium and is
// deterministic.
//
// Disabled edges (e.g. an applied attack cut) carry no traffic, so
// assigning the same demand before and after Apply(cut) measures the
// congestion the attack causes city-wide.
func AssignIncremental(net *roadnet.Network, demands []Demand, slices int) (Assignment, error) {
	if len(demands) == 0 {
		return Assignment{}, ErrNoDemand
	}
	if slices <= 0 {
		slices = 4
	}
	for i, d := range demands {
		if d.VehiclesPerHour < 0 {
			return Assignment{}, fmt.Errorf("traffic: demand %d has negative rate", i)
		}
	}

	g := net.Graph()
	a := Assignment{Volumes: make([]float64, g.NumEdges())}
	r := graph.NewRouter(g)
	w := a.Weight(net)

	for s := 0; s < slices; s++ {
		for _, d := range demands {
			rate := d.VehiclesPerHour / float64(slices)
			if rate == 0 {
				continue
			}
			path, ok := r.ShortestPath(d.Source, d.Dest, w)
			if !ok {
				a.Unrouted += rate
				continue
			}
			for _, e := range path.Edges {
				a.Volumes[e] += rate
			}
		}
	}
	return a, nil
}

// AttackImpact quantifies an attack's congestion spillover: it assigns the
// demands on the intact network and on the network with the cut applied,
// and returns both assignments plus the increase in system travel time
// (vehicle-seconds) and the demand left unroutable by the cut.
func AttackImpact(net *roadnet.Network, demands []Demand, cut []graph.EdgeID, slices int) (before, after Assignment, extraVehSeconds, strandedVPH float64, err error) {
	before, err = AssignIncremental(net, demands, slices)
	if err != nil {
		return Assignment{}, Assignment{}, 0, 0, err
	}
	g := net.Graph()
	tx := g.Begin()
	for _, e := range cut {
		tx.Disable(e)
	}
	after, err = AssignIncremental(net, demands, slices)
	tx.Rollback()
	if err != nil {
		return Assignment{}, Assignment{}, 0, 0, err
	}
	extraVehSeconds = after.TotalVehicleSeconds(net) - before.TotalVehicleSeconds(net)
	strandedVPH = after.Unrouted - before.Unrouted
	return before, after, extraVehSeconds, strandedVPH, nil
}
