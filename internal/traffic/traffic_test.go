package traffic

import (
	"errors"
	"math"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// twoRoutes builds parallel routes between 0 and 3:
//
//	fast: 0-1-3 (2 x 100m @ 10 m/s = 20 s free flow), 1 lane
//	slow: 0-2-3 (2 x 150m @ 10 m/s = 30 s free flow), 2 lanes
func twoRoutes(t *testing.T) (*roadnet.Network, [4]graph.NodeID) {
	t.Helper()
	n := roadnet.NewNetwork("tworoutes")
	var ids [4]graph.NodeID
	pts := []geo.Point{
		{Lat: 42.000, Lon: -71.000},
		{Lat: 42.001, Lon: -71.000},
		{Lat: 41.999, Lon: -71.000},
		{Lat: 42.002, Lon: -71.000},
	}
	for i, p := range pts {
		ids[i] = n.AddIntersection(p)
	}
	add := func(a, b graph.NodeID, length float64, lanes int) {
		t.Helper()
		if _, err := n.AddRoad(a, b, roadnet.Road{LengthM: length, SpeedMS: 10, Lanes: lanes}); err != nil {
			t.Fatal(err)
		}
	}
	add(ids[0], ids[1], 100, 1)
	add(ids[1], ids[3], 100, 1)
	add(ids[0], ids[2], 150, 2)
	add(ids[2], ids[3], 150, 2)
	return n, ids
}

func TestCongestedTimeBPR(t *testing.T) {
	n, _ := twoRoutes(t)
	free := n.Road(0).TravelTimeS()
	if got := CongestedTime(n, 0, 0); got != free {
		t.Errorf("zero volume time = %v, want free flow %v", got, free)
	}
	// At volume == capacity the BPR multiplier is 1 + Alpha.
	cap0 := Capacity(n, 0)
	if cap0 != LaneCapacityVPH {
		t.Fatalf("capacity = %v, want %v", cap0, LaneCapacityVPH)
	}
	want := free * (1 + Alpha)
	if got := CongestedTime(n, 0, cap0); math.Abs(got-want) > 1e-9 {
		t.Errorf("at-capacity time = %v, want %v", got, want)
	}
	// Monotone in volume.
	if CongestedTime(n, 0, 2*cap0) <= CongestedTime(n, 0, cap0) {
		t.Error("congested time not monotone")
	}
}

func TestAssignIncrementalLowDemandUsesFastRoute(t *testing.T) {
	n, ids := twoRoutes(t)
	a, err := AssignIncremental(n, []Demand{{Source: ids[0], Dest: ids[3], VehiclesPerHour: 100}}, 4)
	if err != nil {
		t.Fatalf("AssignIncremental: %v", err)
	}
	// 100 vph barely congests a 1800 vph lane: everything on the fast
	// route.
	if a.Volumes[0] != 100 || a.Volumes[1] != 100 {
		t.Errorf("fast route volumes = %v, %v, want 100", a.Volumes[0], a.Volumes[1])
	}
	if a.Volumes[2] != 0 {
		t.Errorf("slow route carries %v, want 0", a.Volumes[2])
	}
	if a.Unrouted != 0 {
		t.Errorf("unrouted = %v", a.Unrouted)
	}
}

func TestAssignIncrementalHighDemandSpills(t *testing.T) {
	n, ids := twoRoutes(t)
	// 6000 vph >> one lane's capacity: congestion must push later slices
	// onto the slow route.
	a, err := AssignIncremental(n, []Demand{{Source: ids[0], Dest: ids[3], VehiclesPerHour: 6000}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Volumes[2] == 0 {
		t.Error("no spillover to the slow route under heavy demand")
	}
	if a.Volumes[0]+a.Volumes[2] != 6000 {
		t.Errorf("total leaving volume = %v, want 6000", a.Volumes[0]+a.Volumes[2])
	}
}

func TestAssignIncrementalValidation(t *testing.T) {
	n, ids := twoRoutes(t)
	if _, err := AssignIncremental(n, nil, 4); !errors.Is(err, ErrNoDemand) {
		t.Error("empty demand accepted")
	}
	if _, err := AssignIncremental(n, []Demand{{Source: ids[0], Dest: ids[3], VehiclesPerHour: -1}}, 4); err == nil {
		t.Error("negative demand accepted")
	}
	// Default slices.
	if _, err := AssignIncremental(n, []Demand{{Source: ids[0], Dest: ids[3], VehiclesPerHour: 10}}, 0); err != nil {
		t.Errorf("default slices: %v", err)
	}
}

func TestAssignIncrementalUnroutedDemand(t *testing.T) {
	n, ids := twoRoutes(t)
	a, err := AssignIncremental(n, []Demand{{Source: ids[3], Dest: ids[0], VehiclesPerHour: 50}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Unrouted != 50 {
		t.Errorf("unrouted = %v, want 50 (one-way network)", a.Unrouted)
	}
}

func TestAssignmentWeightAndSystemTime(t *testing.T) {
	n, ids := twoRoutes(t)
	a, err := AssignIncremental(n, []Demand{{Source: ids[0], Dest: ids[3], VehiclesPerHour: 1800}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Weight(n)
	// Congested weight of a loaded edge exceeds free flow.
	if a.Volumes[0] > 0 && w(0) <= n.Road(0).TravelTimeS() {
		t.Error("congested weight not above free flow")
	}
	if got := a.TotalVehicleSeconds(n); got <= 0 {
		t.Errorf("system time = %v", got)
	}
	var zero Assignment
	if zero.Weight(n)(0) != n.Road(0).TravelTimeS() {
		t.Error("zero assignment weight != free flow")
	}
}

func TestAttackImpact(t *testing.T) {
	n, ids := twoRoutes(t)
	demands := []Demand{{Source: ids[0], Dest: ids[3], VehiclesPerHour: 1000}}
	// Cut the fast route's first edge.
	before, after, extra, stranded, err := AttackImpact(n, demands, []graph.EdgeID{0}, 4)
	if err != nil {
		t.Fatalf("AttackImpact: %v", err)
	}
	if before.Volumes[0] == 0 {
		t.Error("baseline ignores fast route")
	}
	if after.Volumes[0] != 0 {
		t.Error("attacked assignment still uses cut edge")
	}
	if after.Volumes[2] != 1000 {
		t.Errorf("attacked slow-route volume = %v, want 1000", after.Volumes[2])
	}
	if extra <= 0 {
		t.Errorf("extra vehicle-seconds = %v, want > 0", extra)
	}
	if stranded != 0 {
		t.Errorf("stranded = %v, want 0 (slow route available)", stranded)
	}
	// Graph restored.
	if n.Graph().NumEnabledEdges() != n.NumSegments() {
		t.Error("AttackImpact left the cut applied")
	}
	// Cutting both routes strands the demand.
	_, _, _, stranded, err = AttackImpact(n, demands, []graph.EdgeID{0, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stranded != 1000 {
		t.Errorf("stranded = %v, want 1000", stranded)
	}
}

// TestAttackUnderCongestedWeights runs the paper's attack with a
// congestion-aware objective: the attacker forces an alternative route
// where path metrics are congested TIME rather than free-flow TIME.
func TestAttackUnderCongestedWeights(t *testing.T) {
	net, err := citygen.Build(citygen.Chicago, 0.01, 6)
	if err != nil {
		t.Fatal(err)
	}
	h := net.POIsOfKind(citygen.KindHospital)[0]

	// Background traffic between the other hospitals.
	pois := net.POIsOfKind(citygen.KindHospital)
	demands := []Demand{
		{Source: pois[1].Node, Dest: pois[2].Node, VehiclesPerHour: 2500},
		{Source: pois[3].Node, Dest: pois[1].Node, VehiclesPerHour: 2500},
	}
	a, err := AssignIncremental(net, demands, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Weight(net)

	var (
		src   graph.NodeID
		pstar graph.Path
		found bool
	)
	for nID := 0; nID < net.NumIntersections() && !found; nID++ {
		if graph.NodeID(nID) == h.Node {
			continue
		}
		if p, err := core.PStarByRank(net.Graph(), graph.NodeID(nID), h.Node, 4, w); err == nil {
			src, pstar, found = graph.NodeID(nID), p, true
		}
	}
	if !found {
		t.Skip("no viable source at this scale")
	}
	prob := core.Problem{
		G: net.Graph(), Source: src, Dest: h.Node, PStar: pstar,
		Weight: w, Cost: net.Cost(roadnet.CostUniform),
	}
	res, err := core.Run(core.AlgGreedyPathCover, prob, core.Options{})
	if err != nil {
		t.Fatalf("congested attack: %v", err)
	}
	core.Apply(net.Graph(), res.Removed)
	defer core.Restore(net.Graph(), res.Removed)
	sp, ok := graph.NewRouter(net.Graph()).ShortestPath(src, h.Node, w)
	if !ok || !sp.SameEdges(pstar) {
		t.Fatalf("p* not exclusive under congested weights")
	}
}
