package graph

import "math"

// Heuristic estimates the remaining cost from a node to the (implicit)
// target. A* is correct when the heuristic is admissible (never
// overestimates); road networks use straight-line distance divided by the
// maximum speed.
type Heuristic func(NodeID) float64

// ShortestPathAStar returns a minimum-weight s->t path like ShortestPath,
// guided by the heuristic h. With an admissible h it returns an optimal
// path while settling fewer nodes; with h ≡ 0 it degrades to Dijkstra.
// Temporary bans are not supported (plain point-to-point queries only).
// Under a cancelled SetContext context the search stops early and reports
// no path; callers must re-check the context before trusting a negative.
func (r *Router) ShortestPathAStar(s, t NodeID, w WeightFunc, h Heuristic) (Path, bool) {
	r.grow()
	r.clearBans()
	if c := r.csr(); c != nil {
		return r.astarCSR(c, s, t, h)
	}
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if s == t {
		return Path{Nodes: []NodeID{s}}, true
	}

	r.cur++
	r.heap = r.heap[:0]
	r.setDist(s, 0, InvalidEdge)
	r.heap.push(heapItem{dist: h(s), node: s})

	for len(r.heap) > 0 {
		if r.interrupted() {
			return Path{}, false // cancelled mid-search (see SetContext)
		}
		it := r.heap.pop()
		u := it.node
		if r.stamp[u] != r.cur {
			continue
		}
		gu := r.dist[u]
		if it.dist > gu+h(u)+1e-12 {
			continue // stale entry
		}
		if u == t {
			return r.buildPath(s, t), true
		}
		for _, e := range r.g.out[u] {
			if r.g.disabled[e] {
				continue
			}
			v := r.g.arcs[e].To
			nd := gu + w(e)
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.heap.push(heapItem{dist: nd + h(v), node: v})
			}
		}
	}
	return Path{}, false
}

// shortestAStar is the Yen spur search: a goal-directed A* from s to t
// guided by a reverse potential, honouring the current node/edge bans and
// disabled edges. With an exact (hence consistent) potential every settled
// node lies on a near-optimal corridor towards t, so the search touches a
// small fraction of what the goal-blind Dijkstra in shortest would.
//
// Nodes the target was unreachable from at potential-computation time
// (h = +Inf) are pruned outright: bans only remove edges, so they cannot
// reach t now either. Callers must have called grow().
//
// rootLen and cutoff implement Yen's candidate-count bound (see spurBound):
// the search is abandoned — reported as "no path" — as soon as rootLen plus
// the minimum frontier f-value exceeds cutoff, because the total candidate
// length (rootLen + spur length) is then provably above the bound and the
// candidate could never be accepted. cutoff == +Inf disables the pruning.
func (r *Router) shortestAStar(s, t NodeID, w WeightFunc, pot *Potential, rootLen, cutoff float64) (Path, bool) {
	if c := r.csr(); c != nil {
		return r.shortestAStarCSR(c, s, t, pot, rootLen, cutoff)
	}
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if r.nodeBanned(s) || r.nodeBanned(t) {
		return Path{}, false
	}
	hs := pot.At(s)
	if math.IsInf(hs, 1) {
		return Path{}, false
	}
	r.cur++
	r.heap = r.heap[:0]
	r.setDist(s, 0, InvalidEdge)
	r.heap.push(heapItem{dist: hs, node: s})

	for len(r.heap) > 0 {
		it := r.heap.pop()
		// Bound abort: pops are non-decreasing, so once the frontier passes
		// the candidate cutoff no completion can come back under it. t
		// itself cannot have been reachable under the cutoff — it would
		// have popped on an earlier, not-greater f-value.
		if rootLen+it.dist > cutoff {
			return Path{}, false
		}
		u := it.node
		if r.stamp[u] != r.cur {
			continue
		}
		gu := r.dist[u]
		if it.dist > gu+pot.At(u) {
			continue // stale heap entry
		}
		if u == t {
			return r.buildPath(s, t), true
		}
		for _, e := range r.g.out[u] {
			if r.g.disabled[e] || r.edgeBanned(e) {
				continue
			}
			v := r.g.arcs[e].To
			if r.nodeBanned(v) {
				continue
			}
			hv := pot.At(v)
			if math.IsInf(hv, 1) {
				continue // v cannot reach t even without bans
			}
			nd := gu + w(e)
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.heap.push(heapItem{dist: nd + hv, node: v})
			}
		}
	}
	return Path{}, false
}
