package graph

// Heuristic estimates the remaining cost from a node to the (implicit)
// target. A* is correct when the heuristic is admissible (never
// overestimates); road networks use straight-line distance divided by the
// maximum speed.
type Heuristic func(NodeID) float64

// ShortestPathAStar returns a minimum-weight s->t path like ShortestPath,
// guided by the heuristic h. With an admissible h it returns an optimal
// path while settling fewer nodes; with h ≡ 0 it degrades to Dijkstra.
// Temporary bans are not supported (plain point-to-point queries only).
func (r *Router) ShortestPathAStar(s, t NodeID, w WeightFunc, h Heuristic) (Path, bool) {
	r.grow()
	r.clearBans()
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if s == t {
		return Path{Nodes: []NodeID{s}}, true
	}

	r.cur++
	r.heap = r.heap[:0]
	r.setDist(s, 0, InvalidEdge)
	r.heap.push(heapItem{dist: h(s), node: s})

	for len(r.heap) > 0 {
		it := r.heap.pop()
		u := it.node
		if r.stamp[u] != r.cur {
			continue
		}
		gu := r.dist[u]
		if it.dist > gu+h(u)+1e-12 {
			continue // stale entry
		}
		if u == t {
			return r.buildPath(s, t), true
		}
		for _, e := range r.g.out[u] {
			if r.g.disabled[e] {
				continue
			}
			v := r.g.arcs[e].To
			nd := gu + w(e)
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.heap.push(heapItem{dist: nd + h(v), node: v})
			}
		}
	}
	return Path{}, false
}
