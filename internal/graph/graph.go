// Package graph implements the directed weighted multigraph and the graph
// algorithms the attack framework is built on: Dijkstra shortest paths with
// temporary node/edge bans, Yen's k-shortest loopless paths, Brandes edge
// betweenness centrality, eigenvector centrality by power iteration, and
// Tarjan strongly connected components.
//
// The representation is edge-indexed: every directed edge has a stable
// EdgeID, and per-edge attributes (weights, removal costs, road metadata)
// live in parallel slices owned by higher layers. Edges can be disabled and
// re-enabled in O(1), which is how attack algorithms simulate blocking road
// segments without rebuilding the graph.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node (road intersection).
type NodeID int32

// EdgeID identifies a directed edge (road segment direction).
type EdgeID int32

// Invalid sentinel IDs returned by lookups that find nothing.
const (
	InvalidNode NodeID = -1
	InvalidEdge EdgeID = -1
)

// Arc is the endpoint pair of a directed edge.
type Arc struct {
	From NodeID
	To   NodeID
}

// WeightFunc returns the traversal weight of an edge. Weights must be
// non-negative; Dijkstra's correctness depends on it.
type WeightFunc func(EdgeID) float64

// ErrBadGraph is the umbrella sentinel for structurally unusable graph
// data: NaN, infinite, or negative edge weights. Loaders reject such data
// at load time and servers re-check it at startup, because a single NaN
// weight poisons every shortest-path result silently instead of failing.
var ErrBadGraph = errors.New("graph: invalid graph data")

// ErrNegativeWeight is returned by validation helpers when a WeightFunc
// produces a negative value. It wraps ErrBadGraph.
var ErrNegativeWeight = fmt.Errorf("%w: negative edge weight", ErrBadGraph)

// Graph is a directed multigraph. The zero value is an empty graph ready to
// use. Graph is not safe for concurrent mutation; concurrent read-only use
// (including the Router) is safe as long as no edges are added, disabled, or
// enabled.
type Graph struct {
	arcs     []Arc
	out      [][]EdgeID
	in       [][]EdgeID
	disabled []bool
	locked   []bool
	nDown    int

	// gen counts topology mutations (nodes or edges added). Frozen CSR
	// snapshots record the generation they were built at and refuse to
	// serve a graph whose generation moved on (see Freeze). Disabling and
	// enabling edges deliberately does NOT bump the generation: snapshots
	// observe the disabled flags live, which is what lets attack rounds
	// toggle edges thousands of times without a rebuild.
	gen uint64
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	g := &Graph{}
	g.Grow(n)
	return g
}

// Grow ensures the graph has at least n nodes.
func (g *Graph) Grow(n int) {
	if len(g.out) >= n {
		return
	}
	for len(g.out) < n {
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
	}
	g.gen++
}

// AddNode adds a node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.gen++
	return NodeID(len(g.out) - 1)
}

// Generation returns the topology-mutation counter. It advances whenever
// nodes or edges are added (never on disable/enable), so a cached frozen
// snapshot is exactly as fresh as a matching generation says it is.
func (g *Graph) Generation() uint64 { return g.gen }

// AddEdge adds a directed edge from -> to and returns its ID. Parallel edges
// and self-loops are permitted (OSM data contains both).
func (g *Graph) AddEdge(from, to NodeID) (EdgeID, error) {
	if !g.validNode(from) || !g.validNode(to) {
		return InvalidEdge, fmt.Errorf("graph: AddEdge(%d, %d): node out of range [0, %d)", from, to, len(g.out))
	}
	id := EdgeID(len(g.arcs))
	g.arcs = append(g.arcs, Arc{From: from, To: to})
	g.disabled = append(g.disabled, false)
	g.locked = append(g.locked, false)
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.gen++
	return id, nil
}

// MustAddEdge is AddEdge for construction code where the endpoints are known
// valid (e.g. generators); it panics on invalid input.
func (g *Graph) MustAddEdge(from, to NodeID) EdgeID {
	id, err := g.AddEdge(from, to)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Graph) validNode(n NodeID) bool { return n >= 0 && int(n) < len(g.out) }

func (g *Graph) validEdge(e EdgeID) bool { return e >= 0 && int(e) < len(g.arcs) }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the total number of edges, enabled or not.
func (g *Graph) NumEdges() int { return len(g.arcs) }

// NumEnabledEdges returns the number of currently enabled edges.
func (g *Graph) NumEnabledEdges() int { return len(g.arcs) - g.nDown }

// Arc returns the endpoints of edge e.
func (g *Graph) Arc(e EdgeID) Arc { return g.arcs[e] }

// From returns the tail of edge e.
func (g *Graph) From(e EdgeID) NodeID { return g.arcs[e].From }

// To returns the head of edge e.
func (g *Graph) To(e EdgeID) NodeID { return g.arcs[e].To }

// OutEdges returns the IDs of edges leaving n, including disabled ones.
// The returned slice is owned by the graph; callers must not modify it.
func (g *Graph) OutEdges(n NodeID) []EdgeID { return g.out[n] }

// InEdges returns the IDs of edges entering n, including disabled ones.
// The returned slice is owned by the graph; callers must not modify it.
func (g *Graph) InEdges(n NodeID) []EdgeID { return g.in[n] }

// OutDegree returns the number of enabled edges leaving n.
func (g *Graph) OutDegree(n NodeID) int {
	d := 0
	for _, e := range g.out[n] {
		if !g.disabled[e] {
			d++
		}
	}
	return d
}

// InDegree returns the number of enabled edges entering n.
func (g *Graph) InDegree(n NodeID) int {
	d := 0
	for _, e := range g.in[n] {
		if !g.disabled[e] {
			d++
		}
	}
	return d
}

// DisableEdge marks edge e as removed. Disabling an already-disabled edge is
// a no-op.
func (g *Graph) DisableEdge(e EdgeID) {
	if g.validEdge(e) && !g.disabled[e] {
		g.disabled[e] = true
		g.nDown++
	}
}

// EnableEdge restores a disabled edge. Enabling an enabled or permanently
// removed edge is a no-op.
func (g *Graph) EnableEdge(e EdgeID) {
	if g.validEdge(e) && g.disabled[e] && !g.locked[e] {
		g.disabled[e] = false
		g.nDown--
	}
}

// RemoveEdgePermanently disables e and locks it so that neither EnableEdge
// nor ResetDisabled can bring it back. The road layer uses this when it
// splits an edge to attach a point of interest: the original unsplit edge
// must never resurface mid-experiment.
func (g *Graph) RemoveEdgePermanently(e EdgeID) {
	if !g.validEdge(e) {
		return
	}
	g.DisableEdge(e)
	g.locked[e] = true
}

// EdgeRemoved reports whether e was permanently removed.
func (g *Graph) EdgeRemoved(e EdgeID) bool { return g.validEdge(e) && g.locked[e] }

// EdgeDisabled reports whether edge e is currently disabled.
func (g *Graph) EdgeDisabled(e EdgeID) bool { return g.disabled[e] }

// DisabledEdges returns the IDs of all currently disabled edges.
func (g *Graph) DisabledEdges() []EdgeID {
	if g.nDown == 0 {
		return nil
	}
	ids := make([]EdgeID, 0, g.nDown)
	for e, down := range g.disabled {
		if down {
			ids = append(ids, EdgeID(e))
		}
	}
	return ids
}

// ResetDisabled re-enables every edge except permanently removed ones.
func (g *Graph) ResetDisabled() {
	if g.nDown == 0 {
		return
	}
	g.nDown = 0
	for e := range g.disabled {
		if g.locked[e] {
			g.disabled[e] = true
			g.nDown++
		} else {
			g.disabled[e] = false
		}
	}
}

// Transaction captures the set of edges disabled through it so the caller
// can roll all of them back at once. It is how attack algorithms try a cut
// set and restore the graph afterwards.
type Transaction struct {
	g        *Graph
	disabled []EdgeID
}

// Begin starns a transaction on g.
func (g *Graph) Begin() *Transaction { return &Transaction{g: g} }

// Disable disables e and records it for rollback. Edges already disabled
// before the transaction are not recorded (and thus not re-enabled by
// Rollback).
func (t *Transaction) Disable(e EdgeID) {
	if !t.g.EdgeDisabled(e) {
		t.g.DisableEdge(e)
		t.disabled = append(t.disabled, e)
	}
}

// Disabled returns the edges disabled through this transaction, in order.
func (t *Transaction) Disabled() []EdgeID {
	out := make([]EdgeID, len(t.disabled))
	copy(out, t.disabled)
	return out
}

// Rollback re-enables every edge disabled through the transaction.
func (t *Transaction) Rollback() {
	for _, e := range t.disabled {
		t.g.EnableEdge(e)
	}
	t.disabled = t.disabled[:0]
}

// Clone returns a deep copy of the graph, including disabled state.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		arcs:     append([]Arc(nil), g.arcs...),
		out:      make([][]EdgeID, len(g.out)),
		in:       make([][]EdgeID, len(g.in)),
		disabled: append([]bool(nil), g.disabled...),
		locked:   append([]bool(nil), g.locked...),
		nDown:    g.nDown,
		gen:      g.gen,
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	return c
}

// ValidateWeights checks w on every edge and returns an ErrBadGraph-class
// error (wrapped with the offending edge) when any weight is NaN, infinite,
// or negative — the three ways a weight function can silently break
// Dijkstra, A*, and every metric built on them.
func (g *Graph) ValidateWeights(w WeightFunc) error {
	for e := range g.arcs {
		v := w(EdgeID(e))
		switch {
		case math.IsNaN(v):
			return fmt.Errorf("edge %d: %w: weight is NaN", e, ErrBadGraph)
		case math.IsInf(v, 0):
			return fmt.Errorf("edge %d: %w: weight is %v", e, ErrBadGraph, v)
		case v < 0:
			return fmt.Errorf("edge %d: %w", e, ErrNegativeWeight)
		}
	}
	return nil
}

// FindEdge returns the first enabled edge from -> to, or InvalidEdge.
func (g *Graph) FindEdge(from, to NodeID) EdgeID {
	if !g.validNode(from) || !g.validNode(to) {
		return InvalidEdge
	}
	for _, e := range g.out[from] {
		if g.arcs[e].To == to && !g.disabled[e] {
			return e
		}
	}
	return InvalidEdge
}
