package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the graph 0->1->3, 0->2->3 with configurable weights.
func diamond(w01, w13, w02, w23 float64) (*Graph, WeightFunc) {
	g := New(4)
	weights := []float64{w01, w13, w02, w23}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 3)
	return g, func(e EdgeID) float64 { return weights[e] }
}

func TestShortestPathBasic(t *testing.T) {
	g, w := diamond(1, 1, 5, 5)
	r := NewRouter(g)
	p, ok := r.ShortestPath(0, 3, w)
	if !ok {
		t.Fatal("ShortestPath found no path")
	}
	if p.Length != 2 {
		t.Errorf("Length = %v, want 2", p.Length)
	}
	wantNodes := []NodeID{0, 1, 3}
	if len(p.Nodes) != len(wantNodes) {
		t.Fatalf("Nodes = %v, want %v", p.Nodes, wantNodes)
	}
	for i := range wantNodes {
		if p.Nodes[i] != wantNodes[i] {
			t.Fatalf("Nodes = %v, want %v", p.Nodes, wantNodes)
		}
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestShortestPathTrivial(t *testing.T) {
	g := New(1)
	r := NewRouter(g)
	p, ok := r.ShortestPath(0, 0, func(EdgeID) float64 { return 1 })
	if !ok {
		t.Fatal("s == t should be reachable")
	}
	if !p.Empty() && (p.Length != 0 || p.Hops() != 0) {
		t.Errorf("trivial path = %v, want empty zero-length", p)
	}
	if p.Source() != 0 || p.Target() != 0 {
		t.Errorf("trivial path endpoints = %d, %d, want 0, 0", p.Source(), p.Target())
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	r := NewRouter(g)
	if _, ok := r.ShortestPath(0, 2, func(EdgeID) float64 { return 1 }); ok {
		t.Error("found path to unreachable node")
	}
	if d := r.ShortestDist(0, 2, func(EdgeID) float64 { return 1 }); !math.IsInf(d, 1) {
		t.Errorf("ShortestDist = %v, want +Inf", d)
	}
}

func TestShortestPathInvalidNodes(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	r := NewRouter(g)
	if _, ok := r.ShortestPath(-1, 1, func(EdgeID) float64 { return 1 }); ok {
		t.Error("negative source accepted")
	}
	if _, ok := r.ShortestPath(0, 7, func(EdgeID) float64 { return 1 }); ok {
		t.Error("out-of-range target accepted")
	}
}

func TestShortestPathRespectsDisabled(t *testing.T) {
	g, w := diamond(1, 1, 5, 5)
	r := NewRouter(g)
	g.DisableEdge(0) // kill 0->1
	p, ok := r.ShortestPath(0, 3, w)
	if !ok {
		t.Fatal("no path after disabling one branch")
	}
	if p.Length != 10 {
		t.Errorf("Length = %v, want 10 (detour)", p.Length)
	}
	g.EnableEdge(0)
	p, _ = r.ShortestPath(0, 3, w)
	if p.Length != 2 {
		t.Errorf("Length after re-enable = %v, want 2", p.Length)
	}
}

func TestShortestPathDirected(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	r := NewRouter(g)
	w := func(EdgeID) float64 { return 1 }
	if _, ok := r.ShortestPath(1, 0, w); ok {
		t.Error("traversed directed edge backwards")
	}
}

func TestShortestPathPrefersParallelCheaperEdge(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1) // weight 9
	cheap := g.MustAddEdge(0, 1)
	weights := []float64{9, 2}
	r := NewRouter(g)
	p, ok := r.ShortestPath(0, 1, func(e EdgeID) float64 { return weights[e] })
	if !ok || p.Length != 2 || p.Edges[0] != cheap {
		t.Errorf("path = %+v, want single edge %d with length 2", p, cheap)
	}
}

func TestDistancesFrom(t *testing.T) {
	g, w := diamond(1, 1, 5, 5)
	r := NewRouter(g)
	d := r.DistancesFrom(0, w)
	want := []float64{0, 1, 5, 2}
	for i, wd := range want {
		if d[i] != wd {
			t.Errorf("dist[%d] = %v, want %v", i, d[i], wd)
		}
	}
	// Unreachable node.
	g2 := New(2)
	d2 := NewRouter(g2).DistancesFrom(0, w)
	if !math.IsInf(d2[1], 1) {
		t.Errorf("dist to isolated node = %v, want +Inf", d2[1])
	}
}

func TestRouterReuseAcrossGraphGrowth(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	r := NewRouter(g)
	w := func(EdgeID) float64 { return 1 }
	if _, ok := r.ShortestPath(0, 1, w); !ok {
		t.Fatal("initial query failed")
	}
	c := g.AddNode()
	g.MustAddEdge(1, c)
	p, ok := r.ShortestPath(0, c, w)
	if !ok || p.Length != 2 {
		t.Errorf("after growth: path = %+v, ok = %v, want length 2", p, ok)
	}
}

// randomGraph builds a connected-ish random digraph with n nodes and ~m
// extra random edges, returning integer-valued weights (exact float math).
func randomGraph(rng *rand.Rand, n, m int) (*Graph, []float64) {
	g := New(n)
	var weights []float64
	addEdge := func(a, b NodeID) {
		g.MustAddEdge(a, b)
		weights = append(weights, float64(1+rng.Intn(20)))
	}
	// Random spanning arborescence-ish chain for base connectivity.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(NodeID(perm[i-1]), NodeID(perm[i]))
	}
	for i := 0; i < m; i++ {
		addEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return g, weights
}

// bellmanFord is the test oracle for Dijkstra.
func bellmanFord(g *Graph, s NodeID, weights []float64) []float64 {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for e := 0; e < g.NumEdges(); e++ {
			if g.EdgeDisabled(EdgeID(e)) {
				continue
			}
			arc := g.Arc(EdgeID(e))
			if nd := dist[arc.From] + weights[e]; nd < dist[arc.To] {
				dist[arc.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraMatchesBellmanFordProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g, weights := randomGraph(rng, n, 2*n)
		w := func(e EdgeID) float64 { return weights[e] }
		s := NodeID(rng.Intn(n))

		r := NewRouter(g)
		got := r.DistancesFrom(s, w)
		want := bellmanFord(g, s, weights)
		for i := range want {
			if got[i] != want[i] {
				t.Logf("seed %d: dist[%d] = %v, oracle %v", seed, i, got[i], want[i])
				return false
			}
		}
		// Spot-check path reconstruction consistency.
		tgt := NodeID(rng.Intn(n))
		if p, ok := r.ShortestPath(s, tgt, w); ok {
			if p.Length != want[tgt] {
				return false
			}
			if err := p.Validate(g); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		} else if !math.IsInf(want[tgt], 1) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
