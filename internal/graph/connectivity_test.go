package graph

import "testing"

func TestReachableFrom(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	// 3 is isolated.
	seen := ReachableFrom(g, 0)
	want := []bool{true, true, true, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("reachable[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestReachableRespectsDirectionAndDisabled(t *testing.T) {
	g := New(3)
	e := g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if ReachableFrom(g, 2)[0] {
		t.Error("reached backwards along directed edges")
	}
	g.DisableEdge(e)
	if ReachableFrom(g, 0)[1] {
		t.Error("traversed disabled edge")
	}
}

func TestCanReach(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	tests := []struct {
		s, d NodeID
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0, 0, true},
		{0, 2, false},
		{-1, 0, false},
		{0, 9, false},
	}
	for _, tt := range tests {
		if got := CanReach(g, tt.s, tt.d); got != tt.want {
			t.Errorf("CanReach(%d, %d) = %v, want %v", tt.s, tt.d, got, tt.want)
		}
	}
}

func TestSCCTwoCycles(t *testing.T) {
	// Cycle {0,1,2} -> cycle {3,4}.
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 3)

	comp, count := StronglyConnectedComponents(g)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("first cycle split: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Errorf("second cycle split: %v", comp)
	}
	if comp[0] == comp[3] {
		t.Errorf("cycles merged: %v", comp)
	}
}

func TestSCCSingletons(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	comp, count := StronglyConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3 singletons (comp %v)", count, comp)
	}
}

func TestSCCRespectsDisabled(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	e := g.MustAddEdge(1, 0)
	if _, count := StronglyConnectedComponents(g); count != 1 {
		t.Fatal("cycle should be one SCC")
	}
	g.DisableEdge(e)
	if _, count := StronglyConnectedComponents(g); count != 2 {
		t.Error("disabled edge still merged the SCC")
	}
}

func TestSCCEmpty(t *testing.T) {
	comp, count := StronglyConnectedComponents(New(0))
	if count != 0 || len(comp) != 0 {
		t.Errorf("empty graph: comp=%v count=%d", comp, count)
	}
}

func TestLargestSCC(t *testing.T) {
	// Triangle {0,1,2} plus 2-cycle {3,4} plus isolated 5.
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 3)

	nodes := LargestSCC(g)
	if len(nodes) != 3 {
		t.Fatalf("largest SCC has %d nodes, want 3: %v", len(nodes), nodes)
	}
	want := map[NodeID]bool{0: true, 1: true, 2: true}
	for _, n := range nodes {
		if !want[n] {
			t.Errorf("unexpected node %d in largest SCC", n)
		}
	}
	if got := LargestSCC(New(0)); got != nil {
		t.Errorf("LargestSCC(empty) = %v, want nil", got)
	}
}

// TestSCCDeepRecursionSafe guards the iterative Tarjan against stack
// overflow on a long path (the recursive formulation would blow the stack
// far earlier than real city graph diameters).
func TestSCCDeepRecursionSafe(t *testing.T) {
	const n = 200000
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1))
	}
	g.MustAddEdge(NodeID(n-1), 0) // close the loop: one giant SCC
	_, count := StronglyConnectedComponents(g)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}
