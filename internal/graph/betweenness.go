package graph

import (
	"context"
	"math"
)

// BetweennessOptions configures EdgeBetweenness.
type BetweennessOptions struct {
	// Sources restricts the accumulation to shortest-path trees rooted at
	// these nodes. Nil means every node, which is exact Brandes; a sample
	// gives the standard unbiased approximation and is what the experiment
	// harness uses on full-size city graphs.
	Sources []NodeID
	// Normalize divides the scores by n*(n-1), the number of ordered node
	// pairs, yielding the fraction-of-shortest-paths definition from the
	// paper's attacker-objective discussion.
	Normalize bool
}

// EdgeBetweenness computes weighted directed edge betweenness centrality
// with Brandes' algorithm: for each edge, the (optionally normalized) count
// of shortest paths between ordered node pairs that traverse it, with
// fractional credit when several shortest paths tie. Disabled edges score 0
// and are not traversed.
//
// The paper (§II-A) uses high edge betweenness to identify critical,
// highly-traveled roads an attacker would target.
func EdgeBetweenness(g *Graph, w WeightFunc, opts BetweennessOptions) []float64 {
	score, _ := EdgeBetweennessCtx(context.Background(), g, w, opts)
	return score
}

// EdgeBetweennessCtx is EdgeBetweenness with cooperative cancellation:
// the context is polled once per source tree (the natural unit of work,
// one full Dijkstra plus accumulation), and on cancellation the partial
// scores computed so far are returned alongside the context's error.
// Partial scores are NOT rescaled — they cover an unpredictable source
// prefix — so callers must treat them as diagnostic only when err != nil.
func EdgeBetweennessCtx(ctx context.Context, g *Graph, w WeightFunc, opts BetweennessOptions) ([]float64, error) {
	n := g.NumNodes()
	m := g.NumEdges()
	score := make([]float64, m)
	if n == 0 || m == 0 {
		return score, nil
	}

	sources := opts.Sources
	if sources == nil {
		sources = make([]NodeID, n)
		for i := range sources {
			sources[i] = NodeID(i)
		}
	}

	// Per-source scratch, reused across sources.
	dist := make([]float64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]EdgeID, n)
	order := make([]NodeID, 0, n)
	var h nodeHeap
	settled := make([]bool, n)

	for _, s := range sources {
		if err := ctx.Err(); err != nil {
			return score, err
		}
		for i := 0; i < n; i++ {
			dist[i] = math.Inf(1)
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
			settled[i] = false
		}
		order = order[:0]
		h = h[:0]

		dist[s] = 0
		sigma[s] = 1
		h.push(heapItem{dist: 0, node: s})

		for len(h) > 0 {
			it := h.pop()
			u := it.node
			if settled[u] {
				continue
			}
			settled[u] = true
			order = append(order, u)
			for _, e := range g.out[u] {
				if g.disabled[e] {
					continue
				}
				v := g.arcs[e].To
				nd := dist[u] + w(e)
				switch {
				case nd < dist[v]:
					dist[v] = nd
					sigma[v] = sigma[u]
					preds[v] = append(preds[v][:0], e)
					h.push(heapItem{dist: nd, node: v})
				case nd == dist[v] && !settled[v]: //lint:allow floateq Brandes counts a path only on an exact distance tie; fixed relaxation order keeps it reproducible
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], e)
				}
			}
		}

		// Dependency accumulation in reverse settle order.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			for _, e := range preds[v] {
				u := g.arcs[e].From
				c := sigma[u] / sigma[v] * (1 + delta[v])
				score[e] += c
				delta[u] += c
			}
		}
	}

	if opts.Normalize && n > 1 {
		// When sampling, scale the sample up to the full source population
		// before normalizing so sampled and exact runs are comparable.
		scale := float64(n) / float64(len(sources))
		norm := scale / (float64(n) * float64(n-1))
		for i := range score {
			score[i] *= norm
		}
	}
	return score, nil
}

// TopEdgesByScore returns the indices of the k highest-scoring enabled
// edges, in descending score order (ties broken by lower edge ID).
func TopEdgesByScore(g *Graph, score []float64, k int) []EdgeID {
	if k <= 0 {
		return nil
	}
	type es struct {
		e EdgeID
		s float64
	}
	all := make([]es, 0, len(score))
	for e, s := range score {
		if !g.disabled[e] {
			all = append(all, es{e: EdgeID(e), s: s})
		}
	}
	// Partial selection sort is fine for small k; use full sort otherwise.
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].s > all[best].s || (all[j].s == all[best].s && all[j].e < all[best].e) { //lint:allow floateq deterministic tie-break: exact ties fall back to edge ID
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]EdgeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].e
	}
	return out
}
