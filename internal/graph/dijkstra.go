package graph

import (
	"context"
	"math"
)

// Router runs shortest-path queries against a graph. It owns reusable
// per-node scratch arrays (epoch-stamped, so clearing between queries is
// O(1)), which matters because the attack algorithms issue thousands of
// Dijkstra queries per run. A Router is not safe for concurrent use; create
// one per goroutine.
type Router struct {
	g *Graph

	dist     []float64
	prevEdge []EdgeID
	stamp    []uint64
	cur      uint64

	distB     []float64
	prevEdgeB []EdgeID
	stampB    []uint64
	curB      uint64
	heapB     nodeHeap

	nodeBan  []uint64
	edgeBan  []uint64
	banEpoch uint64

	heap nodeHeap

	// Frozen-kernel state: the attached CSR snapshot (nil → live kernels),
	// the 4-ary heaps the frozen kernels run on, and epoch-stamped settled
	// sets for the frozen bidirectional search (the live one uses maps).
	snap     *Snapshot
	h4       heap4
	h4B      heap4
	settledF []uint64
	settledB []uint64

	// Yen spur fan-out: worker routers sharing the read-only graph. Bans
	// and scratch arrays are per-router, so concurrent spur searches on
	// distinct pool routers are race-free by construction.
	spurWorkers int
	spurPool    []*Router

	// ctx, when set via SetContext, is polled between spur searches for
	// cooperative cancellation of k-shortest queries. nil disables checks.
	ctx context.Context
}

// NewRouter returns a Router for g. The router tracks g live: edges added,
// disabled, or enabled after creation are observed by later queries (Grow is
// called lazily).
func NewRouter(g *Graph) *Router {
	return &Router{g: g}
}

// Graph returns the graph this router queries.
func (r *Router) Graph() *Graph { return r.g }

func (r *Router) grow() {
	// Size in one allocation per array: the first query on a 100k-node
	// city would otherwise pay ~400k incremental appends.
	n := r.g.NumNodes()
	if len(r.dist) < n {
		dist := make([]float64, n)
		copy(dist, r.dist)
		r.dist = dist
		prev := make([]EdgeID, n)
		copy(prev, r.prevEdge)
		for i := len(r.prevEdge); i < n; i++ {
			prev[i] = InvalidEdge
		}
		r.prevEdge = prev
		stamp := make([]uint64, n)
		copy(stamp, r.stamp)
		r.stamp = stamp
		ban := make([]uint64, n)
		copy(ban, r.nodeBan)
		r.nodeBan = ban
		settled := make([]uint64, n)
		copy(settled, r.settledF)
		r.settledF = settled
	}
	m := r.g.NumEdges()
	if len(r.edgeBan) < m {
		eban := make([]uint64, m)
		copy(eban, r.edgeBan)
		r.edgeBan = eban
	}
}

// clearBans invalidates all temporary node and edge bans.
func (r *Router) clearBans() { r.banEpoch++ }

func (r *Router) banNode(n NodeID) { r.nodeBan[n] = r.banEpoch }

func (r *Router) banEdge(e EdgeID) { r.edgeBan[e] = r.banEpoch }

func (r *Router) nodeBanned(n NodeID) bool { return r.nodeBan[n] == r.banEpoch }

func (r *Router) edgeBanned(e EdgeID) bool { return r.edgeBan[e] == r.banEpoch }

// ShortestPath returns a minimum-weight path from s to t under w, or
// ok == false if t is unreachable. If s == t the result is the trivial
// zero-length path. Ties between equal-length paths are broken arbitrarily
// but deterministically (by edge insertion order).
func (r *Router) ShortestPath(s, t NodeID, w WeightFunc) (Path, bool) {
	r.grow()
	r.clearBans()
	return r.shortest(s, t, w)
}

// ShortestPathAvoiding returns a minimum-weight s->t path that visits none
// of the avoid nodes. Appearances of s or t themselves in avoid are
// ignored.
func (r *Router) ShortestPathAvoiding(s, t NodeID, w WeightFunc, avoid []NodeID) (Path, bool) {
	r.grow()
	r.clearBans()
	for _, n := range avoid {
		if n != s && n != t && r.g.validNode(n) {
			r.banNode(n)
		}
	}
	return r.shortest(s, t, w)
}

// ShortestDist returns the minimum path weight from s to t under w, or
// +Inf if t is unreachable.
func (r *Router) ShortestDist(s, t NodeID, w WeightFunc) float64 {
	p, ok := r.ShortestPath(s, t, w)
	if !ok {
		return math.Inf(1)
	}
	return p.Length
}

// shortest runs Dijkstra from s with the current bans in effect, stopping as
// soon as t is settled. Callers must have called grow().
func (r *Router) shortest(s, t NodeID, w WeightFunc) (Path, bool) {
	if c := r.csr(); c != nil {
		return r.shortestCSR(c, s, t)
	}
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if r.nodeBanned(s) || r.nodeBanned(t) {
		return Path{}, false
	}
	r.cur++
	r.heap = r.heap[:0]

	r.setDist(s, 0, InvalidEdge)
	r.heap.push(heapItem{dist: 0, node: s})

	for len(r.heap) > 0 {
		if r.interrupted() {
			return Path{}, false // cancelled mid-search (see SetContext)
		}
		it := r.heap.pop()
		u := it.node
		if it.dist > r.dist[u] || r.stamp[u] != r.cur {
			continue // stale heap entry
		}
		if u == t {
			return r.buildPath(s, t), true
		}
		du := it.dist
		for _, e := range r.g.out[u] {
			if r.g.disabled[e] || r.edgeBanned(e) {
				continue
			}
			v := r.g.arcs[e].To
			if r.nodeBanned(v) {
				continue
			}
			nd := du + w(e)
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.heap.push(heapItem{dist: nd, node: v})
			}
		}
	}
	return Path{}, false
}

func (r *Router) setDist(n NodeID, d float64, via EdgeID) {
	r.dist[n] = d
	r.prevEdge[n] = via
	r.stamp[n] = r.cur
}

func (r *Router) buildPath(s, t NodeID) Path {
	var edges []EdgeID
	for n := t; n != s; {
		e := r.prevEdge[n]
		edges = append(edges, e)
		n = r.g.arcs[e].From
	}
	// Reverse in place.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	nodes := make([]NodeID, 0, len(edges)+1)
	nodes = append(nodes, s)
	for _, e := range edges {
		nodes = append(nodes, r.g.arcs[e].To)
	}
	return Path{Nodes: nodes, Edges: edges, Length: r.dist[t]}
}

// DistancesFrom runs a full single-source Dijkstra and returns the distance
// from s to every node (+Inf where unreachable). The returned slice is newly
// allocated. Under a cancelled SetContext context the sweep stops early and
// unsettled nodes keep +Inf; callers must re-check the context before
// treating the table as complete.
func (r *Router) DistancesFrom(s NodeID, w WeightFunc) []float64 {
	r.grow()
	r.clearBans()
	if c := r.csr(); c != nil {
		return r.distancesFromCSR(c, s)
	}
	n := r.g.NumNodes()
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	if !r.g.validNode(s) {
		return out
	}
	r.cur++
	r.heap = r.heap[:0]
	r.setDist(s, 0, InvalidEdge)
	r.heap.push(heapItem{dist: 0, node: s})
	for len(r.heap) > 0 {
		if r.interrupted() {
			break // cancelled: unsettled nodes stay +Inf (see SetContext)
		}
		it := r.heap.pop()
		u := it.node
		if it.dist > r.dist[u] || r.stamp[u] != r.cur {
			continue
		}
		out[u] = it.dist
		for _, e := range r.g.out[u] {
			if r.g.disabled[e] {
				continue
			}
			v := r.g.arcs[e].To
			nd := it.dist + w(e)
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.heap.push(heapItem{dist: nd, node: v})
			}
		}
	}
	return out
}

// heapItem is a (distance, node) pair in the Dijkstra priority queue.
type heapItem struct {
	dist float64
	node NodeID
}

// nodeHeap is a hand-rolled binary min-heap. Lazy deletion (stale entries
// skipped on pop) avoids decrease-key bookkeeping. It shares heapLess (see
// csr.go) with the frozen 4-ary heap: the total order makes pop sequences
// independent of heap arity, which is what keeps frozen kernels
// bit-identical to these live ones on tie-heavy graphs.
type nodeHeap []heapItem

func (h *nodeHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *nodeHeap) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < last && heapLess(old[l], old[small]) {
			small = l
		}
		if rr < last && heapLess(old[rr], old[small]) {
			small = rr
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}
