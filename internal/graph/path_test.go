package graph

import (
	"strings"
	"testing"
	"unsafe"
)

func mkPath(g *Graph, w WeightFunc, nodes ...NodeID) Path {
	p := Path{Nodes: nodes}
	for i := 0; i+1 < len(nodes); i++ {
		e := g.FindEdge(nodes[i], nodes[i+1])
		p.Edges = append(p.Edges, e)
		p.Length += w(e)
	}
	return p
}

func TestPathAccessors(t *testing.T) {
	var empty Path
	if empty.Source() != InvalidNode || empty.Target() != InvalidNode {
		t.Error("empty path endpoints should be InvalidNode")
	}
	if !empty.Empty() || empty.Hops() != 0 {
		t.Error("empty path misreported")
	}

	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	w := func(EdgeID) float64 { return 1 }
	p := mkPath(g, w, 0, 1, 2)
	if p.Source() != 0 || p.Target() != 2 || p.Hops() != 2 {
		t.Errorf("path accessors wrong: %v", p)
	}
	if !p.HasEdge(0) || p.HasEdge(99) {
		t.Error("HasEdge wrong")
	}
	if len(p.EdgeSet()) != 2 {
		t.Errorf("EdgeSet size = %d, want 2", len(p.EdgeSet()))
	}
}

func TestPathSameEdgesAndKey(t *testing.T) {
	a := Path{Edges: []EdgeID{1, 2, 3}}
	b := Path{Edges: []EdgeID{1, 2, 3}}
	c := Path{Edges: []EdgeID{1, 2, 4}}
	d := Path{Edges: []EdgeID{1, 2}}
	if !a.SameEdges(b) || a.SameEdges(c) || a.SameEdges(d) {
		t.Error("SameEdges wrong")
	}
	if a.Key() != b.Key() {
		t.Error("equal paths have different keys")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Error("distinct paths share a key")
	}
	// Keys must distinguish large IDs that share low bytes.
	e := Path{Edges: []EdgeID{0x01000002}}
	f := Path{Edges: []EdgeID{0x02000002}}
	if e.Key() == f.Key() {
		t.Error("keys collide on high bytes")
	}
}

// TestPathKeyLossless documents the Key() width invariant: the encoding
// writes 4 bytes per edge, which covers EdgeID exactly because EdgeID is a
// 32-bit type. The compile-time guard below breaks if EdgeID is ever
// widened — whoever does that must widen the Key encoding (and revisit
// Path.Hash) in the same change, or distinct paths silently collide.
func TestPathKeyLossless(t *testing.T) {
	var _ = [1]struct{}{}[unsafe.Sizeof(EdgeID(0))-4] // EdgeID must stay 4 bytes

	// Edge IDs exercising every byte lane of the encoding, including the
	// extremes of the int32 range.
	ids := []EdgeID{0, 1, 0x100, 0x10000, 0x1000000, 0x7fffffff}
	keys := map[string]EdgeID{}
	for _, id := range ids {
		p := Path{Edges: []EdgeID{id}}
		key := p.Key()
		if len(key) != 4 {
			t.Errorf("Key of one edge is %d bytes, want 4", len(key))
		}
		if prev, dup := keys[key]; dup {
			t.Errorf("edge IDs %d and %d share key %q", prev, id, key)
		}
		keys[key] = id
	}
}

// TestPathHashMatchesKeyEquality checks the Yen dedup contract: Hash must
// agree on paths Key considers equal, and (for these deliberately
// byte-lane-adjacent sequences) disagree where Key does.
func TestPathHashMatchesKeyEquality(t *testing.T) {
	paths := []Path{
		{Edges: []EdgeID{}},
		{Edges: []EdgeID{0}},
		{Edges: []EdgeID{1}},
		{Edges: []EdgeID{0, 0}},
		{Edges: []EdgeID{1, 2, 3}},
		{Edges: []EdgeID{3, 2, 1}},
		{Edges: []EdgeID{0x01000002}},
		{Edges: []EdgeID{0x02000002}},
		{Edges: []EdgeID{0x7fffffff}},
	}
	for i, a := range paths {
		for j, b := range paths {
			sameKey := a.Key() == b.Key() && len(a.Edges) == len(b.Edges)
			sameHash := a.Hash() == b.Hash()
			if sameKey && !sameHash {
				t.Errorf("paths %d and %d share a key but not a hash", i, j)
			}
			if !sameKey && sameHash {
				t.Errorf("paths %d and %d collide on hash (fallback compare would still disambiguate, but these must not collide)", i, j)
			}
		}
	}
}

func TestPathIsSimple(t *testing.T) {
	if !(Path{Nodes: []NodeID{0, 1, 2}}).IsSimple() {
		t.Error("simple path misreported")
	}
	if (Path{Nodes: []NodeID{0, 1, 0}}).IsSimple() {
		t.Error("loop path reported simple")
	}
}

func TestPathCloneIndependence(t *testing.T) {
	p := Path{Nodes: []NodeID{0, 1}, Edges: []EdgeID{0}, Length: 1}
	c := p.Clone()
	c.Nodes[0] = 9
	c.Edges[0] = 9
	if p.Nodes[0] != 0 || p.Edges[0] != 0 {
		t.Error("Clone shares storage")
	}
}

func TestPathTruncate(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	weights := []float64{1, 2, 4}
	w := func(e EdgeID) float64 { return weights[e] }
	p := mkPath(g, w, 0, 1, 2, 3)

	pre := p.Truncate(2, w)
	if pre.Target() != 2 || pre.Hops() != 2 || pre.Length != 3 {
		t.Errorf("Truncate(2) = %v, want 0->1->2 len 3", pre)
	}
	zero := p.Truncate(0, w)
	if zero.Hops() != 0 || zero.Length != 0 || zero.Source() != 0 {
		t.Errorf("Truncate(0) = %v", zero)
	}
}

func TestPathConcat(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	w := func(EdgeID) float64 { return 1 }
	a := mkPath(g, w, 0, 1)
	b := mkPath(g, w, 1, 2, 3)

	ab, err := a.Concat(b)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if ab.Source() != 0 || ab.Target() != 3 || ab.Hops() != 3 || ab.Length != 3 {
		t.Errorf("Concat = %v", ab)
	}

	if _, err := b.Concat(a); err == nil {
		t.Error("mismatched Concat succeeded")
	}

	var empty Path
	got, err := empty.Concat(a)
	if err != nil || !got.SameEdges(a) {
		t.Errorf("empty.Concat = %v, %v", got, err)
	}
	got, err = a.Concat(empty)
	if err != nil || !got.SameEdges(a) {
		t.Errorf("Concat(empty) = %v, %v", got, err)
	}
}

func TestPathValidate(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	w := func(EdgeID) float64 { return 1 }
	good := mkPath(g, w, 0, 1, 2)
	if err := good.Validate(g); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}

	bad := Path{Nodes: []NodeID{0, 2}, Edges: []EdgeID{0}}
	if err := bad.Validate(g); err == nil {
		t.Error("edge/node mismatch accepted")
	}
	short := Path{Nodes: []NodeID{0}, Edges: []EdgeID{0}}
	if err := short.Validate(g); err == nil {
		t.Error("count mismatch accepted")
	}
	oob := Path{Nodes: []NodeID{0, 1}, Edges: []EdgeID{42}}
	if err := oob.Validate(g); err == nil {
		t.Error("out-of-range edge accepted")
	}
	g.DisableEdge(0)
	if err := good.Validate(g); err == nil {
		t.Error("disabled edge accepted")
	}
	var empty Path
	if err := empty.Validate(g); err != nil {
		t.Errorf("empty path rejected: %v", err)
	}
}

func TestPathString(t *testing.T) {
	var empty Path
	if got := empty.String(); got != "<empty path>" {
		t.Errorf("empty String() = %q", got)
	}
	p := Path{Nodes: []NodeID{3, 5}, Edges: []EdgeID{0}, Length: 1.5}
	s := p.String()
	if !strings.Contains(s, "3->5") || !strings.Contains(s, "1.5") {
		t.Errorf("String() = %q", s)
	}
}
