package graph

import "context"

// SetContext attaches ctx to the router for cooperative cancellation of its
// multi-round queries: KShortest and the BestAlternative family poll the
// context between spur searches and stop early when it is done. A nil ctx
// (the default) disables the checks entirely.
//
// Cancellation is best-effort and output-truncating: an interrupted
// KShortest returns the paths accepted so far and an interrupted
// BestAlternative may report "no alternative" even though one exists.
// Callers that must distinguish a genuine negative from a cancelled query
// (the attack loops in internal/core) re-check the context after the call
// before trusting the result.
func (r *Router) SetContext(ctx context.Context) { r.ctx = ctx }

// interrupted reports whether the attached context has been cancelled or
// has passed its deadline. It is read-only and therefore safe to call from
// the parallel spur workers, which share the coordinating router's context.
func (r *Router) interrupted() bool {
	return r.ctx != nil && r.ctx.Err() != nil
}
