package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// jitteredGrid builds a lattice with continuous per-edge weights, the
// city-like workload shape, big enough that the parallel fan-out actually
// engages (spur counts past minParallelSpurs).
func jitteredGrid(rows, cols int, seed int64) (*Graph, WeightFunc) {
	rng := rand.New(rand.NewSource(seed))
	g := New(rows * cols)
	var weights []float64
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	add := func(a, b NodeID) {
		g.MustAddEdge(a, b)
		weights = append(weights, 1+rng.Float64())
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				add(id(r, c), id(r, c+1))
				add(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				add(id(r, c), id(r+1, c))
				add(id(r+1, c), id(r, c))
			}
		}
	}
	return g, func(e EdgeID) float64 { return weights[e] }
}

// TestKShortestParallelRace exercises the parallel spur fan-out under the
// race detector (CI runs this package with -race): several routers share
// one read-only graph, each fanning spur searches out over its own worker
// pool, and every one must produce the serial router's exact output.
func TestKShortestParallelRace(t *testing.T) {
	g, w := jitteredGrid(9, 9, 42)
	s, tgt := NodeID(0), NodeID(80)
	const k = 40

	serial := NewRouter(g)
	serial.SetSpurWorkers(1)
	want := serial.KShortest(s, tgt, k, w)
	if len(want) != k {
		t.Fatalf("serial run found %d paths, want %d", len(want), k)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			r := NewRouter(g)
			r.SetSpurWorkers(workers)
			got := r.KShortest(s, tgt, k, w)
			if err := samePathList(got, want); err != nil {
				errs <- err
			}
		}(2 + i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestKShortestParallelReusesRouter checks that one router with fan-out
// enabled stays deterministic across repeated queries (pool routers and
// scratch arrays are reused between calls).
func TestKShortestParallelReusesRouter(t *testing.T) {
	g, w := jitteredGrid(7, 7, 7)
	r := NewRouter(g)
	r.SetSpurWorkers(4)
	want := r.KShortest(0, 48, 25, w)
	for i := 0; i < 3; i++ {
		if err := samePathList(r.KShortest(0, 48, 25, w), want); err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
	}
}
