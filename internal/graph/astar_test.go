package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAStarZeroHeuristicEqualsDijkstra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	zero := func(NodeID) float64 { return 0 }
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g, weights := randomGraph(rng, n, 3*n)
		w := func(e EdgeID) float64 { return weights[e] }
		r := NewRouter(g)
		for trial := 0; trial < 4; trial++ {
			s := NodeID(rng.Intn(n))
			d := NodeID(rng.Intn(n))
			dij, okD := r.ShortestPath(s, d, w)
			ast, okA := r.ShortestPathAStar(s, d, w, zero)
			if okD != okA {
				return false
			}
			if okD && (dij.Length != ast.Length || ast.Validate(g) != nil) {
				t.Logf("seed %d: %v vs %v", seed, dij.Length, ast.Length)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestAStarBasics(t *testing.T) {
	g, w := diamond(1, 1, 5, 5)
	r := NewRouter(g)
	zero := func(NodeID) float64 { return 0 }
	p, ok := r.ShortestPathAStar(0, 3, w, zero)
	if !ok || p.Length != 2 {
		t.Fatalf("path = %+v", p)
	}
	if p2, ok := r.ShortestPathAStar(0, 0, w, zero); !ok || p2.Hops() != 0 {
		t.Error("trivial trip wrong")
	}
	if _, ok := r.ShortestPathAStar(3, 0, w, zero); ok {
		t.Error("found backwards path")
	}
	if _, ok := r.ShortestPathAStar(-1, 3, w, zero); ok {
		t.Error("invalid source accepted")
	}
	g.DisableEdge(0)
	if p, ok := r.ShortestPathAStar(0, 3, w, zero); !ok || p.Length != 10 {
		t.Errorf("disabled edge not honored: %+v", p)
	}
}

// TestAStarAdmissibleHeuristicOptimal uses an exact heuristic (true
// remaining distance, the most aggressive admissible choice) and checks
// optimality still holds.
func TestAStarAdmissibleHeuristicOptimal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g, weights := randomGraph(rng, n, 3*n)
		w := func(e EdgeID) float64 { return weights[e] }
		r := NewRouter(g)
		d := NodeID(rng.Intn(n))
		// Exact distances-to-d via reverse Dijkstra oracle (Bellman-Ford on
		// the reversed graph for simplicity).
		rev := New(n)
		revW := make([]float64, 0, g.NumEdges())
		for e := 0; e < g.NumEdges(); e++ {
			arc := g.Arc(EdgeID(e))
			rev.MustAddEdge(arc.To, arc.From)
			revW = append(revW, weights[e])
		}
		toD := bellmanFord(rev, d, revW)
		h := func(u NodeID) float64 {
			if v := toD[u]; v < 1e300 {
				return v
			}
			return 0
		}
		for trial := 0; trial < 4; trial++ {
			s := NodeID(rng.Intn(n))
			dij, okD := r.ShortestPath(s, d, w)
			ast, okA := r.ShortestPathAStar(s, d, w, h)
			if okD != okA || (okD && dij.Length != ast.Length) {
				t.Logf("seed %d: s=%d d=%d", seed, s, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
