package graph

import (
	"sync"
	"testing"
)

// Race coverage for the two places a frozen snapshot is deliberately
// shared across goroutines: the Yen parallel spur fan-out (pool routers
// all holding the coordinator's snapshot) and the parallel Brandes
// workers. Run with -race in CI; the assertions double as determinism
// checks under real concurrency.

// TestFrozenSharedSnapshotConcurrentRouters: many routers, one snapshot,
// concurrent mixed queries (with per-router ban overlays in play) — no
// races, and every goroutine sees the serial answer.
func TestFrozenSharedSnapshotConcurrentRouters(t *testing.T) {
	g, w := gridGraph(6, 6)
	snap := Freeze(g, w)

	want, ok := func() (Path, bool) {
		r := NewRouter(g)
		r.UseSnapshot(snap)
		return r.ShortestPath(0, 35, w)
	}()
	if !ok {
		t.Fatal("grid corner unreachable")
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewRouter(g)
			r.UseSnapshot(snap)
			for iter := 0; iter < 30; iter++ {
				got, ok := r.ShortestPath(0, 35, w)
				if !ok || got.Length != want.Length || !got.SameEdges(want) {
					errs <- "ShortestPath diverged under concurrency"
					return
				}
				// Exercise the ban overlay: it must stay router-local.
				if _, ok := r.ShortestPathAvoiding(0, 35, w, []NodeID{want.Nodes[1]}); ok {
					r.ShortestPathBidirectional(0, 35, w)
				}
				r.ReversePotential(35, w)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestFrozenParallelYenRace: the spur fan-out shares the coordinator's
// snapshot across pool routers; the path list must match the serial
// frozen run exactly.
func TestFrozenParallelYenRace(t *testing.T) {
	g, w := gridGraph(5, 5)

	serial := NewRouter(g)
	serial.UseSnapshot(Freeze(g, w))
	serial.SetSpurWorkers(1)
	want := serial.KShortest(0, 24, 40, w)

	for i := 0; i < 4; i++ {
		r := NewRouter(g)
		r.UseSnapshot(Freeze(g, w))
		r.SetSpurWorkers(4)
		if err := samePathList(r.KShortest(0, 24, 40, w), want); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// TestBetweennessParallelRace: full-graph parallel Brandes on a shared
// snapshot, repeated, must be race-free and reproduce the serial scores
// bit for bit every time.
func TestBetweennessParallelRace(t *testing.T) {
	g, w := gridGraph(6, 6)
	snap := Freeze(g, w)
	opts := BetweennessOptions{Normalize: true}
	want := EdgeBetweenness(g, w, opts)

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := BetweennessParallel(t.Context(), snap, opts, 4)
			if err != nil {
				errs <- err.Error()
				return
			}
			for e := range want {
				if got[e] != want[e] {
					errs <- "parallel Brandes diverged from serial"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
