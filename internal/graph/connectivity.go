package graph

// ReachableFrom returns, for every node, whether it is reachable from s over
// enabled edges (s itself is reachable).
func ReachableFrom(g *Graph, s NodeID) []bool {
	n := g.NumNodes()
	seen := make([]bool, n)
	if !g.validNode(s) {
		return seen
	}
	stack := []NodeID{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[u] {
			if g.disabled[e] {
				continue
			}
			v := g.arcs[e].To
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// CanReach reports whether t is reachable from s over enabled edges.
func CanReach(g *Graph, s, t NodeID) bool {
	if !g.validNode(s) || !g.validNode(t) {
		return false
	}
	if s == t {
		return true
	}
	return ReachableFrom(g, s)[t]
}

// StronglyConnectedComponents returns a component index per node and the
// number of components, computed over enabled edges with an iterative
// Tarjan algorithm. Component indices are assigned in reverse topological
// order of the condensation (Tarjan's natural output order).
func StronglyConnectedComponents(g *Graph) (comp []int, count int) {
	n := g.NumNodes()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}

	var stack []NodeID
	next := int32(0)

	// Explicit DFS frame: node plus position in its out-edge list.
	type frame struct {
		node NodeID
		ei   int
	}
	var dfs []frame

	for root := NodeID(0); int(root) < n; root++ {
		if index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{node: root})
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			u := f.node
			advanced := false
			for f.ei < len(g.out[u]) {
				e := g.out[u][f.ei]
				f.ei++
				if g.disabled[e] {
					continue
				}
				v := g.arcs[e].To
				if index[v] == -1 {
					index[v] = next
					lowlink[v] = next
					next++
					stack = append(stack, v)
					onStack[v] = true
					dfs = append(dfs, frame{node: v})
					advanced = true
					break
				}
				if onStack[v] && index[v] < lowlink[u] {
					lowlink[u] = index[v]
				}
			}
			if advanced {
				continue
			}
			// u is finished: pop its frame, fold lowlink into parent.
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].node
				if lowlink[u] < lowlink[p] {
					lowlink[p] = lowlink[u]
				}
			}
			if lowlink[u] == index[u] {
				for {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[v] = false
					comp[v] = count
					if v == u {
						break
					}
				}
				count++
			}
		}
	}
	return comp, count
}

// LargestSCC returns the node set of the largest strongly connected
// component. Road-network experiments run on the largest SCC so that every
// randomly drawn source can reach every destination, mirroring the usual
// OSMnx preprocessing step.
func LargestSCC(g *Graph) []NodeID {
	comp, count := StronglyConnectedComponents(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		if c >= 0 {
			sizes[c]++
		}
	}
	best := 0
	for c, sz := range sizes {
		if sz > sizes[best] {
			best = c
		}
	}
	nodes := make([]NodeID, 0, sizes[best])
	for n, c := range comp {
		if c == best {
			nodes = append(nodes, NodeID(n))
		}
	}
	return nodes
}
