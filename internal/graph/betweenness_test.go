package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEdgeBetweennessPathGraph(t *testing.T) {
	// 0->1->2: edge 0 is on paths 0->1 and 0->2; edge 1 on 1->2 and 0->2.
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	w := func(EdgeID) float64 { return 1 }
	eb := EdgeBetweenness(g, w, BetweennessOptions{})
	if eb[0] != 2 || eb[1] != 2 {
		t.Errorf("betweenness = %v, want [2 2]", eb)
	}
}

func TestEdgeBetweennessSplitsTies(t *testing.T) {
	// Two equal-length 0->3 routes; each middle edge carries half a path.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 3)
	w := func(EdgeID) float64 { return 1 }
	eb := EdgeBetweenness(g, w, BetweennessOptions{})
	// Pair (0,3) contributes 0.5 per route; pairs (0,1),(1,3) contribute 1
	// each to their edges, etc.
	want := []float64{1.5, 1.5, 1.5, 1.5}
	for e := range want {
		if math.Abs(eb[e]-want[e]) > 1e-12 {
			t.Errorf("eb[%d] = %v, want %v", e, eb[e], want[e])
		}
	}
}

func TestEdgeBetweennessNormalize(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	w := func(EdgeID) float64 { return 1 }
	eb := EdgeBetweenness(g, w, BetweennessOptions{Normalize: true})
	// 2 of the 6 ordered pairs route over each edge.
	want := 2.0 / 6.0
	for e := 0; e < 2; e++ {
		if math.Abs(eb[e]-want) > 1e-12 {
			t.Errorf("eb[%d] = %v, want %v", e, eb[e], want)
		}
	}
}

func TestEdgeBetweennessSkipsDisabled(t *testing.T) {
	g := New(3)
	e0 := g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2) // direct shortcut
	w := func(EdgeID) float64 { return 1 }
	g.DisableEdge(e0)
	eb := EdgeBetweenness(g, w, BetweennessOptions{})
	if eb[e0] != 0 {
		t.Errorf("disabled edge scored %v, want 0", eb[e0])
	}
}

func TestEdgeBetweennessEmptyGraph(t *testing.T) {
	g := New(0)
	if eb := EdgeBetweenness(g, func(EdgeID) float64 { return 1 }, BetweennessOptions{}); len(eb) != 0 {
		t.Errorf("empty graph betweenness = %v", eb)
	}
}

// naiveEdgeBetweenness counts shortest paths per edge via brute-force path
// enumeration on small graphs.
func naiveEdgeBetweenness(g *Graph, weights []float64) []float64 {
	n := g.NumNodes()
	eb := make([]float64, g.NumEdges())
	for s := NodeID(0); int(s) < n; s++ {
		for d := NodeID(0); int(d) < n; d++ {
			if s == d {
				continue
			}
			lens := allSimplePaths(g, s, d, weights)
			if len(lens) == 0 {
				continue
			}
			best := math.Inf(1)
			for _, p := range lens {
				if p.Length < best {
					best = p.Length
				}
			}
			var shortest []Path
			for _, p := range lens {
				if p.Length == best {
					shortest = append(shortest, p)
				}
			}
			for _, p := range shortest {
				for _, e := range p.Edges {
					eb[e] += 1 / float64(len(shortest))
				}
			}
		}
	}
	return eb
}

// allSimplePaths enumerates every simple s->t path.
func allSimplePaths(g *Graph, s, t NodeID, weights []float64) []Path {
	var out []Path
	onPath := make([]bool, g.NumNodes())
	var nodes []NodeID
	var edges []EdgeID
	var length float64
	var dfs func(u NodeID)
	dfs = func(u NodeID) {
		nodes = append(nodes, u)
		if u == t {
			out = append(out, Path{
				Nodes:  append([]NodeID(nil), nodes...),
				Edges:  append([]EdgeID(nil), edges...),
				Length: length,
			})
			nodes = nodes[:len(nodes)-1]
			return
		}
		onPath[u] = true
		for _, e := range g.OutEdges(u) {
			if g.EdgeDisabled(e) {
				continue
			}
			v := g.To(e)
			if onPath[v] {
				continue
			}
			edges = append(edges, e)
			length += weights[e]
			dfs(v)
			length -= weights[e]
			edges = edges[:len(edges)-1]
		}
		onPath[u] = false
		nodes = nodes[:len(nodes)-1]
	}
	dfs(s)
	return out
}

func TestEdgeBetweennessMatchesNaiveProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g, weights := randomGraph(rng, n, n)
		w := func(e EdgeID) float64 { return weights[e] }

		got := EdgeBetweenness(g, w, BetweennessOptions{})
		want := naiveEdgeBetweenness(g, weights)
		for e := range want {
			if math.Abs(got[e]-want[e]) > 1e-9 {
				t.Logf("seed %d: eb[%d] = %v, naive %v", seed, e, got[e], want[e])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestTopEdgesByScore(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	e1 := g.MustAddEdge(1, 2)
	e2 := g.MustAddEdge(2, 3)
	score := []float64{1, 5, 3}

	top := TopEdgesByScore(g, score, 2)
	if len(top) != 2 || top[0] != e1 || top[1] != e2 {
		t.Errorf("top = %v, want [%d %d]", top, e1, e2)
	}
	if got := TopEdgesByScore(g, score, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := TopEdgesByScore(g, score, 10); len(got) != 3 {
		t.Errorf("k>edges returned %d edges, want 3", len(got))
	}
	g.DisableEdge(e1)
	top = TopEdgesByScore(g, score, 1)
	if len(top) != 1 || top[0] != e2 {
		t.Errorf("top with disabled best = %v, want [%d]", top, e2)
	}
}
