package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Frozen-kernel differential tests: a router with a snapshot attached must
// return BIT-IDENTICAL results to the live-graph kernels — same edges,
// same nodes, same float length bits — on tie-free AND massively tied
// graphs, with disabled-edge overlays, ban overlays, and mid-run
// DisableEdge. The guarantee rests on the shared heapLess total order
// (dist, then node): any correct heap pops the same value sequence, so
// heap arity cannot show up in the output.

// frozenRouter returns a router for g with a fresh snapshot attached.
func frozenRouter(g *Graph, w WeightFunc) *Router {
	r := NewRouter(g)
	r.UseSnapshot(Freeze(g, w))
	return r
}

func samePath(got, want Path, gotOK, wantOK bool) bool {
	if gotOK != wantOK {
		return false
	}
	if !wantOK {
		return true
	}
	if got.Length != want.Length || !got.SameEdges(want) {
		return false
	}
	if len(got.Nodes) != len(want.Nodes) {
		return false
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			return false
		}
	}
	return true
}

// testGraphs yields the two weight regimes: continuous tie-free random
// graphs and a unit-weight grid where nearly everything ties.
func testGraphs(rng *rand.Rand) []struct {
	name string
	g    *Graph
	w    WeightFunc
} {
	rg, rw := randomTieFreeGraph(rng)
	gg, gw := gridGraph(4, 5)
	// Disable a few grid edges so the tied regime also covers overlays.
	for e := 0; e < gg.NumEdges(); e++ {
		if rng.Intn(12) == 0 {
			gg.DisableEdge(EdgeID(e))
		}
	}
	return []struct {
		name string
		g    *Graph
		w    WeightFunc
	}{
		{"random", rg, rw},
		{"grid", gg, gw},
	}
}

// TestFrozenPointQueriesMatchLive checks every point-to-point kernel —
// Dijkstra, avoiding-Dijkstra, A* (zero and potential heuristics),
// bidirectional — plus the full-sweep tables against the live kernels.
func TestFrozenPointQueriesMatchLive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, tc := range testGraphs(rng) {
			n := tc.g.NumNodes()
			s := NodeID(rng.Intn(n))
			tgt := NodeID(rng.Intn(n))
			live := NewRouter(tc.g)
			froz := frozenRouter(tc.g, tc.w)

			lp, lok := live.ShortestPath(s, tgt, tc.w)
			fp, fok := froz.ShortestPath(s, tgt, tc.w)
			if !samePath(fp, lp, fok, lok) {
				t.Logf("seed %d %s: ShortestPath mismatch: %v/%v vs %v/%v", seed, tc.name, fp, fok, lp, lok)
				return false
			}

			var avoid []NodeID
			for i := 0; i < rng.Intn(4); i++ {
				avoid = append(avoid, NodeID(rng.Intn(n)))
			}
			lp, lok = live.ShortestPathAvoiding(s, tgt, tc.w, avoid)
			fp, fok = froz.ShortestPathAvoiding(s, tgt, tc.w, avoid)
			if !samePath(fp, lp, fok, lok) {
				t.Logf("seed %d %s: ShortestPathAvoiding mismatch", seed, tc.name)
				return false
			}

			lp, lok = live.ShortestPathBidirectional(s, tgt, tc.w)
			fp, fok = froz.ShortestPathBidirectional(s, tgt, tc.w)
			if !samePath(fp, lp, fok, lok) {
				t.Logf("seed %d %s: ShortestPathBidirectional mismatch: %v/%v vs %v/%v", seed, tc.name, fp, fok, lp, lok)
				return false
			}

			zero := func(NodeID) float64 { return 0 }
			lp, lok = live.ShortestPathAStar(s, tgt, tc.w, zero)
			fp, fok = froz.ShortestPathAStar(s, tgt, tc.w, zero)
			if !samePath(fp, lp, fok, lok) {
				t.Logf("seed %d %s: ShortestPathAStar mismatch", seed, tc.name)
				return false
			}

			lpot := live.ReversePotential(tgt, tc.w)
			fpot := froz.ReversePotential(tgt, tc.w)
			for v := 0; v < n; v++ {
				if lpot.At(NodeID(v)) != fpot.At(NodeID(v)) {
					t.Logf("seed %d %s: ReversePotential differs at %d", seed, tc.name, v)
					return false
				}
			}

			ld := live.DistancesFrom(s, tc.w)
			fd := froz.DistancesFrom(s, tc.w)
			for v := range ld {
				if ld[v] != fd[v] {
					t.Logf("seed %d %s: DistancesFrom differs at %d: %v vs %v", seed, tc.name, v, fd[v], ld[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestFrozenYenMatchesLive checks the full Yen engine — serial and with
// the parallel spur fan-out forced on — path list bit-identical between
// frozen and live, in both weight regimes (on ties, frozen and live must
// still agree with each other exactly, even though the representative
// choice vs other algorithms is free).
func TestFrozenYenMatchesLive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, tc := range testGraphs(rng) {
			n := tc.g.NumNodes()
			s := NodeID(rng.Intn(n))
			tgt := NodeID(rng.Intn(n))
			k := 1 + rng.Intn(20)

			live := NewRouter(tc.g)
			live.SetSpurWorkers(1)
			want := live.KShortest(s, tgt, k, tc.w)

			for _, workers := range []int{1, 3} {
				froz := frozenRouter(tc.g, tc.w)
				froz.SetSpurWorkers(workers)
				if err := samePathList(froz.KShortest(s, tgt, k, tc.w), want); err != nil {
					t.Logf("seed %d %s workers=%d: %v", seed, tc.name, workers, err)
					return false
				}
			}

			// Exclusivity oracle with a potential cached before cuts: both
			// sides use a pre-cut potential (on tied graphs the choice of
			// potential legitimately picks the tied representative, so the
			// comparison must hold it fixed).
			if len(want) > 0 {
				liveRef := NewRouter(tc.g)
				livePot := liveRef.ReversePotential(tgt, tc.w)
				froz := frozenRouter(tc.g, tc.w)
				frozPot := froz.ReversePotential(tgt, tc.w)
				tx := tc.g.Begin()
				for e := 0; e < tc.g.NumEdges(); e++ {
					if rng.Intn(8) == 0 {
						tx.Disable(EdgeID(e))
					}
				}
				wantAlt, wantOK := liveRef.BestAlternativeWithPotential(s, tgt, tc.w, want[0], livePot)
				gotAlt, gotOK := froz.BestAlternativeWithPotential(s, tgt, tc.w, want[0], frozPot)
				tx.Rollback()
				if !samePath(gotAlt, wantAlt, gotOK, wantOK) {
					t.Logf("seed %d %s: BestAlternative under cuts mismatch", seed, tc.name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestFrozenDisableEdgeOverlay locks in the no-rebuild contract: toggling
// edges between queries must be visible to the frozen kernels through the
// aliased disabled flags, with the snapshot pointer unchanged.
func TestFrozenDisableEdgeOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		g, w := randomTieFreeGraph(rng)
		n := g.NumNodes()
		s := NodeID(rng.Intn(n))
		tgt := NodeID(rng.Intn(n))

		froz := frozenRouter(g, w)
		snap := froz.Snapshot()
		live := NewRouter(g)

		p, ok := froz.ShortestPath(s, tgt, w)
		if !ok || len(p.Edges) == 0 {
			continue
		}
		// Attack-round pattern: disable an edge on the current shortest
		// path, re-query, restore.
		cut := p.Edges[rng.Intn(len(p.Edges))]
		g.DisableEdge(cut)
		lp, lok := live.ShortestPath(s, tgt, w)
		fp, fok := froz.ShortestPath(s, tgt, w)
		g.EnableEdge(cut)
		if !samePath(fp, lp, fok, lok) {
			t.Fatalf("trial %d: post-disable mismatch: %v/%v vs %v/%v", trial, fp, fok, lp, lok)
		}
		if fok && fp.HasEdge(cut) {
			t.Fatalf("trial %d: frozen kernel traversed the disabled edge %d", trial, cut)
		}
		if froz.Snapshot() != snap {
			t.Fatalf("trial %d: DisableEdge forced a snapshot rebuild", trial)
		}
		// After restore the original answer comes back.
		fp, fok = froz.ShortestPath(s, tgt, w)
		if !samePath(fp, p, fok, true) {
			t.Fatalf("trial %d: post-enable answer differs from original", trial)
		}
	}
}

// TestFrozenSnapshotInvalidation: adding topology must bump the
// generation, invalidate the snapshot, and make the router rebuild it
// transparently on the next query — observing the new edge.
func TestFrozenSnapshotInvalidation(t *testing.T) {
	g := New(3)
	e01 := g.MustAddEdge(0, 1)
	e12 := g.MustAddEdge(1, 2)
	weights := map[EdgeID]float64{e01: 5, e12: 5}
	w := func(e EdgeID) float64 { return weights[e] }

	r := frozenRouter(g, w)
	old := r.Snapshot()
	if !old.Valid() {
		t.Fatal("fresh snapshot invalid")
	}
	if p, ok := r.ShortestPath(0, 2, w); !ok || p.Length != 10 {
		t.Fatalf("pre-mutation path: %v %v", p, ok)
	}

	shortcut := g.MustAddEdge(0, 2)
	weights[shortcut] = 1
	if old.Valid() {
		t.Fatal("snapshot still valid after AddEdge")
	}
	p, ok := r.ShortestPath(0, 2, w)
	if !ok || p.Length != 1 || len(p.Edges) != 1 || p.Edges[0] != shortcut {
		t.Fatalf("post-mutation path did not use the new edge: %v %v", p, ok)
	}
	if r.Snapshot() == old || !r.Snapshot().Valid() {
		t.Fatal("router did not rebuild the stale snapshot")
	}
}

// TestBetweennessParallelMatchesSerial: bitwise equality with
// EdgeBetweennessCtx for several worker counts, with sampling,
// normalization, and disabled edges in the mix.
func TestBetweennessParallelMatchesSerial(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, tc := range testGraphs(rng) {
			opts := BetweennessOptions{Normalize: rng.Intn(2) == 0}
			if rng.Intn(2) == 0 {
				n := tc.g.NumNodes()
				k := 1 + rng.Intn(n)
				for _, i := range rng.Perm(n)[:k] {
					opts.Sources = append(opts.Sources, NodeID(i))
				}
			}
			want := EdgeBetweenness(tc.g, tc.w, opts)
			snap := Freeze(tc.g, tc.w)
			for _, workers := range []int{1, 2, 5} {
				got, err := BetweennessParallel(t.Context(), snap, opts, workers)
				if err != nil {
					t.Logf("seed %d %s workers=%d: %v", seed, tc.name, workers, err)
					return false
				}
				for e := range want {
					if got[e] != want[e] {
						t.Logf("seed %d %s workers=%d: edge %d: %v vs %v (bit-identical required)",
							seed, tc.name, workers, e, got[e], want[e])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestFrozenSpurBansStayRouterLocal: two routers sharing one snapshot
// must not see each other's ban overlays — the overlay is per-router
// epoch state, not snapshot state.
func TestFrozenSpurBansStayRouterLocal(t *testing.T) {
	g, w := gridGraph(3, 4)
	snap := Freeze(g, w)
	r1 := NewRouter(g)
	r1.UseSnapshot(snap)
	r2 := NewRouter(g)
	r2.UseSnapshot(snap)

	unbanned, ok := r2.ShortestPath(0, 11, w)
	if !ok {
		t.Fatal("grid corner unreachable")
	}
	// Ban every node of r2's path on r1; r2 must be unaffected.
	p1, ok1 := r1.ShortestPathAvoiding(0, 11, w, unbanned.Nodes[1:len(unbanned.Nodes)-1])
	p2, ok2 := r2.ShortestPath(0, 11, w)
	if !samePath(p2, unbanned, ok2, true) {
		t.Fatalf("r1's bans leaked into r2: %v %v", p2, ok2)
	}
	if ok1 {
		for _, nd := range unbanned.Nodes[1 : len(unbanned.Nodes)-1] {
			for _, got := range p1.Nodes {
				if got == nd {
					t.Fatalf("avoiding query visited banned node %d", nd)
				}
			}
		}
	}
}

// TestFreezeWeightTable: the materialized weight array must agree with
// the weight function on every edge, and the reverse arrays must mirror
// the forward ones.
func TestFreezeWeightTable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, w := randomTieFreeGraph(rng)
	snap := Freeze(g, w)
	if snap.NumNodes() != g.NumNodes() || snap.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot dims %d/%d, graph %d/%d", snap.NumNodes(), snap.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for e := 0; e < g.NumEdges(); e++ {
		if snap.Weight(EdgeID(e)) != w(EdgeID(e)) {
			t.Fatalf("edge %d: materialized weight %v, want %v", e, snap.Weight(EdgeID(e)), w(EdgeID(e)))
		}
	}
	// Forward and reverse slot counts must both equal the edge count, and
	// each slot must be consistent with the arc table.
	for u := 0; u < g.NumNodes(); u++ {
		out := g.OutEdges(NodeID(u))
		lo, hi := snap.fwdOff[u], snap.fwdOff[u+1]
		if int(hi-lo) != len(out) {
			t.Fatalf("node %d: %d fwd slots, want %d", u, hi-lo, len(out))
		}
		for i, e := range out {
			slot := lo + int32(i)
			if EdgeID(snap.fwdEdge[slot]) != e || NodeID(snap.fwdTo[slot]) != g.To(e) || snap.fwdW[slot] != w(e) {
				t.Fatalf("node %d slot %d inconsistent", u, i)
			}
		}
		in := g.InEdges(NodeID(u))
		lo, hi = snap.revOff[u], snap.revOff[u+1]
		if int(hi-lo) != len(in) {
			t.Fatalf("node %d: %d rev slots, want %d", u, hi-lo, len(in))
		}
		for i, e := range in {
			slot := lo + int32(i)
			if EdgeID(snap.revEdge[slot]) != e || NodeID(snap.revFrom[slot]) != g.From(e) || snap.revW[slot] != w(e) {
				t.Fatalf("node %d rev slot %d inconsistent", u, i)
			}
		}
	}
	// Refresh on a valid snapshot is the identity; after topology moves it
	// is a rebuild.
	if snap.Refresh() != snap {
		t.Fatal("Refresh rebuilt a valid snapshot")
	}
	g.AddNode()
	if snap.Refresh() == snap || snap.Valid() {
		t.Fatal("Refresh did not rebuild a stale snapshot")
	}
}

// TestFrozenDistancesBellmanFord cross-checks the frozen full sweep
// against the independent Bellman-Ford oracle (not just the live mirror).
func TestFrozenDistancesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		g, w := randomTieFreeGraph(rng)
		weights := make([]float64, g.NumEdges())
		for e := range weights {
			weights[e] = w(EdgeID(e))
		}
		s := NodeID(rng.Intn(g.NumNodes()))
		want := bellmanFord(g, s, weights)
		got := frozenRouter(g, w).DistancesFrom(s, w)
		for v := range want {
			if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("trial %d node %d: %v, want %v", trial, v, got[v], want[v])
			}
		}
	}
}
