package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// gridGraph builds a rows x cols bidirectional lattice with unit weights.
func gridGraph(rows, cols int) (*Graph, WeightFunc) {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
				g.MustAddEdge(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
				g.MustAddEdge(id(r+1, c), id(r, c))
			}
		}
	}
	return g, func(EdgeID) float64 { return 1 }
}

func TestKShortestSmall(t *testing.T) {
	// 0->1->3 (len 2), 0->2->3 (len 3), 0->3 (len 4).
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 3)
	weights := []float64{1, 1, 1, 2, 4}
	w := func(e EdgeID) float64 { return weights[e] }

	paths := NewRouter(g).KShortest(0, 3, 10, w)
	if len(paths) != 3 {
		t.Fatalf("KShortest returned %d paths, want 3", len(paths))
	}
	wantLens := []float64{2, 3, 4}
	for i, want := range wantLens {
		if paths[i].Length != want {
			t.Errorf("path %d length = %v, want %v", i, paths[i].Length, want)
		}
	}
}

func TestKShortestZeroAndNegativeK(t *testing.T) {
	g, w := gridGraph(2, 2)
	r := NewRouter(g)
	if got := r.KShortest(0, 3, 0, w); got != nil {
		t.Errorf("k=0 returned %d paths", len(got))
	}
	if got := r.KShortest(0, 3, -5, w); got != nil {
		t.Errorf("k<0 returned %d paths", len(got))
	}
}

func TestKShortestUnreachable(t *testing.T) {
	g := New(2)
	r := NewRouter(g)
	if got := r.KShortest(0, 1, 5, func(EdgeID) float64 { return 1 }); got != nil {
		t.Errorf("unreachable target returned %d paths", len(got))
	}
}

func TestKShortestGridProperties(t *testing.T) {
	g, w := gridGraph(4, 4)
	r := NewRouter(g)
	paths := r.KShortest(0, 15, 30, w)
	if len(paths) != 30 {
		t.Fatalf("got %d paths, want 30 (4x4 grid has plenty)", len(paths))
	}
	if !sort.SliceIsSorted(paths, func(i, j int) bool { return paths[i].Length < paths[j].Length }) {
		t.Error("paths not sorted by length")
	}
	seen := map[string]struct{}{}
	for i, p := range paths {
		if p.Source() != 0 || p.Target() != 15 {
			t.Errorf("path %d endpoints = %d->%d", i, p.Source(), p.Target())
		}
		if !p.IsSimple() {
			t.Errorf("path %d is not simple: %v", i, p)
		}
		if err := p.Validate(g); err != nil {
			t.Errorf("path %d invalid: %v", i, err)
		}
		key := p.Key()
		if _, dup := seen[key]; dup {
			t.Errorf("path %d duplicates an earlier path", i)
		}
		seen[key] = struct{}{}
	}
	// Shortest in a 4x4 unit grid from corner to corner is 6 hops.
	if paths[0].Length != 6 {
		t.Errorf("shortest length = %v, want 6", paths[0].Length)
	}
}

func TestBestAlternativeReturnsSecondPath(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 3)
	weights := []float64{1, 1, 2, 2}
	w := func(e EdgeID) float64 { return weights[e] }
	r := NewRouter(g)

	best, _ := r.ShortestPath(0, 3, w)
	alt, ok := r.BestAlternative(0, 3, w, best)
	if !ok {
		t.Fatal("no alternative found")
	}
	if alt.SameEdges(best) {
		t.Fatal("alternative equals avoided path")
	}
	if alt.Length != 4 {
		t.Errorf("alternative length = %v, want 4", alt.Length)
	}

	// Avoiding a non-shortest path returns the shortest path.
	got, ok := r.BestAlternative(0, 3, w, alt)
	if !ok || !got.SameEdges(best) {
		t.Errorf("BestAlternative(avoid=second) = %v, ok=%v, want shortest", got, ok)
	}
}

func TestBestAlternativeNoneExists(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	w := func(EdgeID) float64 { return 1 }
	r := NewRouter(g)
	only, _ := r.ShortestPath(0, 1, w)
	if _, ok := r.BestAlternative(0, 1, w, only); ok {
		t.Error("found alternative in a single-path graph")
	}
}

func TestKShortestMatchesBruteForceProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5) // small: brute force enumerates all simple paths
		g, weights := randomGraph(rng, n, n)
		w := func(e EdgeID) float64 { return weights[e] }
		s, tgt := NodeID(0), NodeID(n-1)

		want := allSimplePathLengths(g, s, tgt, weights)
		k := len(want) + 2
		got := NewRouter(g).KShortest(s, tgt, k, w)
		if len(got) != len(want) {
			t.Logf("seed %d: got %d paths, brute force %d", seed, len(got), len(want))
			return false
		}
		for i := range want {
			if got[i].Length != want[i] {
				t.Logf("seed %d: path %d length %v, want %v", seed, i, got[i].Length, want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// allSimplePathLengths enumerates every simple s->t path by DFS and returns
// the sorted lengths.
func allSimplePathLengths(g *Graph, s, t NodeID, weights []float64) []float64 {
	var out []float64
	onPath := make([]bool, g.NumNodes())
	var dfs func(u NodeID, length float64)
	dfs = func(u NodeID, length float64) {
		if u == t {
			out = append(out, length)
			return
		}
		onPath[u] = true
		for _, e := range g.OutEdges(u) {
			if g.EdgeDisabled(e) {
				continue
			}
			v := g.To(e)
			if !onPath[v] {
				dfs(v, length+weights[e])
			}
		}
		onPath[u] = false
	}
	if s == t {
		return []float64{0}
	}
	dfs(s, 0)
	sort.Float64s(out)
	return out
}

// TestSpurBound exercises the candidate-count bound's bookkeeping directly:
// the cutoff must stay +Inf until limit lengths are recorded, then track the
// limit-th smallest length ever added (with its relative slack), regardless
// of insertion order.
func TestSpurBound(t *testing.T) {
	b := &spurBound{limit: 3}
	if !math.IsInf(b.cutoff(), 1) {
		t.Fatalf("empty bound cutoff = %v, want +Inf", b.cutoff())
	}
	b.add(9)
	b.add(5)
	if !math.IsInf(b.cutoff(), 1) {
		t.Fatalf("underfull bound cutoff = %v, want +Inf", b.cutoff())
	}
	b.add(7)
	if got := b.cutoff(); got < 9 || got > 9*(1+2e-9) {
		t.Fatalf("cutoff = %v, want 9 plus relative slack", got)
	}
	// A shorter length displaces the current max; longer ones are ignored.
	b.add(1)
	if got := b.cutoff(); got < 7 || got > 7*(1+2e-9) {
		t.Fatalf("cutoff after displacing 9 = %v, want ~7", got)
	}
	b.add(100)
	if got := b.cutoff(); got < 7 || got > 7*(1+2e-9) {
		t.Fatalf("cutoff must ignore longer candidates, got %v", got)
	}
	b.add(2)
	b.add(3)
	if got := b.cutoff(); got < 3 || got > 3*(1+2e-9) {
		t.Fatalf("cutoff = %v, want ~3 (three smallest are 1,2,3)", got)
	}

	// limit <= 0 (k == 1) must never prune: KShortest accepts only the
	// first path and runs no deviation rounds, but be defensive anyway.
	z := &spurBound{limit: 0}
	z.add(4)
	if !math.IsInf(z.cutoff(), 1) {
		t.Fatalf("zero-limit bound cutoff = %v, want +Inf", z.cutoff())
	}
}

// TestSpurBoundRandomized cross-checks the bounded max-heap against a sort
// over many random sequences: after every add, the cutoff is either +Inf
// (underfull) or derived from the limit-th smallest value so far.
func TestSpurBoundRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		limit := 1 + rng.Intn(6)
		b := &spurBound{limit: limit}
		var all []float64
		for n := 0; n < 40; n++ {
			v := rng.Float64() * 100
			b.add(v)
			all = append(all, v)
			sorted := append([]float64(nil), all...)
			sort.Float64s(sorted)
			if len(all) < limit {
				if !math.IsInf(b.cutoff(), 1) {
					t.Fatalf("trial %d: underfull cutoff = %v", trial, b.cutoff())
				}
				continue
			}
			x := sorted[limit-1]
			if want := x + 1e-9*x; b.cutoff() != want {
				t.Fatalf("trial %d after %d adds: cutoff = %v, want %v",
					trial, n+1, b.cutoff(), want)
			}
		}
	}
}
