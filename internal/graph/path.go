package graph

import (
	"fmt"
	"strings"
)

// Path is a walk through the graph. Nodes has exactly one more element than
// Edges; Edges[i] connects Nodes[i] to Nodes[i+1]. Length is the sum of the
// edge weights under the WeightFunc the path was computed with.
type Path struct {
	Nodes  []NodeID
	Edges  []EdgeID
	Length float64
}

// Source returns the first node of the path, or InvalidNode if empty.
func (p Path) Source() NodeID {
	if len(p.Nodes) == 0 {
		return InvalidNode
	}
	return p.Nodes[0]
}

// Target returns the last node of the path, or InvalidNode if empty.
func (p Path) Target() NodeID {
	if len(p.Nodes) == 0 {
		return InvalidNode
	}
	return p.Nodes[len(p.Nodes)-1]
}

// Empty reports whether the path has no nodes.
func (p Path) Empty() bool { return len(p.Nodes) == 0 }

// Hops returns the number of edges.
func (p Path) Hops() int { return len(p.Edges) }

// HasEdge reports whether e is one of the path's edges.
func (p Path) HasEdge(e EdgeID) bool {
	for _, pe := range p.Edges {
		if pe == e {
			return true
		}
	}
	return false
}

// EdgeSet returns the path's edges as a set.
func (p Path) EdgeSet() map[EdgeID]struct{} {
	s := make(map[EdgeID]struct{}, len(p.Edges))
	for _, e := range p.Edges {
		s[e] = struct{}{}
	}
	return s
}

// SameEdges reports whether p and q traverse exactly the same edge sequence.
func (p Path) SameEdges(q Path) bool {
	if len(p.Edges) != len(q.Edges) {
		return false
	}
	for i, e := range p.Edges {
		if q.Edges[i] != e {
			return false
		}
	}
	return true
}

// Key returns a compact string uniquely identifying the edge sequence,
// usable as a map key for path de-duplication.
//
// Invariant: the encoding writes exactly 4 bytes per edge, which is
// lossless because EdgeID is a 32-bit type. If EdgeID is ever widened this
// encoding silently truncates and distinct paths can collide — widen the
// per-edge encoding with it (TestPathKeyLossless guards this).
func (p Path) Key() string {
	var b strings.Builder
	b.Grow(len(p.Edges) * 4)
	for _, e := range p.Edges {
		b.WriteByte(byte(e))
		b.WriteByte(byte(e >> 8))
		b.WriteByte(byte(e >> 16))
		b.WriteByte(byte(e >> 24))
	}
	return b.String()
}

// Hash returns a 64-bit FNV-1a-style hash of the edge sequence (one 32-bit
// mixing step per edge). The Yen engine uses it as the fast first key of
// its candidate de-duplication set; equality is always confirmed with an
// exact edge-sequence compare, so hash collisions cost time, never
// correctness.
func (p Path) Hash() uint64 { return hashEdges(p.Edges) }

func hashEdges(edges []EdgeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, e := range edges {
		h ^= uint64(uint32(e))
		h *= prime64
	}
	return h
}

// IsSimple reports whether the path visits no node twice.
func (p Path) IsSimple() bool {
	seen := make(map[NodeID]struct{}, len(p.Nodes))
	for _, n := range p.Nodes {
		if _, dup := seen[n]; dup {
			return false
		}
		seen[n] = struct{}{}
	}
	return true
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	return Path{
		Nodes:  append([]NodeID(nil), p.Nodes...),
		Edges:  append([]EdgeID(nil), p.Edges...),
		Length: p.Length,
	}
}

// Truncate returns the prefix of p ending at node index i (inclusive), with
// Length recomputed under w.
func (p Path) Truncate(i int, w WeightFunc) Path {
	pre := Path{
		Nodes: append([]NodeID(nil), p.Nodes[:i+1]...),
		Edges: append([]EdgeID(nil), p.Edges[:i]...),
	}
	for _, e := range pre.Edges {
		pre.Length += w(e)
	}
	return pre
}

// Concat returns p followed by q. q must start at p's target. Length is the
// sum of both lengths.
func (p Path) Concat(q Path) (Path, error) {
	if p.Empty() {
		return q.Clone(), nil
	}
	if q.Empty() {
		return p.Clone(), nil
	}
	if p.Target() != q.Source() {
		return Path{}, fmt.Errorf("graph: Concat: path ends at %d but next starts at %d", p.Target(), q.Source())
	}
	out := Path{
		Nodes:  make([]NodeID, 0, len(p.Nodes)+len(q.Nodes)-1),
		Edges:  make([]EdgeID, 0, len(p.Edges)+len(q.Edges)),
		Length: p.Length + q.Length,
	}
	out.Nodes = append(out.Nodes, p.Nodes...)
	out.Nodes = append(out.Nodes, q.Nodes[1:]...)
	out.Edges = append(out.Edges, p.Edges...)
	out.Edges = append(out.Edges, q.Edges...)
	return out, nil
}

// Validate checks that the path is structurally consistent with g: node and
// edge counts line up, each edge connects the adjacent node pair, and every
// edge is enabled.
func (p Path) Validate(g *Graph) error {
	if len(p.Nodes) == 0 && len(p.Edges) == 0 {
		return nil
	}
	if len(p.Nodes) != len(p.Edges)+1 {
		return fmt.Errorf("graph: path has %d nodes and %d edges", len(p.Nodes), len(p.Edges))
	}
	for i, e := range p.Edges {
		if !g.validEdge(e) {
			return fmt.Errorf("graph: path edge %d out of range", e)
		}
		arc := g.Arc(e)
		if arc.From != p.Nodes[i] || arc.To != p.Nodes[i+1] {
			return fmt.Errorf("graph: path edge %d connects %d->%d, want %d->%d",
				e, arc.From, arc.To, p.Nodes[i], p.Nodes[i+1])
		}
		if g.EdgeDisabled(e) {
			return fmt.Errorf("graph: path uses disabled edge %d", e)
		}
	}
	return nil
}

// String implements fmt.Stringer with a compact node-sequence rendering.
func (p Path) String() string {
	if p.Empty() {
		return "<empty path>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "len=%.3f:", p.Length)
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString("->")
		}
		fmt.Fprintf(&b, "%d", n)
	}
	return b.String()
}
