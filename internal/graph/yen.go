package graph

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
)

// The Yen engine layers four optimisations over the textbook algorithm,
// all output-preserving (see yen_differential_test.go):
//
//  1. Reverse-potential A*: one reverse Dijkstra from t yields exact
//     distances-to-target h(v); every spur search is then a goal-directed
//     A* with early exit at t. Bans only remove edges, so h stays an
//     admissible — in fact consistent — heuristic across all rounds.
//  2. Lawler's deviation-index skip: spur enumeration for an accepted path
//     starts at the index where it deviated from its parent; deviations
//     before that index were already generated during the parent's round.
//  3. Parallel spur fan-out: within a round, spur searches are distributed
//     over a pool of per-goroutine Routers sharing the read-only graph
//     (bans and scratch arrays are router-local). Results are merged
//     serially in spur-index order, so output is identical to a serial run.
//  4. Candidate-count bound: once k-1 candidates at or below length X have
//     ever been generated, no candidate strictly longer than X can still be
//     accepted, so spur searches provably above X are skipped outright or
//     abandoned the moment their frontier passes it (see spurBound).

// Spur fan-out tuning: the default worker count is GOMAXPROCS capped at
// maxSpurWorkers, and rounds with fewer than minParallelSpurs spur nodes
// run serially (goroutine dispatch would cost more than it saves).
const (
	maxSpurWorkers   = 8
	minParallelSpurs = 4
)

// SetSpurWorkers sets the number of goroutines KShortest and
// BestAlternative spread spur searches across. n == 1 forces serial
// operation; n <= 0 restores the default (GOMAXPROCS capped at 8). The
// WeightFunc passed to the query must be safe for concurrent calls when
// more than one worker is active (pure table lookups, as all weight
// functions in this repository are).
func (r *Router) SetSpurWorkers(n int) { r.spurWorkers = n }

// spurParallelism returns the worker count for a round with the given
// number of spur searches.
func (r *Router) spurParallelism(tasks int) int {
	if tasks < minParallelSpurs {
		return 1
	}
	workers := r.spurWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > maxSpurWorkers {
			workers = maxSpurWorkers
		}
	}
	if workers > tasks {
		workers = tasks
	}
	return workers
}

// spurBound tracks the k-1 smallest candidate lengths ever pushed onto the
// candidate heap (a bounded max-heap), where k-1 is the number of accepts
// that can still come from candidates. Once full, its max X is a proof
// obligation killer: a candidate strictly longer than X can never be
// accepted — at the moment it would be popped, at least k-1 strictly
// shorter candidates must each have consumed one of the at most k-1
// accept-pops first. Spur searches whose best possible completion already
// exceeds cutoff() are therefore skipped or abandoned without changing the
// returned top-k. The cutoff carries a relative slack of 1e-9 so that
// ulp-level differences between a frontier f-value and the eventually
// materialized candidate length can never prune a candidate at exactly X.
type spurBound struct {
	limit int
	h     []float64 // max-heap of the limit smallest lengths seen
}

// add records one pushed candidate length.
func (b *spurBound) add(l float64) {
	if b.limit <= 0 {
		return
	}
	if len(b.h) < b.limit {
		b.h = append(b.h, l)
		for i := len(b.h) - 1; i > 0; {
			p := (i - 1) / 2
			if b.h[p] >= b.h[i] {
				break
			}
			b.h[p], b.h[i] = b.h[i], b.h[p]
			i = p
		}
		return
	}
	if l >= b.h[0] {
		return
	}
	b.h[0] = l
	for i := 0; ; {
		c := 2*i + 1
		if c >= len(b.h) {
			break
		}
		if c+1 < len(b.h) && b.h[c+1] > b.h[c] {
			c++
		}
		if b.h[i] >= b.h[c] {
			break
		}
		b.h[i], b.h[c] = b.h[c], b.h[i]
		i = c
	}
}

// cutoff returns the pruning threshold for the next round: +Inf while
// fewer than limit candidates exist (nothing may be pruned yet), else the
// limit-th smallest length with relative slack.
func (b *spurBound) cutoff() float64 {
	if b.limit <= 0 || len(b.h) < b.limit {
		return math.Inf(1)
	}
	x := b.h[0]
	return x + 1e-9*x
}

// spurRouter returns the i-th pool router, creating and growing it lazily.
// Pool routers share r's graph and r's frozen snapshot (validated by the
// coordinator before the fan-out, and immutable while the round runs);
// everything mutable — bans, scratch, heaps — is per-router.
func (r *Router) spurRouter(i int) *Router {
	for len(r.spurPool) <= i {
		r.spurPool = append(r.spurPool, NewRouter(r.g))
	}
	wr := r.spurPool[i]
	wr.snap = r.snap
	wr.grow()
	return wr
}

// KShortest returns up to k loopless (simple) paths from s to t in
// non-decreasing order of weight under w, using Yen's algorithm with
// Lawler's improvement, goal-directed spur searches, and an optional
// parallel spur fan-out (see SetSpurWorkers). The first path is the
// shortest path. Fewer than k paths are returned when the graph does not
// contain k distinct simple paths.
//
// The paper uses path rank 100 (and 200 for Table X): the alternative route
// p* the attacker forces is the 100th-shortest path, so this routine is the
// workload generator for every experiment.
func (r *Router) KShortest(s, t NodeID, k int, w WeightFunc) []Path {
	if k <= 0 {
		return nil
	}
	r.grow()
	r.clearBans()
	return r.kShortest(s, t, k, w, r.ReversePotential(t, w))
}

// KShortestWithPotential is KShortest with a caller-supplied reverse
// potential, for callers that issue many k-shortest queries against the
// same target (the city-shard registry precomputes one potential per
// hospital destination and reuses it across every request). pot must come
// from ReversePotential(t, w) on this graph in a state whose enabled-edge
// set contained every currently enabled edge — the same contract as
// BestAlternativeWithPotential. A nil or mismatched-target pot is
// recomputed, making the call equivalent to KShortest.
func (r *Router) KShortestWithPotential(s, t NodeID, k int, w WeightFunc, pot *Potential) []Path {
	if k <= 0 {
		return nil
	}
	r.grow()
	r.clearBans()
	if pot == nil || pot.Target() != t {
		pot = r.ReversePotential(t, w)
	}
	return r.kShortest(s, t, k, w, pot)
}

// kShortest is the shared Yen engine behind KShortest and
// KShortestWithPotential. Bans are already cleared and scratch arrays
// grown; pot is a valid reverse potential for t under w.
func (r *Router) kShortest(s, t NodeID, k int, w WeightFunc, pot *Potential) []Path {
	first, ok := r.shortestAStar(s, t, w, pot, 0, math.Inf(1))
	if !ok {
		return nil
	}
	accepted := []Path{first}
	devs := []int{0}
	seen := pathSet{}
	seen.add(first.Edges)
	var cands candidateHeap
	// k-1 accepts beyond the first path can come from candidates; the
	// bound's cutoff is re-read once per round so serial and parallel
	// rounds prune identically.
	bnd := &spurBound{limit: k - 1}

	for len(accepted) < k {
		if r.interrupted() {
			break // cancelled: return what we have (see SetContext)
		}
		last := len(accepted) - 1
		r.spurCandidates(accepted[last], devs[last], accepted, t, w, pot, seen, &cands, bnd)
		if cands.Len() == 0 {
			break
		}
		best := heap.Pop(&cands).(candidate)
		accepted = append(accepted, best.path)
		devs = append(devs, best.dev)
	}
	return accepted
}

// BestAlternative returns the minimum-weight s->t path whose edge sequence
// differs from avoid, or ok == false when no such path exists. When the
// overall shortest path already differs from avoid it is returned directly;
// otherwise a single Yen deviation round over avoid finds the best
// second path.
//
// This is the attack algorithms' exclusivity oracle: p* is the exclusive
// shortest path iff BestAlternative(s, t, w, p*) has Length > p*.Length.
func (r *Router) BestAlternative(s, t NodeID, w WeightFunc, avoid Path) (Path, bool) {
	r.grow()
	r.clearBans()
	return r.bestAlternative(s, t, w, avoid, r.ReversePotential(t, w))
}

// BestAlternativeWithPotential is BestAlternative with a caller-supplied
// reverse potential, for callers that issue many oracle queries against the
// same target. pot must come from ReversePotential(t, w) on this graph in a
// state whose enabled-edge set contained every currently enabled edge —
// edges may have been disabled since it was computed, but not enabled. The
// attack loops exploit exactly this: they compute the potential once on the
// unmodified graph and reuse it while candidate cuts are applied, because
// cuts only disable edges. A nil or mismatched-target pot is recomputed.
func (r *Router) BestAlternativeWithPotential(s, t NodeID, w WeightFunc, avoid Path, pot *Potential) (Path, bool) {
	r.grow()
	r.clearBans()
	if pot == nil || pot.Target() != t {
		pot = r.ReversePotential(t, w)
	}
	return r.bestAlternative(s, t, w, avoid, pot)
}

func (r *Router) bestAlternative(s, t NodeID, w WeightFunc, avoid Path, pot *Potential) (Path, bool) {
	first, ok := r.shortestAStar(s, t, w, pot, 0, math.Inf(1))
	if !ok {
		return Path{}, false
	}
	if !first.SameEdges(avoid) {
		return first, true
	}
	seen := pathSet{}
	seen.add(avoid.Edges)
	var cands candidateHeap
	r.spurCandidates(avoid, 0, []Path{avoid}, t, w, pot, seen, &cands, nil)
	if cands.Len() == 0 {
		return Path{}, false
	}
	return heap.Pop(&cands).(candidate).path, true
}

// spurCandidates runs one Yen deviation round over base: for every spur
// node from index start on, ban the root-path nodes and the next edges of
// every accepted path sharing the root, and search for the best spur path
// to t. New candidates (not in seen) are pushed onto cands and recorded in
// seen, so repeated generation of the same deviation across rounds is
// suppressed.
//
// start is Lawler's deviation index: spur indices before the point where
// base split from its own parent were already enumerated during the
// parent's round (base shares that prefix with its parent, so the root path
// and ban context coincide) and would only regenerate suppressed
// duplicates.
//
// bnd, when non-nil, is the candidate-count bound. Its cutoff is read once
// at round entry — never mid-round — so every spur search of the round
// (serial or parallel) prunes against the same threshold. A spur search
// whose root length plus the exact distance-to-target of its spur node
// already exceeds the cutoff is skipped before any ban setup; the rest pass
// the cutoff down so the A* can abandon itself mid-flight.
func (r *Router) spurCandidates(base Path, start int, accepted []Path, t NodeID, w WeightFunc, pot *Potential, seen pathSet, cands *candidateHeap, bnd *spurBound) {
	n := len(base.Edges)
	if start < 0 {
		start = 0
	}
	cut := math.Inf(1)
	if bnd != nil {
		cut = bnd.cutoff()
	}
	if workers := r.spurParallelism(n - start); workers > 1 {
		r.spurCandidatesParallel(base, start, accepted, t, w, pot, seen, cands, bnd, cut, workers)
		return
	}
	rootLen := 0.0
	for j := 0; j < start; j++ {
		rootLen += w(base.Edges[j])
	}
	for i := start; i < n; i++ {
		if r.interrupted() {
			break // cancelled mid-round: candidates so far are still valid
		}
		if rootLen+pot.At(base.Nodes[i]) <= cut {
			if spur, ok := r.spurSearch(base, i, accepted, t, w, pot, rootLen, cut); ok {
				total := concatSpur(base, i, rootLen, spur)
				if seen.add(total.Edges) {
					heap.Push(cands, candidate{path: total, dev: i})
					if bnd != nil {
						bnd.add(total.Length)
					}
				}
			}
		}
		rootLen += w(base.Edges[i])
	}
	r.clearBans()
}

// spurCandidatesParallel distributes the spur searches of one round across
// pool routers. Every goroutine works on its own Router (private bans and
// scratch arrays) against the shared read-only graph, writing results into
// disjoint slice slots; the seen-set, heap, and bound updates then run
// serially in spur-index order. The cutoff was fixed by the caller before
// the fan-out, so every worker prunes exactly as the serial loop would and
// the accepted output is identical to a serial run.
func (r *Router) spurCandidatesParallel(base Path, start int, accepted []Path, t NodeID, w WeightFunc, pot *Potential, seen pathSet, cands *candidateHeap, bnd *spurBound, cut float64, workers int) {
	n := len(base.Edges)
	// prefix[i] is the weight of base's first i edges, summed left to right
	// exactly as the serial accumulation would, so Lengths are bit-equal.
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + w(base.Edges[i])
	}

	spurs := make([]Path, n-start)
	found := make([]bool, n-start)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wr := r.spurRouter(wi)
		wg.Add(1)
		go func(wr *Router, offset int) {
			defer wg.Done()
			for i := start + offset; i < n; i += workers {
				if r.interrupted() {
					break // workers only read r.ctx; no race with the coordinator
				}
				if prefix[i]+pot.At(base.Nodes[i]) > cut {
					continue // same pre-skip as the serial loop
				}
				if spur, ok := wr.spurSearch(base, i, accepted, t, w, pot, prefix[i], cut); ok {
					spurs[i-start] = spur
					found[i-start] = true
				}
			}
			wr.clearBans()
		}(wr, wi)
	}
	wg.Wait()

	for i := start; i < n; i++ {
		if !found[i-start] {
			continue
		}
		total := concatSpur(base, i, prefix[i], spurs[i-start])
		if seen.add(total.Edges) {
			heap.Push(cands, candidate{path: total, dev: i})
			if bnd != nil {
				bnd.add(total.Length)
			}
		}
	}
}

// spurSearch establishes the Yen ban context for spur index i on r (the
// root nodes before the spur node, and the next edge of every accepted path
// sharing base's root) and runs the goal-directed search from the spur node
// to t. rootLen and cut feed the candidate-count bound (see spurBound);
// cut == +Inf disables it.
func (r *Router) spurSearch(base Path, i int, accepted []Path, t NodeID, w WeightFunc, pot *Potential, rootLen, cut float64) (Path, bool) {
	spurNode := base.Nodes[i]
	if math.IsInf(pot.At(spurNode), 1) {
		return Path{}, false // spur node cannot reach t even unbanned
	}
	r.clearBans()
	for _, p := range accepted {
		if i < len(p.Edges) && samePrefix(p, base, i) {
			r.banEdge(p.Edges[i])
		}
	}
	for j := 0; j < i; j++ {
		r.banNode(base.Nodes[j])
	}
	return r.shortestAStar(spurNode, t, w, pot, rootLen, cut)
}

// samePrefix reports whether p and q share their first i edges.
func samePrefix(p, q Path, i int) bool {
	if len(p.Edges) < i || len(q.Edges) < i {
		return false
	}
	for j := 0; j < i; j++ {
		if p.Edges[j] != q.Edges[j] {
			return false
		}
	}
	return true
}

// concatSpur joins base's first i edges (with precomputed weight rootLen)
// to spur, which starts at base.Nodes[i].
func concatSpur(base Path, i int, rootLen float64, spur Path) Path {
	nodes := make([]NodeID, 0, i+len(spur.Nodes))
	nodes = append(nodes, base.Nodes[:i]...)
	nodes = append(nodes, spur.Nodes...)
	edges := make([]EdgeID, 0, i+len(spur.Edges))
	edges = append(edges, base.Edges[:i]...)
	edges = append(edges, spur.Edges...)
	return Path{Nodes: nodes, Edges: edges, Length: rootLen + spur.Length}
}

// pathSet is the candidate de-duplication set: a 64-bit hash keys buckets
// of exact edge sequences, replacing the per-candidate string key (which
// allocated 4 bytes per edge per probe). A hash collision degrades to a
// linear compare, never a wrong dedup decision. Stored slices are retained;
// callers must not mutate them afterwards.
type pathSet map[uint64][][]EdgeID

// add inserts the edge sequence and reports whether it was absent.
func (s pathSet) add(edges []EdgeID) bool {
	h := hashEdges(edges)
	for _, have := range s[h] {
		if edgesEqual(have, edges) {
			return false
		}
	}
	s[h] = append(s[h], edges)
	return true
}

func edgesEqual(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i, e := range a {
		if b[i] != e {
			return false
		}
	}
	return true
}

// candidate pairs a Yen candidate path with the spur index where it
// deviates from the accepted path it was generated from (Lawler's
// deviation index: spur enumeration resumes there if it is accepted).
type candidate struct {
	path Path
	dev  int
}

// candidateHeap orders candidate paths by length, then hop count, then edge
// sequence so results are deterministic across runs.
type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }

func (h candidateHeap) Less(i, j int) bool { return pathLess(h[i].path, h[j].path) }

// pathLess is the deterministic candidate order: length, then hop count,
// then lexicographic edge sequence.
func pathLess(a, b Path) bool {
	if a.Length != b.Length { //lint:allow floateq the deterministic path order relies on exact length bits; near-ties are resolved structurally below
		return a.Length < b.Length
	}
	if len(a.Edges) != len(b.Edges) {
		return len(a.Edges) < len(b.Edges)
	}
	for k := range a.Edges {
		if a.Edges[k] != b.Edges[k] {
			return a.Edges[k] < b.Edges[k]
		}
	}
	return false
}

func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *candidateHeap) Push(x any) { *h = append(*h, x.(candidate)) }

func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}
