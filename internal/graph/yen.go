package graph

import (
	"container/heap"
)

// KShortest returns up to k loopless (simple) paths from s to t in
// non-decreasing order of weight under w, using Yen's algorithm. The first
// path is the shortest path. Fewer than k paths are returned when the graph
// does not contain k distinct simple paths.
//
// The paper uses path rank 100 (and 200 for Table X): the alternative route
// p* the attacker forces is the 100th-shortest path, so this routine is the
// workload generator for every experiment.
func (r *Router) KShortest(s, t NodeID, k int, w WeightFunc) []Path {
	if k <= 0 {
		return nil
	}
	r.grow()
	r.clearBans()
	first, ok := r.shortest(s, t, w)
	if !ok {
		return nil
	}
	accepted := []Path{first}
	seen := map[string]struct{}{first.Key(): {}}
	var cands candidateHeap

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		r.spurCandidates(prev, accepted, t, w, seen, &cands)
		if cands.Len() == 0 {
			break
		}
		best := heap.Pop(&cands).(Path)
		accepted = append(accepted, best)
	}
	return accepted
}

// BestAlternative returns the minimum-weight s->t path whose edge sequence
// differs from avoid, or ok == false when no such path exists. When the
// overall shortest path already differs from avoid it is returned directly;
// otherwise a single Yen deviation round over avoid finds the best
// second path.
//
// This is the attack algorithms' exclusivity oracle: p* is the exclusive
// shortest path iff BestAlternative(s, t, w, p*) has Length > p*.Length.
func (r *Router) BestAlternative(s, t NodeID, w WeightFunc, avoid Path) (Path, bool) {
	r.grow()
	r.clearBans()
	first, ok := r.shortest(s, t, w)
	if !ok {
		return Path{}, false
	}
	if !first.SameEdges(avoid) {
		return first, true
	}
	seen := map[string]struct{}{avoid.Key(): {}}
	var cands candidateHeap
	r.spurCandidates(avoid, []Path{avoid}, t, w, seen, &cands)
	if cands.Len() == 0 {
		return Path{}, false
	}
	return heap.Pop(&cands).(Path), true
}

// spurCandidates runs the Yen deviation step: for every spur node along
// base, ban the root-path nodes and the next edges of every accepted path
// sharing the root, and search for the best spur path to t. New candidates
// (not in seen) are pushed onto cands and recorded in seen, so repeated
// generation of the same deviation across rounds is suppressed.
func (r *Router) spurCandidates(base Path, accepted []Path, t NodeID, w WeightFunc, seen map[string]struct{}, cands *candidateHeap) {
	rootLen := 0.0
	for i := 0; i < len(base.Edges); i++ {
		spurNode := base.Nodes[i]

		r.clearBans()
		// Ban the next edge of every accepted path that shares this root.
		for _, p := range accepted {
			if i < len(p.Edges) && samePrefix(p, base, i) {
				r.banEdge(p.Edges[i])
			}
		}
		// Ban root nodes (excluding the spur node) to keep paths simple.
		for j := 0; j < i; j++ {
			r.banNode(base.Nodes[j])
		}

		if spur, ok := r.shortest(spurNode, t, w); ok {
			total := concatSpur(base, i, rootLen, spur)
			key := total.Key()
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				heap.Push(cands, total)
			}
		}
		rootLen += w(base.Edges[i])
	}
	r.clearBans()
}

// samePrefix reports whether p and q share their first i edges.
func samePrefix(p, q Path, i int) bool {
	if len(p.Edges) < i || len(q.Edges) < i {
		return false
	}
	for j := 0; j < i; j++ {
		if p.Edges[j] != q.Edges[j] {
			return false
		}
	}
	return true
}

// concatSpur joins base's first i edges (with precomputed weight rootLen)
// to spur, which starts at base.Nodes[i].
func concatSpur(base Path, i int, rootLen float64, spur Path) Path {
	nodes := make([]NodeID, 0, i+len(spur.Nodes))
	nodes = append(nodes, base.Nodes[:i]...)
	nodes = append(nodes, spur.Nodes...)
	edges := make([]EdgeID, 0, i+len(spur.Edges))
	edges = append(edges, base.Edges[:i]...)
	edges = append(edges, spur.Edges...)
	return Path{Nodes: nodes, Edges: edges, Length: rootLen + spur.Length}
}

// candidateHeap orders candidate paths by length, then hop count, then edge
// sequence so results are deterministic across runs.
type candidateHeap []Path

func (h candidateHeap) Len() int { return len(h) }

func (h candidateHeap) Less(i, j int) bool {
	if h[i].Length != h[j].Length {
		return h[i].Length < h[j].Length
	}
	if len(h[i].Edges) != len(h[j].Edges) {
		return len(h[i].Edges) < len(h[j].Edges)
	}
	for k := range h[i].Edges {
		if h[i].Edges[k] != h[j].Edges[k] {
			return h[i].Edges[k] < h[j].Edges[k]
		}
	}
	return false
}

func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *candidateHeap) Push(x any) { *h = append(*h, x.(Path)) }

func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}
