package graph

import (
	"context"
	"math"
	"runtime"
	"sync"
)

// Parallel Brandes betweenness over a frozen snapshot. Source trees are
// independent, so they fan out across workers; what does NOT parallelize
// naively is the float accumulation into the shared score array, because
// float addition is not associative — merging per-worker partial sums
// would make the output depend on the worker count and the scheduler.
//
// Instead, each worker returns its source tree's score updates as an
// ordered contribution list — exactly the (edge, credit) sequence the
// serial dependency pass would apply — and the coordinator replays the
// lists strictly in source index order. Every float lands on the score
// array in the same order as in EdgeBetweennessCtx, so the result is
// bitwise identical to the serial implementation for ANY worker count.
// A bounded claim window keeps the in-flight buffers (and their memory)
// proportional to the worker count even when one source tree is slow.

// brandesContrib is one score update from a single-source dependency
// pass: score[e] += c.
type brandesContrib struct {
	e EdgeID
	c float64
}

// brandesScratch is the per-worker single-source state.
type brandesScratch struct {
	dist    []float64
	sigma   []float64
	delta   []float64
	preds   [][]EdgeID
	order   []NodeID
	settled []bool
	h       heap4
}

func newBrandesScratch(n int) *brandesScratch {
	return &brandesScratch{
		dist:    make([]float64, n),
		sigma:   make([]float64, n),
		delta:   make([]float64, n),
		preds:   make([][]EdgeID, n),
		order:   make([]NodeID, 0, n),
		settled: make([]bool, n),
	}
}

// brandesSource runs one Brandes source tree on the frozen snapshot and
// returns the score contributions in exactly the order the serial
// dependency pass applies them. The float operations mirror
// EdgeBetweennessCtx line by line: same relaxation order (edge insertion
// order per node), same heap order (heapLess), same tie test, same
// credit formula — so replaying the returned list reproduces the serial
// accumulation bit for bit.
func brandesSource(c *Snapshot, s NodeID, sc *brandesScratch) []brandesContrib {
	n := c.n
	for i := 0; i < n; i++ {
		sc.dist[i] = math.Inf(1)
		sc.sigma[i] = 0
		sc.delta[i] = 0
		sc.preds[i] = sc.preds[i][:0]
		sc.settled[i] = false
	}
	sc.order = sc.order[:0]
	sc.h = sc.h[:0]

	sc.dist[s] = 0
	sc.sigma[s] = 1
	sc.h.push(heapItem{dist: 0, node: s})
	disabled := c.disabled

	for len(sc.h) > 0 {
		it := sc.h.pop()
		u := it.node
		if sc.settled[u] {
			continue
		}
		sc.settled[u] = true
		sc.order = append(sc.order, u)
		du := sc.dist[u]
		for i, end := c.fwdOff[u], c.fwdOff[u+1]; i < end; i++ {
			e := EdgeID(c.fwdEdge[i])
			if disabled[e] {
				continue
			}
			v := NodeID(c.fwdTo[i])
			nd := du + c.fwdW[i]
			switch {
			case nd < sc.dist[v]:
				sc.dist[v] = nd
				sc.sigma[v] = sc.sigma[u]
				sc.preds[v] = append(sc.preds[v][:0], e)
				sc.h.push(heapItem{dist: nd, node: v})
			// Exact-tie test on purpose: Brandes counts a path only on an
			// exact distance tie, mirroring EdgeBetweennessCtx bit for bit.
			case nd == sc.dist[v] && !sc.settled[v]:
				sc.sigma[v] += sc.sigma[u]
				sc.preds[v] = append(sc.preds[v], e)
			}
		}
	}

	// Dependency accumulation in reverse settle order; emit instead of
	// writing into a shared score array.
	total := 0
	for _, v := range sc.order {
		total += len(sc.preds[v])
	}
	out := make([]brandesContrib, 0, total)
	for i := len(sc.order) - 1; i >= 0; i-- {
		v := sc.order[i]
		for _, e := range sc.preds[v] {
			u := c.g.arcs[e].From
			cr := sc.sigma[u] / sc.sigma[v] * (1 + sc.delta[v])
			out = append(out, brandesContrib{e: e, c: cr})
			sc.delta[u] += cr
		}
	}
	return out
}

// BetweennessParallel computes the same scores as EdgeBetweennessCtx —
// bitwise identical, for any worker count — on a frozen snapshot, with
// source trees fanned out across workers and their contributions merged
// strictly in source index order (see the package comment above for why
// that ordering is the whole trick). workers <= 0 means GOMAXPROCS. A
// stale snapshot is refreshed first.
//
// Cancellation matches the serial contract: the context is polled per
// source tree, and on cancellation the scores accumulated for the merged
// source prefix are returned, unnormalized, alongside the context error —
// diagnostic only.
func BetweennessParallel(ctx context.Context, snap *Snapshot, opts BetweennessOptions, workers int) ([]float64, error) {
	snap = snap.Refresh()
	n, m := snap.n, snap.m
	score := make([]float64, m)
	if n == 0 || m == 0 {
		return score, nil
	}
	sources := opts.Sources
	if sources == nil {
		sources = make([]NodeID, n)
		for i := range sources {
			sources[i] = NodeID(i)
		}
	}
	nSrc := len(sources)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nSrc {
		workers = nSrc
	}

	if workers <= 1 {
		// Degenerate case: same kernel, applied inline in source order.
		sc := newBrandesScratch(n)
		for _, s := range sources {
			if err := ctx.Err(); err != nil {
				return score, err
			}
			for _, u := range brandesSource(snap, s, sc) {
				score[u.e] += u.c
			}
		}
		normalizeBetweenness(score, n, nSrc, opts)
		return score, nil
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		bufs    = make([][]brandesContrib, nSrc)
		ready   = make([]bool, nSrc)
		claimed = 0 // next source index to hand to a worker
		merged  = 0 // next source index the coordinator will merge
		stopped = 0 // workers that have exited
	)
	// At most window sources may be claimed-but-unmerged, bounding the
	// buffered contribution lists regardless of per-tree skew.
	window := workers * 4

	for wi := 0; wi < workers; wi++ {
		go func() {
			sc := newBrandesScratch(n)
			for {
				mu.Lock()
				for claimed < nSrc && claimed-merged >= window && ctx.Err() == nil {
					cond.Wait()
				}
				if claimed >= nSrc || ctx.Err() != nil {
					stopped++
					cond.Broadcast()
					mu.Unlock()
					return
				}
				i := claimed
				claimed++
				mu.Unlock()

				buf := brandesSource(snap, sources[i], sc)

				mu.Lock()
				bufs[i] = buf
				ready[i] = true
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}

	// Merge on the calling goroutine, strictly in source index order.
	// Workers never abandon a claimed source, so the ready set converges
	// to the contiguous prefix [0, claimed) — a gap at `merged` with all
	// workers stopped means cancellation cut the run short there.
	var err error
	mu.Lock()
	for merged < nSrc {
		for !ready[merged] && stopped < workers {
			cond.Wait()
		}
		if !ready[merged] {
			err = ctx.Err()
			break
		}
		buf := bufs[merged]
		bufs[merged] = nil
		mu.Unlock()
		for _, u := range buf {
			score[u.e] += u.c
		}
		mu.Lock()
		merged++
		cond.Broadcast()
	}
	mu.Unlock()

	if err != nil {
		return score, err
	}
	normalizeBetweenness(score, n, nSrc, opts)
	return score, nil
}

// normalizeBetweenness applies the EdgeBetweennessCtx normalization: the
// sample is scaled up to the full source population, then divided by the
// number of ordered node pairs.
func normalizeBetweenness(score []float64, n, nSources int, opts BetweennessOptions) {
	if !opts.Normalize || n <= 1 {
		return
	}
	scale := float64(n) / float64(nSources)
	norm := scale / (float64(n) * float64(n-1))
	for i := range score {
		score[i] *= norm
	}
}
