package graph

import (
	"math"
	"time"
)

// This file is the frozen-snapshot query layer: an immutable CSR
// (compressed sparse row) image of the graph with materialized edge
// weights, plus ports of every hot search kernel onto it. The live
// representation (slice-of-slices adjacency + WeightFunc closure) costs
// two dependent loads and a dynamic call per edge relaxation; the frozen
// layout replaces them with four sequential array reads. Outputs are
// bit-identical to the live kernels — same relaxation order (per-node
// edge insertion order), same float operations in the same order, and a
// totally-ordered heap so pop order cannot depend on heap shape (see
// heapLess).
//
// Lifecycle: Freeze captures topology and weights at one instant, stamped
// with the graph's generation counter. Adding nodes or edges bumps the
// generation and invalidates the snapshot; the Router transparently
// rebuilds it (same weight function) on the next query. Disabling and
// enabling edges does NOT invalidate anything: the snapshot aliases the
// graph's disabled flags, so attack rounds toggling edges — and Yen spur
// bans, which live in per-router epoch-stamped overlay arrays — work
// against a frozen snapshot with zero rebuilds.

// Snapshot is an immutable flat CSR image of a Graph under one weight
// function. It is safe for any number of concurrent readers (the parallel
// Yen spur workers and Brandes workers share one), as long as no edges are
// concurrently disabled or enabled — the same contract concurrent readers
// of the live Graph already have.
type Snapshot struct {
	g   *Graph
	gen uint64
	wf  WeightFunc

	n int // nodes at freeze time
	m int // edges at freeze time

	// Forward adjacency: slots fwdOff[u]..fwdOff[u+1] hold u's out-edges
	// in edge insertion order (the live relaxation order), with the head
	// node, edge ID, and weight materialized per slot.
	fwdOff  []int32
	fwdTo   []int32
	fwdEdge []int32
	fwdW    []float64

	// Reverse adjacency, same layout over in-edges.
	revOff  []int32
	revFrom []int32
	revEdge []int32
	revW    []float64

	// w is the materialized weight per EdgeID (the same values as the
	// per-slot arrays, indexed by edge for path assembly and prefix sums).
	w []float64

	// disabled aliases the graph's disabled flags at freeze time, so
	// DisableEdge/EnableEdge are visible to frozen kernels immediately.
	// AddEdge may reallocate the underlying array, but it also bumps the
	// generation, which invalidates this snapshot first.
	disabled []bool

	// freezeNS is the wall-clock duration of the Freeze pass, surfaced in
	// registry shard stats next to overlay build/customize timings.
	freezeNS int64
}

// fillCSRSide flattens one direction's adjacency lists into CSR arrays.
// Freeze calls it twice (forward over out-lists with arc heads, reverse
// over in-lists with arc tails); it is the single copy of the build loop
// both Snapshot.Refresh and the registry shard preload previously
// duplicated through Freeze's twin inline loops. Slot order within a node
// is list order — the live kernels' relaxation order — which is what
// keeps frozen outputs bit-identical.
func fillCSRSide(lists [][]EdgeID, w []float64, off, node, edge []int32, slotW []float64, endpoint func(Arc) NodeID, arcs []Arc) {
	pos := 0
	for u := range lists {
		off[u] = int32(pos)
		for _, e := range lists[u] {
			edge[pos] = int32(e)
			node[pos] = int32(endpoint(arcs[e]))
			slotW[pos] = w[e]
			pos++
		}
	}
	off[len(lists)] = int32(pos)
}

// Freeze builds a frozen CSR snapshot of g with the weights of w
// materialized. It is an O(V+E) pass; the attack workloads amortize it
// over thousands of shortest-path queries. The weight function must be
// total over all edge IDs (disabled edges included) and must keep
// returning the same values for as long as the snapshot is used — every
// weight model in this repository is a pure table lookup, which
// satisfies both.
func Freeze(g *Graph, w WeightFunc) *Snapshot {
	start := time.Now() //lint:allow wallclock freeze duration feeds shard stats observability, never results
	n, m := g.NumNodes(), g.NumEdges()
	c := &Snapshot{
		g: g, gen: g.gen, wf: w, n: n, m: m,
		fwdOff:  make([]int32, n+1),
		fwdTo:   make([]int32, m),
		fwdEdge: make([]int32, m),
		fwdW:    make([]float64, m),
		revOff:  make([]int32, n+1),
		revFrom: make([]int32, m),
		revEdge: make([]int32, m),
		revW:    make([]float64, m),
		w:       make([]float64, m),
	}
	for e := 0; e < m; e++ {
		c.w[e] = w(EdgeID(e))
	}
	fillCSRSide(g.out[:n], c.w, c.fwdOff, c.fwdTo, c.fwdEdge, c.fwdW, func(a Arc) NodeID { return a.To }, g.arcs)
	fillCSRSide(g.in[:n], c.w, c.revOff, c.revFrom, c.revEdge, c.revW, func(a Arc) NodeID { return a.From }, g.arcs)
	c.disabled = g.disabled
	c.freezeNS = time.Since(start).Nanoseconds() //lint:allow wallclock freeze duration feeds shard stats observability, never results
	return c
}

// FreezeNanos returns the wall-clock nanoseconds the Freeze pass took —
// observability only (healthz shard stats), never part of any result.
func (c *Snapshot) FreezeNanos() int64 { return c.freezeNS }

// Graph returns the graph the snapshot was frozen from.
func (c *Snapshot) Graph() *Graph { return c.g }

// Valid reports whether the snapshot still matches its graph's topology
// (no nodes or edges were added since Freeze). Disabled-edge churn never
// invalidates a snapshot.
func (c *Snapshot) Valid() bool { return c.gen == c.g.gen }

// NumNodes returns the node count at freeze time.
func (c *Snapshot) NumNodes() int { return c.n }

// NumEdges returns the edge count at freeze time.
func (c *Snapshot) NumEdges() int { return c.m }

// Weight returns the materialized weight of edge e.
func (c *Snapshot) Weight(e EdgeID) float64 { return c.w[e] }

// CSRView exposes a snapshot's flat CSR arrays to sibling packages that
// build derived read-only structures over them (internal/overlay). Every
// slice aliases the snapshot's backing arrays: callers MUST treat them as
// immutable. Disabled aliases the graph's live disabled flags, exactly as
// the frozen kernels see them.
type CSRView struct {
	N, M    int
	FwdOff  []int32
	FwdTo   []int32
	FwdEdge []int32
	FwdW    []float64
	RevOff  []int32
	RevFrom []int32
	RevEdge []int32
	RevW    []float64
	W       []float64

	Disabled []bool
}

// View returns the read-only CSR view of the snapshot.
func (c *Snapshot) View() CSRView {
	return CSRView{
		N: c.n, M: c.m,
		FwdOff: c.fwdOff, FwdTo: c.fwdTo, FwdEdge: c.fwdEdge, FwdW: c.fwdW,
		RevOff: c.revOff, RevFrom: c.revFrom, RevEdge: c.revEdge, RevW: c.revW,
		W:        c.w,
		Disabled: c.disabled,
	}
}

// Refresh returns c when it is still valid, or a fresh snapshot of the
// same graph under the same weight function when topology moved on.
func (c *Snapshot) Refresh() *Snapshot {
	if c.Valid() {
		return c
	}
	return Freeze(c.g, c.wf)
}

// UseSnapshot attaches a frozen snapshot to the router: subsequent
// queries run on the frozen CSR kernels instead of the live adjacency.
// The snapshot must have been frozen from this router's graph under the
// SAME weight function the caller passes to the query methods — with a
// snapshot attached the materialized weights win, so passing a different
// WeightFunc is a programming error the router cannot detect. A stale
// snapshot (topology changed) is rebuilt transparently on the next
// query. UseSnapshot(nil) detaches and restores the live kernels.
func (r *Router) UseSnapshot(c *Snapshot) { r.snap = c }

// Snapshot returns the attached snapshot, nil when none.
func (r *Router) Snapshot() *Snapshot { return r.snap }

// csr returns the snapshot the current query should run on: the attached
// one, rebuilt first if topology moved on, or nil when no snapshot is
// attached (or it belongs to another graph) — in which case the caller
// falls through to the live kernels.
func (r *Router) csr() *Snapshot {
	c := r.snap
	if c == nil || c.g != r.g {
		return nil
	}
	if !c.Valid() {
		c = Freeze(r.g, c.wf)
		r.snap = c
	}
	return c
}

// heapLess is the priority order of every search heap: distance, then
// node ID. The node tie-break makes the order total, so ANY correct heap
// — the live binary one, the frozen 4-ary one — pops the same value
// sequence from the same push sequence, which is what makes frozen and
// live kernels bit-identical on tied graphs (lattices tie constantly).
func heapLess(a, b heapItem) bool {
	if a.dist != b.dist { //lint:allow floateq heap order must be exact: near-ties are distinct priorities, equal bits fall through to the node tie-break
		return a.dist < b.dist
	}
	return a.node < b.node
}

// heap4 is a 4-ary implicit min-heap over heapItem with the same total
// order as the live binary heap. The wider fanout halves tree depth,
// which cuts sift-down comparisons on the pop-heavy Dijkstra workloads;
// children of i sit at 4i+1..4i+4, cache-adjacent.
type heap4 []heapItem

// push and pop move a hole through the tree instead of swapping at every
// level (one write per level, not three). The element order produced is
// identical to textbook sift-up/down — the hole follows exactly the path
// the swaps would have taken.
func (h *heap4) push(it heapItem) {
	*h = append(*h, it)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !heapLess(it, hh[p]) {
			break
		}
		hh[i] = hh[p]
		i = p
	}
	hh[i] = it
}

func (h *heap4) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	*h = old[:last]
	if last == 0 {
		return top
	}
	it := old[last]
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		small := first
		end := first + 4
		if end > last {
			end = last
		}
		for child := first + 1; child < end; child++ {
			if heapLess(old[child], old[small]) {
				small = child
			}
		}
		if !heapLess(old[small], it) {
			break
		}
		old[i] = old[small]
		i = small
	}
	old[i] = it
	return top
}

// shortestCSR is the frozen Dijkstra: the port of shortest onto the CSR
// arrays. Bans and disabled edges are honoured exactly as live; no
// closure is called anywhere in the loop.
func (r *Router) shortestCSR(c *Snapshot, s, t NodeID) (Path, bool) {
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if r.nodeBanned(s) || r.nodeBanned(t) {
		return Path{}, false
	}
	r.cur++
	r.h4 = r.h4[:0]
	r.setDist(s, 0, InvalidEdge)
	r.h4.push(heapItem{dist: 0, node: s})
	disabled := c.disabled

	for len(r.h4) > 0 {
		it := r.h4.pop()
		// Early exit the moment t's distance is frontier-minimal: every
		// remaining entry has dist >= it.dist >= dist[t], and non-negative
		// weights mean no relaxation from such a node can strictly improve
		// any node on t's prev chain — so buildPath(s, t) here is the exact
		// path the reference kernel returns when t itself pops (the tied
		// smaller-ID nodes it still expands cannot change the chain).
		if r.stamp[t] == r.cur && r.dist[t] <= it.dist {
			return r.buildPath(s, t), true
		}
		u := it.node
		if it.dist > r.dist[u] || r.stamp[u] != r.cur {
			continue // stale heap entry
		}
		du := it.dist
		for i, end := c.fwdOff[u], c.fwdOff[u+1]; i < end; i++ {
			e := EdgeID(c.fwdEdge[i])
			if disabled[e] || r.edgeBanned(e) {
				continue
			}
			v := NodeID(c.fwdTo[i])
			if r.nodeBanned(v) {
				continue
			}
			nd := du + c.fwdW[i]
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.h4.push(heapItem{dist: nd, node: v})
			}
		}
	}
	return Path{}, false
}

// shortestAStarCSR is the frozen Yen spur kernel: goal-directed A* under
// a reverse potential, the port of shortestAStar. This is the hottest
// loop in the repository — every Yen spur search across every attack
// round lands here when a snapshot is attached.
func (r *Router) shortestAStarCSR(c *Snapshot, s, t NodeID, pot *Potential, rootLen, cutoff float64) (Path, bool) {
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if r.nodeBanned(s) || r.nodeBanned(t) {
		return Path{}, false
	}
	hs := pot.At(s)
	if math.IsInf(hs, 1) {
		return Path{}, false
	}
	potT := pot.At(t)
	r.cur++
	r.h4 = r.h4[:0]
	r.setDist(s, 0, InvalidEdge)
	r.h4.push(heapItem{dist: hs, node: s})
	disabled := c.disabled

	for len(r.h4) > 0 {
		it := r.h4.pop()
		// Early exit once t's f-value is frontier-minimal. The reverse
		// potential is consistent (exact unbanned distances; bans only
		// remove edges), so every remaining relaxation carries f >= it.dist
		// >= dist[t]+pot(t) and can never strictly improve a node on t's
		// prev chain: the path is bitwise the one the reference kernel
		// returns after grinding through the tied plateau to pop t itself.
		// dist[t]+potT recomputes exactly the float sum t's heap entry was
		// pushed with, so the comparison fires on the same pop where the
		// tie-broken heap would first surface an entry not before t's.
		// The cutoff clause keeps the exit aligned with the live kernel's
		// bound abort: an over-cutoff finish must report "no path", not a
		// path the live kernel would have abandoned one pop earlier.
		if r.stamp[t] == r.cur {
			ft := r.dist[t] + potT
			if ft <= it.dist && rootLen+ft <= cutoff {
				return r.buildPath(s, t), true
			}
		}
		// Bound abort, mirroring shortestAStar: pops are non-decreasing,
		// so past the cutoff no completion can come back under it.
		if rootLen+it.dist > cutoff {
			return Path{}, false
		}
		u := it.node
		if r.stamp[u] != r.cur {
			continue
		}
		gu := r.dist[u]
		if it.dist > gu+pot.At(u) {
			continue // stale heap entry
		}
		for i, end := c.fwdOff[u], c.fwdOff[u+1]; i < end; i++ {
			e := EdgeID(c.fwdEdge[i])
			if disabled[e] || r.edgeBanned(e) {
				continue
			}
			v := NodeID(c.fwdTo[i])
			if r.nodeBanned(v) {
				continue
			}
			hv := pot.At(v)
			if math.IsInf(hv, 1) {
				continue // v cannot reach t even without bans
			}
			nd := gu + c.fwdW[i]
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.h4.push(heapItem{dist: nd + hv, node: v})
			}
		}
	}
	return Path{}, false
}

// astarCSR is the frozen port of ShortestPathAStar (caller-supplied
// heuristic; the heuristic closure is the one call the frozen kernel
// cannot materialize).
func (r *Router) astarCSR(c *Snapshot, s, t NodeID, h Heuristic) (Path, bool) {
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if s == t {
		return Path{Nodes: []NodeID{s}}, true
	}
	r.cur++
	r.h4 = r.h4[:0]
	r.setDist(s, 0, InvalidEdge)
	r.h4.push(heapItem{dist: h(s), node: s})
	disabled := c.disabled

	for len(r.h4) > 0 {
		if r.interrupted() {
			return Path{}, false // cancelled mid-search (see SetContext)
		}
		it := r.h4.pop()
		u := it.node
		if r.stamp[u] != r.cur {
			continue
		}
		gu := r.dist[u]
		if it.dist > gu+h(u)+1e-12 {
			continue // stale entry
		}
		if u == t {
			return r.buildPath(s, t), true
		}
		for i, end := c.fwdOff[u], c.fwdOff[u+1]; i < end; i++ {
			e := EdgeID(c.fwdEdge[i])
			if disabled[e] {
				continue
			}
			v := NodeID(c.fwdTo[i])
			nd := gu + c.fwdW[i]
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.h4.push(heapItem{dist: nd + h(v), node: v})
			}
		}
	}
	return Path{}, false
}

// distancesFromCSR is the frozen port of the DistancesFrom sweep.
func (r *Router) distancesFromCSR(c *Snapshot, s NodeID) []float64 {
	n := r.g.NumNodes()
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	if !r.g.validNode(s) {
		return out
	}
	r.cur++
	r.h4 = r.h4[:0]
	r.setDist(s, 0, InvalidEdge)
	r.h4.push(heapItem{dist: 0, node: s})
	disabled := c.disabled
	for len(r.h4) > 0 {
		if r.interrupted() {
			break // cancelled: unsettled nodes stay +Inf (see SetContext)
		}
		it := r.h4.pop()
		u := it.node
		if it.dist > r.dist[u] || r.stamp[u] != r.cur {
			continue
		}
		out[u] = it.dist
		for i, end := c.fwdOff[u], c.fwdOff[u+1]; i < end; i++ {
			e := EdgeID(c.fwdEdge[i])
			if disabled[e] {
				continue
			}
			v := NodeID(c.fwdTo[i])
			nd := it.dist + c.fwdW[i]
			if r.stamp[v] != r.cur || nd < r.dist[v] {
				r.setDist(v, nd, e)
				r.h4.push(heapItem{dist: nd, node: v})
			}
		}
	}
	return out
}

// reversePotentialCSR is the frozen port of ReversePotential: one full
// reverse Dijkstra over the rev CSR arrays.
func (r *Router) reversePotentialCSR(c *Snapshot, t NodeID) *Potential {
	h := make([]float64, r.g.NumNodes())
	for i := range h {
		h[i] = math.Inf(1)
	}
	pot := &Potential{target: t, h: h}
	if !r.g.validNode(t) {
		return pot
	}
	r.curB++
	r.h4B = r.h4B[:0]
	r.setDistB(t, 0, InvalidEdge)
	r.h4B.push(heapItem{dist: 0, node: t})
	disabled := c.disabled
	for len(r.h4B) > 0 {
		if r.interrupted() {
			break // cancelled: unsettled nodes stay +Inf (see SetContext)
		}
		it := r.h4B.pop()
		u := it.node
		if it.dist > r.distB[u] || r.stampB[u] != r.curB {
			continue
		}
		h[u] = it.dist
		for i, end := c.revOff[u], c.revOff[u+1]; i < end; i++ {
			e := EdgeID(c.revEdge[i])
			if disabled[e] {
				continue
			}
			v := NodeID(c.revFrom[i])
			nd := it.dist + c.revW[i]
			if r.stampB[v] != r.curB || nd < r.distB[v] {
				r.setDistB(v, nd, e)
				r.h4B.push(heapItem{dist: nd, node: v})
			}
		}
	}
	return pot
}

// bidirectionalCSR is the frozen port of ShortestPathBidirectional. The
// settled sets use the router's epoch-stamped arrays instead of the live
// kernel's per-query maps — membership semantics are identical, so
// outputs are too, without the per-query map allocations.
func (r *Router) bidirectionalCSR(c *Snapshot, s, t NodeID) (Path, bool) {
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if s == t {
		return Path{Nodes: []NodeID{s}}, true
	}
	r.cur++
	r.curB++
	fh := r.h4[:0]
	bh := r.h4B[:0]

	r.setDist(s, 0, InvalidEdge)
	fh.push(heapItem{dist: 0, node: s})
	r.setDistB(t, 0, InvalidEdge)
	bh.push(heapItem{dist: 0, node: t})

	best := math.Inf(1)
	var meet NodeID = InvalidNode
	disabled := c.disabled

	topOf := func(h heap4) float64 {
		if len(h) == 0 {
			return math.Inf(1)
		}
		return h[0].dist
	}

	cancelled := false
	for len(fh) > 0 || len(bh) > 0 {
		if r.interrupted() {
			cancelled = true // a found meet may be suboptimal: report no path
			break
		}
		// Termination: no better meeting can exist.
		if topOf(fh)+topOf(bh) >= best {
			break
		}
		// Expand the smaller frontier.
		forward := topOf(fh) <= topOf(bh)
		if forward {
			it := fh.pop()
			u := it.node
			if it.dist > r.dist[u] || r.stamp[u] != r.cur {
				continue
			}
			if r.settledF[u] == r.cur {
				continue
			}
			r.settledF[u] = r.cur
			if r.stampB[u] == r.curB {
				if d := it.dist + r.distB[u]; d < best {
					best = d
					meet = u
				}
			}
			for i, end := c.fwdOff[u], c.fwdOff[u+1]; i < end; i++ {
				e := EdgeID(c.fwdEdge[i])
				if disabled[e] {
					continue
				}
				v := NodeID(c.fwdTo[i])
				nd := it.dist + c.fwdW[i]
				if r.stamp[v] != r.cur || nd < r.dist[v] {
					r.setDist(v, nd, e)
					fh.push(heapItem{dist: nd, node: v})
					if r.stampB[v] == r.curB {
						if d := nd + r.distB[v]; d < best {
							best = d
							meet = v
						}
					}
				}
			}
		} else {
			it := bh.pop()
			u := it.node
			if it.dist > r.distB[u] || r.stampB[u] != r.curB {
				continue
			}
			if r.settledB[u] == r.curB {
				continue
			}
			r.settledB[u] = r.curB
			if r.stamp[u] == r.cur {
				if d := it.dist + r.dist[u]; d < best {
					best = d
					meet = u
				}
			}
			for i, end := c.revOff[u], c.revOff[u+1]; i < end; i++ {
				e := EdgeID(c.revEdge[i])
				if disabled[e] {
					continue
				}
				v := NodeID(c.revFrom[i])
				nd := it.dist + c.revW[i]
				if r.stampB[v] != r.curB || nd < r.distB[v] {
					r.setDistB(v, nd, e)
					bh.push(heapItem{dist: nd, node: v})
					if r.stamp[v] == r.cur {
						if d := nd + r.dist[v]; d < best {
							best = d
							meet = v
						}
					}
				}
			}
		}
	}
	r.h4 = fh
	r.h4B = bh

	if cancelled || meet == InvalidNode {
		return Path{}, false
	}
	// Assemble: forward half via prevEdge, backward half via prevEdgeB.
	forward := r.buildPath(s, meet)
	var tailEdges []EdgeID
	for n := meet; n != t; {
		e := r.prevEdgeB[n]
		tailEdges = append(tailEdges, e)
		n = r.g.arcs[e].To
	}
	nodes := forward.Nodes
	edges := forward.Edges
	for _, e := range tailEdges {
		edges = append(edges, e)
		nodes = append(nodes, r.g.arcs[e].To)
	}
	return Path{Nodes: nodes, Edges: edges, Length: best}, true
}
