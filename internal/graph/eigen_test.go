package graph

import (
	"math"
	"testing"
)

// completeGraph builds a complete directed graph on n nodes (no self loops).
func completeGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.MustAddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

func TestEigenvectorCentralityUniformOnComplete(t *testing.T) {
	g := completeGraph(5)
	for _, dir := range []EigenDirection{EigenIn, EigenOut} {
		x := EigenvectorCentrality(g, dir, EigenOptions{})
		want := 1 / math.Sqrt(5)
		for i, v := range x {
			if math.Abs(v-want) > 1e-6 {
				t.Errorf("dir %d: x[%d] = %v, want %v", dir, i, v, want)
			}
		}
	}
}

func TestEigenvectorCentralityStar(t *testing.T) {
	// Star: spokes 1..4 all point at hub 0. In-centrality of the hub must
	// dominate; out-centrality of spokes must dominate the hub's.
	g := New(5)
	for i := 1; i < 5; i++ {
		g.MustAddEdge(NodeID(i), 0)
	}
	in := EigenvectorCentrality(g, EigenIn, EigenOptions{})
	for i := 1; i < 5; i++ {
		if in[0] <= in[i] {
			t.Errorf("in-centrality hub %v <= spoke %v", in[0], in[i])
		}
	}
	out := EigenvectorCentrality(g, EigenOut, EigenOptions{})
	for i := 1; i < 5; i++ {
		if out[i] <= out[0] {
			t.Errorf("out-centrality spoke %v <= hub %v", out[i], out[0])
		}
	}
}

func TestEigenvectorCentralityNormalized(t *testing.T) {
	g := completeGraph(4)
	x := EigenvectorCentrality(g, EigenIn, EigenOptions{})
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("||x||² = %v, want 1", sum)
	}
	for i, v := range x {
		if v < 0 {
			t.Errorf("x[%d] = %v, want non-negative", i, v)
		}
	}
}

func TestEigenvectorCentralityEmptyAndEdgeless(t *testing.T) {
	if x := EigenvectorCentrality(New(0), EigenIn, EigenOptions{}); len(x) != 0 {
		t.Errorf("empty graph returned %v", x)
	}
	x := EigenvectorCentrality(New(3), EigenIn, EigenOptions{})
	// No edges: only the shift term survives; all nodes equal.
	for i := 1; i < 3; i++ {
		if math.Abs(x[i]-x[0]) > 1e-9 {
			t.Errorf("edgeless graph uneven: %v", x)
		}
	}
}

func TestEdgeEigenScores(t *testing.T) {
	// 0->1->2 chain plus heavy traffic through node 1.
	g := New(4)
	e01 := g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 1)
	scores := EdgeEigenScores(g, EigenOptions{})
	if len(scores) != 3 {
		t.Fatalf("got %d scores, want 3", len(scores))
	}
	for e, s := range scores {
		if s <= 0 {
			t.Errorf("score[%d] = %v, want > 0", e, s)
		}
	}
	g.DisableEdge(e01)
	scores = EdgeEigenScores(g, EigenOptions{})
	if scores[e01] != 0 {
		t.Errorf("disabled edge scored %v, want 0", scores[e01])
	}
}

func TestEigenOptionsDefaults(t *testing.T) {
	var o EigenOptions
	o.fill()
	if o.MaxIterations != 200 || o.Tolerance != 1e-9 || o.Shift != 1e-3 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := EigenOptions{MaxIterations: 5, Tolerance: 0.1, Shift: 0.5}
	o2.fill()
	if o2.MaxIterations != 5 || o2.Tolerance != 0.1 || o2.Shift != 0.5 {
		t.Errorf("explicit options overwritten: %+v", o2)
	}
}
