package graph

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file retains the pre-optimization Yen implementation (goal-blind
// full Dijkstra per spur, no Lawler skip, string-key dedup, sequential) as
// a test-only reference, and property-checks that the optimized engine
// returns the exact same ordered path list — the optimisations must be
// invisible in the output.
//
// The randomized graphs use continuous random weights so no two distinct
// simple paths tie: under ties the k shortest paths are not unique and both
// implementations remain correct while being free to pick different
// representatives (TestKShortestTiedWeightsLengths covers that regime by
// comparing the — still unique — length sequence).

// yenReference is the seed KShortest, verbatim except for naming.
func yenReference(r *Router, s, t NodeID, k int, w WeightFunc) []Path {
	if k <= 0 {
		return nil
	}
	r.grow()
	r.clearBans()
	first, ok := r.shortest(s, t, w)
	if !ok {
		return nil
	}
	accepted := []Path{first}
	seen := map[string]struct{}{first.Key(): {}}
	var cands refCandidateHeap

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		refSpurCandidates(r, prev, accepted, t, w, seen, &cands)
		if cands.Len() == 0 {
			break
		}
		best := heap.Pop(&cands).(Path)
		accepted = append(accepted, best)
	}
	return accepted
}

// refBestAlternative is the seed BestAlternative, verbatim except naming.
func refBestAlternative(r *Router, s, t NodeID, w WeightFunc, avoid Path) (Path, bool) {
	r.grow()
	r.clearBans()
	first, ok := r.shortest(s, t, w)
	if !ok {
		return Path{}, false
	}
	if !first.SameEdges(avoid) {
		return first, true
	}
	seen := map[string]struct{}{avoid.Key(): {}}
	var cands refCandidateHeap
	refSpurCandidates(r, avoid, []Path{avoid}, t, w, seen, &cands)
	if cands.Len() == 0 {
		return Path{}, false
	}
	return heap.Pop(&cands).(Path), true
}

// refSpurCandidates is the seed deviation round: every spur index from 0,
// goal-blind banned Dijkstra, string-key dedup.
func refSpurCandidates(r *Router, base Path, accepted []Path, t NodeID, w WeightFunc, seen map[string]struct{}, cands *refCandidateHeap) {
	rootLen := 0.0
	for i := 0; i < len(base.Edges); i++ {
		spurNode := base.Nodes[i]

		r.clearBans()
		for _, p := range accepted {
			if i < len(p.Edges) && samePrefix(p, base, i) {
				r.banEdge(p.Edges[i])
			}
		}
		for j := 0; j < i; j++ {
			r.banNode(base.Nodes[j])
		}

		if spur, ok := r.shortest(spurNode, t, w); ok {
			total := concatSpur(base, i, rootLen, spur)
			key := total.Key()
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				heap.Push(cands, total)
			}
		}
		rootLen += w(base.Edges[i])
	}
	r.clearBans()
}

type refCandidateHeap []Path

func (h refCandidateHeap) Len() int           { return len(h) }
func (h refCandidateHeap) Less(i, j int) bool { return pathLess(h[i], h[j]) }
func (h refCandidateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refCandidateHeap) Push(x any)        { *h = append(*h, x.(Path)) }
func (h *refCandidateHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// randomTieFreeGraph builds a random directed graph with continuous edge
// weights (no two path sums collide in practice), sometimes without
// guaranteed s->t connectivity and sometimes with disabled edges, so the
// differential test also covers unreachable targets and dead subgraphs.
func randomTieFreeGraph(rng *rand.Rand) (*Graph, WeightFunc) {
	n := 4 + rng.Intn(12)
	g := New(n)
	var weights []float64
	addEdge := func(a, b NodeID) {
		g.MustAddEdge(a, b)
		weights = append(weights, 0.5+10*rng.Float64())
	}
	if rng.Intn(4) > 0 {
		// Usually seed a random chain for base connectivity.
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			addEdge(NodeID(perm[i-1]), NodeID(perm[i]))
		}
	}
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		addEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	// Occasionally disable a few edges: spur searches must respect them.
	for e := 0; e < g.NumEdges(); e++ {
		if rng.Intn(10) == 0 {
			g.DisableEdge(EdgeID(e))
		}
	}
	return g, func(e EdgeID) float64 { return weights[e] }
}

func samePathList(got, want []Path) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d paths, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].SameEdges(want[i]) {
			return fmt.Errorf("path %d: edges %v, want %v", i, got[i].Edges, want[i].Edges)
		}
		if got[i].Length != want[i].Length {
			return fmt.Errorf("path %d: length %v, want %v (bit-identical required)", i, got[i].Length, want[i].Length)
		}
		for j, nd := range want[i].Nodes {
			if got[i].Nodes[j] != nd {
				return fmt.Errorf("path %d: node %d is %d, want %d", i, j, got[i].Nodes[j], nd)
			}
		}
	}
	return nil
}

// TestKShortestMatchesReference is the differential property test: on
// random graphs (including disabled edges and unreachable targets) the
// optimized engine — serial and with the parallel spur fan-out forced on —
// returns the exact path list of the reference implementation.
func TestKShortestMatchesReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, w := randomTieFreeGraph(rng)
		n := g.NumNodes()
		s := NodeID(rng.Intn(n))
		tgt := NodeID(rng.Intn(n))
		k := 1 + rng.Intn(25)

		want := yenReference(NewRouter(g), s, tgt, k, w)

		serial := NewRouter(g)
		serial.SetSpurWorkers(1)
		if err := samePathList(serial.KShortest(s, tgt, k, w), want); err != nil {
			t.Logf("seed %d (serial, s=%d t=%d k=%d): %v", seed, s, tgt, k, err)
			return false
		}

		parallel := NewRouter(g)
		parallel.SetSpurWorkers(3)
		if err := samePathList(parallel.KShortest(s, tgt, k, w), want); err != nil {
			t.Logf("seed %d (parallel, s=%d t=%d k=%d): %v", seed, s, tgt, k, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestBestAlternativeMatchesReference runs the same differential check for
// the exclusivity oracle, avoiding each of the first few shortest paths.
func TestBestAlternativeMatchesReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, w := randomTieFreeGraph(rng)
		n := g.NumNodes()
		s := NodeID(rng.Intn(n))
		tgt := NodeID(rng.Intn(n))

		avoids := yenReference(NewRouter(g), s, tgt, 3, w)
		if len(avoids) == 0 {
			avoids = []Path{{}} // unreachable: both must report !ok
		}
		for _, avoid := range avoids {
			wantPath, wantOK := refBestAlternative(NewRouter(g), s, tgt, w, avoid)
			gotPath, gotOK := NewRouter(g).BestAlternative(s, tgt, w, avoid)
			if gotOK != wantOK {
				t.Logf("seed %d: ok=%v, want %v", seed, gotOK, wantOK)
				return false
			}
			if !wantOK {
				continue
			}
			if !gotPath.SameEdges(wantPath) || gotPath.Length != wantPath.Length {
				t.Logf("seed %d: alternative %v, want %v", seed, gotPath, wantPath)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestKShortestTiedWeightsLengths covers the tie regime the differential
// test deliberately avoids: with massively tied weights the chosen
// representatives may differ, but the sorted length sequence of the k
// shortest loopless paths is unique and must match the reference exactly,
// and every structural invariant must hold.
func TestKShortestTiedWeightsLengths(t *testing.T) {
	g, w := gridGraph(4, 5)
	want := yenReference(NewRouter(g), 0, 19, 60, w)

	for _, workers := range []int{1, 4} {
		r := NewRouter(g)
		r.SetSpurWorkers(workers)
		got := r.KShortest(0, 19, 60, w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d paths, want %d", workers, len(got), len(want))
		}
		seen := pathSet{}
		for i, p := range got {
			if p.Length != want[i].Length {
				t.Errorf("workers=%d: path %d length %v, want %v", workers, i, p.Length, want[i].Length)
			}
			if !p.IsSimple() || p.Source() != 0 || p.Target() != 19 {
				t.Errorf("workers=%d: path %d malformed: %v", workers, i, p)
			}
			if err := p.Validate(g); err != nil {
				t.Errorf("workers=%d: path %d invalid: %v", workers, i, err)
			}
			if !seen.add(p.Edges) {
				t.Errorf("workers=%d: path %d duplicates an earlier path", workers, i)
			}
		}
	}
}

// TestKShortestCachedPotentialAfterDisables checks the admissibility
// argument the oracle caching relies on: a potential computed on the intact
// graph keeps BestAlternativeWithPotential exact after edges are disabled.
func TestKShortestCachedPotentialAfterDisables(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		g, w := randomTieFreeGraph(rng)
		n := g.NumNodes()
		s := NodeID(rng.Intn(n))
		tgt := NodeID(rng.Intn(n))
		r := NewRouter(g)
		pot := r.ReversePotential(tgt, w)

		avoid, ok := r.ShortestPath(s, tgt, w)
		if !ok {
			continue
		}
		// Disable a few random edges after the potential snapshot.
		tx := g.Begin()
		for e := 0; e < g.NumEdges(); e++ {
			if rng.Intn(6) == 0 {
				tx.Disable(EdgeID(e))
			}
		}
		wantPath, wantOK := refBestAlternative(NewRouter(g), s, tgt, w, avoid)
		gotPath, gotOK := r.BestAlternativeWithPotential(s, tgt, w, avoid, pot)
		tx.Rollback()

		if gotOK != wantOK {
			t.Fatalf("trial %d: ok=%v, want %v", trial, gotOK, wantOK)
		}
		if wantOK && (!gotPath.SameEdges(wantPath) || gotPath.Length != wantPath.Length) {
			t.Fatalf("trial %d: alternative %v, want %v", trial, gotPath, wantPath)
		}
	}
}

// TestKShortestWithPotentialMatches checks that a caller-supplied reverse
// potential — the registry's per-hospital cache — is invisible in the
// output: KShortestWithPotential with a precomputed potential returns the
// exact path list of KShortest, on the live kernels and on a frozen
// snapshot, and a nil or wrong-target potential degrades to a plain
// KShortest rather than a wrong answer.
func TestKShortestWithPotentialMatches(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, w := randomTieFreeGraph(rng)
		n := g.NumNodes()
		s := NodeID(rng.Intn(n))
		tgt := NodeID(rng.Intn(n))
		k := 1 + rng.Intn(20)

		want := NewRouter(g).KShortest(s, tgt, k, w)
		pot := NewRouter(g).ReversePotential(tgt, w)

		if err := samePathList(NewRouter(g).KShortestWithPotential(s, tgt, k, w, pot), want); err != nil {
			t.Logf("seed %d (live, s=%d t=%d k=%d): %v", seed, s, tgt, k, err)
			return false
		}

		frozen := NewRouter(g)
		frozen.UseSnapshot(Freeze(g, w))
		if err := samePathList(frozen.KShortestWithPotential(s, tgt, k, w, pot), want); err != nil {
			t.Logf("seed %d (frozen, s=%d t=%d k=%d): %v", seed, s, tgt, k, err)
			return false
		}

		wrong := NewRouter(g).ReversePotential(s, w) // wrong target: must be recomputed
		if err := samePathList(NewRouter(g).KShortestWithPotential(s, tgt, k, w, wrong), want); err != nil {
			t.Logf("seed %d (wrong-target pot): %v", seed, err)
			return false
		}
		if err := samePathList(NewRouter(g).KShortestWithPotential(s, tgt, k, w, nil), want); err != nil {
			t.Logf("seed %d (nil pot): %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
