package graph

import "math"

// ShortestPathBidirectional returns a minimum-weight s->t path like
// ShortestPath, but searches simultaneously forward from s and backward
// from t (along in-edges), settling roughly half the nodes a unidirectional
// search would on metropolitan-scale graphs. Temporary bans are not
// supported here — Yen spur queries stay on the unidirectional search — so
// this is the fast path for plain point-to-point queries. Under a
// cancelled SetContext context the search stops early and reports no
// path; callers must re-check the context before trusting a negative.
func (r *Router) ShortestPathBidirectional(s, t NodeID, w WeightFunc) (Path, bool) {
	r.grow()
	r.growBackward()
	r.clearBans()
	if c := r.csr(); c != nil {
		return r.bidirectionalCSR(c, s, t)
	}
	if !r.g.validNode(s) || !r.g.validNode(t) {
		return Path{}, false
	}
	if s == t {
		return Path{Nodes: []NodeID{s}}, true
	}

	r.cur++
	r.curB++
	fh := r.heap[:0]
	bh := r.heapB[:0]

	r.setDist(s, 0, InvalidEdge)
	fh.push(heapItem{dist: 0, node: s})
	r.setDistB(t, 0, InvalidEdge)
	bh.push(heapItem{dist: 0, node: t})

	best := math.Inf(1)
	var meet NodeID = InvalidNode
	settledF := make(map[NodeID]struct{})
	settledB := make(map[NodeID]struct{})

	topOf := func(h nodeHeap) float64 {
		if len(h) == 0 {
			return math.Inf(1)
		}
		return h[0].dist
	}

	cancelled := false
	for len(fh) > 0 || len(bh) > 0 {
		if r.interrupted() {
			cancelled = true // a found meet may be suboptimal: report no path
			break
		}
		// Termination: no better meeting can exist.
		if topOf(fh)+topOf(bh) >= best {
			break
		}
		// Expand the smaller frontier.
		forward := topOf(fh) <= topOf(bh)
		if forward {
			it := fh.pop()
			u := it.node
			if it.dist > r.dist[u] || r.stamp[u] != r.cur {
				continue
			}
			if _, done := settledF[u]; done {
				continue
			}
			settledF[u] = struct{}{}
			if r.stampB[u] == r.curB {
				if d := it.dist + r.distB[u]; d < best {
					best = d
					meet = u
				}
			}
			for _, e := range r.g.out[u] {
				if r.g.disabled[e] {
					continue
				}
				v := r.g.arcs[e].To
				nd := it.dist + w(e)
				if r.stamp[v] != r.cur || nd < r.dist[v] {
					r.setDist(v, nd, e)
					fh.push(heapItem{dist: nd, node: v})
					if r.stampB[v] == r.curB {
						if d := nd + r.distB[v]; d < best {
							best = d
							meet = v
						}
					}
				}
			}
		} else {
			it := bh.pop()
			u := it.node
			if it.dist > r.distB[u] || r.stampB[u] != r.curB {
				continue
			}
			if _, done := settledB[u]; done {
				continue
			}
			settledB[u] = struct{}{}
			if r.stamp[u] == r.cur {
				if d := it.dist + r.dist[u]; d < best {
					best = d
					meet = u
				}
			}
			for _, e := range r.g.in[u] {
				if r.g.disabled[e] {
					continue
				}
				v := r.g.arcs[e].From
				nd := it.dist + w(e)
				if r.stampB[v] != r.curB || nd < r.distB[v] {
					r.setDistB(v, nd, e)
					bh.push(heapItem{dist: nd, node: v})
					if r.stamp[v] == r.cur {
						if d := nd + r.dist[v]; d < best {
							best = d
							meet = v
						}
					}
				}
			}
		}
	}
	r.heap = fh
	r.heapB = bh

	if cancelled || meet == InvalidNode {
		return Path{}, false
	}
	// Assemble: forward half via prevEdge, backward half via prevEdgeB.
	forward := r.buildPath(s, meet)
	var tailEdges []EdgeID
	for n := meet; n != t; {
		e := r.prevEdgeB[n]
		tailEdges = append(tailEdges, e)
		n = r.g.arcs[e].To
	}
	nodes := forward.Nodes
	edges := forward.Edges
	for _, e := range tailEdges {
		edges = append(edges, e)
		nodes = append(nodes, r.g.arcs[e].To)
	}
	return Path{Nodes: nodes, Edges: edges, Length: best}, true
}

func (r *Router) growBackward() {
	// One allocation per array, matching grow().
	n := r.g.NumNodes()
	if len(r.distB) < n {
		dist := make([]float64, n)
		copy(dist, r.distB)
		r.distB = dist
		prev := make([]EdgeID, n)
		copy(prev, r.prevEdgeB)
		for i := len(r.prevEdgeB); i < n; i++ {
			prev[i] = InvalidEdge
		}
		r.prevEdgeB = prev
		stamp := make([]uint64, n)
		copy(stamp, r.stampB)
		r.stampB = stamp
		settled := make([]uint64, n)
		copy(settled, r.settledB)
		r.settledB = settled
	}
}

func (r *Router) setDistB(n NodeID, d float64, via EdgeID) {
	r.distB[n] = d
	r.prevEdgeB[n] = via
	r.stampB[n] = r.curB
}
