package graph

import "math"

// Potential is a frozen table of exact shortest-path distances from every
// node TO a fixed target, computed by one reverse Dijkstra over the graph's
// enabled edges. It serves as the A* heuristic for every goal-directed
// query against that target.
//
// Admissibility under edge removal: the table is exact on the graph state
// it was computed in, and temporary bans and DisableEdge only *remove*
// edges, so true distances can only grow afterwards — h(v) stays a lower
// bound. It is moreover consistent (h(u) <= w(e) + h(v) holds per enabled
// edge e: u->v by the triangle inequality, and removing edges never breaks
// a per-edge inequality), so A* guided by it never needs to reopen settled
// nodes. The one state change that would invalidate a Potential is
// re-enabling an edge that was disabled at computation time; callers that
// cache a Potential across queries must compute it while every edge they
// might later enable is enabled (in practice: on the intact graph).
//
// A Potential is immutable after creation and safe for concurrent readers.
type Potential struct {
	target NodeID
	h      []float64
}

// Target returns the node the potential measures distances to.
func (p *Potential) Target() NodeID {
	if p == nil {
		return InvalidNode
	}
	return p.target
}

// At returns the exact distance from v to the target at computation time,
// or +Inf when the target was unreachable from v (or v is out of range). A
// nil Potential reports +Inf everywhere.
func (p *Potential) At(v NodeID) float64 {
	if p == nil || v < 0 || int(v) >= len(p.h) {
		return math.Inf(1)
	}
	return p.h[v]
}

// ReversePotential runs one full reverse Dijkstra from t (along in-edges,
// over enabled edges; temporary bans are ignored) and returns the
// distance-to-target table. It reuses the router's backward scratch arrays,
// so the only allocation is the returned table itself. Under a cancelled
// SetContext context the sweep stops early, leaving +Inf for unsettled
// nodes; the Yen loops that consume the potential re-check the context
// before trusting results built from it.
func (r *Router) ReversePotential(t NodeID, w WeightFunc) *Potential {
	r.grow()
	r.growBackward()
	if c := r.csr(); c != nil {
		return r.reversePotentialCSR(c, t)
	}
	h := make([]float64, r.g.NumNodes())
	for i := range h {
		h[i] = math.Inf(1)
	}
	pot := &Potential{target: t, h: h}
	if !r.g.validNode(t) {
		return pot
	}
	r.curB++
	r.heapB = r.heapB[:0]
	r.setDistB(t, 0, InvalidEdge)
	r.heapB.push(heapItem{dist: 0, node: t})
	for len(r.heapB) > 0 {
		if r.interrupted() {
			break // cancelled: unsettled nodes stay +Inf (see SetContext)
		}
		it := r.heapB.pop()
		u := it.node
		if it.dist > r.distB[u] || r.stampB[u] != r.curB {
			continue
		}
		h[u] = it.dist
		for _, e := range r.g.in[u] {
			if r.g.disabled[e] {
				continue
			}
			v := r.g.arcs[e].From
			nd := it.dist + w(e)
			if r.stampB[v] != r.curB || nd < r.distB[v] {
				r.setDistB(v, nd, e)
				r.heapB.push(heapItem{dist: nd, node: v})
			}
		}
	}
	return pot
}
