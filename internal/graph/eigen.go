package graph

import "math"

// EigenDirection selects which adjacency direction eigenvector centrality
// propagates along.
type EigenDirection int

const (
	// EigenIn scores a node by the scores of nodes with edges INTO it
	// (x = Aᵀx): prestige / authority flavor.
	EigenIn EigenDirection = iota + 1
	// EigenOut scores a node by the scores of nodes it points AT
	// (x = Ax): hub flavor.
	EigenOut
)

// EigenOptions configures EigenvectorCentrality.
type EigenOptions struct {
	// MaxIterations bounds the power iteration. Default 200.
	MaxIterations int
	// Tolerance is the L1 convergence threshold. Default 1e-9.
	Tolerance float64
	// Shift is a uniform additive teleport applied each iteration, which
	// keeps the iteration well-defined on reducible/periodic directed
	// graphs (road networks have sources, sinks, and long cycles).
	// Default 1e-3.
	Shift float64
}

func (o *EigenOptions) fill() {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	if o.Shift <= 0 {
		o.Shift = 1e-3
	}
}

// EigenvectorCentrality computes eigenvector centrality scores over enabled
// edges by shifted power iteration, L2-normalized. The returned slice has
// one non-negative entry per node.
//
// GreedyEig (paper §III-A, adapted from PATHATTACK) scores a directed edge
// u→v as out[u]·in[v], the directed analogue of the undirected uᵢ·uⱼ
// eigenscore, and cuts the edge with the highest score-to-cost ratio.
func EigenvectorCentrality(g *Graph, dir EigenDirection, opts EigenOptions) []float64 {
	opts.fill()
	n := g.NumNodes()
	x := make([]float64, n)
	if n == 0 {
		return x
	}
	next := make([]float64, n)
	inv := 1 / math.Sqrt(float64(n))
	for i := range x {
		x[i] = inv
	}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		for i := range next {
			next[i] = opts.Shift * inv
		}
		for e, arc := range g.arcs {
			if g.disabled[e] {
				continue
			}
			if dir == EigenIn {
				next[arc.To] += x[arc.From]
			} else {
				next[arc.From] += x[arc.To]
			}
		}
		norm := 0.0
		for _, v := range next {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 { //lint:allow floateq exact zero test: a sum of squares is zero iff every component is
			return x
		}
		diff := 0.0
		for i := range next {
			next[i] /= norm
			diff += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if diff < opts.Tolerance {
			break
		}
	}
	return x
}

// EdgeEigenScores returns the per-edge eigenscore out[from]·in[to] used by
// GreedyEig. Disabled edges score 0.
func EdgeEigenScores(g *Graph, opts EigenOptions) []float64 {
	in := EigenvectorCentrality(g, EigenIn, opts)
	out := EigenvectorCentrality(g, EigenOut, opts)
	scores := make([]float64, g.NumEdges())
	for e, arc := range g.arcs {
		if g.disabled[e] {
			continue
		}
		scores[e] = out[arc.From] * in[arc.To]
	}
	return scores
}
