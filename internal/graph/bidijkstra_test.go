package graph

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBidirectionalBasic(t *testing.T) {
	g, w := diamond(1, 1, 5, 5)
	r := NewRouter(g)
	p, ok := r.ShortestPathBidirectional(0, 3, w)
	if !ok || p.Length != 2 {
		t.Fatalf("path = %+v, ok = %v, want length 2", p, ok)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.Source() != 0 || p.Target() != 3 {
		t.Fatalf("endpoints %d -> %d", p.Source(), p.Target())
	}
}

func TestBidirectionalTrivialAndUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	w := func(EdgeID) float64 { return 1 }
	r := NewRouter(g)
	p, ok := r.ShortestPathBidirectional(0, 0, w)
	if !ok || p.Hops() != 0 {
		t.Errorf("s==t: %+v, %v", p, ok)
	}
	if _, ok := r.ShortestPathBidirectional(0, 2, w); ok {
		t.Error("unreachable target found")
	}
	if _, ok := r.ShortestPathBidirectional(-1, 2, w); ok {
		t.Error("invalid source accepted")
	}
	// Directed: no backward traversal.
	if _, ok := r.ShortestPathBidirectional(1, 0, w); ok {
		t.Error("traversed edge backwards")
	}
}

func TestBidirectionalRespectsDisabled(t *testing.T) {
	g, w := diamond(1, 1, 5, 5)
	g.DisableEdge(0)
	r := NewRouter(g)
	p, ok := r.ShortestPathBidirectional(0, 3, w)
	if !ok || p.Length != 10 {
		t.Fatalf("path = %+v, want detour length 10", p)
	}
}

func TestBidirectionalMatchesUnidirectionalProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		g, weights := randomGraph(rng, n, 3*n)
		w := func(e EdgeID) float64 { return weights[e] }
		r := NewRouter(g)
		for trial := 0; trial < 5; trial++ {
			s := NodeID(rng.Intn(n))
			d := NodeID(rng.Intn(n))
			uni, okU := r.ShortestPath(s, d, w)
			bi, okB := r.ShortestPathBidirectional(s, d, w)
			if okU != okB {
				t.Logf("seed %d: reachability disagrees (%v vs %v) for %d->%d", seed, okU, okB, s, d)
				return false
			}
			if !okU {
				continue
			}
			if uni.Length != bi.Length {
				t.Logf("seed %d: lengths %v vs %v for %d->%d", seed, uni.Length, bi.Length, s, d)
				return false
			}
			if err := bi.Validate(g); err != nil {
				t.Logf("seed %d: invalid path: %v", seed, err)
				return false
			}
			if bi.Source() != s || bi.Target() != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestBidirectionalInterleavesWithUnidirectional(t *testing.T) {
	// Alternating query styles on one router must not corrupt state.
	g, w := gridGraph(6, 6)
	r := NewRouter(g)
	for i := 0; i < 20; i++ {
		s := NodeID(i % 36)
		d := NodeID((i*5 + 7) % 36)
		uni, okU := r.ShortestPath(s, d, w)
		bi, okB := r.ShortestPathBidirectional(s, d, w)
		if okU != okB || (okU && uni.Length != bi.Length) {
			t.Fatalf("iteration %d: %v/%v vs %v/%v", i, uni.Length, okU, bi.Length, okB)
		}
	}
}

// TestConcurrentRouters verifies the documented concurrency contract: one
// Router per goroutine over a shared immutable graph is race-free (run
// with -race).
func TestConcurrentRouters(t *testing.T) {
	g, w := gridGraph(10, 10)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			r := NewRouter(g)
			for i := 0; i < 50; i++ {
				s := NodeID((i*k + 3) % 100)
				d := NodeID((i + k*13) % 100)
				if _, ok := r.ShortestPath(s, d, w); !ok {
					errs <- "grid query failed"
					return
				}
				if _, ok := r.ShortestPathBidirectional(s, d, w); !ok {
					errs <- "bidirectional grid query failed"
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
