package graph

import (
	"errors"
	"math"
	"testing"
)

func TestAddNodeAndEdge(t *testing.T) {
	g := New(0)
	if got := g.NumNodes(); got != 0 {
		t.Fatalf("NumNodes() = %d, want 0", got)
	}
	a := g.AddNode()
	b := g.AddNode()
	if a == b {
		t.Fatalf("AddNode returned duplicate IDs %d", a)
	}
	e, err := g.AddEdge(a, b)
	if err != nil {
		t.Fatalf("AddEdge(%d, %d): %v", a, b, err)
	}
	if g.From(e) != a || g.To(e) != b {
		t.Errorf("edge endpoints = (%d, %d), want (%d, %d)", g.From(e), g.To(e), a, b)
	}
	if g.NumEdges() != 1 || g.NumEnabledEdges() != 1 {
		t.Errorf("NumEdges, NumEnabledEdges = %d, %d, want 1, 1", g.NumEdges(), g.NumEnabledEdges())
	}
}

func TestAddEdgeRejectsInvalidNodes(t *testing.T) {
	g := New(2)
	tests := []struct {
		name     string
		from, to NodeID
	}{
		{"negative from", -1, 0},
		{"negative to", 0, -1},
		{"from out of range", 2, 0},
		{"to out of range", 0, 99},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddEdge(tt.from, tt.to); err == nil {
				t.Errorf("AddEdge(%d, %d) succeeded, want error", tt.from, tt.to)
			}
		})
	}
}

func TestParallelEdgesAndSelfLoops(t *testing.T) {
	g := New(2)
	e1 := g.MustAddEdge(0, 1)
	e2 := g.MustAddEdge(0, 1)
	loop := g.MustAddEdge(0, 0)
	if e1 == e2 {
		t.Errorf("parallel edges share ID %d", e1)
	}
	if g.From(loop) != 0 || g.To(loop) != 0 {
		t.Errorf("self loop endpoints = %v", g.Arc(loop))
	}
	if got := len(g.OutEdges(0)); got != 3 {
		t.Errorf("OutEdges(0) has %d edges, want 3", got)
	}
}

func TestDisableEnable(t *testing.T) {
	g := New(2)
	e := g.MustAddEdge(0, 1)
	if g.EdgeDisabled(e) {
		t.Fatal("new edge is disabled")
	}
	g.DisableEdge(e)
	if !g.EdgeDisabled(e) {
		t.Fatal("DisableEdge did not disable")
	}
	g.DisableEdge(e) // idempotent
	if g.NumEnabledEdges() != 0 {
		t.Errorf("NumEnabledEdges = %d, want 0", g.NumEnabledEdges())
	}
	g.EnableEdge(e)
	g.EnableEdge(e) // idempotent
	if g.EdgeDisabled(e) || g.NumEnabledEdges() != 1 {
		t.Errorf("enable failed: disabled=%v enabled=%d", g.EdgeDisabled(e), g.NumEnabledEdges())
	}
}

func TestDegreesSkipDisabled(t *testing.T) {
	g := New(3)
	e1 := g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 0)
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("degrees = out %d in %d, want 2, 1", g.OutDegree(0), g.InDegree(0))
	}
	g.DisableEdge(e1)
	if g.OutDegree(0) != 1 {
		t.Errorf("OutDegree(0) after disable = %d, want 1", g.OutDegree(0))
	}
	if g.InDegree(1) != 0 {
		t.Errorf("InDegree(1) after disable = %d, want 0", g.InDegree(1))
	}
}

func TestDisabledEdgesAndReset(t *testing.T) {
	g := New(3)
	e1 := g.MustAddEdge(0, 1)
	e2 := g.MustAddEdge(1, 2)
	if got := g.DisabledEdges(); got != nil {
		t.Fatalf("DisabledEdges() = %v, want nil", got)
	}
	g.DisableEdge(e2)
	g.DisableEdge(e1)
	got := g.DisabledEdges()
	if len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Fatalf("DisabledEdges() = %v, want [%d %d]", got, e1, e2)
	}
	g.ResetDisabled()
	if g.NumEnabledEdges() != 2 {
		t.Errorf("after reset NumEnabledEdges = %d, want 2", g.NumEnabledEdges())
	}
}

func TestTransactionRollback(t *testing.T) {
	g := New(3)
	e1 := g.MustAddEdge(0, 1)
	e2 := g.MustAddEdge(1, 2)
	g.DisableEdge(e1) // disabled outside the transaction

	tx := g.Begin()
	tx.Disable(e2)
	tx.Disable(e1) // already disabled: not recorded
	if got := tx.Disabled(); len(got) != 1 || got[0] != e2 {
		t.Fatalf("tx.Disabled() = %v, want [%d]", got, e2)
	}
	tx.Rollback()
	if g.EdgeDisabled(e2) {
		t.Error("rollback did not re-enable e2")
	}
	if !g.EdgeDisabled(e1) {
		t.Error("rollback re-enabled an edge disabled before the transaction")
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	e := g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.DisableEdge(e)

	c := g.Clone()
	if c.NumNodes() != 3 || c.NumEdges() != 2 || !c.EdgeDisabled(e) {
		t.Fatalf("clone mismatch: nodes=%d edges=%d disabled=%v", c.NumNodes(), c.NumEdges(), c.EdgeDisabled(e))
	}
	// Mutating the clone must not touch the original.
	c.EnableEdge(e)
	c.MustAddEdge(2, 0)
	if !g.EdgeDisabled(e) || g.NumEdges() != 2 {
		t.Error("mutating clone affected original")
	}
}

func TestFindEdge(t *testing.T) {
	g := New(3)
	e := g.MustAddEdge(0, 1)
	if got := g.FindEdge(0, 1); got != e {
		t.Errorf("FindEdge(0,1) = %d, want %d", got, e)
	}
	if got := g.FindEdge(1, 0); got != InvalidEdge {
		t.Errorf("FindEdge(1,0) = %d, want InvalidEdge", got)
	}
	g.DisableEdge(e)
	if got := g.FindEdge(0, 1); got != InvalidEdge {
		t.Errorf("FindEdge on disabled edge = %d, want InvalidEdge", got)
	}
	if got := g.FindEdge(-1, 5); got != InvalidEdge {
		t.Errorf("FindEdge with invalid nodes = %d, want InvalidEdge", got)
	}
}

func TestValidateWeights(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	if err := g.ValidateWeights(func(EdgeID) float64 { return 1 }); err != nil {
		t.Errorf("ValidateWeights(positive) = %v, want nil", err)
	}
	err := g.ValidateWeights(func(EdgeID) float64 { return -1 })
	if err == nil {
		t.Fatal("ValidateWeights(negative) = nil, want error")
	}
	if !errors.Is(err, ErrNegativeWeight) || !errors.Is(err, ErrBadGraph) {
		t.Errorf("negative-weight error = %v, want ErrNegativeWeight wrapping ErrBadGraph", err)
	}
	for name, w := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		err := g.ValidateWeights(func(EdgeID) float64 { return w })
		if !errors.Is(err, ErrBadGraph) {
			t.Errorf("ValidateWeights(%s) = %v, want ErrBadGraph", name, err)
		}
	}
}

func TestGrow(t *testing.T) {
	g := New(2)
	g.Grow(5)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes after Grow(5) = %d, want 5", g.NumNodes())
	}
	g.Grow(3) // shrink is a no-op
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes after Grow(3) = %d, want 5", g.NumNodes())
	}
}
