// Package metrics computes the road-network statistics the paper reports:
// Table I graph summaries (node count, edge count, average node degree), a
// quantitative "latticeness" score (the street-orientation entropy measure
// the paper's city comparison implies), and the Table X path-rank gap (the
// average percentage increase in length from the shortest path to the k-th
// shortest path).
package metrics

import (
	"fmt"
	"math"

	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// GraphSummary is one Table I row.
type GraphSummary struct {
	Name          string
	Nodes         int
	Edges         int
	AvgNodeDegree float64
}

// Summarize computes the Table I row for a network. Average node degree is
// in-degree plus out-degree averaged over nodes, the NetworkX DiGraph
// convention the paper uses. Disabled segments are not counted.
func Summarize(net *roadnet.Network) GraphSummary {
	n := net.NumIntersections()
	e := net.Graph().NumEnabledEdges()
	s := GraphSummary{Name: net.Name(), Nodes: n, Edges: e}
	if n > 0 {
		s.AvgNodeDegree = 2 * float64(e) / float64(n)
	}
	return s
}

// String renders the summary as a Table I style row.
func (s GraphSummary) String() string {
	return fmt.Sprintf("%-15s %7d %8d %9.2f", s.Name, s.Nodes, s.Edges, s.AvgNodeDegree)
}

// OrientationEntropy returns the Shannon entropy (nats) of the distribution
// of street bearings across the given number of bins, weighting each
// segment by its length. Artificial and disabled segments are excluded.
// A perfect rectangular grid concentrates bearings in 4 bins; an organic
// city spreads them nearly uniformly.
func OrientationEntropy(net *roadnet.Network, bins int) float64 {
	if bins <= 0 {
		bins = 36
	}
	g := net.Graph()
	hist := make([]float64, bins)
	total := 0.0
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if g.EdgeDisabled(id) || net.Road(id).Artificial {
			continue
		}
		arc := g.Arc(id)
		b := geo.Bearing(net.Point(arc.From), net.Point(arc.To))
		idx := int(b / 360 * float64(bins))
		if idx >= bins {
			idx = bins - 1
		}
		w := net.Road(id).LengthM
		hist[idx] += w
		total += w
	}
	if total == 0 { //lint:allow floateq exact zero sentinel: a sum of nonnegative lengths is zero iff empty
		return 0
	}
	h := 0.0
	for _, v := range hist {
		if v > 0 {
			p := v / total
			h -= p * math.Log(p)
		}
	}
	return h
}

// Latticeness maps orientation entropy to [0, 1] following Boeing's
// street-network orientation order: 1 for a perfect 4-direction grid, 0
// for uniformly distributed bearings. Uses 36 bins.
func Latticeness(net *roadnet.Network) float64 {
	const bins = 36
	h := OrientationEntropy(net, bins)
	hGrid := math.Log(4)
	hMax := math.Log(bins)
	if h <= hGrid {
		return 1
	}
	x := (h - hGrid) / (hMax - hGrid)
	v := 1 - x*x
	if v < 0 {
		return 0
	}
	return v
}

// RankGapResult reports the Table X statistics for one endpoint set.
type RankGapResult struct {
	// AvgIncreasePct[k] is the average percentage increase of the k-th
	// shortest path's length over the shortest path's, across the sampled
	// endpoint pairs that have at least k simple paths.
	AvgIncreasePct map[int]float64
	// Pairs is the number of endpoint pairs sampled.
	Pairs int
	// Skipped counts pairs dropped because they lacked enough paths or
	// were disconnected.
	Skipped int
}

// Endpoint is an (source, destination) query pair.
type Endpoint struct {
	Source graph.NodeID
	Dest   graph.NodeID
}

// PathRankGap computes Table X: for every endpoint pair, enumerate the
// max(ranks) shortest simple paths under w and record the percentage length
// increase of each requested rank over rank 1. Pairs without enough paths
// are skipped.
func PathRankGap(net *roadnet.Network, pairs []Endpoint, ranks []int, w graph.WeightFunc) RankGapResult {
	maxRank := 0
	for _, k := range ranks {
		if k > maxRank {
			maxRank = k
		}
	}
	res := RankGapResult{AvgIncreasePct: make(map[int]float64, len(ranks)), Pairs: len(pairs)}
	if maxRank < 1 || len(pairs) == 0 {
		return res
	}

	counts := make(map[int]int, len(ranks))
	r := net.Router()
	for _, pair := range pairs {
		paths := r.KShortest(pair.Source, pair.Dest, maxRank, w)
		if len(paths) == 0 || paths[0].Length <= 0 {
			res.Skipped++
			continue
		}
		base := paths[0].Length
		usable := false
		for _, k := range ranks {
			if k <= len(paths) {
				res.AvgIncreasePct[k] += (paths[k-1].Length - base) / base * 100
				counts[k]++
				usable = true
			}
		}
		if !usable {
			res.Skipped++
		}
	}
	for k := range res.AvgIncreasePct {
		if counts[k] > 0 {
			res.AvgIncreasePct[k] /= float64(counts[k])
		}
	}
	return res
}
