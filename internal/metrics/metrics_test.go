package metrics

import (
	"math"
	"strings"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// squareNet builds a unit two-way square: 4 nodes, 8 directed segments.
func squareNet(t *testing.T) *roadnet.Network {
	t.Helper()
	n := roadnet.NewNetwork("square")
	pts := []geo.Point{
		{Lat: 42.000, Lon: -71.000},
		{Lat: 42.000, Lon: -70.999},
		{Lat: 42.001, Lon: -71.000},
		{Lat: 42.001, Lon: -70.999},
	}
	var ids []graph.NodeID
	for _, p := range pts {
		ids = append(ids, n.AddIntersection(p))
	}
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if _, _, err := n.AddTwoWayRoad(ids[pair[0]], ids[pair[1]], roadnet.Road{}); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestSummarize(t *testing.T) {
	n := squareNet(t)
	s := Summarize(n)
	if s.Nodes != 4 || s.Edges != 8 {
		t.Errorf("summary = %+v, want 4 nodes 8 edges", s)
	}
	if s.AvgNodeDegree != 4 {
		t.Errorf("avg degree = %v, want 4", s.AvgNodeDegree)
	}
	n.Graph().DisableEdge(0)
	if got := Summarize(n).Edges; got != 7 {
		t.Errorf("edges after disable = %d, want 7", got)
	}
	empty := Summarize(roadnet.NewNetwork("e"))
	if empty.Nodes != 0 || empty.AvgNodeDegree != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	if !strings.Contains(s.String(), "square") {
		t.Errorf("String = %q", s.String())
	}
}

func TestOrientationEntropyGridVsSpread(t *testing.T) {
	grid := squareNet(t)
	hGrid := OrientationEntropy(grid, 36)
	// A 4-direction grid: entropy at most ln(4) (+binning slack).
	if hGrid > math.Log(4)+0.3 {
		t.Errorf("grid entropy = %v, want <= ~ln4", hGrid)
	}

	// A star of segments in 12 directions has higher entropy.
	star := roadnet.NewNetwork("star")
	center := star.AddIntersection(geo.Point{Lat: 42, Lon: -71})
	for i := 0; i < 12; i++ {
		ang := float64(i) / 12 * 2 * math.Pi
		p := geo.Point{Lat: 42 + 0.001*math.Cos(ang), Lon: -71 + 0.001*math.Sin(ang)}
		id := star.AddIntersection(p)
		if _, err := star.AddRoad(center, id, roadnet.Road{}); err != nil {
			t.Fatal(err)
		}
	}
	hStar := OrientationEntropy(star, 36)
	if hStar <= hGrid {
		t.Errorf("star entropy %v <= grid entropy %v", hStar, hGrid)
	}
}

func TestOrientationEntropyEdgeCases(t *testing.T) {
	if got := OrientationEntropy(roadnet.NewNetwork("e"), 36); got != 0 {
		t.Errorf("empty entropy = %v", got)
	}
	// bins <= 0 falls back to 36 without panicking.
	if got := OrientationEntropy(squareNet(t), 0); got < 0 {
		t.Errorf("entropy = %v", got)
	}
}

func TestLatticenessOrdering(t *testing.T) {
	grid := squareNet(t)
	if l := Latticeness(grid); l < 0.9 {
		t.Errorf("square latticeness = %v, want ~1", l)
	}

	boston, err := citygen.Build(citygen.Boston, 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	chicago, err := citygen.Build(citygen.Chicago, 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb, lc := Latticeness(boston), Latticeness(chicago)
	if lc <= lb {
		t.Errorf("latticeness: Chicago %v <= Boston %v", lc, lb)
	}
	for _, l := range []float64{lb, lc} {
		if l < 0 || l > 1 {
			t.Errorf("latticeness %v out of [0,1]", l)
		}
	}
}

func TestPathRankGap(t *testing.T) {
	// Ladder graph with increasing path lengths: 0->3 direct (1), via 1
	// (2), via 2 (4).
	n := roadnet.NewNetwork("ladder")
	var ids []graph.NodeID
	for i := 0; i < 4; i++ {
		ids = append(ids, n.AddIntersection(geo.Point{Lat: 42 + float64(i)*0.001, Lon: -71}))
	}
	add := func(a, b int, length float64) {
		t.Helper()
		if _, err := n.AddRoad(ids[a], ids[b], roadnet.Road{LengthM: length}); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 3, 100)
	add(0, 1, 100)
	add(1, 3, 100)
	add(0, 2, 200)
	add(2, 3, 200)

	w := n.Weight(roadnet.WeightLength)
	res := PathRankGap(n, []Endpoint{{Source: ids[0], Dest: ids[3]}}, []int{2, 3}, w)
	if res.Pairs != 1 || res.Skipped != 0 {
		t.Fatalf("res = %+v", res)
	}
	if got := res.AvgIncreasePct[2]; math.Abs(got-100) > 1e-9 {
		t.Errorf("rank 2 increase = %v%%, want 100%%", got)
	}
	if got := res.AvgIncreasePct[3]; math.Abs(got-300) > 1e-9 {
		t.Errorf("rank 3 increase = %v%%, want 300%%", got)
	}
}

func TestPathRankGapSkipsThinPairs(t *testing.T) {
	n := roadnet.NewNetwork("thin")
	a := n.AddIntersection(geo.Point{Lat: 42, Lon: -71})
	b := n.AddIntersection(geo.Point{Lat: 42.001, Lon: -71})
	c := n.AddIntersection(geo.Point{Lat: 42.002, Lon: -71})
	if _, err := n.AddRoad(a, b, roadnet.Road{LengthM: 10}); err != nil {
		t.Fatal(err)
	}
	w := n.Weight(roadnet.WeightLength)

	// Only one path exists: rank 5 unavailable -> pair skipped.
	res := PathRankGap(n, []Endpoint{{Source: a, Dest: b}}, []int{5}, w)
	if res.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", res.Skipped)
	}
	// Disconnected pair skipped too.
	res = PathRankGap(n, []Endpoint{{Source: a, Dest: c}}, []int{2}, w)
	if res.Skipped != 1 {
		t.Errorf("disconnected skipped = %d, want 1", res.Skipped)
	}
	// Rank 1 is usable even with a single path.
	res = PathRankGap(n, []Endpoint{{Source: a, Dest: b}}, []int{1}, w)
	if res.Skipped != 0 || res.AvgIncreasePct[1] != 0 {
		t.Errorf("rank-1 result = %+v", res)
	}
}

func TestPathRankGapEmptyInputs(t *testing.T) {
	n := squareNet(t)
	w := n.Weight(roadnet.WeightLength)
	res := PathRankGap(n, nil, []int{2}, w)
	if res.Pairs != 0 {
		t.Errorf("res = %+v", res)
	}
	res = PathRankGap(n, []Endpoint{{0, 3}}, nil, w)
	if len(res.AvgIncreasePct) != 0 {
		t.Errorf("no-rank result = %+v", res)
	}
}

// TestPathRankGapCityOrdering verifies the Table X phenomenon on synthetic
// cities: the organic (Boston-like) network has a larger shortest-to-kth
// path gap than the lattice (Chicago-like) network.
func TestPathRankGapCityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale path enumeration")
	}
	// Scale 0.05 keeps the cities' relative sizes faithful to Table I
	// (Boston ~550 nodes, Chicago ~1450); rank 40 is deep enough for the
	// organic-vs-lattice separation to dominate sampling noise.
	gap := func(c citygen.City) float64 {
		t.Helper()
		net, err := citygen.Build(c, 0.05, 0)
		if err != nil {
			t.Fatal(err)
		}
		w := net.Weight(roadnet.WeightTime)
		hs := net.POIsOfKind(citygen.KindHospital)
		n := net.NumIntersections()
		var pairs []Endpoint
		for i, h := range hs {
			for j := 0; j < 3; j++ {
				src := graph.NodeID(((i*3+j)*7919 + 13) % n)
				pairs = append(pairs, Endpoint{Source: src, Dest: h.Node})
			}
		}
		res := PathRankGap(net, pairs, []int{40}, w)
		return res.AvgIncreasePct[40]
	}
	boston := gap(citygen.Boston)
	chicago := gap(citygen.Chicago)
	if boston <= chicago {
		t.Errorf("rank-40 gap: Boston %.2f%% <= Chicago %.2f%%; Table X ordering violated", boston, chicago)
	}
}
