// Package defense analyzes a road network from the defender's perspective
// and quantifies its exposure to the paper's attacks. The paper's threat
// analysis implies three defender questions:
//
//  1. How many simultaneous blockages does full denial of a trip require?
//     (EdgeDisjointPaths — a pure topology measure.)
//  2. How cheap is the cheapest route-forcing attack against a trip?
//     (AttackCost — runs the strongest attacker, LP-PathCover.)
//  3. Which road segments should be protected (patrolled, monitored,
//     hardened) to drive the attacker's cost up the most?
//     (Harden — iterated min-cut protection.)
//
// These are the building blocks for the mitigation studies the paper lists
// as future work.
package defense

import (
	"errors"
	"fmt"
	"math"

	"altroute/internal/core"
	"altroute/internal/graph"
	"altroute/internal/partition"
	"altroute/internal/roadnet"
)

// ErrBadTrip is returned for invalid endpoint pairs.
var ErrBadTrip = errors.New("defense: invalid trip endpoints")

// EdgeDisjointPaths returns the maximum number of edge-disjoint s->d paths
// over enabled edges: the number of distinct road blockages an attacker
// needs to fully deny the trip (Menger's theorem via unit-capacity
// max-flow).
func EdgeDisjointPaths(g *graph.Graph, s, d graph.NodeID) (int, error) {
	if s == d {
		return 0, fmt.Errorf("%w: source equals destination", ErrBadTrip)
	}
	_, flow, err := partition.MinCutBetween(g, s, d, func(graph.EdgeID) float64 { return 1 })
	if err != nil {
		return 0, fmt.Errorf("defense: %w", err)
	}
	return int(math.Round(flow)), nil
}

// AttackCost returns the cheapest cost at which the strongest evaluated
// attacker (LP-PathCover) can force the rank-th alternative route on the
// trip, under the given weight and cost models. It answers "how exposed is
// this trip"; lower is worse for the defender.
func AttackCost(net *roadnet.Network, s, d graph.NodeID, rank int, wt roadnet.WeightType, ct roadnet.CostType) (float64, error) {
	p, err := core.NewProblem(net, s, d, rank, wt, ct, 0)
	if err != nil {
		return 0, fmt.Errorf("defense: %w", err)
	}
	res, err := core.Run(core.AlgLPPathCover, p, core.Options{})
	if err != nil {
		return 0, fmt.Errorf("defense: %w", err)
	}
	return res.TotalCost, nil
}

// HardeningPlan is the output of Harden.
type HardeningPlan struct {
	// Protect lists the road segments to protect, in recommendation order
	// (earlier segments buy the biggest attacker-cost increase).
	Protect []graph.EdgeID
	// CostBefore is the attacker's full-denial cost with no protection.
	CostBefore float64
	// CostAfter is the attacker's full-denial cost when every recommended
	// segment is unblockable.
	CostAfter float64
	// Disconnectable is false when, after protection, the attacker can no
	// longer disconnect the trip at any finite cost (every s->d min cut
	// contains a protected segment).
	Disconnectable bool
}

// Harden recommends road segments to protect for the trip s->d: it
// repeatedly computes the attacker's minimum-cost denial cut and protects
// its segments (making them unblockable), for up to rounds iterations or
// until the trip cannot be disconnected at all. This greedy interdiction
// defense directly counters the paper's attacker model, whose cuts are
// exactly these min cuts.
func Harden(g *graph.Graph, s, d graph.NodeID, cost graph.WeightFunc, rounds int) (HardeningPlan, error) {
	if rounds <= 0 {
		rounds = 3
	}
	protected := make(map[graph.EdgeID]struct{})
	shielded := func(e graph.EdgeID) float64 {
		if _, ok := protected[e]; ok {
			return math.Inf(1)
		}
		return cost(e)
	}

	plan := HardeningPlan{Disconnectable: true}
	for round := 0; round < rounds; round++ {
		cut, flow, err := partition.MinCutBetween(g, s, d, shielded)
		if err != nil {
			return HardeningPlan{}, fmt.Errorf("defense: %w", err)
		}
		if round == 0 {
			plan.CostBefore = flow
		}
		plan.CostAfter = flow
		if math.IsInf(flow, 1) || len(cut) == 0 {
			plan.Disconnectable = false
			plan.CostAfter = math.Inf(1)
			break
		}
		for _, e := range cut {
			if _, dup := protected[e]; !dup {
				protected[e] = struct{}{}
				plan.Protect = append(plan.Protect, e)
			}
		}
	}
	if plan.Disconnectable {
		// Report the post-protection denial cost.
		_, flow, err := partition.MinCutBetween(g, s, d, shielded)
		if err != nil {
			return HardeningPlan{}, fmt.Errorf("defense: %w", err)
		}
		if math.IsInf(flow, 1) {
			plan.Disconnectable = false
		}
		plan.CostAfter = flow
	}
	return plan, nil
}

// TripExposure summarizes one trip's vulnerability.
type TripExposure struct {
	Source        graph.NodeID
	Dest          graph.NodeID
	DisjointPaths int
	// ForceCost is the cheapest route-forcing attack cost (see
	// AttackCost); NaN when the requested rank is unavailable.
	ForceCost float64
	// DenyCost is the cheapest full-denial (disconnection) cost.
	DenyCost float64
}

// Survey computes exposure for a set of trips under the given models,
// using the paper's path rank for the forcing cost.
func Survey(net *roadnet.Network, trips [][2]graph.NodeID, rank int, wt roadnet.WeightType, ct roadnet.CostType) ([]TripExposure, error) {
	out := make([]TripExposure, 0, len(trips))
	costFn := net.Cost(ct)
	for _, trip := range trips {
		s, d := trip[0], trip[1]
		exp := TripExposure{Source: s, Dest: d, ForceCost: math.NaN()}
		var err error
		exp.DisjointPaths, err = EdgeDisjointPaths(net.Graph(), s, d)
		if err != nil {
			return nil, err
		}
		_, exp.DenyCost, err = partition.MinCutBetween(net.Graph(), s, d, costFn)
		if err != nil {
			return nil, err
		}
		if fc, err := AttackCost(net, s, d, rank, wt, ct); err == nil {
			exp.ForceCost = fc
		}
		out = append(out, exp)
	}
	return out, nil
}
