package defense

import (
	"errors"
	"math"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// diamondNet builds a 4-node network with two disjoint s->d routes plus a
// direct edge: three edge-disjoint paths total.
//
//	0 -> 1 -> 3, 0 -> 2 -> 3, 0 -> 3
func diamondNet(t *testing.T) *roadnet.Network {
	t.Helper()
	n := roadnet.NewNetwork("diamond")
	pts := []geo.Point{
		{Lat: 42.000, Lon: -71.000},
		{Lat: 42.001, Lon: -71.001},
		{Lat: 41.999, Lon: -71.001},
		{Lat: 42.000, Lon: -71.002},
	}
	var ids []graph.NodeID
	for _, p := range pts {
		ids = append(ids, n.AddIntersection(p))
	}
	add := func(a, b int, lanes int) {
		t.Helper()
		if _, err := n.AddRoad(ids[a], ids[b], roadnet.Road{Lanes: lanes}); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 1, 1)
	add(1, 3, 1)
	add(0, 2, 2)
	add(2, 3, 2)
	add(0, 3, 3)
	return n
}

func TestEdgeDisjointPaths(t *testing.T) {
	n := diamondNet(t)
	got, err := EdgeDisjointPaths(n.Graph(), 0, 3)
	if err != nil {
		t.Fatalf("EdgeDisjointPaths: %v", err)
	}
	if got != 3 {
		t.Errorf("disjoint paths = %d, want 3", got)
	}
	// Direction matters: no 3->0 path exists.
	got, err = EdgeDisjointPaths(n.Graph(), 3, 0)
	if err != nil {
		t.Fatalf("reverse: %v", err)
	}
	if got != 0 {
		t.Errorf("reverse disjoint paths = %d, want 0", got)
	}
	if _, err := EdgeDisjointPaths(n.Graph(), 1, 1); !errors.Is(err, ErrBadTrip) {
		t.Error("s == d accepted")
	}
}

func TestAttackCost(t *testing.T) {
	n := diamondNet(t)
	// Force the 2nd shortest path: must cut the cheapest competitor.
	cost, err := AttackCost(n, 0, 3, 2, roadnet.WeightLength, roadnet.CostUniform)
	if err != nil {
		t.Fatalf("AttackCost: %v", err)
	}
	if cost <= 0 || cost > 2 {
		t.Errorf("attack cost = %v, want small positive", cost)
	}
	// Unavailable rank surfaces an error.
	if _, err := AttackCost(n, 0, 3, 50, roadnet.WeightLength, roadnet.CostUniform); err == nil {
		t.Error("impossible rank accepted")
	}
}

func TestHardenRaisesAttackerCost(t *testing.T) {
	n := diamondNet(t)
	cost := n.Cost(roadnet.CostLanes)
	plan, err := Harden(n.Graph(), 0, 3, cost, 1)
	if err != nil {
		t.Fatalf("Harden: %v", err)
	}
	if len(plan.Protect) == 0 {
		t.Fatal("no protection recommended")
	}
	// Full-denial min cut of the diamond under LANES: the three first
	// edges out of node 0 (1+2+3 = 6) or the three into 3 (1+2+3 = 6).
	if plan.CostBefore != 6 {
		t.Errorf("CostBefore = %v, want 6", plan.CostBefore)
	}
	if plan.Disconnectable && plan.CostAfter <= plan.CostBefore {
		t.Errorf("protection did not raise cost: before %v after %v", plan.CostBefore, plan.CostAfter)
	}
}

func TestHardenUntilUndisconnectable(t *testing.T) {
	n := diamondNet(t)
	cost := n.Cost(roadnet.CostUniform)
	plan, err := Harden(n.Graph(), 0, 3, cost, 10)
	if err != nil {
		t.Fatalf("Harden: %v", err)
	}
	// With enough rounds every edge ends protected: the trip becomes
	// undisconnectable.
	if plan.Disconnectable {
		t.Errorf("plan still disconnectable after 10 rounds: %+v", plan)
	}
	if !math.IsInf(plan.CostAfter, 1) {
		t.Errorf("CostAfter = %v, want +Inf", plan.CostAfter)
	}
}

func TestHardenDefaultRounds(t *testing.T) {
	n := diamondNet(t)
	if _, err := Harden(n.Graph(), 0, 3, n.Cost(roadnet.CostUniform), 0); err != nil {
		t.Fatalf("Harden default rounds: %v", err)
	}
}

func TestSurveyOnCity(t *testing.T) {
	net, err := citygen.Build(citygen.Chicago, 0.015, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := net.POIsOfKind(citygen.KindHospital)
	trips := [][2]graph.NodeID{
		{0, h[0].Node},
		{1, h[1].Node},
	}
	exposures, err := Survey(net, trips, 5, roadnet.WeightTime, roadnet.CostLanes)
	if err != nil {
		t.Fatalf("Survey: %v", err)
	}
	if len(exposures) != 2 {
		t.Fatalf("exposures = %d", len(exposures))
	}
	for i, e := range exposures {
		if e.DisjointPaths <= 0 {
			t.Errorf("trip %d: disjoint paths = %d", i, e.DisjointPaths)
		}
		if e.DenyCost <= 0 {
			t.Errorf("trip %d: deny cost = %v", i, e.DenyCost)
		}
		// Note: ForceCost may legitimately exceed DenyCost — denial may
		// cut p* edges, forcing may not — so only sanity-check its sign.
		if !math.IsNaN(e.ForceCost) && e.ForceCost < 0 {
			t.Errorf("trip %d: negative force cost %v", i, e.ForceCost)
		}
	}
}
