package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"altroute/internal/audit"
	"altroute/internal/experiment"
)

// AuditRef is the ledger receipt attached to audited responses: the
// record's ledger position and chain hash. Clients hold it to later fetch
// (and offline-verify) the record's inclusion proof.
type AuditRef struct {
	Seq  uint64 `json:"seq"`
	Hash string `json:"hash"`
}

// auditAttack records one served /v1/attack outcome — success, cache hit,
// or attack failure — in the ledger. It returns (nil, nil) when auditing
// is disabled; an append error poisons the ledger and the caller refuses
// the response, because an unaudited result must not leave the server.
func (s *Server) auditAttack(city string, req *AttackRequest, key attackKey, out *attackOutcome, cached bool, attackErr error) (*AuditRef, error) {
	if s.ledger == nil {
		return nil, nil
	}
	rec := audit.Record{
		Kind:      "attack",
		City:      city,
		Source:    req.Source,
		Dest:      req.Dest,
		Rank:      req.Rank,
		Algorithm: key.alg.String(),
		Weight:    key.wt.String(),
		Cost:      key.ct.String(),
		Budget:    req.Budget,
		Seed:      req.Seed,
	}
	if attackErr != nil {
		rec.FailKind = failureKind(attackErr)
	} else {
		rec.OK = true
		rec.Algorithm = out.alg.String() // the algorithm that actually ran
		rec.Removed = len(out.res.Removed)
		rec.TotalCost = out.res.TotalCost
		rec.Degraded = out.res.Degraded || out.rerouted
		rec.Cached = cached
	}
	receipt, err := s.ledger.Append(rec)
	if err != nil {
		return nil, err
	}
	return &AuditRef{Seq: receipt.Seq, Hash: receipt.Hash}, nil
}

// auditBatchUnit records one freshly computed batch unit. Append errors
// are not surfaced per unit — the sticky ledger failure is checked once
// when the batch finishes, and poisons the guard for later requests.
func (s *Server) auditBatchUnit(batchID, city string, seed int64, rec experiment.Record) {
	if s.ledger == nil {
		return
	}
	_, _ = s.ledger.Append(audit.Record{
		Kind:      "batch-unit",
		City:      city,
		Algorithm: rec.Algorithm,
		Weight:    rec.Weight,
		Cost:      rec.CostType,
		Seed:      seed,
		Batch:     batchID,
		Unit:      rec.Unit,
		OK:        rec.OK,
		Removed:   rec.Edges,
		TotalCost: rec.Cost,
		Degraded:  rec.Degraded,
		FailKind:  rec.FailKind,
	})
}

// handleAuditProof serves GET /v1/audit/{seq}/proof: the offline-
// verifiable inclusion proof for one sealed ledger record. It bypasses
// the drain gate (history must stay verifiable while the server refuses
// new work) but not refuse mode — a broken chain has no trustworthy
// proofs to serve.
func (s *Server) handleAuditProof(w http.ResponseWriter, r *http.Request) {
	if s.auditErr != nil {
		s.writeError(w, http.StatusServiceUnavailable, "audit_chain_broken", s.auditErr)
		return
	}
	if s.ledger == nil {
		s.writeError(w, http.StatusNotFound, "audit_disabled",
			errors.New("server: auditing is not enabled (start with -audit-dir)"))
		return
	}
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("server: audit seq must be an unsigned integer: %w", err))
		return
	}
	proof, err := s.ledger.Proof(seq)
	switch {
	case errors.Is(err, audit.ErrNotFound):
		s.writeError(w, http.StatusNotFound, "unknown_record", err)
	case errors.Is(err, audit.ErrUnsealed):
		// The record exists but its group commit has not run; it will be
		// provable within the flush interval.
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterS))
		s.writeError(w, http.StatusConflict, "unsealed", err)
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, "other", err)
	default:
		writeJSON(w, http.StatusOK, proof)
	}
}
