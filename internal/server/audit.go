package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"altroute/internal/audit"
	"altroute/internal/experiment"
)

// AuditRef is the ledger receipt attached to audited responses: the
// record's ledger position and chain hash. Clients hold it to later fetch
// (and offline-verify) the record's inclusion proof. A Degraded ref has
// neither: the record was shed under the disk-full policy and is covered
// only by the signed audit-gap record written on recovery.
type AuditRef struct {
	Seq      uint64 `json:"seq"`
	Hash     string `json:"hash"`
	Degraded bool   `json:"degraded,omitempty"`
}

// auditAttack records one served /v1/attack outcome — success, cache hit,
// or attack failure — in the ledger. It returns (nil, nil) when auditing
// is disabled; an append error poisons the ledger and the caller refuses
// the response, because an unaudited result must not leave the server.
func (s *Server) auditAttack(city string, req *AttackRequest, key attackKey, out *attackOutcome, cached bool, attackErr error) (*AuditRef, error) {
	if s.ledger == nil {
		return nil, nil
	}
	rec := audit.Record{
		Kind:      "attack",
		City:      city,
		Source:    req.Source,
		Dest:      req.Dest,
		Rank:      req.Rank,
		Algorithm: key.alg.String(),
		Weight:    key.wt.String(),
		Cost:      key.ct.String(),
		Budget:    req.Budget,
		Seed:      req.Seed,
	}
	if attackErr != nil {
		rec.FailKind = failureKind(attackErr)
	} else {
		rec.OK = true
		rec.Algorithm = out.alg.String() // the algorithm that actually ran
		rec.Removed = len(out.res.Removed)
		rec.TotalCost = out.res.TotalCost
		rec.Degraded = out.res.Degraded || out.rerouted
		rec.Cached = cached
	}
	receipt, err := s.ledger.Append(rec)
	if err != nil {
		return nil, err
	}
	if receipt.Degraded {
		return &AuditRef{Degraded: true}, nil
	}
	return &AuditRef{Seq: receipt.Seq, Hash: receipt.Hash}, nil
}

// auditBatchUnit records one freshly computed batch unit. Append errors
// are not surfaced per unit — the sticky ledger failure is checked once
// when the batch finishes, and poisons the guard for later requests.
func (s *Server) auditBatchUnit(batchID, city string, seed int64, rec experiment.Record) {
	if s.ledger == nil {
		return
	}
	_, _ = s.ledger.Append(audit.Record{
		Kind:      "batch-unit",
		City:      city,
		Algorithm: rec.Algorithm,
		Weight:    rec.Weight,
		Cost:      rec.CostType,
		Seed:      seed,
		Batch:     batchID,
		Unit:      rec.Unit,
		OK:        rec.OK,
		Removed:   rec.Edges,
		TotalCost: rec.Cost,
		Degraded:  rec.Degraded,
		FailKind:  rec.FailKind,
	})
}

// handleAuditProof serves GET /v1/audit/{seq}/proof: the offline-
// verifiable inclusion proof for one sealed ledger record. It bypasses
// the drain gate (history must stay verifiable while the server refuses
// new work) but not refuse mode — a broken chain has no trustworthy
// proofs to serve.
func (s *Server) handleAuditProof(w http.ResponseWriter, r *http.Request) {
	if s.auditErr != nil {
		s.writeError(w, http.StatusServiceUnavailable, "audit_chain_broken", s.auditErr)
		return
	}
	if s.ledger == nil {
		s.writeError(w, http.StatusNotFound, "audit_disabled",
			errors.New("server: auditing is not enabled (start with -audit-dir)"))
		return
	}
	seq, err := strconv.ParseUint(r.PathValue("seq"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("server: audit seq must be an unsigned integer: %w", err))
		return
	}
	proof, err := s.ledger.Proof(seq)
	switch {
	case errors.Is(err, audit.ErrNotFound):
		s.writeError(w, http.StatusNotFound, "unknown_record", err)
	case errors.Is(err, audit.ErrCompacted):
		// The record existed and was verified, but its batch was compacted
		// into the checkpoint stub — the proof's leaves are gone for good.
		s.writeError(w, http.StatusGone, "compacted", err)
	case errors.Is(err, audit.ErrUnsealed):
		// The record exists but its group commit has not run; it will be
		// provable within the flush interval.
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterS))
		s.writeError(w, http.StatusConflict, "unsealed", err)
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, "other", err)
	default:
		writeJSON(w, http.StatusOK, proof)
	}
}

// handleWitnessAnchor serves POST /v1/witness/anchor: this server's
// witness store chains the submitted anchor and returns it as stored.
// Equivocation — the same batch submitted with a different hash — is a
// 409 and is deliberately loud: it is the detection a witness exists
// for, not a retryable conflict.
func (s *Server) handleWitnessAnchor(w http.ResponseWriter, r *http.Request) {
	if s.witness == nil {
		s.writeError(w, http.StatusNotFound, "witness_disabled",
			errors.New("server: this instance is not a witness (start with -witness-file)"))
		return
	}
	var a audit.Anchor
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("server: decoding anchor: %w", err))
		return
	}
	if a.SealHash == "" || a.Root == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			errors.New("server: anchor needs seal_hash and root"))
		return
	}
	stored, err := s.witness.Anchor(a)
	switch {
	case errors.Is(err, audit.ErrWitnessEquivocation):
		s.writeError(w, http.StatusConflict, "equivocation", err)
	case err != nil:
		s.writeError(w, http.StatusServiceUnavailable, "witness_failed", err)
	default:
		writeJSON(w, http.StatusOK, stored)
	}
}
