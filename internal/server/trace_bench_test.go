package server

import (
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The trace benchmarks drive the full serving stack (routing, admission,
// coalescing, caches) with a sustained request stream and report serving
// metrics per sub-benchmark:
//
//	rps       requests per second across all workers
//	p50_ms    median request latency
//	p99_ms    99th-percentile request latency
//	hit_rate  result-cache hit fraction (0 when the cache is disabled)
//
// Two traces × two cache modes bound the win and the cost:
//
//	MixedHotCold/cache vs /nocache   → the speedup a hot working set buys
//	PureCold/cache vs /nocache       → the overhead the cache charges misses
//
// Suggested BENCH run: go run ./cmd/bench -pkg ./internal/server \
// -bench BenchmarkTrace -benchtime 3000x

// traceDim is the benchmark city: a traceDim×traceDim grid (fully
// connected, every source/dest pair valid, one hospital POI).
const traceDim = 24

// hotSetSize is how many distinct requests make up the hot working set of
// the mixed trace.
const hotSetSize = 16

// traceOffsets are the source→dest displacements the trace draws from:
// medium-distance pairs (Manhattan distance 4–8 on the grid). Grids have
// combinatorial shortest-path multiplicity, so far pairs make the attack
// phase explode (cutting every better route between opposite corners
// takes tens of seconds); nearby-but-not-adjacent pairs keep a cold
// attack in the hundreds-of-microseconds-to-milliseconds range a real
// city query occupies.
var traceOffsets = []int64{
	2*traceDim + 3, 3*traceDim + 1, 1*traceDim + 4, 4*traceDim + 2,
	2*traceDim + 5, 3*traceDim + 4, 5*traceDim + 1, 1*traceDim + 6,
}

// maxTraceOffset bounds traceOffsets; sources are clamped below
// n-maxTraceOffset so no pair wraps past the last node (a wrapped pair
// lands ~20 rows away and its attack cost explodes).
const maxTraceOffset = 5*traceDim + 1

// traceRequest returns the i-th request of a trace in which hotPer10 of
// every 10 requests replay the hot set and the rest are cold: a
// (source, dest, seed) never seen before, so the result cache can never
// serve it. Pairs are unique for the first n*len(traceOffsets) cold
// requests (~4600); seeds are unique unconditionally.
func traceRequest(i int64, hotPer10 int, hot []AttackRequest) AttackRequest {
	if int(i%10) < hotPer10 {
		return hot[int(i)%len(hot)]
	}
	const span = int64(traceDim*traceDim - maxTraceOffset - 1)
	src := i % span
	dst := src + traceOffsets[(i/span)%int64(len(traceOffsets))]
	return AttackRequest{
		Source:    src,
		Dest:      dst,
		Rank:      4,
		Seed:      1_000_000 + i,
		Algorithm: "GreedyPathCover",
		TimeoutMS: 60_000,
	}
}

func hotSet() []AttackRequest {
	const span = int64(traceDim*traceDim - maxTraceOffset - 1)
	hot := make([]AttackRequest, hotSetSize)
	for i := range hot {
		src := (int64(i)*37 + 50) % span
		hot[i] = AttackRequest{
			Source:    src,
			Dest:      src + traceOffsets[i%len(traceOffsets)],
			Rank:      4,
			Seed:      int64(100 + i),
			Algorithm: "GreedyPathCover",
			TimeoutMS: 60_000,
		}
	}
	return hot
}

// benchTrace runs b.N requests of the trace through GOMAXPROCS concurrent
// workers and reports rps / p50_ms / p99_ms / hit_rate. mutate, when
// non-nil, adjusts the server config (the audit benchmarks use it).
func benchTrace(b *testing.B, cacheBytes int64, hotPer10 int, mutate func(*Config)) {
	cfg := Config{Net: gridNetwork(b, traceDim), CacheBytes: cacheBytes}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	if s.Ledger() != nil {
		defer s.Ledger().Close()
	}
	hot := hotSet()

	workers := runtime.GOMAXPROCS(0)
	lats := make([][]time.Duration, workers)
	var next atomic.Int64
	var failed atomic.Int64

	b.ResetTimer()
	start := time.Now() //lint:allow wallclock benchmark measures real latency
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				req := traceRequest(i, hotPer10, hot)
				t0 := time.Now() //lint:allow wallclock benchmark measures real latency
				rec, _, _ := postAttack(b, s, req)
				lats[w] = append(lats[w], time.Since(t0)) //lint:allow wallclock benchmark measures real latency
				if rec.Code != http.StatusOK {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:allow wallclock benchmark measures real latency
	b.StopTimer()

	if n := failed.Load(); n > 0 {
		b.Fatalf("%d of %d trace requests failed", n, b.N)
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx]) / float64(time.Millisecond)
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "rps")
	b.ReportMetric(pct(0.50), "p50_ms")
	b.ReportMetric(pct(0.99), "p99_ms")
	st := s.results.Stats()
	if total := st.Hits + st.Misses; total > 0 {
		b.ReportMetric(float64(st.Hits)/float64(total), "hit_rate")
	} else {
		b.ReportMetric(0, "hit_rate")
	}
}

// BenchmarkTraceMixedHotCold is the headline serving benchmark: 90% of
// the trace replays a 16-request hot set, 10% is never-seen-before cold
// traffic — the regime the result cache and coalescer are built for.
func BenchmarkTraceMixedHotCold(b *testing.B) {
	b.Run("cache", func(b *testing.B) { benchTrace(b, 64<<20, 9, nil) })
	b.Run("nocache", func(b *testing.B) { benchTrace(b, -1, 9, nil) })
}

// BenchmarkTracePureCold is the overhead guard: every request is unique,
// so the cache never hits and its bookkeeping (key build, Get miss, Add
// with eviction) is pure cost. cache-mode p99 must stay within noise of
// nocache.
func BenchmarkTracePureCold(b *testing.B) {
	b.Run("cache", func(b *testing.B) { benchTrace(b, 64<<20, 0, nil) })
	b.Run("nocache", func(b *testing.B) { benchTrace(b, -1, 0, nil) })
}

// BenchmarkTraceAudit is the ledger's acceptance benchmark on the mixed
// hot/cold trace: "none" is the no-ledger baseline, "group" the Merkle
// group-commit ledger (one fsync per batch), "synceach" the per-record
// fsync it replaces. The claim under test: group-commit p99 stays within
// a few percent of no-ledger, while synceach pays a disk round-trip per
// request.
func BenchmarkTraceAudit(b *testing.B) {
	b.Run("none", func(b *testing.B) { benchTrace(b, 64<<20, 9, nil) })
	b.Run("group", func(b *testing.B) {
		benchTrace(b, 64<<20, 9, func(c *Config) { c.AuditDir = b.TempDir() })
	})
	b.Run("synceach", func(b *testing.B) {
		benchTrace(b, 64<<20, 9, func(c *Config) {
			c.AuditDir = b.TempDir()
			c.AuditSyncEachRecord = true
		})
	})
}
