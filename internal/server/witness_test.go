package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"altroute/internal/audit"
	"altroute/internal/faultinject"
)

// waitForServer polls cond until it holds or the test times out — for the
// ledger supervisor's background work (anchoring, compaction).
func waitForServer(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:allow wallclock test polling deadline
	for !cond() {
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatal("timed out waiting for condition")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAuditShedDegradedReceiptSurfaced fills the disk under the shed
// policy mid-serve: the response still succeeds but carries a Degraded
// audit ref with no ledger position, readyz reports "degraded" while
// staying ready (200), healthz counts the shed, and the first append
// after recovery writes the gap record and clears the flag.
func TestAuditShedDegradedReceiptSurfaced(t *testing.T) {
	inj := faultinject.New(1).Arm(faultinject.PointAuditFull, faultinject.Rule{OnHit: 2})
	s := auditedServer(t, t.TempDir(), func(c *Config) {
		c.AuditOnDiskFull = audit.DiskFullShed
		c.Injector = inj
	})
	defer s.Ledger().Close()

	if w, resp, _ := postAttack(t, s, gridAttack()); w.Code != http.StatusOK || resp.Audit.Degraded {
		t.Fatalf("attack 1: %d, audit %+v", w.Code, resp.Audit)
	}
	w, resp, _ := postAttack(t, s, gridAttack())
	if w.Code != http.StatusOK {
		t.Fatalf("shed attack must still serve: %d %s", w.Code, w.Body.String())
	}
	if resp.Audit == nil || !resp.Audit.Degraded || resp.Audit.Hash != "" || resp.Audit.Seq != 0 {
		t.Fatalf("shed audit ref = %+v, want degraded with no position", resp.Audit)
	}

	var ready readyzResponse
	if w := do(t, s, http.MethodGet, "/readyz", nil, &ready); w.Code != http.StatusOK || ready.Audit != "degraded" {
		t.Fatalf("readyz mid-shed = %d audit %q, want ready but degraded", w.Code, ready.Audit)
	}
	var health healthzResponse
	if w := do(t, s, http.MethodGet, "/healthz", nil, &health); w.Code != http.StatusOK || health.Audit == nil ||
		!health.Audit.Degraded || health.Audit.ShedRecords != 1 {
		t.Fatalf("healthz mid-shed audit = %+v", health.Audit)
	}

	// Disk recovered: the next served result audits normally, behind the
	// signed gap record, and the degraded flag clears.
	req := gridAttack()
	req.Seed = 99
	if w, resp, _ := postAttack(t, s, req); w.Code != http.StatusOK || resp.Audit.Degraded || resp.Audit.Seq != 2 {
		t.Fatalf("post-recovery attack: %d audit %+v, want seq 2 behind the gap record", w.Code, resp.Audit)
	}
	if gap, ok := s.Ledger().Record(1); !ok || gap.Kind != "audit-gap" || gap.Shed != 1 {
		t.Fatalf("record 1 = %+v, %v, want the audit-gap record", gap, ok)
	}
	if w := do(t, s, http.MethodGet, "/readyz", nil, &ready); w.Code != http.StatusOK || ready.Audit != "ok" {
		t.Fatalf("readyz after recovery = %d audit %q", w.Code, ready.Audit)
	}
}

// TestAuditProofCompactedGoneAndHealthzSegments rotates the ledger under
// real traffic, compacts, and pins the operator-facing contract: proofs in
// the compacted range answer 410 Gone, live proofs keep serving, and
// healthz reports the segment and compaction bounds.
func TestAuditProofCompactedGoneAndHealthzSegments(t *testing.T) {
	s := auditedServer(t, t.TempDir(), func(c *Config) {
		c.AuditFlushRecords = 2
		c.AuditRotateBytes = 1
	})
	defer s.Ledger().Close()
	for i := 0; i < 8; i++ {
		req := gridAttack()
		req.Seed = int64(i)
		if w, _, _ := postAttack(t, s, req); w.Code != http.StatusOK {
			t.Fatalf("attack %d failed", i)
		}
	}
	// Seal any tail the background supervisor's kicks left pending — the
	// exact batch boundaries depend on supervisor timing, but after a
	// flush every record is sealed and (with RotateBytes 1) rotated.
	if err := s.Ledger().Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := s.Ledger().Compact(1); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	var errResp ErrorResponse
	if w := do(t, s, http.MethodGet, "/v1/audit/0/proof", nil, &errResp); w.Code != http.StatusGone || errResp.Kind != "compacted" {
		t.Fatalf("compacted proof: %d kind %q, want 410 compacted", w.Code, errResp.Kind)
	}
	var proof audit.Proof
	if w := do(t, s, http.MethodGet, "/v1/audit/7/proof", nil, &proof); w.Code != http.StatusOK {
		t.Fatalf("live proof: %d %s", w.Code, w.Body.String())
	}
	if err := audit.VerifyProof(proof); err != nil {
		t.Fatalf("VerifyProof: %v", err)
	}

	var health healthzResponse
	if w := do(t, s, http.MethodGet, "/healthz", nil, &health); w.Code != http.StatusOK || health.Audit == nil {
		t.Fatalf("healthz: %d", w.Code)
	}
	st := health.Audit
	if st.Segments != 1 || st.CompactedSegments == 0 || st.CompactedRecords == 0 || st.Rotations < 2 {
		t.Fatalf("healthz segment stats = %+v", st)
	}
}

// TestWitnessAnchorEndpoint drives POST /v1/witness/anchor on a witness
// instance: anchors chain and are idempotent, equivocation is a loud 409,
// malformed submissions are 400, non-witness instances explain with 404,
// and healthz summarizes the store.
func TestWitnessAnchorEndpoint(t *testing.T) {
	wfile := filepath.Join(t.TempDir(), "witness.jsonl")
	s := newTestServer(t, func(c *Config) { c.WitnessFile = wfile })
	defer s.Witness().Close()

	sub := audit.Anchor{Batch: 1, Records: 2, SealHash: "aa", Root: "bb"}
	var stored audit.Anchor
	if w := do(t, s, http.MethodPost, "/v1/witness/anchor", sub, &stored); w.Code != http.StatusOK {
		t.Fatalf("anchor: %d %s", w.Code, w.Body.String())
	}
	if stored.Index != 0 || stored.Hash == "" || stored.SealHash != "aa" {
		t.Fatalf("stored anchor = %+v", stored)
	}
	// Idempotent re-anchor returns the original.
	var again audit.Anchor
	if w := do(t, s, http.MethodPost, "/v1/witness/anchor", sub, &again); w.Code != http.StatusOK || again.Hash != stored.Hash {
		t.Fatalf("re-anchor: %d %+v", w.Code, again)
	}
	// The same batch with a different hash is equivocation.
	forked := sub
	forked.SealHash = "cc"
	var errResp ErrorResponse
	if w := do(t, s, http.MethodPost, "/v1/witness/anchor", forked, &errResp); w.Code != http.StatusConflict || errResp.Kind != "equivocation" {
		t.Fatalf("equivocation: %d kind %q", w.Code, errResp.Kind)
	}
	if w := do(t, s, http.MethodPost, "/v1/witness/anchor", audit.Anchor{Batch: 2}, &errResp); w.Code != http.StatusBadRequest {
		t.Fatalf("empty anchor: %d", w.Code)
	}

	var health healthzResponse
	if w := do(t, s, http.MethodGet, "/healthz", nil, &health); w.Code != http.StatusOK || health.Witness == nil {
		t.Fatalf("healthz: %d witness %+v", w.Code, health.Witness)
	}
	if health.Witness.Anchors != 1 || health.Witness.LatestBatch != 1 || health.Witness.Head != stored.Hash {
		t.Fatalf("healthz witness = %+v", health.Witness)
	}

	// An instance started without -witness-file is not a witness.
	plain := newTestServer(t, nil)
	if w := do(t, plain, http.MethodPost, "/v1/witness/anchor", sub, &errResp); w.Code != http.StatusNotFound || errResp.Kind != "witness_disabled" {
		t.Fatalf("non-witness: %d kind %q", w.Code, errResp.Kind)
	}
}

// TestHTTPWitnessAnchorsAcrossInstances wires two servers together the way
// production would: one instance is the witness, the other's ledger
// anchors to it over real HTTP. Anchors land on the witness, the ledger's
// healthz reports the anchor age, and the offline oracle cross-checks the
// ledger directory against the witness file.
func TestHTTPWitnessAnchorsAcrossInstances(t *testing.T) {
	wfile := filepath.Join(t.TempDir(), "witness.jsonl")
	wsrv := newTestServer(t, func(c *Config) { c.WitnessFile = wfile })
	ts := httptest.NewServer(wsrv)
	defer ts.Close()
	defer wsrv.Witness().Close()

	dir := t.TempDir()
	s := auditedServer(t, dir, func(c *Config) {
		c.AuditFlushRecords = 2
		c.AuditRotateBytes = 1
		c.AuditWitness = &audit.HTTPWitness{URL: ts.URL + "/v1/witness/anchor"}
		c.AuditAnchorEvery = 1
	})
	for i := 0; i < 4; i++ {
		req := gridAttack()
		req.Seed = int64(i)
		if w, _, _ := postAttack(t, s, req); w.Code != http.StatusOK {
			t.Fatalf("attack %d failed", i)
		}
	}
	// Anchoring rides the background supervisor, which coalesces kicks and
	// anchors only the newest seal — wait for an anchor covering the last
	// batch, then check both sides' health views.
	waitForServer(t, func() bool {
		a := wsrv.Witness().Anchors()
		return len(a) > 0 && a[len(a)-1].Batch >= 1
	})
	// The ledger records its side of the anchor after the witness stores
	// it — poll that too before reading healthz.
	waitForServer(t, func() bool { return s.Ledger().Stats().LastAnchorBatch >= 1 })
	var health healthzResponse
	if w := do(t, s, http.MethodGet, "/healthz", nil, &health); w.Code != http.StatusOK || health.Audit == nil {
		t.Fatalf("ledger healthz: %d", w.Code)
	}
	if !health.Audit.Anchored || health.Audit.LastAnchorBatch < 1 {
		t.Fatalf("ledger healthz anchor stats = %+v", health.Audit)
	}
	if w := do(t, wsrv, http.MethodGet, "/healthz", nil, &health); w.Code != http.StatusOK || health.Witness == nil || health.Witness.Anchors == 0 {
		t.Fatalf("witness healthz = %+v", health.Witness)
	}

	if err := s.Ledger().Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, wrep, err := audit.VerifyDirWitness(dir, wfile)
	if err != nil {
		t.Fatalf("VerifyDirWitness: %v", err)
	}
	if wrep.Checked == 0 {
		t.Fatalf("witness report = %+v, want checked anchors", wrep)
	}
}
