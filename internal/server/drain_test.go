package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"altroute/internal/faultinject"
)

func gridBatch() BatchRequest {
	return BatchRequest{
		ID:                 "drainbatch",
		Rank:               4,
		Seed:               5,
		SourcesPerHospital: 2,
		TimeoutMS:          60_000,
	}
}

func postBatch(t testing.TB, s *Server, req BatchRequest) (int, BatchResponse) {
	t.Helper()
	var raw json.RawMessage
	w := do(t, s, http.MethodPost, "/v1/batch", req, &raw)
	var resp BatchResponse
	if w.Code == http.StatusOK || w.Code == http.StatusServiceUnavailable {
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("decode batch response %q: %v", raw, err)
		}
	}
	return w.Code, resp
}

// normalizeTable re-decodes a table JSON document and zeroes the wall-clock
// avg_runtime_s fields, the only legitimately nondeterministic columns, so
// interrupted-and-resumed tables can be compared bit-for-bit against an
// uninterrupted reference.
func normalizeTable(t testing.TB, raw json.RawMessage) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decode table: %v", err)
	}
	cells, _ := doc["cells"].([]any)
	for _, c := range cells {
		if cell, ok := c.(map[string]any); ok {
			cell["avg_runtime_s"] = 0.0
		}
	}
	return doc
}

func TestBatchRunsToCompletion(t *testing.T) {
	s := newTestServer(t, nil)
	code, resp := postBatch(t, s, gridBatch())
	if code != http.StatusOK {
		t.Fatalf("batch = %d, want 200", code)
	}
	if resp.Interrupted || resp.Resumable {
		t.Fatalf("clean batch flagged interrupted/resumable: %+v", resp)
	}
	doc := normalizeTable(t, resp.Table)
	if cells, _ := doc["cells"].([]any); len(cells) != 12 {
		t.Fatalf("batch table has %d cells, want 12 (4 algorithms x 3 cost types)", len(doc))
	}
}

func TestBatchValidation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.CheckpointDir = t.TempDir() })
	cases := []struct {
		name string
		mut  func(*BatchRequest)
	}{
		{"rank zero", func(r *BatchRequest) { r.Rank = 0 }},
		{"bad algorithm", func(r *BatchRequest) { r.Algorithms = []string{"Simplex2000"} }},
		{"bad cost type", func(r *BatchRequest) { r.CostTypes = []string{"vibes"} }},
		{"bad weight", func(r *BatchRequest) { r.Weight = "vibes" }},
		{"path traversal id", func(r *BatchRequest) { r.ID = "../../etc/passwd" }},
		{"overlong id", func(r *BatchRequest) { r.ID = strings.Repeat("a", 65) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := gridBatch()
			tc.mut(&req)
			if code, _ := postBatch(t, s, req); code != http.StatusBadRequest {
				t.Fatalf("batch = %d, want 400", code)
			}
		})
	}
}

func TestBatchCheckpointMismatchConflicts(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) { c.CheckpointDir = dir })
	if code, _ := postBatch(t, s, gridBatch()); code != http.StatusOK {
		t.Fatal("seed batch failed")
	}
	// Same id, different seed: the journal must refuse to mix parameters.
	req := gridBatch()
	req.Seed = 99
	code, _ := postBatch(t, s, req)
	if code != http.StatusConflict {
		t.Fatalf("mismatched resume = %d, want 409", code)
	}
}

// TestDrainKillAndResume is the service-level kill-and-resume invariant
// (the ISSUE's acceptance test): SIGTERM-equivalent drain mid-batch leaves
// a valid journal with no torn tail, and re-submitting the batch to a new
// server produces a table bit-identical (runtimes zeroed) to a run that was
// never interrupted.
func TestDrainKillAndResume(t *testing.T) {
	// Reference: the uninterrupted table, with an unarmed injector counting
	// how many attack rounds the whole batch takes.
	refIn := faultinject.New(1)
	ref := newTestServer(t, func(c *Config) { c.Injector = refIn })
	code, refResp := postBatch(t, ref, gridBatch())
	if code != http.StatusOK {
		t.Fatalf("reference batch = %d, want 200", code)
	}
	want := normalizeTable(t, refResp.Table)
	totalRounds := refIn.Hits(faultinject.PointAttackStall)
	if totalRounds < 4 {
		t.Fatalf("reference batch took %d rounds; too few to interrupt meaningfully", totalRounds)
	}

	// Interrupted run: stall the pipeline mid-batch (half the reference
	// round count — deterministic, since the unit schedule is), then drain
	// while it hangs. The stalled unit is cancelled and NOT journaled;
	// completed units are.
	dir := t.TempDir()
	stallIn := faultinject.New(1).Arm(faultinject.PointAttackStall,
		faultinject.Rule{OnHit: totalRounds / 2})
	victim := newTestServer(t, func(c *Config) {
		c.CheckpointDir = dir
		c.Injector = stallIn
	})
	type batchResult struct {
		code int
		resp BatchResponse
	}
	done := make(chan batchResult, 1)
	go func() {
		code, resp := postBatch(t, victim, gridBatch())
		done <- batchResult{code, resp}
	}()
	// The batch is wedged at the stall point; drain must cancel it at unit
	// granularity and flush the journal.
	waitFor(t, func() bool { return stallIn.Hits(faultinject.PointAttackStall) >= totalRounds/2 })
	victim.BeginDrain()
	var res batchResult
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drained batch never returned")
	}
	if res.code != http.StatusServiceUnavailable {
		t.Fatalf("drained batch = %d, want 503", res.code)
	}
	if !res.resp.Interrupted || !res.resp.Resumable {
		t.Fatalf("drained batch response = %+v, want interrupted+resumable", res.resp)
	}
	if res.resp.Checkpoint != "drainbatch.jsonl" {
		t.Fatalf("checkpoint name = %q", res.resp.Checkpoint)
	}
	if err := victim.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain after batch returned: %v", err)
	}

	// The journal is valid line-delimited JSON with no torn tail, and at
	// least one completed unit was persisted before the stall.
	path := filepath.Join(dir, "drainbatch.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("journal line %d is torn or invalid: %q: %v", lines+1, sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan journal: %v", err)
	}
	if lines < 2 { // header + at least one record
		t.Fatalf("journal has %d lines, want header plus at least one record", lines)
	}

	// Resume on a fresh server over the same checkpoint dir: journaled
	// units replay, the remainder computes, and the merged table is
	// bit-identical to the uninterrupted reference.
	resumed := newTestServer(t, func(c *Config) { c.CheckpointDir = dir })
	code, resResp := postBatch(t, resumed, gridBatch())
	if code != http.StatusOK {
		t.Fatalf("resumed batch = %d, want 200", code)
	}
	if resResp.Interrupted {
		t.Fatalf("resumed batch still interrupted: %+v", resResp)
	}
	got := normalizeTable(t, resResp.Table)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed table differs from uninterrupted reference:\n got: %v\nwant: %v", got, want)
	}
}

func TestBatchDuplicateIDConflicts(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.New(1).Arm(faultinject.PointAttackStall, faultinject.Rule{OnHit: 1})
	s := newTestServer(t, func(c *Config) {
		c.CheckpointDir = dir
		c.Injector = in
	})
	done := make(chan int, 1)
	go func() {
		code, _ := postBatch(t, s, gridBatch())
		done <- code
	}()
	waitFor(t, func() bool { return in.Hits(faultinject.PointAttackStall) >= 1 })

	// The same id while the first submission is live: 409, not a second
	// writer interleaving into the journal.
	if code, _ := postBatch(t, s, gridBatch()); code != http.StatusConflict {
		t.Fatalf("duplicate live batch = %d, want 409", code)
	}

	s.BeginDrain()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled batch never returned")
	}
}
