package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"altroute/internal/core"
	"altroute/internal/faultinject"
	"altroute/internal/graph"
	"altroute/internal/registry"
	"altroute/internal/roadnet"
)

// attackKey identifies one attack computation for coalescing and caching.
// It embeds the shard generation at request time: a SetRoad mutation bumps
// the generation, so post-mutation requests form new keys and old cache
// entries become unreachable (they age out of the LRU) instead of serving
// stale cuts.
type attackKey struct {
	city   string
	gen    uint64
	source int64
	dest   int64
	rank   int
	alg    core.Algorithm
	wt     roadnet.WeightType
	ct     roadnet.CostType
	budget float64
	seed   int64
}

// pathsetKey identifies one Yen path-set computation: the k shortest
// simple paths between two nodes under one weight type at one generation.
// Attack requests that differ only in algorithm, cost type, budget, or
// seed share the same p* path set — the single most expensive read-only
// sub-computation.
type pathsetKey struct {
	city   string
	gen    uint64
	source int64
	dest   int64
	k      int
	wt     roadnet.WeightType
}

// attackOutcome is the shared result of one coalesced attack computation:
// everything waiters need to render their responses.
type attackOutcome struct {
	res core.Result
	// alg is the algorithm that actually ran; requested differs when the
	// LP breaker rerouted to greedy.
	alg       core.Algorithm
	requested core.Algorithm
	rerouted  bool
}

// attackBytes estimates the resident cost of a cached outcome.
func attackBytes(out attackOutcome) int64 {
	return 160 + int64(8*len(out.res.Removed)) + int64(len(out.res.DegradedReason))
}

// pathsBytes estimates the resident cost of a cached Yen path set.
func pathsBytes(paths []graph.Path) int64 {
	n := int64(64)
	for _, p := range paths {
		n += 48 + int64(8*(len(p.Edges)+len(p.Nodes)))
	}
	return n
}

// shardFor resolves a request's city to its shard. The empty name means
// the default city, preserving the single-city API.
func (s *Server) shardFor(city string) (*registry.Shard, error) {
	shard, ok := s.reg.Get(city)
	if !ok {
		return nil, fmt.Errorf("server: unknown city %q (serving: %v)", city, s.reg.Names())
	}
	return shard, nil
}

// computeAttack is the coalesced cold path: admission, breaker, p* from
// the shard's frozen snapshot (or the path-set cache), then the attack
// algorithm on a generation-stamped pooled clone. It runs once per key on
// its own goroutine regardless of how many requests coalesced onto it;
// ctx derives from the server's drain context plus this computation's
// timeout, never from any single waiter.
func (s *Server) computeAttack(ctx context.Context, shard *registry.Shard, key attackKey, timeoutMS int64) (attackOutcome, error) {
	var out attackOutcome
	ctx, cancel := context.WithTimeoutCause(ctx, s.timeout(timeoutMS), core.ErrTimeout)
	defer cancel()
	ctx = faultinject.With(ctx, s.cfg.Injector)

	// Admission is charged once per computation, not per coalesced waiter:
	// ten identical requests cost the service one unit budget.
	net := shard.Net()
	work := EstimateWork(key.rank, net.NumIntersections(), net.Graph().NumEdges())
	units := estimateUnits(work, s.cfg.UnitWork)
	if err := s.adm.Acquire(ctx, units); err != nil {
		// Tagged so waiters can tell "died waiting for admission" (503,
		// back off) from "died attacking" (504).
		return out, fmt.Errorf("%w: %w", errAdmission, err)
	}
	defer s.adm.Release(units)
	if faultinject.Fires(ctx, faultinject.PointServerPanic) {
		panic(fmt.Sprintf("injected panic at %s", faultinject.PointServerPanic))
	}

	// Circuit breaker: LP-PathCover reroutes to GreedyPathCover while the
	// LP is considered broken. Decided once per computation, so a
	// coalesced burst counts as one breaker sample.
	alg := key.alg
	out.alg, out.requested = alg, alg
	ranLP := false
	if alg == core.AlgLPPathCover {
		if _, allowed := s.brk.Allow(); allowed {
			ranLP = true
		} else {
			alg = core.AlgGreedyPathCover
			out.alg, out.rerouted = alg, true
		}
	}
	attackErr := fmt.Errorf("%w: computation did not complete", core.ErrPanic)
	if ranLP {
		defer func() { s.brk.Record(attackErr) }()
	}

	// The p* phase and the attack must see the same generation: a SetRoad
	// between them would pair old-weight paths with a new-weight clone.
	// Mutations are rare, so on a mismatch we simply retry at the new
	// generation (the loop re-checks ctx each pass).
	var res core.Result
	var err error
	for {
		gen := shard.Generation()
		var paths []graph.Path
		paths, err = s.pstarPaths(ctx, shard, gen, key)
		if err != nil {
			attackErr = err
			return out, err
		}
		clone, cloneGen := shard.AcquireClone()
		if cloneGen != gen {
			shard.ReleaseClone(clone, cloneGen)
			if cerr := ctx.Err(); cerr != nil {
				attackErr = ctxSentinel(ctx)
				return out, attackErr
			}
			continue
		}
		res, err = s.runAttack(ctx, shard, clone, alg, key, paths)
		shard.ReleaseClone(clone, cloneGen)
		attackErr = err
		if err != nil {
			return out, err
		}
		out.res = res

		// Cache only clean successes: degraded and rerouted results encode
		// transient state (timeouts, breaker) that must not be replayed.
		if !out.rerouted && !res.Degraded {
			if s.testHookBeforeCache != nil {
				s.testHookBeforeCache()
			}
			// A computation that raced a SetRoad must not be cached under
			// the pre-mutation key — its waiters still get the result, but
			// the next request re-computes at the new generation.
			if shard.Generation() == key.gen && gen == key.gen {
				s.results.Add(key, out, attackBytes(out))
			}
		}
		return out, nil
	}
}

// pstarPaths returns the key's Yen path set, from the path-set cache when
// the same (s, d, k, weight) pair was computed at this generation — the
// common case for batch grids and repeated attacks — and otherwise from
// one KShortest run on the shard's shared frozen snapshot, guided by the
// preloaded reverse potential when d is a hospital. No clone is consumed:
// requests that die here (rank unavailable, cancelled) never touch the
// clone pool.
func (s *Server) pstarPaths(ctx context.Context, shard *registry.Shard, gen uint64, key attackKey) ([]graph.Path, error) {
	pk := pathsetKey{city: key.city, gen: gen, source: key.source, dest: key.dest, k: key.rank, wt: key.wt}
	paths, ok := s.pathsets.Get(pk)
	if !ok {
		r := shard.AcquireRouter()
		defer shard.ReleaseRouter(r)
		pot := shard.Potential(ctx, key.wt, graph.NodeID(key.dest))
		r.SetContext(ctx)
		r.UseSnapshot(shard.Snapshot(key.wt))
		paths = r.KShortestWithPotential(graph.NodeID(key.source), graph.NodeID(key.dest), key.rank,
			shard.Net().Weight(key.wt), pot)
		if err := ctx.Err(); err != nil {
			// A cancelled KShortest returns a truncated list; it must be
			// neither cached nor mistaken for "rank unavailable".
			return nil, ctxSentinel(ctx)
		}
		if shard.Generation() == gen {
			s.pathsets.Add(pk, paths, pathsBytes(paths))
		}
	}
	if len(paths) < key.rank {
		return nil, fmt.Errorf("%w: only %d simple paths between %d and %d, want rank %d",
			core.ErrRankUnavailable, len(paths), key.source, key.dest, key.rank)
	}
	return paths, nil
}

// runAttack executes the chosen algorithm on a private clone. The clone
// carries its own frozen snapshot (kept across pool recycles); the reverse
// potential is the shard's preloaded table, valid on the clone because
// clone and shard share node IDs and weights at equal generations.
func (s *Server) runAttack(ctx context.Context, shard *registry.Shard, clone *roadnet.Network, alg core.Algorithm, key attackKey, paths []graph.Path) (core.Result, error) {
	p := core.Problem{
		G:         clone.Graph(),
		Source:    graph.NodeID(key.source),
		Dest:      graph.NodeID(key.dest),
		PStar:     paths[key.rank-1],
		Weight:    clone.Weight(key.wt),
		Cost:      clone.Cost(key.ct),
		Budget:    key.budget,
		Snapshot:  clone.Snapshot(key.wt),
		Potential: shard.Potential(ctx, key.wt, graph.NodeID(key.dest)),
	}
	return core.RunCtx(ctx, alg, p, core.Options{Seed: key.seed})
}

// writeAttack renders an outcome. Breaker state is read at render time
// (it is response metadata, not part of the computed result).
func (s *Server) writeAttack(w http.ResponseWriter, city string, out attackOutcome, cached, coalesced bool, ref *AuditRef) {
	resp := AttackResponse{
		Audit:           ref,
		City:            city,
		Algorithm:       out.alg.String(),
		Removed:         edgeIDs(out.res.Removed),
		TotalCost:       out.res.TotalCost,
		Rounds:          out.res.Rounds,
		ConstraintPaths: out.res.ConstraintPaths,
		RuntimeMS:       float64(out.res.Runtime) / float64(time.Millisecond),
		Degraded:        out.res.Degraded,
		DegradedReason:  out.res.DegradedReason,
		Breaker:         s.brk.State().String(),
		Cached:          cached,
		Coalesced:       coalesced,
	}
	if out.rerouted {
		resp.Requested = out.requested.String()
		resp.Degraded = true
		resp.DegradedReason = joinReasons("LP circuit breaker open; GreedyPathCover substituted", out.res.DegradedReason)
	}
	writeJSON(w, http.StatusOK, resp)
}

// errAdmission tags admission failures crossing the coalescer, so the
// handler can route them to writeAdmissionError.
var errAdmission = errors.New("server: admission failed")

// waiterGrace is added to each waiter's deadline beyond the computation's
// own: the computation deadline is authoritative (it yields the typed
// timeout/admission error), and the waiter deadline is only a backstop
// against a wedged computation. Without the grace the two deadlines race
// and the waiter can report a bare context error instead.
const waiterGrace = 500 * time.Millisecond

// mapComputeErr lifts raw context errors a detached waiter reports into
// the typed sentinels the error writer understands.
func mapComputeErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, core.ErrTimeout):
		return fmt.Errorf("%w: %w", core.ErrTimeout, err)
	case errors.Is(err, context.Canceled) && !errors.Is(err, core.ErrCancelled):
		return fmt.Errorf("%w: %w", core.ErrCancelled, err)
	default:
		return err
	}
}
