// Package server exposes the attack pipeline as a long-running HTTP/JSON
// service. Robustness is the design center, layered on the PR 2
// cancellation substrate (core.RunCtx):
//
//   - a bounded admission queue with per-request deadlines propagated into
//     the pipeline — when the queue is full the request is rejected with
//     Retry-After instead of piling up goroutines;
//   - load shedding by cheap cost estimation (estimated Yen work from the
//     requested path rank and the graph size) under a configurable
//     concurrency budget;
//   - a circuit breaker around LP-PathCover that trips on consecutive
//     ErrTimeout/ErrPanic outcomes and reroutes traffic to GreedyPathCover
//     (surfaced as Degraded results) while half-open probes test recovery;
//   - per-request panic isolation reusing the core.ErrPanic sentinel, so
//     one poisoned graph query costs one 500 response, never the process;
//   - graceful drain: stop admitting, cancel in-flight batches at unit
//     granularity so their JSONL checkpoints are flushed and resumable,
//     then return.
//
// Every attack runs on a pooled clone of the configured network, because
// the attack algorithms disable edges transactionally and must not share a
// graph across requests. Clones returned to the pool are reset, so even a
// panic that unwound mid-transaction cannot leak disabled edges into the
// next request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"altroute/internal/audit"
	"altroute/internal/core"
	"altroute/internal/experiment"
	"altroute/internal/faultinject"
	"altroute/internal/graph"
	"altroute/internal/registry"
	"altroute/internal/roadnet"
)

// Config configures a Server. Net is required; every other field has a
// default noted on it.
type Config struct {
	// Net is the street network served as the single (default) city. The
	// server validates its weights and costs at construction
	// (graph.ErrBadGraph on garbage). Ignored when Registry is set.
	Net *roadnet.Network
	// Registry, when non-nil, serves multiple preloaded cities: requests
	// route by their "city" field, with the registry's default shard
	// answering requests that name none. Exactly one of Net and Registry
	// must be set.
	Registry *registry.Registry
	// CacheBytes bounds the generation-keyed result cache (and the Yen
	// path-set cache, at a quarter of this budget). Default 64 MiB;
	// negative disables caching — every request takes the cold path.
	CacheBytes int64
	// Capacity is the concurrency budget in admission units (one unit ≈
	// UnitWork edge relaxations). Default 4 × GOMAXPROCS.
	Capacity int
	// MaxQueue bounds the admission wait queue; requests beyond it are
	// rejected with 503 + Retry-After. Default 32.
	MaxQueue int
	// MaxRequestUnits sheds any single request whose estimated cost
	// exceeds it. Default Capacity (a request may fill the whole budget).
	MaxRequestUnits int
	// UnitWork is the estimated edge relaxations per admission unit.
	// Default 2e6.
	UnitWork float64
	// DefaultTimeout is applied when a request carries no timeout_ms.
	// Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-supplied deadlines. Default 5m.
	MaxTimeout time.Duration
	// RetryAfterS is the Retry-After hint on 503 responses. Default 1.
	RetryAfterS int
	// Breaker tunes the LP-PathCover circuit breaker.
	Breaker BreakerConfig
	// CheckpointDir, when non-empty, enables batch checkpoint journals:
	// a /v1/batch request with an id journals to CheckpointDir/<id>.jsonl
	// and resumes from it after a drain or crash.
	CheckpointDir string
	// Scale is recorded in batch checkpoint headers so a journal written
	// at one network scale cannot be replayed at another. Default 1.
	Scale float64
	// AuditDir, when non-empty, enables the tamper-evident attack-audit
	// ledger: every served /v1/attack result and every freshly computed
	// /v1/batch unit is hash-chained into AuditDir/ledger.jsonl, and
	// GET /v1/audit/{seq}/proof serves offline-verifiable inclusion
	// proofs. A ledger whose chain fails verification at startup puts the
	// server in refuse mode: health endpoints explain, work is rejected.
	AuditDir string
	// AuditFlushEvery and AuditFlushRecords tune the ledger's group
	// commit (defaults 100ms / 64 records); AuditSyncEachRecord switches
	// to the per-record-fsync baseline.
	AuditFlushEvery     time.Duration
	AuditFlushRecords   int
	AuditSyncEachRecord bool
	// AuditRotateBytes and AuditCompactKeep bound the ledger for
	// unbounded uptime: the active file rotates into an immutable sealed
	// segment at the first seal boundary past AuditRotateBytes, and when
	// more than AuditCompactKeep segments exist the oldest compact into
	// a Merkle-checkpoint stub. Zero disables each (single-file ledger /
	// no compaction).
	AuditRotateBytes int64
	AuditCompactKeep int
	// AuditOnDiskFull picks the ENOSPC policy: fail closed (default) or
	// shed records and serve degraded (see audit.DiskFullPolicy).
	AuditOnDiskFull audit.DiskFullPolicy
	// AuditWitness, when non-nil, receives periodic anchors of the
	// ledger's latest seal so tail rollback is detectable offline;
	// AuditAnchorEvery sets the anchor cadence in seal batches.
	AuditWitness     audit.Witness
	AuditAnchorEvery int
	// WitnessFile, when non-empty, makes THIS server a witness for other
	// instances: POST /v1/witness/anchor chains submitted anchors into
	// the append-only file.
	WitnessFile string
	// Injector, when non-nil, is attached to every request context for
	// chaos testing.
	Injector *faultinject.Injector

	clock func() time.Time // test hook for the breaker cooldown
}

func (c *Config) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 32
	}
	if c.MaxRequestUnits <= 0 {
		c.MaxRequestUnits = c.Capacity
	}
	if c.UnitWork <= 0 {
		c.UnitWork = 2e6
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfterS <= 0 {
		c.RetryAfterS = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // explicit opt-out: zero-capacity caches never store
	}
}

// gate tracks in-flight requests and flips to draining atomically, so
// drain can wait for a quiesced server without racing new admissions.
type gate struct {
	mu       sync.Mutex
	draining bool
	n        int
	idle     chan struct{}
}

func newGate() *gate { return &gate{idle: make(chan struct{})} }

// enter registers a request; false means the server is draining.
func (g *gate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

// exit deregisters a request.
func (g *gate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	g.maybeIdle()
}

// drain stops admissions and returns a channel closed once no requests
// remain in flight. Idempotent.
func (g *gate) drain() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	g.maybeIdle()
	return g.idle
}

func (g *gate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// maybeIdle closes idle when draining and quiesced. Callers hold g.mu.
func (g *gate) maybeIdle() {
	if g.draining && g.n <= 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
}

// Server is the attack service. Create one with New; it implements
// http.Handler.
type Server struct {
	cfg  Config
	adm  *admission
	brk  *Breaker
	gate *gate
	mux  *http.ServeMux
	reg  *registry.Registry

	// results caches full attack outcomes and pathsets caches Yen path
	// sets, both keyed by shard generation; flight coalesces concurrent
	// identical cold-path computations into one execution.
	results  *registry.Cache[attackKey, attackOutcome]
	pathsets *registry.Cache[pathsetKey, []graph.Path]
	flight   *registry.Group[attackKey, attackOutcome]

	// testHookBeforeCache, when set, runs after a computation finishes and
	// before its generation re-check — the window a SetRoad can race into.
	testHookBeforeCache func()

	// drainCtx is cancelled (with ErrDraining) when drain begins; batch
	// runs and coalesced computations derive their cancellation from it so
	// they checkpoint and stop at unit granularity.
	drainCtx  context.Context
	stopDrain context.CancelCauseFunc

	batchMu sync.Mutex
	batches map[string]bool // active checkpoint ids, to serialize journals

	// ledger is the tamper-evident audit ledger (nil when disabled).
	// auditErr is set instead when the ledger's chain failed verification
	// at startup: the server constructs — so health endpoints can explain
	// — but refuses all attack work until the operator intervenes.
	ledger   *audit.Ledger
	auditErr error
	// witness is this server's own witness store (nil unless WitnessFile
	// is set), served at POST /v1/witness/anchor for OTHER instances.
	witness *audit.FileWitness
}

// New validates cfg and returns a ready Server. The network's weight and
// cost functions are checked edge-by-edge up front: a server must never
// trust a loaded graph, and a NaN that slips into Dijkstra poisons every
// result silently.
func New(cfg Config) (*Server, error) {
	if cfg.Net == nil && cfg.Registry == nil {
		return nil, errors.New("server: Config.Net or Config.Registry is required")
	}
	cfg.fill()
	reg := cfg.Registry
	if reg == nil {
		// Single-city back-compat: wrap Net in a one-shard registry. The
		// shard preloads its snapshots and hospital potentials eagerly —
		// same startup cost the first requests used to pay.
		if err := validateNetwork(cfg.Net); err != nil {
			return nil, err
		}
		shard, err := registry.NewShard(context.Background(), "", cfg.Net, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		reg = registry.NewRegistry()
		if err := reg.Add(shard); err != nil {
			return nil, err
		}
	} else {
		if len(reg.Shards()) == 0 {
			return nil, errors.New("server: Config.Registry has no shards")
		}
		for _, shard := range reg.Shards() {
			if err := validateNetwork(shard.Net()); err != nil {
				return nil, fmt.Errorf("city %s: %w", shard.Name(), err)
			}
		}
	}
	drainCtx, stopDrain := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:       cfg,
		adm:       newAdmission(cfg.Capacity, cfg.MaxQueue),
		brk:       NewBreaker(cfg.Breaker, cfg.clock),
		gate:      newGate(),
		mux:       http.NewServeMux(),
		reg:       reg,
		results:   registry.NewCache[attackKey, attackOutcome](cfg.CacheBytes),
		pathsets:  registry.NewCache[pathsetKey, []graph.Path](cfg.CacheBytes / 4),
		flight:    &registry.Group[attackKey, attackOutcome]{},
		drainCtx:  drainCtx,
		stopDrain: stopDrain,
		batches:   map[string]bool{},
	}
	if cfg.WitnessFile != "" {
		witness, err := audit.OpenFileWitness(cfg.WitnessFile, cfg.clock)
		if err != nil {
			return nil, fmt.Errorf("server: opening witness file: %w", err)
		}
		s.witness = witness
	}
	if cfg.AuditDir != "" {
		ledger, err := audit.Open(audit.Config{
			Dir:            cfg.AuditDir,
			FlushEvery:     cfg.AuditFlushEvery,
			FlushRecords:   cfg.AuditFlushRecords,
			SyncEachRecord: cfg.AuditSyncEachRecord,
			RotateBytes:    cfg.AuditRotateBytes,
			CompactKeep:    cfg.AuditCompactKeep,
			OnDiskFull:     cfg.AuditOnDiskFull,
			Witness:        cfg.AuditWitness,
			AnchorEvery:    cfg.AuditAnchorEvery,
			Injector:       cfg.Injector,
		})
		switch {
		case errors.Is(err, audit.ErrChainBroken):
			// Refuse mode: the server comes up so /healthz and /readyz can
			// name the broken record, but no attack work is served over a
			// tampered ledger.
			s.auditErr = err
		case err != nil:
			return nil, err
		default:
			s.ledger = ledger
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /v1/attack", s.guarded(s.handleAttack))
	s.mux.HandleFunc("POST /v1/batch", s.guarded(s.handleBatch))
	// The proof endpoint is read-only and bypasses the drain gate: clients
	// must be able to verify history while the server refuses new work.
	s.mux.HandleFunc("GET /v1/audit/{seq}/proof", s.handleAuditProof)
	// The witness endpoint also bypasses the gate: anchoring another
	// instance's seals is cheap, independent of this server's pipeline,
	// and most valuable exactly when failure domains are misbehaving.
	s.mux.HandleFunc("POST /v1/witness/anchor", s.handleWitnessAnchor)
	return s, nil
}

// validateNetwork checks every weight and cost model on every edge.
func validateNetwork(net *roadnet.Network) error {
	g := net.Graph()
	for _, wt := range roadnet.WeightTypes() {
		if err := g.ValidateWeights(net.Weight(wt)); err != nil {
			return fmt.Errorf("server: weight %s: %w", wt, err)
		}
	}
	for _, ct := range roadnet.CostTypes() {
		if err := g.ValidateWeights(net.Cost(ct)); err != nil {
			return fmt.Errorf("server: cost %s: %w", ct, err)
		}
	}
	return nil
}

// ServeHTTP implements http.Handler with request-level panic isolation: a
// panic that escapes a handler (or is injected by the chaos suite) is
// recovered into a structured 500, never a dead process.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			err := fmt.Errorf("%w: %v\n%s", core.ErrPanic, rec, debug.Stack())
			s.writeError(w, http.StatusInternalServerError, "panic", err)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// guarded wraps a work handler with the drain gate: requests arriving
// after drain began are rejected, and in-flight ones are counted so Drain
// can wait for quiescence. Health endpoints bypass the gate — they must
// answer while draining.
func (s *Server) guarded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.gate.enter() {
			s.writeError(w, http.StatusServiceUnavailable, "draining", ErrDraining)
			return
		}
		defer s.gate.exit()
		if kind, err := s.auditRefusal(); err != nil {
			s.writeError(w, http.StatusServiceUnavailable, kind, err)
			return
		}
		h(w, r)
	}
}

// auditRefusal reports why attack work must be refused on the ledger's
// account: a chain that failed verification at startup, or a ledger
// poisoned by a write/fsync failure (results the service cannot audit, it
// does not serve).
func (s *Server) auditRefusal() (string, error) {
	if s.auditErr != nil {
		return "audit_chain_broken", s.auditErr
	}
	if s.ledger != nil {
		if err := s.ledger.Err(); err != nil {
			return "audit_failed", err
		}
	}
	return "", nil
}

// BeginDrain stops admitting work and cancels in-flight batch contexts so
// they checkpoint and return partial results. Idempotent; it does not
// wait — use Drain for the full stop-admit/quiesce sequence.
func (s *Server) BeginDrain() {
	s.stopDrain(ErrDraining)
	s.gate.drain()
}

// Drain performs the graceful shutdown sequence: stop admitting, cancel
// batch contexts (flushing their checkpoints), and wait up to grace for
// in-flight requests to finish. It returns nil on a clean quiesce and an
// error when the grace period expired with requests still running.
func (s *Server) Drain(grace time.Duration) error {
	s.BeginDrain()
	select {
	case <-s.gate.drain():
		return nil
	case <-time.After(grace):
		return fmt.Errorf("server: drain grace %v expired with requests in flight", grace)
	}
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.gate.isDraining() }

// Breaker exposes the LP circuit breaker (for stats and tests).
func (s *Server) Breaker() *Breaker { return s.brk }

// Registry exposes the city-shard registry (for stats, tests, and
// operational mutation via Shard.SetRoad).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Ledger exposes the audit ledger (nil when auditing is disabled or the
// server is in chain-broken refuse mode). cmd/serve closes it after the
// drain so the unsealed tail gets its final group commit.
func (s *Server) Ledger() *audit.Ledger { return s.ledger }

// Witness exposes this server's own witness store (nil unless
// Config.WitnessFile is set). cmd/serve closes it at shutdown.
func (s *Server) Witness() *audit.FileWitness { return s.witness }

// AuditErr reports the startup chain verification failure that put the
// server in refuse mode (nil when the chain verified or auditing is
// disabled). cmd/serve surfaces it at startup so the operator sees why
// every work request will 503.
func (s *Server) AuditErr() error { return s.auditErr }

// --- health -----------------------------------------------------------

// healthzResponse is the /healthz body: liveness plus the cache,
// coalescing, and per-city stats that tell an operator whether the hot
// path is actually hot.
type healthzResponse struct {
	Status       string                `json:"status"`
	Cities       []registry.ShardStats `json:"cities"`
	ResultCache  registry.CacheStats   `json:"result_cache"`
	PathsetCache registry.CacheStats   `json:"pathset_cache"`
	Coalescing   registry.GroupStats   `json:"coalescing"`
	// Audit carries the ledger counters (chain heads, sealed batches,
	// pending tail, segment/compaction bounds, witness-anchor age, shed
	// and degraded counters, fsync coalescing ratio, last group-commit
	// latency) when auditing is enabled — or just the startup chain error
	// in refuse mode.
	Audit *audit.Stats `json:"audit,omitempty"`
	// Witness describes this server's own witness store (the anchors it
	// holds for OTHER instances), present only with -witness-file.
	Witness *witnessStats `json:"witness,omitempty"`
}

// witnessStats summarizes the witness store on /healthz.
type witnessStats struct {
	Anchors     int    `json:"anchors"`
	LatestBatch uint64 `json:"latest_batch,omitempty"`
	Head        string `json:"head,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthzResponse{
		Status:       "ok",
		ResultCache:  s.results.Stats(),
		PathsetCache: s.pathsets.Stats(),
		Coalescing:   s.flight.Stats(),
	}
	for _, shard := range s.reg.Shards() {
		resp.Cities = append(resp.Cities, shard.Stats())
	}
	switch {
	case s.ledger != nil:
		st := s.ledger.Stats()
		resp.Audit = &st
	case s.auditErr != nil:
		resp.Audit = &audit.Stats{Error: s.auditErr.Error()}
	}
	if s.witness != nil {
		ws := &witnessStats{}
		if anchors := s.witness.Anchors(); len(anchors) > 0 {
			last := anchors[len(anchors)-1]
			ws.Anchors = len(anchors)
			ws.LatestBatch = last.Batch
			ws.Head = last.Hash
		}
		resp.Witness = ws
	}
	writeJSON(w, http.StatusOK, resp)
}

// readyzResponse is the /readyz body: readiness plus the load and breaker
// stats an operator needs to interpret a 503.
type readyzResponse struct {
	Status        string `json:"status"`
	Breaker       string `json:"breaker"`
	BreakerTrips  int    `json:"breaker_trips"`
	QueuedWaiters int    `json:"queued_waiters"`
	UsedUnits     int    `json:"used_units"`
	CapacityUnits int    `json:"capacity_units"`
	// Audit is "ok" when the ledger is healthy, "degraded" when the shed
	// policy is dropping records on a full disk (the server stays ready —
	// that is the policy's point), "audit_chain_broken" or "audit_failed"
	// when it is refusing work, and empty when disabled.
	Audit string `json:"audit,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp := readyzResponse{
		Status:        "ready",
		Breaker:       s.brk.State().String(),
		BreakerTrips:  s.brk.Trips(),
		QueuedWaiters: s.adm.Queued(),
		UsedUnits:     s.adm.Used(),
		CapacityUnits: s.cfg.Capacity,
	}
	if s.ledger != nil || s.auditErr != nil {
		resp.Audit = "ok"
	}
	if s.ledger != nil && s.ledger.Stats().Degraded {
		resp.Audit = "degraded"
	}
	status := http.StatusOK
	if kind, err := s.auditRefusal(); err != nil {
		resp.Status, resp.Audit = kind, kind
		status = http.StatusServiceUnavailable
	}
	if s.gate.isDraining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// --- /v1/attack -------------------------------------------------------

// AttackRequest is the /v1/attack body. Source and Dest are node IDs on
// the served network; Rank selects p* (the rank-th shortest path); City
// selects the shard (empty: the registry's default city).
type AttackRequest struct {
	City      string  `json:"city,omitempty"`
	Source    int64   `json:"source"`
	Dest      int64   `json:"dest"`
	Rank      int     `json:"rank"`
	Algorithm string  `json:"algorithm,omitempty"` // default LP-PathCover
	Weight    string  `json:"weight,omitempty"`    // default TIME
	Cost      string  `json:"cost,omitempty"`      // default UNIFORM
	Budget    float64 `json:"budget,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
}

// AttackResponse is the /v1/attack success body.
type AttackResponse struct {
	City            string  `json:"city"`
	Algorithm       string  `json:"algorithm"`
	Requested       string  `json:"requested_algorithm,omitempty"` // set when the breaker rerouted
	Removed         []int64 `json:"removed"`
	TotalCost       float64 `json:"total_cost"`
	Rounds          int     `json:"rounds"`
	ConstraintPaths int     `json:"constraint_paths"`
	RuntimeMS       float64 `json:"runtime_ms"`
	Degraded        bool    `json:"degraded"`
	DegradedReason  string  `json:"degraded_reason,omitempty"`
	Breaker         string  `json:"breaker"`
	// Cached marks a response served from the generation-keyed result
	// cache; Coalesced marks one shared with concurrent identical
	// requests. Both are serving metadata: the attack payload is
	// bit-identical to an uncached computation.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Audit is the ledger receipt when auditing is enabled: quote Seq at
	// GET /v1/audit/{seq}/proof (after the next group commit) for an
	// offline-verifiable inclusion proof.
	Audit *AuditRef `json:"audit,omitempty"`
}

// ErrorResponse is the structured error body on every non-2xx response.
type ErrorResponse struct {
	Error       string `json:"error"`
	Kind        string `json:"kind"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	var req AttackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("server: decoding request: %w", err))
		return
	}
	alg := core.AlgLPPathCover
	if req.Algorithm != "" {
		var err error
		if alg, err = core.ParseAlgorithm(req.Algorithm); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_request", err)
			return
		}
	}
	wt := roadnet.WeightTime
	if req.Weight != "" {
		var err error
		if wt, err = roadnet.ParseWeightType(req.Weight); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_request", err)
			return
		}
	}
	ct := roadnet.CostUniform
	if req.Cost != "" {
		var err error
		if ct, err = roadnet.ParseCostType(req.Cost); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_request", err)
			return
		}
	}
	shard, err := s.shardFor(req.City)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "unknown_city", err)
		return
	}
	n := int64(shard.Net().NumIntersections())
	if req.Source < 0 || req.Source >= n || req.Dest < 0 || req.Dest >= n {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("server: source/dest must be node IDs in [0, %d)", n))
		return
	}
	if req.Source == req.Dest {
		s.writeError(w, http.StatusBadRequest, "bad_request", errors.New("server: source equals dest"))
		return
	}
	if req.Rank < 1 {
		s.writeError(w, http.StatusBadRequest, "bad_request", errors.New("server: rank must be >= 1"))
		return
	}

	key := attackKey{
		city:   shard.Name(),
		gen:    shard.Generation(),
		source: req.Source,
		dest:   req.Dest,
		rank:   req.Rank,
		alg:    alg,
		wt:     wt,
		ct:     ct,
		budget: req.Budget,
		seed:   req.Seed,
	}

	// Cache-first fast path: a hit runs no graph work and holds no clone,
	// queue slot, or admission units — the hot working set must never
	// queue behind cold traffic, and admission charges hits nothing. A hit
	// is still a served result, so it is still audited (Cached flag set).
	if out, ok := s.results.Get(key); ok {
		ref, aerr := s.auditAttack(shard.Name(), &req, key, &out, true, nil)
		if aerr != nil {
			s.writeError(w, http.StatusServiceUnavailable, "audit_failed", aerr)
			return
		}
		s.writeAttack(w, shard.Name(), out, true, false, ref)
		return
	}

	// Load shedding (cold path only): a request whose estimated Yen work
	// exceeds the per-request budget is refused before it touches the
	// coalescer or the queue.
	work := EstimateWork(req.Rank, shard.Net().NumIntersections(), shard.Net().Graph().NumEdges())
	units := estimateUnits(work, s.cfg.UnitWork)
	if units > s.cfg.MaxRequestUnits {
		s.writeError(w, http.StatusServiceUnavailable, "shed",
			fmt.Errorf("%w (estimated %d units, budget %d)", ErrShed, units, s.cfg.MaxRequestUnits))
		return
	}

	// The waiter deadline covers coalescer wait AND attack work, so
	// clients keep a bounded worst case. The computation itself runs under
	// the server's drain context plus the leader's timeout (inside
	// computeAttack), so one impatient client hanging up never kills the
	// result its coalesced peers are still waiting for.
	ctx, cancel := context.WithTimeoutCause(r.Context(), s.timeout(req.TimeoutMS)+waiterGrace, core.ErrTimeout)
	defer cancel()

	timeoutMS := req.TimeoutMS
	out, shared, err := s.flight.Do(ctx, s.drainCtx, key, func(runCtx context.Context) (attackOutcome, error) {
		return s.computeAttack(runCtx, shard, key, timeoutMS)
	})
	if err = mapComputeErr(err); err != nil {
		if errors.Is(err, errAdmission) {
			// Backpressure rejections are not attack outcomes — nothing was
			// computed or served — so they are not audited.
			s.writeAdmissionError(w, err)
			return
		}
		// A failed attack is still a served answer; audit it best-effort
		// (an append failure here poisons the ledger, and the NEXT request
		// is refused by the guard — this response already carries an error).
		_, _ = s.auditAttack(shard.Name(), &req, key, nil, false, err)
		kind := failureKind(err)
		s.writeError(w, statusForKind(kind), kind, err)
		return
	}
	ref, aerr := s.auditAttack(shard.Name(), &req, key, &out, false, nil)
	if aerr != nil {
		s.writeError(w, http.StatusServiceUnavailable, "audit_failed", aerr)
		return
	}
	s.writeAttack(w, shard.Name(), out, false, shared, ref)
}

// ctxSentinel maps a dead context to the typed core sentinels.
func ctxSentinel(ctx context.Context) error {
	cause := context.Cause(ctx)
	if errors.Is(cause, core.ErrTimeout) || errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", core.ErrTimeout, cause)
	}
	return fmt.Errorf("%w: %w", core.ErrCancelled, cause)
}

// timeout clamps a client-supplied timeout_ms to (0, MaxTimeout].
func (s *Server) timeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// statusForKind maps experiment.FailureKind buckets onto HTTP statuses.
func statusForKind(kind string) int {
	switch kind {
	case "timeout":
		return http.StatusGatewayTimeout
	case "cancelled":
		return http.StatusServiceUnavailable
	case "panic":
		return http.StatusInternalServerError
	case "invalid":
		return http.StatusBadRequest
	case "budget", "infeasible", "rank":
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// failureKind buckets an error for the wire, extending the experiment
// buckets with the rank-unavailable case the service can surface.
func failureKind(err error) string {
	if errors.Is(err, core.ErrRankUnavailable) {
		return "rank"
	}
	return experiment.FailureKind(err)
}

// writeAdmissionError maps admission failures onto structured 503s.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.writeError(w, http.StatusServiceUnavailable, "queue_full", err)
	case errors.Is(err, ErrShed):
		s.writeError(w, http.StatusServiceUnavailable, "shed", err)
	case errors.Is(err, ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, "draining", err)
	case errors.Is(err, core.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusServiceUnavailable, "admission_timeout", err)
	default:
		s.writeError(w, http.StatusServiceUnavailable, "cancelled", err)
	}
}

// writeError writes the structured error body, attaching Retry-After on
// backpressure statuses so well-behaved clients pace themselves.
func (s *Server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	resp := ErrorResponse{Error: err.Error(), Kind: kind}
	if status == http.StatusServiceUnavailable {
		resp.RetryAfterS = s.cfg.RetryAfterS
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterS))
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client hung up; nothing sensible to do
}

func edgeIDs(edges []graph.EdgeID) []int64 {
	out := make([]int64, len(edges))
	for i, e := range edges {
		out[i] = int64(e)
	}
	return out
}

// joinReasons concatenates non-empty degradation reasons.
func joinReasons(a, b string) string {
	if b == "" {
		return a
	}
	return a + "; " + b
}
