package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionImmediateGrant(t *testing.T) {
	a := newAdmission(4, 2)
	if err := a.Acquire(context.Background(), 3); err != nil {
		t.Fatalf("Acquire(3): %v", err)
	}
	if got := a.Used(); got != 3 {
		t.Fatalf("Used() = %d, want 3", got)
	}
	a.Release(3)
	if got := a.Used(); got != 0 {
		t.Fatalf("Used() after release = %d, want 0", got)
	}
}

func TestAdmissionShedsOversized(t *testing.T) {
	a := newAdmission(4, 2)
	if err := a.Acquire(context.Background(), 5); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire(5) on capacity 4 = %v, want ErrShed", err)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}

	// One waiter fits in the queue...
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx, 1) }()
	waitFor(t, func() bool { return a.Queued() == 1 })

	// ...the next is rejected immediately, without blocking.
	if err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire with full queue = %v, want ErrQueueFull", err)
	}

	a.Release(1)
	if err := <-queued; err != nil {
		t.Fatalf("queued Acquire after release: %v", err)
	}
	a.Release(1)
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, 1) }()
	waitFor(t, func() bool { return a.Queued() == 1 })

	sentinel := errors.New("caller gave up")
	cancel(sentinel)
	err := <-done
	if !errors.Is(err, sentinel) {
		t.Fatalf("cancelled Acquire = %v, want wrapped cause", err)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("Queued() after cancel = %d, want 0 (waiter removed)", got)
	}

	// The held unit is still accounted for and still releasable.
	a.Release(1)
	if got := a.Used(); got != 0 {
		t.Fatalf("Used() = %d, want 0", got)
	}
}

func TestAdmissionFIFOOrder(t *testing.T) {
	a := newAdmission(1, 8)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}

	const waiters = 4
	order := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		go func() {
			if err := a.Acquire(context.Background(), 1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			a.Release(1)
		}()
		// Queue one at a time so the FIFO order is the spawn order.
		waitFor(t, func() bool { return a.Queued() == i+1 })
	}

	a.Release(1)
	for want := 0; want < waiters; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("grant order: got waiter %d, want %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d never granted", want)
		}
	}
}

func TestAdmissionWeightedGrants(t *testing.T) {
	// A release grants as many FIFO heads as fit, and a heavy head blocks
	// lighter requests behind it (fairness over utilization).
	a := newAdmission(4, 8)
	if err := a.Acquire(context.Background(), 4); err != nil {
		t.Fatalf("Acquire(4): %v", err)
	}

	heavy := make(chan error, 1)
	light := make(chan error, 1)
	go func() { heavy <- a.Acquire(context.Background(), 3) }()
	waitFor(t, func() bool { return a.Queued() == 1 })
	go func() { light <- a.Acquire(context.Background(), 1) }()
	waitFor(t, func() bool { return a.Queued() == 2 })

	// Freeing one unit fits neither the heavy head (needs 3) nor — by
	// FIFO — the light waiter behind it.
	a.Release(1)
	select {
	case <-heavy:
		t.Fatal("heavy waiter granted with only 1 unit free")
	case <-light:
		t.Fatal("light waiter granted ahead of the FIFO head")
	case <-time.After(50 * time.Millisecond):
	}

	// Freeing the rest grants both in order.
	a.Release(3)
	if err := <-heavy; err != nil {
		t.Fatalf("heavy: %v", err)
	}
	if err := <-light; err != nil {
		t.Fatalf("light: %v", err)
	}
	if got := a.Used(); got != 4 {
		t.Fatalf("Used() = %d, want 4", got)
	}
}

func TestAdmissionConcurrentChurn(t *testing.T) {
	a := newAdmission(4, 64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				n := 1 + (i+j)%3
				if err := a.Acquire(context.Background(), n); err != nil {
					if errors.Is(err, ErrQueueFull) {
						continue
					}
					t.Errorf("Acquire(%d): %v", n, err)
					return
				}
				a.Release(n)
			}
		}(i)
	}
	wg.Wait()
	if got := a.Used(); got != 0 {
		t.Fatalf("Used() after churn = %d, want 0", got)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("Queued() after churn = %d, want 0", got)
	}
}

func TestEstimateUnits(t *testing.T) {
	cases := []struct {
		work, unitWork float64
		want           int
	}{
		{0, 100, 1},
		{99, 100, 1},
		{100, 100, 1},
		{101, 100, 2},
		{1000, 100, 10},
		{1000, 0, 1}, // degenerate unitWork: everything is one unit
	}
	for _, tc := range cases {
		if got := estimateUnits(tc.work, tc.unitWork); got != tc.want {
			t.Errorf("estimateUnits(%v, %v) = %d, want %d", tc.work, tc.unitWork, got, tc.want)
		}
	}
	if w := EstimateWork(0, 0, 0); w <= 0 {
		t.Errorf("EstimateWork floor = %v, want > 0", w)
	}
	if lo, hi := EstimateWork(2, 100, 300), EstimateWork(8, 100, 300); hi <= lo {
		t.Errorf("EstimateWork not monotone in rank: k=2 %v, k=8 %v", lo, hi)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //lint:allow wallclock test polling deadline
	for !cond() {
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
