package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"

	"altroute/internal/audit"
	"altroute/internal/core"
	"altroute/internal/experiment"
	"altroute/internal/faultinject"
	"altroute/internal/roadnet"
)

// BatchRequest is the /v1/batch body: one experiment table (the paper's
// algorithm × cost-type grid) over units sampled deterministically from
// the batch seed. With an ID and a server CheckpointDir, completed units
// are journaled to <dir>/<id>.jsonl — a batch interrupted by a drain
// resumes from the journal when re-submitted with the same parameters.
type BatchRequest struct {
	ID                 string   `json:"id,omitempty"`
	City               string   `json:"city,omitempty"`   // default: the registry's default city
	Weight             string   `json:"weight,omitempty"` // default TIME
	Algorithms         []string `json:"algorithms,omitempty"`
	CostTypes          []string `json:"cost_types,omitempty"`
	Rank               int      `json:"rank"`
	SourcesPerHospital int      `json:"sources_per_hospital,omitempty"`
	Seed               int64    `json:"seed,omitempty"`
	Budget             float64  `json:"budget,omitempty"`
	// TimeoutMS is the per-attack deadline inside the batch (the batch as
	// a whole is bounded by drain and client disconnect, not a deadline).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchResponse is the /v1/batch body on completion or interruption.
type BatchResponse struct {
	// Table is the experiment table in the same JSON shape the CLI
	// exports; partial when Interrupted.
	Table json.RawMessage `json:"table"`
	// Interrupted marks a batch stopped by a drain (or client cancel)
	// before the grid completed.
	Interrupted bool `json:"interrupted,omitempty"`
	// Resumable is set when the completed units are journaled: re-POSTing
	// the same batch replays them and computes only the remainder.
	Resumable bool `json:"resumable,omitempty"`
	// Checkpoint is the journal file name (within the server's checkpoint
	// directory) backing a resumable batch.
	Checkpoint string `json:"checkpoint,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("server: decoding request: %w", err))
		return
	}
	spec, err := s.batchSpec(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	if req.ID != "" && !validBatchID(req.ID) {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			errors.New("server: batch id must match [A-Za-z0-9_-]{1,64}"))
		return
	}

	shard, err := s.shardFor(req.City)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "unknown_city", err)
		return
	}

	// A batch is admitted as one heavy request: its estimated cost is the
	// whole grid, clamped to the budget so it is always admittable and
	// naturally serialized against other heavy work.
	perAttack := EstimateWork(spec.PathRank, shard.Net().NumIntersections(), shard.Net().Graph().NumEdges())
	grid := len(spec.Algorithms) * len(spec.CostTypes) * spec.SourcesPerHospital
	units := estimateUnits(perAttack*float64(grid), s.cfg.UnitWork)
	if units > s.cfg.Capacity {
		units = s.cfg.Capacity
	}

	// The batch context dies when the client disconnects or the server
	// drains; either way the run stops at unit granularity with its
	// journal flushed.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stop := context.AfterFunc(s.drainCtx, func() { cancel(ErrDraining) })
	defer stop()
	ctx = faultinject.With(ctx, s.cfg.Injector)

	if err := s.adm.Acquire(ctx, units); err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer s.adm.Release(units)

	var ckptName string
	if s.cfg.CheckpointDir != "" && req.ID != "" {
		if !s.claimBatch(req.ID) {
			s.writeError(w, http.StatusConflict, "batch_active",
				fmt.Errorf("server: batch %q is already running", req.ID))
			return
		}
		defer s.releaseBatch(req.ID)
		ckptName = req.ID + ".jsonl"
		ckpt, err := experiment.OpenCheckpoint(filepath.Join(s.cfg.CheckpointDir, ckptName), experiment.Header{
			Seed:     spec.Seed,
			Scale:    s.cfg.Scale,
			PathRank: spec.PathRank,
			Sources:  spec.SourcesPerHospital,
		})
		if errors.Is(err, experiment.ErrCheckpointMismatch) {
			s.writeError(w, http.StatusConflict, "checkpoint_mismatch", err)
			return
		}
		if errors.Is(err, audit.ErrChainBroken) {
			// The journal's hash chain does not verify: someone altered a
			// completed unit after it was written. Resuming would launder
			// the alteration into served results, so the batch is refused.
			s.writeError(w, http.StatusConflict, "checkpoint_tampered", err)
			return
		}
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "other", err)
			return
		}
		defer ckpt.Close()
		spec.Checkpoint = ckpt
	}

	// Every freshly computed unit is chained into the audit ledger
	// (checkpoint replays were audited when first computed).
	if s.ledger != nil {
		batchID, city, seed := req.ID, shard.Name(), spec.Seed
		spec.Audit = func(rec experiment.Record) { s.auditBatchUnit(batchID, city, seed, rec) }
	}

	// The batch mutates edges transactionally, so it borrows a
	// generation-stamped clone from its city's pool (never the master).
	net, cloneGen := shard.AcquireClone()
	defer shard.ReleaseClone(net, cloneGen)
	units2, err := experiment.SampleUnits(net, *spec)
	if err != nil && (!errors.Is(err, experiment.ErrSampling) || len(units2) == 0) {
		s.writeError(w, http.StatusUnprocessableEntity, "sampling", err)
		return
	}
	table, runErr := experiment.RunTableOnUnitsCtx(ctx, net, units2, *spec)
	if s.ledger != nil {
		if aerr := s.ledger.Err(); aerr != nil {
			// The ledger was poisoned mid-batch: some computed units went
			// unaudited. The results are safe in the checkpoint, but the
			// response is refused — the service does not serve what it
			// cannot account for.
			s.writeError(w, http.StatusServiceUnavailable, "audit_failed", aerr)
			return
		}
	}
	switch {
	case runErr == nil:
		s.writeBatch(w, http.StatusOK, table, BatchResponse{})
	case errors.Is(runErr, experiment.ErrInterrupted):
		// The drain (or the client) stopped the grid. Everything computed
		// so far is in the journal with no torn tail (Append flushes per
		// record), so the batch resumes where it stopped.
		s.writeBatch(w, http.StatusServiceUnavailable, table, BatchResponse{
			Interrupted: true,
			Resumable:   spec.Checkpoint != nil,
			Checkpoint:  ckptName,
		})
	default:
		kind := failureKind(runErr)
		s.writeError(w, statusForKind(kind), kind, runErr)
	}
}

// batchSpec validates and resolves a BatchRequest into an experiment
// Spec. The spec's Net is left nil — the runner gets a pooled clone.
func (s *Server) batchSpec(req *BatchRequest) (*experiment.Spec, error) {
	if req.Rank < 1 {
		return nil, errors.New("server: rank must be >= 1")
	}
	spec := &experiment.Spec{
		Seed:               req.Seed,
		PathRank:           req.Rank,
		SourcesPerHospital: req.SourcesPerHospital,
		Budget:             req.Budget,
		WeightType:         roadnet.WeightTime,
		Options:            core.Options{Timeout: s.timeout(req.TimeoutMS)},
	}
	if req.Weight != "" {
		wt, err := roadnet.ParseWeightType(req.Weight)
		if err != nil {
			return nil, err
		}
		spec.WeightType = wt
	}
	for _, name := range req.Algorithms {
		alg, err := core.ParseAlgorithm(name)
		if err != nil {
			return nil, err
		}
		spec.Algorithms = append(spec.Algorithms, alg)
	}
	for _, name := range req.CostTypes {
		ct, err := roadnet.ParseCostType(name)
		if err != nil {
			return nil, err
		}
		spec.CostTypes = append(spec.CostTypes, ct)
	}
	if spec.SourcesPerHospital <= 0 {
		spec.SourcesPerHospital = 2
	}
	if len(spec.Algorithms) == 0 {
		spec.Algorithms = core.Algorithms()
	}
	if len(spec.CostTypes) == 0 {
		spec.CostTypes = roadnet.CostTypes()
	}
	return spec, nil
}

// writeBatch renders the table into the response envelope.
func (s *Server) writeBatch(w http.ResponseWriter, status int, table experiment.Table, resp BatchResponse) {
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf); err != nil {
		s.writeError(w, http.StatusInternalServerError, "other", err)
		return
	}
	resp.Table = json.RawMessage(buf.Bytes())
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprint(s.cfg.RetryAfterS))
	}
	writeJSON(w, status, resp)
}

// claimBatch registers an active batch id, refusing duplicates so two
// concurrent submissions cannot interleave writes into one journal.
func (s *Server) claimBatch(id string) bool {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if s.batches[id] {
		return false
	}
	s.batches[id] = true
	return true
}

func (s *Server) releaseBatch(id string) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	delete(s.batches, id)
}

// validBatchID allows [A-Za-z0-9_-]{1,64}: the id names a file inside the
// checkpoint directory and must not traverse out of it.
func validBatchID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
