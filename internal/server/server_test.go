package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"altroute/internal/citygen"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// gridNetwork builds a deterministic dim×dim street grid with two-way
// residential roads and one hospital in the far corner — small enough that
// a full batch grid runs in milliseconds, rich enough that rank-8
// alternative paths exist between opposite corners.
func gridNetwork(t testing.TB, dim int) *roadnet.Network {
	t.Helper()
	net := roadnet.NewNetwork("testgrid")
	ids := make([]graph.NodeID, dim*dim)
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			ids[r*dim+c] = net.AddIntersection(geo.Point{
				Lat: 42.0 + float64(r)*0.001,
				Lon: -71.0 + float64(c)*0.001,
			})
		}
	}
	road := roadnet.Road{LengthM: 111, SpeedMS: 10, Lanes: 2, WidthM: 7, Class: roadnet.ClassResidential}
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if c+1 < dim {
				if _, _, err := net.AddTwoWayRoad(ids[r*dim+c], ids[r*dim+c+1], road); err != nil {
					t.Fatalf("AddTwoWayRoad: %v", err)
				}
			}
			if r+1 < dim {
				if _, _, err := net.AddTwoWayRoad(ids[r*dim+c], ids[(r+1)*dim+c], road); err != nil {
					t.Fatalf("AddTwoWayRoad: %v", err)
				}
			}
		}
	}
	if _, err := net.AttachPOI("Test General", citygen.KindHospital, net.Point(ids[dim*dim-1])); err != nil {
		t.Fatalf("AttachPOI: %v", err)
	}
	return net
}

// lineNetwork builds a 3-node path graph: exactly one simple route end to
// end, so any rank >= 2 is unavailable.
func lineNetwork(t testing.TB) *roadnet.Network {
	t.Helper()
	net := roadnet.NewNetwork("testline")
	road := roadnet.Road{LengthM: 111, SpeedMS: 10, Lanes: 2, WidthM: 7, Class: roadnet.ClassResidential}
	var prev graph.NodeID
	for i := 0; i < 3; i++ {
		id := net.AddIntersection(geo.Point{Lat: 42.0, Lon: -71.0 + float64(i)*0.001})
		if i > 0 {
			if _, _, err := net.AddTwoWayRoad(prev, id, road); err != nil {
				t.Fatalf("AddTwoWayRoad: %v", err)
			}
		}
		prev = id
	}
	return net
}

// newTestServer builds a Server over a fresh grid network, with cfg
// tweaked by mutate (which may be nil).
func newTestServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Net: gridNetwork(t, 4)}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// do runs one request through the server and decodes the JSON body into out
// (when out is non-nil).
func do(t testing.TB, s *Server, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encode request: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

func postAttack(t testing.TB, s *Server, req AttackRequest) (*httptest.ResponseRecorder, AttackResponse, ErrorResponse) {
	t.Helper()
	var raw json.RawMessage
	w := do(t, s, http.MethodPost, "/v1/attack", req, &raw)
	var ok AttackResponse
	var bad ErrorResponse
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("decode attack response: %v", err)
		}
	} else {
		if err := json.Unmarshal(raw, &bad); err != nil {
			t.Fatalf("decode error response: %v", err)
		}
	}
	return w, ok, bad
}

// corner-to-corner attack request on the 4×4 grid.
func gridAttack() AttackRequest {
	return AttackRequest{Source: 0, Dest: 15, Rank: 4, Seed: 7, TimeoutMS: 30_000}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, nil)
	w := do(t, s, http.MethodGet, "/healthz", nil, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", w.Code)
	}
}

func TestReadyzReportsLoadAndBreaker(t *testing.T) {
	s := newTestServer(t, nil)
	var resp readyzResponse
	if w := do(t, s, http.MethodGet, "/readyz", nil, &resp); w.Code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", w.Code)
	}
	if resp.Status != "ready" || resp.Breaker != "closed" {
		t.Fatalf("readyz = %+v, want ready/closed", resp)
	}
	if resp.CapacityUnits <= 0 {
		t.Fatalf("readyz capacity = %d, want > 0", resp.CapacityUnits)
	}
}

func TestAttackSuccess(t *testing.T) {
	s := newTestServer(t, nil)
	for _, alg := range []string{"", "GreedyEdge", "GreedyPathCover"} {
		req := gridAttack()
		req.Algorithm = alg
		w, resp, errResp := postAttack(t, s, req)
		if w.Code != http.StatusOK {
			t.Fatalf("alg %q: status %d, body %+v", alg, w.Code, errResp)
		}
		if len(resp.Removed) == 0 || resp.TotalCost <= 0 {
			t.Fatalf("alg %q: empty attack result %+v", alg, resp)
		}
		if resp.Degraded {
			t.Fatalf("alg %q: unexpectedly degraded: %s", alg, resp.DegradedReason)
		}
		if resp.Breaker != "closed" {
			t.Fatalf("alg %q: breaker %q, want closed", alg, resp.Breaker)
		}
	}
	// The default algorithm is the LP.
	_, resp, _ := postAttack(t, s, gridAttack())
	if resp.Algorithm != "LP-PathCover" {
		t.Fatalf("default algorithm = %q, want LP-PathCover", resp.Algorithm)
	}
}

func TestAttackDeterministicAcrossRequests(t *testing.T) {
	// Two identical requests over the pooled clones must produce identical
	// plans — pooling must not leak state between requests.
	s := newTestServer(t, nil)
	_, a, _ := postAttack(t, s, gridAttack())
	_, b, _ := postAttack(t, s, gridAttack())
	if a.TotalCost != b.TotalCost || len(a.Removed) != len(b.Removed) {
		t.Fatalf("same request, different plans: %+v vs %+v", a, b)
	}
	for i := range a.Removed {
		if a.Removed[i] != b.Removed[i] {
			t.Fatalf("same request, different cut: %v vs %v", a.Removed, b.Removed)
		}
	}
}

func TestAttackValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name string
		mut  func(*AttackRequest)
	}{
		{"unknown algorithm", func(r *AttackRequest) { r.Algorithm = "Simplex2000" }},
		{"unknown weight", func(r *AttackRequest) { r.Weight = "vibes" }},
		{"unknown cost", func(r *AttackRequest) { r.Cost = "vibes" }},
		{"source out of range", func(r *AttackRequest) { r.Source = 10_000 }},
		{"negative dest", func(r *AttackRequest) { r.Dest = -1 }},
		{"source equals dest", func(r *AttackRequest) { r.Dest = r.Source }},
		{"rank zero", func(r *AttackRequest) { r.Rank = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := gridAttack()
			tc.mut(&req)
			w, _, errResp := postAttack(t, s, req)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%+v)", w.Code, errResp)
			}
			if errResp.Kind != "bad_request" {
				t.Fatalf("kind = %q, want bad_request", errResp.Kind)
			}
		})
	}
	// Malformed JSON is a 400 too, not a panic.
	req := httptest.NewRequest(http.MethodPost, "/v1/attack", bytes.NewBufferString("{"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status = %d, want 400", w.Code)
	}
}

func TestAttackRankUnavailable(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Net = lineNetwork(t) })
	w, _, errResp := postAttack(t, s, AttackRequest{Source: 0, Dest: 2, Rank: 2})
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (%+v)", w.Code, errResp)
	}
	if errResp.Kind != "rank" {
		t.Fatalf("kind = %q, want rank", errResp.Kind)
	}
}

func TestAttackLoadShedding(t *testing.T) {
	// With one-relaxation units every request is huge; a per-request budget
	// of 1 unit sheds it before it ever queues.
	s := newTestServer(t, func(c *Config) {
		c.UnitWork = 1
		c.MaxRequestUnits = 1
		c.Capacity = 1 << 20
	})
	w, _, errResp := postAttack(t, s, gridAttack())
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if errResp.Kind != "shed" {
		t.Fatalf("kind = %q, want shed", errResp.Kind)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
}

func TestAttackQueueFullAndAdmissionTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Capacity = 1
		c.MaxQueue = 1
	})
	// Occupy the whole budget so requests queue.
	if err := s.adm.Acquire(t.Context(), 1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer s.adm.Release(1)

	// First request queues and runs out its (short) deadline in the queue.
	type result struct {
		code int
		kind string
	}
	timedOut := make(chan result, 1)
	go func() {
		req := gridAttack()
		req.TimeoutMS = 60_000 // parked in the queue for the whole test
		w, _, errResp := postAttack(t, s, req)
		timedOut <- result{w.Code, errResp.Kind}
	}()
	waitFor(t, func() bool { return s.adm.Queued() == 1 })

	// Second request finds the queue full: immediate 503 + Retry-After.
	// It must differ from the parked request (here: by seed) — an
	// identical request would coalesce onto the queued computation
	// instead of needing its own queue slot.
	full := gridAttack()
	full.Seed = 99
	w, _, errResp := postAttack(t, s, full)
	if w.Code != http.StatusServiceUnavailable || errResp.Kind != "queue_full" {
		t.Fatalf("status/kind = %d/%q, want 503/queue_full", w.Code, errResp.Kind)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("queue_full response missing Retry-After")
	}

	// Readyz reflects the backlog.
	var ready readyzResponse
	do(t, s, http.MethodGet, "/readyz", nil, &ready)
	if ready.QueuedWaiters != 1 || ready.UsedUnits != 1 {
		t.Fatalf("readyz = %+v, want 1 queued / 1 used", ready)
	}

	// Release the budget: the queued request is granted and completes.
	s.adm.Release(1)
	select {
	case res := <-timedOut:
		if res.code != http.StatusOK {
			t.Fatalf("queued request finished %d (%s), want 200", res.code, res.kind)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued request never finished")
	}
	if err := s.adm.Acquire(t.Context(), 1); err != nil { // rebalance the deferred Release
		t.Fatalf("re-Acquire: %v", err)
	}
}

func TestAttackQueueWaitConsumesDeadline(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Capacity = 1
		c.MaxQueue = 1
	})
	if err := s.adm.Acquire(t.Context(), 1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer s.adm.Release(1)

	req := gridAttack()
	req.TimeoutMS = 50
	w, _, errResp := postAttack(t, s, req)
	if w.Code != http.StatusServiceUnavailable || errResp.Kind != "admission_timeout" {
		t.Fatalf("status/kind = %d/%q, want 503/admission_timeout", w.Code, errResp.Kind)
	}
}

func TestDrainGateRejectsNewWork(t *testing.T) {
	s := newTestServer(t, nil)
	s.BeginDrain()

	w, _, errResp := postAttack(t, s, gridAttack())
	if w.Code != http.StatusServiceUnavailable || errResp.Kind != "draining" {
		t.Fatalf("status/kind = %d/%q, want 503/draining", w.Code, errResp.Kind)
	}

	// Health answers while draining; readyz flips to 503/draining.
	if w := do(t, s, http.MethodGet, "/healthz", nil, nil); w.Code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", w.Code)
	}
	var ready readyzResponse
	if w := do(t, s, http.MethodGet, "/readyz", nil, &ready); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", w.Code)
	}
	if ready.Status != "draining" {
		t.Fatalf("readyz status = %q, want draining", ready.Status)
	}

	// With nothing in flight Drain returns immediately and stays clean.
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestTimeoutClamping(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DefaultTimeout = 7 * time.Second
		c.MaxTimeout = 10 * time.Second
	})
	if d := s.timeout(0); d != 7*time.Second {
		t.Fatalf("timeout(0) = %v, want default 7s", d)
	}
	if d := s.timeout(3_000); d != 3*time.Second {
		t.Fatalf("timeout(3000) = %v, want 3s", d)
	}
	if d := s.timeout(60_000); d != 10*time.Second {
		t.Fatalf("timeout(60000) = %v, want clamped 10s", d)
	}
}

func TestNewRejectsBadNetwork(t *testing.T) {
	// roadnet.AddRoad/SetRoad reject NaN and negative attributes outright,
	// but a derived weight can still overflow (here a subnormal speed
	// makes TravelTime infinite). New's startup validation is the backstop.
	net := lineNetwork(t)
	road := net.Road(0)
	road.SpeedMS = 1e-310
	if err := net.SetRoad(0, road); err != nil {
		t.Fatalf("SetRoad: %v", err)
	}
	_, err := New(Config{Net: net})
	if err == nil {
		t.Fatal("New accepted a network with an infinite travel-time weight")
	}
	if !errors.Is(err, graph.ErrBadGraph) {
		t.Fatalf("New error = %v, want graph.ErrBadGraph", err)
	}
}
