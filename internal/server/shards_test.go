package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"altroute/internal/faultinject"
	"altroute/internal/registry"
)

// attackPayload strips serving metadata (runtime, cache/coalescing flags,
// breaker state) from a response, leaving exactly the fields that must be
// bit-identical however the result was produced.
func attackPayload(r AttackResponse) AttackResponse {
	r.RuntimeMS = 0
	r.Cached = false
	r.Coalesced = false
	r.Breaker = ""
	r.City = ""
	return r
}

func samePayload(t *testing.T, label string, got, want AttackResponse) {
	t.Helper()
	g, _ := json.Marshal(attackPayload(got))
	w, _ := json.Marshal(attackPayload(want))
	if string(g) != string(w) {
		t.Fatalf("%s: payload diverged:\n got %s\nwant %s", label, g, w)
	}
}

// waitFlight polls the coalescing stats until cond holds.
func waitFlight(t *testing.T, s *Server, cond func(registry.GroupStats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second) //lint:allow wallclock test polling deadline
	for !cond(s.flight.Stats()) {
		if time.Now().After(deadline) { //lint:allow wallclock test polling deadline
			t.Fatalf("flight stats never converged: %+v", s.flight.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAttackCachedAndUncachedBitIdentical is the acceptance differential:
// cached and coalesced responses carry exactly the payload an uncached
// computation produces — including after a SetRoad generation bump, when
// the cache must recompute rather than replay.
func TestAttackCachedAndUncachedBitIdentical(t *testing.T) {
	cached := newTestServer(t, nil)
	uncached := newTestServer(t, func(c *Config) { c.CacheBytes = -1 })

	for _, alg := range []string{"GreedyEdge", "GreedyPathCover", "LP-PathCover"} {
		req := gridAttack()
		req.Algorithm = alg

		_, cold, _ := postAttack(t, cached, req)
		w, hot, _ := postAttack(t, cached, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: repeat request failed: %d", alg, w.Code)
		}
		if !hot.Cached {
			t.Fatalf("%s: repeat identical request not served from cache", alg)
		}
		_, plain, _ := postAttack(t, uncached, req)
		if plain.Cached {
			t.Fatalf("%s: cache-disabled server served from cache", alg)
		}
		samePayload(t, alg+" cold-vs-hot", hot, cold)
		samePayload(t, alg+" cached-vs-uncached", cold, plain)
	}

	// Mutate the same road identically on both servers: generations bump,
	// caches go stale, and the recomputed results must again agree.
	for _, s := range []*Server{cached, uncached} {
		shard, _ := s.Registry().Get("")
		road := shard.Net().Road(0)
		road.LengthM *= 5
		if err := shard.SetRoad(0, road); err != nil {
			t.Fatalf("SetRoad: %v", err)
		}
	}
	req := gridAttack()
	req.Algorithm = "GreedyPathCover"
	w, bumped, _ := postAttack(t, cached, req)
	if w.Code != http.StatusOK {
		t.Fatalf("post-bump request failed: %d", w.Code)
	}
	if bumped.Cached {
		t.Fatal("post-bump request served the pre-mutation cache entry")
	}
	_, bumpedPlain, _ := postAttack(t, uncached, req)
	samePayload(t, "post-bump cached-vs-uncached", bumped, bumpedPlain)

	_, rehot, _ := postAttack(t, cached, req)
	if !rehot.Cached {
		t.Fatal("second post-bump request should hit the new-generation cache entry")
	}
	samePayload(t, "post-bump hot-vs-cold", rehot, bumped)
}

// TestCacheHitBypassesAdmission: a hit must be served even when the
// admission budget is fully occupied — hot traffic never queues behind
// cold traffic and is charged nothing.
func TestCacheHitBypassesAdmission(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Capacity = 1
		c.MaxQueue = 1
	})
	if w, _, _ := postAttack(t, s, gridAttack()); w.Code != http.StatusOK {
		t.Fatal("warm-up attack failed")
	}

	// Exhaust the budget AND the queue.
	if err := s.adm.Acquire(t.Context(), 1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer s.adm.Release(1)
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		cold := gridAttack()
		cold.Seed = 1234
		postAttack(t, s, cold) // parks in the queue until the deferred Release
	}()
	waitFor(t, func() bool { return s.adm.Queued() == 1 })

	// A cold request is refused outright...
	cold := gridAttack()
	cold.Seed = 5678
	if w, _, errResp := postAttack(t, s, cold); w.Code != http.StatusServiceUnavailable || errResp.Kind != "queue_full" {
		t.Fatalf("cold request under full queue: %d/%q, want 503/queue_full", w.Code, errResp.Kind)
	}
	// ...while the identical-to-warm-up request is served from cache.
	w, hot, _ := postAttack(t, s, gridAttack())
	if w.Code != http.StatusOK || !hot.Cached {
		t.Fatalf("cache hit under full queue: %d cached=%v, want 200/true", w.Code, hot.Cached)
	}
	if used := s.adm.Used(); used != 1 {
		t.Fatalf("cache hit consumed admission units: used = %d, want 1 (the manual hold)", used)
	}
	s.adm.Release(1)
	<-blocked
	if err := s.adm.Acquire(t.Context(), 1); err != nil { // rebalance the deferred Release
		t.Fatalf("re-Acquire: %v", err)
	}
}

// TestAttackCoalescing: concurrent identical requests share one
// computation. The testHookBeforeCache seam holds the leader's
// computation open until every follower has joined, making the join
// deterministic.
func TestAttackCoalescing(t *testing.T) {
	s := newTestServer(t, nil)
	const followers = 4
	release := make(chan struct{})
	s.testHookBeforeCache = func() { <-release }

	req := gridAttack()
	req.Algorithm = "GreedyEdge"
	type reply struct {
		code int
		resp AttackResponse
	}
	replies := make(chan reply, followers+1)
	var wg sync.WaitGroup
	for i := 0; i < followers+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, resp, _ := postAttack(t, s, req)
			replies <- reply{w.Code, resp}
		}()
		if i == 0 {
			// Let the first request become the leader (its computation
			// blocks in the hook) before the followers arrive.
			waitFlight(t, s, func(st registry.GroupStats) bool { return st.Leaders == 1 })
		}
	}
	waitFlight(t, s, func(st registry.GroupStats) bool { return st.Joins == followers })
	close(release)
	wg.Wait()
	close(replies)

	var first *AttackResponse
	coalesced := 0
	for r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("coalesced request failed: %d", r.code)
		}
		if r.resp.Coalesced {
			coalesced++
		}
		if first == nil {
			cp := r.resp
			first = &cp
			continue
		}
		samePayload(t, "coalesced waiters", r.resp, *first)
	}
	if coalesced != followers+1 {
		t.Errorf("%d responses marked coalesced, want all %d", coalesced, followers+1)
	}
	st := s.flight.Stats()
	if st.Leaders != 1 || st.Joins != followers {
		t.Errorf("flight stats = %+v, want 1 leader, %d joins", st, followers)
	}
}

// TestWaiterCancellationMidFlight: a waiter that hangs up detaches with
// its own 503 while the shared computation finishes and serves the
// remaining requests.
func TestWaiterCancellationMidFlight(t *testing.T) {
	s := newTestServer(t, nil)
	release := make(chan struct{})
	s.testHookBeforeCache = func() { <-release }

	req := gridAttack()
	req.Algorithm = "GreedyEdge"
	leaderDone := make(chan reply2, 1)
	go func() {
		w, resp, _ := postAttack(t, s, req)
		leaderDone <- reply2{w.Code, resp.Cached}
	}()
	waitFlight(t, s, func(st registry.GroupStats) bool { return st.Leaders == 1 })

	// Follower with a cancellable client context joins, then hangs up.
	ctx, cancel := context.WithCancel(context.Background())
	var buf strings.Builder
	_ = json.NewEncoder(&buf).Encode(req)
	httpReq := httptest.NewRequest(http.MethodPost, "/v1/attack", strings.NewReader(buf.String())).WithContext(ctx)
	rec := httptest.NewRecorder()
	followerDone := make(chan int, 1)
	go func() {
		s.ServeHTTP(rec, httpReq)
		followerDone <- rec.Code
	}()
	waitFlight(t, s, func(st registry.GroupStats) bool { return st.Joins == 1 })
	cancel()
	if code := <-followerDone; code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled waiter got %d, want 503", code)
	}
	var errResp ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &errResp); err != nil || errResp.Kind != "cancelled" {
		t.Fatalf("cancelled waiter kind = %q (%v), want cancelled", errResp.Kind, err)
	}

	// The computation survived the detach: the leader still gets its 200.
	close(release)
	if r := <-leaderDone; r.code != http.StatusOK {
		t.Fatalf("leader got %d after waiter detached, want 200", r.code)
	}
	if st := s.flight.Stats(); st.Detaches != 1 {
		t.Errorf("flight stats = %+v, want 1 detach", st)
	}
}

type reply2 struct {
	code   int
	cached bool
}

// TestLeaderPanicPropagatesToWaiters: a panic inside the shared
// computation is recovered once and every coalesced request receives a
// structured 500; the server keeps serving afterwards.
func TestLeaderPanicPropagatesToWaiters(t *testing.T) {
	in := faultinject.New(1).Arm(faultinject.PointServerPanic, faultinject.Rule{Every: 1})
	s := newTestServer(t, func(c *Config) {
		c.Injector = in
		c.Capacity = 1
	})
	// Park the computation in the admission queue so followers can join
	// deterministically before the (injected) panic fires post-admission.
	if err := s.adm.Acquire(t.Context(), 1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	const n = 3
	codes := make(chan int, n)
	kinds := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, _, errResp := postAttack(t, s, gridAttack())
			codes <- w.Code
			kinds <- errResp.Kind
		}()
	}
	waitFlight(t, s, func(st registry.GroupStats) bool { return st.Leaders == 1 && st.Joins == n-1 })
	s.adm.Release(1) // admit the computation; it panics immediately
	wg.Wait()
	close(codes)
	close(kinds)
	for code := range codes {
		if code != http.StatusInternalServerError {
			t.Errorf("waiter got %d, want 500", code)
		}
	}
	for kind := range kinds {
		if kind != "panic" {
			t.Errorf("waiter kind = %q, want panic", kind)
		}
	}
	if st := s.flight.Stats(); st.Panics != 1 {
		t.Errorf("flight stats = %+v, want exactly 1 recovered panic", st)
	}
	if used := s.adm.Used(); used != 0 {
		t.Fatalf("used units after panic = %d, want 0", used)
	}

	// Nothing poisoned was cached; the disarmed server serves cleanly.
	in.Arm(faultinject.PointServerPanic, faultinject.Rule{})
	if w, resp, _ := postAttack(t, s, gridAttack()); w.Code != http.StatusOK || resp.Cached {
		t.Fatalf("post-panic attack: %d cached=%v, want fresh 200", w.Code, resp.Cached)
	}
}

// TestGenerationBumpRacingComputation: a SetRoad landing between a
// computation's completion and its cache insert must keep the result out
// of the cache — the waiters still get their response, but the next
// request recomputes at the new generation.
func TestGenerationBumpRacingComputation(t *testing.T) {
	s := newTestServer(t, nil)
	shard, _ := s.Registry().Get("")
	bumped := false
	s.testHookBeforeCache = func() {
		if bumped {
			return
		}
		bumped = true
		road := shard.Net().Road(0)
		road.LengthM *= 4
		if err := shard.SetRoad(0, road); err != nil {
			t.Errorf("SetRoad in hook: %v", err)
		}
	}

	req := gridAttack()
	req.Algorithm = "GreedyEdge"
	w, raced, _ := postAttack(t, s, req)
	if w.Code != http.StatusOK {
		t.Fatalf("raced request failed: %d", w.Code)
	}
	if st := s.results.Stats(); st.Entries != 0 {
		t.Fatalf("result computed against generation 0 was cached across the bump (stats %+v)", st)
	}

	// The next identical request keys at generation 1: it must recompute
	// (no cache hit) and agree with an uncached server whose network had
	// the same mutation applied.
	w, fresh, _ := postAttack(t, s, req)
	if w.Code != http.StatusOK || fresh.Cached {
		t.Fatalf("post-race request: %d cached=%v, want fresh 200", w.Code, fresh.Cached)
	}
	uncached := newTestServer(t, func(c *Config) { c.CacheBytes = -1 })
	ushard, _ := uncached.Registry().Get("")
	road := ushard.Net().Road(0)
	road.LengthM *= 4
	if err := ushard.SetRoad(0, road); err != nil {
		t.Fatalf("SetRoad: %v", err)
	}
	_, want, _ := postAttack(t, uncached, req)
	samePayload(t, "post-race recompute", fresh, want)
	_ = raced // the raced response itself is a valid generation-0 result
}

// TestMultiCityRouting: requests route by city name (normalized), unknown
// cities 404, and the default city answers unnamed requests.
func TestMultiCityRouting(t *testing.T) {
	mkShard := func(name string, dim int) *registry.Shard {
		shard, err := registry.NewShard(context.Background(), name, gridNetwork(t, dim), 2)
		if err != nil {
			t.Fatalf("NewShard(%s): %v", name, err)
		}
		return shard
	}
	reg := registry.NewRegistry()
	if err := reg.Add(mkShard("Boston", 4)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(mkShard("providence", 5)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Node 20 exists only on the 5×5 grid: routing decides validity.
	big := AttackRequest{City: "providence", Source: 0, Dest: 20, Rank: 4, TimeoutMS: 30_000}
	if w, resp, _ := postAttack(t, s, big); w.Code != http.StatusOK || resp.City != "providence" {
		t.Fatalf("providence attack: %d city=%q, want 200/providence", w.Code, resp.City)
	}
	big.City = "BOSTON" // normalized lookup, but node 20 is out of range there
	if w, _, errResp := postAttack(t, s, big); w.Code != http.StatusBadRequest || errResp.Kind != "bad_request" {
		t.Fatalf("boston out-of-range: %d/%q, want 400/bad_request", w.Code, errResp.Kind)
	}
	// Empty city falls through to the default (first registered).
	if w, resp, _ := postAttack(t, s, gridAttack()); w.Code != http.StatusOK || resp.City != "boston" {
		t.Fatalf("default-city attack: %d city=%q, want 200/boston", w.Code, resp.City)
	}
	if w, _, errResp := postAttack(t, s, AttackRequest{City: "gotham", Source: 0, Dest: 1, Rank: 1}); w.Code != http.StatusNotFound || errResp.Kind != "unknown_city" {
		t.Fatalf("unknown city: %d/%q, want 404/unknown_city", w.Code, errResp.Kind)
	}

	// Batches route too.
	var raw json.RawMessage
	if w := do(t, s, http.MethodPost, "/v1/batch", BatchRequest{City: "providence", Rank: 3, SourcesPerHospital: 1, Algorithms: []string{"GreedyEdge"}}, &raw); w.Code != http.StatusOK {
		t.Fatalf("providence batch: %d, want 200", w.Code)
	}
	if w := do(t, s, http.MethodPost, "/v1/batch", BatchRequest{City: "gotham", Rank: 3}, &raw); w.Code != http.StatusNotFound {
		t.Fatalf("unknown-city batch: %d, want 404", w.Code)
	}

	// Per-city isolation: a mutation in providence must not invalidate
	// boston's cache entries.
	if _, resp, _ := postAttack(t, s, gridAttack()); !resp.Cached {
		t.Fatal("boston repeat should be cached")
	}
	pshard, _ := reg.Get("providence")
	road := pshard.Net().Road(0)
	road.LengthM *= 2
	if err := pshard.SetRoad(0, road); err != nil {
		t.Fatalf("SetRoad: %v", err)
	}
	if _, resp, _ := postAttack(t, s, gridAttack()); !resp.Cached {
		t.Fatal("providence mutation invalidated boston's cache")
	}
}

// TestRankUnavailableConsumesNoClone: requests that fail during the
// read-only p* phase (rank unavailable on a line graph) never touch the
// clone pool — the pool serves only real attack computations.
func TestRankUnavailableConsumesNoClone(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Net = lineNetwork(t) })
	for i := 0; i < 3; i++ {
		w, _, errResp := postAttack(t, s, AttackRequest{Source: 0, Dest: 2, Rank: 2, Seed: int64(i)})
		if w.Code != http.StatusUnprocessableEntity || errResp.Kind != "rank" {
			t.Fatalf("rank request: %d/%q, want 422/rank", w.Code, errResp.Kind)
		}
	}
	shard, _ := s.Registry().Get("")
	st := shard.Stats()
	if st.PoolHits != 0 || st.PoolMisses != 0 {
		t.Fatalf("rank-unavailable requests touched the clone pool: %+v", st)
	}
}

// TestClonePoolWarmsAcrossRequests: the first computation cuts a fresh
// clone (a counted miss); later distinct computations recycle it.
func TestClonePoolWarmsAcrossRequests(t *testing.T) {
	s := newTestServer(t, nil)
	first := gridAttack()
	first.Algorithm = "GreedyEdge"
	second := first
	second.Seed = first.Seed + 1 // distinct key: forces a second computation
	if w, _, _ := postAttack(t, s, first); w.Code != http.StatusOK {
		t.Fatal("first attack failed")
	}
	if w, _, _ := postAttack(t, s, second); w.Code != http.StatusOK {
		t.Fatal("second attack failed")
	}
	shard, _ := s.Registry().Get("")
	st := shard.Stats()
	if st.PoolMisses != 1 || st.PoolHits != 1 {
		t.Fatalf("pool stats = %+v, want exactly 1 miss (cold) then 1 hit (recycled)", st)
	}
}

// TestHealthzReportsCacheStats: the health body carries cache,
// coalescing, and per-city counters.
func TestHealthzReportsCacheStats(t *testing.T) {
	s := newTestServer(t, nil)
	postAttack(t, s, gridAttack())
	postAttack(t, s, gridAttack()) // cache hit

	var h healthzResponse
	if w := do(t, s, http.MethodGet, "/healthz", nil, &h); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", w.Code)
	}
	if h.Status != "ok" || len(h.Cities) != 1 {
		t.Fatalf("healthz = %+v, want ok with 1 city", h)
	}
	if h.ResultCache.Hits != 1 || h.ResultCache.Entries != 1 {
		t.Fatalf("result cache stats = %+v, want 1 hit, 1 entry", h.ResultCache)
	}
	if h.ResultCache.CapacityBytes <= 0 || h.ResultCache.Bytes <= 0 {
		t.Fatalf("result cache stats = %+v, want non-zero capacity and usage", h.ResultCache)
	}
	if h.Coalescing.Leaders != 1 {
		t.Fatalf("coalescing stats = %+v, want 1 leader", h.Coalescing)
	}
	if h.Cities[0].PoolMisses != 1 {
		t.Fatalf("city stats = %+v, want 1 pool miss", h.Cities[0])
	}
}
