package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"altroute/internal/core"
)

// fakeClock is a manually-advanced clock for deterministic cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// breaker events for the state-machine table tests.
type brkEvent struct {
	// exactly one of these is set:
	record  error         // Record(record)
	advance time.Duration // clock advance
	// allow drives Allow and asserts its results when set.
	allow       bool
	wantProbe   bool
	wantAllowed bool

	wantState BreakerState // state asserted after the event
}

func rec(err error, want BreakerState) brkEvent { return brkEvent{record: err, wantState: want} }
func adv(d time.Duration, want BreakerState) brkEvent {
	return brkEvent{advance: d, wantState: want}
}
func allow(probe, allowed bool, want BreakerState) brkEvent {
	return brkEvent{allow: true, wantProbe: probe, wantAllowed: allowed, wantState: want}
}

func TestBreakerStateMachine(t *testing.T) {
	okErr := error(nil)
	domain := core.ErrInfeasible // solver worked; not a trip-class failure
	timeout := core.ErrTimeout
	panicked := core.ErrPanic

	cfg := BreakerConfig{Threshold: 2, Cooldown: time.Minute, Successes: 2}
	cases := []struct {
		name   string
		events []brkEvent
	}{
		{
			name: "closed stays closed on successes and domain failures",
			events: []brkEvent{
				allow(false, true, BreakerClosed),
				rec(okErr, BreakerClosed),
				rec(domain, BreakerClosed),
				rec(errors.Join(core.ErrBudgetExceeded), BreakerClosed),
			},
		},
		{
			name: "consecutive trips open; success resets the streak",
			events: []brkEvent{
				rec(timeout, BreakerClosed), // 1 of 2
				rec(okErr, BreakerClosed),   // streak reset
				rec(timeout, BreakerClosed), // 1 of 2
				rec(panicked, BreakerOpen),  // 2 of 2 → open
			},
		},
		{
			name: "open rejects until cooldown, then one half-open probe",
			events: []brkEvent{
				rec(timeout, BreakerClosed),
				rec(timeout, BreakerOpen),
				allow(false, false, BreakerOpen),
				adv(30*time.Second, BreakerOpen),
				allow(false, false, BreakerOpen),
				adv(31*time.Second, BreakerOpen),
				allow(true, true, BreakerHalfOpen),   // the probe
				allow(false, false, BreakerHalfOpen), // only one at a time
			},
		},
		{
			name: "half-open probe failure re-opens and restarts cooldown",
			events: []brkEvent{
				rec(timeout, BreakerClosed),
				rec(timeout, BreakerOpen),
				adv(61*time.Second, BreakerOpen),
				allow(true, true, BreakerHalfOpen),
				rec(panicked, BreakerOpen),
				allow(false, false, BreakerOpen), // cooldown restarted
				adv(61*time.Second, BreakerOpen),
				allow(true, true, BreakerHalfOpen),
			},
		},
		{
			name: "half-open closes after enough probe successes",
			events: []brkEvent{
				rec(timeout, BreakerClosed),
				rec(timeout, BreakerOpen),
				adv(61*time.Second, BreakerOpen),
				allow(true, true, BreakerHalfOpen),
				rec(okErr, BreakerHalfOpen), // 1 of 2 successes
				allow(true, true, BreakerHalfOpen),
				rec(domain, BreakerClosed), // 2 of 2 → closed
				allow(false, true, BreakerClosed),
			},
		},
		{
			name: "late result recorded while open is ignored",
			events: []brkEvent{
				rec(timeout, BreakerClosed),
				rec(timeout, BreakerOpen),
				rec(okErr, BreakerOpen),
				rec(timeout, BreakerOpen),
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := &fakeClock{t: time.Unix(0, 0)}
			b := NewBreaker(cfg, clock.now)
			for i, ev := range tc.events {
				switch {
				case ev.allow:
					probe, allowed := b.Allow()
					if probe != ev.wantProbe || allowed != ev.wantAllowed {
						t.Fatalf("event %d: Allow() = (%v, %v), want (%v, %v)",
							i, probe, allowed, ev.wantProbe, ev.wantAllowed)
					}
				case ev.advance != 0:
					clock.advance(ev.advance)
				default:
					b.Record(ev.record)
				}
				if got := b.State(); got != ev.wantState {
					t.Fatalf("event %d: state = %v, want %v", i, got, ev.wantState)
				}
			}
		})
	}
}

func TestBreakerWrappedErrorsClassify(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 1}, clock.now)
	// Wrapped sentinels (as core.RunCtx produces them) must still trip.
	b.Record(errors.Join(errors.New("context"), core.ErrTimeout))
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after wrapped ErrTimeout = %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", b.Trips())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Millisecond, Successes: 1}, clock.now)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if _, allowed := b.Allow(); allowed {
					if j%3 == 0 {
						b.Record(core.ErrTimeout)
					} else {
						b.Record(nil)
					}
				}
				if j%50 == 0 {
					clock.advance(time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	// No assertion beyond the race detector and a sane final state.
	if s := b.State(); s < BreakerClosed || s > BreakerHalfOpen {
		t.Fatalf("final state out of range: %v", s)
	}
}
