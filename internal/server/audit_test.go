package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"altroute/internal/audit"
	"altroute/internal/faultinject"
)

// auditedServer builds a test server with the ledger enabled and the
// group-commit timer effectively disabled, so tests seal explicitly.
func auditedServer(t testing.TB, dir string, mutate func(*Config)) *Server {
	t.Helper()
	return newTestServer(t, func(c *Config) {
		c.AuditDir = dir
		c.AuditFlushEvery = time.Hour
		c.AuditFlushRecords = 1 << 20
		if mutate != nil {
			mutate(c)
		}
	})
}

func TestAuditRecordOnServeAndProof(t *testing.T) {
	dir := t.TempDir()
	s := auditedServer(t, dir, nil)
	defer s.Ledger().Close()

	// A computed result carries a receipt.
	w, resp, _ := postAttack(t, s, gridAttack())
	if w.Code != http.StatusOK {
		t.Fatalf("attack: %d %s", w.Code, w.Body.String())
	}
	if resp.Audit == nil || resp.Audit.Seq != 0 || resp.Audit.Hash == "" {
		t.Fatalf("audit ref = %+v, want seq 0 with a hash", resp.Audit)
	}

	// A cache hit is a served result too: new receipt, Cached flag in the
	// ledger record.
	_, resp2, _ := postAttack(t, s, gridAttack())
	if !resp2.Cached {
		t.Fatal("second identical attack should be cached")
	}
	if resp2.Audit == nil || resp2.Audit.Seq != 1 {
		t.Fatalf("cached audit ref = %+v, want seq 1", resp2.Audit)
	}
	rec, ok := s.Ledger().Record(1)
	if !ok || !rec.Cached || !rec.OK || rec.Kind != "attack" {
		t.Fatalf("ledger record 1 = %+v, %v", rec, ok)
	}

	// A failed attack (rank beyond the path set) is audited with its kind.
	bad := gridAttack()
	bad.Rank = 4000
	if w, _, errResp := postAttack(t, s, bad); w.Code != http.StatusUnprocessableEntity || errResp.Kind != "rank" {
		t.Fatalf("rank failure: %d kind %q", w.Code, errResp.Kind)
	}
	rec, ok = s.Ledger().Record(2)
	if !ok || rec.OK || rec.FailKind != "rank" {
		t.Fatalf("ledger record 2 = %+v, %v, want fail_kind rank", rec, ok)
	}

	// Seal, then fetch and offline-verify the proof for the first result.
	if err := s.Ledger().Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var proof audit.Proof
	if w := do(t, s, http.MethodGet, "/v1/audit/0/proof", nil, &proof); w.Code != http.StatusOK {
		t.Fatalf("proof: %d %s", w.Code, w.Body.String())
	}
	if err := audit.VerifyProof(proof); err != nil {
		t.Fatalf("VerifyProof: %v", err)
	}
	if proof.Record.Hash != resp.Audit.Hash {
		t.Fatalf("proof record hash %s, receipt hash %s", proof.Record.Hash, resp.Audit.Hash)
	}
	if proof.Record.Source != 0 || proof.Record.Dest != 15 || proof.Record.Rank != 4 {
		t.Fatalf("proof carries wrong record: %+v", proof.Record)
	}

	// The on-disk chain verifies end to end.
	if _, err := audit.VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

func TestAuditProofUnsealedUnknownAndDisabled(t *testing.T) {
	s := auditedServer(t, t.TempDir(), nil)
	defer s.Ledger().Close()
	if w, _, _ := postAttack(t, s, gridAttack()); w.Code != http.StatusOK {
		t.Fatalf("attack: %d", w.Code)
	}

	var errResp ErrorResponse
	w := do(t, s, http.MethodGet, "/v1/audit/0/proof", nil, &errResp)
	if w.Code != http.StatusConflict || errResp.Kind != "unsealed" {
		t.Fatalf("pending proof: %d kind %q, want 409 unsealed", w.Code, errResp.Kind)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("unsealed proof response carries no Retry-After")
	}
	if w := do(t, s, http.MethodGet, "/v1/audit/99/proof", nil, &errResp); w.Code != http.StatusNotFound || errResp.Kind != "unknown_record" {
		t.Fatalf("unknown proof: %d kind %q", w.Code, errResp.Kind)
	}
	if w := do(t, s, http.MethodGet, "/v1/audit/bogus/proof", nil, &errResp); w.Code != http.StatusBadRequest {
		t.Fatalf("non-numeric seq: %d", w.Code)
	}

	// Without -audit-dir the endpoint explains itself.
	plain := newTestServer(t, nil)
	if w := do(t, plain, http.MethodGet, "/v1/audit/0/proof", nil, &errResp); w.Code != http.StatusNotFound || errResp.Kind != "audit_disabled" {
		t.Fatalf("disabled proof: %d kind %q", w.Code, errResp.Kind)
	}
	if _, resp, _ := postAttack(t, plain, gridAttack()); resp.Audit != nil {
		t.Fatal("un-audited server attached an audit ref")
	}
}

// TestAuditChainBrokenRefusal tampers with a sealed ledger record on disk
// and restarts the server over it: the server must come up in refuse mode
// — health explains, readyz fails, every work request is 503.
func TestAuditChainBrokenRefusal(t *testing.T) {
	dir := t.TempDir()
	s := auditedServer(t, dir, nil)
	if w, _, _ := postAttack(t, s, gridAttack()); w.Code != http.StatusOK {
		t.Fatalf("attack: %d", w.Code)
	}
	if err := s.Ledger().Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	path := filepath.Join(dir, "ledger.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := auditedServer(t, dir, nil) // constructs despite the broken chain
	if s2.Ledger() != nil {
		t.Fatal("refuse-mode server exposes a ledger")
	}
	w, _, errResp := postAttack(t, s2, gridAttack())
	if w.Code != http.StatusServiceUnavailable || errResp.Kind != "audit_chain_broken" {
		t.Fatalf("attack over broken chain: %d kind %q", w.Code, errResp.Kind)
	}
	var raw json.RawMessage
	if w := do(t, s2, http.MethodPost, "/v1/batch", BatchRequest{Rank: 3, SourcesPerHospital: 1}, &raw); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("batch over broken chain: %d", w.Code)
	}
	var ready readyzResponse
	if w := do(t, s2, http.MethodGet, "/readyz", nil, &ready); w.Code != http.StatusServiceUnavailable || ready.Audit != "audit_chain_broken" {
		t.Fatalf("readyz: %d audit %q", w.Code, ready.Audit)
	}
	var health healthzResponse
	if w := do(t, s2, http.MethodGet, "/healthz", nil, &health); w.Code != http.StatusOK || health.Audit == nil || health.Audit.Error == "" {
		t.Fatalf("healthz must stay live and explain: %d %+v", w.Code, health.Audit)
	}
	if w := do(t, s2, http.MethodGet, "/v1/audit/0/proof", nil, &errResp); w.Code != http.StatusServiceUnavailable || errResp.Kind != "audit_chain_broken" {
		t.Fatalf("proof over broken chain: %d kind %q", w.Code, errResp.Kind)
	}
}

// TestAuditWriteFaultFailsClosed poisons the ledger with an injected
// write fault mid-serve: the response that could not be audited is
// refused, and so is everything after it until restart.
func TestAuditWriteFaultFailsClosed(t *testing.T) {
	inj := faultinject.New(1).Arm(faultinject.PointAuditWrite, faultinject.Rule{OnHit: 1})
	s := auditedServer(t, t.TempDir(), func(c *Config) { c.Injector = inj })

	w, _, errResp := postAttack(t, s, gridAttack())
	if w.Code != http.StatusServiceUnavailable || errResp.Kind != "audit_failed" {
		t.Fatalf("unauditable attack: %d kind %q", w.Code, errResp.Kind)
	}
	// Sticky: the guard refuses before any work happens.
	if w, _, errResp := postAttack(t, s, gridAttack()); w.Code != http.StatusServiceUnavailable || errResp.Kind != "audit_failed" {
		t.Fatalf("attack after poison: %d kind %q", w.Code, errResp.Kind)
	}
	var ready readyzResponse
	if w := do(t, s, http.MethodGet, "/readyz", nil, &ready); w.Code != http.StatusServiceUnavailable || ready.Audit != "audit_failed" {
		t.Fatalf("readyz after poison: %d audit %q", w.Code, ready.Audit)
	}
}

// TestBatchUnitsAudited runs a small batch and checks every computed unit
// landed in the ledger — and that a checkpoint replay does not re-audit.
func TestBatchUnitsAudited(t *testing.T) {
	dir := t.TempDir()
	s := auditedServer(t, dir, func(c *Config) { c.CheckpointDir = t.TempDir() })
	defer s.Ledger().Close()

	req := BatchRequest{ID: "auditbatch", Rank: 3, SourcesPerHospital: 1, Seed: 5, Algorithms: []string{"GreedyEdge"}, CostTypes: []string{"UNIFORM"}}
	var raw json.RawMessage
	if w := do(t, s, http.MethodPost, "/v1/batch", req, &raw); w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, raw)
	}
	seq, _ := s.Ledger().Head()
	if seq == 0 {
		t.Fatal("batch audited no units")
	}
	rec, ok := s.Ledger().Record(0)
	if !ok || rec.Kind != "batch-unit" || rec.Batch != "auditbatch" || rec.Algorithm != "GreedyEdge" {
		t.Fatalf("ledger record 0 = %+v, %v", rec, ok)
	}

	// Re-POST: every unit replays from the checkpoint; nothing new is
	// audited (those units were audited when first computed).
	if w := do(t, s, http.MethodPost, "/v1/batch", req, &raw); w.Code != http.StatusOK {
		t.Fatalf("batch replay: %d", w.Code)
	}
	if seq2, _ := s.Ledger().Head(); seq2 != seq {
		t.Fatalf("replayed batch appended %d new audit records", seq2-seq)
	}
	if err := s.Ledger().Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

// TestHealthzLedgerStats pins the operator-facing counters: appends,
// fsyncs, their coalescing ratio, and chain heads.
func TestHealthzLedgerStats(t *testing.T) {
	s := auditedServer(t, t.TempDir(), nil)
	defer s.Ledger().Close()
	for i := 0; i < 3; i++ {
		req := gridAttack()
		req.Seed = int64(i) // distinct keys: three computed results
		if w, _, _ := postAttack(t, s, req); w.Code != http.StatusOK {
			t.Fatalf("attack %d failed", i)
		}
	}
	if err := s.Ledger().Flush(); err != nil {
		t.Fatal(err)
	}
	var health healthzResponse
	if w := do(t, s, http.MethodGet, "/healthz", nil, &health); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	st := health.Audit
	if st == nil {
		t.Fatal("healthz has no audit stats")
	}
	if st.Records != 3 || st.Appended != 3 || st.Fsyncs != 1 || st.RecordsPerFsync != 3 {
		t.Fatalf("audit stats = %+v", st)
	}
	if st.RecordHead == "" || st.SealHead == "" || st.SealedBatches != 1 || st.Pending != 0 {
		t.Fatalf("audit chain stats = %+v", st)
	}
}
