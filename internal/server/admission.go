package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Admission-control errors, surfaced to clients as structured 503s.
var (
	// ErrQueueFull is returned when the bounded wait queue is at capacity;
	// the client should back off and retry (Retry-After is set).
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrShed is returned when a request's estimated cost exceeds the
	// per-request budget and it is shed without queueing.
	ErrShed = errors.New("server: request shed: estimated cost exceeds per-request budget")
	// ErrDraining is returned when the server has stopped admitting
	// requests because it is shutting down.
	ErrDraining = errors.New("server: draining, not admitting requests")
)

// waiter is one queued acquisition.
type waiter struct {
	n     int
	ready chan struct{}
}

// admission is a FIFO weighted semaphore with a bounded wait queue: the
// server's concurrency budget. Each request acquires its estimated cost in
// units; requests that do not fit wait in FIFO order, and once the queue
// holds maxQueue waiters further requests are rejected immediately with
// ErrQueueFull — the queue is the only place work ever waits, so load
// never accumulates in unbounded goroutines.
type admission struct {
	mu       sync.Mutex
	capacity int
	used     int
	queue    []*waiter
	maxQueue int
}

func newAdmission(capacity, maxQueue int) *admission {
	return &admission{capacity: capacity, maxQueue: maxQueue}
}

// Acquire blocks until n units are granted, the queue rejects the request,
// or ctx dies. n is clamped to [1, capacity] by the caller (see
// estimateUnits); n > capacity can never be granted and returns ErrShed.
func (a *admission) Acquire(ctx context.Context, n int) error {
	if n < 1 {
		n = 1
	}
	if n > a.capacity {
		return ErrShed
	}
	a.mu.Lock()
	if len(a.queue) == 0 && a.used+n <= a.capacity {
		a.used += n
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		return ErrQueueFull
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		granted := true
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				granted = false
				break
			}
		}
		a.mu.Unlock()
		if granted {
			// The grant raced the cancellation: the units are ours, so
			// hand them back before reporting the failure.
			a.Release(n)
		}
		return fmt.Errorf("server: admission wait: %w", context.Cause(ctx))
	}
}

// Release returns n units and grants as many queued waiters as now fit,
// strictly in FIFO order (head-of-line blocking is the price of fairness).
func (a *admission) Release(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used -= n
	if a.used < 0 {
		a.used = 0
	}
	for len(a.queue) > 0 && a.used+a.queue[0].n <= a.capacity {
		head := a.queue[0]
		a.queue = a.queue[1:]
		a.used += head.n
		close(head.ready)
	}
}

// Queued returns the number of waiting requests.
func (a *admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// Used returns the units currently held.
func (a *admission) Used() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// EstimateWork estimates the dominant work of one attack in edge
// relaxations: computing p* and running constraint-generation rounds is
// bounded by Yen's k-shortest search, O(k · (E + V log V)) with k the
// path rank. It is deliberately cheap and coarse — the point is load
// shedding, not profiling.
func EstimateWork(rank, nodes, edges int) float64 {
	if rank < 1 {
		rank = 1
	}
	v := float64(nodes)
	if v < 2 {
		v = 2
	}
	return float64(rank) * (float64(edges) + v*math.Log2(v))
}

// estimateUnits converts estimated work into admission units: 1 unit per
// unitWork edge relaxations, minimum 1. The caller compares the result
// against the per-request budget to decide shedding.
func estimateUnits(work, unitWork float64) int {
	if unitWork <= 0 || work <= unitWork {
		return 1
	}
	return int(math.Ceil(work / unitWork))
}
