package server

import (
	"errors"
	"sync"
	"time"

	"altroute/internal/core"
)

// BreakerState is one of the three circuit-breaker states.
type BreakerState int

const (
	// BreakerClosed is the healthy state: LP-PathCover requests run the LP.
	BreakerClosed BreakerState = iota
	// BreakerOpen means the LP solver is considered broken: LP-PathCover
	// requests are rerouted to GreedyPathCover until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a single probe request through to the LP while
	// everyone else stays on the greedy route; the probe's outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the LP circuit breaker. The zero value uses the
// defaults noted per field.
type BreakerConfig struct {
	// Threshold is the number of consecutive trip-class failures
	// (ErrTimeout or ErrPanic) that opens the breaker. Default 3.
	Threshold int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through. Default 10s.
	Cooldown time.Duration
	// Successes is the number of consecutive successful probes that close
	// a half-open breaker. Default 2.
	Successes int
}

func (c *BreakerConfig) fill() {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Successes <= 0 {
		c.Successes = 2
	}
}

// Breaker is a circuit breaker guarding the LP-PathCover solver. The
// attack handlers consult Allow before running the LP; when it reports
// false they substitute GreedyPathCover (surfaced to the client as a
// Degraded result), so a systematically failing LP degrades the service
// instead of consuming the concurrency budget with doomed solves.
//
// Trip-class outcomes are core.ErrTimeout and core.ErrPanic: failures
// that say the solver is unhealthy. Domain failures (infeasible, budget,
// invalid problem) mean the solver did its job and count as successes.
//
// Breaker is safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time

	state    BreakerState
	fails    int // consecutive trip-class failures while closed
	okProbes int // consecutive successful probes while half-open
	probing  bool
	openedAt time.Time
	trips    int // lifetime open transitions, for stats
}

// NewBreaker returns a closed breaker. now is the clock used for cooldown
// timing; nil uses the wall clock.
func NewBreaker(cfg BreakerConfig, now func() time.Time) *Breaker {
	cfg.fill()
	if now == nil {
		now = time.Now //lint:allow wallclock breaker cooldown is inherently wall-clock; tests inject a fake clock
	}
	return &Breaker{cfg: cfg, now: now}
}

// Allow reports whether an LP-PathCover request may run the LP right now.
// probe is true when the request was admitted as the half-open probe; its
// outcome MUST be reported back through Record or the breaker will stay
// half-open with its one probe slot occupied.
func (b *Breaker) Allow() (probe, allowed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.okProbes = 0
		b.probing = true
		return true, true
	default: // BreakerHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// Record reports the outcome of an LP run admitted by Allow. err nil (or
// a non-trip-class error) counts as a success.
func (b *Breaker) Record(err error) {
	trip := errors.Is(err, core.ErrTimeout) || errors.Is(err, core.ErrPanic)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if !trip {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.probing = false
		if trip {
			b.open()
			return
		}
		b.okProbes++
		if b.okProbes >= b.cfg.Successes {
			b.state = BreakerClosed
			b.fails = 0
		}
	case BreakerOpen:
		// A result from a request admitted before the breaker opened;
		// it carries no information the open transition didn't already
		// account for.
	}
}

// open transitions to BreakerOpen. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.okProbes = 0
	b.probing = false
	b.trips++
}

// State returns the current state (transitioning open→half-open lazily is
// Allow's job, so State can report open past the cooldown).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
