package server

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"altroute/internal/faultinject"
)

// chaosServer builds a server with a fake breaker clock and an armed
// injector, for deterministic failure-path tests.
func chaosServer(t testing.TB, in *faultinject.Injector, brk BreakerConfig) (*Server, *fakeClock) {
	t.Helper()
	clock := &fakeClock{t: time.Unix(0, 0)}
	s := newTestServer(t, func(c *Config) {
		c.Injector = in
		c.Breaker = brk
		c.clock = clock.now
	})
	return s, clock
}

func TestChaosStalledLPTripsBreakerThenRecovers(t *testing.T) {
	in := faultinject.New(1).Arm(faultinject.PointAttackStall, faultinject.Rule{Every: 1})
	s, clock := chaosServer(t, in, BreakerConfig{Threshold: 2, Cooldown: 10 * time.Second, Successes: 1})

	// Two consecutive stalled LP solves: 504s that open the breaker.
	for i := 0; i < 2; i++ {
		req := gridAttack()
		req.TimeoutMS = 50
		w, _, errResp := postAttack(t, s, req)
		if w.Code != http.StatusGatewayTimeout || errResp.Kind != "timeout" {
			t.Fatalf("stalled attack %d: %d/%q, want 504/timeout", i, w.Code, errResp.Kind)
		}
	}
	if got := s.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker after %d timeouts = %v, want open", 2, got)
	}

	// The LP recovers (stall disarmed), but the breaker is still open:
	// LP requests are rerouted to GreedyPathCover and marked Degraded.
	in.Arm(faultinject.PointAttackStall, faultinject.Rule{})
	w, resp, _ := postAttack(t, s, gridAttack())
	if w.Code != http.StatusOK {
		t.Fatalf("rerouted attack: %d, want 200", w.Code)
	}
	if !resp.Degraded || resp.Algorithm != "GreedyPathCover" || resp.Requested != "LP-PathCover" {
		t.Fatalf("rerouted attack = %+v, want degraded greedy substitution", resp)
	}
	if resp.Breaker != "open" {
		t.Fatalf("rerouted attack breaker = %q, want open", resp.Breaker)
	}

	// Non-LP traffic never touches the breaker and stays healthy.
	greedy := gridAttack()
	greedy.Algorithm = "GreedyEdge"
	if w, resp, _ := postAttack(t, s, greedy); w.Code != http.StatusOK || resp.Degraded {
		t.Fatalf("greedy during open breaker: %d degraded=%v, want healthy 200", w.Code, resp.Degraded)
	}

	// After the cooldown a half-open probe runs the real LP, succeeds, and
	// closes the breaker again.
	clock.advance(11 * time.Second)
	w, resp, _ = postAttack(t, s, gridAttack())
	if w.Code != http.StatusOK || resp.Degraded || resp.Algorithm != "LP-PathCover" {
		t.Fatalf("probe attack = %d %+v, want healthy LP 200", w.Code, resp)
	}
	if got := s.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	if s.Breaker().Trips() != 1 {
		t.Fatalf("Trips() = %d, want 1", s.Breaker().Trips())
	}
}

func TestChaosPanickedLPTripsBreaker(t *testing.T) {
	in := faultinject.New(1).Arm(faultinject.PointAttackPanic, faultinject.Rule{Every: 1})
	s, _ := chaosServer(t, in, BreakerConfig{Threshold: 1, Cooldown: time.Hour, Successes: 1})

	w, _, errResp := postAttack(t, s, gridAttack())
	if w.Code != http.StatusInternalServerError || errResp.Kind != "panic" {
		t.Fatalf("panicked attack: %d/%q, want 500/panic", w.Code, errResp.Kind)
	}
	if got := s.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker after ErrPanic = %v, want open", got)
	}

	// The panic was recovered inside core; the next (rerouted) request
	// must see a clean pooled network and succeed.
	in.Arm(faultinject.PointAttackPanic, faultinject.Rule{})
	if w, resp, _ := postAttack(t, s, gridAttack()); w.Code != http.StatusOK || !resp.Degraded {
		t.Fatalf("post-panic attack: %d degraded=%v, want degraded 200", w.Code, resp.Degraded)
	}
}

func TestChaosHandlerPanicIsolated(t *testing.T) {
	// PointServerPanic unwinds the HTTP handler itself (outside
	// core.RunCtx's recover); ServeHTTP turns it into a structured 500 and
	// the process — and subsequent requests — survive.
	in := faultinject.New(1).Arm(faultinject.PointServerPanic, faultinject.Rule{OnHit: 1})
	s, _ := chaosServer(t, in, BreakerConfig{})

	w, _, errResp := postAttack(t, s, gridAttack())
	if w.Code != http.StatusInternalServerError || errResp.Kind != "panic" {
		t.Fatalf("handler panic: %d/%q, want 500/panic", w.Code, errResp.Kind)
	}

	// The admission units the panicked request held were released by its
	// defers, so the server is not leaking budget.
	if used := s.adm.Used(); used != 0 {
		t.Fatalf("used units after panic = %d, want 0", used)
	}
	if w, resp, _ := postAttack(t, s, gridAttack()); w.Code != http.StatusOK || resp.Degraded {
		t.Fatalf("attack after handler panic: %d degraded=%v, want healthy 200", w.Code, resp.Degraded)
	}
	if got := s.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker = %v, want closed (handler panic before Allow records nothing)", got)
	}
}

func TestChaosConcurrentMixedTraffic(t *testing.T) {
	// Probabilistic panics under concurrent mixed traffic: every response
	// must be structured (200 or a typed error), the process must survive,
	// and the admission budget must drain back to zero. Run with -race.
	in := faultinject.New(42).Arm(faultinject.PointAttackPanic, faultinject.Rule{Prob: 0.3})
	s, _ := chaosServer(t, in, BreakerConfig{Threshold: 3, Cooldown: time.Millisecond, Successes: 1})

	algs := []string{"", "GreedyEdge", "GreedyPathCover", "GreedyEig"}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := gridAttack()
			req.Algorithm = algs[i%len(algs)]
			req.Seed = int64(i)
			w, _, errResp := postAttack(t, s, req)
			switch w.Code {
			case http.StatusOK:
			case http.StatusInternalServerError:
				if errResp.Kind != "panic" {
					t.Errorf("request %d: 500 with kind %q", i, errResp.Kind)
				}
			case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				// Backpressure under load is a legitimate outcome.
			default:
				t.Errorf("request %d: unexpected status %d (%+v)", i, w.Code, errResp)
			}
		}(i)
	}
	wg.Wait()

	if used := s.adm.Used(); used != 0 {
		t.Fatalf("used units after churn = %d, want 0", used)
	}
	// The server still serves healthy traffic once the chaos is disarmed.
	in.Arm(faultinject.PointAttackPanic, faultinject.Rule{})
	req := gridAttack()
	req.Algorithm = "GreedyEdge"
	if w, _, _ := postAttack(t, s, req); w.Code != http.StatusOK {
		t.Fatalf("post-chaos attack: %d, want 200", w.Code)
	}
}
