package osm

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// Write serializes net as OSM XML. Every enabled directed segment becomes
// its own single-segment oneway way carrying the road attributes as tags
// (maxspeed in km/h, width in meters, plus a custom altroute:artificial
// marker), so Parse(Write(net)) reconstructs the same directed topology and
// attributes. POIs are written as amenity-tagged standalone nodes.
func Write(w io.Writer, net *roadnet.Network) error {
	bw := bufio.NewWriter(w)
	g := net.Graph()

	fprintf := func(format string, args ...any) {
		fmt.Fprintf(bw, format, args...)
	}
	fprintf("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")
	fprintf("<osm version=\"0.6\" generator=\"altroute\">\n")

	for n := 0; n < net.NumIntersections(); n++ {
		p := net.Point(graph.NodeID(n))
		fprintf("  <node id=\"%d\" lat=\"%.7f\" lon=\"%.7f\"/>\n", n+1, p.Lat, p.Lon)
	}

	poiBase := int64(net.NumIntersections() + 1)
	for i, poi := range net.POIs() {
		fprintf("  <node id=\"%d\" lat=\"%.7f\" lon=\"%.7f\">\n", poiBase+int64(i), poi.Loc.Lat, poi.Loc.Lon)
		fprintf("    <tag k=\"amenity\" v=\"%s\"/>\n", xmlEscape(poi.Kind))
		fprintf("    <tag k=\"name\" v=\"%s\"/>\n", xmlEscape(poi.Name))
		fprintf("  </node>\n")
	}

	wayID := int64(1)
	for e := 0; e < net.NumSegments(); e++ {
		id := graph.EdgeID(e)
		if g.EdgeDisabled(id) {
			continue
		}
		arc := g.Arc(id)
		r := net.Road(id)
		fprintf("  <way id=\"%d\">\n", wayID)
		wayID++
		fprintf("    <nd ref=\"%d\"/>\n", int64(arc.From)+1)
		fprintf("    <nd ref=\"%d\"/>\n", int64(arc.To)+1)
		fprintf("    <tag k=\"highway\" v=\"%s\"/>\n", r.Class.String())
		fprintf("    <tag k=\"oneway\" v=\"yes\"/>\n")
		fprintf("    <tag k=\"maxspeed\" v=\"%.3f\"/>\n", r.SpeedMS*3.6)
		fprintf("    <tag k=\"lanes\" v=\"%d\"/>\n", r.Lanes)
		fprintf("    <tag k=\"width\" v=\"%.3f\"/>\n", r.WidthM)
		if r.Name != "" {
			fprintf("    <tag k=\"name\" v=\"%s\"/>\n", xmlEscape(r.Name))
		}
		if r.Artificial {
			fprintf("    <tag k=\"altroute:artificial\" v=\"yes\"/>\n")
		}
		fprintf("  </way>\n")
	}
	fprintf("</osm>\n")
	return bw.Flush()
}

// WriteFile writes net as OSM XML to path.
func WriteFile(path string, net *roadnet.Network) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("osm: %w", err)
	}
	if err := Write(f, net); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("osm: %w", err)
	}
	return nil
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		case '\'':
			out = append(out, "&apos;"...)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
