// Package osm parses OpenStreetMap XML into road networks and writes road
// networks back out as OSM XML. The paper builds its city graphs from OSM
// extracts [16]; this parser makes real extracts drop-in usable, while the
// writer round-trips synthetic cities (and provides test fixtures) in the
// same format.
//
// Supported input subset: <node> elements with id/lat/lon and tags, and
// <way> elements with <nd ref> node references and tags. Ways are imported
// when their highway tag is a drivable class; oneway, maxspeed (km/h
// default, "mph" suffix honored), lanes, width, and name tags are applied.
// Nodes tagged amenity=hospital become hospital POIs, optionally attached
// to the network with the §III-A snapping surgery.
package osm

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// ErrNoRoadData is returned when the input contains no drivable ways.
var ErrNoRoadData = errors.New("osm: input contains no drivable ways")

// ParseOptions configures Parse.
type ParseOptions struct {
	// Name labels the resulting network. Defaults to "osm".
	Name string
	// AttachHospitals runs the POI attachment surgery for every
	// amenity=hospital node after the road graph is built.
	AttachHospitals bool
	// LargestComponent restricts the result to its largest strongly
	// connected component (the paper's preprocessing). Attachment of
	// hospitals happens after the restriction.
	LargestComponent bool
}

// xmlNode mirrors an OSM <node>.
type xmlNode struct {
	ID   int64    `xml:"id,attr"`
	Lat  float64  `xml:"lat,attr"`
	Lon  float64  `xml:"lon,attr"`
	Tags []xmlTag `xml:"tag"`
}

// xmlWay mirrors an OSM <way>.
type xmlWay struct {
	ID   int64    `xml:"id,attr"`
	Refs []xmlRef `xml:"nd"`
	Tags []xmlTag `xml:"tag"`
}

type xmlRef struct {
	Ref int64 `xml:"ref,attr"`
}

type xmlTag struct {
	K string `xml:"k,attr"`
	V string `xml:"v,attr"`
}

func tagMap(tags []xmlTag) map[string]string {
	m := make(map[string]string, len(tags))
	for _, t := range tags {
		m[t.K] = t.V
	}
	return m
}

// drivable reports whether an OSM highway tag value is a road cars use.
func drivable(highway string) bool {
	switch highway {
	case "motorway", "motorway_link", "trunk", "trunk_link",
		"primary", "primary_link", "secondary", "secondary_link",
		"tertiary", "tertiary_link", "residential", "living_street",
		"unclassified", "service":
		return true
	default:
		return false
	}
}

// ParseSpeed converts an OSM maxspeed value to meters/second. Bare numbers
// are km/h per the OSM default; "mph" and "km/h"/"kmh" suffixes are
// honored. Unparseable values return 0 (meaning "use class default").
func ParseSpeed(v string) float64 {
	v = strings.TrimSpace(strings.ToLower(v))
	if v == "" {
		return 0
	}
	factor := 1000.0 / 3600.0 // km/h -> m/s
	for _, suf := range []struct {
		s string
		f float64
	}{
		{"mph", 1609.344 / 3600.0},
		{"km/h", 1000.0 / 3600.0},
		{"kmh", 1000.0 / 3600.0},
		{"kph", 1000.0 / 3600.0},
	} {
		if strings.HasSuffix(v, suf.s) {
			v = strings.TrimSpace(strings.TrimSuffix(v, suf.s))
			factor = suf.f
			break
		}
	}
	n, err := strconv.ParseFloat(v, 64)
	// ParseFloat accepts "nan" and "inf", and NaN compares false against
	// every threshold — without the explicit checks a maxspeed of "NaN"
	// would flow into the TIME weights untouched.
	if err != nil || math.IsNaN(n) || math.IsInf(n, 0) || n <= 0 {
		return 0
	}
	return n * factor
}

// ParseWidth converts an OSM width value ("7.5", "7.5 m", "24'") to
// meters; unparseable values return 0.
func ParseWidth(v string) float64 {
	v = strings.TrimSpace(strings.ToLower(v))
	if v == "" {
		return 0
	}
	factor := 1.0
	switch {
	case strings.HasSuffix(v, "m"):
		v = strings.TrimSpace(strings.TrimSuffix(v, "m"))
	case strings.HasSuffix(v, "'"):
		v = strings.TrimSpace(strings.TrimSuffix(v, "'"))
		factor = 0.3048
	case strings.HasSuffix(v, "ft"):
		v = strings.TrimSpace(strings.TrimSuffix(v, "ft"))
		factor = 0.3048
	}
	n, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(n) || math.IsInf(n, 0) || n <= 0 {
		return 0
	}
	return n * factor
}

// Parse reads OSM XML from r and builds a road network.
func Parse(r io.Reader, opts ParseOptions) (*roadnet.Network, error) {
	if opts.Name == "" {
		opts.Name = "osm"
	}
	dec := xml.NewDecoder(r)

	nodes := make(map[int64]xmlNode)
	var ways []xmlWay
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("osm: parse: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch start.Name.Local {
		case "node":
			var n xmlNode
			if err := dec.DecodeElement(&n, &start); err != nil {
				return nil, fmt.Errorf("osm: node: %w", err)
			}
			nodes[n.ID] = n
		case "way":
			var w xmlWay
			if err := dec.DecodeElement(&w, &start); err != nil {
				return nil, fmt.Errorf("osm: way: %w", err)
			}
			ways = append(ways, w)
		}
	}

	// Reject corrupt coordinates before any geometry is derived from them:
	// a single NaN latitude would otherwise surface as a NaN haversine
	// length on every incident road.
	for id, n := range nodes {
		if !(n.Lat >= -90 && n.Lat <= 90) || !(n.Lon >= -180 && n.Lon <= 180) {
			return nil, fmt.Errorf("osm: node %d: %w: coordinates (%v, %v)",
				id, graph.ErrBadGraph, n.Lat, n.Lon)
		}
	}

	net := roadnet.NewNetwork(opts.Name)
	id2node := make(map[int64]graph.NodeID)
	intern := func(osmID int64) (graph.NodeID, bool) {
		if nid, ok := id2node[osmID]; ok {
			return nid, true
		}
		n, ok := nodes[osmID]
		if !ok {
			return graph.InvalidNode, false
		}
		nid := net.AddIntersection(geo.Point{Lat: n.Lat, Lon: n.Lon})
		id2node[osmID] = nid
		return nid, true
	}

	roadsAdded := 0
	for _, w := range ways {
		tags := tagMap(w.Tags)
		highway := tags["highway"]
		if !drivable(highway) {
			continue
		}
		road := roadnet.Road{
			Class:      roadnet.ParseRoadClass(highway),
			SpeedMS:    ParseSpeed(tags["maxspeed"]),
			WidthM:     ParseWidth(tags["width"]),
			Name:       tags["name"],
			Artificial: tags["altroute:artificial"] == "yes",
			OSMWayID:   w.ID,
		}
		if lanes, err := strconv.Atoi(strings.TrimSpace(tags["lanes"])); err == nil && lanes > 0 {
			road.Lanes = lanes
		}
		oneway := tags["oneway"]
		refs := w.Refs
		if oneway == "-1" { // reversed one-way
			refs = reverseRefs(refs)
			oneway = "yes"
		}
		for i := 0; i+1 < len(refs); i++ {
			from, okF := intern(refs[i].Ref)
			to, okT := intern(refs[i+1].Ref)
			if !okF || !okT {
				continue // dangling <nd> reference: skip segment
			}
			seg := road
			seg.LengthM = 0 // recomputed from coordinates by AddRoad
			var err error
			if oneway == "yes" || oneway == "true" || oneway == "1" {
				_, err = net.AddRoad(from, to, seg)
			} else {
				_, _, err = net.AddTwoWayRoad(from, to, seg)
			}
			if err != nil {
				return nil, fmt.Errorf("osm: way %d: %w", w.ID, err)
			}
			roadsAdded++
		}
	}
	if roadsAdded == 0 {
		return nil, ErrNoRoadData
	}

	if opts.LargestComponent {
		net, _ = net.LargestComponent()
	}
	if opts.AttachHospitals {
		for _, n := range nodes {
			tags := tagMap(n.Tags)
			if tags["amenity"] != "hospital" {
				continue
			}
			name := tags["name"]
			if name == "" {
				name = fmt.Sprintf("hospital-%d", n.ID)
			}
			if _, err := net.AttachPOI(name, "hospital", geo.Point{Lat: n.Lat, Lon: n.Lon}); err != nil {
				return nil, fmt.Errorf("osm: hospital %q: %w", name, err)
			}
		}
	}
	return net, nil
}

func reverseRefs(refs []xmlRef) []xmlRef {
	out := make([]xmlRef, len(refs))
	for i, r := range refs {
		out[len(refs)-1-i] = r
	}
	return out
}

// ParseFile parses the OSM XML file at path.
func ParseFile(path string, opts ParseOptions) (*roadnet.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("osm: %w", err)
	}
	defer f.Close()
	return Parse(f, opts)
}
