package osm

import (
	"strings"
	"testing"

	"altroute/internal/graph"
)

// TestParseMalformedInputs feeds the parser a battery of structurally
// damaged documents; none may panic, and each must either error cleanly or
// produce a consistent network.
func TestParseMalformedInputs(t *testing.T) {
	tests := []struct {
		name    string
		input   string
		wantErr bool
	}{
		{"empty document", "", true},
		{"truncated element", `<osm><node id="1" lat="1" lon="1"`, true},
		{"mismatched tags", `<osm><node id="1"></way></osm>`, true},
		{"way before nodes", `<osm>
			<way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="residential"/></way>
			<node id="1" lat="1" lon="1"/><node id="2" lat="1.001" lon="1"/>
		</osm>`, false}, // nodes collected in a pre-pass: order independent
		{"self referencing way", `<osm>
			<node id="1" lat="1" lon="1"/>
			<way id="1"><nd ref="1"/><nd ref="1"/><tag k="highway" v="residential"/></way>
		</osm>`, false}, // zero-length self loop: normalized to length 1 m
		{"single nd way", `<osm>
			<node id="1" lat="1" lon="1"/>
			<way id="1"><nd ref="1"/><tag k="highway" v="residential"/></way>
		</osm>`, true}, // no segments at all
		{"garbage attribute types", `<osm>
			<node id="x" lat="y" lon="z"/>
			<way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="residential"/></way>
		</osm>`, true},
		{"unknown elements ignored", `<osm>
			<bounds minlat="0" maxlat="1"/>
			<relation id="9"><member type="way" ref="1"/></relation>
			<node id="1" lat="1" lon="1"/><node id="2" lat="1.001" lon="1"/>
			<way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="residential"/></way>
		</osm>`, false},
		{"bogus lanes and speeds fall back to defaults", `<osm>
			<node id="1" lat="1" lon="1"/><node id="2" lat="1.001" lon="1"/>
			<way id="1"><nd ref="1"/><nd ref="2"/>
				<tag k="highway" v="residential"/>
				<tag k="lanes" v="many"/>
				<tag k="maxspeed" v="fast"/>
				<tag k="width" v="wide"/>
			</way>
		</osm>`, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			net, err := Parse(strings.NewReader(tt.input), ParseOptions{})
			if tt.wantErr {
				if err == nil {
					t.Errorf("Parse succeeded with %d segments, want error", net.NumSegments())
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			// Consistency: every enabled segment has positive length,
			// speed, and lanes.
			for e := 0; e < net.NumSegments(); e++ {
				r := net.Road(graph.EdgeID(e))
				if r.LengthM <= 0 || r.SpeedMS <= 0 || r.Lanes <= 0 {
					t.Errorf("segment %d has non-positive attributes: %+v", e, r)
				}
			}
		})
	}
}

// TestParseHugeNodeIDs checks 64-bit OSM IDs survive.
func TestParseHugeNodeIDs(t *testing.T) {
	input := `<osm>
		<node id="9223372036854775806" lat="1" lon="1"/>
		<node id="9223372036854775805" lat="1.001" lon="1"/>
		<way id="9223372036854775804">
			<nd ref="9223372036854775806"/><nd ref="9223372036854775805"/>
			<tag k="highway" v="residential"/>
		</way>
	</osm>`
	net, err := Parse(strings.NewReader(input), ParseOptions{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if net.NumSegments() != 2 {
		t.Errorf("segments = %d, want 2", net.NumSegments())
	}
	if net.Road(0).OSMWayID != 9223372036854775804 {
		t.Errorf("way ID = %d", net.Road(0).OSMWayID)
	}
}

// TestParseDuplicateNodeDefinitions: the last definition wins without
// duplicating intersections referenced by ways.
func TestParseDuplicateNodeDefinitions(t *testing.T) {
	input := `<osm>
		<node id="1" lat="1" lon="1"/>
		<node id="1" lat="2" lon="2"/>
		<node id="2" lat="2.001" lon="2"/>
		<way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="residential"/></way>
	</osm>`
	net, err := Parse(strings.NewReader(input), ParseOptions{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if net.NumIntersections() != 2 {
		t.Errorf("intersections = %d, want 2", net.NumIntersections())
	}
	if p := net.Point(0); p.Lat != 2 {
		t.Errorf("node 1 lat = %v, want last definition (2)", p.Lat)
	}
}
