package osm

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// fixture is a hand-written OSM extract: a 2x2 block with a one-way
// street, a reversed one-way, a footway (ignored), and a hospital node.
const fixture = `<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
  <node id="101" lat="42.3600" lon="-71.0600"/>
  <node id="102" lat="42.3600" lon="-71.0580"/>
  <node id="103" lat="42.3620" lon="-71.0600"/>
  <node id="104" lat="42.3620" lon="-71.0580"/>
  <node id="200" lat="42.3611" lon="-71.0579">
    <tag k="amenity" v="hospital"/>
    <tag k="name" v="Test General"/>
  </node>
  <way id="1">
    <nd ref="101"/>
    <nd ref="102"/>
    <tag k="highway" v="residential"/>
    <tag k="name" v="Alpha St"/>
  </way>
  <way id="2">
    <nd ref="101"/>
    <nd ref="103"/>
    <tag k="highway" v="primary"/>
    <tag k="oneway" v="yes"/>
    <tag k="maxspeed" v="30 mph"/>
    <tag k="lanes" v="3"/>
    <tag k="width" v="11.5"/>
  </way>
  <way id="3">
    <nd ref="102"/>
    <nd ref="104"/>
    <tag k="highway" v="secondary"/>
    <tag k="oneway" v="-1"/>
  </way>
  <way id="4">
    <nd ref="103"/>
    <nd ref="104"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="5">
    <nd ref="101"/>
    <nd ref="104"/>
    <tag k="highway" v="footway"/>
  </way>
  <way id="6">
    <nd ref="103"/>
    <nd ref="999"/>
    <tag k="highway" v="residential"/>
  </way>
</osm>`

func parseFixture(t *testing.T, opts ParseOptions) *roadnet.Network {
	t.Helper()
	net, err := Parse(strings.NewReader(fixture), opts)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return net
}

func TestParseBasicTopology(t *testing.T) {
	net := parseFixture(t, ParseOptions{Name: "fix"})
	if net.Name() != "fix" {
		t.Errorf("Name = %q", net.Name())
	}
	if got := net.NumIntersections(); got != 4 {
		t.Fatalf("intersections = %d, want 4 (footway and dangling refs skipped)", got)
	}
	// Way 1 two-way (2 edges), way 2 one-way (1), way 3 reversed one-way
	// (1), way 4 two-way (2). Total 6.
	if got := net.NumSegments(); got != 6 {
		t.Errorf("segments = %d, want 6", got)
	}
}

func TestParseAttributes(t *testing.T) {
	net := parseFixture(t, ParseOptions{})
	g := net.Graph()

	var oneway graph.EdgeID = graph.InvalidEdge
	for e := 0; e < net.NumSegments(); e++ {
		if net.Road(graph.EdgeID(e)).OSMWayID == 2 {
			oneway = graph.EdgeID(e)
			break
		}
	}
	if oneway == graph.InvalidEdge {
		t.Fatal("way 2 not imported")
	}
	r := net.Road(oneway)
	if r.Class != roadnet.ClassPrimary {
		t.Errorf("class = %v", r.Class)
	}
	if math.Abs(r.SpeedMS-13.4112) > 0.001 {
		t.Errorf("speed = %v, want 13.411 (30 mph)", r.SpeedMS)
	}
	if r.Lanes != 3 || math.Abs(r.WidthM-11.5) > 1e-9 {
		t.Errorf("lanes/width = %d/%v", r.Lanes, r.WidthM)
	}
	if r.LengthM < 200 || r.LengthM > 250 {
		t.Errorf("length = %v, want ~222 (haversine of 0.002 deg lat)", r.LengthM)
	}
	// One-way: no reverse edge for way 2's pair.
	arc := g.Arc(oneway)
	if g.FindEdge(arc.To, arc.From) != graph.InvalidEdge {
		t.Error("one-way street has a reverse edge")
	}
}

func TestParseReversedOneway(t *testing.T) {
	net := parseFixture(t, ParseOptions{})
	// Way 3: 102 -> 104 tagged oneway=-1, so traffic flows 104 -> 102.
	var found bool
	for e := 0; e < net.NumSegments(); e++ {
		r := net.Road(graph.EdgeID(e))
		if r.OSMWayID != 3 {
			continue
		}
		found = true
		arc := net.Graph().Arc(graph.EdgeID(e))
		from := net.Point(arc.From)
		to := net.Point(arc.To)
		// 104 is the northern node (lat 42.3620), 102 southern (42.3600).
		if !(from.Lat > to.Lat) {
			t.Errorf("reversed oneway flows %v -> %v, want north to south", from, to)
		}
	}
	if !found {
		t.Fatal("way 3 not imported")
	}
}

func TestParseHospitals(t *testing.T) {
	net := parseFixture(t, ParseOptions{AttachHospitals: true})
	hs := net.POIsOfKind("hospital")
	if len(hs) != 1 || hs[0].Name != "Test General" {
		t.Fatalf("hospitals = %v", hs)
	}
	if hs[0].Node == graph.InvalidNode {
		t.Error("hospital not attached")
	}
	// Skipping attachment must leave no POIs.
	net2 := parseFixture(t, ParseOptions{})
	if len(net2.POIs()) != 0 {
		t.Error("POIs attached without AttachHospitals")
	}
}

func TestParseLargestComponent(t *testing.T) {
	net := parseFixture(t, ParseOptions{LargestComponent: true})
	g := net.Graph()
	if _, count := graph.StronglyConnectedComponents(g); count != 1 {
		t.Errorf("largest component has %d SCCs, want 1", count)
	}
	if net.NumIntersections() == 0 {
		t.Error("largest component empty")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("<osm></osm>"), ParseOptions{}); !errors.Is(err, ErrNoRoadData) {
		t.Errorf("empty osm err = %v, want ErrNoRoadData", err)
	}
	if _, err := Parse(strings.NewReader("not xml <<<"), ParseOptions{}); err == nil {
		t.Error("malformed XML accepted")
	}
	if _, err := Parse(strings.NewReader(`<osm><way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="footway"/></way></osm>`), ParseOptions{}); !errors.Is(err, ErrNoRoadData) {
		t.Error("footway-only input should have no road data")
	}
	if _, err := ParseFile("/nonexistent/path.osm", ParseOptions{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseRejectsBadCoordinates(t *testing.T) {
	cases := map[string]string{
		"NaN latitude":       `lat="NaN" lon="-71.06"`,
		"Inf longitude":      `lat="42.36" lon="Inf"`,
		"latitude past 90":   `lat="91.5" lon="-71.06"`,
		"longitude past 180": `lat="42.36" lon="-200"`,
	}
	for name, attrs := range cases {
		t.Run(name, func(t *testing.T) {
			doc := `<osm>
  <node id="1" ` + attrs + `/>
  <node id="2" lat="42.3601" lon="-71.0601"/>
  <way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="residential"/></way>
</osm>`
			_, err := Parse(strings.NewReader(doc), ParseOptions{})
			if !errors.Is(err, graph.ErrBadGraph) {
				t.Fatalf("Parse = %v, want graph.ErrBadGraph", err)
			}
		})
	}
}

func TestParseSpeed(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"", 0},
		{"50", 13.888888888888889},
		{"50 km/h", 13.888888888888889},
		{"50kmh", 13.888888888888889},
		{"30 mph", 13.4112},
		{"30mph", 13.4112},
		{"bogus", 0},
		{"-5", 0},
		// strconv.ParseFloat accepts these, and NaN defeats the <= 0
		// check — they must still fall back to the class default.
		{"NaN", 0},
		{"Inf", 0},
		{"+Inf mph", 0},
		{"-Inf", 0},
	}
	for _, tt := range tests {
		if got := ParseSpeed(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("ParseSpeed(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseWidth(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"", 0},
		{"7.5", 7.5},
		{"7.5 m", 7.5},
		{"24'", 24 * 0.3048},
		{"24 ft", 24 * 0.3048},
		{"junk", 0},
		{"NaN", 0},
		{"Inf m", 0},
	}
	for _, tt := range tests {
		if got := ParseWidth(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("ParseWidth(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRoundTripSyntheticCity(t *testing.T) {
	orig, err := citygen.Generate(citygen.Config{
		Name: "roundtrip", Style: citygen.StyleLattice,
		Rows: 8, Cols: 8, OneWayFrac: 0.4, DeleteFrac: 0.1,
		JitterFrac: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Parse(&buf, ParseOptions{Name: orig.Name()})
	if err != nil {
		t.Fatalf("Parse(Write()): %v", err)
	}

	if back.NumIntersections() != orig.NumIntersections() {
		t.Fatalf("round trip nodes = %d, want %d", back.NumIntersections(), orig.NumIntersections())
	}
	if back.NumSegments() != orig.NumSegments() {
		t.Fatalf("round trip segments = %d, want %d", back.NumSegments(), orig.NumSegments())
	}
	// Attribute fidelity (speeds go through km/h text with 3 decimals).
	for e := 0; e < orig.NumSegments(); e++ {
		id := graph.EdgeID(e)
		ro, rb := orig.Road(id), back.Road(id)
		if ro.Class != rb.Class || ro.Lanes != rb.Lanes {
			t.Fatalf("edge %d class/lanes changed: %+v vs %+v", e, ro, rb)
		}
		if math.Abs(ro.SpeedMS-rb.SpeedMS) > 0.01 {
			t.Fatalf("edge %d speed %v -> %v", e, ro.SpeedMS, rb.SpeedMS)
		}
		if math.Abs(ro.WidthM-rb.WidthM) > 0.01 {
			t.Fatalf("edge %d width %v -> %v", e, ro.WidthM, rb.WidthM)
		}
		if math.Abs(ro.LengthM-rb.LengthM)/ro.LengthM > 0.01 {
			t.Fatalf("edge %d length %v -> %v", e, ro.LengthM, rb.LengthM)
		}
		// Node IDs are re-interned in way order, so compare endpoint
		// geometry (written with 7 decimals ≈ cm precision).
		ao, ab := orig.Graph().Arc(id), back.Graph().Arc(id)
		for _, pair := range [][2]geo.Point{
			{orig.Point(ao.From), back.Point(ab.From)},
			{orig.Point(ao.To), back.Point(ab.To)},
		} {
			if math.Abs(pair[0].Lat-pair[1].Lat) > 1e-6 || math.Abs(pair[0].Lon-pair[1].Lon) > 1e-6 {
				t.Fatalf("edge %d endpoint moved: %v -> %v", e, pair[0], pair[1])
			}
		}
	}
}

func TestWriteEscapesNames(t *testing.T) {
	net := roadnet.NewNetwork("esc")
	a := net.AddIntersection(pointAt(42.36, -71.06))
	b := net.AddIntersection(pointAt(42.361, -71.06))
	if _, err := net.AddRoad(a, b, roadnet.Road{Name: `O'Brien & <Sons> "St"`}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, net); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, `& <Sons>`) {
		t.Error("names not escaped")
	}
	if _, err := Parse(strings.NewReader(out), ParseOptions{}); err != nil {
		t.Errorf("escaped output does not re-parse: %v", err)
	}
}

func TestWriteFileAndParseFile(t *testing.T) {
	net := roadnet.NewNetwork("file")
	a := net.AddIntersection(pointAt(42.36, -71.06))
	b := net.AddIntersection(pointAt(42.361, -71.06))
	if _, _, err := net.AddTwoWayRoad(a, b, roadnet.Road{Class: roadnet.ClassResidential}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/net.osm"
	if err := WriteFile(path, net); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ParseFile(path, ParseOptions{})
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if back.NumSegments() != 2 {
		t.Errorf("segments = %d, want 2", back.NumSegments())
	}
	if err := WriteFile("/nonexistent/dir/x.osm", net); err == nil {
		t.Error("WriteFile to bad path succeeded")
	}
}

func TestWriteSkipsDisabledEdges(t *testing.T) {
	net := roadnet.NewNetwork("dis")
	a := net.AddIntersection(pointAt(42.36, -71.06))
	b := net.AddIntersection(pointAt(42.361, -71.06))
	e1, _, err := net.AddTwoWayRoad(a, b, roadnet.Road{})
	if err != nil {
		t.Fatal(err)
	}
	net.Graph().DisableEdge(e1)
	var buf bytes.Buffer
	if err := Write(&buf, net); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSegments() != 1 {
		t.Errorf("segments = %d, want 1 (disabled edge skipped)", back.NumSegments())
	}
}

func pointAt(lat, lon float64) geo.Point { return geo.Point{Lat: lat, Lon: lon} }
