package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Long-running evidence: ctxflow v2 obligates a function when it
// (transitively) performs super-linear work. The trigger is a loop chain
// of counted depth >= 2, or a counted loop that calls module code which
// itself loops. Three loop shapes are *proven bounded* and count zero —
// they are exactly the shapes behind the old heuristic's allow-comment
// noise, each with an explicit amortization argument:
//
//	W (worklist)  — `for len(W) > 0` where every append to W inside the
//	                loop is guarded by a monotone visited check (a `!seen[v]`
//	                or `idx[v] == <sentinel>` condition whose guarded block
//	                re-assigns the same element). Each element enters W at
//	                most once, so the whole subtree telescopes to O(V+E):
//	                iterative DFS/BFS (ReachableFrom, Tarjan SCC).
//	P (partition) — an inner loop ranging over X[i] where i is the
//	                enclosing loop's variable: Σ|X[i]| = |X| total, the
//	                CSR/adjacency layout pass (Freeze).
//	B (budgeted)  — a loop whose bound is a caller-supplied parameter (or
//	                a field of one) and whose body calls no module code
//	                that loops: top-k selection, MaxIterations power
//	                steps. The caller holds the budget, and with no loopy
//	                callees inside there is no hidden search to cancel.
//	                A budgeted loop *with* loopy calls inside (Yen's k
//	                rounds of spur searches) stays counted.
//
// The prover is a proof sketch, not a verifier — it establishes the
// amortization shape, not the absence of other writes. That boundary is
// deliberate: the shapes are specific enough that matching one by
// accident while doing unbounded work requires adversarial code, which
// code review owns.

// loopEvidence summarizes one function body's long-running evidence.
type loopEvidence struct {
	pos     token.Pos // first evidence site (loop or in-loop call)
	kind    string    // "nested loops" or "calls <name> from a loop"
	present bool
}

// loopAnalysis walks one function body's loop tree.
type loopAnalysis struct {
	g  *CallGraph
	fi *FuncInfo
}

// Evidence computes (once) the long-running evidence for fi's body.
func (g *CallGraph) Evidence(fi *FuncInfo) *loopEvidence {
	if fi.evidence == nil {
		la := &loopAnalysis{g: g, fi: fi}
		ev := &loopEvidence{}
		la.walk(fi.Decl.Body, 0, fi.Decl, ev)
		fi.evidence = ev
	}
	return fi.evidence
}

// walk descends n with `counted` enclosing counted-loops above it,
// recording the first evidence found. enclosing is the nearest enclosing
// counted loop statement (for the partition rule), or the FuncDecl.
func (la *loopAnalysis) walk(n ast.Node, counted int, enclosing ast.Node, ev *loopEvidence) {
	if ev.present {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if ev.present || m == nil || m == n {
			return !ev.present
		}
		switch s := m.(type) {
		case *ast.ForStmt:
			la.visitLoop(s, counted, enclosing, ev)
			return false // the recursive call owns the subtree
		case *ast.RangeStmt:
			la.visitLoop(s, counted, enclosing, ev)
			return false
		case *ast.CallExpr:
			if counted >= 1 {
				if fn := calleeOf(la.g.prog.Info, s); fn != nil && la.g.loopyCallee(fn) {
					ev.present = true
					ev.pos = s.Pos()
					ev.kind = "calls " + fn.Name() + " from a loop"
					return false
				}
			}
		}
		return true
	})
}

func (la *loopAnalysis) visitLoop(loop ast.Stmt, counted int, enclosing ast.Node, ev *loopEvidence) {
	body := loopBody(loop)
	if body == nil {
		return
	}
	// Worklist loops prune lexical nesting entirely, but in-loop calls to
	// loopy module code inside them still count (a worklist that runs a
	// search per pop is O(V) searches).
	if la.isWorklistLoop(loop) {
		la.walkCallsOnly(body, ev)
		return
	}
	weight := 1
	switch {
	case la.isPartitionLoop(loop, enclosing):
		weight = 0
	case la.isBudgetedLoop(loop):
		weight = 0
	}
	if counted+weight >= 2 {
		ev.present = true
		ev.pos = loop.Pos()
		ev.kind = "nested loops"
		return
	}
	next := enclosing
	if weight == 1 {
		next = loop
	}
	la.walk(body, counted+weight, next, ev)
}

// walkCallsOnly scans a pruned (worklist) subtree for in-loop calls to
// loopy module functions only.
func (la *loopAnalysis) walkCallsOnly(n ast.Node, ev *loopEvidence) {
	ast.Inspect(n, func(m ast.Node) bool {
		if ev.present {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if fn := calleeOf(la.g.prog.Info, call); fn != nil && la.g.loopyCallee(fn) {
				ev.present = true
				ev.pos = call.Pos()
				ev.kind = "calls " + fn.Name() + " from a loop"
				return false
			}
		}
		return true
	})
}

func loopBody(loop ast.Stmt) *ast.BlockStmt {
	switch s := loop.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// isWorklistLoop matches `for len(W) > 0` (or != 0) over a slice W where
// every `W = append(W, ...)` in the body sits under a monotone visited
// guard.
func (la *loopAnalysis) isWorklistLoop(loop ast.Stmt) bool {
	fs, ok := loop.(*ast.ForStmt)
	if !ok || fs.Cond == nil || fs.Init != nil || fs.Post != nil {
		return false
	}
	bin, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.GTR && bin.Op != token.NEQ) {
		return false
	}
	call, ok := ast.Unparen(bin.X).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "len" {
		return false
	}
	work := la.objOf(call.Args[0])
	if work == nil {
		return false
	}
	if lit, ok := bin.Y.(*ast.BasicLit); !ok || lit.Value != "0" {
		return false
	}
	// Every push to the worklist must be visited-guarded. Any worklist
	// append outside a guard disqualifies the proof. (Pops — shrinking
	// re-slices — and pushes to *other* worklists consumed by inner
	// worklist loops are fine: those loops prove themselves.)
	ok = true
	la.forEachAppend(fs.Body, work, func(app *ast.CallExpr) {
		if !la.guardedByVisited(fs.Body, app) {
			ok = false
		}
	})
	return ok
}

// forEachAppend calls fn for every `W = append(W, ...)` assignment where
// W resolves to work.
func (la *loopAnalysis) forEachAppend(body ast.Node, work types.Object, fn func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if i < len(as.Lhs) && la.objOf(as.Lhs[i]) == work && la.objOf(call.Args[0]) == work {
				fn(call)
			}
		}
		return true
	})
}

// guardedByVisited reports whether node sits inside an if-statement whose
// condition reads an indexed element against a monotone sentinel (`!v[i]`,
// `v[i] == -1`, `v[i] < 0`, ...) and whose body re-assigns that same
// element — the each-element-enters-once argument.
func (la *loopAnalysis) guardedByVisited(root ast.Node, node ast.Node) bool {
	found := false
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		if n == node {
			for _, anc := range path {
				ifs, ok := anc.(*ast.IfStmt)
				if !ok {
					continue
				}
				if col, idx := la.visitedCheck(ifs.Cond); col != nil && la.assignsElem(ifs.Body, col, idx) {
					found = true
				}
			}
			return false
		}
		return true
	})
	return found
}

// visitedCheck matches a monotone visited condition and returns the
// checked collection object and index expression: `!seen[v]`,
// `idx[v] == <lit>`, `idx[v] < <lit>`, or either side of a && chain.
func (la *loopAnalysis) visitedCheck(cond ast.Expr) (types.Object, ast.Expr) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			if ix, ok := ast.Unparen(c.X).(*ast.IndexExpr); ok {
				return la.objOf(ix.X), ix.Index
			}
		}
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			if col, idx := la.visitedCheck(c.X); col != nil {
				return col, idx
			}
			return la.visitedCheck(c.Y)
		}
		if c.Op == token.EQL || c.Op == token.LSS || c.Op == token.NEQ {
			if ix, ok := ast.Unparen(c.X).(*ast.IndexExpr); ok {
				if isLiteralish(c.Y) {
					return la.objOf(ix.X), ix.Index
				}
			}
		}
	}
	return nil, nil
}

// isLiteralish matches sentinel comparands: literals and negated literals.
func isLiteralish(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		_, ok := v.X.(*ast.BasicLit)
		return ok
	case *ast.Ident:
		return v.Name == "true" || v.Name == "false" || v.Name == "nil"
	}
	return false
}

// assignsElem reports whether body assigns col[idx'] for the same
// collection (idx compared structurally by identifier name).
func (la *loopAnalysis) assignsElem(body ast.Node, col types.Object, idx ast.Expr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && la.objOf(ix.X) == col && sameIdent(ix.Index, idx) {
				found = true
			}
		}
		return true
	})
	return found
}

func sameIdent(a, b ast.Expr) bool {
	ai, aok := ast.Unparen(a).(*ast.Ident)
	bi, bok := ast.Unparen(b).(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}

// isPartitionLoop reports whether loop iterates a partition indexed by
// the enclosing loop's variable: `range X[i]`, or a cursor bounded by
// `len(X[i])` / `X[i+1]`, where i is owned by enclosing.
func (la *loopAnalysis) isPartitionLoop(loop ast.Stmt, enclosing ast.Node) bool {
	vars := loopVars(la.g.prog.Info, enclosing)
	if len(vars) == 0 {
		return false
	}
	var space ast.Expr
	switch s := loop.(type) {
	case *ast.RangeStmt:
		space = s.X
	case *ast.ForStmt:
		space = s.Cond
	}
	if space == nil {
		return false
	}
	// The iteration space must index through one of the enclosing loop's
	// variables.
	found := false
	ast.Inspect(space, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		ast.Inspect(ix.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := la.g.prog.Info.Uses[id]; obj != nil && vars[obj] {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}

// loopVars returns the iteration variables owned by the enclosing loop
// statement (range key/value, or idents assigned in a for-init).
func loopVars(info *types.Info, enclosing ast.Node) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	switch s := enclosing.(type) {
	case *ast.RangeStmt:
		if s.Key != nil {
			add(s.Key)
		}
		if s.Value != nil {
			add(s.Value)
		}
	case *ast.ForStmt:
		if init, ok := s.Init.(*ast.AssignStmt); ok {
			for _, lhs := range init.Lhs {
				add(lhs)
			}
		}
	}
	return vars
}

// isBudgetedLoop reports whether loop's bound is a caller-supplied
// parameter (or a selector rooted at one) and its body calls no loopy
// module code: the caller owns the iteration budget and there is no
// hidden search inside.
func (la *loopAnalysis) isBudgetedLoop(loop ast.Stmt) bool {
	fs, ok := loop.(*ast.ForStmt)
	if !ok || fs.Cond == nil {
		return false
	}
	bin, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.LSS && bin.Op != token.LEQ) {
		return false
	}
	if !la.paramRooted(bin.Y) {
		return false
	}
	// No loopy module callees anywhere in the body.
	bounded := true
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if !bounded {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeOf(la.g.prog.Info, call); fn != nil && la.g.loopyCallee(fn) {
				bounded = false
			}
		}
		return true
	})
	return bounded
}

// paramRooted reports whether e is a parameter of the function (or a
// field selection rooted at one): `k`, `opts.MaxIterations`.
func (la *loopAnalysis) paramRooted(e ast.Expr) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.Ident:
			obj := la.g.prog.Info.Uses[v]
			if obj == nil {
				return false
			}
			return la.isParam(obj)
		default:
			return false
		}
	}
}

func (la *loopAnalysis) isParam(obj types.Object) bool {
	sig, ok := la.fi.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == obj {
			return true
		}
	}
	return false
}

// objOf resolves an expression to the object it denotes (identifier or
// selector tail), nil otherwise.
func (la *loopAnalysis) objOf(e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := la.g.prog.Info.Uses[v]; obj != nil {
			return obj
		}
		return la.g.prog.Info.Defs[v]
	case *ast.SelectorExpr:
		if obj := la.g.prog.Info.Uses[v.Sel]; obj != nil {
			return obj
		}
	}
	return nil
}
