package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// errCmp flags ==/!= against sentinel error values (ErrTimeout,
// core.ErrCancelled, io.EOF, ...). The attack pipeline wraps every
// sentinel with %w — fmt.Errorf("%w: ...", ErrTimeout) — so identity
// comparison silently stops matching and a timeout gets tallied as
// "other" in FailuresByKind, skewing the failure columns of the
// experiment grid. errors.Is unwraps; == does not. io.EOF has no
// blanket exemption: a deliberate identity check must carry an explicit
// //lint:allow errcmp.
type errCmp struct{}

// NewErrCmp returns the errcmp analyzer.
func NewErrCmp() Analyzer { return errCmp{} }

func (errCmp) Name() string { return "errcmp" }
func (errCmp) Doc() string {
	return "compare sentinel errors with errors.Is, not ==/!="
}

// sentinelName matches Go's sentinel-error naming convention plus the
// stdlib's grandfathered io.EOF.
var sentinelName = regexp.MustCompile(`^Err[A-Z0-9_]|^EOF$`)

func (errCmp) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			sentinel, other := "", ast.Expr(nil)
			if name, ok := sentinelExpr(be.X); ok {
				sentinel, other = name, be.Y
			} else if name, ok := sentinelExpr(be.Y); ok {
				sentinel, other = name, be.X
			}
			if sentinel == "" || isNil(other) {
				return true
			}
			out = append(out, pkg.diag(f, be.Pos(), "errcmp", fmt.Sprintf(
				"identity comparison against sentinel %s misses %%w-wrapped errors; use errors.Is(err, %s)", sentinel, sentinel)))
			return true
		})
	}
	return out
}

// sentinelExpr reports whether e names a sentinel error value, returning
// its display name.
func sentinelExpr(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		if sentinelName.MatchString(v.Name) && v.Name != "EOF" {
			return v.Name, true
		}
	case *ast.SelectorExpr:
		id, ok := v.X.(*ast.Ident)
		if ok && sentinelName.MatchString(v.Sel.Name) {
			return id.Name + "." + v.Sel.Name, true
		}
	}
	return "", false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
