package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// floatEq flags == and != between floating-point operands. Path lengths
// and cut costs are sums of float64 edge weights whose low bits depend
// on summation order, so exact comparison silently flips tie decisions
// between runs; comparisons must go through the epsilon helpers
// (Problem.tieEps, lp's tolerances) instead. Infinity-sentinel checks
// (x == math.Inf(1), x == inf()) are exempt — infinity is absorbing and
// exact by construction. _test.go files are exempt wholesale: the test
// suite's exact comparisons assert the repo's bit-reproducibility
// contract (frozen-vs-live kernels, resume, cache equivalence).
//
// Float-ness is inferred without go/types: from float literals,
// float32/float64 declarations in the enclosing function, float-typed
// struct fields and float-returning functions declared in the same
// package, float conversions, and math.* calls.
type floatEq struct{}

// NewFloatEq returns the floateq analyzer.
func NewFloatEq() Analyzer { return floatEq{} }

func (floatEq) Name() string { return "floateq" }
func (floatEq) Doc() string {
	return "no ==/!= on float operands outside the epsilon helpers"
}

// mathBoolFuncs are math.* predicates that return bool/int, not floats.
var mathBoolFuncs = map[string]bool{
	"Signbit": true, "IsNaN": true, "IsInf": true, "Ilogb": true,
	"Float64bits": true, "Float32bits": true,
}

func (floatEq) Check(pkg *Package) []Diagnostic {
	fields := floatFields(pkg)
	funcs := floatFuncs(pkg)
	var out []Diagnostic
	for _, f := range pkg.Files {
		// Tests assert bit-identical reproducibility on purpose — live vs
		// frozen kernels, checkpoint resume, cache equivalence — so exact
		// float comparison there is the contract, not a fragility.
		if strings.HasSuffix(f.Filename, "_test.go") {
			continue
		}
		mathName := importName(f.AST, "math")
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := &floatScope{
				vars:     floatVarsOf(fd),
				slices:   floatSlicesOf(fd),
				fields:   fields,
				funcs:    funcs,
				mathName: mathName,
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !sc.isFloat(be.X) && !sc.isFloat(be.Y) {
					return true
				}
				if sc.isInfSentinel(be.X) || sc.isInfSentinel(be.Y) {
					return true
				}
				out = append(out, pkg.diag(f, be.Pos(), "floateq", fmt.Sprintf(
					"%s on float operands is order-of-summation sensitive; compare within an epsilon (tieEps) or restructure the check", be.Op)))
				return true
			})
		}
	}
	return out
}

type floatScope struct {
	vars     map[string]bool // float-typed idents in the enclosing func
	slices   map[string]bool // []float-typed idents in the enclosing func
	fields   map[string]bool // float-typed struct field names, package-wide
	funcs    map[string]bool // float-returning func/method names, package-wide
	mathName string          // local name of the math import, "" if absent
}

// isFloat reports whether e is a floating-point expression per the
// scope's syntactic knowledge.
func (sc *floatScope) isFloat(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Kind == token.FLOAT
	case *ast.Ident:
		return sc.vars[v.Name]
	case *ast.SelectorExpr:
		return sc.fields[v.Sel.Name]
	case *ast.ParenExpr:
		return sc.isFloat(v.X)
	case *ast.UnaryExpr:
		return sc.isFloat(v.X)
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return sc.isFloat(v.X) || sc.isFloat(v.Y)
		}
		return false
	case *ast.IndexExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return sc.slices[id.Name]
		}
		return false
	case *ast.CallExpr:
		switch fn := v.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "float64" || fn.Name == "float32" {
				return true
			}
			return sc.funcs[fn.Name]
		case *ast.SelectorExpr:
			if name, ok := isPkgSel(fn, sc.mathName); ok {
				return !mathBoolFuncs[name]
			}
			return sc.funcs[fn.Sel.Name]
		}
		return false
	}
	return false
}

// isInfSentinel recognizes exact-infinity comparisons: math.Inf(...) or
// a call to a function literally named inf.
func (sc *floatScope) isInfSentinel(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "inf"
	case *ast.SelectorExpr:
		name, ok := isPkgSel(fn, sc.mathName)
		return ok && name == "Inf"
	}
	return false
}

// isFloatType matches the spellable float types.
func isFloatType(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && (id.Name == "float64" || id.Name == "float32")
}

// isFloatSliceType matches []float64 / []float32.
func isFloatSliceType(e ast.Expr) bool {
	at, ok := e.(*ast.ArrayType)
	return ok && at.Len == nil && isFloatType(at.Elt)
}

// floatFields collects float-typed struct field names across the package.
func floatFields(pkg *Package) map[string]bool {
	set := make(map[string]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !isFloatType(field.Type) {
					continue
				}
				for _, name := range field.Names {
					set[name.Name] = true
				}
			}
			return true
		})
	}
	return set
}

// floatFuncs collects package-level funcs/methods whose single result is
// a float type.
func floatFuncs(pkg *Package) map[string]bool {
	set := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
				continue
			}
			r := fd.Type.Results.List[0]
			if len(r.Names) <= 1 && isFloatType(r.Type) {
				set[fd.Name.Name] = true
			}
		}
	}
	return set
}

// floatVarsOf gathers float-typed identifiers declared in fd: params,
// named results, var decls, and := bindings whose RHS is a float literal
// or float conversion.
func floatVarsOf(fd *ast.FuncDecl) map[string]bool {
	vars := make(map[string]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if !isFloatType(field.Type) {
				continue
			}
			for _, name := range field.Names {
				vars[name.Name] = true
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	if fd.Body == nil {
		return vars
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || !isFloatType(vs.Type) {
					continue
				}
				for _, name := range vs.Names {
					vars[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch r := s.Rhs[i].(type) {
				case *ast.BasicLit:
					if r.Kind == token.FLOAT {
						vars[id.Name] = true
					}
				case *ast.CallExpr:
					if fn, ok := r.Fun.(*ast.Ident); ok && (fn.Name == "float64" || fn.Name == "float32") {
						vars[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return vars
}

// floatSlicesOf gathers []float-typed identifiers from fd's signature
// and var decls.
func floatSlicesOf(fd *ast.FuncDecl) map[string]bool {
	vars := make(map[string]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if !isFloatSliceType(field.Type) {
				continue
			}
			for _, name := range field.Names {
				vars[name.Name] = true
			}
		}
	}
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	if fd.Body == nil {
		return vars
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
			return true
		}
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "make" && len(call.Args) > 0 && isFloatSliceType(call.Args[0]) {
					vars[id.Name] = true
				}
			}
		}
		return true
	})
	return vars
}
