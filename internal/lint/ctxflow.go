package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// ctxFlow enforces the PR 2 cancellation contract on the packages that
// do unbounded graph/LP work: an exported function whose body nests
// loops (the syntactic signature of super-linear work — Yen rounds,
// simplex pivots, betweenness sweeps) must participate in cooperative
// cancellation. Participation means any of:
//
//   - a context.Context parameter that the body actually uses,
//   - polling an attached context (the graph.Router `ctx` field /
//     interrupted() pattern, or a ctxErr helper),
//   - delegating to a *Ctx variant that carries the context.
//
// Genuinely bounded functions (single-pass BFS, fixed-iteration power
// method) opt out with //lint:allow ctxflow <why it is bounded>.
type ctxFlow struct {
	pkgs map[string]bool // package names the contract applies to
}

// NewCtxFlow returns the ctxflow analyzer. With no arguments it targets
// the packages named by the cancellation contract: core, graph, lp,
// server (whose handlers must propagate request deadlines into the
// pipeline rather than looping uncancellably), and registry (whose shard
// preloads run full-graph sweeps that must abort with the serve context).
func NewCtxFlow(pkgNames ...string) Analyzer {
	if len(pkgNames) == 0 {
		pkgNames = []string{"core", "graph", "lp", "server", "registry", "audit"}
	}
	set := make(map[string]bool, len(pkgNames))
	for _, n := range pkgNames {
		set[n] = true
	}
	return ctxFlow{pkgs: set}
}

func (ctxFlow) Name() string { return "ctxflow" }
func (ctxFlow) Doc() string {
	return "exported nested-loop funcs in core/graph/lp/server/registry/audit must accept and check a context.Context"
}

func (c ctxFlow) Check(pkg *Package) []Diagnostic {
	if !c.pkgs[pkg.Name] {
		return nil
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		ctxPkg := importName(f.AST, "context")
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !hasNestedLoop(fd.Body) {
				continue
			}
			if checksContext(fd, ctxPkg) {
				continue
			}
			out = append(out, pkg.diag(f, fd.Pos(), "ctxflow", fmt.Sprintf(
				"exported %s runs nested loops but never consults a context.Context; accept and poll ctx (or delegate to a *Ctx variant) per the cancellation contract", fd.Name.Name)))
		}
	}
	return out
}

// hasNestedLoop reports whether body contains a for/range statement
// lexically inside another one. Function literals do not reset the
// depth: a loop inside a worker closure inside a loop is still nested
// work on the caller's clock.
func hasNestedLoop(body *ast.BlockStmt) bool {
	return nestedLoopIn(body, 0)
}

// nestedLoopIn reports whether a loop occurs under n at loop-depth >= 1.
func nestedLoopIn(n ast.Node, depth int) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found || m == nil || m == n {
			return !found
		}
		switch s := m.(type) {
		case *ast.ForStmt:
			if depth >= 1 || nestedLoopIn(s.Body, depth+1) {
				found = true
			}
			return false // children handled by the recursive call
		case *ast.RangeStmt:
			if depth >= 1 || nestedLoopIn(s.Body, depth+1) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// checksContext reports whether fd satisfies the contract: it either
// uses a context.Context parameter, polls a stored context, or
// delegates to a *Ctx variant.
func checksContext(fd *ast.FuncDecl, ctxPkg string) bool {
	// 1. context.Context parameter, referenced in the body.
	for _, field := range fd.Type.Params.List {
		if !isContextType(field.Type, ctxPkg) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" && identUsed(fd.Body, name.Name) {
				return true
			}
		}
	}
	// 2/3. Polls a context or delegates: any mention of a `ctx` ident or
	// field, a call to interrupted()/ctxErr(), or a call whose name ends
	// in "Ctx".
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch v := n.(type) {
		case *ast.Ident:
			if v.Name == "ctx" {
				ok = true
			}
		case *ast.SelectorExpr:
			name := v.Sel.Name
			if name == "ctx" || name == "interrupted" || name == "Interrupted" ||
				name == "ctxErr" || strings.HasSuffix(name, "Ctx") {
				ok = true
			}
		case *ast.CallExpr:
			if fn, isIdent := v.Fun.(*ast.Ident); isIdent {
				name := fn.Name
				if name == "ctxErr" || name == "interrupted" || strings.HasSuffix(name, "Ctx") {
					ok = true
				}
			}
		}
		return !ok
	})
	return ok
}

// isContextType matches context.Context (alias-aware) and a bare
// Context ident (for packages that alias or dot-import).
func isContextType(e ast.Expr, ctxPkg string) bool {
	if name, ok := isPkgSel(e, ctxPkg); ok {
		return name == "Context"
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "Context"
}

// identUsed reports whether name occurs as an identifier in body.
func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}
