package lint

import (
	"fmt"
	"go/ast"
)

// ctxFlow2 is the typed, interprocedural cancellation analyzer ("ctxflow
// v2"). It replaces the old nested-loop heuristic with call-graph
// reachability in both directions:
//
//   - Obligation: an exported function in a contract package is
//     long-running when loop evidence (see loops.go) is reachable from it
//     through static module-internal calls — its own nested loops, or a
//     callee's, however deep the laundering helper chain.
//   - Discharge: the function passes when a context check (ctx.Err,
//     ctx.Done, context.Cause, interrupted(), ctxErr()) is reachable the
//     same way. The check need not be lexically inside the function: a
//     kernel that polls r.interrupted() discharges every caller that
//     reaches it.
//
// Functions whose only "nested" loops match a bounded proof shape
// (worklist, partition, budgeted — loops.go) carry no obligation at all,
// which is what retires the old bounded-O(V+E) allow comments: the
// analyzer now proves what the comments asserted.
//
// Soundness boundary: reachability is over statically-resolved calls.
// Calls through interfaces and function values contribute neither
// evidence nor discharge, and "a check is reachable" does not prove the
// check runs on every path or every iteration — it proves the
// cancellation machinery is wired through, which is the structural
// contract PR 2 established.
type ctxFlow2 struct {
	prog *Program
	pkgs map[string]bool
}

// ctxFlowPackages is the cancellation contract's package set: the attack
// pipeline (core, graph, lp, overlay), the serving stack (server,
// registry, audit), and the scenario layer whose sweeps ride on the same
// budget (defense, sim, traffic, partition, metrics).
var ctxFlowPackages = []string{
	"core", "graph", "lp", "overlay", "server", "registry", "audit",
	"defense", "sim", "traffic", "partition", "metrics",
}

// NewCtxFlow returns the typed ctxflow analyzer over prog. With no
// package names it applies the default contract set.
func NewCtxFlow(prog *Program, pkgNames ...string) Analyzer {
	if len(pkgNames) == 0 {
		pkgNames = ctxFlowPackages
	}
	set := make(map[string]bool, len(pkgNames))
	for _, n := range pkgNames {
		set[n] = true
	}
	return &ctxFlow2{prog: prog, pkgs: set}
}

func (*ctxFlow2) Name() string { return "ctxflow" }
func (*ctxFlow2) Doc() string {
	return "exported funcs reaching long-running work must reach a ctx.Err/Done/interrupted check (typed, interprocedural)"
}

func (c *ctxFlow2) Check(pkg *Package) []Diagnostic {
	tp := c.prog.Typed(pkg)
	if tp == nil || !c.pkgs[tp.Types.Name()] {
		return nil
	}
	g := c.prog.Graph()
	var out []Diagnostic
	for _, fi := range g.Funcs() {
		if fi.Pkg != tp || !fi.Decl.Name.IsExported() {
			continue
		}
		var ev *loopEvidence
		longRunning := g.Reaches(fi, func(callee *FuncInfo) bool {
			e := g.Evidence(callee)
			if e.present && ev == nil {
				ev = e
				if callee != fi {
					ev = &loopEvidence{present: true, pos: ev.pos,
						kind: "reaches " + callee.Obj.Name() + " (" + e.kind + ")"}
				}
			}
			return e.present
		})
		if !longRunning || g.ReachesCtxCheck(fi) {
			continue
		}
		pos := c.prog.Fset.Position(ev.pos)
		out = append(out, pkg.diag(fi.File, fi.Decl.Pos(), "ctxflow", fmt.Sprintf(
			"exported %s %s (line %d) but no ctx.Err/Done/interrupted check is reachable; thread a context through per the cancellation contract",
			fi.Decl.Name.Name, ev.kind, pos.Line)))
	}
	return out
}

// funcPos is a tiny helper other typed analyzers share: the diagnostic
// file for a declaration inside a typed package.
func declFile(tp *TypedPackage, decl ast.Node) *File {
	return tp.fileOf(decl.Pos())
}
