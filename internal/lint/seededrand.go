package lint

import (
	"fmt"
	"go/ast"
)

// seededRand flags uses of math/rand's package-global generator
// (rand.Intn, rand.Float64, rand.Shuffle, ...), which draws from a
// process-wide source that no experiment seed controls. Every random
// draw in this repo must flow from an explicit rand.New(rand.NewSource(
// seed)) so that a (city, algorithm, seed) cell replays bit-identically.
// Constructor calls (rand.New, rand.NewSource, rand.NewZipf) are exempt:
// they are exactly how a seed is made explicit.
type seededRand struct{}

// NewSeededRand returns the seededrand analyzer.
func NewSeededRand() Analyzer { return seededRand{} }

func (seededRand) Name() string { return "seededrand" }
func (seededRand) Doc() string {
	return "no package-global math/rand draws; randomness must flow from an explicit seed"
}

// constructors of math/rand (v1 and v2) that take or wrap an explicit
// seed/source and are therefore the sanctioned way in, plus the
// package's type names (rand.Rand in a signature is not a draw).
var randExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	"PCG": true, "ChaCha8": true,
}

func (seededRand) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		names := make(map[string]bool, 2)
		if n := importName(f.AST, "math/rand"); n != "" {
			names[n] = true
		}
		if n := importName(f.AST, "math/rand/v2"); n != "" {
			names[n] = true
		}
		if len(names) == 0 {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !names[id.Name] {
				return true
			}
			name := sel.Sel.Name
			if randExempt[name] || !ast.IsExported(name) {
				return true
			}
			out = append(out, pkg.diag(f, n.Pos(), "seededrand", fmt.Sprintf(
				"rand.%s draws from the unseeded package-global source; use a rand.New(rand.NewSource(seed)) generator threaded from the experiment seed", name)))
			return true
		})
	}
	return out
}
