package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrder derives the mutex-acquisition ordering graph over every
// sync.Mutex / sync.RWMutex in the program and enforces two invariants:
//
//  1. The order must be globally acyclic. Locks are identified by their
//     declaration site (struct field or package-level variable), so
//     l.mu on every *Ledger instance is one lock class. Acquiring M
//     while holding L — directly or through any statically-resolved
//     callee, however deep (Append → appendLocked → sealLocked) — adds
//     the edge L→M; a cycle in the resulting graph is a deadlock
//     schedule and every edge on it is reported.
//  2. A lock acquired without `defer Unlock` must not be held across a
//     return: an early error return between Lock and Unlock leaks the
//     lock. Explicit Unlock-before-every-return (the interleaved
//     syncDirty pattern) passes; a missed path is flagged at the return.
//
// Soundness boundary: acquisition tracking is a lexical walk with
// branch-local state — conditionally *released* locks (Unlock inside an
// if that falls through) are assumed still held afterwards, and callee
// locksets are may-acquire summaries, so a guarded re-lock can produce
// a false self-edge. Both directions fail safe (extra edges, never
// missed ones on resolved calls) and carry //lint:allow with a reason
// when the schedule is provably impossible.
type lockOrder struct {
	prog *Program
}

// NewLockOrder returns the lockorder analyzer over prog.
func NewLockOrder(prog *Program) Analyzer { return &lockOrder{prog: prog} }

func (*lockOrder) Name() string { return "lockorder" }
func (*lockOrder) Doc() string {
	return "mutex acquisition order must be globally acyclic; non-deferred locks must not leak across returns (typed)"
}

// lockAcq is one acquisition site: fn acquires key at pos while holding
// `holding` (possibly empty).
type lockAcq struct {
	key string
	pos token.Pos
}

// lockEdge is one ordering edge with its witness site.
type lockEdge struct {
	from, to string
	pos      token.Pos
	fi       *FuncInfo
}

func (lo *lockOrder) Check(pkg *Package) []Diagnostic {
	tp := lo.prog.Typed(pkg)
	if tp == nil {
		return nil
	}
	g := lo.prog.Graph()
	lo.ensureProgramAnalysis(g)

	var out []Diagnostic
	// Report cycle edges and return-leaks at their sites within this
	// package only, so diagnostics land in the right Run partition.
	for _, d := range lo.programDiags(g) {
		if d.fi.Pkg == tp {
			out = append(out, pkg.diag(d.fi.File, d.pos, "lockorder", d.msg))
		}
	}
	return out
}

// programDiag is a finding located before package partitioning.
type programDiag struct {
	fi  *FuncInfo
	pos token.Pos
	msg string
}

func (lo *lockOrder) programDiags(g *CallGraph) []programDiag {
	return g.lockDiags
}

func (lo *lockOrder) ensureProgramAnalysis(g *CallGraph) {
	if g.lockDiagsDone {
		return
	}
	var edges []lockEdge
	var diags []programDiag
	for _, fi := range g.Funcs() {
		w := &lockWalker{lo: lo, g: g, fi: fi}
		w.block(fi.Decl.Body, &lockState{})
		edges = append(edges, w.edges...)
		diags = append(diags, w.diags...)
	}

	// Cycle detection over the ordering graph: every edge that sits on a
	// cycle (its endpoints belong to one strongly connected component,
	// or it is a self-edge) is reported at its witness site.
	adj := make(map[string][]string)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	comp := sccOf(adj)
	for _, e := range edges {
		inCycle := e.from == e.to || (comp[e.from] == comp[e.to] && comp[e.from] != 0)
		if !inCycle {
			continue
		}
		var msg string
		if e.from == e.to {
			msg = fmt.Sprintf("acquires %s while a call path may already hold it (self-deadlock)", e.to)
		} else {
			msg = fmt.Sprintf("lock order cycle: acquires %s while holding %s, but the reverse order also exists; pick one global order", e.to, e.from)
		}
		diags = append(diags, programDiag{fi: e.fi, pos: e.pos, msg: msg})
	}
	g.lockDiags = diags
	g.lockDiagsDone = true
}

// sccOf assigns a component id to every node with Tarjan over the string
// graph; ids are nonzero only for components of size >= 2.
func sccOf(adj map[string][]string) map[string]int {
	nodes := sortedKeys(adj)
	seenTo := make(map[string]bool)
	for _, n := range nodes {
		seenTo[n] = true
	}
	for _, n := range nodes {
		for _, m := range adj[n] {
			if !seenTo[m] {
				seenTo[m] = true
				nodes = append(nodes, m)
			}
		}
	}
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 1, 1
	var strong func(v string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) >= 2 {
				for _, m := range members {
					comp[m] = compID
				}
				compID++
			}
		}
	}
	for _, n := range nodes {
		if index[n] == 0 {
			strong(n)
		}
	}
	return comp
}

// lockState is the walker's branch-local held set.
type lockState struct {
	held []heldLock
}

type heldLock struct {
	key      string
	pos      token.Pos
	deferred bool // released by a defer at function exit
}

func (s *lockState) clone() *lockState {
	c := &lockState{held: make([]heldLock, len(s.held))}
	copy(c.held, s.held)
	return c
}

func (s *lockState) acquire(key string, pos token.Pos) {
	s.held = append(s.held, heldLock{key: key, pos: pos})
}

func (s *lockState) release(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

func (s *lockState) markDeferred(key string) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].key == key && !s.held[i].deferred {
			s.held[i].deferred = true
			return
		}
	}
}

// lockWalker walks one function body tracking held locks.
type lockWalker struct {
	lo    *lockOrder
	g     *CallGraph
	fi    *FuncInfo
	edges []lockEdge
	diags []programDiag
}

func (w *lockWalker) block(b *ast.BlockStmt, st *lockState) {
	if b == nil {
		return
	}
	for _, stmt := range b.List {
		w.stmt(stmt, st)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, st *lockState) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		w.expr(v.X, st)
	case *ast.DeferStmt:
		// `defer x.Unlock()` — also matches unlocks buried one level
		// inside a deferred closure.
		if key, op := w.lockOp(v.Call); op == opUnlock {
			st.markDeferred(key)
			return
		}
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, op := w.lockOp(call); op == opUnlock {
						st.markDeferred(key)
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			w.expr(e, st)
		}
		for _, h := range st.held {
			if !h.deferred {
				w.diags = append(w.diags, programDiag{fi: w.fi, pos: v.Pos(), msg: fmt.Sprintf(
					"returns while holding %s (acquired at line %d) without defer; an error path here leaks the lock",
					h.key, w.g.prog.Fset.Position(h.pos).Line)})
			}
		}
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			w.expr(e, st)
		}
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init, st)
		}
		w.expr(v.Cond, st)
		w.block(v.Body, st.clone())
		if v.Else != nil {
			w.stmt(v.Else, st.clone())
		}
	case *ast.BlockStmt:
		w.block(v, st)
	case *ast.ForStmt:
		w.block(v.Body, st.clone())
	case *ast.RangeStmt:
		w.expr(v.X, st)
		w.block(v.Body, st.clone())
	case *ast.SwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cst := st.clone()
				for _, b := range cc.Body {
					w.stmt(b, cst)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				cst := st.clone()
				for _, b := range cc.Body {
					w.stmt(b, cst)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				cst := st.clone()
				for _, b := range cc.Body {
					w.stmt(b, cst)
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine runs on its own stack: a fresh held-set.
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body, &lockState{})
		}
	case *ast.LabeledStmt:
		w.stmt(v.Stmt, st)
	}
}

// expr handles lock-relevant call expressions inside an expression tree.
func (w *lockWalker) expr(e ast.Expr, st *lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// Immediately-invoked or stored literals run with unknown
			// caller state; analyze them with the current held set only
			// when lexically inline (conservative: current set).
			w.block(lit.Body, st.clone())
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op := w.lockOp(call); op != opNone {
			switch op {
			case opLock:
				for _, h := range st.held {
					if h.key != "" {
						w.edges = append(w.edges, lockEdge{from: h.key, to: key, pos: call.Pos(), fi: w.fi})
					}
				}
				st.acquire(key, call.Pos())
			case opUnlock:
				st.release(key)
			}
			return false
		}
		// A statically-resolved module callee: its may-acquire summary
		// orders after everything currently held.
		if fn := calleeOf(w.g.prog.Info, call); fn != nil {
			if fi := w.g.Lookup(fn); fi != nil && len(st.held) > 0 {
				for _, acq := range w.lo.acquireSummary(w.g, fi) {
					for _, h := range st.held {
						w.edges = append(w.edges, lockEdge{from: h.key, to: acq, pos: call.Pos(), fi: w.fi})
					}
				}
			}
		}
		return true
	})
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// lockOp classifies a call as Lock/RLock (acquire) or Unlock/RUnlock
// (release) on a sync.Mutex/RWMutex, returning the lock's identity key.
func (w *lockWalker) lockOp(call *ast.CallExpr) (string, lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	selection, ok := w.g.prog.Info.Selections[sel]
	if !ok {
		return "", opNone
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	key := w.lockKey(sel.X)
	if key == "" {
		return "", opNone
	}
	return key, op
}

// lockKey names the lock class behind the receiver expression: the
// declaring struct type and field for field locks, the package path and
// name for variables.
func (w *lockWalker) lockKey(recv ast.Expr) string {
	switch v := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		// x.mu — resolve the field object.
		if selection, ok := w.g.prog.Info.Selections[v]; ok {
			if field, ok := selection.Obj().(*types.Var); ok && field.IsField() {
				return fieldKey(selection.Recv(), field)
			}
		}
		if obj := w.g.prog.Info.Uses[v.Sel]; obj != nil {
			return objKey(obj)
		}
	case *ast.Ident:
		if obj := w.g.prog.Info.Uses[v]; obj != nil {
			if field, ok := obj.(*types.Var); ok && field.IsField() {
				// Embedded or shadowed selector resolved to a field.
				return objKey(field)
			}
			return objKey(obj)
		}
	}
	return ""
}

func fieldKey(recv types.Type, field *types.Var) string {
	t := recv
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	name := "?"
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name()
		if p := named.Obj().Pkg(); p != nil {
			name = p.Name() + "." + name
		}
	}
	return name + "." + field.Name()
}

func objKey(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// acquireSummary is the transitive may-acquire lockset of fi, memoized
// on the node; cycles in the call graph read their provisional (partial)
// set, which converges because locksets only grow along one DFS.
func (lo *lockOrder) acquireSummary(g *CallGraph, fi *FuncInfo) []string {
	if fi.lockDone {
		return sortedSummary(fi.lockSumm)
	}
	if fi.lockOnCar {
		return sortedSummary(fi.lockSumm)
	}
	fi.lockOnCar = true
	if fi.lockSumm == nil {
		fi.lockSumm = make(map[string]bool)
	}
	w := &lockWalker{lo: lo, g: g, fi: fi}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, op := w.lockOp(call); op == opLock {
				fi.lockSumm[key] = true
			} else if op == opNone {
				if fn := calleeOf(g.prog.Info, call); fn != nil {
					if callee := g.Lookup(fn); callee != nil && callee != fi {
						for _, k := range lo.acquireSummary(g, callee) {
							fi.lockSumm[k] = true
						}
					}
				}
			}
		}
		return true
	})
	fi.lockOnCar = false
	fi.lockDone = true
	return sortedSummary(fi.lockSumm)
}

func sortedSummary(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders an edge for debugging.
func (e lockEdge) String() string {
	return strings.Join([]string{e.from, e.to}, " -> ")
}
