package lint

import (
	"bytes"
	"encoding/json"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// golden maps each testdata fixture directory to the analyzers to run
// over it. Fixtures encode expectations as // want "regex" comments on
// the offending lines.
var golden = []struct {
	dir   string
	typed bool // load the fixture through LoadTypedDir and hand the Program to pick
	pick  func(prog *Program) []Analyzer
}{
	{dir: "wallclock", pick: func(*Program) []Analyzer { return []Analyzer{NewWallClock()} }},
	{dir: "seededrand", pick: func(*Program) []Analyzer { return []Analyzer{NewSeededRand()} }},
	{dir: "maporder", pick: func(*Program) []Analyzer { return []Analyzer{NewMapOrder()} }},
	{dir: "floateq", pick: func(*Program) []Analyzer { return []Analyzer{NewFloatEq()} }},
	{dir: "errcmp", pick: func(*Program) []Analyzer { return []Analyzer{NewErrCmp()} }},
	{dir: "ctxflow", typed: true, pick: func(p *Program) []Analyzer { return []Analyzer{NewCtxFlow(p)} }},
	{dir: "ctxflowoverlay", typed: true, pick: func(p *Program) []Analyzer { return []Analyzer{NewCtxFlow(p)} }},
	{dir: "lockorder", typed: true, pick: func(p *Program) []Analyzer { return []Analyzer{NewLockOrder(p)} }},
	{dir: "snapgen", typed: true, pick: func(p *Program) []Analyzer { return []Analyzer{NewSnapGen(p)} }},
	{dir: "goroleak", typed: true, pick: func(p *Program) []Analyzer { return []Analyzer{NewGoroLeak(p)} }},
	{dir: "suppress", pick: func(*Program) []Analyzer { return All() }},
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// wantsIn extracts the expected-diagnostic regexes per line of one file.
func wantsIn(t *testing.T, path string) map[int][]string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int][]string)
	for i, line := range strings.Split(string(raw), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], m[1])
		}
	}
	return wants
}

func TestGoldenFixtures(t *testing.T) {
	for _, tt := range golden {
		t.Run(tt.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", tt.dir)
			fset := token.NewFileSet()
			var pkg *Package
			var prog *Program
			if tt.typed {
				var err error
				prog, err = LoadTypedDir(fset, dir, tt.dir)
				if err != nil {
					t.Fatal(err)
				}
				pkg = prog.Packages()[0]
			} else {
				var err error
				pkg, err = LoadDir(fset, dir, tt.dir, LoadOptions{})
				if err != nil {
					t.Fatal(err)
				}
			}
			if pkg == nil {
				t.Fatalf("no fixture files in %s", dir)
			}

			diags := Run([]*Package{pkg}, tt.pick(prog))

			// Index findings by (file, line).
			got := make(map[string]map[int][]Diagnostic)
			for _, d := range diags {
				if got[d.File] == nil {
					got[d.File] = make(map[int][]Diagnostic)
				}
				got[d.File][d.Line] = append(got[d.File][d.Line], d)
			}

			for _, f := range pkg.Files {
				wants := wantsIn(t, filepath.Join(dir, filepath.Base(f.Filename)))
				perLine := got[f.Filename]
				// Every want must be matched by a diagnostic on its line.
				for line, patterns := range wants {
					for _, pat := range patterns {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", f.Filename, line, pat, err)
						}
						matched := false
						for _, d := range perLine[line] {
							if re.MatchString(d.Message) {
								matched = true
							}
						}
						if !matched {
							t.Errorf("%s:%d: want diagnostic matching %q, got %v", f.Filename, line, pat, perLine[line])
						}
					}
				}
				// Every diagnostic must be anticipated by a want.
				for line, ds := range perLine {
					if len(wants[line]) == 0 {
						for _, d := range ds {
							t.Errorf("unexpected diagnostic %s", d)
						}
					}
				}
			}
		})
	}
}

// TestRunDeterministicOrder asserts position-sorted output and that the
// order is independent of analyzer registration order.
func TestRunDeterministicOrder(t *testing.T) {
	fset := token.NewFileSet()
	pkg, err := LoadDir(fset, filepath.Join("testdata", "wallclock"), "wallclock", LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := Run([]*Package{pkg}, All())
	b := Run([]*Package{pkg}, []Analyzer{NewWallClock(), NewErrCmp(), NewFloatEq(), NewMapOrder(), NewSeededRand()})
	if len(a) == 0 {
		t.Fatal("expected findings in the wallclock fixture")
	}
	if len(a) != len(b) {
		t.Fatalf("analyzer order changed finding count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("analyzer order changed output order at %d: %v vs %v", i, a[i], b[i])
		}
	}
	sorted := sort.SliceIsSorted(a, func(i, j int) bool {
		if a[i].File != a[j].File {
			return a[i].File < a[j].File
		}
		if a[i].Line != a[j].Line {
			return a[i].Line < a[j].Line
		}
		return a[i].Col <= a[j].Col
	})
	if !sorted {
		t.Fatalf("diagnostics not position-sorted: %v", a)
	}
}

// parseSrc builds a single-file package from source for hygiene tests.
func parseSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		Fset:  fset,
		Name:  f.Name.Name,
		Files: []*File{{AST: f, Filename: "src.go"}},
	}
}

func messagesOf(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestAllowHygiene(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of a surviving diagnostic, "" for clean
	}{
		{
			name: "malformed: missing reason",
			src: "package p\n\nimport \"time\"\n\nfunc f() time.Time {\n" +
				"\treturn time.Now() //lint:allow wallclock\n}\n",
			want: "malformed allow directive",
		},
		{
			name: "unknown analyzer name",
			src: "package p\n\nimport \"time\"\n\nfunc f() time.Time {\n" +
				"\treturn time.Now() //lint:allow wallclok typo in the name\n}\n",
			want: "unknown analyzer",
		},
		{
			name: "unused allow",
			src:  "package p\n\n//lint:allow wallclock nothing here\nfunc f() {}\n",
			want: "unused allow directive",
		},
		{
			name: "used allow is clean",
			src: "package p\n\nimport \"time\"\n\nfunc f() time.Time {\n" +
				"\treturn time.Now() //lint:allow wallclock reason given\n}\n",
			want: "",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			diags := Run([]*Package{parseSrc(t, tt.src)}, All())
			if tt.want == "" {
				if len(diags) != 0 {
					t.Fatalf("want clean, got %v", messagesOf(diags))
				}
				return
			}
			found := false
			for _, d := range diags {
				if strings.Contains(d.Message, tt.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a diagnostic containing %q, got %v", tt.want, messagesOf(diags))
			}
		})
	}
}

func TestReporters(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "wallclock", File: "a.go", Line: 3, Col: 9, Message: "m1"},
		{Analyzer: "errcmp", File: "b.go", Line: 7, Col: 2, Message: "m2"},
	}

	var text bytes.Buffer
	if err := WriteText(&text, diags); err != nil {
		t.Fatal(err)
	}
	want := "a.go:3:9: [wallclock] m1\nb.go:7:2: [errcmp] m2\n"
	if text.String() != want {
		t.Fatalf("text output:\n%s\nwant:\n%s", text.String(), want)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, "typed", diags); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "typed" || rep.Count != 2 || len(rep.Diagnostics) != 2 || rep.Diagnostics[0] != diags[0] {
		t.Fatalf("json round-trip mismatch: %+v", rep)
	}

	// Empty reports must still carry a non-null array.
	buf.Reset()
	if err := WriteJSON(&buf, "syntactic", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Fatalf("empty report should have an empty array, got %s", buf.String())
	}
}

// TestTypedDeterministicOrder asserts that repeated typed runs over the
// same fixture produce identical diagnostics, and that the module
// loader's package order matches the syntactic Walk order.
func TestTypedDeterministicOrder(t *testing.T) {
	dir := filepath.Join("testdata", "ctxflow")
	var prev []Diagnostic
	for i := 0; i < 3; i++ {
		fset := token.NewFileSet()
		prog, err := LoadTypedDir(fset, dir, "ctxflow")
		if err != nil {
			t.Fatal(err)
		}
		diags := Run(prog.Packages(), AllTyped(prog))
		if len(diags) == 0 {
			t.Fatal("expected findings in the ctxflow fixture")
		}
		if i > 0 {
			if len(diags) != len(prev) {
				t.Fatalf("run %d changed finding count: %d vs %d", i, len(diags), len(prev))
			}
			for j := range diags {
				if diags[j] != prev[j] {
					t.Fatalf("run %d changed output at %d: %v vs %v", i, j, diags[j], prev[j])
				}
			}
		}
		prev = diags
	}

	root, modPath, ok := FindModule(".")
	if !ok {
		t.Fatal("lint package is not inside a module")
	}
	fset := token.NewFileSet()
	prog, err := LoadTypedModule(fset, root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Walk(fset, root, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	typed := prog.Packages()
	if len(typed) != len(syn) {
		t.Fatalf("typed loader found %d packages, syntactic walk %d", len(typed), len(syn))
	}
	for i := range typed {
		if typed[i].Dir != syn[i].Dir {
			t.Fatalf("package order diverges at %d: typed %s, syntactic %s", i, typed[i].Dir, syn[i].Dir)
		}
	}
}

// TestWholeModuleTypedClean runs the full typed suite over the module
// itself: production code must be free of findings and stale allows.
func TestWholeModuleTypedClean(t *testing.T) {
	root, modPath, ok := FindModule(".")
	if !ok {
		t.Fatal("lint package is not inside a module")
	}
	fset := token.NewFileSet()
	prog, err := LoadTypedModule(fset, root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog.Packages(), AllTyped(prog))
	if len(diags) != 0 {
		t.Fatalf("module is not clean under the typed suite:\n%s", strings.Join(messagesOf(diags), "\n"))
	}
}

func TestWalkSkipsTestdataAndTests(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Walk(fset, ".", LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want exactly the lint package itself, got %d packages", len(pkgs))
	}
	for _, f := range pkgs[0].Files {
		if strings.HasSuffix(f.Filename, "_test.go") {
			t.Fatalf("test file leaked into default load: %s", f.Filename)
		}
		if strings.Contains(f.Filename, "testdata") {
			t.Fatalf("testdata leaked into walk: %s", f.Filename)
		}
	}
	withTests, err := Walk(fset, ".", LoadOptions{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withTests[0].Files) <= len(pkgs[0].Files) {
		t.Fatal("Tests option should add _test.go files")
	}
}
