// Package lint is a stdlib-only static-analysis framework encoding this
// repository's determinism and concurrency invariants: the bit-identical
// parallel Yen guarantee and the bit-identical checkpoint/resume guarantee
// are invisible to the compiler, so the analyzers here catch the bug
// classes that silently break them — wall-clock reads in attack paths,
// unseeded randomness, map-iteration order leaking into output, exact
// float comparison, sentinel-error equality on wrapped errors, and
// long-running exported functions that ignore the cancellation contract.
//
// The framework is deliberately syntactic: it builds on go/ast, go/parser
// and go/token only (no go/types, no external modules), matching the
// repo's stdlib-only rule. Each Analyzer inspects one parsed Package and
// returns position-sorted Diagnostics. Findings are suppressed per line
// with
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory; malformed or unused allow comments are themselves
// reported, so suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position. The JSON field
// names are part of the cmd/lint -json output contract and are asserted
// by the driver tests.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// File is one parsed source file of a Package.
type File struct {
	AST      *ast.File
	Filename string // path as reported in diagnostics, relative to the lint root
}

// Package is the unit of analysis: every non-test file of one directory.
// Analyzers see whole packages so they can resolve package-local context
// (float-typed struct fields, map-returning helpers) without go/types.
type Package struct {
	Fset  *token.FileSet
	Name  string // package name from the first file's package clause
	Dir   string // directory relative to the lint root, e.g. "internal/core"
	Files []*File
}

// Analyzer is a single named invariant check.
type Analyzer interface {
	// Name is the identifier used in //lint:allow comments and reports.
	Name() string
	// Doc is a one-line description for cmd/lint usage output.
	Doc() string
	// Check returns the analyzer's findings for one package. Order does
	// not matter; Run sorts globally.
	Check(pkg *Package) []Diagnostic
}

// All returns the syntactic analyzer suite in stable order. These run
// on parsed ASTs alone and work on any file set, test files included.
func All() []Analyzer {
	return []Analyzer{
		NewWallClock(),
		NewSeededRand(),
		NewMapOrder(),
		NewFloatEq(),
		NewErrCmp(),
	}
}

// AllTyped returns the full suite for a type-checked program: the
// syntactic analyzers plus the four typed ones (ctxflow, lockorder,
// snapgen, goroleak) closed over prog.
func AllTyped(prog *Program) []Analyzer {
	return append(All(),
		NewCtxFlow(prog),
		NewLockOrder(prog),
		NewSnapGen(prog),
		NewGoroLeak(prog),
	)
}

// reservedAnalyzers are the typed analyzer names. Syntactic-mode runs
// (which cannot execute them) treat allows naming these as belonging to
// the other mode instead of flagging them unknown/unused; typed runs
// hold them to the normal hygiene rules.
var reservedAnalyzers = map[string]bool{
	"ctxflow": true, "lockorder": true, "snapgen": true, "goroleak": true,
}

// diag is the helper every analyzer uses to address a finding.
func (p *Package) diag(f *File, pos token.Pos, analyzer, message string) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Analyzer: analyzer,
		File:     f.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  message,
	}
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	file     *File
	line     int  // line the comment sits on
	used     bool // set when it suppresses at least one diagnostic
	bad      bool // malformed: missing analyzer name or reason
}

const allowPrefix = "//lint:allow"

// collectAllows parses every //lint:allow directive in the package.
func collectAllows(pkg *Package) []*allowDirective {
	var allows []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				a := &allowDirective{
					file: f,
					line: pkg.Fset.Position(c.Pos()).Line,
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					a.bad = true // needs "<analyzer> <reason>"
				} else {
					a.analyzer = fields[0]
					a.reason = strings.Join(fields[1:], " ")
				}
				allows = append(allows, a)
			}
		}
	}
	return allows
}

// Run executes the analyzers over the packages, applies //lint:allow
// suppression, reports malformed/unknown/unused allow directives under
// the pseudo-analyzer "lint", and returns the surviving diagnostics in
// deterministic position-sorted order (file, line, column, analyzer,
// message).
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		// Index allows by (file, line) for O(1) suppression lookup. An
		// allow on line L covers findings on L (trailing comment) and
		// L+1 (comment on its own line above the offending statement).
		type key struct {
			file string
			line int
		}
		idx := make(map[key][]*allowDirective)
		for _, a := range allows {
			if a.bad {
				continue
			}
			k := key{a.file.Filename, a.line}
			idx[k] = append(idx[k], a)
			k.line++
			idx[k] = append(idx[k], a)
		}

		for _, an := range analyzers {
			name := an.Name()
			for _, d := range an.Check(pkg) {
				suppressed := false
				for _, a := range idx[key{d.File, d.Line}] {
					if a.analyzer == name {
						a.used = true
						suppressed = true
					}
				}
				if !suppressed {
					out = append(out, d)
				}
			}
		}

		for _, a := range allows {
			switch {
			case a.bad:
				out = append(out, Diagnostic{
					Analyzer: "lint",
					File:     a.file.Filename,
					Line:     a.line,
					Col:      1,
					Message:  `malformed allow directive: want "//lint:allow <analyzer> <reason>"`,
				})
			case !known[a.analyzer]:
				if reservedAnalyzers[a.analyzer] {
					continue // typed-only analyzer, not part of this run
				}
				out = append(out, Diagnostic{
					Analyzer: "lint",
					File:     a.file.Filename,
					Line:     a.line,
					Col:      1,
					Message:  fmt.Sprintf("allow directive names unknown analyzer %q", a.analyzer),
				})
			case !a.used:
				out = append(out, Diagnostic{
					Analyzer: "lint",
					File:     a.file.Filename,
					Line:     a.line,
					Col:      1,
					Message:  fmt.Sprintf("unused allow directive for %q: nothing to suppress here", a.analyzer),
				})
			}
		}
	}

	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer,
// message — the deterministic order Run guarantees. Exported so drivers
// merging several Run calls (one per type-checked program) can restore
// the global order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// importName resolves the local name an import path is bound to in a
// file: the alias when present, otherwise the path's base name. Returns
// "" when the file does not import the path.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// isPkgSel reports whether e is a selector <pkgName>.<sel> on a plain
// identifier (a qualified reference to an imported package symbol) and
// returns the selector name.
func isPkgSel(e ast.Expr, pkgName string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || pkgName == "" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return "", false
	}
	return sel.Sel.Name, true
}
