package lint

import (
	"go/ast"
	"go/types"
)

// CallGraph is the cross-package static call graph over every function
// declared in the program. Nodes are *types.Func declarations; edges are
// direct calls whose callee resolves statically through go/types — plain
// function calls, method calls with a concrete receiver, and qualified
// cross-package calls. Calls through interfaces and function values are
// not resolved (the per-analyzer soundness boundary documented in
// DESIGN.md §13): the analyzers built on top demand structural evidence
// along statically-known paths and accept //lint:allow for the rest.
//
// Function literals do not get their own nodes: their bodies (and the
// calls inside them) are attributed to the enclosing declaration, so a
// worker closure spawned inside an exported search loop is still that
// function's work.
type CallGraph struct {
	prog  *Program
	funcs map[*types.Func]*FuncInfo
	order []*FuncInfo // deterministic: package walk order, then file, then position

	// lockorder's program-wide result, computed once (see lockorder.go).
	lockDiags     []programDiag
	lockDiagsDone bool
}

// FuncInfo is one call-graph node.
type FuncInfo struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Pkg     *TypedPackage
	File    *File
	Callees []*types.Func // static module-internal callees, first-call order, deduped

	// analyzer memo slots, computed lazily with the tri-state memo
	// pattern (0 unknown / 1 false / 2 true) so cyclic call graphs
	// terminate.
	ctxCheck  int8
	anyLoop   int8
	joinSig   int8
	evidence  *loopEvidence
	lockAcqs  []lockAcq
	lockSumm  map[string]bool
	lockDone  bool
	lockOnCar bool // summary computation in progress (cycle guard)
}

// Graph builds (once) and returns the program's call graph.
func (p *Program) Graph() *CallGraph {
	p.graphOnce.Do(func() {
		g := &CallGraph{prog: p, funcs: make(map[*types.Func]*FuncInfo)}
		for _, tp := range p.Pkgs {
			for _, f := range tp.Files {
				for _, decl := range f.AST.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					obj, ok := p.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: tp, File: f}
					g.funcs[obj] = fi
					g.order = append(g.order, fi)
				}
			}
		}
		for _, fi := range g.order {
			g.collectCallees(fi)
		}
		p.graph = g
	})
	return p.graph
}

// Lookup returns the node for a function object (nil for functions
// without a body in this program — stdlib, interface methods).
func (g *CallGraph) Lookup(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	if fi, ok := g.funcs[obj]; ok {
		return fi
	}
	// Instantiated generic methods resolve to their origin declaration.
	if orig := obj.Origin(); orig != obj {
		return g.funcs[orig]
	}
	return nil
}

// Funcs returns every node in deterministic program order.
func (g *CallGraph) Funcs() []*FuncInfo { return g.order }

// Callee resolves one call expression to the *types.Func it statically
// invokes, or nil for dynamic calls (function values, interface methods
// stay nil only if unresolvable — a concrete method through a selection
// resolves fine).
func (g *CallGraph) Callee(call *ast.CallExpr) *types.Func {
	return calleeOf(g.prog.Info, call)
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// collectCallees walks fi's body (function literals included) recording
// every statically-resolved callee that has a declaration in the
// program.
func (g *CallGraph) collectCallees(fi *FuncInfo) {
	seen := make(map[*types.Func]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(g.prog.Info, call)
		if fn == nil {
			return true
		}
		if target := g.Lookup(fn); target != nil && !seen[target.Obj] {
			seen[target.Obj] = true
			fi.Callees = append(fi.Callees, target.Obj)
		}
		return true
	})
}

// Reaches reports whether pred holds for start or any function
// transitively callable from it through static module-internal edges.
func (g *CallGraph) Reaches(start *FuncInfo, pred func(*FuncInfo) bool) bool {
	seen := make(map[*FuncInfo]bool)
	var walk func(fi *FuncInfo) bool
	walk = func(fi *FuncInfo) bool {
		if fi == nil || seen[fi] {
			return false
		}
		seen[fi] = true
		if pred(fi) {
			return true
		}
		for _, callee := range fi.Callees {
			if walk(g.Lookup(callee)) {
				return true
			}
		}
		return false
	}
	return walk(start)
}

// memoized evaluates a tri-state memo slot with a cycle-safe default:
// while a node is being evaluated it reports false to itself.
func memoized(slot *int8, eval func() bool) bool {
	switch *slot {
	case 1:
		return false
	case 2:
		return true
	}
	*slot = 1 // provisional: cycles read false
	if eval() {
		*slot = 2
		return true
	}
	return false
}

// hasAnyLoop reports whether fi's body contains any for/range statement
// (function literals included).
func (g *CallGraph) hasAnyLoop(fi *FuncInfo) bool {
	return memoized(&fi.anyLoop, func() bool {
		found := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				found = true
			}
			return !found
		})
		return found
	})
}

// loopyCallee reports whether fn resolves to a module function whose
// body (transitively) contains a loop — the "calls search work from a
// loop" half of the long-running trigger.
func (g *CallGraph) loopyCallee(fn *types.Func) bool {
	fi := g.Lookup(fn)
	if fi == nil {
		return false // stdlib and unresolved callees are assumed bounded
	}
	return g.Reaches(fi, g.hasAnyLoop)
}

// isContextType reports whether t is context.Context.
func isContextContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasCtxCheck reports whether fi's own body consults a context: a
// .Err()/.Done() call on a context.Context value, context.Cause, or a
// call to one of the repo's poll helpers (interrupted, ctxErr).
func (g *CallGraph) hasCtxCheck(fi *FuncInfo) bool {
	return memoized(&fi.ctxCheck, func() bool {
		return ctxCheckIn(g.prog.Info, fi.Decl.Body)
	})
}

// ctxCheckIn is the node-level form of hasCtxCheck, shared with
// goroleak's join-signal scan.
func ctxCheckIn(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if name == "Err" || name == "Done" {
				if tv, ok := info.Types[fun.X]; ok && isContextContext(tv.Type) {
					found = true
					return false
				}
			}
			if name == "Cause" {
				if fn := calleeOf(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
					found = true
					return false
				}
			}
			if name == "interrupted" || name == "Interrupted" || name == "ctxErr" {
				found = true
				return false
			}
		case *ast.Ident:
			if fun.Name == "interrupted" || fun.Name == "ctxErr" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// ReachesCtxCheck reports whether a context check is reachable from fi
// through the static call graph.
func (g *CallGraph) ReachesCtxCheck(fi *FuncInfo) bool {
	return g.Reaches(fi, g.hasCtxCheck)
}
