// Fixture for the typed goroleak analyzer: goroutines must carry a join
// signal — WaitGroup.Done, a channel operation, a select, or a context
// check — directly or through a statically-resolved callee.
package gorofix

import (
	"context"
	"sync"
)

// Leak spawns a goroutine with no join signal anywhere: flagged.
func Leak() {
	go func() { // want "no join path"
		x := 0
		for i := 0; i < 1000000; i++ {
			x += i
		}
		_ = x
	}()
}

// LeakNamed leaks through a named callee with no signal: flagged.
func LeakNamed() {
	go spin() // want "no join path"
}

func spin() {
	for {
		_ = 1
	}
}

// Joined signals completion through a WaitGroup: clean.
func Joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// Sends communicates over a channel: clean.
func Sends(ch chan int) {
	go func() { ch <- 1 }()
}

// Drains selects on a stop channel — the audit flushLoop shape — and the
// signal is found through the named callee: clean.
func Drains(stop chan struct{}) {
	go drainLoop(stop)
}

func drainLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
	}
}

// Worker drains on ctx through a callee reached from the literal: clean.
func Worker(ctx context.Context) {
	go func() { work(ctx) }()
}

func work(ctx context.Context) {
	for ctx.Err() == nil {
		_ = 1
	}
}

// Ranges consumes a jobs channel: clean.
func Ranges(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}
