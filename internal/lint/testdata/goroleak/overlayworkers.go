// Overlay-shaped goroutine patterns: the customize-vs-query race suite
// spawns query workers against a shared metric while a writer toggles
// edges. Workers must carry a join signal.
package gorofix

import (
	"context"
	"sync"
)

type fakeMetric struct {
	mu sync.RWMutex
	n  int
}

func (m *fakeMetric) query() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

func (m *fakeMetric) customize() {
	m.mu.Lock()
	m.n++
	m.mu.Unlock()
}

// QueryWorkersJoined is the race-suite shape: reader goroutines joined
// through a WaitGroup while the writer customizes: clean.
func QueryWorkersJoined(m *fakeMetric) int {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.query()
		}()
	}
	m.customize()
	wg.Wait()
	return m.query()
}

// QueryWorkerLeaked spawns a reader with no join signal anywhere — the
// metric's own locks are not a join path: flagged.
func QueryWorkerLeaked(m *fakeMetric) {
	go func() { // want "no join path"
		for i := 0; i < 1000; i++ {
			_ = m.query()
		}
	}()
}

// BuilderCancelled runs a background overlay build that selects on the
// context: clean (the context check is the join signal).
func BuilderCancelled(ctx context.Context, m *fakeMetric) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				m.customize()
			}
		}
	}()
}
