// Fixture for the seededrand analyzer: package-global math/rand draws
// are flagged; explicitly seeded generators and type references are not.
package fixture

import "math/rand"

func draws(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: the sanctioned way in
	n := rng.Intn(10)                     // ok: method on a seeded generator
	n += rand.Intn(10)                    // want "unseeded package-global source"
	rand.Shuffle(n, func(i, j int) {})    // want "unseeded package-global source"
	_ = rand.Float64()                    // want "unseeded package-global source"
	var spare *rand.Rand                  // ok: type reference, not a draw
	_ = spare
	return n
}
