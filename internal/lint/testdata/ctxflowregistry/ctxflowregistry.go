// Fixture for the ctxflow analyzer's registry coverage. The package is
// named "registry" so the default target-package set applies, as it does
// to the real internal/registry package: shard preloads sweep the whole
// graph per weight type per destination and must abort with the serve
// context instead of pinning startup.
package registry

import "context"

// Preload sweeps every (weight, destination) pair without ever consulting
// a deadline — the unbounded-startup shape the contract forbids.
func Preload(weights, dests []int) int { // want "never consults a context.Context"
	n := 0
	for range weights {
		for range dests {
			n++
		}
	}
	return n
}

// PreloadCtx checks the serve context between sweeps: compliant.
func PreloadCtx(ctx context.Context, weights, dests []int) int {
	n := 0
	for range weights {
		for range dests {
			if ctx.Err() != nil {
				return n
			}
			n++
		}
	}
	return n
}
