package fixture

import clock "time"

func aliased() clock.Time {
	return clock.Now() // want "time.Now reads the wall clock"
}
