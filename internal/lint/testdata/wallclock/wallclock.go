// Fixture for the wallclock analyzer: time.Now and time.Since are
// flagged, every other use of package time is not.
package fixture

import "time"

func readings() (time.Time, time.Duration) {
	start := time.Now()    // want "time.Now reads the wall clock"
	d := time.Since(start) // want "time.Since reads the wall clock"
	_ = time.Unix(0, 0)    // ok: explicit instant, reproducible
	_ = time.Second        // ok: constant duration
	return start, d
}

func indirect() func() time.Time {
	return time.Now // want "time.Now reads the wall clock"
}
