// Fixture for the ctxflow analyzer. The package is named "core" so the
// default target-package set applies, as it does to the real
// internal/core, internal/graph and internal/lp packages.
package core

import "context"

func Nested(xs [][]int) int { // want "never consults a context.Context"
	s := 0
	for _, row := range xs {
		for _, v := range row {
			s += v
		}
	}
	return s
}

func Ignored(ctx context.Context, xs [][]int) int { // want "never consults a context.Context"
	s := 0
	for _, row := range xs {
		for _, v := range row {
			s += v
		}
	}
	return s
}

func NestedCtx(ctx context.Context, xs [][]int) int { // ok: polls its ctx param
	s := 0
	for _, row := range xs {
		if ctx.Err() != nil {
			return s
		}
		for _, v := range row {
			s += v
		}
	}
	return s
}

func Single(xs []int) int { // ok: one bounded pass, no nested work
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

func nestedUnexported(xs [][]int) int { // ok: contract covers exported API only
	s := 0
	for _, row := range xs {
		for _, v := range row {
			s += v
		}
	}
	return s
}

func Delegating(xs [][]int) int { // ok: hands the work to a *Ctx variant
	return NestedCtx(context.Background(), xs)
}

type walker struct{ ctx context.Context }

func (w *walker) Walk(xs [][]int) int { // ok: polls the stored context
	s := 0
	for _, row := range xs {
		if w.ctx != nil && w.ctx.Err() != nil {
			break
		}
		for _, v := range row {
			s += v
		}
	}
	return s
}

func InClosure(xs [][]int) int { // want "never consults a context.Context"
	s := 0
	for _, row := range xs {
		add := func() {
			for _, v := range row {
				s += v
			}
		}
		add()
	}
	return s
}
