// Fixture for the typed, interprocedural ctxflow analyzer. The package
// is named "core" so the default contract-package set applies, as it
// does to the real internal/core, internal/graph and internal/lp.
// It type-checks standalone (stdlib imports only).
package core

import "context"

// Direct nested loops with no reachable ctx check: obligated, flagged.
func Nested(xs [][]int) int { // want "exported Nested nested loops"
	s := 0
	for _, row := range xs {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// Interprocedural laundering: the loops hide in an unexported helper.
// The old syntactic heuristic missed this shape; the call graph does not.
func Laundered(xs [][]int) int { // want "reaches sum2"
	return indirection(xs)
}

func indirection(xs [][]int) int { return sum2(xs) }

// Unexported: carries no obligation of its own.
func sum2(xs [][]int) int {
	s := 0
	for _, row := range xs {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// A counted loop around a loopy module callee is the Yen shape:
// obligated even though the lexical nesting depth is 1.
func PerRow(xs [][]int) int { // want "calls rowSum from a loop"
	t := 0
	for _, row := range xs {
		t += rowSum(row)
	}
	return t
}

func rowSum(row []int) int {
	s := 0
	for _, v := range row {
		s += v
	}
	return s
}

// Discharged lexically: checks its own ctx.
func Checked(ctx context.Context, xs [][]int) int {
	if ctx.Err() != nil {
		return 0
	}
	return sum2(xs)
}

// Discharged interprocedurally: the kernel polls, every caller that
// reaches it passes.
func ThroughKernel(ctx context.Context, xs [][]int) int {
	return kernel(ctx, xs)
}

func kernel(ctx context.Context, xs [][]int) int {
	s := 0
	for _, row := range xs {
		if ctx.Err() != nil {
			return s
		}
		for _, v := range row {
			s += v
		}
	}
	return s
}

// Worklist shape (W): `for len(stack) > 0` where every push is guarded
// by a monotone visited check. Each element enters the worklist at most
// once, so the traversal is O(V+E): proven bounded, no obligation.
func Reach(adj [][]int, s int) []bool {
	seen := make([]bool, len(adj))
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// Partition shape (P): the inner loop ranges over adj[u] for the outer
// loop's u, so the total inner work telescopes to the edge count.
func Degrees(adj [][]int) []int {
	out := make([]int, len(adj))
	for u := range adj {
		for range adj[u] {
			out[u]++
		}
	}
	return out
}

// Budgeted shape (B): the outer bound is the caller's parameter and the
// body calls no loopy module code — the caller owns the budget.
func TopK(scores []int, k int) []int {
	picked := make([]bool, len(scores))
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		best := -1
		for j := range scores {
			if picked[j] {
				continue
			}
			if best < 0 || scores[j] > scores[best] {
				best = j
			}
		}
		if best < 0 {
			break
		}
		picked[best] = true
		out = append(out, best)
	}
	return out
}

// A budgeted loop that launches module searches each round is NOT
// proven bounded (Yen's k rounds of spur searches): still obligated.
func Rounds(xs [][]int, k int) int { // want "calls sum2 from a loop"
	t := 0
	for i := 0; i < k; i++ {
		t += sum2(xs)
	}
	return t
}
