// Fixture for the typed snapgen analyzer: frozen Snapshot values and
// pooled clones used across a generation bump without Refresh or
// re-acquire. The types mimic the real graph.Snapshot / registry shard
// shapes by name, which is what the analyzer keys on.
package snapfix

// Snapshot mirrors graph.Snapshot: frozen state stamped at a generation.
type Snapshot struct {
	gen uint64
}

// Gen reads the frozen generation.
func (s *Snapshot) Gen() uint64 { return s.gen }

// Net mirrors the mutable network: bump methods advance gen.
type Net struct {
	gen  uint64
	snap Snapshot
}

// Snapshot freezes the current state.
func (n *Net) Snapshot() *Snapshot { return &Snapshot{gen: n.gen} }

// SetRoad is a generation bump.
func (n *Net) SetRoad(e int) { n.gen++ }

// AcquireClone mirrors the registry pool: a gen-stamped private clone.
func (n *Net) AcquireClone() (*Net, uint64) { return &Net{gen: n.gen}, n.gen }

// Stale uses a snapshot after its source was mutated: flagged.
func Stale(n *Net) uint64 {
	s := n.Snapshot()
	n.SetRoad(1)
	return s.Gen() // want "generation bump at line"
}

// Refreshed re-binds after the bump: clean.
func Refreshed(n *Net) uint64 {
	s := n.Snapshot()
	n.SetRoad(1)
	s = n.Snapshot()
	return s.Gen()
}

// Unrelated bumps another network: this snapshot stays valid.
func Unrelated(n, m *Net) uint64 {
	s := n.Snapshot()
	m.SetRoad(1)
	return s.Gen()
}

// StaleClone holds a pooled clone across a bump on its shard: flagged.
func StaleClone(shard *Net) uint64 {
	clone, gen := shard.AcquireClone()
	shard.SetRoad(1)
	_ = clone.gen // want "generation bump at line"
	return gen
}

// PrivateMutation bumps the clone itself — the intended private-write
// pattern (attack algorithms disable edges on their own clone): clean.
func PrivateMutation(shard *Net) *Net {
	clone, _ := shard.AcquireClone()
	clone.SetRoad(1)
	return clone
}

// Reacquired gets a fresh clone after the bump: clean.
func Reacquired(shard *Net) uint64 {
	clone, _ := shard.AcquireClone()
	shard.SetRoad(1)
	clone, gen := shard.AcquireClone()
	_ = clone
	return gen
}
