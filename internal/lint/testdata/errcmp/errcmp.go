// Fixture for the errcmp analyzer: identity comparison against sentinel
// errors is flagged; errors.Is and nil checks are not.
package fixture

import (
	"errors"
	"io"
)

var ErrBoom = errors.New("boom")

func check(err error) bool {
	if err == ErrBoom { // want "errors.Is"
		return true
	}
	if err != io.EOF { // want "errors.Is"
		return false
	}
	if ErrBoom == err { // want "errors.Is"
		return true
	}
	if errors.Is(err, ErrBoom) { // ok: unwraps
		return true
	}
	return err == nil // ok: nil check needs no unwrapping
}
