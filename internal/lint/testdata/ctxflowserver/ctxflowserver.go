// Fixture for the ctxflow analyzer's server coverage. The package is
// named "server" so the default target-package set applies, as it does
// to the real internal/server package: request handlers that loop over
// unbounded work must propagate the request deadline.
package server

import "context"

// Handle fans work out over every unit of every batch without ever
// consulting a deadline — exactly the unbounded-handler shape the
// resilient-service contract forbids.
func Handle(batches [][]int) int { // want "never consults a context.Context"
	n := 0
	for _, batch := range batches {
		for _, unit := range batch {
			n += unit
		}
	}
	return n
}

// HandleCtx polls its request context between units: compliant.
func HandleCtx(ctx context.Context, batches [][]int) int {
	n := 0
	for _, batch := range batches {
		for _, unit := range batch {
			if ctx.Err() != nil {
				return n
			}
			n += unit
		}
	}
	return n
}

// Drain delegates the nested work to a *Ctx variant: compliant.
func Drain(ctx context.Context, batches [][]int) int {
	return HandleCtx(ctx, batches)
}
