// Fixture for the floateq analyzer: ==/!= on float operands is flagged;
// integer comparisons and exact-infinity sentinels are not.
package fixture

import "math"

type point struct {
	X float64
	N int
}

func cmp(a, b float64, n int) bool {
	if a == b { // want "order-of-summation sensitive"
		return true
	}
	if a != 1.5 { // want "order-of-summation sensitive"
		return true
	}
	if float64(n) == b { // want "order-of-summation sensitive"
		return true
	}
	if a+b == 2.0 { // want "order-of-summation sensitive"
		return true
	}
	if a == math.Inf(1) { // ok: exact infinity sentinel
		return true
	}
	return n == 3 // ok: integers compare exactly
}

func fields(p, q point) bool {
	if p.N != q.N { // ok: int field
		return false
	}
	return p.X == q.X // want "order-of-summation sensitive"
}

func viaFunc(p point) bool {
	return scale(p) == 0.0 // want "order-of-summation sensitive"
}

func scale(p point) float64 { return p.X * 2 }
