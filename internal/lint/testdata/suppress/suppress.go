// Fixture for the //lint:allow suppression path: annotated sites are
// silent, unannotated ones still fire. Run with the full analyzer suite.
package fixture

import "time"

func stamped() time.Time {
	return time.Now() //lint:allow wallclock fixture: trailing-comment form
}

func above() time.Time {
	//lint:allow wallclock fixture: comment-above form
	return time.Now()
}

func open() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Typed-only analyzer names are reserved: in a syntactic run this allow
// is neither "unknown" nor "unused" — it belongs to the other mode.
//lint:allow lockorder fixture: reserved name, suppresses nothing syntactically
func reservedName() {}
