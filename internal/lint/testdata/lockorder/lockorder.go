// Fixture for the typed lockorder analyzer: acquisition-order cycles,
// interprocedural self-deadlocks, and non-deferred locks leaking across
// returns. The Ledger type mirrors the real audit ledger's appendMu /
// syncMu pair — with a deliberately broken reverse nesting.
package lockfix

import (
	"errors"
	"sync"
)

// Ledger has the audit ledger's two locks. The real ledger nests only
// syncMu -> appendMu; BadAppend introduces the reverse order.
type Ledger struct {
	appendMu sync.Mutex
	syncMu   sync.Mutex
}

// Flush nests syncMu -> appendMu (the real ledger's one order). The
// acquire sits on a cycle once BadAppend exists, so it is flagged too.
func (l *Ledger) Flush() {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.appendMu.Lock() // want "lock order cycle"
	defer l.appendMu.Unlock()
}

// BadAppend nests appendMu -> syncMu: the reverse order. Running Flush
// and BadAppend concurrently can deadlock.
func (l *Ledger) BadAppend() {
	l.appendMu.Lock()
	defer l.appendMu.Unlock()
	l.syncMu.Lock() // want "lock order cycle"
	defer l.syncMu.Unlock()
}

// Dirty releases explicitly before every return — the interleaved
// pattern the real syncDirty uses. Explicit Unlock on each path is not
// a leak.
func (l *Ledger) Dirty(skip bool) error {
	l.appendMu.Lock()
	if skip {
		l.appendMu.Unlock()
		return nil
	}
	l.appendMu.Unlock()
	return nil
}

// Box demonstrates the interprocedural self-deadlock: helper re-acquires
// a lock the caller already holds.
type Box struct {
	mu sync.RWMutex
}

func (b *Box) Reenter() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.helper() // want "self-deadlock"
}

func (b *Box) helper() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// Leaky acquires without defer and returns on the error path while still
// holding: the lock leaks.
func (b *Box) Leaky(fail bool) error {
	b.mu.Lock()
	if fail {
		return errors.New("leaked") // want "returns while holding"
	}
	b.mu.Unlock()
	return nil
}

// Deferred release is immune to early returns.
func (b *Box) Safe(fail bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if fail {
		return errors.New("fine")
	}
	return nil
}
