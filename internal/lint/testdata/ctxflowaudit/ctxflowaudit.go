// Fixture for the ctxflow analyzer's audit coverage. The package is
// named "audit" so the default target-package set applies, as it does to
// the real internal/audit package: an exported verifier that replays an
// unbounded ledger must stay cancellable, while the real package keeps
// its hot-path exports loop-free (recursion and unexported helpers).
package audit

import "context"

// ReplayAll walks every line of every ledger segment with no way to stop
// early — the unbounded-verification shape the analyzer flags.
func ReplayAll(segments [][]string) int { // want "never consults a context.Context"
	n := 0
	for _, seg := range segments {
		for range seg {
			n++
		}
	}
	return n
}

// ReplayAllCtx checks the context between lines: compliant.
func ReplayAllCtx(ctx context.Context, segments [][]string) int {
	n := 0
	for _, seg := range segments {
		for range seg {
			if ctx.Err() != nil {
				return n
			}
			n++
		}
	}
	return n
}

// VerifyAll delegates the nested replay to a *Ctx variant: compliant.
func VerifyAll(ctx context.Context, segments [][]string) int {
	return ReplayAllCtx(ctx, segments)
}
