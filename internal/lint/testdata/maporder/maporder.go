// Fixture for the maporder analyzer: appending to a slice while ranging
// over a map is flagged unless a sort call mentioning the slice follows
// in the same function.
package fixture

import "sort"

func keysUnsorted(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "never sorted afterwards"
	}
	return out
}

func keysSorted(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k) // ok: sorted below
	}
	sort.Ints(out)
	return out
}

func fromMake() []string {
	seen := make(map[string]bool)
	seen["x"] = true
	var out []string
	for k := range seen {
		out = append(out, k) // want "never sorted afterwards"
	}
	return out
}

func viaReturner() []int {
	var out []int
	for k := range table() {
		out = append(out, k) // want "never sorted afterwards"
	}
	return out
}

func table() map[int]bool { return nil }

func sortSliceCounts(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name) // ok: sort.Slice below mentions names
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

func overSlice(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v) // ok: slice iteration is ordered
	}
	return out
}
