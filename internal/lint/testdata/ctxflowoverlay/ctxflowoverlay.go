// Fixture for the ctxflow analyzer over the overlay package shapes: the
// CRP query layer's Dijkstra sweeps push onto a loopy binary heap from a
// worklist loop, which carries loop evidence even though the lexical
// nesting depth is 1. The package is named "overlay" so the contract
// set applies, as it does to the real internal/overlay. It type-checks
// standalone (stdlib imports only).
package overlay

import "context"

// miniHeap mirrors the overlay's bheap: push and pop both loop (sift),
// so any call to them from a loop is loop evidence.
type miniHeap []int

func (h *miniHeap) push(v int) {
	*h = append(*h, v)
	for i := len(*h) - 1; i > 0 && (*h)[i] < (*h)[i-1]; i-- {
		(*h)[i], (*h)[i-1] = (*h)[i-1], (*h)[i]
	}
}

func (h *miniHeap) pop() int {
	v := (*h)[0]
	for i := 1; i < len(*h); i++ {
		(*h)[i-1] = (*h)[i]
	}
	*h = (*h)[:len(*h)-1]
	return v
}

// Sweep is the undischarged Dijkstra shape: the worklist loop itself is
// pruned, but pushing onto the loopy heap from inside it is evidence,
// and no cancellation check is reachable: flagged.
func Sweep(starts []int) int { // want "calls push from a loop"
	var h miniHeap
	for _, s := range starts {
		h.push(s)
	}
	settled := 0
	for len(h) > 0 {
		_ = h.pop()
		settled++
	}
	return settled
}

// SweepChecked is the real Querier.BuildTargetLabels shape: the same
// sweep, discharged by polling ctx.Err per pop.
func SweepChecked(ctx context.Context, starts []int) int {
	var h miniHeap
	for _, s := range starts {
		h.push(s)
	}
	settled := 0
	for len(h) > 0 {
		if ctx.Err() != nil {
			break
		}
		_ = h.pop()
		settled++
	}
	return settled
}

// querier mirrors the real Querier: cancellation is carried on the
// receiver and checked through an unexported helper.
type querier struct {
	ctx context.Context
	h   miniHeap
}

func (q *querier) interrupted() bool { return q.ctx != nil && q.ctx.Err() != nil }

// Corridor is the real Querier.corridor shape: discharged through the
// receiver's interrupted helper, which the call graph resolves.
func (q *querier) Corridor(starts []int) int {
	if q.interrupted() {
		return 0
	}
	for _, s := range starts {
		q.h.push(s)
	}
	n := 0
	for len(q.h) > 0 {
		_ = q.h.pop()
		n++
	}
	return n
}

// Customize is the undischarged metric-repair shape: per-cell recompute
// reached through an unexported drain helper, with no context anywhere.
func Customize(cells [][]int) int { // want "reaches drain"
	return drain(cells)
}

func drain(cells [][]int) int {
	total := 0
	for _, cell := range cells {
		var h miniHeap
		for _, v := range cell {
			h.push(v)
		}
		total += len(h)
	}
	return total
}

// CustomizeChecked is the real Metric.Customize shape: the same drain,
// discharged by a per-cell ctx.Err poll.
func CustomizeChecked(ctx context.Context, cells [][]int) int {
	total := 0
	for _, cell := range cells {
		if ctx.Err() != nil {
			break
		}
		var h miniHeap
		for _, v := range cell {
			h.push(v)
		}
		total += len(h)
	}
	return total
}
