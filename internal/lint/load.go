package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadOptions controls which files Load and Walk parse.
type LoadOptions struct {
	// Tests includes _test.go files. The default (false) matches the CI
	// gate: test files exercise the invariants rather than carry them, so
	// the repo-wide sweep lints production sources only.
	Tests bool
}

// LoadDir parses every .go file directly inside dir into one Package.
// rel is the directory path to report in diagnostics (and to key
// package-scoped analyzer config); it is usually dir relative to the
// module root. Returns nil (no error) when the directory holds no
// eligible Go files.
func LoadDir(fset *token.FileSet, dir, rel string, opts LoadOptions) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !opts.Tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	pkg := &Package{Fset: fset, Dir: filepath.ToSlash(rel)}
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, &File{
			AST:      f,
			Filename: filepath.ToSlash(filepath.Join(rel, name)),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// Walk loads every package under root, recursively, skipping testdata,
// hidden directories, and (by convention) vendor. Packages come back
// sorted by directory so the whole pipeline is deterministic.
func Walk(fset *token.FileSet, root string, opts LoadOptions) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		pkg, err := LoadDir(fset, path, rel, opts)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, nil
}
