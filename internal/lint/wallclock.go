package lint

import (
	"fmt"
	"go/ast"
)

// wallClock flags reads of the wall clock: time.Now and time.Since. A
// wall-clock read anywhere in an attack or experiment path makes the
// 40-run-per-cell grid non-replayable — timing must come from the run's
// seeded inputs, and the few legitimate measurement sites (benchmark
// stamps, Result.Runtime) carry //lint:allow wallclock annotations.
type wallClock struct{}

// NewWallClock returns the wallclock analyzer.
func NewWallClock() Analyzer { return wallClock{} }

func (wallClock) Name() string { return "wallclock" }
func (wallClock) Doc() string {
	return "no time.Now/time.Since outside annotated timing sites"
}

func (wallClock) Check(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		timeName := importName(f.AST, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := isPkgSel(sel, timeName)
			if !ok || (name != "Now" && name != "Since") {
				return true
			}
			out = append(out, pkg.diag(f, n.Pos(), "wallclock", fmt.Sprintf(
				"time.%s reads the wall clock and breaks run reproducibility; derive timing from seeded inputs or annotate an approved measurement site", name)))
			return true
		})
	}
	return out
}
