package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// mapOrder flags the pattern that most directly corrupts reproducible
// output: ranging over a map and appending to a slice that is never
// sorted afterwards in the same function. Go randomizes map iteration
// order per process, so such a slice changes order run to run — fatal
// when it feeds a returned path list, a CSV/JSON export, or a checkpoint
// journal. The analyzer is syntactic: it recognizes map-typed range
// subjects declared in the enclosing function (make(map...), map
// literals, var/param declarations) and package-local calls returning a
// map, and accepts any sort.*/slices.Sort* call mentioning the slice
// after the loop as the fix.
type mapOrder struct{}

// NewMapOrder returns the maporder analyzer.
func NewMapOrder() Analyzer { return mapOrder{} }

func (mapOrder) Name() string { return "maporder" }
func (mapOrder) Doc() string {
	return "slices built while ranging over a map must be sorted before use"
}

func (mapOrder) Check(pkg *Package) []Diagnostic {
	returners := mapReturners(pkg)
	var out []Diagnostic
	for _, f := range pkg.Files {
		sortName := importName(f.AST, "sort")
		slicesName := importName(f.AST, "slices")
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mapVars := mapTypedVars(fd)
			// candidate appends: slice ident += inside a map-range body
			type cand struct {
				slice string
				pos   token.Pos
			}
			var cands []cand
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapExpr(rs.X, mapVars, returners) {
					return true
				}
				ast.Inspect(rs.Body, func(m ast.Node) bool {
					as, ok := m.(*ast.AssignStmt)
					if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
						return true
					}
					lhs, ok := as.Lhs[0].(*ast.Ident)
					if !ok {
						return true
					}
					call, ok := as.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
						return true
					}
					cands = append(cands, cand{slice: lhs.Name, pos: as.Pos()})
					return true
				})
				return true
			})
			for _, c := range cands {
				if sortedAfter(fd.Body, c.slice, c.pos, sortName, slicesName) {
					continue
				}
				out = append(out, pkg.diag(f, c.pos, "maporder", fmt.Sprintf(
					"%s is appended to while ranging over a map and never sorted afterwards; map order is randomized per process, so sort it (sort.*/slices.Sort*) before it escapes", c.slice)))
			}
		}
	}
	return out
}

// mapReturners collects names of package-level functions and methods
// whose only result is a map type, so `for k := range p.EdgeSet()` is
// recognized within the defining package.
func mapReturners(pkg *Package) map[string]bool {
	set := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
				continue
			}
			if _, ok := fd.Type.Results.List[0].Type.(*ast.MapType); ok {
				set[fd.Name.Name] = true
			}
		}
	}
	return set
}

// mapTypedVars gathers identifiers that are locally visible map values:
// parameters and receivers of map type, var declarations, and :=
// bindings to make(map...) or a map literal.
func mapTypedVars(fd *ast.FuncDecl) map[string]bool {
	vars := make(map[string]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if _, ok := field.Type.(*ast.MapType); !ok {
				continue
			}
			for _, name := range field.Names {
				vars[name.Name] = true
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if _, ok := vs.Type.(*ast.MapType); ok {
					for _, name := range vs.Names {
						vars[name.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isMapValueExpr(s.Rhs[i]) {
					vars[id.Name] = true
				}
			}
		}
		return true
	})
	return vars
}

// isMapValueExpr reports whether e syntactically constructs a map:
// make(map[...]...) or a map composite literal.
func isMapValueExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		fn, ok := v.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" || len(v.Args) == 0 {
			return false
		}
		_, isMap := v.Args[0].(*ast.MapType)
		return isMap
	case *ast.CompositeLit:
		_, isMap := v.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// isMapExpr reports whether the range subject e is a map per local
// knowledge: a known map variable, a direct map construction, or a call
// to a package-local map-returning function/method.
func isMapExpr(e ast.Expr, mapVars, returners map[string]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return mapVars[v.Name]
	case *ast.CallExpr:
		switch fn := v.Fun.(type) {
		case *ast.Ident:
			return returners[fn.Name] || isMapValueExpr(e)
		case *ast.SelectorExpr:
			return returners[fn.Sel.Name]
		}
		return isMapValueExpr(e)
	case *ast.CompositeLit:
		return isMapValueExpr(e)
	}
	return false
}

// sortedAfter reports whether a sort.* or slices.Sort* call mentioning
// slice appears after pos inside body.
func sortedAfter(body *ast.BlockStmt, slice string, pos token.Pos, sortName, slicesName string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := (sortName != "" && id.Name == sortName) ||
			(slicesName != "" && id.Name == slicesName && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == slice {
					mentions = true
					return false
				}
				return true
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
