package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroLeak flags goroutines started without a join path. Every `go`
// statement in this repo's production code belongs to one of three
// shapes the concurrency review established: a pooled worker that
// signals completion through a sync.WaitGroup, a pipeline stage that
// communicates over channels (send, close, receive, or select), or a
// background loop that drains on context cancellation. A goroutine with
// none of those signals can outlive its parent silently — the leak that
// turns a cancelled attack sweep into a slow memory bleed.
//
// The join signal may live in the spawned function literal itself or be
// reachable from it through static module-internal calls: `go
// l.flushLoop()` passes because flushLoop selects on the stop channel,
// and `go func() { worker(ctx, jobs) }()` passes because worker both
// receives from jobs and checks ctx.
//
// Soundness boundary: a `go` on a function value or interface method is
// not resolvable statically and is not flagged (no evidence either
// way); and "a signal exists" does not prove the parent waits on it.
// The race detector remains the dynamic authority; this catches the
// structurally signal-free spawn.
type goroLeak struct {
	prog *Program
}

// NewGoroLeak returns the goroleak analyzer over prog.
func NewGoroLeak(prog *Program) Analyzer { return &goroLeak{prog: prog} }

func (*goroLeak) Name() string { return "goroleak" }
func (*goroLeak) Doc() string {
	return "goroutines must have a join path: WaitGroup.Done, channel signal, select, or ctx check (typed)"
}

func (gl *goroLeak) Check(pkg *Package) []Diagnostic {
	tp := gl.prog.Typed(pkg)
	if tp == nil {
		return nil
	}
	g := gl.prog.Graph()
	var out []Diagnostic
	for _, fi := range g.Funcs() {
		if fi.Pkg != tp {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if g.goroutineJoins(gs.Call) {
				return true
			}
			out = append(out, pkg.diag(fi.File, gs.Pos(), "goroleak",
				"goroutine has no join path (no WaitGroup.Done, channel send/close/receive, select, or ctx check is reachable); it can outlive its parent"))
			return true
		})
	}
	return out
}

// goroutineJoins reports whether the spawned call carries a join signal:
// directly in a function literal's body, or reachable from the (static)
// callee through the call graph. Unresolvable targets pass.
func (g *CallGraph) goroutineJoins(call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if joinSignalIn(g.prog.Info, lit.Body) {
			return true
		}
		return g.anyCalleeJoins(lit.Body)
	}
	fn := calleeOf(g.prog.Info, call)
	if fn == nil {
		return true // dynamic target: no evidence either way
	}
	fi := g.Lookup(fn)
	if fi == nil {
		return true // body outside the program (stdlib)
	}
	return g.Reaches(fi, g.hasJoinSignal)
}

// anyCalleeJoins reports whether any statically-resolved call inside
// body reaches a join signal.
func (g *CallGraph) anyCalleeJoins(body ast.Node) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fi := g.Lookup(calleeOf(g.prog.Info, call)); fi != nil && g.Reaches(fi, g.hasJoinSignal) {
			joined = true
			return false
		}
		return true
	})
	return joined
}

// hasJoinSignal reports whether fi's own body contains a join signal
// (memoized; transitivity comes from Reaches).
func (g *CallGraph) hasJoinSignal(fi *FuncInfo) bool {
	return memoized(&fi.joinSig, func() bool {
		return joinSignalIn(g.prog.Info, fi.Decl.Body)
	})
}

// joinSignalIn scans one body for a direct join signal: channel send,
// close, receive, select, range over a channel, (*sync.WaitGroup).Done,
// or a context check.
func joinSignalIn(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(v.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
					if fn := calleeOf(info, v); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
						found = true
					}
				}
			}
		}
		return !found
	})
	if found {
		return true
	}
	return ctxCheckIn(info, body)
}
