package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText prints one "file:line:col: [analyzer] message" line per
// diagnostic, in the order given (Run already position-sorts).
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// Report is the -json output shape of cmd/lint. Mode records which
// suite produced the diagnostics ("typed" or "syntactic") so archived
// artifacts are self-describing.
type Report struct {
	Mode        string       `json:"mode"`
	Count       int          `json:"count"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON emits the diagnostics as an indented Report object. The
// diagnostics array is never null, so consumers can index it
// unconditionally.
func WriteJSON(w io.Writer, mode string, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Mode: mode, Count: len(diags), Diagnostics: diags})
}
