package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// snapGen flags frozen-snapshot values used across a generation bump.
// A graph.Snapshot (any module type named Snapshot) and a pooled clone
// handed out by AcquireClone are frozen at one generation; a SetRoad /
// AddRoad / AddNode on their source network between binding the value
// and using it means the use reads pre-mutation state — exactly the bug
// class the registry's gen-consistency retry loop guards at runtime.
// The static rule: after a bump on the snapshot's source, the snapshot
// must be re-bound (fresh Snapshot()/Freeze call, s = s.Refresh(), or
// AcquireClone again) before its next use.
//
// Provenance is tracked by the receiver's root identifier: snap :=
// shard.Snapshot(wt) ties snap to shard, so clone.SetRoad(...) — a
// private mutation of a clone the caller owns — does not invalidate
// shard's snapshots, while shard.SetRoad(...) does. A bump whose source
// cannot be resolved invalidates conservatively.
//
// Soundness boundary: the walk is lexical and per-function — a bump
// reached through a callee or a concurrent goroutine is not seen, and
// snapshots stored in struct fields are not tracked. Runtime generation
// checks stay the authority; this catches the straight-line misuse a
// reviewer would.
type snapGen struct {
	prog *Program
}

// NewSnapGen returns the snapgen analyzer over prog.
func NewSnapGen(prog *Program) Analyzer { return &snapGen{prog: prog} }

func (*snapGen) Name() string { return "snapgen" }
func (*snapGen) Doc() string {
	return "no Snapshot/pooled-clone use across a SetRoad/generation bump without Refresh or re-acquire (typed)"
}

// bumpNames are the mutation entry points that advance a graph or shard
// generation and invalidate frozen state derived from the receiver.
var bumpNames = map[string]bool{
	"SetRoad": true, "AddRoad": true, "AddTwoWayRoad": true,
	"AddIntersection": true, "AddNode": true, "AddEdge": true,
}

func (sg *snapGen) Check(pkg *Package) []Diagnostic {
	tp := sg.prog.Typed(pkg)
	if tp == nil {
		return nil
	}
	var out []Diagnostic
	for _, f := range tp.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &snapWalker{
				sg: sg, tp: tp, file: f, pkg: pkg,
				tracked: make(map[types.Object]*snapBinding),
			}
			w.walk(fd.Body)
			out = append(out, w.diags...)
		}
	}
	return out
}

// snapBinding is one tracked snapshot-typed local.
type snapBinding struct {
	bindPos token.Pos
	source  types.Object // provenance root (nil: unknown, invalidated by any bump)
	bumpPos token.Pos    // set when a bump exposed this binding
	exposed bool
}

// snapWalker tracks snapshot bindings through one function body in
// source order.
type snapWalker struct {
	sg    *snapGen
	tp    *TypedPackage
	file  *File
	pkg   *Package
	diags []Diagnostic

	tracked map[types.Object]*snapBinding
}

func (w *snapWalker) walk(body *ast.BlockStmt) {
	info := w.sg.prog.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				w.scan(rhs)
			}
			clone := w.acquireClone(v)
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if isSnapshotType(obj.Type()) || (clone != nil && i == 0) {
					w.tracked[obj] = &snapBinding{bindPos: id.Pos(), source: w.bindingSource(v, i)}
				} else {
					delete(w.tracked, obj) // rebound to something else
				}
			}
			return false
		default:
			return true
		case *ast.CallExpr:
			w.scan(v)
			return false
		case *ast.Ident:
			w.useOf(v)
			return true
		}
	})
}

// scan processes one expression subtree: bump calls expose matching
// bindings, identifier reads of exposed bindings are flagged.
func (w *snapWalker) scan(e ast.Node) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if src, ok := w.bumpSource(call); ok {
				for obj, b := range w.tracked {
					if b.exposed || obj == src {
						continue // a bump on the clone itself is a private mutation
					}
					if b.source == nil || src == nil || b.source == src {
						b.exposed = true
						b.bumpPos = call.Pos()
					}
				}
				// Still scan the arguments for snapshot reads.
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			w.useOf(id)
		}
		return true
	})
}

// useOf flags a read of an exposed snapshot variable.
func (w *snapWalker) useOf(id *ast.Ident) {
	obj := w.sg.prog.Info.Uses[id]
	if obj == nil {
		return
	}
	b, ok := w.tracked[obj]
	if !ok || !b.exposed {
		return
	}
	w.diags = append(w.diags, w.pkg.diag(w.file, id.Pos(), "snapgen", fmt.Sprintf(
		"%s was frozen at line %d but a generation bump at line %d invalidated it; Refresh or re-acquire before this use",
		id.Name,
		w.sg.prog.Fset.Position(b.bindPos).Line,
		w.sg.prog.Fset.Position(b.bumpPos).Line)))
	delete(w.tracked, obj) // one finding per exposure
}

// bumpSource classifies call as a generation bump and returns the root
// object of its receiver (nil when unresolvable).
func (w *snapWalker) bumpSource(call *ast.CallExpr) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !bumpNames[sel.Sel.Name] {
		return nil, false
	}
	fn := calleeOf(w.sg.prog.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	// Module-declared methods only: a stdlib AddNode is not a bump.
	if _, isModule := w.sg.prog.byPath[fn.Pkg().Path()]; !isModule {
		return nil, false
	}
	return w.rootObj(sel.X), true
}

// acquireClone returns the AcquireClone call when the assignment's RHS
// is one (the first LHS is the generation-stamped pooled clone).
func (w *snapWalker) acquireClone(as *ast.AssignStmt) *ast.CallExpr {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "AcquireClone" {
		return call
	}
	return nil
}

// bindingSource derives the provenance root for LHS index i of an
// assignment: the receiver root of the producing call (shard in
// shard.Snapshot(wt)), or the first argument's root for plain calls
// (g in graph.Freeze(g, w)).
func (w *snapWalker) bindingSource(as *ast.AssignStmt, i int) types.Object {
	rhs := as.Rhs[0]
	if len(as.Rhs) == len(as.Lhs) {
		rhs = as.Rhs[i]
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return w.rootObj(rhs)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := w.sg.prog.Info.Selections[sel]; isMethod {
			return w.rootObj(sel.X)
		}
	}
	if len(call.Args) > 0 {
		return w.rootObj(call.Args[0])
	}
	return nil
}

// rootObj resolves the base identifier of a selector/index chain.
func (w *snapWalker) rootObj(e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.Ident:
			if obj := w.sg.prog.Info.Uses[v]; obj != nil {
				return obj
			}
			return w.sg.prog.Info.Defs[v]
		default:
			return nil
		}
	}
}

// isSnapshotType matches *T / T for a named type called Snapshot.
func isSnapshotType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Snapshot"
}
