package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file is the go/types-backed layer under the typed analyzers
// (ctxflow v2, lockorder, snapgen, goroleak). It stays stdlib-only: the
// module's own packages are parsed by the existing Walk/LoadDir loader and
// type-checked here in dependency order; everything else (the standard
// library) resolves through go/importer. The syntactic layer remains
// untouched underneath — a TypedPackage embeds the same *Package the
// AST analyzers see, so //lint:allow suppression, reporting, and walk
// order are shared between both modes.

// TypedPackage is one type-checked package: the parsed Package plus its
// import path, *types.Package, and the program-wide types.Info.
type TypedPackage struct {
	*Package
	Path  string // import path ("altroute/internal/graph", or the rel dir for standalone fixtures)
	Types *types.Package
	Info  *types.Info
}

// Program is a set of type-checked packages sharing one FileSet and one
// types.Info, plus the cross-package call graph the typed analyzers
// consume. Packages are kept in the same deterministic Dir order the
// syntactic Walk produces.
type Program struct {
	Fset *token.FileSet
	Pkgs []*TypedPackage
	Info *types.Info

	byPkg  map[*Package]*TypedPackage
	byPath map[string]*TypedPackage

	graph     *CallGraph
	graphOnce sync.Once
}

// Typed returns the TypedPackage wrapping pkg, or nil when pkg is not
// part of this program (the adapter contract typed analyzers rely on).
func (p *Program) Typed(pkg *Package) *TypedPackage { return p.byPkg[pkg] }

// Packages returns the underlying syntactic packages in program order,
// ready to hand to Run.
func (p *Program) Packages() []*Package {
	out := make([]*Package, len(p.Pkgs))
	for i, tp := range p.Pkgs {
		out[i] = tp.Package
	}
	return out
}

// newInfo allocates the shared types.Info with every map the typed
// analyzers need populated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// stdImporter resolves non-module import paths. It tries the compiled
// export-data importer first (fast) and falls back to type-checking the
// dependency from $GOROOT source, caching either result. Neither stdlib
// importer documents concurrency safety, so lookups serialize on mu.
type stdImporter struct {
	mu     sync.Mutex
	cache  map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

var sharedStd = &stdImporter{cache: make(map[string]*types.Package)}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pkg, ok := s.cache[path]; ok {
		return pkg, nil
	}
	if s.gc == nil {
		s.gc = importer.Default()
		s.source = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	pkg, err := s.gc.Import(path)
	if err != nil {
		pkg, err = s.source.Import(path)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: importing %s: %w", path, err)
	}
	s.cache[path] = pkg
	return pkg, nil
}

// progImporter resolves module-internal paths to packages type-checked
// by this program and delegates everything else to the shared stdlib
// importer.
type progImporter struct {
	byPath map[string]*types.Package
}

func (p *progImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := p.byPath[path]; ok {
		return pkg, nil
	}
	return sharedStd.Import(path)
}

// FindModule walks up from dir looking for a go.mod, returning the
// module root directory and module path. ok is false outside any module
// (standalone fixture trees type-check with stdlib imports only).
func FindModule(dir string) (root, modPath string, ok bool) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", false
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return dir, strings.TrimSpace(rest), true
				}
			}
			return "", "", false
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", false
		}
		dir = parent
	}
}

// importsOf collects the unique import paths of a parsed package in
// first-appearance order.
func importsOf(pkg *Package) []string {
	var paths []string
	seen := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, imp := range f.AST.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	return paths
}

// LoadTypedModule parses every package under moduleRoot (the syntactic
// Walk, so typed and syntactic modes see identical package sets in
// identical order) and type-checks them in dependency order. Test files
// are never loaded: external _test packages cannot share a type-checked
// unit with their package under test, and the cancellation/lock/
// generation contracts the typed analyzers encode are production
// invariants.
func LoadTypedModule(fset *token.FileSet, moduleRoot, modPath string) (*Program, error) {
	pkgs, err := Walk(fset, moduleRoot, LoadOptions{})
	if err != nil {
		return nil, err
	}
	pathFor := func(pkg *Package) string {
		if pkg.Dir == "" {
			return modPath
		}
		return modPath + "/" + pkg.Dir
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, pkg := range pkgs {
		byPath[pathFor(pkg)] = pkg
	}

	// Topological order over module-internal imports, deterministic
	// because Walk order is and the DFS visits imports in source order.
	prog := &Program{
		Fset:   fset,
		Info:   newInfo(),
		byPkg:  make(map[*Package]*TypedPackage),
		byPath: make(map[string]*TypedPackage),
	}
	typesByPath := make(map[string]*types.Package)
	imp := &progImporter{byPath: typesByPath}
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int)
	var check func(path string) error
	check = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		pkg := byPath[path]
		for _, dep := range importsOf(pkg) {
			if byPath[dep] != nil {
				if err := check(dep); err != nil {
					return err
				}
			}
		}
		tp, err := typeCheckPackage(fset, prog.Info, imp, pkg, path)
		if err != nil {
			return err
		}
		typesByPath[path] = tp.Types
		prog.byPkg[pkg] = tp
		prog.byPath[path] = tp
		state[path] = done
		return nil
	}
	for _, pkg := range pkgs {
		if err := check(pathFor(pkg)); err != nil {
			return nil, err
		}
	}
	for _, pkg := range pkgs { // preserve Walk order, not check order
		prog.Pkgs = append(prog.Pkgs, prog.byPkg[pkg])
	}
	return prog, nil
}

// LoadTypedDir type-checks the single package in dir as a standalone
// program — the golden-fixture path. Imports must resolve outside the
// module (in practice: the standard library).
func LoadTypedDir(fset *token.FileSet, dir, rel string) (*Program, error) {
	pkg, err := LoadDir(fset, dir, rel, LoadOptions{})
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	prog := &Program{
		Fset:   fset,
		Info:   newInfo(),
		byPkg:  make(map[*Package]*TypedPackage),
		byPath: make(map[string]*TypedPackage),
	}
	path := pkg.Dir
	if path == "" {
		path = pkg.Name
	}
	tp, err := typeCheckPackage(fset, prog.Info, sharedStd, pkg, path)
	if err != nil {
		return nil, err
	}
	prog.Pkgs = append(prog.Pkgs, tp)
	prog.byPkg[pkg] = tp
	prog.byPath[path] = tp
	return prog, nil
}

func typeCheckPackage(fset *token.FileSet, info *types.Info, imp types.Importer, pkg *Package, path string) (*TypedPackage, error) {
	files := make([]*ast.File, len(pkg.Files))
	for i, f := range pkg.Files {
		files[i] = f.AST
	}
	cfg := types.Config{Importer: imp}
	tpkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &TypedPackage{Package: pkg, Path: path, Types: tpkg, Info: info}, nil
}

// fileOf maps a position back to the File holding it, for diagnostics
// raised while walking another package's declarations.
func (tp *TypedPackage) fileOf(pos token.Pos) *File {
	position := tp.Fset.Position(pos)
	for _, f := range tp.Files {
		if tp.Fset.Position(f.AST.Pos()).Filename == position.Filename {
			return f
		}
	}
	return nil
}

// sortedKeys is a small helper for deterministic map iteration in the
// typed analyzers.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
