package partition

import (
	"errors"
	"math"
	"strings"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// bridgeGraph builds two triangles joined by two bridge edges:
//
//	{0,1,2} ==bridge(2->3, cost 2)==> {3,4,5}
//	        ==bridge(1->4, cost 3)==>
//
// plus return bridges 3->2 (cost 5) and 4->1 (cost 7).
func bridgeGraph(t *testing.T) (*graph.Graph, []float64) {
	t.Helper()
	g := graph.New(6)
	var costs []float64
	add := func(a, b graph.NodeID, c float64) graph.EdgeID {
		t.Helper()
		e, err := g.AddEdge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, c)
		return e
	}
	// Triangles (cheap internal edges shouldn't matter for the cut).
	for _, tri := range [][3]graph.NodeID{{0, 1, 2}, {3, 4, 5}} {
		add(tri[0], tri[1], 10)
		add(tri[1], tri[2], 10)
		add(tri[2], tri[0], 10)
		add(tri[1], tri[0], 10)
		add(tri[2], tri[1], 10)
		add(tri[0], tri[2], 10)
	}
	add(2, 3, 2) // inbound bridge A
	add(1, 4, 3) // inbound bridge B
	add(3, 2, 5) // outbound bridge A
	add(4, 1, 7) // outbound bridge B
	return g, costs
}

func costFn(costs []float64) graph.WeightFunc {
	return func(e graph.EdgeID) float64 { return costs[e] }
}

func verifyCut(t *testing.T, g *graph.Graph, area []graph.NodeID, cut []graph.EdgeID, dir Direction) {
	t.Helper()
	for _, e := range cut {
		g.DisableEdge(e)
	}
	defer func() {
		for _, e := range cut {
			g.EnableEdge(e)
		}
	}()
	inArea := map[graph.NodeID]bool{}
	for _, a := range area {
		inArea[a] = true
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := graph.NodeID(n)
		if inArea[id] {
			continue
		}
		reach := graph.ReachableFrom(g, id)
		for _, a := range area {
			if (dir == Inbound || dir == BothWays) && reach[a] {
				t.Fatalf("area node %d still reachable from outside node %d", a, id)
			}
		}
	}
	if dir == Outbound || dir == BothWays {
		for _, a := range area {
			reach := graph.ReachableFrom(g, a)
			for n := 0; n < g.NumNodes(); n++ {
				if !inArea[graph.NodeID(n)] && reach[n] {
					t.Fatalf("outside node %d still reachable from area node %d", n, a)
				}
			}
		}
	}
}

func TestIsolateInbound(t *testing.T) {
	g, costs := bridgeGraph(t)
	area := []graph.NodeID{3, 4, 5}
	res, err := IsolateArea(g, area, costFn(costs), Inbound)
	if err != nil {
		t.Fatalf("IsolateArea: %v", err)
	}
	// Optimal inbound cut: both inbound bridges, cost 5.
	if math.Abs(res.TotalCost-5) > 1e-9 {
		t.Errorf("cost = %v, want 5", res.TotalCost)
	}
	if len(res.Cut) != 2 {
		t.Errorf("cut = %v, want the two inbound bridges", res.Cut)
	}
	verifyCut(t, g, area, res.Cut, Inbound)
	// Graph untouched.
	if g.NumEnabledEdges() != g.NumEdges() {
		t.Error("IsolateArea mutated the graph")
	}
}

func TestIsolateOutbound(t *testing.T) {
	g, costs := bridgeGraph(t)
	area := []graph.NodeID{3, 4, 5}
	res, err := IsolateArea(g, area, costFn(costs), Outbound)
	if err != nil {
		t.Fatalf("IsolateArea: %v", err)
	}
	if math.Abs(res.TotalCost-12) > 1e-9 {
		t.Errorf("cost = %v, want 12 (outbound bridges)", res.TotalCost)
	}
	verifyCut(t, g, area, res.Cut, Outbound)
}

func TestIsolateBothWays(t *testing.T) {
	g, costs := bridgeGraph(t)
	area := []graph.NodeID{3, 4, 5}
	res, err := IsolateArea(g, area, costFn(costs), BothWays)
	if err != nil {
		t.Fatalf("IsolateArea: %v", err)
	}
	if math.Abs(res.TotalCost-17) > 1e-9 {
		t.Errorf("cost = %v, want 17", res.TotalCost)
	}
	if len(res.Cut) != 4 {
		t.Errorf("cut = %v, want all four bridges", res.Cut)
	}
	verifyCut(t, g, area, res.Cut, BothWays)
}

func TestIsolatePrefersCheapInteriorCut(t *testing.T) {
	// A chain 0 -> 1 -> 2 where the second hop is cheap: isolating {2}
	// should cut the cheap interior edge 1->2, not anything else.
	g := graph.New(3)
	costs := []float64{5, 1}
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	e12, err := g.AddEdge(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := IsolateArea(g, []graph.NodeID{2}, costFn(costs), Inbound)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cut) != 1 || res.Cut[0] != e12 || res.TotalCost != 1 {
		t.Errorf("res = %+v, want cut {%d} cost 1", res, e12)
	}
}

func TestIsolateAlreadyDisconnected(t *testing.T) {
	g := graph.New(4)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// {2,3} has no connection at all: empty cut, zero cost.
	res, err := IsolateArea(g, []graph.NodeID{2, 3}, func(graph.EdgeID) float64 { return 1 }, BothWays)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cut) != 0 || res.TotalCost != 0 {
		t.Errorf("res = %+v, want empty cut", res)
	}
}

func TestIsolateRespectsDisabledEdges(t *testing.T) {
	g, costs := bridgeGraph(t)
	// Pre-disable one inbound bridge: the remaining cut is just the other.
	g.DisableEdge(12) // 2->3 (first bridge added after 12 triangle edges)
	area := []graph.NodeID{3, 4, 5}
	res, err := IsolateArea(g, area, costFn(costs), Inbound)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalCost-3) > 1e-9 {
		t.Errorf("cost = %v, want 3", res.TotalCost)
	}
}

func TestIsolateValidation(t *testing.T) {
	g, costs := bridgeGraph(t)
	cf := costFn(costs)
	if _, err := IsolateArea(g, nil, cf, Inbound); !errors.Is(err, ErrBadArea) {
		t.Error("empty area accepted")
	}
	all := []graph.NodeID{0, 1, 2, 3, 4, 5}
	if _, err := IsolateArea(g, all, cf, Inbound); !errors.Is(err, ErrBadArea) {
		t.Error("whole-graph area accepted")
	}
	if _, err := IsolateArea(g, []graph.NodeID{99}, cf, Inbound); !errors.Is(err, ErrBadArea) {
		t.Error("out-of-range node accepted")
	}
	if _, err := IsolateArea(g, []graph.NodeID{3}, cf, Direction(9)); err == nil {
		t.Error("bogus direction accepted")
	}
	neg := func(graph.EdgeID) float64 { return -1 }
	if _, err := IsolateArea(g, []graph.NodeID{3}, neg, Inbound); err == nil {
		t.Error("negative costs accepted")
	}
}

func TestAreaAround(t *testing.T) {
	g := graph.New(4)
	w := func(e graph.EdgeID) float64 { return 1 }
	for i := 0; i < 3; i++ {
		if _, err := g.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	area := AreaAround(g, 0, 1.5, w)
	if len(area) != 2 || area[0] != 0 || area[1] != 1 {
		t.Errorf("area = %v, want [0 1]", area)
	}
}

func TestIsolateHospitalAreaOnCity(t *testing.T) {
	net, err := citygen.Build(citygen.Chicago, 0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	h := net.POIsOfKind(citygen.KindHospital)[0]
	w := net.Weight(roadnet.WeightTime)
	area := AreaAround(g, h.Node, 30, w) // 30 seconds of driving
	if len(area) < 2 || len(area) >= g.NumNodes() {
		t.Fatalf("area size %d unusable", len(area))
	}
	res, err := IsolateArea(g, area, net.Cost(roadnet.CostLanes), Inbound)
	if err != nil {
		t.Fatalf("IsolateArea: %v", err)
	}
	if len(res.Cut) == 0 {
		t.Fatal("empty cut for connected city area")
	}
	verifyCut(t, g, area, res.Cut, Inbound)
}

func TestCriticalRoads(t *testing.T) {
	net, err := citygen.Build(citygen.Chicago, 0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	w := net.Weight(roadnet.WeightTime)
	top := CriticalRoads(net, w, 5, 0)
	if len(top) != 5 {
		t.Fatalf("top = %d edges, want 5", len(top))
	}
	sampled := CriticalRoads(net, w, 5, 50)
	if len(sampled) != 5 {
		t.Fatalf("sampled top = %d edges, want 5", len(sampled))
	}
	// The exact top edge should be critical: disabling it must change some
	// shortest path (weak smoke check: it lies on at least one shortest
	// path, i.e. its betweenness > 0 implies nothing to verify here beyond
	// non-emptiness).
	if top[0] == graph.InvalidEdge {
		t.Error("invalid top edge")
	}
}

func TestDirectionString(t *testing.T) {
	if Inbound.String() != "inbound" || Outbound.String() != "outbound" || BothWays.String() != "both" {
		t.Error("direction strings wrong")
	}
	if !strings.Contains(Direction(9).String(), "9") {
		t.Error("unknown direction string wrong")
	}
}
