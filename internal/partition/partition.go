// Package partition implements the paper's area-isolation attacker
// objective (§II-A): "disconnect (partition) some target area of interest
// in a metropolitan city ... by selecting a target area containing key
// points of interest such as hospitals ... an attacker could severely
// impact the accessibility to such services."
//
// The minimum-cost set of road segments whose removal makes a target area
// unreachable is a minimum edge cut with removal costs as capacities,
// computed with Dinic's maximum-flow algorithm between a super-source
// (attached to every outside intersection) and a super-sink (attached to
// every area intersection).
//
// The package also exposes the paper's betweenness-centrality
// reconnaissance: ranking critical road segments by the fraction of
// shortest paths that traverse them.
package partition

import (
	"context"
	"errors"
	"fmt"
	"math"

	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// Direction selects which traffic direction to sever.
type Direction int

// Isolation directions.
const (
	// Inbound severs all routes from outside into the area.
	Inbound Direction = iota + 1
	// Outbound severs all routes from the area to the outside.
	Outbound
	// BothWays severs both directions (union of the two cuts).
	BothWays
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Inbound:
		return "inbound"
	case Outbound:
		return "outbound"
	case BothWays:
		return "both"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Errors returned by IsolateArea.
var (
	ErrBadArea = errors.New("partition: target area must be a non-empty strict subset of the nodes")
)

// Result is an isolation plan.
type Result struct {
	// Cut lists the road segments to remove, ascending by ID.
	Cut []graph.EdgeID
	// TotalCost is the summed removal cost (equals the max-flow value for
	// single-direction cuts).
	TotalCost float64
	// Direction is the severed direction.
	Direction Direction
}

// IsolateArea computes a minimum-cost edge cut that disconnects the target
// area from the rest of the graph in the given direction, using removal
// costs as capacities. Disabled edges are ignored (already removed). The
// graph is not modified.
func IsolateArea(g *graph.Graph, area []graph.NodeID, cost graph.WeightFunc, dir Direction) (Result, error) {
	return IsolateAreaCtx(context.Background(), g, area, cost, dir)
}

// IsolateAreaCtx is IsolateArea with cooperative cancellation: the
// max-flow computation polls ctx once per Dinic phase. On cancellation
// it returns the context's error rather than a cut built from partial
// flow.
func IsolateAreaCtx(ctx context.Context, g *graph.Graph, area []graph.NodeID, cost graph.WeightFunc, dir Direction) (Result, error) {
	n := g.NumNodes()
	if len(area) == 0 || len(area) >= n {
		return Result{}, ErrBadArea
	}
	inArea := make([]bool, n)
	for _, a := range area {
		if a < 0 || int(a) >= n {
			return Result{}, fmt.Errorf("%w: node %d out of range", ErrBadArea, a)
		}
		inArea[a] = true
	}

	switch dir {
	case Inbound, Outbound:
		cut, flow, err := minCut(ctx, g, inArea, cost, dir == Outbound)
		if err != nil {
			return Result{}, err
		}
		return Result{Cut: cut, TotalCost: flow, Direction: dir}, nil
	case BothWays:
		in, err := IsolateAreaCtx(ctx, g, area, cost, Inbound)
		if err != nil {
			return Result{}, err
		}
		out, err := IsolateAreaCtx(ctx, g, area, cost, Outbound)
		if err != nil {
			return Result{}, err
		}
		seen := map[graph.EdgeID]bool{}
		var cut []graph.EdgeID
		total := 0.0
		for _, e := range append(in.Cut, out.Cut...) {
			if !seen[e] {
				seen[e] = true
				cut = append(cut, e)
				total += cost(e)
			}
		}
		sortEdges(cut)
		return Result{Cut: cut, TotalCost: total, Direction: BothWays}, nil
	default:
		return Result{}, fmt.Errorf("partition: unknown direction %d", int(dir))
	}
}

// MinCutBetween computes the minimum-cost edge cut disconnecting d from s
// (no s->d path remains) with removal costs as capacities, plus the cut's
// total cost (the max-flow value). Disabled edges are ignored. Used by the
// defense package to measure how expensive full denial of a trip is.
func MinCutBetween(g *graph.Graph, s, d graph.NodeID, cost graph.WeightFunc) ([]graph.EdgeID, float64, error) {
	return MinCutBetweenCtx(context.Background(), g, s, d, cost)
}

// MinCutBetweenCtx is MinCutBetween with cooperative cancellation (one
// ctx poll per Dinic phase).
func MinCutBetweenCtx(ctx context.Context, g *graph.Graph, s, d graph.NodeID, cost graph.WeightFunc) ([]graph.EdgeID, float64, error) {
	n := g.NumNodes()
	if s < 0 || int(s) >= n || d < 0 || int(d) >= n || s == d {
		return nil, 0, fmt.Errorf("partition: MinCutBetween: invalid endpoints %d, %d", s, d)
	}
	dn := newDinic(n)
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if g.EdgeDisabled(id) {
			continue
		}
		c := cost(id)
		if c < 0 {
			return nil, 0, fmt.Errorf("partition: negative cost on edge %d", e)
		}
		arc := g.Arc(id)
		dn.addEdge(int(arc.From), int(arc.To), c, id)
	}
	flow, err := dn.maxFlow(ctx, int(s), int(d))
	if err != nil {
		return nil, 0, err
	}

	reach := make([]bool, n)
	stack := []int{int(s)}
	reach[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range dn.adj[u] {
			if e.cap > 1e-12 && !reach[e.to] {
				reach[e.to] = true
				stack = append(stack, int(e.to))
			}
		}
	}
	var cut []graph.EdgeID
	for u := 0; u < n; u++ {
		if !reach[u] {
			continue
		}
		for _, e := range dn.adj[u] {
			if e.orig >= 0 && !reach[e.to] {
				cut = append(cut, e.orig)
			}
		}
	}
	sortEdges(cut)
	return cut, flow, nil
}

// flowEdge is one directed arc of the residual network.
type flowEdge struct {
	to   int32
	rev  int32 // index of the reverse edge in adj[to]
	cap  float64
	orig graph.EdgeID // original edge, or -1 for super arcs
}

// dinic is the max-flow state.
type dinic struct {
	adj   [][]flowEdge
	level []int32
	iter  []int32
}

func newDinic(n int) *dinic {
	return &dinic{
		adj:   make([][]flowEdge, n),
		level: make([]int32, n),
		iter:  make([]int32, n),
	}
}

func (d *dinic) addEdge(from, to int, capacity float64, orig graph.EdgeID) {
	d.adj[from] = append(d.adj[from], flowEdge{to: int32(to), rev: int32(len(d.adj[to])), cap: capacity, orig: orig})
	d.adj[to] = append(d.adj[to], flowEdge{to: int32(from), rev: int32(len(d.adj[from]) - 1), cap: 0, orig: -1})
}

func (d *dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	queue := make([]int32, 0, len(d.adj))
	queue = append(queue, int32(s))
	d.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range d.adj[u] {
			if e.cap > 1e-12 && d.level[e.to] < 0 {
				d.level[e.to] = d.level[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return d.level[t] >= 0
}

func (d *dinic) dfs(u, t int, f float64) float64 {
	if u == t {
		return f
	}
	for ; d.iter[u] < int32(len(d.adj[u])); d.iter[u]++ {
		e := &d.adj[u][d.iter[u]]
		if e.cap <= 1e-12 || d.level[e.to] != d.level[u]+1 {
			continue
		}
		pushed := d.dfs(int(e.to), t, math.Min(f, e.cap))
		if pushed > 0 {
			e.cap -= pushed
			d.adj[e.to][e.rev].cap += pushed
			return pushed
		}
	}
	return 0
}

// maxFlow runs Dinic from s to t and returns the total flow. ctx is
// polled once per phase (each phase is one BFS plus its blocking flow,
// so a cancelled cut computation stops within one level-graph round).
func (d *dinic) maxFlow(ctx context.Context, s, t int) (float64, error) {
	flow := 0.0
	for d.bfs(s, t) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(s, t, math.Inf(1))
			if f <= 0 {
				break
			}
			flow += f
		}
	}
	return flow, nil
}

// minCut builds the flow network and extracts the minimum cut. When
// outbound is true the roles are swapped: area is the source side.
func minCut(ctx context.Context, g *graph.Graph, inArea []bool, cost graph.WeightFunc, outbound bool) ([]graph.EdgeID, float64, error) {
	n := g.NumNodes()
	src, sink := n, n+1
	d := newDinic(n + 2)

	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if g.EdgeDisabled(id) {
			continue
		}
		c := cost(id)
		if c < 0 {
			return nil, 0, fmt.Errorf("partition: negative cost on edge %d", e)
		}
		arc := g.Arc(id)
		d.addEdge(int(arc.From), int(arc.To), c, id)
	}
	inf := math.Inf(1)
	for v := 0; v < n; v++ {
		sourceSide := inArea[v] == outbound // outside for inbound, area for outbound
		if sourceSide {
			d.addEdge(src, v, inf, -1)
		} else {
			d.addEdge(v, sink, inf, -1)
		}
	}

	flow, err := d.maxFlow(ctx, src, sink)
	if err != nil {
		return nil, 0, err
	}
	if math.IsInf(flow, 1) {
		return nil, 0, errors.New("partition: infinite cut (area adjacency degenerate)")
	}

	// Min cut: original edges from the source-reachable side to the rest
	// of the residual network.
	reach := make([]bool, n+2)
	stack := []int{src}
	reach[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range d.adj[u] {
			if e.cap > 1e-12 && !reach[e.to] {
				reach[e.to] = true
				stack = append(stack, int(e.to))
			}
		}
	}
	var cut []graph.EdgeID
	total := 0.0
	for u := 0; u < n; u++ {
		if !reach[u] {
			continue
		}
		for _, e := range d.adj[u] {
			if e.orig >= 0 && !reach[e.to] {
				cut = append(cut, e.orig)
				total += cost(e.orig)
			}
		}
	}
	sortEdges(cut)
	return cut, total, nil
}

func sortEdges(edges []graph.EdgeID) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edges[j] < edges[j-1]; j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

// AreaAround returns the nodes within the given travel-time (or weight)
// radius of center: a convenient way to define a target area such as "the
// blocks around the hospital".
func AreaAround(g *graph.Graph, center graph.NodeID, radius float64, w graph.WeightFunc) []graph.NodeID {
	dist := graph.NewRouter(g).DistancesFrom(center, w)
	var area []graph.NodeID
	for n, dv := range dist {
		if dv <= radius {
			area = append(area, graph.NodeID(n))
		}
	}
	return area
}

// CriticalRoads ranks the k most critical enabled road segments by edge
// betweenness centrality under the given weight, the paper's topological
// reconnaissance step. Sampling sources keeps it tractable on big cities;
// pass 0 samples for the exact computation.
func CriticalRoads(net *roadnet.Network, w graph.WeightFunc, k, sampleSources int) []graph.EdgeID {
	roads, _ := CriticalRoadsCtx(context.Background(), net, w, k, sampleSources)
	return roads
}

// CriticalRoadsCtx is CriticalRoads with cooperative cancellation: the
// betweenness sweep underneath polls ctx once per source tree. On
// cancellation it returns nil and the context's error rather than a
// ranking built from partial scores.
func CriticalRoadsCtx(ctx context.Context, net *roadnet.Network, w graph.WeightFunc, k, sampleSources int) ([]graph.EdgeID, error) {
	g := net.Graph()
	opts := graph.BetweennessOptions{Normalize: true}
	if sampleSources > 0 && sampleSources < g.NumNodes() {
		step := g.NumNodes() / sampleSources
		if step < 1 {
			step = 1
		}
		for s := 0; s < g.NumNodes() && len(opts.Sources) < sampleSources; s += step {
			opts.Sources = append(opts.Sources, graph.NodeID(s))
		}
	}
	// Source trees fan out across cores on a frozen snapshot; the ordered
	// merge keeps the scores bitwise identical to the serial sweep.
	scores, err := graph.BetweennessParallel(ctx, graph.Freeze(g, w), opts, 0)
	if err != nil {
		return nil, err
	}
	return graph.TopEdgesByScore(g, scores, k), nil
}
