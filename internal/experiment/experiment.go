// Package experiment reproduces the paper's experimental methodology
// (§III-A): for each city, pick the four hospitals as destinations and ten
// random source intersections per hospital (40 runs per cell), set the
// alternative route p* to the 100th-shortest path, and measure each
// algorithm under each edge-removal cost model:
//
//   - Avg. Runtime — average attack computation time in seconds,
//   - ANER — average number of edges removed,
//   - ACRE — average cost of removed edges.
//
// RunTable regenerates one of Tables II-VIII; Aggregate builds Table IX;
// RunThreshold builds Table X.
package experiment

import (
	"errors"
	"fmt"
	"math/rand"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/graph"
	"altroute/internal/metrics"
	"altroute/internal/roadnet"
)

// Spec configures one table's worth of experiments.
type Spec struct {
	// Net is the street network to attack. If nil, the network is built
	// from City, Scale, and Seed.
	Net *roadnet.Network
	// City selects a synthetic city preset when Net is nil.
	City citygen.City
	// Scale shrinks the city preset (1 = full Table I size). Default 0.1.
	Scale float64
	// Seed drives city generation, source sampling, and LP rounding.
	Seed int64
	// WeightType is the attacker objective for the whole table.
	WeightType roadnet.WeightType
	// CostTypes are the edge-removal cost models (columns). Default: all
	// three in paper order.
	CostTypes []roadnet.CostType
	// Algorithms are the table rows. Default: all four in paper order.
	Algorithms []core.Algorithm
	// PathRank selects p* (the paper uses 100). Default 100.
	PathRank int
	// SourcesPerHospital is the number of random sources per hospital
	// (the paper uses 10). Default 10.
	SourcesPerHospital int
	// Budget caps removal cost per attack; 0 means unlimited (the paper's
	// tables are unbudgeted).
	Budget float64
	// Options tunes the attack algorithms.
	Options core.Options
}

func (s *Spec) fill() {
	if s.Scale <= 0 {
		s.Scale = 0.1
	}
	if s.PathRank <= 0 {
		s.PathRank = 100
	}
	if s.SourcesPerHospital <= 0 {
		s.SourcesPerHospital = 10
	}
	if len(s.CostTypes) == 0 {
		s.CostTypes = roadnet.CostTypes()
	}
	if len(s.Algorithms) == 0 {
		s.Algorithms = core.Algorithms()
	}
}

// Unit is one prepared attack instance: a source, a hospital destination,
// and the precomputed alternative route p* (shared by every algorithm and
// cost model, exactly as in the paper).
type Unit struct {
	Source   graph.NodeID
	Dest     graph.NodeID
	Hospital string
	PStar    graph.Path
}

// ErrNoHospitals is returned when the network has no hospital POIs.
var ErrNoHospitals = errors.New("experiment: network has no hospital POIs")

// ErrSampling is returned when not enough viable sources exist.
var ErrSampling = errors.New("experiment: could not sample enough viable sources")

// buildNetwork returns the spec's network, generating it if needed.
func buildNetwork(spec *Spec) (*roadnet.Network, error) {
	if spec.Net != nil {
		return spec.Net, nil
	}
	return citygen.Build(spec.City, spec.Scale, spec.Seed)
}

// SampleUnits draws SourcesPerHospital random source intersections per
// hospital and computes p* (the PathRank-th shortest path) for each,
// resampling sources for which the rank is unavailable (too close or too
// thinly connected).
func SampleUnits(net *roadnet.Network, spec Spec) ([]Unit, error) {
	spec.fill()
	hospitals := net.POIsOfKind(citygen.KindHospital)
	if len(hospitals) == 0 {
		return nil, ErrNoHospitals
	}
	w := net.Weight(spec.WeightType)
	n := net.NumIntersections()
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))

	var units []Unit
	for _, h := range hospitals {
		found := 0
		for attempt := 0; found < spec.SourcesPerHospital; attempt++ {
			if attempt > 80*spec.SourcesPerHospital {
				return nil, fmt.Errorf("%w: hospital %q yielded %d/%d sources",
					ErrSampling, h.Name, found, spec.SourcesPerHospital)
			}
			src := graph.NodeID(rng.Intn(n))
			if src == h.Node {
				continue
			}
			pstar, err := core.PStarByRank(net.Graph(), src, h.Node, spec.PathRank, w)
			if err != nil {
				continue
			}
			units = append(units, Unit{Source: src, Dest: h.Node, Hospital: h.Name, PStar: pstar})
			found++
		}
	}
	return units, nil
}

// Cell is one (algorithm, cost type) table cell averaged over all units.
type Cell struct {
	Algorithm core.Algorithm
	CostType  roadnet.CostType
	// AvgRuntimeS is the paper's "Avg. Runtime" column (seconds).
	AvgRuntimeS float64
	// ANER is the average number of edges removed.
	ANER float64
	// ACRE is the average cost of removed edges.
	ACRE float64
	// Runs is the number of successful attacks averaged.
	Runs int
	// Failures counts attacks that returned an error (budget exceeded or
	// infeasible); they are excluded from the averages.
	Failures int
}

// Table is one full experiment table (paper Tables II-VIII).
type Table struct {
	City       string
	WeightType roadnet.WeightType
	Cells      []Cell
	Units      int
	Summary    metrics.GraphSummary
}

// Cell returns the cell for (alg, ct), or nil.
func (t *Table) Cell(alg core.Algorithm, ct roadnet.CostType) *Cell {
	for i := range t.Cells {
		if t.Cells[i].Algorithm == alg && t.Cells[i].CostType == ct {
			return &t.Cells[i]
		}
	}
	return nil
}

// RunTable executes the full grid for one city and weight type.
func RunTable(spec Spec) (Table, error) {
	spec.fill()
	net, err := buildNetwork(&spec)
	if err != nil {
		return Table{}, err
	}
	units, err := SampleUnits(net, spec)
	if err != nil {
		return Table{}, err
	}
	return RunTableOnUnits(net, units, spec)
}

// RunTableOnUnits executes the algorithm x cost grid over prepared units.
func RunTableOnUnits(net *roadnet.Network, units []Unit, spec Spec) (Table, error) {
	spec.fill()
	w := net.Weight(spec.WeightType)
	table := Table{
		City:       net.Name(),
		WeightType: spec.WeightType,
		Units:      len(units),
		Summary:    metrics.Summarize(net),
	}
	for _, alg := range spec.Algorithms {
		for _, ct := range spec.CostTypes {
			cell := Cell{Algorithm: alg, CostType: ct}
			cost := net.Cost(ct)
			for _, u := range units {
				p := core.Problem{
					G:      net.Graph(),
					Source: u.Source,
					Dest:   u.Dest,
					PStar:  u.PStar,
					Weight: w,
					Cost:   cost,
					Budget: spec.Budget,
				}
				opts := spec.Options
				opts.Seed = spec.Seed
				res, err := core.Run(alg, p, opts)
				if err != nil {
					cell.Failures++
					continue
				}
				cell.Runs++
				cell.AvgRuntimeS += res.Runtime.Seconds()
				cell.ANER += float64(len(res.Removed))
				cell.ACRE += res.TotalCost
			}
			if cell.Runs > 0 {
				cell.AvgRuntimeS /= float64(cell.Runs)
				cell.ANER /= float64(cell.Runs)
				cell.ACRE /= float64(cell.Runs)
			}
			table.Cells = append(table.Cells, cell)
		}
	}
	return table, nil
}

// CityAverage is one Table IX row: ANER and ACRE averaged over every cost
// type and algorithm for a (city, weight type) pair.
type CityAverage struct {
	City string
	// ANER and ACRE per weight type.
	ANER map[roadnet.WeightType]float64
	ACRE map[roadnet.WeightType]float64
}

// Aggregate builds Table IX rows from per-weight-type tables of the same
// city.
func Aggregate(tables []Table) []CityAverage {
	byCity := map[string]*CityAverage{}
	counts := map[string]map[roadnet.WeightType]int{}
	var order []string
	for _, t := range tables {
		ca := byCity[t.City]
		if ca == nil {
			ca = &CityAverage{
				City: t.City,
				ANER: map[roadnet.WeightType]float64{},
				ACRE: map[roadnet.WeightType]float64{},
			}
			byCity[t.City] = ca
			counts[t.City] = map[roadnet.WeightType]int{}
			order = append(order, t.City)
		}
		for _, c := range t.Cells {
			if c.Runs == 0 {
				continue
			}
			ca.ANER[t.WeightType] += c.ANER
			ca.ACRE[t.WeightType] += c.ACRE
			counts[t.City][t.WeightType]++
		}
	}
	out := make([]CityAverage, 0, len(order))
	for _, city := range order {
		ca := byCity[city]
		for wt, cnt := range counts[city] {
			if cnt > 0 {
				ca.ANER[wt] /= float64(cnt)
				ca.ACRE[wt] /= float64(cnt)
			}
		}
		out = append(out, *ca)
	}
	return out
}

// ThresholdRow is one Table X row.
type ThresholdRow struct {
	City      string
	AvgInc100 float64
	AvgInc200 float64
	Pairs     int
}

// RunThreshold reproduces Table X: the average percentage increase in TIME
// length from the shortest path to the 100th and 200th shortest paths,
// over the spec's sampled source/hospital pairs. Spec.PathRank scales the
// two ranks (rank and 2*rank) so reduced-size runs stay feasible; the
// paper's values are 100 and 200.
func RunThreshold(spec Spec) (ThresholdRow, error) {
	spec.fill()
	net, err := buildNetwork(&spec)
	if err != nil {
		return ThresholdRow{}, err
	}
	hospitals := net.POIsOfKind(citygen.KindHospital)
	if len(hospitals) == 0 {
		return ThresholdRow{}, ErrNoHospitals
	}
	n := net.NumIntersections()
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x7ea))
	var pairs []metrics.Endpoint
	for _, h := range hospitals {
		for i := 0; i < spec.SourcesPerHospital; i++ {
			src := graph.NodeID(rng.Intn(n))
			if src == h.Node {
				continue
			}
			pairs = append(pairs, metrics.Endpoint{Source: src, Dest: h.Node})
		}
	}
	rank1, rank2 := spec.PathRank, 2*spec.PathRank
	res := metrics.PathRankGap(net, pairs, []int{rank1, rank2}, net.Weight(roadnet.WeightTime))
	return ThresholdRow{
		City:      net.Name(),
		AvgInc100: res.AvgIncreasePct[rank1],
		AvgInc200: res.AvgIncreasePct[rank2],
		Pairs:     res.Pairs - res.Skipped,
	}, nil
}
