// Package experiment reproduces the paper's experimental methodology
// (§III-A): for each city, pick the four hospitals as destinations and ten
// random source intersections per hospital (40 runs per cell), set the
// alternative route p* to the 100th-shortest path, and measure each
// algorithm under each edge-removal cost model:
//
//   - Avg. Runtime — average attack computation time in seconds,
//   - ANER — average number of edges removed,
//   - ACRE — average cost of removed edges.
//
// RunTable regenerates one of Tables II-VIII; Aggregate builds Table IX;
// RunThreshold builds Table X.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/faultinject"
	"altroute/internal/graph"
	"altroute/internal/metrics"
	"altroute/internal/overlay"
	"altroute/internal/roadnet"
)

// Spec configures one table's worth of experiments.
type Spec struct {
	// Net is the street network to attack. If nil, the network is built
	// from City, Scale, and Seed.
	Net *roadnet.Network
	// City selects a synthetic city preset when Net is nil.
	City citygen.City
	// Scale shrinks the city preset (1 = full Table I size). Default 0.1.
	Scale float64
	// Seed drives city generation, source sampling, and LP rounding.
	Seed int64
	// WeightType is the attacker objective for the whole table.
	WeightType roadnet.WeightType
	// CostTypes are the edge-removal cost models (columns). Default: all
	// three in paper order.
	CostTypes []roadnet.CostType
	// Algorithms are the table rows. Default: all four in paper order.
	Algorithms []core.Algorithm
	// PathRank selects p* (the paper uses 100). Default 100.
	PathRank int
	// SourcesPerHospital is the number of random sources per hospital
	// (the paper uses 10). Default 10.
	SourcesPerHospital int
	// Budget caps removal cost per attack; 0 means unlimited (the paper's
	// tables are unbudgeted).
	Budget float64
	// Options tunes the attack algorithms.
	Options core.Options
	// UseOverlay builds one CRP partition-overlay metric per runner (per
	// worker in the parallel runner, each over its own clone's snapshot)
	// and routes every attack's oracle rounds through corridor-pruned
	// overlay searches. Results are identical to the baseline oracle
	// (witness edges can differ only on exact float-length ties; see
	// overlay.Querier.Violating).
	UseOverlay bool
	// Checkpoint, when non-nil, journals every completed (algorithm, cost
	// type, unit) attack and replays journaled results instead of
	// recomputing them, so an interrupted run resumes where it stopped.
	Checkpoint *Checkpoint
	// Audit, when non-nil, observes every freshly computed unit (after it
	// is journaled, never for checkpoint replays — a replayed unit was
	// audited when first computed). The server uses it to chain batch
	// units into the audit ledger. Must be safe for concurrent use: the
	// parallel runner invokes it from every worker.
	Audit func(Record)
}

func (s *Spec) fill() {
	if s.Scale <= 0 {
		s.Scale = 0.1
	}
	if s.PathRank <= 0 {
		s.PathRank = 100
	}
	if s.SourcesPerHospital <= 0 {
		s.SourcesPerHospital = 10
	}
	if len(s.CostTypes) == 0 {
		s.CostTypes = roadnet.CostTypes()
	}
	if len(s.Algorithms) == 0 {
		s.Algorithms = core.Algorithms()
	}
}

// Unit is one prepared attack instance: a source, a hospital destination,
// and the precomputed alternative route p* (shared by every algorithm and
// cost model, exactly as in the paper).
type Unit struct {
	Source   graph.NodeID
	Dest     graph.NodeID
	Hospital string
	PStar    graph.Path
}

// ErrNoHospitals is returned when the network has no hospital POIs.
var ErrNoHospitals = errors.New("experiment: network has no hospital POIs")

// ErrSampling is returned when not enough viable sources exist.
var ErrSampling = errors.New("experiment: could not sample enough viable sources")

// ErrInterrupted is returned by the context-aware table runners when the run
// context dies before the grid completes. The partial table accumulated so
// far is returned alongside it; re-running with the same Spec.Checkpoint
// resumes from the journal.
var ErrInterrupted = errors.New("experiment: run interrupted")

// buildNetwork returns the spec's network, generating it if needed.
func buildNetwork(spec *Spec) (*roadnet.Network, error) {
	if spec.Net != nil {
		return spec.Net, nil
	}
	return citygen.Build(spec.City, spec.Scale, spec.Seed)
}

// SampleUnits draws SourcesPerHospital random source intersections per
// hospital and computes p* (the PathRank-th shortest path) for each,
// resampling sources for which the rank is unavailable (too close or too
// thinly connected).
//
// On ErrSampling the units sampled before the exhausted hospital are
// returned alongside the error, so a caller content with partial coverage
// can proceed with them.
func SampleUnits(net *roadnet.Network, spec Spec) ([]Unit, error) {
	spec.fill()
	hospitals := net.POIsOfKind(citygen.KindHospital)
	if len(hospitals) == 0 {
		return nil, ErrNoHospitals
	}
	w := net.Weight(spec.WeightType)
	n := net.NumIntersections()
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))

	var units []Unit
	for _, h := range hospitals {
		found := 0
		for attempt := 0; found < spec.SourcesPerHospital; attempt++ {
			if attempt > 80*spec.SourcesPerHospital {
				return units, fmt.Errorf("%w: hospital %q yielded %d/%d sources",
					ErrSampling, h.Name, found, spec.SourcesPerHospital)
			}
			src := graph.NodeID(rng.Intn(n))
			if src == h.Node {
				continue
			}
			pstar, err := core.PStarByRank(net.Graph(), src, h.Node, spec.PathRank, w)
			if err != nil {
				continue
			}
			units = append(units, Unit{Source: src, Dest: h.Node, Hospital: h.Name, PStar: pstar})
			found++
		}
	}
	return units, nil
}

// Cell is one (algorithm, cost type) table cell averaged over all units.
type Cell struct {
	Algorithm core.Algorithm
	CostType  roadnet.CostType
	// AvgRuntimeS is the paper's "Avg. Runtime" column (seconds).
	AvgRuntimeS float64
	// ANER is the average number of edges removed.
	ANER float64
	// ACRE is the average cost of removed edges.
	ACRE float64
	// Runs is the number of successful attacks averaged.
	Runs int
	// Failures counts attacks that returned an error; they are excluded
	// from the averages.
	Failures int
	// FailuresByKind breaks Failures down by FailureKind (timeout, panic,
	// budget, ...). Nil when the cell has no failures.
	FailuresByKind map[string]int
	// Degraded counts successful runs whose Result was flagged Degraded
	// (best-effort plans produced under timeout or LP breakdown). They are
	// included in Runs and the averages.
	Degraded int
}

// replay folds one journaled or freshly-computed unit outcome into the
// cell's accumulators (finalize turns the sums into averages).
func (c *Cell) replay(rec Record) {
	if !rec.OK {
		c.Failures++
		if c.FailuresByKind == nil {
			c.FailuresByKind = map[string]int{}
		}
		c.FailuresByKind[rec.FailKind]++
		return
	}
	c.Runs++
	c.AvgRuntimeS += rec.RuntimeS
	c.ANER += float64(rec.Edges)
	c.ACRE += rec.Cost
	if rec.Degraded {
		c.Degraded++
	}
}

// finalize converts the replayed sums into the paper's per-cell averages.
func (c *Cell) finalize() {
	if c.Runs > 0 {
		c.AvgRuntimeS /= float64(c.Runs)
		c.ANER /= float64(c.Runs)
		c.ACRE /= float64(c.Runs)
	}
}

// FailureKind buckets an attack error for Cell.FailuresByKind and the
// checkpoint journal.
func FailureKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrTimeout):
		return "timeout"
	case errors.Is(err, core.ErrCancelled):
		return "cancelled"
	case errors.Is(err, core.ErrPanic):
		return "panic"
	case errors.Is(err, core.ErrBudgetExceeded):
		return "budget"
	case errors.Is(err, core.ErrInfeasible):
		return "infeasible"
	case errors.Is(err, core.ErrInvalidProblem):
		return "invalid"
	default:
		return "other"
	}
}

// Table is one full experiment table (paper Tables II-VIII).
type Table struct {
	City       string
	WeightType roadnet.WeightType
	Cells      []Cell
	Units      int
	Summary    metrics.GraphSummary
}

// Cell returns the cell for (alg, ct), or nil.
func (t *Table) Cell(alg core.Algorithm, ct roadnet.CostType) *Cell {
	for i := range t.Cells {
		if t.Cells[i].Algorithm == alg && t.Cells[i].CostType == ct {
			return &t.Cells[i]
		}
	}
	return nil
}

// RunTable executes the full grid for one city and weight type.
// RunTable is a thin context.Background() wrapper over RunTableCtx.
func RunTable(spec Spec) (Table, error) {
	return RunTableCtx(context.Background(), spec)
}

// RunTableCtx is RunTable under a context: the run can be cancelled between
// attacks, returning the partial table joined with ErrInterrupted.
func RunTableCtx(ctx context.Context, spec Spec) (Table, error) {
	spec.fill()
	net, err := buildNetwork(&spec)
	if err != nil {
		return Table{}, err
	}
	units, err := SampleUnits(net, spec)
	if err != nil {
		return Table{}, err
	}
	return RunTableOnUnitsCtx(ctx, net, units, spec)
}

// RunTableOnUnits executes the algorithm x cost grid over prepared units.
// It is a thin context.Background() wrapper over RunTableOnUnitsCtx.
func RunTableOnUnits(net *roadnet.Network, units []Unit, spec Spec) (Table, error) {
	return RunTableOnUnitsCtx(context.Background(), net, units, spec)
}

// RunTableOnUnitsCtx executes the grid over prepared units under ctx.
//
// Cancellation is cooperative at unit granularity (and, through
// core.RunCtx, inside each attack): when ctx dies, the cells finished so
// far — plus the partially-filled current cell — are returned with an
// ErrInterrupted error. With Spec.Checkpoint set, every completed unit is
// journaled and replayed on the next run, so interrupt-and-rerun converges
// on the same Table an uninterrupted run produces.
func RunTableOnUnitsCtx(ctx context.Context, net *roadnet.Network, units []Unit, spec Spec) (Table, error) {
	spec.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	w := net.Weight(spec.WeightType)
	// One frozen snapshot serves every cell and unit of the run: attacks
	// only toggle disabled flags, which the snapshot observes live.
	snap := net.Snapshot(spec.WeightType)
	metric := buildMetric(ctx, snap, spec)
	table := Table{
		City:       net.Name(),
		WeightType: spec.WeightType,
		Units:      len(units),
		Summary:    metrics.Summarize(net),
	}
	for _, alg := range spec.Algorithms {
		for _, ct := range spec.CostTypes {
			cell, err := runCell(ctx, net.Graph(), snap, metric, w, net.Cost(ct), table.City, alg, ct, units, spec)
			table.Cells = append(table.Cells, cell)
			if err != nil {
				return table, err
			}
		}
	}
	return table, nil
}

// runCell computes one (algorithm, cost type) cell over the units, shared by
// the serial and parallel runners so both produce bit-identical cells. Units
// found in spec.Checkpoint are replayed instead of recomputed; freshly
// computed units are journaled. A dead ctx stops the loop: the partial cell
// is returned with ErrInterrupted wrapping the context's cause.
func runCell(ctx context.Context, g *graph.Graph, snap *graph.Snapshot, metric *overlay.Metric, w, cost graph.WeightFunc, city string, alg core.Algorithm, ct roadnet.CostType, units []Unit, spec Spec) (Cell, error) {
	cell := Cell{Algorithm: alg, CostType: ct}
	wt := spec.WeightType.String()
	interrupted := func() (Cell, error) {
		cell.finalize()
		return cell, fmt.Errorf("%w: %w", ErrInterrupted, context.Cause(ctx))
	}
	for i, u := range units {
		if rec, ok := spec.Checkpoint.Lookup(city, wt, alg.String(), ct.String(), i); ok {
			cell.replay(rec)
			continue
		}
		if ctx.Err() != nil {
			return interrupted()
		}
		p := core.Problem{
			G:        g,
			Source:   u.Source,
			Dest:     u.Dest,
			PStar:    u.PStar,
			Weight:   w,
			Cost:     cost,
			Budget:   spec.Budget,
			Snapshot: snap,
			Overlay:  metric,
		}
		opts := spec.Options
		opts.Seed = spec.Seed
		res, err := attackUnit(ctx, alg, p, opts)
		if err != nil && ctx.Err() != nil &&
			(errors.Is(err, core.ErrCancelled) || errors.Is(err, core.ErrTimeout)) {
			// The run context died mid-attack. That outcome describes the
			// run, not the unit — journaling it would poison a resume with
			// a spurious failure, so it is recomputed instead.
			return interrupted()
		}
		rec := Record{
			City: city, Weight: wt, Algorithm: alg.String(), CostType: ct.String(), Unit: i,
		}
		if err != nil {
			rec.FailKind = FailureKind(err)
		} else {
			rec.OK = true
			rec.RuntimeS = res.Runtime.Seconds()
			rec.Edges = len(res.Removed)
			rec.Cost = res.TotalCost
			rec.Degraded = res.Degraded
		}
		if err := spec.Checkpoint.Append(rec); err != nil {
			cell.finalize()
			return cell, err
		}
		if spec.Audit != nil {
			spec.Audit(rec)
		}
		cell.replay(rec)
	}
	cell.finalize()
	return cell, nil
}

// buildMetric prepares the overlay metric for one runner's snapshot when
// the spec asks for it. A cancelled build returns nil — the attacks fall
// back to the baseline oracle and surface the dead context themselves.
func buildMetric(ctx context.Context, snap *graph.Snapshot, spec Spec) *overlay.Metric {
	if !spec.UseOverlay {
		return nil
	}
	ov, err := overlay.Build(ctx, snap, overlay.Params{Seed: spec.Seed})
	if err != nil {
		return nil
	}
	m, err := overlay.NewMetric(ctx, ov)
	if err != nil {
		return nil
	}
	return m
}

// attackUnit runs one attack, recovering panics that escape core.RunCtx's
// own recovery (i.e. panics in this harness layer) into per-unit ErrPanic
// failures so one poisoned unit never kills a table run or a parallel
// worker.
func attackUnit(ctx context.Context, alg core.Algorithm, p core.Problem, opts core.Options) (res core.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res = core.Result{}
			err = fmt.Errorf("%w: %v\n%s", core.ErrPanic, rec, debug.Stack())
		}
	}()
	if faultinject.Fires(ctx, faultinject.PointWorkerPanic) {
		panic(fmt.Sprintf("injected panic at %s", faultinject.PointWorkerPanic))
	}
	return core.RunCtx(ctx, alg, p, opts)
}

// CityAverage is one Table IX row: ANER and ACRE averaged over every cost
// type and algorithm for a (city, weight type) pair.
type CityAverage struct {
	City string
	// ANER and ACRE per weight type.
	ANER map[roadnet.WeightType]float64
	ACRE map[roadnet.WeightType]float64
}

// Aggregate builds Table IX rows from per-weight-type tables of the same
// city.
func Aggregate(tables []Table) []CityAverage {
	byCity := map[string]*CityAverage{}
	counts := map[string]map[roadnet.WeightType]int{}
	var order []string
	for _, t := range tables {
		ca := byCity[t.City]
		if ca == nil {
			ca = &CityAverage{
				City: t.City,
				ANER: map[roadnet.WeightType]float64{},
				ACRE: map[roadnet.WeightType]float64{},
			}
			byCity[t.City] = ca
			counts[t.City] = map[roadnet.WeightType]int{}
			order = append(order, t.City)
		}
		for _, c := range t.Cells {
			if c.Runs == 0 {
				continue
			}
			ca.ANER[t.WeightType] += c.ANER
			ca.ACRE[t.WeightType] += c.ACRE
			counts[t.City][t.WeightType]++
		}
	}
	out := make([]CityAverage, 0, len(order))
	for _, city := range order {
		ca := byCity[city]
		for wt, cnt := range counts[city] {
			if cnt > 0 {
				ca.ANER[wt] /= float64(cnt)
				ca.ACRE[wt] /= float64(cnt)
			}
		}
		out = append(out, *ca)
	}
	return out
}

// ThresholdRow is one Table X row.
type ThresholdRow struct {
	City      string
	AvgInc100 float64
	AvgInc200 float64
	Pairs     int
}

// RunThreshold reproduces Table X: the average percentage increase in TIME
// length from the shortest path to the 100th and 200th shortest paths,
// over the spec's sampled source/hospital pairs. Spec.PathRank scales the
// two ranks (rank and 2*rank) so reduced-size runs stay feasible; the
// paper's values are 100 and 200.
func RunThreshold(spec Spec) (ThresholdRow, error) {
	spec.fill()
	net, err := buildNetwork(&spec)
	if err != nil {
		return ThresholdRow{}, err
	}
	hospitals := net.POIsOfKind(citygen.KindHospital)
	if len(hospitals) == 0 {
		return ThresholdRow{}, ErrNoHospitals
	}
	n := net.NumIntersections()
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x7ea))
	var pairs []metrics.Endpoint
	for _, h := range hospitals {
		for i := 0; i < spec.SourcesPerHospital; i++ {
			src := graph.NodeID(rng.Intn(n))
			if src == h.Node {
				continue
			}
			pairs = append(pairs, metrics.Endpoint{Source: src, Dest: h.Node})
		}
	}
	rank1, rank2 := spec.PathRank, 2*spec.PathRank
	res := metrics.PathRankGap(net, pairs, []int{rank1, rank2}, net.Weight(roadnet.WeightTime))
	return ThresholdRow{
		City:      net.Name(),
		AvgInc100: res.AvgIncreasePct[rank1],
		AvgInc200: res.AvgIncreasePct[rank2],
		Pairs:     res.Pairs - res.Skipped,
	}, nil
}
