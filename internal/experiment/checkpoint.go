package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"altroute/internal/audit"
)

// ErrCheckpointMismatch is returned by OpenCheckpoint when the journal on
// disk was written by a run with a different fingerprint (seed, scale, path
// rank, or sources): its records would be meaningless for this run.
var ErrCheckpointMismatch = errors.New("experiment: checkpoint belongs to a different run")

// Header fingerprints the run a checkpoint belongs to. Units are sampled
// deterministically from these parameters, so two runs with equal headers
// agree on what "unit 3 of Boston/TIME" means — the property that makes
// journal replay sound.
type Header struct {
	Seed     int64   `json:"seed"`
	Scale    float64 `json:"scale"`
	PathRank int     `json:"path_rank"`
	Sources  int     `json:"sources"`
}

// Record journals one completed (table, algorithm, cost type, unit) attack.
// Either outcome is journaled: successes carry the result fields, failures
// carry the failure kind. Interruptions of the run context are NOT journaled
// — they describe the run, not the unit, and must be recomputed on resume.
type Record struct {
	City      string `json:"city"`
	Weight    string `json:"weight"`
	Algorithm string `json:"algorithm"`
	CostType  string `json:"cost_type"`
	Unit      int    `json:"unit"`
	// OK marks a successful attack; the three result fields below are only
	// meaningful when it is set.
	OK       bool    `json:"ok"`
	RuntimeS float64 `json:"runtime_s,omitempty"`
	Edges    int     `json:"edges,omitempty"`
	Cost     float64 `json:"cost,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	// FailKind is the FailureKind of the attack error when OK is false.
	FailKind string `json:"fail_kind,omitempty"`
	// Prev and Hash chain the record into the journal, exactly like the
	// audit ledger's records: Prev is the previous record's Hash (the
	// Header's hash for the first), Hash the SHA-256 of this record's
	// canonical JSON with the field blanked. Appends always chain; records
	// from journals written before chaining carry neither field and are
	// loaded without verification (the chain picks up after them).
	Prev string `json:"prev,omitempty"`
	Hash string `json:"hash,omitempty"`
}

type recordKey struct {
	city, weight, alg, ct string
	unit                  int
}

func (r Record) key() recordKey {
	return recordKey{city: r.City, weight: r.Weight, alg: r.Algorithm, ct: r.CostType, unit: r.Unit}
}

// line is the JSONL wire form: exactly one of the fields is set per line.
type line struct {
	Header *Header `json:"header,omitempty"`
	Record *Record `json:"record,omitempty"`
}

// Checkpoint is an append-only JSONL journal of completed attack units,
// letting an interrupted table run resume without redoing finished work.
// One checkpoint spans every table of a run (records are keyed by city and
// weight type too). A nil *Checkpoint is valid and disables journaling.
//
// The file tolerates a truncated final line (the run was killed mid-write):
// the torn line is truncated off — fsynced, via the audit package's shared
// durable-FS helpers — at the next open and that record is recomputed. A
// tear in the very first line (killed mid-header) heals the same way: the
// file truncates to empty and a fresh header is written. Records are
// flushed per append, not fsynced — a power failure may cost the tail,
// never the file's integrity.
//
// Records are hash-chained behind the fingerprint header (the chain genesis
// is the Header's hash), so an altered, deleted, or reordered journal record
// is detected on reopen with an error wrapping audit.ErrChainBroken. Two
// tolerated gaps, both documented limitations rather than accidents: records
// written before chaining existed verify as legacy (no Hash), and a torn
// tear-scar line mid-file (left by journals healed before truncation
// existed, which terminated the fragment in place) is skipped — in both
// cases the chain resumes at the next chained record, so stripping the
// final records of a journal is indistinguishable from a crash that never
// wrote them.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	done map[recordKey]Record
	// head is the hash chain head: the Header's hash for an empty journal,
	// then the last chained record's Hash.
	head string
}

// OpenCheckpoint opens (or creates) the journal at path. An existing journal
// must carry an equal Header or ErrCheckpointMismatch is returned; its
// records are loaded for Lookup and subsequent Appends extend the same file.
func OpenCheckpoint(path string, h Header) (*Checkpoint, error) {
	genesis, err := audit.HashJSON(h)
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint: %w", err)
	}
	c := &Checkpoint{done: map[recordKey]Record{}, head: genesis}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh journal.
	case err != nil:
		return nil, fmt.Errorf("experiment: checkpoint: %w", err)
	default:
	}
	if n := len(data); n > 0 && data[n-1] != '\n' {
		// The previous run was killed mid-write, leaving a torn final line.
		// Truncate it off — fsynced — before the append handle opens, so the
		// journal carries no tear scar. When the tear is in the very first
		// line the header itself never landed: the file truncates to empty
		// and is re-seeded with a fresh header below.
		keep := int64(bytes.LastIndexByte(data, '\n') + 1)
		if err := audit.TruncateSynced(path, keep); err != nil {
			return nil, fmt.Errorf("experiment: checkpoint: healing torn tail: %w", err)
		}
		data = data[:keep]
	}
	if len(data) > 0 {
		if err := c.load(data, h); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint: %w", err)
	}
	c.f = f
	c.w = bufio.NewWriter(f)
	if len(data) == 0 {
		if err := c.append(line{Header: &h}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// load parses an existing journal, verifies its header, and verifies the
// record hash chain.
func (c *Checkpoint) load(data []byte, h Header) error {
	sawHeader := false
	lineNo := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		lineNo++
		if len(raw) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			// A line torn by a mid-write kill. Drop it (the unit is simply
			// recomputed) but keep scanning: a resumed run appends intact
			// records after the tear.
			continue
		}
		switch {
		case l.Header != nil:
			if *l.Header != h {
				return fmt.Errorf("%w: journal %+v, run %+v", ErrCheckpointMismatch, *l.Header, h)
			}
			sawHeader = true
		case l.Record != nil:
			rec := *l.Record
			if rec.Hash != "" { // legacy pre-chain records carry no hash
				if err := c.verifyChained(rec, lineNo); err != nil {
					return err
				}
			}
			c.done[rec.key()] = rec
		}
	}
	if !sawHeader {
		return fmt.Errorf("%w: journal has no header", ErrCheckpointMismatch)
	}
	return nil
}

// verifyChained checks one chained record against the journal's chain head
// and advances it. Violations wrap audit.ErrChainBroken: the journal was
// altered after it was written, and resuming over it would launder the
// alteration into served results.
func (c *Checkpoint) verifyChained(rec Record, lineNo int) error {
	if rec.Prev != c.head {
		return fmt.Errorf("%w: checkpoint line %d (%s/%s/%s/%s unit %d): prev hash does not match the chain head",
			audit.ErrChainBroken, lineNo, rec.City, rec.Weight, rec.Algorithm, rec.CostType, rec.Unit)
	}
	blank := rec
	blank.Hash = ""
	h, err := audit.HashJSON(blank)
	if err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	if h != rec.Hash {
		return fmt.Errorf("%w: checkpoint line %d (%s/%s/%s/%s unit %d): record content does not match its hash",
			audit.ErrChainBroken, lineNo, rec.City, rec.Weight, rec.Algorithm, rec.CostType, rec.Unit)
	}
	c.head = rec.Hash
	return nil
}

// Lookup returns the journaled record for the unit, if any. Safe on a nil
// checkpoint (always misses) and for concurrent use.
func (c *Checkpoint) Lookup(city, weight, alg, ct string, unit int) (Record, bool) {
	if c == nil {
		return Record{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.done[recordKey{city: city, weight: weight, alg: alg, ct: ct, unit: unit}]
	return rec, ok
}

// Append journals a completed unit, chaining it onto the journal head. Safe
// on a nil checkpoint (no-op) and for concurrent use; each record is flushed
// to the OS before returning.
func (c *Checkpoint) Append(rec Record) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec.Prev = c.head
	rec.Hash = ""
	h, err := audit.HashJSON(rec)
	if err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	rec.Hash = h
	if err := c.append(line{Record: &rec}); err != nil {
		return err
	}
	c.done[rec.key()] = rec
	c.head = h
	return nil
}

// append writes one JSONL line and flushes. Callers hold c.mu (or are still
// single-threaded in OpenCheckpoint).
func (c *Checkpoint) append(l line) error {
	b, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	b = append(b, '\n')
	if _, err := c.w.Write(b); err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	return nil
}

// Len reports the number of journaled records.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Close flushes and closes the journal. Safe on nil.
func (c *Checkpoint) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	ferr := c.w.Flush()
	cerr := c.f.Close()
	c.f = nil
	if ferr != nil {
		return fmt.Errorf("experiment: checkpoint: %w", ferr)
	}
	if cerr != nil {
		return fmt.Errorf("experiment: checkpoint: %w", cerr)
	}
	return nil
}
