package experiment

import (
	"testing"

	"altroute/internal/citygen"
)

// TestParallelMatchesSerial verifies the parallel runner is bit-for-bit
// identical to the serial one (run with -race to exercise the clone-based
// isolation).
func TestParallelMatchesSerial(t *testing.T) {
	spec := smallSpec()
	net, err := citygen.Build(spec.City, spec.Scale, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	enabledBefore := net.Graph().NumEnabledEdges()
	serial, err := RunTableOnUnits(net, units, spec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunTableOnUnitsParallel(net, units, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Cells) != len(parallel.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial.Cells), len(parallel.Cells))
	}
	for i := range serial.Cells {
		s, p := serial.Cells[i], parallel.Cells[i]
		if s.Algorithm != p.Algorithm || s.CostType != p.CostType {
			t.Fatalf("cell %d order differs", i)
		}
		if s.ANER != p.ANER || s.ACRE != p.ACRE || s.Runs != p.Runs || s.Failures != p.Failures {
			t.Errorf("cell %d differs: serial %+v parallel %+v", i, s, p)
		}
	}
	// The original network must be untouched (POI attachment leaves some
	// permanently removed edges, so compare against the pre-run count).
	if net.Graph().NumEnabledEdges() != enabledBefore {
		t.Error("parallel run mutated the shared network")
	}

	// Degenerate worker counts.
	if _, err := RunTableOnUnitsParallel(net, units, spec, 0); err != nil {
		t.Errorf("workers=0: %v", err)
	}
	if _, err := RunTableOnUnitsParallel(net, units, spec, 99); err != nil {
		t.Errorf("workers>cells: %v", err)
	}
}
