package experiment

import (
	"fmt"
	"io"

	"altroute/internal/core"
	"altroute/internal/metrics"
	"altroute/internal/roadnet"
)

// Render writes the table in the paper's layout: one row per algorithm,
// one (Avg. Runtime, ANER, ACRE) column group per cost type.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s, WEIGHT TYPE: %s  (%d nodes, %d edges, %d runs/cell)\n",
		t.City, t.WeightType, t.Summary.Nodes, t.Summary.Edges, t.Units)

	costs := t.costTypes()
	fmt.Fprintf(w, "%-17s", "Algorithm")
	for _, ct := range costs {
		fmt.Fprintf(w, " | %-26s", ct.String())
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-17s", "")
	for range costs {
		fmt.Fprintf(w, " | %8s %8s %8s", "Runtime", "ANER", "ACRE")
	}
	fmt.Fprintln(w)

	for _, alg := range t.algorithms() {
		fmt.Fprintf(w, "%-17s", alg.String())
		for _, ct := range costs {
			c := t.Cell(alg, ct)
			if c == nil || c.Runs == 0 {
				fmt.Fprintf(w, " | %8s %8s %8s", "-", "-", "-")
				continue
			}
			fmt.Fprintf(w, " | %8.3f %8.2f %8.2f", c.AvgRuntimeS, c.ANER, c.ACRE)
		}
		fmt.Fprintln(w)
	}
}

func (t Table) costTypes() []roadnet.CostType {
	var out []roadnet.CostType
	seen := map[roadnet.CostType]bool{}
	for _, c := range t.Cells {
		if !seen[c.CostType] {
			seen[c.CostType] = true
			out = append(out, c.CostType)
		}
	}
	return out
}

func (t Table) algorithms() []core.Algorithm {
	var out []core.Algorithm
	seen := map[core.Algorithm]bool{}
	for _, c := range t.Cells {
		if !seen[c.Algorithm] {
			seen[c.Algorithm] = true
			out = append(out, c.Algorithm)
		}
	}
	return out
}

// RenderTableI writes the Table I city graph summary.
func RenderTableI(w io.Writer, rows []metrics.GraphSummary) {
	fmt.Fprintln(w, "CITY GRAPH SUMMARIES (Table I)")
	fmt.Fprintf(w, "%-15s %7s %8s %9s\n", "City", "Nodes", "Edges", "AvgDeg")
	for _, r := range rows {
		fmt.Fprintln(w, r.String())
	}
}

// RenderTableIX writes the Table IX cross-cost-type averages.
func RenderTableIX(w io.Writer, rows []CityAverage) {
	fmt.Fprintln(w, "AVERAGE ANER AND ACRE ACROSS ALL COST TYPES (Table IX)")
	fmt.Fprintf(w, "%-15s | %8s %8s | %8s %8s\n", "City", "LEN.ANER", "LEN.ACRE", "TIM.ANER", "TIM.ACRE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s | %8.2f %8.2f | %8.2f %8.2f\n",
			r.City,
			r.ANER[roadnet.WeightLength], r.ACRE[roadnet.WeightLength],
			r.ANER[roadnet.WeightTime], r.ACRE[roadnet.WeightTime])
	}
}

// RenderTableX writes the Table X threshold rows.
func RenderTableX(w io.Writer, rows []ThresholdRow, rank int) {
	fmt.Fprintf(w, "THRESHOLD TABLE, WEIGHT TYPE: TIME (Table X, rank %d/%d)\n", rank, 2*rank)
	fmt.Fprintf(w, "%-15s %22s %22s\n", "City",
		fmt.Sprintf("Avg Incr. to %dth", rank), fmt.Sprintf("Avg Incr. to %dth", 2*rank))
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %21.2f%% %21.2f%%\n", r.City, r.AvgInc100, r.AvgInc200)
	}
}
