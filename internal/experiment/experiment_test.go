package experiment

import (
	"errors"
	"strings"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/metrics"
	"altroute/internal/roadnet"
)

// smallSpec is a fast spec for tests: a tiny Boston, low path rank, few
// sources.
func smallSpec() Spec {
	return Spec{
		City:               citygen.Boston,
		Scale:              0.015,
		Seed:               11,
		WeightType:         roadnet.WeightTime,
		PathRank:           8,
		SourcesPerHospital: 2,
	}
}

func TestSampleUnits(t *testing.T) {
	spec := smallSpec()
	net, err := citygen.Build(spec.City, spec.Scale, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatalf("SampleUnits: %v", err)
	}
	// 4 hospitals x 2 sources.
	if len(units) != 8 {
		t.Fatalf("units = %d, want 8", len(units))
	}
	hospitals := map[string]int{}
	for _, u := range units {
		hospitals[u.Hospital]++
		if u.PStar.Source() != u.Source || u.PStar.Target() != u.Dest {
			t.Errorf("unit p* endpoints mismatch: %+v", u)
		}
		if u.PStar.Hops() == 0 {
			t.Errorf("unit has empty p*")
		}
	}
	if len(hospitals) != 4 {
		t.Errorf("hospitals covered = %d, want 4", len(hospitals))
	}
	// Determinism.
	units2, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range units {
		if units[i].Source != units2[i].Source || units[i].Dest != units2[i].Dest {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestSampleUnitsNoHospitals(t *testing.T) {
	net := roadnet.NewNetwork("bare")
	if _, err := SampleUnits(net, smallSpec()); !errors.Is(err, ErrNoHospitals) {
		t.Errorf("err = %v, want ErrNoHospitals", err)
	}
}

func TestSampleUnitsImpossibleRank(t *testing.T) {
	// A line network has exactly one simple path between any pair, so any
	// rank > 1 is unavailable and every sampling attempt exhausts fast.
	net := roadnet.NewNetwork("line")
	prev := net.AddIntersection(geo.Point{Lat: 42, Lon: -71})
	for i := 1; i < 10; i++ {
		cur := net.AddIntersection(geo.Point{Lat: 42 + float64(i)*0.001, Lon: -71})
		if _, _, err := net.AddTwoWayRoad(prev, cur, roadnet.Road{}); err != nil {
			t.Fatal(err)
		}
		prev = cur
	}
	if _, err := net.AttachPOI("Line General", citygen.KindHospital, geo.Point{Lat: 42.005, Lon: -71.0001}); err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	spec.PathRank = 50
	if _, err := SampleUnits(net, spec); !errors.Is(err, ErrSampling) {
		t.Errorf("err = %v, want ErrSampling", err)
	}
}

func TestSampleUnitsPartialOnErrSampling(t *testing.T) {
	// Two hospitals: one inside a well-connected grid, one on an isolated
	// intersection no source can reach. Sampling must fail with ErrSampling
	// but still hand back the first hospital's units.
	net := roadnet.NewNetwork("split")
	const side = 4
	var grid [side][side]graph.NodeID
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			grid[i][j] = net.AddIntersection(geo.Point{Lat: 42 + float64(i)*0.001, Lon: -71 + float64(j)*0.001})
		}
	}
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if i+1 < side {
				if _, _, err := net.AddTwoWayRoad(grid[i][j], grid[i+1][j], roadnet.Road{}); err != nil {
					t.Fatal(err)
				}
			}
			if j+1 < side {
				if _, _, err := net.AddTwoWayRoad(grid[i][j], grid[i][j+1], roadnet.Road{}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := net.AttachPOI("Grid General", citygen.KindHospital, geo.Point{Lat: 42.001, Lon: -70.999}); err != nil {
		t.Fatal(err)
	}
	// A disconnected line component: unreachable from the grid, and with
	// exactly one simple path between any of its own pairs, so no source
	// anywhere can supply a rank-4 alternative route to its hospital.
	prev := net.AddIntersection(geo.Point{Lat: 43, Lon: -71})
	for i := 1; i < 5; i++ {
		cur := net.AddIntersection(geo.Point{Lat: 43 + float64(i)*0.001, Lon: -71})
		if _, _, err := net.AddTwoWayRoad(prev, cur, roadnet.Road{}); err != nil {
			t.Fatal(err)
		}
		prev = cur
	}
	if _, err := net.AttachPOI("Island Medical", citygen.KindHospital, geo.Point{Lat: 43.002, Lon: -71.0001}); err != nil {
		t.Fatal(err)
	}

	spec := smallSpec()
	spec.PathRank = 4
	units, err := SampleUnits(net, spec)
	if !errors.Is(err, ErrSampling) {
		t.Fatalf("err = %v, want ErrSampling", err)
	}
	if len(units) != spec.SourcesPerHospital {
		t.Fatalf("partial units = %d, want %d (the reachable hospital's)", len(units), spec.SourcesPerHospital)
	}
	for _, u := range units {
		if u.Hospital != "Grid General" {
			t.Errorf("partial unit for %q, want only the reachable hospital", u.Hospital)
		}
	}
}

func TestRunTableFullGrid(t *testing.T) {
	spec := smallSpec()
	table, err := RunTable(spec)
	if err != nil {
		t.Fatalf("RunTable: %v", err)
	}
	if table.City != "Boston" || table.WeightType != roadnet.WeightTime {
		t.Errorf("table header = %q/%v", table.City, table.WeightType)
	}
	if len(table.Cells) != 4*3 {
		t.Fatalf("cells = %d, want 12", len(table.Cells))
	}
	for _, c := range table.Cells {
		if c.Runs+c.Failures != table.Units {
			t.Errorf("cell %v/%v: runs+failures = %d, want %d", c.Algorithm, c.CostType, c.Runs+c.Failures, table.Units)
		}
		if c.Runs > 0 && (c.ANER < 0 || c.ACRE < 0 || c.AvgRuntimeS < 0) {
			t.Errorf("cell %v/%v has negative stats: %+v", c.Algorithm, c.CostType, c)
		}
		// With unlimited budget on a connected city, attacks must succeed.
		if c.Failures > 0 {
			t.Errorf("cell %v/%v: %d failures with unlimited budget", c.Algorithm, c.CostType, c.Failures)
		}
	}

	// Paper shape: ACRE is non-decreasing UNIFORM -> LANES for every
	// algorithm (LANES counts lanes >= 1 per edge).
	for _, alg := range core.Algorithms() {
		u := table.Cell(alg, roadnet.CostUniform)
		l := table.Cell(alg, roadnet.CostLanes)
		if u == nil || l == nil {
			t.Fatalf("missing cells for %v", alg)
		}
		if l.ACRE+1e-9 < u.ACRE {
			t.Errorf("%v: ACRE(LANES) %.2f < ACRE(UNIFORM) %.2f", alg, l.ACRE, u.ACRE)
		}
	}
	// UNIFORM: ACRE equals ANER by definition.
	for _, alg := range core.Algorithms() {
		c := table.Cell(alg, roadnet.CostUniform)
		if c.Runs > 0 && absDiff(c.ANER, c.ACRE) > 1e-9 {
			t.Errorf("%v UNIFORM: ANER %.3f != ACRE %.3f", alg, c.ANER, c.ACRE)
		}
	}
	// PathCover algorithms must not be more expensive than the naive ones
	// on average under UNIFORM cost.
	lp := table.Cell(core.AlgLPPathCover, roadnet.CostUniform)
	ge := table.Cell(core.AlgGreedyEdge, roadnet.CostUniform)
	if lp.ACRE > ge.ACRE+1e-9 {
		t.Errorf("LP-PathCover ACRE %.2f > GreedyEdge ACRE %.2f", lp.ACRE, ge.ACRE)
	}
}

func TestRunTableWithBudgetRecordsFailures(t *testing.T) {
	spec := smallSpec()
	spec.Budget = 1e-6 // nothing is affordable
	table, err := RunTable(spec)
	if err != nil {
		t.Fatalf("RunTable: %v", err)
	}
	failures := 0
	for _, c := range table.Cells {
		failures += c.Failures
		// Runs either succeeded with zero cuts (p* already exclusive) or
		// failed; any successful run must respect the budget.
		if c.Runs > 0 && c.ACRE > spec.Budget {
			t.Errorf("cell %v/%v ACRE %.9f exceeds budget", c.Algorithm, c.CostType, c.ACRE)
		}
	}
	if failures == 0 {
		t.Error("no failures with near-zero budget")
	}
}

func TestRunTableOnPrebuiltNetwork(t *testing.T) {
	spec := smallSpec()
	net, err := citygen.Build(citygen.Chicago, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	spec.Net = net
	spec.Algorithms = []core.Algorithm{core.AlgGreedyEdge}
	spec.CostTypes = []roadnet.CostType{roadnet.CostUniform}
	table, err := RunTable(spec)
	if err != nil {
		t.Fatalf("RunTable: %v", err)
	}
	if table.City != "Chicago" {
		t.Errorf("city = %q, want Chicago (prebuilt net)", table.City)
	}
	if len(table.Cells) != 1 {
		t.Errorf("cells = %d, want 1", len(table.Cells))
	}
}

func TestAggregateTableIX(t *testing.T) {
	tables := []Table{
		{
			City:       "Boston",
			WeightType: roadnet.WeightLength,
			Cells: []Cell{
				{Algorithm: core.AlgGreedyEdge, CostType: roadnet.CostUniform, ANER: 4, ACRE: 4, Runs: 1},
				{Algorithm: core.AlgGreedyEdge, CostType: roadnet.CostLanes, ANER: 6, ACRE: 8, Runs: 1},
			},
		},
		{
			City:       "Boston",
			WeightType: roadnet.WeightTime,
			Cells: []Cell{
				{Algorithm: core.AlgGreedyEdge, CostType: roadnet.CostUniform, ANER: 3, ACRE: 3, Runs: 1},
				{Algorithm: core.AlgGreedyEdge, CostType: roadnet.CostLanes, ANER: 5, ACRE: 7, Runs: 1},
				{Algorithm: core.AlgGreedyEdge, CostType: roadnet.CostWidth, ANER: 0, ACRE: 0, Runs: 0}, // excluded
			},
		},
	}
	rows := Aggregate(tables)
	if len(rows) != 1 || rows[0].City != "Boston" {
		t.Fatalf("rows = %+v", rows)
	}
	if got := rows[0].ANER[roadnet.WeightLength]; got != 5 {
		t.Errorf("LENGTH ANER = %v, want 5", got)
	}
	if got := rows[0].ACRE[roadnet.WeightTime]; got != 5 {
		t.Errorf("TIME ACRE = %v, want 5", got)
	}
}

func TestRunThreshold(t *testing.T) {
	spec := smallSpec()
	spec.PathRank = 6
	row, err := RunThreshold(spec)
	if err != nil {
		t.Fatalf("RunThreshold: %v", err)
	}
	if row.City != "Boston" {
		t.Errorf("city = %q", row.City)
	}
	if row.AvgInc100 < 0 || row.AvgInc200 < row.AvgInc100 {
		t.Errorf("threshold row = %+v, want 0 <= inc(k) <= inc(2k)", row)
	}
	if row.Pairs == 0 {
		t.Error("no pairs measured")
	}
}

func TestRunThresholdNoHospitals(t *testing.T) {
	spec := smallSpec()
	spec.Net = roadnet.NewNetwork("bare")
	if _, err := RunThreshold(spec); !errors.Is(err, ErrNoHospitals) {
		t.Errorf("err = %v, want ErrNoHospitals", err)
	}
}

func TestRenderers(t *testing.T) {
	spec := smallSpec()
	spec.Algorithms = []core.Algorithm{core.AlgGreedyEdge, core.AlgGreedyEig}
	spec.CostTypes = []roadnet.CostType{roadnet.CostUniform, roadnet.CostWidth}
	table, err := RunTable(spec)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Boston", "TIME", "GreedyEdge", "GreedyEig", "UNIFORM", "WIDTH", "ANER", "ACRE"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	RenderTableI(&sb, []metrics.GraphSummary{{Name: "X", Nodes: 1, Edges: 2, AvgNodeDegree: 4}})
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("Table I render missing header")
	}

	sb.Reset()
	RenderTableIX(&sb, Aggregate([]Table{table}))
	if !strings.Contains(sb.String(), "Boston") {
		t.Error("Table IX render missing city")
	}

	sb.Reset()
	RenderTableX(&sb, []ThresholdRow{{City: "Boston", AvgInc100: 7.9, AvgInc200: 9.5}}, 100)
	if !strings.Contains(sb.String(), "7.90%") {
		t.Errorf("Table X render wrong:\n%s", sb.String())
	}

	// Rendering a cell with zero runs prints dashes.
	empty := Table{City: "E", WeightType: roadnet.WeightTime, Cells: []Cell{
		{Algorithm: core.AlgGreedyEdge, CostType: roadnet.CostUniform, Runs: 0},
	}}
	sb.Reset()
	empty.Render(&sb)
	if !strings.Contains(sb.String(), "-") {
		t.Error("zero-run cell not dashed")
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
