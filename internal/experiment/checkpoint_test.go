package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"altroute/internal/audit"
	"altroute/internal/core"
	"altroute/internal/faultinject"
	"altroute/internal/roadnet"
)

// zeroRuntimes clears the one wall-clock-dependent field so tables can be
// compared bit-for-bit.
func zeroRuntimes(t Table) Table {
	cells := make([]Cell, len(t.Cells))
	copy(cells, t.Cells)
	for i := range cells {
		cells[i].AvgRuntimeS = 0
	}
	t.Cells = cells
	return t
}

func testHeader() Header {
	return Header{Seed: 11, Scale: 0.015, PathRank: 8, Sources: 2}
}

// unchain blanks the chain fields Append stamps onto a record, so journaled
// records can be compared against the inputs they were built from.
func unchain(r Record) Record {
	r.Prev, r.Hash = "", ""
	return r
}

func TestCheckpointKillAndResumeBitIdentical(t *testing.T) {
	net, spec := buildSmall(t)
	spec.Algorithms = []core.Algorithm{core.AlgGreedyEdge, core.AlgGreedyEig}
	spec.CostTypes = []roadnet.CostType{roadnet.CostUniform, roadnet.CostLanes}
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}

	// The reference: one uninterrupted run, no checkpoint.
	want, err := RunTableOnUnitsCtx(context.Background(), net, units, spec)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: "kill" the run mid-table. An injected stall on the 5th
	// attack round hangs until the run deadline expires, deterministically
	// interrupting the serial runner partway through the grid.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	ctx = faultinject.With(ctx, faultinject.New(1).Arm(faultinject.PointAttackStall, faultinject.Rule{OnHit: 5}))
	spec.Checkpoint = ckpt
	partial, err := RunTableOnUnitsCtx(ctx, net, units, spec)
	cancel()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("phase 1 err = %v, want ErrInterrupted", err)
	}
	if len(partial.Cells) >= len(want.Cells) && partial.Cells[len(partial.Cells)-1].Runs+partial.Cells[len(partial.Cells)-1].Failures == len(units) {
		t.Fatal("phase 1 was not actually interrupted mid-grid")
	}
	journaled := ckpt.Len()
	if journaled == 0 {
		t.Fatal("phase 1 journaled nothing")
	}
	if journaled >= len(want.Cells)*len(units) {
		t.Fatalf("phase 1 journaled everything (%d records); the kill came too late", journaled)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume from the journal with a fresh process-equivalent
	// checkpoint handle and no faults.
	ckpt2, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ckpt2.Close()
	if ckpt2.Len() != journaled {
		t.Fatalf("reopened journal has %d records, want %d", ckpt2.Len(), journaled)
	}
	spec.Checkpoint = ckpt2
	got, err := RunTableOnUnitsCtx(context.Background(), net, units, spec)
	if err != nil {
		t.Fatalf("phase 2: %v", err)
	}

	if !reflect.DeepEqual(zeroRuntimes(got), zeroRuntimes(want)) {
		t.Errorf("resumed table differs from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}

	// A third run replays everything from the journal: no attack executes.
	before := ckpt2.Len()
	again, err := RunTableOnUnitsCtx(context.Background(), net, units, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt2.Len() != before {
		t.Errorf("full replay appended %d new records", ckpt2.Len()-before)
	}
	if !reflect.DeepEqual(again, got) {
		t.Error("full replay differs from the resumed run (runtimes must come from the journal)")
	}
}

func TestCheckpointParallelResumeMatchesSerial(t *testing.T) {
	net, spec := buildSmall(t)
	spec.Algorithms = []core.Algorithm{core.AlgGreedyEdge}
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunTableOnUnitsCtx(context.Background(), net, units, spec)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()
	spec.Checkpoint = ckpt

	// Interrupt a parallel run, then resume in parallel too.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	ctx = faultinject.With(ctx, faultinject.New(1).Arm(faultinject.PointAttackStall, faultinject.Rule{OnHit: 3}))
	if _, err := RunTableOnUnitsParallelCtx(ctx, net, units, spec, 2); !errors.Is(err, ErrInterrupted) {
		cancel()
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	cancel()
	got, err := RunTableOnUnitsParallelCtx(context.Background(), net, units, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroRuntimes(got), zeroRuntimes(want)) {
		t.Errorf("parallel resume differs from serial run:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestCheckpointHeaderMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	other := testHeader()
	other.Seed++
	if _, err := OpenCheckpoint(path, other); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestCheckpointTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{City: "Boston", Weight: "TIME", Algorithm: "GreedyEdge", CostType: "UNIFORM", Unit: 0, OK: true, Edges: 2, Cost: 2}
	if err := ckpt.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: a torn, unterminated record line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"record":{"city":"Bos`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer reopened.Close()
	if reopened.Len() != 1 {
		t.Fatalf("records = %d, want 1 (torn tail dropped)", reopened.Len())
	}
	if got, ok := reopened.Lookup("Boston", "TIME", "GreedyEdge", "UNIFORM", 0); !ok || unchain(got) != rec {
		t.Errorf("Lookup = %+v, %v; want the intact record", got, ok)
	}
	// The journal must still be appendable after a torn tail: a resumed run
	// writes records on their own fresh lines.
	rec2 := rec
	rec2.Unit = 1
	if err := reopened.Append(rec2); err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if got, ok := final.Lookup("Boston", "TIME", "GreedyEdge", "UNIFORM", 1); !ok || unchain(got) != rec2 {
		t.Errorf("post-tear append lost on reopen: %+v, %v", got, ok)
	}
}

// TestCheckpointTornHeaderHeals kills the journal mid-write of its very
// first line — the header itself is torn, so nothing in the file is
// usable. Open must truncate-heal to empty and re-seed a fresh header
// rather than refuse with ErrCheckpointMismatch.
func TestCheckpointTornHeaderHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte(`{"header":{"seed":1,"sc`), 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatalf("open over torn header = %v, want heal", err)
	}
	rec := Record{City: "Boston", Weight: "TIME", Algorithm: "GreedyEdge", CostType: "UNIFORM", Unit: 0, OK: true, Edges: 2, Cost: 2}
	if err := ckpt.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	defer reopened.Close()
	if got, ok := reopened.Lookup("Boston", "TIME", "GreedyEdge", "UNIFORM", 0); !ok || unchain(got) != rec {
		t.Errorf("Lookup after heal = %+v, %v; want the appended record", got, ok)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, ln := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
		if !json.Valid(ln) {
			t.Errorf("line %d is not valid JSON after the heal: %q", i+1, ln)
		}
	}
}

// TestCheckpointTornTailTruncated asserts the heal truncates the torn
// final line off the file instead of leaving a tear scar in place.
func TestCheckpointTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append([]byte{}, clean...), `{"record":{"city":"Bos`...), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, clean) {
		t.Errorf("healed journal = %q, want the pre-tear bytes %q", healed, clean)
	}
}

// TestCheckpointDetectsTamper alters and deletes chained journal records
// and asserts reopening refuses with audit.ErrChainBroken — resuming over
// a doctored journal would launder the alteration into served results.
func TestCheckpointDetectsTamper(t *testing.T) {
	build := func(t *testing.T) (string, []Record) {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		ckpt, err := OpenCheckpoint(path, testHeader())
		if err != nil {
			t.Fatal(err)
		}
		var recs []Record
		for unit := 0; unit < 3; unit++ {
			r := Record{City: "Boston", Weight: "TIME", Algorithm: "GreedyEdge", CostType: "UNIFORM", Unit: unit, OK: true, Edges: 2 + unit, Cost: 2}
			if err := ckpt.Append(r); err != nil {
				t.Fatal(err)
			}
			recs = append(recs, r)
		}
		if err := ckpt.Close(); err != nil {
			t.Fatal(err)
		}
		return path, recs
	}

	t.Run("AlteredRecord", func(t *testing.T) {
		path, _ := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		doctored := bytes.Replace(data, []byte(`"edges":3`), []byte(`"edges":9`), 1)
		if bytes.Equal(doctored, data) {
			t.Fatal("tamper target not found in journal")
		}
		if err := os.WriteFile(path, doctored, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCheckpoint(path, testHeader()); !errors.Is(err, audit.ErrChainBroken) {
			t.Errorf("reopen of altered journal = %v, want ErrChainBroken", err)
		}
	})

	t.Run("DeletedInteriorRecord", func(t *testing.T) {
		path, _ := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitAfter(data, []byte("\n"))
		// lines: header, rec0, rec1, rec2, "" — drop rec1.
		doctored := bytes.Join([][]byte{lines[0], lines[1], lines[3]}, nil)
		if err := os.WriteFile(path, doctored, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCheckpoint(path, testHeader()); !errors.Is(err, audit.ErrChainBroken) {
			t.Errorf("reopen of journal with deleted record = %v, want ErrChainBroken", err)
		}
	})

	t.Run("DroppedTailIsInvisible", func(t *testing.T) {
		// Removing the final record is indistinguishable from a crash that
		// never wrote it — the documented detectability boundary.
		path, _ := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitAfter(data, []byte("\n"))
		if err := os.WriteFile(path, bytes.Join(lines[:3], nil), 0o644); err != nil {
			t.Fatal(err)
		}
		ckpt, err := OpenCheckpoint(path, testHeader())
		if err != nil {
			t.Fatalf("reopen after tail drop = %v, want nil", err)
		}
		defer ckpt.Close()
		if ckpt.Len() != 2 {
			t.Errorf("Len = %d, want 2", ckpt.Len())
		}
	})
}

// TestCheckpointLegacyUnchainedTolerated pins backward compatibility: a
// journal written before chaining (records without hashes) still loads,
// and new appends start the chain after it.
func TestCheckpointLegacyUnchainedTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	legacy := `{"header":{"seed":11,"scale":0.015,"path_rank":8,"sources":2}}
{"record":{"city":"Boston","weight":"TIME","algorithm":"GreedyEdge","cost_type":"UNIFORM","unit":0,"ok":true,"edges":2,"cost":2}}
`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatalf("open legacy journal: %v", err)
	}
	if ckpt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ckpt.Len())
	}
	rec2 := Record{City: "Boston", Weight: "TIME", Algorithm: "GreedyEdge", CostType: "UNIFORM", Unit: 1, OK: true, Edges: 3, Cost: 2}
	if err := ckpt.Append(rec2); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenCheckpoint(path, testHeader())
	if err != nil {
		t.Fatalf("reopen mixed legacy/chained journal: %v", err)
	}
	defer reopened.Close()
	if got, ok := reopened.Lookup("Boston", "TIME", "GreedyEdge", "UNIFORM", 1); !ok || unchain(got) != rec2 {
		t.Errorf("chained record after legacy prefix: %+v, %v", got, ok)
	}
}

func TestCheckpointNilSafe(t *testing.T) {
	var c *Checkpoint
	if _, ok := c.Lookup("x", "y", "z", "w", 0); ok {
		t.Error("nil checkpoint Lookup hit")
	}
	if err := c.Append(Record{}); err != nil {
		t.Errorf("nil Append: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if c.Len() != 0 {
		t.Error("nil Len != 0")
	}
}
