package experiment

import (
	"context"
	"errors"
	"testing"
	"time"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/faultinject"
	"altroute/internal/roadnet"
)

// buildSmall builds the smallSpec network once per test.
func buildSmall(t *testing.T) (*roadnet.Network, Spec) {
	t.Helper()
	spec := smallSpec()
	net, err := citygen.Build(spec.City, spec.Scale, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	spec.Net = net
	return net, spec
}

func injectedCtx(seed int64, p faultinject.Point, r faultinject.Rule) context.Context {
	return faultinject.With(context.Background(), faultinject.New(seed).Arm(p, r))
}

func TestChaosWorkerPanicIsolatedInParallelTable(t *testing.T) {
	net, spec := buildSmall(t)
	spec.Algorithms = []core.Algorithm{core.AlgGreedyEdge}
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := injectedCtx(1, faultinject.PointWorkerPanic, faultinject.Rule{OnHit: 1})
	table, err := RunTableOnUnitsParallelCtx(ctx, net, units, spec, 3)
	if err != nil {
		t.Fatalf("table run died with a worker panic: %v", err)
	}
	panics, total := 0, 0
	for _, c := range table.Cells {
		panics += c.FailuresByKind["panic"]
		total += c.Runs + c.Failures
	}
	if panics != 1 {
		t.Errorf("panic failures = %d, want exactly 1", panics)
	}
	if want := len(units) * len(table.Cells); total != want {
		t.Errorf("runs+failures = %d, want %d (every unit accounted for)", total, want)
	}
}

func TestChaosWorkerPanicEveryUnitStillCompletes(t *testing.T) {
	net, spec := buildSmall(t)
	spec.Algorithms = []core.Algorithm{core.AlgGreedyEdge}
	spec.CostTypes = []roadnet.CostType{roadnet.CostUniform}
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := injectedCtx(1, faultinject.PointWorkerPanic, faultinject.Rule{Every: 1})
	table, err := RunTableOnUnitsCtx(ctx, net, units, spec)
	if err != nil {
		t.Fatalf("run err = %v", err)
	}
	c := table.Cells[0]
	if c.Runs != 0 || c.Failures != len(units) || c.FailuresByKind["panic"] != len(units) {
		t.Errorf("cell = %+v, want all %d units failed as panics", c, len(units))
	}
}

func TestChaosPerAttackTimeoutCountedByKind(t *testing.T) {
	net, spec := buildSmall(t)
	spec.Algorithms = []core.Algorithm{core.AlgGreedyEdge}
	spec.CostTypes = []roadnet.CostType{roadnet.CostUniform}
	// An already-expired per-attack deadline: every unit fails fast with
	// ErrTimeout while the run context stays alive, so the failures are
	// journaled per-unit rather than treated as an interruption.
	spec.Options.Timeout = time.Nanosecond
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	table, err := RunTableOnUnitsCtx(context.Background(), net, units, spec)
	if err != nil {
		t.Fatalf("run err = %v", err)
	}
	c := table.Cells[0]
	if c.FailuresByKind["timeout"] != len(units) {
		t.Errorf("timeout failures = %v, want %d", c.FailuresByKind, len(units))
	}
}

func TestChaosLPFailuresProduceDegradedCells(t *testing.T) {
	net, spec := buildSmall(t)
	spec.Algorithms = []core.Algorithm{core.AlgLPPathCover}
	spec.CostTypes = []roadnet.CostType{roadnet.CostUniform}
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := injectedCtx(1, faultinject.PointLPSolve, faultinject.Rule{Every: 1})
	table, err := RunTableOnUnitsCtx(ctx, net, units, spec)
	if err != nil {
		t.Fatalf("run err = %v", err)
	}
	c := table.Cells[0]
	if c.Failures != 0 {
		t.Errorf("failures = %d (%v), want 0: LP breakdown must degrade, not fail", c.Failures, c.FailuresByKind)
	}
	if c.Degraded != c.Runs || c.Runs == 0 {
		t.Errorf("degraded = %d of %d runs, want all", c.Degraded, c.Runs)
	}
}

func TestRunTableInterruptedReturnsPartialTable(t *testing.T) {
	net, spec := buildSmall(t)
	spec.Algorithms = []core.Algorithm{core.AlgGreedyEdge}
	units, err := SampleUnits(net, spec)
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("operator abort")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	table, err := RunTableOnUnitsCtx(ctx, net, units, spec)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("err = %v does not wrap the cancellation cause", err)
	}
	if len(table.Cells) == 0 || len(table.Cells) >= len(spec.Algorithms)*3+1 {
		t.Errorf("partial table has %d cells", len(table.Cells))
	}

	// The parallel runner reports the same interruption.
	table, err = RunTableOnUnitsParallelCtx(ctx, net, units, spec, 2)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("parallel err = %v, want ErrInterrupted", err)
	}
	if len(table.Cells) == 0 {
		t.Error("parallel partial table empty")
	}
}
