package experiment

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"altroute/internal/core"
	"altroute/internal/roadnet"
)

func exportTable() Table {
	return Table{
		City:       "Boston",
		WeightType: roadnet.WeightTime,
		Units:      40,
		Cells: []Cell{
			{Algorithm: core.AlgLPPathCover, CostType: roadnet.CostUniform, AvgRuntimeS: 0.5, ANER: 3.78, ACRE: 3.78, Runs: 40, Degraded: 2},
			{Algorithm: core.AlgGreedyEdge, CostType: roadnet.CostWidth, AvgRuntimeS: 0.1, ANER: 4.38, ACRE: 9.16, Runs: 39, Failures: 1,
				FailuresByKind: map[string]int{"timeout": 1}},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTable().WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want header + 2 rows", len(records))
	}
	if records[0][0] != "city" || records[0][6] != "acre" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][2] != "LP-PathCover" || records[1][3] != "UNIFORM" {
		t.Errorf("row 1 = %v", records[1])
	}
	if records[2][8] != "1" {
		t.Errorf("failures column = %q, want 1", records[2][8])
	}
	if records[0][9] != "degraded" || records[0][10] != "failure_kinds" {
		t.Errorf("robustness header columns = %v", records[0][9:])
	}
	if records[1][9] != "2" || records[1][10] != "" {
		t.Errorf("row 1 robustness columns = %v", records[1][9:])
	}
	if records[2][10] != "timeout=1" {
		t.Errorf("failure_kinds column = %q, want timeout=1", records[2][10])
	}
}

func TestFormatFailureKindsStableOrder(t *testing.T) {
	got := formatFailureKinds(map[string]int{"timeout": 2, "panic": 1, "budget": 3})
	if got != "budget=3;panic=1;timeout=2" {
		t.Errorf("formatFailureKinds = %q", got)
	}
	if formatFailureKinds(nil) != "" {
		t.Error("nil map should render empty")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportTable().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		City  string `json:"city"`
		Cells []struct {
			Algorithm string  `json:"algorithm"`
			ACRE      float64 `json:"acre"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if doc.City != "Boston" || len(doc.Cells) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Cells[1].ACRE != 9.16 {
		t.Errorf("cell ACRE = %v", doc.Cells[1].ACRE)
	}
	if !strings.Contains(buf.String(), "weight_type") {
		t.Error("missing weight_type field")
	}
	if !strings.Contains(buf.String(), `"degraded": 2`) {
		t.Error("missing degraded field")
	}
	if !strings.Contains(buf.String(), `"failures_by_kind"`) {
		t.Error("missing failures_by_kind field")
	}
}
