package experiment

import (
	"runtime"
	"sync"

	"altroute/internal/core"
	"altroute/internal/graph"
	"altroute/internal/metrics"
	"altroute/internal/roadnet"
)

// RunTableOnUnitsParallel computes the same table as RunTableOnUnits but
// spreads the (algorithm, cost type) cells across workers. Every worker
// runs on its own clone of the network (the attack algorithms disable
// edges transactionally, which must not race), so results are bit-for-bit
// identical to the serial runner, cell order included. workers <= 0 uses
// GOMAXPROCS.
func RunTableOnUnitsParallel(net *roadnet.Network, units []Unit, spec Spec, workers int) (Table, error) {
	spec.fill()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type cellJob struct {
		idx int
		alg core.Algorithm
		ct  roadnet.CostType
	}
	var jobs []cellJob
	for _, alg := range spec.Algorithms {
		for _, ct := range spec.CostTypes {
			jobs = append(jobs, cellJob{idx: len(jobs), alg: alg, ct: ct})
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]Cell, len(jobs))
	jobCh := make(chan cellJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := net.Clone()
			// Weight and cost functions are derived once per worker, not
			// per job or per unit: jobs repeat the same few cost types.
			weight := local.Weight(spec.WeightType)
			costs := make(map[roadnet.CostType]graph.WeightFunc, len(spec.CostTypes))
			for _, ct := range spec.CostTypes {
				costs[ct] = local.Cost(ct)
			}
			for job := range jobCh {
				cell := Cell{Algorithm: job.alg, CostType: job.ct}
				cost := costs[job.ct]
				for _, u := range units {
					p := core.Problem{
						G: local.Graph(), Source: u.Source, Dest: u.Dest,
						PStar: u.PStar, Weight: weight, Cost: cost,
						Budget: spec.Budget,
					}
					opts := spec.Options
					opts.Seed = spec.Seed
					res, err := core.Run(job.alg, p, opts)
					if err != nil {
						cell.Failures++
						continue
					}
					cell.Runs++
					cell.AvgRuntimeS += res.Runtime.Seconds()
					cell.ANER += float64(len(res.Removed))
					cell.ACRE += res.TotalCost
				}
				if cell.Runs > 0 {
					cell.AvgRuntimeS /= float64(cell.Runs)
					cell.ANER /= float64(cell.Runs)
					cell.ACRE /= float64(cell.Runs)
				}
				results[job.idx] = cell
			}
		}()
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()

	return Table{
		City:       net.Name(),
		WeightType: spec.WeightType,
		Cells:      results,
		Units:      len(units),
		Summary:    metrics.Summarize(net),
	}, nil
}
