package experiment

import (
	"context"
	"runtime"
	"sync"

	"altroute/internal/core"
	"altroute/internal/graph"
	"altroute/internal/metrics"
	"altroute/internal/roadnet"
)

// RunTableOnUnitsParallel computes the same table as RunTableOnUnits but
// spreads the (algorithm, cost type) cells across workers. It is a thin
// context.Background() wrapper over RunTableOnUnitsParallelCtx.
func RunTableOnUnitsParallel(net *roadnet.Network, units []Unit, spec Spec, workers int) (Table, error) {
	return RunTableOnUnitsParallelCtx(context.Background(), net, units, spec, workers)
}

// RunTableOnUnitsParallelCtx is the parallel grid runner under a context.
// Every worker runs on its own clone of the network (the attack algorithms
// disable edges transactionally, which must not race), so results are
// bit-for-bit identical to the serial runner, cell order included.
// workers <= 0 uses GOMAXPROCS.
//
// A worker panic is recovered into that unit's failure (counted in
// Cell.FailuresByKind under "panic"); the other workers and cells are
// unaffected. When ctx dies, each worker finishes its poll interval and the
// partial table — fully-computed cells plus whatever the interrupted cells
// accumulated — is returned with ErrInterrupted. Spec.Checkpoint journaling
// is safe for concurrent workers.
func RunTableOnUnitsParallelCtx(ctx context.Context, net *roadnet.Network, units []Unit, spec Spec, workers int) (Table, error) {
	spec.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type cellJob struct {
		idx int
		alg core.Algorithm
		ct  roadnet.CostType
	}
	var jobs []cellJob
	for _, alg := range spec.Algorithms {
		for _, ct := range spec.CostTypes {
			jobs = append(jobs, cellJob{idx: len(jobs), alg: alg, ct: ct})
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]Cell, len(jobs))
	cellErrs := make([]error, len(jobs))
	jobCh := make(chan cellJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := net.Clone()
			// Weight and cost functions — and the frozen snapshot and
			// overlay metric — are derived once per worker, not per job or
			// per unit: jobs repeat the same few cost types on the same
			// cloned graph. Each worker owns its metric (built over its own
			// clone's snapshot), so customization never races across workers.
			weight := local.Weight(spec.WeightType)
			snap := local.Snapshot(spec.WeightType)
			metric := buildMetric(ctx, snap, spec)
			costs := make(map[roadnet.CostType]graph.WeightFunc, len(spec.CostTypes))
			for _, ct := range spec.CostTypes {
				costs[ct] = local.Cost(ct)
			}
			for job := range jobCh {
				cell, err := runCell(ctx, local.Graph(), snap, metric, weight, costs[job.ct], net.Name(), job.alg, job.ct, units, spec)
				results[job.idx] = cell
				cellErrs[job.idx] = err
			}
		}()
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()

	table := Table{
		City:       net.Name(),
		WeightType: spec.WeightType,
		Cells:      results,
		Units:      len(units),
		Summary:    metrics.Summarize(net),
	}
	for _, err := range cellErrs {
		if err != nil {
			return table, err
		}
	}
	return table, nil
}
