package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteCSV exports the table as CSV with one row per (algorithm, cost
// type) cell, for downstream analysis and plotting.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"city", "weight_type", "algorithm", "cost_type", "avg_runtime_s", "aner", "acre", "runs", "failures", "degraded", "failure_kinds"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	for _, c := range t.Cells {
		row := []string{
			t.City,
			t.WeightType.String(),
			c.Algorithm.String(),
			c.CostType.String(),
			strconv.FormatFloat(c.AvgRuntimeS, 'f', 6, 64),
			strconv.FormatFloat(c.ANER, 'f', 4, 64),
			strconv.FormatFloat(c.ACRE, 'f', 4, 64),
			strconv.Itoa(c.Runs),
			strconv.Itoa(c.Failures),
			strconv.Itoa(c.Degraded),
			formatFailureKinds(c.FailuresByKind),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiment: csv: %w", err)
	}
	return nil
}

// tableJSON is the JSON wire form of a Table.
type tableJSON struct {
	City       string     `json:"city"`
	WeightType string     `json:"weight_type"`
	Units      int        `json:"units"`
	Nodes      int        `json:"nodes"`
	Edges      int        `json:"edges"`
	Cells      []cellJSON `json:"cells"`
}

type cellJSON struct {
	Algorithm      string         `json:"algorithm"`
	CostType       string         `json:"cost_type"`
	AvgRuntimeS    float64        `json:"avg_runtime_s"`
	ANER           float64        `json:"aner"`
	ACRE           float64        `json:"acre"`
	Runs           int            `json:"runs"`
	Failures       int            `json:"failures"`
	Degraded       int            `json:"degraded,omitempty"`
	FailuresByKind map[string]int `json:"failures_by_kind,omitempty"`
}

// formatFailureKinds renders a FailuresByKind map as a stable
// "kind=n;kind=n" CSV field; empty when there are no failures.
func formatFailureKinds(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, ";")
}

// WriteJSON exports the table as a JSON document.
func (t Table) WriteJSON(w io.Writer) error {
	doc := tableJSON{
		City:       t.City,
		WeightType: t.WeightType.String(),
		Units:      t.Units,
		Nodes:      t.Summary.Nodes,
		Edges:      t.Summary.Edges,
	}
	for _, c := range t.Cells {
		doc.Cells = append(doc.Cells, cellJSON{
			Algorithm:      c.Algorithm.String(),
			CostType:       c.CostType.String(),
			AvgRuntimeS:    c.AvgRuntimeS,
			ANER:           c.ANER,
			ACRE:           c.ACRE,
			Runs:           c.Runs,
			Failures:       c.Failures,
			Degraded:       c.Degraded,
			FailuresByKind: c.FailuresByKind,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("experiment: json: %w", err)
	}
	return nil
}
