package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // meters
		tol  float64
	}{
		{
			name: "zero distance",
			a:    Point{42.36, -71.06},
			b:    Point{42.36, -71.06},
			want: 0, tol: 1e-9,
		},
		{
			name: "one degree latitude",
			a:    Point{0, 0},
			b:    Point{1, 0},
			want: 111195, tol: 50,
		},
		{
			name: "Boston to NYC",
			a:    Point{42.3601, -71.0589},
			b:    Point{40.7128, -74.0060},
			want: 306100, tol: 1500,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Haversine(tt.a, tt.b); math.Abs(got-tt.want) > tt.tol {
				t.Errorf("Haversine = %v, want %v ± %v", got, tt.want, tt.tol)
			}
		})
	}
}

func TestHaversineSymmetryProperty(t *testing.T) {
	prop := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: math.Mod(lat1, 89), Lon: math.Mod(lon1, 179)}
		b := Point{Lat: math.Mod(lat2, 89), Lon: math.Mod(lon2, 179)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBearing(t *testing.T) {
	origin := Point{42.0, -71.0}
	tests := []struct {
		name string
		to   Point
		want float64
		tol  float64
	}{
		{"north", Point{43.0, -71.0}, 0, 0.01},
		{"east", Point{42.0, -70.0}, 90, 1},
		{"south", Point{41.0, -71.0}, 180, 0.01},
		{"west", Point{42.0, -72.0}, 270, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Bearing(origin, tt.to)
			diff := math.Abs(got - tt.want)
			if diff > 180 {
				diff = 360 - diff
			}
			if diff > tt.tol {
				t.Errorf("Bearing = %v, want %v ± %v", got, tt.want, tt.tol)
			}
		})
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(Point{42.36, -71.06})
	prop := func(dLat, dLon float64) bool {
		p := Point{
			Lat: 42.36 + math.Mod(dLat, 0.3),
			Lon: -71.06 + math.Mod(dLon, 0.3),
		}
		back := pr.ToPoint(pr.ToXY(p))
		return math.Abs(back.Lat-p.Lat) < 1e-9 && math.Abs(back.Lon-p.Lon) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjectionApproximatesHaversine(t *testing.T) {
	pr := NewProjection(Point{42.36, -71.06})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a := Point{42.36 + rng.Float64()*0.2 - 0.1, -71.06 + rng.Float64()*0.2 - 0.1}
		b := Point{42.36 + rng.Float64()*0.2 - 0.1, -71.06 + rng.Float64()*0.2 - 0.1}
		planar := Dist(pr.ToXY(a), pr.ToXY(b))
		sphere := Haversine(a, b)
		if sphere > 100 && math.Abs(planar-sphere)/sphere > 0.01 {
			t.Fatalf("planar %v vs haversine %v differs > 1%%", planar, sphere)
		}
	}
}

func TestXYArithmetic(t *testing.T) {
	a := XY{3, 4}
	b := XY{1, 1}
	if got := a.Sub(b); got != (XY{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Add(b); got != (XY{4, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(2); got != (XY{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 7 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := Dist(a, XY{0, 0}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestProjectOntoSegment(t *testing.T) {
	a, b := XY{0, 0}, XY{10, 0}
	tests := []struct {
		name  string
		p     XY
		wantT float64
		wantD float64
	}{
		{"middle above", XY{5, 3}, 0.5, 3},
		{"before start", XY{-4, 3}, 0, 5},
		{"past end", XY{14, 3}, 1, 5},
		{"on segment", XY{2, 0}, 0.2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ProjectOntoSegment(tt.p, a, b)
			if math.Abs(got.T-tt.wantT) > 1e-12 || math.Abs(got.Distance-tt.wantD) > 1e-12 {
				t.Errorf("got T=%v D=%v, want T=%v D=%v", got.T, got.Distance, tt.wantT, tt.wantD)
			}
		})
	}
}

func TestProjectOntoDegenerateSegment(t *testing.T) {
	p := XY{3, 4}
	got := ProjectOntoSegment(p, XY{0, 0}, XY{0, 0})
	if got.T != 0 || got.Distance != 5 || got.Closest != (XY{0, 0}) {
		t.Errorf("degenerate projection = %+v", got)
	}
}

func TestBBox(t *testing.T) {
	b := EmptyBBox()
	if !b.Empty() {
		t.Fatal("EmptyBBox not empty")
	}
	b.Add(Point{1, 2})
	b.Add(Point{-1, 5})
	if b.Empty() {
		t.Fatal("box with points reports empty")
	}
	if !b.Contains(Point{0, 3}) {
		t.Error("Contains(interior) = false")
	}
	if b.Contains(Point{2, 3}) {
		t.Error("Contains(exterior) = true")
	}
	c := b.Center()
	if c.Lat != 0 || c.Lon != 3.5 {
		t.Errorf("Center = %v", c)
	}
}

func TestPointString(t *testing.T) {
	got := Point{42.123456789, -71.5}.String()
	want := "(42.123457, -71.500000)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
