// Package geo provides the small set of geographic primitives the road
// network layer needs: great-circle distances, a local planar projection,
// bearings, bounding boxes, and point-to-segment snapping used to attach
// off-network points of interest to the nearest road.
//
// All distances are in meters, all angles in degrees unless stated
// otherwise. Coordinates follow the (latitude, longitude) convention.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by Haversine.
const EarthRadiusMeters = 6371008.8

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64
	Lon float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Bearing returns the initial compass bearing in degrees [0, 360) to travel
// from a to b along the great circle.
func Bearing(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := math.Atan2(y, x) / degToRad
	return math.Mod(deg+360, 360)
}

// Projection is an equirectangular projection centered on a reference
// latitude. It maps geographic coordinates to local planar (x, y) meters,
// which is accurate to well under 1% across a metropolitan extent and is the
// same approximation road-network tooling commonly uses for snapping.
type Projection struct {
	origin   Point
	cosLat   float64
	metersAt float64
}

// NewProjection returns a projection centered at origin.
func NewProjection(origin Point) Projection {
	return Projection{
		origin:   origin,
		cosLat:   math.Cos(origin.Lat * math.Pi / 180),
		metersAt: EarthRadiusMeters * math.Pi / 180,
	}
}

// Origin returns the projection center.
func (pr Projection) Origin() Point { return pr.origin }

// ToXY projects p to local planar coordinates in meters.
func (pr Projection) ToXY(p Point) XY {
	return XY{
		X: (p.Lon - pr.origin.Lon) * pr.metersAt * pr.cosLat,
		Y: (p.Lat - pr.origin.Lat) * pr.metersAt,
	}
}

// ToPoint inverts ToXY.
func (pr Projection) ToPoint(xy XY) Point {
	return Point{
		Lat: pr.origin.Lat + xy.Y/pr.metersAt,
		Lon: pr.origin.Lon + xy.X/(pr.metersAt*pr.cosLat),
	}
}

// XY is a planar coordinate in meters.
type XY struct {
	X float64
	Y float64
}

// Sub returns a - b.
func (a XY) Sub(b XY) XY { return XY{a.X - b.X, a.Y - b.Y} }

// Add returns a + b.
func (a XY) Add(b XY) XY { return XY{a.X + b.X, a.Y + b.Y} }

// Scale returns a scaled by f.
func (a XY) Scale(f float64) XY { return XY{a.X * f, a.Y * f} }

// Dot returns the dot product a·b.
func (a XY) Dot(b XY) float64 { return a.X*b.X + a.Y*b.Y }

// Norm returns the Euclidean length of a.
func (a XY) Norm() float64 { return math.Hypot(a.X, a.Y) }

// Dist returns the Euclidean distance between a and b.
func Dist(a, b XY) float64 { return a.Sub(b).Norm() }

// SegmentProjection is the result of projecting a point onto a segment.
type SegmentProjection struct {
	// Closest is the closest point on the segment.
	Closest XY
	// T is the normalized position of Closest along the segment in [0, 1]
	// (0 at the segment start, 1 at the end).
	T float64
	// Distance is the distance from the query point to Closest.
	Distance float64
}

// ProjectOntoSegment returns the projection of p onto segment [a, b].
// Degenerate segments (a == b) project everything onto a with T == 0.
func ProjectOntoSegment(p, a, b XY) SegmentProjection {
	ab := b.Sub(a)
	denom := ab.Dot(ab)
	if denom == 0 {
		return SegmentProjection{Closest: a, T: 0, Distance: Dist(p, a)}
	}
	t := p.Sub(a).Dot(ab) / denom
	switch {
	case t < 0:
		t = 0
	case t > 1:
		t = 1
	}
	closest := a.Add(ab.Scale(t))
	return SegmentProjection{Closest: closest, T: t, Distance: Dist(p, closest)}
}

// BBox is an axis-aligned geographic bounding box.
type BBox struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// EmptyBBox returns a bounding box that contains nothing; extend it with Add.
func EmptyBBox() BBox {
	return BBox{
		MinLat: math.Inf(1), MinLon: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLon: math.Inf(-1),
	}
}

// Add extends the box to include p.
func (b *BBox) Add(p Point) {
	b.MinLat = math.Min(b.MinLat, p.Lat)
	b.MinLon = math.Min(b.MinLon, p.Lon)
	b.MaxLat = math.Max(b.MaxLat, p.Lat)
	b.MaxLon = math.Max(b.MaxLon, p.Lon)
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Empty reports whether the box contains no points.
func (b BBox) Empty() bool { return b.MinLat > b.MaxLat || b.MinLon > b.MaxLon }
