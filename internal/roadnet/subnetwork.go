package roadnet

import (
	"altroute/internal/geo"
	"altroute/internal/graph"
)

// Subnetwork returns a new network containing only the given nodes and the
// enabled road segments whose both endpoints are kept. Node IDs are
// remapped compactly; the returned mapping translates old node IDs to new
// ones (absent keys were dropped). POIs are not carried over — attach them
// to the subnetwork as needed.
//
// Generators use this to restrict synthetic cities to their largest
// strongly connected component, the same preprocessing the paper's OSMnx
// pipeline applies so every source can reach every destination.
func (n *Network) Subnetwork(keep []graph.NodeID) (*Network, map[graph.NodeID]graph.NodeID) {
	sub := NewNetwork(n.name)
	remap := make(map[graph.NodeID]graph.NodeID, len(keep))
	for _, old := range keep {
		if _, dup := remap[old]; dup {
			continue
		}
		remap[old] = sub.AddIntersection(n.coords[old])
	}
	for e := 0; e < n.g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if n.g.EdgeDisabled(id) {
			continue
		}
		arc := n.g.Arc(id)
		from, okF := remap[arc.From]
		to, okT := remap[arc.To]
		if !okF || !okT {
			continue
		}
		// AddRoad cannot fail here: both endpoints exist.
		if _, err := sub.AddRoad(from, to, n.roads[e]); err != nil {
			panic("roadnet: Subnetwork: " + err.Error())
		}
	}
	return sub, remap
}

// LargestComponent returns the subnetwork induced by the largest strongly
// connected component.
func (n *Network) LargestComponent() (*Network, map[graph.NodeID]graph.NodeID) {
	return n.Subnetwork(graph.LargestSCC(n.g))
}

// Clone returns a deep copy of the network (graph, roads, coordinates,
// POIs). Parallel experiment workers each run on their own clone so
// transactional edge disabling never races. The road attributes are copied
// under the same critical section SetRoad publishes in, so a clone taken
// concurrently with a SetRoad observes either the old or the new
// attributes, never a torn mix; the clone's weight generation matches what
// it copied.
func (n *Network) Clone() *Network {
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	return &Network{
		g:      n.g.Clone(),
		roads:  append([]Road(nil), n.roads...),
		coords: append([]geo.Point(nil), n.coords...),
		pois:   append([]POI(nil), n.pois...),
		name:   n.name,
		wgen:   n.wgen,
	}
}
