package roadnet

import (
	"errors"
	"math"
	"strings"
	"testing"

	"altroute/internal/geo"
	"altroute/internal/graph"
)

// testNet builds a small two-way grid street network around (42.36, -71.06):
//
//	n00 -- n01
//	 |      |
//	n10 -- n11
//
// with 2-lane secondary streets.
func testNet(t *testing.T) (*Network, [4]graph.NodeID) {
	t.Helper()
	n := NewNetwork("testville")
	const d = 0.002 // ~200 m
	n00 := n.AddIntersection(geo.Point{Lat: 42.362, Lon: -71.062})
	n01 := n.AddIntersection(geo.Point{Lat: 42.362, Lon: -71.060})
	n10 := n.AddIntersection(geo.Point{Lat: 42.360, Lon: -71.062})
	n11 := n.AddIntersection(geo.Point{Lat: 42.360, Lon: -71.060})
	_ = d
	r := Road{Class: ClassSecondary, Lanes: 2, Name: "Main St"}
	for _, pair := range [][2]graph.NodeID{{n00, n01}, {n00, n10}, {n01, n11}, {n10, n11}} {
		if _, _, err := n.AddTwoWayRoad(pair[0], pair[1], r); err != nil {
			t.Fatalf("AddTwoWayRoad: %v", err)
		}
	}
	return n, [4]graph.NodeID{n00, n01, n10, n11}
}

func TestRoadNormalize(t *testing.T) {
	tests := []struct {
		name string
		in   Road
		want func(Road) bool
	}{
		{
			name: "all defaults",
			in:   Road{},
			want: func(r Road) bool {
				return r.Class == ClassUnclassified && r.SpeedMS > 0 && r.Lanes == 1 &&
					r.WidthM == LaneWidthM && r.LengthM == 1
			},
		},
		{
			name: "motorway defaults",
			in:   Road{Class: ClassMotorway, LengthM: 100},
			want: func(r Road) bool {
				return r.Lanes == 3 && math.Abs(r.SpeedMS-29.06) < 0.01 && r.WidthM == 3*LaneWidthM
			},
		},
		{
			name: "explicit fields survive",
			in:   Road{Class: ClassPrimary, LengthM: 50, SpeedMS: 10, Lanes: 4, WidthM: 20},
			want: func(r Road) bool {
				return r.SpeedMS == 10 && r.Lanes == 4 && r.WidthM == 20 && r.LengthM == 50
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := tt.in
			r.normalize()
			if !tt.want(r) {
				t.Errorf("normalized road = %+v", r)
			}
		})
	}
}

func TestRoadDerivedQuantities(t *testing.T) {
	r := Road{LengthM: 100, SpeedMS: 10, WidthM: 7.12}
	if got := r.TravelTimeS(); got != 10 {
		t.Errorf("TravelTimeS = %v, want 10", got)
	}
	if got := r.RemovalWidthCost(); math.Abs(got-4) > 1e-12 {
		t.Errorf("RemovalWidthCost = %v, want 4", got)
	}
}

func TestParseRoadClass(t *testing.T) {
	tests := []struct {
		in   string
		want RoadClass
	}{
		{"motorway", ClassMotorway},
		{"motorway_link", ClassMotorway},
		{"trunk", ClassTrunk},
		{"primary_link", ClassPrimary},
		{"secondary", ClassSecondary},
		{"tertiary", ClassTertiary},
		{"residential", ClassResidential},
		{"living_street", ClassResidential},
		{"service", ClassService},
		{"footway", ClassUnclassified},
		{"", ClassUnclassified},
	}
	for _, tt := range tests {
		if got := ParseRoadClass(tt.in); got != tt.want {
			t.Errorf("ParseRoadClass(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRoadClassString(t *testing.T) {
	if got := ClassMotorway.String(); got != "motorway" {
		t.Errorf("String() = %q", got)
	}
	if got := RoadClass(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown class String() = %q", got)
	}
}

func TestAddRoadComputesLengthFromCoords(t *testing.T) {
	n := NewNetwork("t")
	a := n.AddIntersection(geo.Point{Lat: 42.36, Lon: -71.06})
	b := n.AddIntersection(geo.Point{Lat: 42.37, Lon: -71.06})
	e, err := n.AddRoad(a, b, Road{Class: ClassResidential})
	if err != nil {
		t.Fatalf("AddRoad: %v", err)
	}
	got := n.Road(e).LengthM
	want := geo.Haversine(n.Point(a), n.Point(b))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LengthM = %v, want haversine %v", got, want)
	}
}

func TestAddRoadInvalidNodes(t *testing.T) {
	n := NewNetwork("t")
	if _, err := n.AddRoad(0, 1, Road{}); err == nil {
		t.Error("AddRoad on empty network succeeded")
	}
}

func TestWeightTypes(t *testing.T) {
	n := NewNetwork("t")
	a := n.AddIntersection(geo.Point{})
	b := n.AddIntersection(geo.Point{Lat: 0.001})
	e, err := n.AddRoad(a, b, Road{LengthM: 100, SpeedMS: 20})
	if err != nil {
		t.Fatalf("AddRoad: %v", err)
	}
	if got := n.Weight(WeightLength)(e); got != 100 {
		t.Errorf("LENGTH weight = %v, want 100", got)
	}
	if got := n.Weight(WeightTime)(e); got != 5 {
		t.Errorf("TIME weight = %v, want 5", got)
	}
}

func TestCostTypes(t *testing.T) {
	n := NewNetwork("t")
	a := n.AddIntersection(geo.Point{})
	b := n.AddIntersection(geo.Point{Lat: 0.001})
	e, err := n.AddRoad(a, b, Road{LengthM: 10, Lanes: 3, WidthM: 8.9})
	if err != nil {
		t.Fatalf("AddRoad: %v", err)
	}
	if got := n.Cost(CostUniform)(e); got != 1 {
		t.Errorf("UNIFORM cost = %v, want 1", got)
	}
	if got := n.Cost(CostLanes)(e); got != 3 {
		t.Errorf("LANES cost = %v, want 3", got)
	}
	if got := n.Cost(CostWidth)(e); math.Abs(got-8.9/AvgCarWidthM) > 1e-12 {
		t.Errorf("WIDTH cost = %v, want %v", got, 8.9/AvgCarWidthM)
	}
}

func TestParseWeightAndCostTypes(t *testing.T) {
	for _, s := range []string{"length", "LENGTH", " Length "} {
		if got, err := ParseWeightType(s); err != nil || got != WeightLength {
			t.Errorf("ParseWeightType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseWeightType("bogus"); err == nil {
		t.Error("ParseWeightType(bogus) succeeded")
	}
	for _, tt := range []struct {
		in   string
		want CostType
	}{{"uniform", CostUniform}, {"LANES", CostLanes}, {"Width", CostWidth}} {
		if got, err := ParseCostType(tt.in); err != nil || got != tt.want {
			t.Errorf("ParseCostType(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := ParseCostType("bogus"); err == nil {
		t.Error("ParseCostType(bogus) succeeded")
	}
	if len(WeightTypes()) != 2 || len(CostTypes()) != 3 {
		t.Error("enumerations have wrong sizes")
	}
}

func TestTypeStrings(t *testing.T) {
	if WeightLength.String() != "LENGTH" || WeightTime.String() != "TIME" {
		t.Error("WeightType names wrong")
	}
	if CostUniform.String() != "UNIFORM" || CostLanes.String() != "LANES" || CostWidth.String() != "WIDTH" {
		t.Error("CostType names wrong")
	}
	if !strings.Contains(WeightType(9).String(), "9") || !strings.Contains(CostType(9).String(), "9") {
		t.Error("unknown type names wrong")
	}
}

func TestBBoxAndProjection(t *testing.T) {
	n, _ := testNet(t)
	b := n.BBox()
	if b.Empty() {
		t.Fatal("BBox empty for populated network")
	}
	c := b.Center()
	if math.Abs(c.Lat-42.361) > 1e-9 || math.Abs(c.Lon+71.061) > 1e-9 {
		t.Errorf("center = %v", c)
	}
	if got := n.Projection().Origin(); got != c {
		t.Errorf("projection origin = %v, want %v", got, c)
	}
	// Empty network must not panic.
	if NewNetwork("empty").Projection().Origin() != (geo.Point{}) {
		t.Error("empty projection origin not zero")
	}
}

func TestNearestEdge(t *testing.T) {
	n, nodes := testNet(t)
	// A point just east of the n01->n11 street should snap to it (or its
	// twin) near the middle.
	q := geo.Point{Lat: 42.361, Lon: -71.0595}
	snap, err := n.NearestEdge(q)
	if err != nil {
		t.Fatalf("NearestEdge: %v", err)
	}
	arc := n.Graph().Arc(snap.Edge)
	eastPair := map[graph.NodeID]bool{nodes[1]: true, nodes[3]: true}
	if !eastPair[arc.From] || !eastPair[arc.To] {
		t.Errorf("snapped to edge %d->%d, want the eastern street", arc.From, arc.To)
	}
	if snap.Proj.T < 0.3 || snap.Proj.T > 0.7 {
		t.Errorf("snap T = %v, want near middle", snap.Proj.T)
	}
}

func TestNearestEdgeEmpty(t *testing.T) {
	n := NewNetwork("empty")
	if _, err := n.NearestEdge(geo.Point{}); err == nil {
		t.Error("NearestEdge on empty network succeeded")
	}
}

func TestSplitEdgeMidpoint(t *testing.T) {
	n, nodes := testNet(t)
	e := n.Graph().FindEdge(nodes[0], nodes[1])
	origLen := n.Road(e).LengthM
	before := n.Graph().NumEdges()

	mid, err := n.SplitEdge(e, 0.5)
	if err != nil {
		t.Fatalf("SplitEdge: %v", err)
	}
	if mid == nodes[0] || mid == nodes[1] {
		t.Fatal("midpoint split returned an endpoint")
	}
	if !n.Graph().EdgeRemoved(e) {
		t.Error("original edge not permanently removed")
	}
	// Twin must be split too: 4 new edges total.
	if got := n.Graph().NumEdges(); got != before+4 {
		t.Errorf("edge count = %d, want %d", got, before+4)
	}
	// Forward halves sum to original length.
	e1 := n.Graph().FindEdge(nodes[0], mid)
	e2 := n.Graph().FindEdge(mid, nodes[1])
	if e1 == graph.InvalidEdge || e2 == graph.InvalidEdge {
		t.Fatal("split halves missing")
	}
	if got := n.Road(e1).LengthM + n.Road(e2).LengthM; math.Abs(got-origLen) > 1e-9 {
		t.Errorf("half lengths sum to %v, want %v", got, origLen)
	}
	// Reverse direction still works.
	if n.Graph().FindEdge(nodes[1], mid) == graph.InvalidEdge ||
		n.Graph().FindEdge(mid, nodes[0]) == graph.InvalidEdge {
		t.Error("twin not split")
	}
}

func TestSplitEdgeEndpointsSnap(t *testing.T) {
	n, nodes := testNet(t)
	e := n.Graph().FindEdge(nodes[0], nodes[1])
	if got, err := n.SplitEdge(e, 0); err != nil || got != nodes[0] {
		t.Errorf("SplitEdge(t=0) = %v, %v, want from-node", got, err)
	}
	if got, err := n.SplitEdge(e, 1); err != nil || got != nodes[1] {
		t.Errorf("SplitEdge(t=1) = %v, %v, want to-node", got, err)
	}
	if !n.Graph().EdgeRemoved(e) == true && n.Graph().NumEdges() != 8 {
		t.Error("endpoint snap should not split")
	}
	if _, err := n.SplitEdge(graph.EdgeID(999), 0.5); err == nil {
		t.Error("SplitEdge on bogus edge succeeded")
	}
}

func TestAttachPOI(t *testing.T) {
	n, nodes := testNet(t)
	loc := geo.Point{Lat: 42.361, Lon: -71.0590} // east of the grid
	poi, err := n.AttachPOI("General Hospital", "hospital", loc)
	if err != nil {
		t.Fatalf("AttachPOI: %v", err)
	}
	if poi.Node == graph.InvalidNode {
		t.Fatal("POI not attached to a node")
	}
	// The POI must be reachable from every grid corner and back.
	r := n.Router()
	w := n.Weight(WeightTime)
	for _, s := range nodes {
		if _, ok := r.ShortestPath(s, poi.Node, w); !ok {
			t.Errorf("POI unreachable from node %d", s)
		}
		if _, ok := r.ShortestPath(poi.Node, s, w); !ok {
			t.Errorf("node %d unreachable from POI", s)
		}
	}
	// Connector edges must be artificial.
	artificial := 0
	for e := 0; e < n.NumSegments(); e++ {
		if n.Road(graph.EdgeID(e)).Artificial {
			artificial++
		}
	}
	if artificial != 2 {
		t.Errorf("artificial segment count = %d, want 2", artificial)
	}
	// Registry lookups.
	if got, ok := n.FindPOI("General Hospital"); !ok || got.Node != poi.Node {
		t.Error("FindPOI failed")
	}
	if got := n.POIsOfKind("hospital"); len(got) != 1 {
		t.Errorf("POIsOfKind = %d, want 1", len(got))
	}
	if got := n.POIsOfKind("school"); got != nil {
		t.Errorf("POIsOfKind(school) = %v", got)
	}
	if _, ok := n.FindPOI("nope"); ok {
		t.Error("FindPOI(nope) succeeded")
	}
	if len(n.POIs()) != 1 {
		t.Error("POIs() wrong length")
	}
}

func TestAttachPOIEmptyNetwork(t *testing.T) {
	n := NewNetwork("empty")
	if _, err := n.AttachPOI("x", "hospital", geo.Point{}); err == nil {
		t.Error("AttachPOI on empty network succeeded")
	}
}

func TestSetRoad(t *testing.T) {
	n, nodes := testNet(t)
	e := n.Graph().FindEdge(nodes[0], nodes[1])
	if err := n.SetRoad(e, Road{LengthM: 42, Class: ClassMotorway}); err != nil {
		t.Fatalf("SetRoad: %v", err)
	}
	got := n.Road(e)
	if got.LengthM != 42 || got.Class != ClassMotorway || got.Lanes != 3 {
		t.Errorf("SetRoad result = %+v", got)
	}
}

func TestAddRoadRejectsGarbageAttributes(t *testing.T) {
	bad := map[string]Road{
		"NaN length":      {LengthM: math.NaN()},
		"+Inf length":     {LengthM: math.Inf(1)},
		"negative length": {LengthM: -5},
		"NaN speed":       {SpeedMS: math.NaN()},
		"-Inf speed":      {SpeedMS: math.Inf(-1)},
		"negative speed":  {SpeedMS: -1},
		"NaN width":       {WidthM: math.NaN()},
		"negative width":  {WidthM: -2},
		"negative lanes":  {Lanes: -1},
	}
	for name, road := range bad {
		t.Run(name, func(t *testing.T) {
			n, nodes := testNet(t)
			edges := n.NumSegments()
			if _, err := n.AddRoad(nodes[0], nodes[3], road); !errors.Is(err, ErrBadRoad) {
				t.Fatalf("AddRoad = %v, want ErrBadRoad", err)
			} else if !errors.Is(err, graph.ErrBadGraph) {
				t.Fatalf("AddRoad error %v does not wrap graph.ErrBadGraph", err)
			}
			if n.NumSegments() != edges {
				t.Fatalf("rejected road still added an edge")
			}
			// SetRoad applies the same validation and leaves the existing
			// road untouched on rejection.
			e := n.Graph().FindEdge(nodes[0], nodes[1])
			before := n.Road(e)
			if err := n.SetRoad(e, road); !errors.Is(err, ErrBadRoad) {
				t.Fatalf("SetRoad = %v, want ErrBadRoad", err)
			}
			if n.Road(e) != before {
				t.Fatal("rejected SetRoad modified the road")
			}
		})
	}
}

func TestAddRoadRejectsLengthFromBadCoords(t *testing.T) {
	n := NewNetwork("badcoords")
	a := n.AddIntersection(geo.Point{Lat: math.NaN(), Lon: -71})
	b := n.AddIntersection(geo.Point{Lat: 42.36, Lon: -71})
	// Zero length asks for haversine from coordinates; the NaN latitude
	// must be caught here, not discovered as a NaN weight mid-attack.
	if _, err := n.AddRoad(a, b, Road{}); !errors.Is(err, ErrBadRoad) {
		t.Fatalf("AddRoad over NaN coords = %v, want ErrBadRoad", err)
	}
}

func TestNetworkBasics(t *testing.T) {
	n, _ := testNet(t)
	if n.Name() != "testville" {
		t.Errorf("Name = %q", n.Name())
	}
	if n.NumIntersections() != 4 || n.NumSegments() != 8 {
		t.Errorf("size = %d nodes, %d segments", n.NumIntersections(), n.NumSegments())
	}
	if n.Router() == nil || n.Graph() == nil {
		t.Error("accessors returned nil")
	}
}
