// Package roadnet layers road semantics on top of the directed graph: every
// edge is a road segment with a length, speed limit, lane count, width, and
// class; every node is an intersection with a geographic coordinate. It
// defines the paper's attacker objectives (edge weight types LENGTH and
// TIME) and attacker capabilities (edge removal cost types UNIFORM, LANES,
// and WIDTH), and implements the point-of-interest attachment surgery from
// §III-A: off-network POIs (hospitals) are snapped onto the nearest road by
// splitting it at an artificial node and connecting the POI with an
// artificial road segment.
package roadnet

import (
	"fmt"
	"math"
	"sync"

	"altroute/internal/geo"
	"altroute/internal/graph"
)

// AvgCarWidthM is the average width of an American car in meters (The Zebra
// 2022 study cited by the paper: about 5.8 feet). The WIDTH removal cost of
// a road is roadWidth / AvgCarWidthM — roughly how many cars must feign a
// breakdown side by side to plug the road.
const AvgCarWidthM = 1.78

// LaneWidthM is the standard US lane width used when OSM data carries a
// lane count but no explicit width.
const LaneWidthM = 3.65

// RoadClass is a coarse OSM highway classification. It drives the default
// speed limit, lane count, and width when source data omits them.
type RoadClass int

// Road classes, from fastest to slowest.
const (
	ClassMotorway RoadClass = iota + 1
	ClassTrunk
	ClassPrimary
	ClassSecondary
	ClassTertiary
	ClassResidential
	ClassService
	ClassUnclassified
)

var roadClassNames = map[RoadClass]string{
	ClassMotorway:     "motorway",
	ClassTrunk:        "trunk",
	ClassPrimary:      "primary",
	ClassSecondary:    "secondary",
	ClassTertiary:     "tertiary",
	ClassResidential:  "residential",
	ClassService:      "service",
	ClassUnclassified: "unclassified",
}

// String implements fmt.Stringer.
func (c RoadClass) String() string {
	if s, ok := roadClassNames[c]; ok {
		return s
	}
	return fmt.Sprintf("RoadClass(%d)", int(c))
}

// ParseRoadClass maps an OSM highway tag value to a RoadClass. Unknown
// values map to ClassUnclassified; link roads map to their parent class.
func ParseRoadClass(s string) RoadClass {
	switch s {
	case "motorway", "motorway_link":
		return ClassMotorway
	case "trunk", "trunk_link":
		return ClassTrunk
	case "primary", "primary_link":
		return ClassPrimary
	case "secondary", "secondary_link":
		return ClassSecondary
	case "tertiary", "tertiary_link":
		return ClassTertiary
	case "residential", "living_street":
		return ClassResidential
	case "service":
		return ClassService
	default:
		return ClassUnclassified
	}
}

// classDefault holds per-class fallback attributes.
type classDefault struct {
	speedMS float64
	lanes   int
}

// Default speeds follow common US urban limits: 65/55/40/35/30/25/15 mph.
var classDefaults = map[RoadClass]classDefault{
	ClassMotorway:     {speedMS: 29.06, lanes: 3},
	ClassTrunk:        {speedMS: 24.59, lanes: 2},
	ClassPrimary:      {speedMS: 17.88, lanes: 2},
	ClassSecondary:    {speedMS: 15.65, lanes: 2},
	ClassTertiary:     {speedMS: 13.41, lanes: 1},
	ClassResidential:  {speedMS: 11.18, lanes: 1},
	ClassService:      {speedMS: 6.71, lanes: 1},
	ClassUnclassified: {speedMS: 13.41, lanes: 1},
}

// Road is the attribute bundle of one directed road segment.
type Road struct {
	// LengthM is the segment length in meters. Must be positive after
	// normalization.
	LengthM float64
	// SpeedMS is the speed limit in meters/second.
	SpeedMS float64
	// Lanes is the lane count of this direction.
	Lanes int
	// WidthM is the physical road width in meters.
	WidthM float64
	// Class is the coarse highway classification.
	Class RoadClass
	// Name is the street name, if known.
	Name string
	// Artificial marks connector segments created by AttachPOI, matching
	// the geodataframe attribute the paper sets.
	Artificial bool
	// OSMWayID is the source OSM way, when the road came from OSM data.
	OSMWayID int64
}

// normalize fills zero-valued attributes from class defaults so every road
// has a usable speed, lane count, and width.
func (r *Road) normalize() {
	if r.Class == 0 {
		r.Class = ClassUnclassified
	}
	def := classDefaults[r.Class]
	if r.SpeedMS <= 0 {
		r.SpeedMS = def.speedMS
	}
	if r.Lanes <= 0 {
		r.Lanes = def.lanes
	}
	if r.WidthM <= 0 {
		r.WidthM = float64(r.Lanes) * LaneWidthM
	}
	if r.LengthM <= 0 {
		r.LengthM = 1
	}
}

// TravelTimeS returns the seconds needed to traverse the segment at the
// speed limit (the paper's TIME weight, eq. 1).
func (r Road) TravelTimeS() float64 { return r.LengthM / r.SpeedMS }

// RemovalWidthCost returns the paper's WIDTH removal cost (eq. 2).
func (r Road) RemovalWidthCost() float64 { return r.WidthM / AvgCarWidthM }

// POI is a point of interest (the paper uses hospitals as attack
// destinations).
type POI struct {
	// Name identifies the POI ("Brigham and Women's Hospital").
	Name string
	// Kind is a free-form category ("hospital").
	Kind string
	// Loc is the geographic location, possibly off the road network.
	Loc geo.Point
	// Node is the network node the POI was attached to, or
	// graph.InvalidNode before attachment.
	Node graph.NodeID
}

// Network is a road network: a directed graph plus road attributes,
// intersection coordinates, and attached POIs. Create one with NewNetwork.
//
// Concurrency: construction and topology mutation (AddIntersection,
// AddRoad, AttachPOI, ...) are single-threaded, like the Graph they build.
// SetRoad and Snapshot are the exception — they synchronize against each
// other (see snapMu), because the city-shard registry re-weights a served
// network while snapshot readers are active.
type Network struct {
	g      *graph.Graph
	roads  []Road
	coords []geo.Point
	pois   []POI
	name   string

	// snapMu orders SetRoad against Snapshot: a SetRoad publishes the new
	// road attributes, bumps wgen, and drops the snapshot cache in one
	// critical section, and Snapshot freezes (reading the road slice
	// through the weight closure) in another — so a Snapshot call that
	// begins after a SetRoad returns can never hand back a snapshot with
	// the old weights, and the two can never race on the roads slice.
	snapMu sync.Mutex
	// wgen counts weight mutations (SetRoad calls). Together with the
	// graph's topology generation it keys "is this frozen image current":
	// graph.Snapshot.Valid covers topology, wgen covers weights.
	wgen uint64
	// snaps caches one frozen CSR snapshot per weight type (see Snapshot).
	// Dropped on SetRoad — the one mutation that changes weights without
	// moving the graph's generation counter.
	snaps map[WeightType]*graph.Snapshot
}

// NewNetwork returns an empty road network with the given display name.
func NewNetwork(name string) *Network {
	return &Network{g: graph.New(0), name: name}
}

// Name returns the network's display name (typically the city).
func (n *Network) Name() string { return n.name }

// Graph returns the underlying directed graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// NumIntersections returns the node count.
func (n *Network) NumIntersections() int { return n.g.NumNodes() }

// NumSegments returns the directed road segment count, including disabled
// and permanently removed segments.
func (n *Network) NumSegments() int { return n.g.NumEdges() }

// AddIntersection adds a node at p.
func (n *Network) AddIntersection(p geo.Point) graph.NodeID {
	id := n.g.AddNode()
	n.coords = append(n.coords, p)
	return id
}

// Point returns the coordinate of node id.
func (n *Network) Point(id graph.NodeID) geo.Point { return n.coords[id] }

// ErrBadRoad flags road attributes that would poison shortest-path and
// cost computation: NaN or infinite values anywhere, or explicitly
// negative lengths, speeds, widths, or lane counts. Zero still means "use
// the class default". It wraps graph.ErrBadGraph so loaders and servers
// can match the whole bad-input class with one sentinel.
var ErrBadRoad = fmt.Errorf("%w: bad road attributes", graph.ErrBadGraph)

// validate rejects attribute values normalize cannot repair. NaN compares
// false against every threshold, so without these explicit checks a NaN
// length would sail through normalize's `<= 0` defaults and surface miles
// downstream as a silently wrong Dijkstra result.
func (r Road) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"length_m", r.LengthM},
		{"speed_ms", r.SpeedMS},
		{"width_m", r.WidthM},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("%w: %s is %v", ErrBadRoad, f.name, f.v)
		}
	}
	if r.Lanes < 0 {
		return fmt.Errorf("%w: lanes is %d", ErrBadRoad, r.Lanes)
	}
	return nil
}

// AddRoad adds a one-way road segment from -> to. Zero attribute fields are
// filled from class defaults; a zero LengthM is computed from the node
// coordinates. NaN, infinite, or negative attributes are rejected with
// ErrBadRoad — garbage is refused at load time, not discovered mid-attack.
func (n *Network) AddRoad(from, to graph.NodeID, r Road) (graph.EdgeID, error) {
	if err := r.validate(); err != nil {
		return graph.InvalidEdge, err
	}
	if r.LengthM <= 0 {
		if int(from) < len(n.coords) && int(to) < len(n.coords) {
			r.LengthM = geo.Haversine(n.coords[from], n.coords[to])
		}
	}
	// Degenerate coordinates (a NaN latitude from a corrupt extract) leak
	// into the computed length; catch them here where the road is named.
	if math.IsNaN(r.LengthM) || math.IsInf(r.LengthM, 0) {
		return graph.InvalidEdge, fmt.Errorf("%w: length computed from coordinates is %v", ErrBadRoad, r.LengthM)
	}
	r.normalize()
	e, err := n.g.AddEdge(from, to)
	if err != nil {
		return graph.InvalidEdge, err
	}
	n.roads = append(n.roads, r)
	return e, nil
}

// AddTwoWayRoad adds both directions of a road with identical attributes
// and returns the two edge IDs (from->to first).
func (n *Network) AddTwoWayRoad(a, b graph.NodeID, r Road) (graph.EdgeID, graph.EdgeID, error) {
	e1, err := n.AddRoad(a, b, r)
	if err != nil {
		return graph.InvalidEdge, graph.InvalidEdge, err
	}
	e2, err := n.AddRoad(b, a, r)
	if err != nil {
		return e1, graph.InvalidEdge, err
	}
	return e1, e2, nil
}

// Road returns the attributes of segment e.
func (n *Network) Road(e graph.EdgeID) Road { return n.roads[e] }

// SetRoad replaces the attributes of segment e (normalizing zero fields).
// Like AddRoad it rejects NaN/infinite/negative attributes, leaving the
// existing road untouched.
//
// SetRoad is safe against concurrent Snapshot callers: the new attributes,
// the weight-generation bump, and the snapshot-cache drop are published in
// one critical section, so once SetRoad returns no Snapshot call can hand
// out a frozen image with the old weights. It is NOT safe against
// concurrent readers of the live weight closures (Weight/Cost) — the
// registry layer serves reads exclusively from frozen snapshots for
// exactly this reason.
func (n *Network) SetRoad(e graph.EdgeID, r Road) error {
	if err := r.validate(); err != nil {
		return err
	}
	r.normalize()
	n.snapMu.Lock()
	n.roads[e] = r
	n.wgen++
	n.snaps = nil // materialized snapshot weights are now stale
	n.snapMu.Unlock()
	return nil
}

// WeightGeneration returns the weight-mutation counter: it advances on
// every SetRoad. Combined with Graph().Generation() (topology) it uniquely
// identifies the weight state a frozen snapshot or cached result was
// computed against.
func (n *Network) WeightGeneration() uint64 {
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	return n.wgen
}

// Router returns a fresh shortest-path router over the network's graph.
func (n *Network) Router() *graph.Router { return graph.NewRouter(n.g) }

// Snapshot returns a frozen CSR snapshot of the network's graph under the
// given weight type (see graph.Freeze), cached across calls: the pooled
// server networks and experiment workers reuse one snapshot for every
// attack on the same network instead of re-freezing per request. A
// snapshot invalidated by topology growth is rebuilt here; disabling and
// enabling segments (attack cuts, ResetDisabled) never invalidates it.
//
// Snapshot synchronizes with SetRoad (and other Snapshot callers): the
// freeze runs inside the same critical section that SetRoad publishes new
// attributes in, so the materialized weights are always a consistent
// post-SetRoad image, never a torn or stale one. Concurrent Snapshot with
// topology mutation remains unsupported, as on the underlying Graph.
func (n *Network) Snapshot(t WeightType) *graph.Snapshot {
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	if c, ok := n.snaps[t]; ok && c.Valid() {
		return c
	}
	if n.snaps == nil {
		n.snaps = make(map[WeightType]*graph.Snapshot)
	}
	c := graph.Freeze(n.g, n.Weight(t))
	n.snaps[t] = c
	return c
}
