package roadnet

import (
	"errors"
	"fmt"
	"math"

	"altroute/internal/geo"
	"altroute/internal/graph"
)

// ErrNoRoads is returned by snapping operations on a network with no
// enabled road segments.
var ErrNoRoads = errors.New("roadnet: network has no enabled road segments")

// BBox returns the bounding box of all intersections.
func (n *Network) BBox() geo.BBox {
	b := geo.EmptyBBox()
	for _, p := range n.coords {
		b.Add(p)
	}
	return b
}

// Projection returns an equirectangular projection centered on the network.
func (n *Network) Projection() geo.Projection {
	b := n.BBox()
	if b.Empty() {
		return geo.NewProjection(geo.Point{})
	}
	return geo.NewProjection(b.Center())
}

// EdgeSnap describes the nearest point on a road segment to a query point.
type EdgeSnap struct {
	Edge graph.EdgeID
	Proj geo.SegmentProjection
}

// NearestEdge returns the enabled, non-artificial road segment closest to p
// by straight-line distance in the network's planar projection (the paper's
// "closest point on the road by calculating the straight-line distance in
// the corresponding geographical projection").
func (n *Network) NearestEdge(p geo.Point) (EdgeSnap, error) {
	proj := n.Projection()
	q := proj.ToXY(p)
	best := EdgeSnap{Edge: graph.InvalidEdge}
	bestDist := math.Inf(1)
	for e := 0; e < n.g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if n.g.EdgeDisabled(id) || n.roads[e].Artificial {
			continue
		}
		arc := n.g.Arc(id)
		a := proj.ToXY(n.coords[arc.From])
		b := proj.ToXY(n.coords[arc.To])
		sp := geo.ProjectOntoSegment(q, a, b)
		if sp.Distance < bestDist {
			bestDist = sp.Distance
			best = EdgeSnap{Edge: id, Proj: sp}
		}
	}
	if best.Edge == graph.InvalidEdge {
		return EdgeSnap{}, ErrNoRoads
	}
	return best, nil
}

// SplitEdge splits segment e at fraction t ∈ (0, 1) of its length,
// returning the new intersection node. The original edge is permanently
// removed and replaced with two segments carrying proportional lengths and
// otherwise identical attributes. If a reverse twin (an enabled edge
// to->from with the same name and class) exists, it is split symmetrically
// so two-way roads stay two-way. t outside (0, 1) snaps to the nearer
// existing endpoint without splitting.
func (n *Network) SplitEdge(e graph.EdgeID, t float64) (graph.NodeID, error) {
	if int(e) < 0 || int(e) >= n.g.NumEdges() {
		return graph.InvalidNode, fmt.Errorf("roadnet: SplitEdge(%d): no such edge", e)
	}
	arc := n.g.Arc(e)
	const snapTol = 1e-9
	if t <= snapTol {
		return arc.From, nil
	}
	if t >= 1-snapTol {
		return arc.To, nil
	}

	proj := n.Projection()
	a := proj.ToXY(n.coords[arc.From])
	b := proj.ToXY(n.coords[arc.To])
	mid := proj.ToPoint(a.Add(b.Sub(a).Scale(t)))
	node := n.AddIntersection(mid)

	if err := n.splitOne(e, t, node); err != nil {
		return graph.InvalidNode, err
	}
	if twin := n.findTwin(e); twin != graph.InvalidEdge {
		if err := n.splitOne(twin, 1-t, node); err != nil {
			return graph.InvalidNode, err
		}
	}
	return node, nil
}

// splitOne replaces edge e with from->node and node->to at fraction t.
func (n *Network) splitOne(e graph.EdgeID, t float64, node graph.NodeID) error {
	arc := n.g.Arc(e)
	r := n.roads[e]
	first := r
	first.LengthM = r.LengthM * t
	second := r
	second.LengthM = r.LengthM * (1 - t)

	if _, err := n.AddRoad(arc.From, node, first); err != nil {
		return err
	}
	if _, err := n.AddRoad(node, arc.To, second); err != nil {
		return err
	}
	n.g.RemoveEdgePermanently(e)
	return nil
}

// findTwin returns an enabled reverse edge of e with matching name and
// class, or InvalidEdge.
func (n *Network) findTwin(e graph.EdgeID) graph.EdgeID {
	arc := n.g.Arc(e)
	r := n.roads[e]
	for _, cand := range n.g.OutEdges(arc.To) {
		if cand == e || n.g.EdgeDisabled(cand) {
			continue
		}
		if n.g.To(cand) != arc.From {
			continue
		}
		cr := n.roads[cand]
		if cr.Name == r.Name && cr.Class == r.Class {
			return cand
		}
	}
	return graph.InvalidEdge
}

// AttachPOI registers a point of interest and wires it into the road
// network exactly as the paper describes: find the closest point on the
// nearest road segment, create an artificial intersection there (splitting
// the segment), then connect the POI to it with a two-way artificial road
// segment. The attached POI (with its network node) is returned.
func (n *Network) AttachPOI(name, kind string, loc geo.Point) (POI, error) {
	snap, err := n.NearestEdge(loc)
	if err != nil {
		return POI{}, fmt.Errorf("roadnet: attach POI %q: %w", name, err)
	}
	roadNode, err := n.SplitEdge(snap.Edge, snap.Proj.T)
	if err != nil {
		return POI{}, fmt.Errorf("roadnet: attach POI %q: %w", name, err)
	}

	poiNode := n.AddIntersection(loc)
	connector := Road{
		LengthM:    math.Max(snap.Proj.Distance, 1),
		Class:      ClassService,
		Name:       name + " access",
		Artificial: true,
	}
	if _, _, err := n.AddTwoWayRoad(poiNode, roadNode, connector); err != nil {
		return POI{}, fmt.Errorf("roadnet: attach POI %q: %w", name, err)
	}

	poi := POI{Name: name, Kind: kind, Loc: loc, Node: poiNode}
	n.pois = append(n.pois, poi)
	return poi, nil
}

// POIs returns the attached points of interest.
func (n *Network) POIs() []POI {
	out := make([]POI, len(n.pois))
	copy(out, n.pois)
	return out
}

// POIsOfKind returns the attached POIs with the given kind.
func (n *Network) POIsOfKind(kind string) []POI {
	var out []POI
	for _, p := range n.pois {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}

// FindPOI returns the attached POI with the given name.
func (n *Network) FindPOI(name string) (POI, bool) {
	for _, p := range n.pois {
		if p.Name == name {
			return p, true
		}
	}
	return POI{}, false
}
