package roadnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"altroute/internal/geo"
	"altroute/internal/graph"
)

// randomCityNet builds a small random two-way grid network.
func randomCityNet(rng *rand.Rand) *Network {
	n := NewNetwork("prop")
	size := 3 + rng.Intn(4)
	ids := make([][]graph.NodeID, size)
	for r := range ids {
		ids[r] = make([]graph.NodeID, size)
		for c := range ids[r] {
			ids[r][c] = n.AddIntersection(geo.Point{
				Lat: 42 + float64(r)*0.001 + rng.Float64()*0.0003,
				Lon: -71 + float64(c)*0.001 + rng.Float64()*0.0003,
			})
		}
	}
	for r := 0; r < size; r++ {
		for c := 0; c < size; c++ {
			road := Road{Class: ClassResidential, Lanes: 1 + rng.Intn(3)}
			if c+1 < size {
				if _, _, err := n.AddTwoWayRoad(ids[r][c], ids[r][c+1], road); err != nil {
					panic(err)
				}
			}
			if r+1 < size {
				if _, _, err := n.AddTwoWayRoad(ids[r][c], ids[r+1][c], road); err != nil {
					panic(err)
				}
			}
		}
	}
	return n
}

// TestAttachPOIPreservesStrongConnectivityProperty: attaching any number of
// POIs anywhere keeps the network strongly connected and every POI
// reachable in both directions.
func TestAttachPOIPreservesStrongConnectivityProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomCityNet(rng)
		box := n.BBox()
		poiCount := 1 + rng.Intn(4)
		for i := 0; i < poiCount; i++ {
			loc := geo.Point{
				Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat)*1.2 - (box.MaxLat-box.MinLat)*0.1,
				Lon: box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon)*1.2 - (box.MaxLon-box.MinLon)*0.1,
			}
			if _, err := n.AttachPOI("poi", "hospital", loc); err != nil {
				t.Logf("seed %d: attach %d: %v", seed, i, err)
				return false
			}
		}
		if _, count := graph.StronglyConnectedComponents(n.Graph()); count != 1 {
			t.Logf("seed %d: %d SCCs after attachment", seed, count)
			return false
		}
		// Weights stay positive on all enabled edges (attack algorithms
		// rely on this).
		w := n.Weight(WeightTime)
		for e := 0; e < n.NumSegments(); e++ {
			id := graph.EdgeID(e)
			if !n.Graph().EdgeDisabled(id) && w(id) <= 0 {
				t.Logf("seed %d: non-positive weight on edge %d", seed, e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestSubnetworkPreservesAttributesProperty: the induced subnetwork keeps
// the road attributes and geometry of every surviving edge.
func TestSubnetworkPreservesAttributesProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomCityNet(rng)
		// Disable a few random edges; keep a random node subset.
		for i := 0; i < 3; i++ {
			n.Graph().DisableEdge(graph.EdgeID(rng.Intn(n.NumSegments())))
		}
		var keep []graph.NodeID
		for id := 0; id < n.NumIntersections(); id++ {
			if rng.Float64() < 0.7 {
				keep = append(keep, graph.NodeID(id))
			}
		}
		if len(keep) == 0 {
			return true
		}
		sub, remap := n.Subnetwork(keep)
		// Every kept node's coordinate survives.
		for old, nw := range remap {
			if n.Point(old) != sub.Point(nw) {
				t.Logf("seed %d: node %d moved", seed, old)
				return false
			}
		}
		// Every sub edge maps to an enabled original edge with the same
		// attributes between remapped endpoints.
		back := make(map[graph.NodeID]graph.NodeID, len(remap))
		for old, nw := range remap {
			back[nw] = old
		}
		for e := 0; e < sub.NumSegments(); e++ {
			id := graph.EdgeID(e)
			arc := sub.Graph().Arc(id)
			of, okF := back[arc.From]
			ot, okT := back[arc.To]
			if !okF || !okT {
				t.Logf("seed %d: sub edge touches unmapped node", seed)
				return false
			}
			orig := n.Graph().FindEdge(of, ot)
			if orig == graph.InvalidEdge {
				t.Logf("seed %d: sub edge %d has no original", seed, e)
				return false
			}
			if n.Road(orig).Lanes != sub.Road(id).Lanes {
				t.Logf("seed %d: lanes changed", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
