package roadnet

import (
	"altroute/internal/geo"
	"altroute/internal/graph"
)

// LengthHeuristic returns an admissible A* heuristic for the LENGTH
// weight: the straight-line distance to the target never exceeds any road
// path's length.
func (n *Network) LengthHeuristic(target graph.NodeID) graph.Heuristic {
	proj := n.Projection()
	t := proj.ToXY(n.Point(target))
	return func(id graph.NodeID) float64 {
		return geo.Dist(proj.ToXY(n.Point(id)), t)
	}
}

// TimeHeuristic returns an admissible A* heuristic for the TIME weight:
// straight-line distance divided by the fastest speed limit present in the
// network (no path can be quicker than flying straight at top speed).
func (n *Network) TimeHeuristic(target graph.NodeID) graph.Heuristic {
	maxSpeed := 0.0
	for e := 0; e < n.NumSegments(); e++ {
		if s := n.roads[e].SpeedMS; s > maxSpeed {
			maxSpeed = s
		}
	}
	if maxSpeed <= 0 {
		return func(graph.NodeID) float64 { return 0 }
	}
	dist := n.LengthHeuristic(target)
	return func(id graph.NodeID) float64 {
		return dist(id) / maxSpeed
	}
}
