package roadnet

import (
	"fmt"
	"strings"

	"altroute/internal/graph"
)

// WeightType selects the attacker's path metric (paper §II-B).
type WeightType int

const (
	// WeightLength weighs a segment by its length in meters — the paper's
	// LENGTH baseline, readily available from OpenStreetMap.
	WeightLength WeightType = iota + 1
	// WeightTime weighs a segment by its speed-limit travel time in
	// seconds — the paper's TIME objective (eq. 1), the realistic metric.
	WeightTime
)

// String implements fmt.Stringer using the paper's names.
func (t WeightType) String() string {
	switch t {
	case WeightLength:
		return "LENGTH"
	case WeightTime:
		return "TIME"
	default:
		return fmt.Sprintf("WeightType(%d)", int(t))
	}
}

// ParseWeightType parses a case-insensitive weight type name.
func ParseWeightType(s string) (WeightType, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "LENGTH":
		return WeightLength, nil
	case "TIME":
		return WeightTime, nil
	default:
		return 0, fmt.Errorf("roadnet: unknown weight type %q (want LENGTH or TIME)", s)
	}
}

// WeightTypes lists all weight types in paper order.
func WeightTypes() []WeightType { return []WeightType{WeightLength, WeightTime} }

// CostType selects the attacker's edge-removal cost model (paper §II-B).
type CostType int

const (
	// CostUniform charges 1 per removed segment: an attacker whose single
	// disruption shuts a road regardless of its size.
	CostUniform CostType = iota + 1
	// CostLanes charges the lane count: one small interruption (e.g. a
	// feigned breakdown) per lane.
	CostLanes
	// CostWidth charges roadWidth / AvgCarWidthM (eq. 2): one car-width of
	// blockage per unit.
	CostWidth
)

// String implements fmt.Stringer using the paper's names.
func (t CostType) String() string {
	switch t {
	case CostUniform:
		return "UNIFORM"
	case CostLanes:
		return "LANES"
	case CostWidth:
		return "WIDTH"
	default:
		return fmt.Sprintf("CostType(%d)", int(t))
	}
}

// ParseCostType parses a case-insensitive cost type name.
func ParseCostType(s string) (CostType, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "UNIFORM":
		return CostUniform, nil
	case "LANES":
		return CostLanes, nil
	case "WIDTH":
		return CostWidth, nil
	default:
		return 0, fmt.Errorf("roadnet: unknown cost type %q (want UNIFORM, LANES, or WIDTH)", s)
	}
}

// CostTypes lists all cost types in paper order.
func CostTypes() []CostType { return []CostType{CostUniform, CostLanes, CostWidth} }

// Weight returns the edge weight function for t.
func (n *Network) Weight(t WeightType) graph.WeightFunc {
	switch t {
	case WeightTime:
		return func(e graph.EdgeID) float64 { return n.roads[e].TravelTimeS() }
	default:
		return func(e graph.EdgeID) float64 { return n.roads[e].LengthM }
	}
}

// Cost returns the edge removal cost function for t.
func (n *Network) Cost(t CostType) graph.WeightFunc {
	switch t {
	case CostLanes:
		return func(e graph.EdgeID) float64 { return float64(n.roads[e].Lanes) }
	case CostWidth:
		return func(e graph.EdgeID) float64 { return n.roads[e].RemovalWidthCost() }
	default:
		return func(e graph.EdgeID) float64 { return 1 }
	}
}
