package roadnet

import (
	"math/rand"
	"testing"

	"altroute/internal/geo"
	"altroute/internal/graph"
)

// TestHeuristicsAdmissibleAndOptimal verifies that A* with the network
// heuristics returns the same lengths as Dijkstra on random city grids.
func TestHeuristicsAdmissibleAndOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := randomCityNet(rng)
	r := n.Router()
	nNodes := n.NumIntersections()

	for trial := 0; trial < 30; trial++ {
		s := graph.NodeID(rng.Intn(nNodes))
		d := graph.NodeID(rng.Intn(nNodes))

		for _, tc := range []struct {
			name string
			w    graph.WeightFunc
			h    graph.Heuristic
		}{
			{"LENGTH", n.Weight(WeightLength), n.LengthHeuristic(d)},
			{"TIME", n.Weight(WeightTime), n.TimeHeuristic(d)},
		} {
			dij, okD := r.ShortestPath(s, d, tc.w)
			ast, okA := r.ShortestPathAStar(s, d, tc.w, tc.h)
			if okD != okA {
				t.Fatalf("%s: reachability differs for %d->%d", tc.name, s, d)
			}
			if okD && absF(dij.Length-ast.Length) > 1e-6*dij.Length+1e-9 {
				t.Fatalf("%s: A* %v vs Dijkstra %v for %d->%d", tc.name, ast.Length, dij.Length, s, d)
			}
		}
	}
}

func TestTimeHeuristicEmptyNetwork(t *testing.T) {
	n := NewNetwork("e")
	id := n.AddIntersection(pointZero())
	h := n.TimeHeuristic(id)
	if h(id) != 0 {
		t.Error("empty network heuristic non-zero")
	}
}

func pointZero() geo.Point { return geo.Point{} }

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
