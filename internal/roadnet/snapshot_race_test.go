package roadnet

import (
	"sync"
	"sync/atomic"
	"testing"

	"altroute/internal/geo"
	"altroute/internal/graph"
)

// raceNet builds a small two-node network with one road to mutate.
func raceNet(t *testing.T) (*Network, graph.EdgeID) {
	t.Helper()
	net := NewNetwork("race")
	a := net.AddIntersection(geo.Point{Lat: 42, Lon: -71})
	b := net.AddIntersection(geo.Point{Lat: 42, Lon: -70.999})
	e, err := net.AddRoad(a, b, Road{LengthM: 100, SpeedMS: 10, Lanes: 1, WidthM: 4, Class: ClassResidential})
	if err != nil {
		t.Fatalf("AddRoad: %v", err)
	}
	return net, e
}

// TestSnapshotSetRoadNoStale drives concurrent SetRoad and Snapshot
// callers and checks the ordering contract: once a SetRoad that installed
// length L has returned, every later Snapshot must materialize a weight of
// at least L. The writer publishes the installed length via an atomic
// AFTER SetRoad returns; a reader that loads the atomic BEFORE calling
// Snapshot therefore has a proof the corresponding SetRoad completed, and
// the snapshot it receives must not be older. Run with -race this also
// covers the data-race half of the satellite (the roads slice and the
// snapshot cache are touched from both sides).
func TestSnapshotSetRoadNoStale(t *testing.T) {
	net, e := raceNet(t)

	const writes = 400
	var published atomic.Int64 // meters, monotonically increasing
	published.Store(100)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := published.Load()
				snap := net.Snapshot(WeightLength)
				if got := snap.Weight(e); got < float64(floor) {
					t.Errorf("stale snapshot: weight %v, but SetRoad(%d) had completed", got, floor)
					return
				}
			}
		}()
	}

	road := net.Road(e)
	for i := 1; i <= writes; i++ {
		road.LengthM = float64(100 + i)
		if err := net.SetRoad(e, road); err != nil {
			t.Fatalf("SetRoad: %v", err)
		}
		published.Store(int64(100 + i))
	}
	close(stop)
	wg.Wait()

	// After the last write, the next snapshot must carry the final weight.
	if got := net.Snapshot(WeightLength).Weight(e); got != float64(100+writes) {
		t.Fatalf("final snapshot weight = %v, want %d", got, 100+writes)
	}
	if net.WeightGeneration() != writes {
		t.Fatalf("WeightGeneration = %d, want %d", net.WeightGeneration(), writes)
	}
}

// TestCloneDuringSetRoad races Clone against SetRoad: clones must observe
// a consistent (untorn) road record and carry the matching generation.
func TestCloneDuringSetRoad(t *testing.T) {
	net, e := raceNet(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := net.Clone()
				rd := c.Road(e)
				// SetRoad below always keeps LengthM == 10*WidthM; a torn
				// read would break the invariant.
				if rd.LengthM != 10*rd.WidthM {
					t.Errorf("torn clone: length %v width %v", rd.LengthM, rd.WidthM)
					return
				}
			}
		}()
	}
	road := net.Road(e)
	for i := 1; i <= 200; i++ {
		road.WidthM = float64(3 + i)
		road.LengthM = 10 * road.WidthM
		if err := net.SetRoad(e, road); err != nil {
			t.Fatalf("SetRoad: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
