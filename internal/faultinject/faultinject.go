// Package faultinject provides deterministic, seed-driven fault injection
// for chaos-testing the attack pipeline. Production code probes named fault
// points through a context.Context; an Injector armed by a test decides,
// purely from its seed and per-point hit counters, which probes fire. A
// context without an injector short-circuits on the Value miss, so the
// probes are near-zero-cost when injection is disabled — they are placed at
// round granularity (attack rounds, LP solves, table units), never inside
// per-edge inner loops.
//
// Determinism: counters are incremented under a lock and probabilistic
// rules hash (seed, point, hit index), so for a fixed seed and a fixed
// per-point hit order the same hits fire — regardless of how goroutines
// interleave hits on *different* points.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
)

// Point names one location in the pipeline where a fault can be injected.
type Point string

// The fault points wired into the pipeline.
const (
	// PointLPSolve fails lp.SolveCtx with ErrInjected before any pivoting,
	// exercising the LP→greedy degradation path in core's lpCover.
	PointLPSolve Point = "lp/solve"
	// PointAttackStall blocks an attack round until the attack's context is
	// done, simulating a hung solve. Arm it only together with a deadline:
	// without one the round blocks forever, exactly like the real hang it
	// models.
	PointAttackStall Point = "core/attack-stall"
	// PointAttackPanic panics at the top of an attack round, exercising
	// core.RunCtx's panic recovery.
	PointAttackPanic Point = "core/attack-panic"
	// PointWorkerPanic panics inside a table-runner worker before the
	// unit's attack starts, exercising the per-unit recovery in
	// internal/experiment (outside core.RunCtx's own recover).
	PointWorkerPanic Point = "experiment/worker-panic"
	// PointServerPanic panics inside an HTTP handler after admission,
	// exercising the server's request-level panic isolation (the recover
	// in Server.ServeHTTP, outside core.RunCtx's own recover).
	PointServerPanic Point = "server/handler-panic"
	// PointAuditWrite fails an audit-ledger line write after emitting only
	// a prefix of its bytes — the torn-write shape a mid-write kill or a
	// full disk leaves on a JSONL file.
	PointAuditWrite Point = "audit/write"
	// PointAuditFsync fails the audit ledger's group-commit fsync after
	// the batch's seal line reached the OS, so the batch's durability (not
	// its integrity) is in doubt on the next open. The ledger retries
	// transient fsync faults with backoff before the failure goes sticky.
	PointAuditFsync Point = "audit/fsync"
	// PointAuditFull fails an audit-ledger line write the way a full disk
	// does: a prefix of the line lands, the rest returns ENOSPC. Exercises
	// the DiskFullFailClosed vs DiskFullShed policy split.
	PointAuditFull Point = "audit/disk-full"
	// PointAuditRotate refuses the segment-rotation rename, leaving the
	// oversized file active; rotation must retry at the next seal.
	PointAuditRotate Point = "audit/rotate"
	// PointAuditCompact fails a compaction pass before any IO; compaction
	// must defer (data intact, disk not reclaimed) and retry later.
	PointAuditCompact Point = "audit/compact"
)

// ErrInjected marks a failure manufactured by an Injector.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule decides which hits of a point fire. Criteria are OR-ed; the zero
// Rule never fires.
type Rule struct {
	// OnHit fires on exactly the n-th hit (1-based) when > 0.
	OnHit int
	// Every fires on every n-th hit when > 0 (1 = every hit).
	Every int
	// Prob fires each hit with this probability, derived deterministically
	// from (seed, point, hit index).
	Prob float64
}

// Injector is a set of armed fault points. The zero of *Injector (nil) is
// valid and never fires, so probes need no nil guards. Safe for concurrent
// use.
type Injector struct {
	seed  int64
	mu    sync.Mutex
	rules map[Point]Rule
	hits  map[Point]int
}

// New returns an empty injector whose probabilistic rules draw from seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rules: map[Point]Rule{}, hits: map[Point]int{}}
}

// Arm installs (or replaces) the rule for a point and returns the injector
// for chaining.
func (in *Injector) Arm(p Point, r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[p] = r
	return in
}

// Hits returns how many times point p has been probed so far.
func (in *Injector) Hits(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}

// fires counts one hit on p and reports whether the armed rule fires on it.
func (in *Injector) fires(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	rule, armed := in.rules[p]
	in.hits[p]++
	hit := in.hits[p]
	in.mu.Unlock()
	if !armed {
		return false
	}
	if rule.OnHit > 0 && hit == rule.OnHit {
		return true
	}
	if rule.Every > 0 && hit%rule.Every == 0 {
		return true
	}
	if rule.Prob > 0 && in.roll(p, hit) < rule.Prob {
		return true
	}
	return false
}

// roll maps (seed, point, hit) to a uniform [0, 1) value, independent of
// goroutine interleaving.
func (in *Injector) roll(p Point, hit int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", in.seed, p, hit)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

type ctxKey struct{}

// With returns a context carrying the injector. Passing nil returns ctx
// unchanged.
func With(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in)
}

// From extracts the injector carried by ctx, or nil.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// Fires probes point p on the context's injector (if any) and reports
// whether an injected fault should occur here.
func Fires(ctx context.Context, p Point) bool {
	return From(ctx).fires(p)
}

// Fire probes point p and returns an ErrInjected-wrapped error when it
// fires, nil otherwise.
func Fire(ctx context.Context, p Point) error {
	if Fires(ctx, p) {
		return fmt.Errorf("%w at %s", ErrInjected, p)
	}
	return nil
}

// Probe counts one hit on p directly against the injector — for
// components (like the audit ledger) that hold an injector for their
// lifetime rather than receive one per call through a context — and
// returns an ErrInjected-wrapped error when the armed rule fires. Safe on
// a nil injector (never fires).
func (in *Injector) Probe(p Point) error {
	if in.fires(p) {
		return fmt.Errorf("%w at %s", ErrInjected, p)
	}
	return nil
}
