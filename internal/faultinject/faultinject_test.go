package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.fires(PointLPSolve) {
		t.Error("nil injector fired")
	}
	if in.Hits(PointLPSolve) != 0 {
		t.Error("nil injector counted hits")
	}
	ctx := context.Background()
	if Fires(ctx, PointLPSolve) {
		t.Error("bare context fired")
	}
	if err := Fire(ctx, PointLPSolve); err != nil {
		t.Errorf("bare context Fire = %v", err)
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if in.fires(PointLPSolve) {
			t.Fatal("unarmed point fired")
		}
	}
	if got := in.Hits(PointLPSolve); got != 100 {
		t.Errorf("hits = %d, want 100 (unarmed probes still count)", got)
	}
}

func TestOnHitFiresExactlyOnce(t *testing.T) {
	in := New(1).Arm(PointWorkerPanic, Rule{OnHit: 3})
	var fired []int
	for i := 1; i <= 10; i++ {
		if in.fires(PointWorkerPanic) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Errorf("fired on hits %v, want [3]", fired)
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	in := New(1).Arm(PointLPSolve, Rule{Every: 4})
	count := 0
	for i := 0; i < 20; i++ {
		if in.fires(PointLPSolve) {
			count++
		}
	}
	if count != 5 {
		t.Errorf("fired %d times over 20 hits with Every=4, want 5", count)
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed).Arm(PointAttackStall, Rule{Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.fires(PointAttackStall)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fire patterns")
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("Prob 0.5 fired %d/%d hits; want a mix", fires, len(a))
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-hit patterns")
	}
}

func TestContextRoundTripAndFire(t *testing.T) {
	in := New(1).Arm(PointLPSolve, Rule{Every: 1})
	ctx := With(context.Background(), in)
	if From(ctx) != in {
		t.Fatal("From(With(ctx, in)) != in")
	}
	err := Fire(ctx, PointLPSolve)
	if !errors.Is(err, ErrInjected) {
		t.Errorf("Fire = %v, want ErrInjected", err)
	}
	if With(ctx, nil) != ctx {
		t.Error("With(ctx, nil) should return ctx unchanged")
	}
}

func TestConcurrentProbesCountEveryHit(t *testing.T) {
	in := New(1).Arm(PointWorkerPanic, Rule{Every: 2})
	var wg sync.WaitGroup
	const goroutines, probes = 8, 100
	fired := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < probes; i++ {
				if in.fires(PointWorkerPanic) {
					fired[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	if got := in.Hits(PointWorkerPanic); got != goroutines*probes {
		t.Errorf("hits = %d, want %d", got, goroutines*probes)
	}
	total := 0
	for _, f := range fired {
		total += f
	}
	if total != goroutines*probes/2 {
		t.Errorf("Every=2 fired %d/%d hits, want exactly half", total, goroutines*probes)
	}
}
