package lp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSolveSimpleGE(t *testing.T) {
	// min x1 + 2 x2 s.t. x1 + x2 >= 1 -> x = (1, 0), obj 1.
	s := solveOK(t, Problem{
		Objective: []float64{1, 2},
		Rows:      []Constraint{{Coeffs: []float64{1, 1}, Sense: GE, RHS: 1}},
	})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-1) > 1e-9 || math.Abs(s.X[0]-1) > 1e-9 || math.Abs(s.X[1]) > 1e-9 {
		t.Errorf("solution = %+v, want x=(1,0) obj=1", s)
	}
}

func TestSolveSetCoverRelaxation(t *testing.T) {
	// Two covering constraints sharing variable 2, which is cheap enough
	// to cover both: min 3x0 + 3x1 + 2x2
	//   x0 + x2 >= 1
	//   x1 + x2 >= 1
	// Optimum: x2 = 1, obj 2.
	s := solveOK(t, Problem{
		Objective: []float64{3, 3, 2},
		Rows: []Constraint{
			{Coeffs: []float64{1, 0, 1}, Sense: GE, RHS: 1},
			{Coeffs: []float64{0, 1, 1}, Sense: GE, RHS: 1},
		},
	})
	if s.Status != Optimal || math.Abs(s.Objective-2) > 1e-9 {
		t.Fatalf("solution = %+v, want obj 2", s)
	}
	if math.Abs(s.X[2]-1) > 1e-9 {
		t.Errorf("x2 = %v, want 1", s.X[2])
	}
}

func TestSolveFractionalOptimum(t *testing.T) {
	// Classic LP-relaxation-of-vertex-cover triangle: min x0+x1+x2 with
	// pairwise sums >= 1 has fractional optimum (1/2, 1/2, 1/2), obj 1.5.
	s := solveOK(t, Problem{
		Objective: []float64{1, 1, 1},
		Rows: []Constraint{
			{Coeffs: []float64{1, 1, 0}, Sense: GE, RHS: 1},
			{Coeffs: []float64{0, 1, 1}, Sense: GE, RHS: 1},
			{Coeffs: []float64{1, 0, 1}, Sense: GE, RHS: 1},
		},
	})
	if s.Status != Optimal || math.Abs(s.Objective-1.5) > 1e-9 {
		t.Fatalf("solution = %+v, want obj 1.5", s)
	}
}

func TestSolveLEAndEQ(t *testing.T) {
	// min -x0 - x1 s.t. x0 + x1 <= 4, x0 = 1 -> x = (1, 3), obj -4.
	s := solveOK(t, Problem{
		Objective: []float64{-1, -1},
		Rows: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coeffs: []float64{1, 0}, Sense: EQ, RHS: 1},
		},
	})
	if s.Status != Optimal || math.Abs(s.Objective+4) > 1e-9 {
		t.Fatalf("solution = %+v, want obj -4", s)
	}
	if math.Abs(s.X[0]-1) > 1e-9 || math.Abs(s.X[1]-3) > 1e-9 {
		t.Errorf("x = %v, want (1, 3)", s.X)
	}
}

func TestSolveNegativeRHSNormalization(t *testing.T) {
	// -x0 <= -2 is x0 >= 2.
	s := solveOK(t, Problem{
		Objective: []float64{1},
		Rows:      []Constraint{{Coeffs: []float64{-1}, Sense: LE, RHS: -2}},
	})
	if s.Status != Optimal || math.Abs(s.X[0]-2) > 1e-9 {
		t.Fatalf("solution = %+v, want x0=2", s)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x0 >= 2 and x0 <= 1.
	s := solveOK(t, Problem{
		Objective: []float64{1},
		Rows: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
		},
	})
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x0, x0 >= 0 unconstrained above.
	s := solveOK(t, Problem{
		Objective: []float64{-1},
		Rows:      []Constraint{{Coeffs: []float64{1}, Sense: GE, RHS: 0}},
	})
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Redundant constraints that force degenerate pivots.
	s := solveOK(t, Problem{
		Objective: []float64{1, 1},
		Rows: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 1},
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 1},
			{Coeffs: []float64{2, 2}, Sense: GE, RHS: 2},
		},
	})
	if s.Status != Optimal || math.Abs(s.Objective-1) > 1e-9 {
		t.Fatalf("solution = %+v, want obj 1", s)
	}
}

func TestSolveValidation(t *testing.T) {
	tests := []struct {
		name string
		p    Problem
	}{
		{"no variables", Problem{}},
		{"too many coefficients", Problem{
			Objective: []float64{1},
			Rows:      []Constraint{{Coeffs: []float64{1, 2}, Sense: GE, RHS: 1}},
		}},
		{"bad sense", Problem{
			Objective: []float64{1},
			Rows:      []Constraint{{Coeffs: []float64{1}, RHS: 1}},
		}},
		{"NaN coefficient", Problem{
			Objective: []float64{1},
			Rows:      []Constraint{{Coeffs: []float64{math.NaN()}, Sense: GE, RHS: 1}},
		}},
		{"Inf RHS", Problem{
			Objective: []float64{1},
			Rows:      []Constraint{{Coeffs: []float64{1}, Sense: GE, RHS: math.Inf(1)}},
		}},
		{"NaN objective", Problem{
			Objective: []float64{math.NaN()},
			Rows:      []Constraint{{Coeffs: []float64{1}, Sense: GE, RHS: 1}},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Solve(tt.p); err == nil {
				t.Error("Solve succeeded, want error")
			}
		})
	}
}

func TestSolveShortCoefficientRows(t *testing.T) {
	// Trailing zero coefficients may be omitted.
	s := solveOK(t, Problem{
		Objective: []float64{1, 5},
		Rows:      []Constraint{{Coeffs: []float64{1}, Sense: GE, RHS: 3}},
	})
	if s.Status != Optimal || math.Abs(s.X[0]-3) > 1e-9 || s.X[1] != 0 {
		t.Fatalf("solution = %+v", s)
	}
}

func TestStatusAndSenseStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if !strings.Contains(Status(9).String(), "9") {
		t.Error("unknown status string wrong")
	}
	if GE.String() != ">=" || LE.String() != "<=" || EQ.String() != "==" {
		t.Error("sense strings wrong")
	}
	if !strings.Contains(Sense(9).String(), "9") {
		t.Error("unknown sense string wrong")
	}
}

// bruteForceCover solves a 0/1 covering problem min c·x, Ax >= 1 exactly by
// enumeration. For covering LPs with 0/1 matrices the integer optimum upper
// bounds the LP optimum, and the LP optimum is >= max over rows of
// min_{j in row} c_j; we use both as sandwich bounds in the property test.
func bruteForceCover(c []float64, rows [][]int) float64 {
	n := len(c)
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, row := range rows {
			covered := false
			for _, j := range row {
				if mask&(1<<j) != 0 {
					covered = true
					break
				}
			}
			if !covered {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		cost := 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				cost += c[j]
			}
		}
		if cost < best {
			best = cost
		}
	}
	return best
}

func TestSolveCoverBoundsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		c := make([]float64, n)
		for j := range c {
			c[j] = float64(1 + rng.Intn(9))
		}
		rows := make([][]int, m)
		cons := make([]Constraint, m)
		for i := range rows {
			size := 1 + rng.Intn(n)
			perm := rng.Perm(n)[:size]
			rows[i] = perm
			coeffs := make([]float64, n)
			for _, j := range perm {
				coeffs[j] = 1
			}
			cons[i] = Constraint{Coeffs: coeffs, Sense: GE, RHS: 1}
		}

		s, err := Solve(Problem{Objective: c, Rows: cons})
		if err != nil || s.Status != Optimal {
			t.Logf("seed %d: status %v err %v", seed, s.Status, err)
			return false
		}
		intOpt := bruteForceCover(c, rows)
		if s.Objective > intOpt+1e-6 {
			t.Logf("seed %d: LP obj %v exceeds integer optimum %v", seed, s.Objective, intOpt)
			return false
		}
		// LP optimum must cover each row: check feasibility of X.
		for i, row := range rows {
			sum := 0.0
			for _, j := range row {
				sum += s.X[j]
			}
			if sum < 1-1e-6 {
				t.Logf("seed %d: row %d violated (%v)", seed, i, sum)
				return false
			}
		}
		for j, v := range s.X {
			if v < -1e-9 {
				t.Logf("seed %d: x[%d] = %v negative", seed, j, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestSolveRandomLEProgramsMatchVertexEnumeration(t *testing.T) {
	// For min cᵀx, Ax <= b (A, b >= 0), x >= 0, the optimum is x = 0 when
	// c >= 0; with mixed-sign c the optimum lies at a vertex. We verify
	// against a coarse grid search lower bound on small instances.
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := []float64{float64(rng.Intn(7) - 3), float64(rng.Intn(7) - 3)}
		rowsCnt := 1 + rng.Intn(3)
		cons := make([]Constraint, rowsCnt)
		type rowT struct {
			a [2]float64
			b float64
		}
		raw := make([]rowT, rowsCnt)
		for i := range cons {
			a0 := float64(1 + rng.Intn(4))
			a1 := float64(1 + rng.Intn(4))
			bb := float64(1 + rng.Intn(10))
			cons[i] = Constraint{Coeffs: []float64{a0, a1}, Sense: LE, RHS: bb}
			raw[i] = rowT{a: [2]float64{a0, a1}, b: bb}
		}
		s, err := Solve(Problem{Objective: c, Rows: cons})
		if err != nil {
			return false
		}
		if s.Status == Unbounded {
			// With all-positive constraint coefficients the feasible set is
			// bounded, so this must not happen.
			t.Logf("seed %d: unbounded on bounded polytope", seed)
			return false
		}
		if s.Status != Optimal {
			return false
		}
		// Grid search over the polytope.
		best := math.Inf(1)
		const steps = 60
		maxCoord := 12.0
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x0 := maxCoord * float64(i) / steps
				x1 := maxCoord * float64(j) / steps
				ok := true
				for _, r := range raw {
					if r.a[0]*x0+r.a[1]*x1 > r.b+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if v := c[0]*x0 + c[1]*x1; v < best {
						best = v
					}
				}
			}
		}
		// Simplex must be at least as good as the grid (within grid error).
		if s.Objective > best+0.5 {
			t.Logf("seed %d: simplex %v worse than grid %v", seed, s.Objective, best)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
