// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  Aᵢ·x {≥,≤,=} bᵢ   for every row i
//	            x ≥ 0
//
// It exists to support the LP-PathCover attack algorithm, whose relaxed
// weighted Set Cover instances are small (one variable per candidate edge,
// one covering row per generated constraint path), so a dense tableau with
// Bland's anti-cycling rule is simple, exact enough, and fast enough.
// The solver is standalone and fully tested against brute-force oracles.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"altroute/internal/faultinject"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	GE Sense = iota + 1 // Aᵢ·x ≥ bᵢ
	LE                  // Aᵢ·x ≤ bᵢ
	EQ                  // Aᵢ·x = bᵢ
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case GE:
		return ">="
	case LE:
		return "<="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Constraint is one row of the program.
type Constraint struct {
	// Coeffs has one entry per variable. Missing trailing entries are
	// treated as zero.
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	// Objective holds the minimization coefficients, one per variable.
	Objective []float64
	// Rows are the constraints.
	Rows []Constraint
	// MaxPivots bounds the simplex pivots per phase; a solve that exhausts
	// the budget reports Infeasible (numerically stuck) rather than looping.
	// 0 uses the package default (200000).
	MaxPivots int
}

// Status reports how solving ended.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the solver output. X and Objective are meaningful only when
// Status == Optimal.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

// ErrBadProblem is returned for structurally invalid programs.
var ErrBadProblem = errors.New("lp: invalid problem")

// ErrInterrupted is returned by SolveCtx when the context is done before
// the solve completes; the context's cause is wrapped alongside it.
var ErrInterrupted = errors.New("lp: solve interrupted")

const (
	eps           = 1e-9
	maxPivots     = 200000
	phase1FeasEps = 1e-7
)

// Solve runs two-phase simplex on p.
func Solve(p Problem) (Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx runs two-phase simplex on p with cooperative cancellation: the
// pivot loop polls ctx every few dozen pivots and aborts with an
// ErrInterrupted-wrapped error (carrying context.Cause) when it is done.
// Long-running solves are thereby bounded both by the caller's deadline and
// by the hard MaxPivots guard.
func SolveCtx(ctx context.Context, p Problem) (Solution, error) {
	if err := faultinject.Fire(ctx, faultinject.PointLPSolve); err != nil {
		return Solution{}, err
	}
	n := len(p.Objective)
	if n == 0 {
		return Solution{}, fmt.Errorf("%w: no variables", ErrBadProblem)
	}
	for i, row := range p.Rows {
		if len(row.Coeffs) > n {
			return Solution{}, fmt.Errorf("%w: row %d has %d coefficients for %d variables", ErrBadProblem, i, len(row.Coeffs), n)
		}
		switch row.Sense {
		case GE, LE, EQ:
		default:
			return Solution{}, fmt.Errorf("%w: row %d has invalid sense", ErrBadProblem, i)
		}
		for _, c := range row.Coeffs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return Solution{}, fmt.Errorf("%w: row %d has non-finite coefficient", ErrBadProblem, i)
			}
		}
		if math.IsNaN(row.RHS) || math.IsInf(row.RHS, 0) {
			return Solution{}, fmt.Errorf("%w: row %d has non-finite RHS", ErrBadProblem, i)
		}
	}
	for j, c := range p.Objective {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return Solution{}, fmt.Errorf("%w: objective coefficient %d non-finite", ErrBadProblem, j)
		}
	}

	t := newTableau(p)
	pivotBudget := p.MaxPivots
	if pivotBudget <= 0 {
		pivotBudget = maxPivots
	}
	if t.numArtificial > 0 {
		status, err := t.runPhase1(ctx, pivotBudget)
		if err != nil {
			return Solution{}, err
		}
		if status != Optimal {
			return Solution{Status: status}, nil
		}
		if t.phase1Objective() > phase1FeasEps {
			return Solution{Status: Infeasible}, nil
		}
		t.dropArtificials()
	}
	status, err := t.runPhase2(ctx, pivotBudget)
	if err != nil {
		return Solution{}, err
	}
	if status != Optimal {
		return Solution{Status: status}, nil
	}
	x := t.extract(n)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Objective[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is the dense simplex tableau. Columns are ordered: the n original
// variables, then one slack/surplus per row, then artificials. Row i of a
// holds the constraint coefficients; b holds the (non-negative) RHS.
type tableau struct {
	m, n          int // rows, original variables
	numSlack      int
	numArtificial int
	cols          int

	a     [][]float64
	b     []float64
	basis []int // basis[i] = column basic in row i

	cost  []float64 // phase-2 objective per column
	art   []bool    // column is artificial
	alive []bool    // column still eligible (artificials are retired)
}

func newTableau(p Problem) *tableau {
	m := len(p.Rows)
	n := len(p.Objective)
	t := &tableau{m: m, n: n}

	// Normalize rows to RHS ≥ 0 (negating flips the sense).
	type normRow struct {
		coeffs []float64
		sense  Sense
		rhs    float64
	}
	rows := make([]normRow, m)
	for i, r := range p.Rows {
		coeffs := make([]float64, n)
		copy(coeffs, r.Coeffs)
		sense := r.Sense
		rhs := r.RHS
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch sense {
			case GE:
				sense = LE
			case LE:
				sense = GE
			}
		}
		rows[i] = normRow{coeffs: coeffs, sense: sense, rhs: rhs}
	}

	// Count auxiliary columns. LE rows get a slack that can start basic;
	// GE rows get a surplus plus an artificial; EQ rows get an artificial.
	for _, r := range rows {
		switch r.sense {
		case LE, GE:
			t.numSlack++
		}
		if r.sense != LE {
			t.numArtificial++
		}
	}
	t.cols = n + t.numSlack + t.numArtificial

	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	t.cost = make([]float64, t.cols)
	t.art = make([]bool, t.cols)
	t.alive = make([]bool, t.cols)
	for j := range t.alive {
		t.alive[j] = true
	}
	copy(t.cost, p.Objective)

	slackCol := n
	artCol := n + t.numSlack
	for i, r := range rows {
		row := make([]float64, t.cols)
		copy(row, r.coeffs)
		t.b[i] = r.rhs
		switch r.sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.art[artCol] = true
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.art[artCol] = true
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
	}
	return t
}

// reducedCosts computes the reduced cost vector for the given per-column
// objective under the current basis.
func (t *tableau) reducedCosts(obj []float64) []float64 {
	// y = c_B · B⁻¹ is implicit in the tableau: since the tableau is kept
	// in canonical form (basis columns are unit vectors), reduced cost of
	// column j is obj[j] - Σ_i obj[basis[i]] * a[i][j].
	rc := make([]float64, t.cols)
	for j := 0; j < t.cols; j++ {
		if !t.alive[j] {
			rc[j] = math.Inf(1) // never entering
			continue
		}
		v := obj[j]
		for i := 0; i < t.m; i++ {
			cb := obj[t.basis[i]]
			if cb != 0 {
				v -= cb * t.a[i][j]
			}
		}
		rc[j] = v
	}
	return rc
}

// pivot performs a standard pivot bringing column `enter` into the basis at
// row `leave`.
func (t *tableau) pivot(leave, enter int) {
	pr := t.a[leave]
	pv := pr[enter]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.b[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		t.b[i] -= f * t.b[leave]
	}
	t.basis[leave] = enter
}

// iterate runs simplex iterations with Bland's rule until optimality or
// unboundedness for the given objective. ctx is polled every 64 pivots: the
// check costs one atomic load, negligible next to a dense pivot, yet bounds
// cancellation latency to a handful of pivots.
func (t *tableau) iterate(ctx context.Context, obj []float64, maxPivots int) (Status, error) {
	for pivots := 0; pivots < maxPivots; pivots++ {
		if pivots&63 == 0 && ctx.Err() != nil {
			return 0, fmt.Errorf("%w: %w", ErrInterrupted, context.Cause(ctx))
		}
		rc := t.reducedCosts(obj)
		enter := -1
		for j := 0; j < t.cols; j++ {
			if t.alive[j] && rc[j] < -eps {
				enter = j // Bland: lowest index
				break
			}
		}
		if enter == -1 {
			return Optimal, nil
		}
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				ratio := t.b[i] / aij
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
	// Pivot budget exhausted: numerically stuck. Treat as infeasible
	// rather than looping forever; callers fall back to greedy rounding.
	return Infeasible, nil
}

// runPhase1 minimizes the sum of artificial variables.
func (t *tableau) runPhase1(ctx context.Context, maxPivots int) (Status, error) {
	obj := make([]float64, t.cols)
	for j, isArt := range t.art {
		if isArt {
			obj[j] = 1
		}
	}
	status, err := t.iterate(ctx, obj, maxPivots)
	if err != nil {
		return 0, err
	}
	if status == Unbounded {
		// Phase 1 objective is bounded below by 0; unbounded here means a
		// numerical breakdown. Report infeasible.
		return Infeasible, nil
	}
	return status, nil
}

// phase1Objective returns the current value of the phase-1 objective.
func (t *tableau) phase1Objective() float64 {
	v := 0.0
	for i, col := range t.basis {
		if t.art[col] {
			v += t.b[i]
		}
	}
	return v
}

// dropArtificials retires artificial columns, pivoting basic artificials
// out of the basis first when possible (degenerate rows keep a zero-valued
// artificial basic; that is harmless once the column is marked dead and its
// row is all that is left).
func (t *tableau) dropArtificials() {
	for i := 0; i < t.m; i++ {
		if !t.art[t.basis[i]] {
			continue
		}
		// Find any alive non-artificial column with a non-zero pivot.
		for j := 0; j < t.n+t.numSlack; j++ {
			if t.alive[j] && math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
	for j, isArt := range t.art {
		if isArt {
			t.alive[j] = false
		}
	}
}

// runPhase2 minimizes the real objective.
func (t *tableau) runPhase2(ctx context.Context, maxPivots int) (Status, error) {
	obj := make([]float64, t.cols)
	copy(obj, t.cost)
	return t.iterate(ctx, obj, maxPivots)
}

// extract reads the first n variable values out of the basis.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, col := range t.basis {
		if col < n {
			v := t.b[i]
			if v < 0 && v > -eps {
				v = 0
			}
			x[col] = v
		}
	}
	return x
}
