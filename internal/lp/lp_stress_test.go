package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBealeCyclingExample solves Beale's classic degenerate program, which
// cycles forever under naive Dantzig pivoting. Bland's rule must terminate
// at the optimum. Standard form of Beale (1955):
//
//	min  -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
//	s.t. 0.25 x4 - 60 x5 - 0.04 x6 + 9 x7 <= 0
//	     0.50 x4 - 90 x5 - 0.02 x6 + 3 x7 <= 0
//	     x6 <= 1
//
// Optimum: -0.05 at x = (0.04, 0, 1, 0) (in the x4..x7 variables).
func TestBealeCyclingExample(t *testing.T) {
	s, err := Solve(Problem{
		Objective: []float64{-0.75, 150, -0.02, 6},
		Rows: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Sense: LE, RHS: 1},
		},
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal (anti-cycling failed?)", s.Status)
	}
	if math.Abs(s.Objective-(-0.05)) > 1e-9 {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

// TestKleeMintyCube solves the 3-D Klee-Minty cube (worst case for Dantzig
// pivoting; Bland just has to terminate at the right optimum).
func TestKleeMintyCube(t *testing.T) {
	// max 4x1 + 2x2 + x3 == min -(4x1 + 2x2 + x3)
	// s.t. x1 <= 5; 4x1 + x2 <= 25; 8x1 + 4x2 + x3 <= 125.
	// Optimum of the max is 125 at (0, 0, 125).
	s, err := Solve(Problem{
		Objective: []float64{-4, -2, -1},
		Rows: []Constraint{
			{Coeffs: []float64{1, 0, 0}, Sense: LE, RHS: 5},
			{Coeffs: []float64{4, 1, 0}, Sense: LE, RHS: 25},
			{Coeffs: []float64{8, 4, 1}, Sense: LE, RHS: 125},
		},
	})
	if err != nil || s.Status != Optimal {
		t.Fatalf("Solve: %v, %v", s.Status, err)
	}
	if math.Abs(s.Objective-(-125)) > 1e-6 {
		t.Errorf("objective = %v, want -125", s.Objective)
	}
}

// TestEqualitySystemsMatchGaussianElimination checks EQ-only programs with
// square non-singular systems against direct Gaussian solutions (when the
// unique solution is non-negative, the LP must find exactly it).
func TestEqualitySystemsMatchGaussianElimination(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		// Build A = L + diag(dominant) to keep it non-singular, and choose
		// x* >= 0 first so b = A x* guarantees feasibility.
		a := make([][]float64, n)
		xstar := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = float64(rng.Intn(5))
			}
			a[i][i] += float64(n*5) + 1 // diagonally dominant
			xstar[i] = float64(rng.Intn(10))
		}
		b := make([]float64, n)
		for i := range b {
			for j := range a[i] {
				b[i] += a[i][j] * xstar[j]
			}
		}
		rows := make([]Constraint, n)
		for i := range rows {
			rows[i] = Constraint{Coeffs: a[i], Sense: EQ, RHS: b[i]}
		}
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(1 + rng.Intn(5))
		}
		s, err := Solve(Problem{Objective: obj, Rows: rows})
		if err != nil || s.Status != Optimal {
			t.Logf("seed %d: %v %v", seed, s.Status, err)
			return false
		}
		// Unique feasible point: x must equal x*.
		for j := range xstar {
			if math.Abs(s.X[j]-xstar[j]) > 1e-6 {
				t.Logf("seed %d: x[%d] = %v, want %v", seed, j, s.X[j], xstar[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestLargeCoverInstances exercises the solver at the scale LP-PathCover
// produces on big cities (hundreds of variables, tens of rows).
func TestLargeCoverInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nVars = 400
	const nRows = 60
	obj := make([]float64, nVars)
	for j := range obj {
		obj[j] = 1 + rng.Float64()*9
	}
	rows := make([]Constraint, nRows)
	for i := range rows {
		coeffs := make([]float64, nVars)
		for k := 0; k < 12; k++ {
			coeffs[rng.Intn(nVars)] = 1
		}
		rows[i] = Constraint{Coeffs: coeffs, Sense: GE, RHS: 1}
	}
	s, err := Solve(Problem{Objective: obj, Rows: rows})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	// Feasibility.
	for i, row := range rows {
		sum := 0.0
		for j, c := range row.Coeffs {
			sum += c * s.X[j]
		}
		if sum < 1-1e-6 {
			t.Fatalf("row %d violated: %v", i, sum)
		}
	}
	// The LP optimum cannot exceed the trivially feasible all-min choice:
	// picking for each row its cheapest variable costs at most nRows*10.
	if s.Objective > float64(nRows)*10 {
		t.Errorf("objective %v implausibly large", s.Objective)
	}
}
