// Package viz renders attack experiments as SVG maps in the style of the
// paper's Figures 1-4: the street network in grey, the source as a blue
// circle, the destination (hospital) as a yellow circle, the chosen
// alternative route p* in blue, and the removed road segments in red.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"

	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// Style controls colors and sizes. Zero fields take the paper-style
// defaults.
type Style struct {
	WidthPx      int
	HeightPx     int
	Background   string
	RoadColor    string
	RoadWidth    float64
	PStarColor   string
	PStarWidth   float64
	RemovedColor string
	RemovedWidth float64
	SourceColor  string
	DestColor    string
	MarkerRadius float64
}

func (s *Style) fill() {
	if s.WidthPx <= 0 {
		s.WidthPx = 900
	}
	if s.HeightPx <= 0 {
		s.HeightPx = 900
	}
	if s.Background == "" {
		s.Background = "#ffffff"
	}
	if s.RoadColor == "" {
		s.RoadColor = "#c8c8c8"
	}
	if s.RoadWidth <= 0 {
		s.RoadWidth = 0.7
	}
	if s.PStarColor == "" {
		s.PStarColor = "#1f4fd8"
	}
	if s.PStarWidth <= 0 {
		s.PStarWidth = 2.8
	}
	if s.RemovedColor == "" {
		s.RemovedColor = "#d82020"
	}
	if s.RemovedWidth <= 0 {
		s.RemovedWidth = 3.2
	}
	if s.SourceColor == "" {
		s.SourceColor = "#1f4fd8"
	}
	if s.DestColor == "" {
		s.DestColor = "#e8c020"
	}
	if s.MarkerRadius <= 0 {
		s.MarkerRadius = 7
	}
}

// Scene is one experiment to draw.
type Scene struct {
	Net *roadnet.Network
	// Source and Dest are the experiment endpoints.
	Source graph.NodeID
	Dest   graph.NodeID
	// PStar is the forced alternative route (drawn blue).
	PStar graph.Path
	// Removed are the cut road segments (drawn red).
	Removed []graph.EdgeID
	// Title is drawn at the top; empty omits it.
	Title string
	Style Style
}

// WriteSVG renders the scene.
func WriteSVG(w io.Writer, scene Scene) error {
	st := scene.Style
	st.fill()
	net := scene.Net
	if net == nil || net.NumIntersections() == 0 {
		return fmt.Errorf("viz: empty network")
	}
	g := net.Graph()
	proj := net.Projection()

	// Compute planar bounds.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for n := 0; n < net.NumIntersections(); n++ {
		xy := proj.ToXY(net.Point(graph.NodeID(n)))
		minX = math.Min(minX, xy.X)
		minY = math.Min(minY, xy.Y)
		maxX = math.Max(maxX, xy.X)
		maxY = math.Max(maxY, xy.Y)
	}
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	const margin = 20.0
	sx := (float64(st.WidthPx) - 2*margin) / spanX
	sy := (float64(st.HeightPx) - 2*margin) / spanY
	scale := math.Min(sx, sy)
	toPx := func(n graph.NodeID) (float64, float64) {
		xy := proj.ToXY(net.Point(n))
		// SVG y grows downward.
		return margin + (xy.X-minX)*scale, float64(st.HeightPx) - margin - (xy.Y-minY)*scale
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		st.WidthPx, st.HeightPx, st.WidthPx, st.HeightPx)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="%s"/>`+"\n", st.Background)

	line := func(e graph.EdgeID, color string, width float64) {
		arc := g.Arc(e)
		x1, y1 := toPx(arc.From)
		x2, y2 := toPx(arc.To)
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f" stroke-linecap="round"/>`+"\n",
			x1, y1, x2, y2, color, width)
	}

	// Base network (skip artificial connectors for visual fidelity).
	removed := make(map[graph.EdgeID]bool, len(scene.Removed))
	for _, e := range scene.Removed {
		removed[e] = true
	}
	pstarSet := scene.PStar.EdgeSet()
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if removed[id] {
			continue
		}
		if _, onPStar := pstarSet[id]; onPStar {
			continue
		}
		if g.EdgeDisabled(id) && !g.EdgeRemoved(id) {
			continue
		}
		if g.EdgeRemoved(id) {
			continue
		}
		if net.Road(id).Artificial {
			continue
		}
		line(id, st.RoadColor, st.RoadWidth)
	}
	// p* on top, removed edges on very top.
	for _, e := range scene.PStar.Edges {
		line(e, st.PStarColor, st.PStarWidth)
	}
	for _, e := range scene.Removed {
		line(e, st.RemovedColor, st.RemovedWidth)
	}

	circle := func(n graph.NodeID, color string) {
		x, y := toPx(n)
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="#303030" stroke-width="1"/>`+"\n",
			x, y, st.MarkerRadius, color)
	}
	circle(scene.Source, st.SourceColor)
	circle(scene.Dest, st.DestColor)

	if scene.Title != "" {
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="14" fill="#303030">%s</text>`+"\n",
			margin, 16.0, xmlEscape(scene.Title))
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// WriteSVGFile renders the scene to a file.
func WriteSVGFile(path string, scene Scene) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	if err := WriteSVG(f, scene); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	return nil
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
