package viz

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/core"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

func testScene(t *testing.T) Scene {
	t.Helper()
	net, err := citygen.Build(citygen.Boston, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := net.POIsOfKind(citygen.KindHospital)[0]
	w := net.Weight(roadnet.WeightTime)
	// Pick the first source with at least 3 simple paths to the hospital.
	var (
		src   graph.NodeID
		pstar graph.Path
	)
	found := false
	for n := 0; n < net.NumIntersections() && !found; n++ {
		if n == int(h.Node) {
			continue
		}
		if p, err := core.PStarByRank(net.Graph(), graph.NodeID(n), h.Node, 3, w); err == nil {
			src, pstar, found = graph.NodeID(n), p, true
		}
	}
	if !found {
		t.Fatal("no viable source found")
	}
	p := core.Problem{G: net.Graph(), Source: src, Dest: h.Node, PStar: pstar, Weight: w, Cost: net.Cost(roadnet.CostWidth)}
	res, err := core.Run(core.AlgGreedyPathCover, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Scene{
		Net:     net,
		Source:  src,
		Dest:    h.Node,
		PStar:   pstar,
		Removed: res.Removed,
		Title:   "Boston & <test>",
	}
}

func TestWriteSVG(t *testing.T) {
	scene := testScene(t)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, scene); err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>",
		`fill="#1f4fd8"`, // source marker
		`fill="#e8c020"`, // destination marker
		`stroke="#1f4fd8"`,
		"Boston &amp; &lt;test&gt;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if len(scene.Removed) > 0 && !strings.Contains(out, `stroke="#d82020"`) {
		t.Error("SVG missing removed-edge strokes")
	}
	// Every p* edge drawn: count blue strokes >= hops.
	if got := strings.Count(out, `stroke="#1f4fd8"`); got < scene.PStar.Hops() {
		t.Errorf("p* strokes = %d, want >= %d", got, scene.PStar.Hops())
	}
}

func TestWriteSVGEmptyNetwork(t *testing.T) {
	if err := WriteSVG(&bytes.Buffer{}, Scene{Net: roadnet.NewNetwork("e")}); err == nil {
		t.Error("empty network accepted")
	}
	if err := WriteSVG(&bytes.Buffer{}, Scene{}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestWriteSVGFile(t *testing.T) {
	scene := testScene(t)
	path := t.TempDir() + "/fig.svg"
	if err := WriteSVGFile(path, scene); err != nil {
		t.Fatalf("WriteSVGFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("file does not start with <svg")
	}
	if err := WriteSVGFile("/nonexistent/dir/fig.svg", scene); err == nil {
		t.Error("bad path accepted")
	}
}

func TestStyleDefaultsAndOverrides(t *testing.T) {
	var s Style
	s.fill()
	if s.WidthPx != 900 || s.PStarColor == "" || s.MarkerRadius != 7 {
		t.Errorf("defaults = %+v", s)
	}
	o := Style{WidthPx: 100, HeightPx: 100, PStarColor: "#000001", MarkerRadius: 2}
	o.fill()
	if o.WidthPx != 100 || o.PStarColor != "#000001" || o.MarkerRadius != 2 {
		t.Errorf("overrides lost: %+v", o)
	}
}
