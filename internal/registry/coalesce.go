package registry

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"altroute/internal/core"
)

// Group coalesces concurrent calls with the same key into one computation
// (singleflight). Unlike the classic pattern, the computation does not run
// on the first caller's goroutine or context: it runs in its own goroutine
// under a context derived from a caller-supplied base (the server's drain
// context), so one waiter hanging up never kills the work the others are
// still waiting for. Each waiter observes its own context; a cancelled
// waiter detaches immediately with its own error. Only when the LAST
// waiter detaches is the shared computation cancelled.
//
// A panic in the computation is recovered once and delivered to every
// waiter as an error wrapping core.ErrPanic — one poisoned key costs one
// failed request fan-in, never the process.
//
// A Group is safe for concurrent use. The zero value is ready.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]

	leaders  int64
	joins    int64
	detaches int64
	panics   int64
}

type call[V any] struct {
	done    chan struct{} // closed when val/err are final
	val     V
	err     error
	waiters int
	joined  int // total callers that ever attached beyond the leader
	cancel  context.CancelCauseFunc
}

// GroupStats is a point-in-time snapshot of a group's counters.
type GroupStats struct {
	// Leaders counts computations started (= coalesced request groups).
	Leaders int64 `json:"leaders"`
	// Joins counts callers that attached to an already-running computation.
	Joins int64 `json:"joins"`
	// Detaches counts waiters that gave up (their context died) before the
	// shared computation finished.
	Detaches int64 `json:"detaches"`
	// Panics counts computations that ended in a recovered panic.
	Panics int64 `json:"panics"`
	// InFlight is the number of computations currently running.
	InFlight int `json:"in_flight"`
}

// ErrComputationCancelled is the cancel cause used when the last waiter of
// a coalesced computation detaches.
var ErrComputationCancelled = fmt.Errorf("registry: all waiters detached")

// Do returns the result of fn for key, sharing one execution among all
// concurrent callers with the same key. fn runs on its own goroutine under
// a context derived from base (NOT from ctx); ctx only governs how long
// this caller waits. shared reports whether the result was (or would have
// been) shared with other callers — true for every caller that attached
// to an existing computation.
//
// If ctx dies first, Do returns ctx's error immediately; the computation
// keeps running for the remaining waiters and is cancelled (with cause
// ErrComputationCancelled) only when no waiters remain.
func (g *Group[K, V]) Do(ctx, base context.Context, key K, fn func(context.Context) (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	c, ok := g.calls[key]
	if ok {
		c.waiters++
		c.joined++
		g.joins++
		g.mu.Unlock()
		return g.wait(ctx, key, c, true)
	}
	runCtx, cancel := context.WithCancelCause(base)
	c = &call[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.leaders++
	g.mu.Unlock()
	go g.run(runCtx, key, c, fn)
	return g.wait(ctx, key, c, false)
}

// run executes fn, publishes its result, and retires the call so later
// requests for the key start fresh.
func (g *Group[K, V]) run(ctx context.Context, key K, c *call[V], fn func(context.Context) (V, error)) {
	defer func() {
		if r := recover(); r != nil {
			// Keep the panic's stack: by the time a waiter sees the error,
			// this goroutine is long gone.
			c.err = fmt.Errorf("%w: %v\n%s", core.ErrPanic, r, debug.Stack())
			g.mu.Lock()
			g.panics++
			g.mu.Unlock()
		}
		g.mu.Lock()
		// The detach path may already have retired this call (and a newer
		// call may own the key now); only delete our own entry.
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		c.cancel(nil)
		close(c.done)
	}()
	c.val, c.err = fn(ctx)
}

// wait blocks until the computation finishes or the caller's ctx dies.
func (g *Group[K, V]) wait(ctx context.Context, key K, c *call[V], joined bool) (V, bool, error) {
	select {
	case <-c.done:
		g.mu.Lock()
		// shared is true when anyone else ever attached to this
		// computation, whether this caller led or joined.
		shared := joined || c.joined > 0
		c.waiters--
		g.mu.Unlock()
		return c.val, shared, c.err
	case <-ctx.Done():
		g.mu.Lock()
		g.detaches++
		c.waiters--
		last := c.waiters == 0
		if last && g.calls[key] == c {
			// Retire the call before cancelling so a caller arriving after
			// this moment starts a fresh computation instead of joining one
			// that is being torn down.
			delete(g.calls, key)
		}
		g.mu.Unlock()
		if last {
			// Last waiter out: nobody wants the result, stop the work.
			c.cancel(ErrComputationCancelled)
		}
		var zero V
		return zero, joined, ctx.Err()
	}
}

// Stats returns the group's counters.
func (g *Group[K, V]) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupStats{
		Leaders:  g.leaders,
		Joins:    g.joins,
		Detaches: g.detaches,
		Panics:   g.panics,
		InFlight: len(g.calls),
	}
}
