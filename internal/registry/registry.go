// Package registry holds the serving-side read path of the attack
// service: a registry of preloaded city shards, each wrapping one street
// network with the frozen artifacts that make repeated attack queries
// cheap —
//
//   - one immutable CSR snapshot per weight type (graph.Freeze), shared
//     read-only by every worker: read-only queries (p* generation, oracle
//     probes) run straight on the shard snapshot and never touch a pooled
//     network clone;
//   - one reverse potential per (weight type, POI destination), computed
//     once on the intact network and reused as the exact A* heuristic by
//     every Yen search against that hospital;
//   - a generation counter that advances on every weight mutation
//     (SetRoad), keying result caches: anything computed against
//     generation g is correct forever *for generation g*, so a cache
//     entry keyed (g, request) can never serve stale data — it simply
//     stops being looked up once the generation moves on;
//   - a bounded pool of network clones for the mutation-bearing part of
//     an attack (the algorithms disable edges transactionally and must
//     not share a graph); clones are generation-stamped so a mutation
//     flushes stale clones instead of recycling them.
//
// The package also provides the two building blocks the server composes
// on top of shards: a memory-bounded generation-keyed LRU cache (Cache)
// and a singleflight coalescing group with per-waiter cancellation
// (Group).
package registry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"altroute/internal/graph"
	"altroute/internal/overlay"
	"altroute/internal/roadnet"
)

// NormalizeCity canonicalizes a city name for lookup: lower-case, spaces
// collapsed to hyphens ("San Francisco" == "san-francisco").
func NormalizeCity(name string) string {
	return strings.ReplaceAll(strings.ToLower(strings.TrimSpace(name)), " ", "-")
}

// potKey identifies one cached reverse potential.
type potKey struct {
	wt   roadnet.WeightType
	dest graph.NodeID
}

// pooledClone is one pool entry: a private network clone stamped with the
// shard generation it was cloned at, so a post-mutation release can
// discard it instead of recycling stale weights.
type pooledClone struct {
	net *roadnet.Network
	gen uint64
}

// Shard is one served city: the master network plus its frozen read-path
// artifacts and the clone pool for mutation-bearing attack computations.
//
// Concurrency contract: the master network is never mutated except
// through SetRoad, which synchronizes against every reader here. All
// read methods (Snapshot, Potential, AcquireClone, ...) are safe for
// arbitrary concurrency.
type Shard struct {
	name string
	net  *roadnet.Network

	// gen is the shard generation: it advances on every SetRoad and keys
	// every cache built over this shard. Reads are atomic so the hot path
	// never takes the mutex; writes happen under mu.
	gen atomic.Uint64

	// mu orders SetRoad (write) against snapshot/potential (re)builds and
	// clone creation (read): a clone or frozen artifact produced under
	// RLock is always consistent with the generation read under the same
	// RLock.
	mu       sync.RWMutex
	snaps    map[roadnet.WeightType]*graph.Snapshot
	pots     map[potKey]*graph.Potential
	overlays map[roadnet.WeightType]*overlay.Metric
	poi      map[graph.NodeID]bool // destinations worth caching potentials for

	opts ShardOptions

	clones  chan pooledClone
	routers sync.Pool // *graph.Router over the master graph, for read-only queries

	poolHits   atomic.Int64
	poolMisses atomic.Int64
	poolStale  atomic.Int64
}

// ShardStats is a point-in-time snapshot of one shard's counters for
// /healthz.
type ShardStats struct {
	City       string `json:"city"`
	Generation uint64 `json:"generation"`
	Snapshots  int    `json:"snapshots"`
	Potentials int    `json:"potentials"`
	PoolHits   int64  `json:"pool_hits"`
	PoolMisses int64  `json:"pool_misses"`
	PoolStale  int64  `json:"pool_stale"`
	// FreezeNS is the cumulative wall-clock time (ns) the currently-held
	// CSR snapshots took to freeze — how much preload/rebuild work the
	// shard's read path amortizes.
	FreezeNS int64 `json:"freeze_ns"`
	// Overlay observability: zero values when overlays are disabled.
	OverlayCells           int   `json:"overlay_cells,omitempty"`
	OverlayBoundary        int   `json:"overlay_boundary,omitempty"`
	OverlayBuildNS         int64 `json:"overlay_build_ns,omitempty"`
	OverlayCustomizeNS     int64 `json:"overlay_customize_ns,omitempty"`
	OverlayCellsRecomputed int64 `json:"overlay_cells_recomputed,omitempty"`
}

// ShardOptions configures NewShardWithOptions.
type ShardOptions struct {
	// PoolSize bounds the clone pool (0 picks a small default).
	PoolSize int
	// Overlay enables building a CRP partition-overlay metric per weight
	// type at preload (and lazily after mutations), served via Overlay()
	// for the oracle loops' corridor-pruned searches.
	Overlay bool
	// OverlayParams tunes the partition; zero values pick the package
	// defaults.
	OverlayParams overlay.Params
}

// NewShard builds a preloaded shard for net under ctx: it freezes one CSR
// snapshot per weight type and computes one reverse potential per
// (weight type, attached POI) — the artifacts every later request shares.
// The name defaults to the network's own name. poolSize bounds the clone
// pool (0 picks a small default). Preloading a metropolitan network runs
// several full Dijkstra sweeps; ctx cancellation aborts it cleanly.
func NewShard(ctx context.Context, name string, net *roadnet.Network, poolSize int) (*Shard, error) {
	return NewShardWithOptions(ctx, name, net, ShardOptions{PoolSize: poolSize})
}

// NewShardWithOptions is NewShard with the full option set: besides the
// clone pool size it can preload one partition-overlay metric per weight
// type (opts.Overlay), giving every attack against this shard the
// corridor-pruned oracle for free.
func NewShardWithOptions(ctx context.Context, name string, net *roadnet.Network, opts ShardOptions) (*Shard, error) {
	if net == nil {
		return nil, fmt.Errorf("registry: nil network")
	}
	if name == "" {
		name = net.Name()
	}
	name = NormalizeCity(name)
	if name == "" {
		return nil, fmt.Errorf("registry: shard needs a name (network has none)")
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 8
	}
	s := &Shard{
		name:     name,
		net:      net,
		snaps:    make(map[roadnet.WeightType]*graph.Snapshot),
		pots:     make(map[potKey]*graph.Potential),
		overlays: make(map[roadnet.WeightType]*overlay.Metric),
		poi:      make(map[graph.NodeID]bool),
		clones:   make(chan pooledClone, opts.PoolSize),
		opts:     opts,
	}
	s.routers.New = func() any { return graph.NewRouter(net.Graph()) }
	for _, p := range net.POIs() {
		if p.Node != graph.InvalidNode {
			s.poi[p.Node] = true
		}
	}
	// Preload order is fixed (weight types in paper order, POIs in
	// attachment order) so startup work is deterministic.
	for _, wt := range roadnet.WeightTypes() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("registry: preloading shard %s: %w", name, context.Cause(ctx))
		}
		snap := net.Snapshot(wt)
		s.snaps[wt] = snap
		if opts.Overlay {
			m, err := s.buildOverlay(ctx, snap)
			if err != nil {
				return nil, fmt.Errorf("registry: preloading shard %s: %w", name, err)
			}
			s.overlays[wt] = m
		}
		for _, p := range net.POIs() {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("registry: preloading shard %s: %w", name, context.Cause(ctx))
			}
			if p.Node == graph.InvalidNode {
				continue
			}
			pot := s.computePotential(ctx, snap, wt, p.Node)
			if err := ctx.Err(); err != nil {
				// A cancelled sweep leaves +Inf holes; never preload one.
				return nil, fmt.Errorf("registry: preloading shard %s: %w", name, context.Cause(ctx))
			}
			s.pots[potKey{wt, p.Node}] = pot
		}
	}
	return s, nil
}

// computePotential runs one reverse Dijkstra on the frozen snapshot.
func (s *Shard) computePotential(ctx context.Context, snap *graph.Snapshot, wt roadnet.WeightType, dest graph.NodeID) *graph.Potential {
	r := s.routers.Get().(*graph.Router)
	defer s.putRouter(r)
	r.SetContext(ctx)
	r.UseSnapshot(snap)
	return r.ReversePotential(dest, s.net.Weight(wt))
}

// putRouter detaches per-use state and returns the router to the pool.
func (s *Shard) putRouter(r *graph.Router) {
	r.SetContext(nil)
	r.UseSnapshot(nil)
	s.routers.Put(r)
}

// Name returns the shard's normalized city name.
func (s *Shard) Name() string { return s.name }

// Net returns the master network. Callers must treat it as read-only;
// mutations go through SetRoad.
func (s *Shard) Net() *roadnet.Network { return s.net }

// Generation returns the shard generation. It advances on every SetRoad;
// results computed against an older generation must not be served as
// current.
func (s *Shard) Generation() uint64 { return s.gen.Load() }

// Snapshot returns the shared frozen CSR snapshot for wt at the current
// generation, rebuilding lazily after a mutation dropped it. The snapshot
// is safe for any number of concurrent readers.
func (s *Shard) Snapshot(wt roadnet.WeightType) *graph.Snapshot {
	s.mu.RLock()
	snap := s.snaps[wt]
	s.mu.RUnlock()
	if snap != nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap = s.snaps[wt]; snap != nil {
		return snap
	}
	snap = s.net.Snapshot(wt)
	s.snaps[wt] = snap
	return snap
}

// buildOverlay partitions snap and computes its clique metric.
func (s *Shard) buildOverlay(ctx context.Context, snap *graph.Snapshot) (*overlay.Metric, error) {
	ov, err := overlay.Build(ctx, snap, s.opts.OverlayParams)
	if err != nil {
		return nil, err
	}
	return overlay.NewMetric(ctx, ov)
}

// Overlay returns the shard's partition-overlay metric for wt, or nil
// when overlays are disabled. After a mutation dropped it, the metric is
// rebuilt lazily on first use (a cancelled rebuild returns nil and the
// caller falls back to the baseline oracle).
func (s *Shard) Overlay(ctx context.Context, wt roadnet.WeightType) *overlay.Metric {
	if !s.opts.Overlay {
		return nil
	}
	s.mu.RLock()
	m := s.overlays[wt]
	gen := s.gen.Load()
	s.mu.RUnlock()
	if m != nil {
		return m
	}
	snap := s.Snapshot(wt)
	m, err := s.buildOverlay(ctx, snap)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached := s.overlays[wt]; cached != nil {
		return cached
	}
	if s.gen.Load() != gen {
		// A mutation landed mid-build: the cliques match the old weights.
		// Drop them; the caller's generation re-check retries.
		return nil
	}
	s.overlays[wt] = m
	return m
}

// Potential returns the cached reverse potential for dest under wt, or
// nil when dest is not a POI destination (ad-hoc destinations compute
// their potential inside the attack, as before). After a mutation the
// entry is recomputed lazily on first use.
func (s *Shard) Potential(ctx context.Context, wt roadnet.WeightType, dest graph.NodeID) *graph.Potential {
	s.mu.RLock()
	pot, ok := s.pots[potKey{wt, dest}]
	isPOI := s.poi[dest]
	gen := s.gen.Load()
	s.mu.RUnlock()
	if ok || !isPOI {
		return pot
	}
	snap := s.Snapshot(wt)
	pot = s.computePotential(ctx, snap, wt, dest)
	if ctx.Err() != nil {
		return nil // partial sweep: do not cache or serve a truncated table
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.pots[potKey{wt, dest}]; ok {
		return cached
	}
	if s.gen.Load() != gen {
		// A mutation landed while we were sweeping: the table matches the
		// old weights, which may overestimate under the new ones (no longer
		// a valid A* bound). Drop it; the caller's generation re-check
		// retries at the new generation.
		return nil
	}
	s.pots[potKey{wt, dest}] = pot
	return pot
}

// SetRoad replaces the attributes of segment e on the master network and
// advances the shard generation: frozen snapshots and potentials are
// dropped (rebuilt lazily at the new generation) and pooled clones from
// the old generation are flushed. Results computed against the old
// generation stay correct for their generation key; they just stop being
// current.
func (s *Shard) SetRoad(e graph.EdgeID, r roadnet.Road) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.net.SetRoad(e, r); err != nil {
		return err
	}
	s.gen.Add(1)
	s.snaps = make(map[roadnet.WeightType]*graph.Snapshot)
	s.pots = make(map[potKey]*graph.Potential)
	s.overlays = make(map[roadnet.WeightType]*overlay.Metric)
	for {
		select {
		case <-s.clones:
			s.poolStale.Add(1)
		default:
			return nil
		}
	}
}

// AcquireClone returns a private network clone at the current generation
// for a mutation-bearing computation (attack algorithms disable edges
// transactionally). Clones come from the pool when one of the right
// generation is available; otherwise a fresh clone is cut (counted in
// PoolMisses — the pool warms up as clones are released).
func (s *Shard) AcquireClone() (*roadnet.Network, uint64) {
	// Drain stale pool entries first; the loop is bounded by the channel
	// capacity (each iteration pops one clone or exits).
drain:
	for {
		select {
		case pc := <-s.clones:
			if pc.gen == s.Generation() {
				s.poolHits.Add(1)
				return pc.net, pc.gen
			}
			s.poolStale.Add(1)
		default:
			break drain
		}
	}
	s.poolMisses.Add(1)
	// RLock pairs the generation read with the clone so a racing
	// SetRoad cannot produce a new-weights clone stamped with the
	// old generation.
	s.mu.RLock()
	gen := s.Generation()
	clone := s.net.Clone()
	s.mu.RUnlock()
	return clone, gen
}

// ReleaseClone sanitizes a clone (disabled edges from an unwound attack
// are reset) and returns it to the pool, unless the generation moved on —
// stale clones are dropped so a post-mutation request can never see old
// weights.
func (s *Shard) ReleaseClone(n *roadnet.Network, gen uint64) {
	if n == nil {
		return
	}
	n.Graph().ResetDisabled()
	if gen != s.Generation() {
		s.poolStale.Add(1)
		return
	}
	select {
	case s.clones <- pooledClone{net: n, gen: gen}:
	default:
	}
}

// AcquireRouter returns a pooled router over the master graph for a
// read-only query (p* generation). Callers attach their own context and
// snapshot; ReleaseRouter detaches both.
func (s *Shard) AcquireRouter() *graph.Router {
	return s.routers.Get().(*graph.Router)
}

// ReleaseRouter returns a router taken with AcquireRouter.
func (s *Shard) ReleaseRouter(r *graph.Router) { s.putRouter(r) }

// Stats returns the shard's counters.
func (s *Shard) Stats() ShardStats {
	s.mu.RLock()
	snaps, pots := len(s.snaps), len(s.pots)
	st := ShardStats{
		City:       s.name,
		Generation: s.Generation(),
		Snapshots:  snaps,
		Potentials: pots,
		PoolHits:   s.poolHits.Load(),
		PoolMisses: s.poolMisses.Load(),
		PoolStale:  s.poolStale.Load(),
	}
	for _, snap := range s.snaps {
		st.FreezeNS += snap.FreezeNanos()
	}
	for _, m := range s.overlays {
		st.OverlayCells += m.Overlay().NumCells()
		st.OverlayBoundary += m.Overlay().NumBoundary()
		st.OverlayBuildNS += m.BuildNanos()
		st.OverlayCustomizeNS += m.CustomizeNanos()
		st.OverlayCellsRecomputed += m.CellsRecomputed()
	}
	s.mu.RUnlock()
	return st
}

// Registry maps city names to shards. Build it at startup with Add;
// lookups afterwards are read-only and safe for any concurrency.
type Registry struct {
	shards map[string]*Shard
	order  []string
	def    *Shard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{shards: make(map[string]*Shard)}
}

// Add registers a shard. The first shard added becomes the default city
// (overridable with SetDefault); duplicate names are rejected.
func (r *Registry) Add(s *Shard) error {
	if s == nil {
		return fmt.Errorf("registry: nil shard")
	}
	if _, dup := r.shards[s.name]; dup {
		return fmt.Errorf("registry: duplicate city %q", s.name)
	}
	r.shards[s.name] = s
	r.order = append(r.order, s.name)
	if r.def == nil {
		r.def = s
	}
	return nil
}

// SetDefault selects the city served when a request names none.
func (r *Registry) SetDefault(name string) error {
	s, ok := r.shards[NormalizeCity(name)]
	if !ok {
		return fmt.Errorf("registry: unknown city %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	r.def = s
	return nil
}

// Get resolves a city name to its shard; the empty name resolves to the
// default city.
func (r *Registry) Get(name string) (*Shard, bool) {
	if name == "" {
		return r.def, r.def != nil
	}
	s, ok := r.shards[NormalizeCity(name)]
	return s, ok
}

// Names returns the registered city names, sorted.
func (r *Registry) Names() []string {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	return names
}

// Shards returns the shards in registration order.
func (r *Registry) Shards() []*Shard {
	out := make([]*Shard, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.shards[name])
	}
	return out
}
