package registry

import "sync"

// Cache is a memory-bounded LRU keyed by K. Entries carry a caller-supplied
// cost estimate in bytes; when the running total would exceed the capacity,
// least-recently-used entries are evicted until the new entry fits.
//
// Generation keying is the caller's job: keys embed the shard generation
// they were computed at, so a mutation makes old entries unreachable
// (they age out of the LRU) rather than requiring an explicit flush.
//
// A Cache is safe for concurrent use. The zero value is not usable; call
// NewCache.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	entries  map[K]*cacheEntry[K, V]
	// Intrusive doubly-linked list through the entries, most recent at
	// head.next, least recent at head.prev. head is a sentinel.
	head cacheEntry[K, V]

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry[K comparable, V any] struct {
	key        K
	val        V
	bytes      int64
	prev, next *cacheEntry[K, V]
}

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
}

// NewCache returns a cache bounded to roughly capacityBytes of estimated
// entry cost. A capacity <= 0 disables the cache: every Get misses and
// every Add is dropped (useful for benchmarking the cold path).
func NewCache[K comparable, V any](capacityBytes int64) *Cache[K, V] {
	c := &Cache[K, V]{
		capacity: capacityBytes,
		entries:  make(map[K]*cacheEntry[K, V]),
	}
	c.head.prev = &c.head
	c.head.next = &c.head
	return c
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	return e.val, true
}

// Add inserts v under k with the given cost estimate, evicting from the
// LRU tail until it fits. Oversized entries (bytes > capacity) are
// dropped rather than flushing the whole cache for one entry. Adding an
// existing key replaces its value and cost.
func (c *Cache[K, V]) Add(k K, v V, bytes int64) {
	if bytes < 1 {
		bytes = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes > c.capacity {
		return
	}
	if e, ok := c.entries[k]; ok {
		c.bytes += bytes - e.bytes
		e.val, e.bytes = v, bytes
		c.unlink(e)
		c.pushFront(e)
	} else {
		e = &cacheEntry[K, V]{key: k, val: v, bytes: bytes}
		c.entries[k] = e
		c.bytes += bytes
		c.pushFront(e)
	}
	for c.bytes > c.capacity {
		lru := c.head.prev
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.bytes -= lru.bytes
		c.evictions++
	}
}

// Stats returns the cache's counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		CapacityBytes: c.capacity,
	}
}

func (c *Cache[K, V]) unlink(e *cacheEntry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (c *Cache[K, V]) pushFront(e *cacheEntry[K, V]) {
	e.prev = &c.head
	e.next = c.head.next
	c.head.next.prev = e
	c.head.next = e
}
