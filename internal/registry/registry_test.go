package registry

import (
	"context"
	"testing"

	"altroute/internal/citygen"
	"altroute/internal/geo"
	"altroute/internal/graph"
	"altroute/internal/roadnet"
)

// testNetwork builds a deterministic dim×dim street grid with two-way
// residential roads and one hospital in the far corner.
func testNetwork(t testing.TB, name string, dim int) *roadnet.Network {
	t.Helper()
	net := roadnet.NewNetwork(name)
	ids := make([]graph.NodeID, dim*dim)
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			ids[r*dim+c] = net.AddIntersection(geo.Point{
				Lat: 42.0 + float64(r)*0.001,
				Lon: -71.0 + float64(c)*0.001,
			})
		}
	}
	road := roadnet.Road{LengthM: 111, SpeedMS: 10, Lanes: 2, WidthM: 7, Class: roadnet.ClassResidential}
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if c+1 < dim {
				if _, _, err := net.AddTwoWayRoad(ids[r*dim+c], ids[r*dim+c+1], road); err != nil {
					t.Fatalf("AddTwoWayRoad: %v", err)
				}
			}
			if r+1 < dim {
				if _, _, err := net.AddTwoWayRoad(ids[r*dim+c], ids[(r+1)*dim+c], road); err != nil {
					t.Fatalf("AddTwoWayRoad: %v", err)
				}
			}
		}
	}
	if _, err := net.AttachPOI("Test General", citygen.KindHospital, net.Point(ids[dim*dim-1])); err != nil {
		t.Fatalf("AttachPOI: %v", err)
	}
	return net
}

func testShard(t testing.TB, name string, dim int) *Shard {
	t.Helper()
	s, err := NewShard(context.Background(), name, testNetwork(t, name, dim), 2)
	if err != nil {
		t.Fatalf("NewShard: %v", err)
	}
	return s
}

func TestNewShardPreloadsArtifacts(t *testing.T) {
	s := testShard(t, "boston", 4)
	st := s.Stats()
	wantSnaps := len(roadnet.WeightTypes())
	if st.Snapshots != wantSnaps {
		t.Errorf("preloaded %d snapshots, want one per weight type (%d)", st.Snapshots, wantSnaps)
	}
	// One POI (the hospital) × every weight type.
	if st.Potentials != wantSnaps {
		t.Errorf("preloaded %d potentials, want %d", st.Potentials, wantSnaps)
	}
	if st.Generation != 0 {
		t.Errorf("fresh shard at generation %d, want 0", st.Generation)
	}

	hospital := s.Net().POIs()[0].Node
	for _, wt := range roadnet.WeightTypes() {
		snap := s.Snapshot(wt)
		if snap == nil || !snap.Valid() {
			t.Fatalf("Snapshot(%v) invalid", wt)
		}
		pot := s.Potential(context.Background(), wt, hospital)
		if pot == nil || pot.Target() != hospital {
			t.Fatalf("Potential(%v, hospital) = %v, want preloaded table", wt, pot)
		}
		// The preloaded table must be bit-identical to a fresh sweep.
		fresh := graph.NewRouter(s.Net().Graph()).ReversePotential(hospital, s.Net().Weight(wt))
		for v := 0; v < s.Net().NumIntersections(); v++ {
			if pot.At(graph.NodeID(v)) != fresh.At(graph.NodeID(v)) {
				t.Fatalf("Potential(%v) differs from fresh sweep at node %d: %v vs %v",
					wt, v, pot.At(graph.NodeID(v)), fresh.At(graph.NodeID(v)))
			}
		}
	}
}

func TestShardPotentialAdHocDestination(t *testing.T) {
	s := testShard(t, "adhoc", 3)
	// Node 0 is a plain intersection, not a POI: the shard must not spend
	// memory caching potentials for arbitrary destinations.
	if pot := s.Potential(context.Background(), roadnet.WeightLength, 0); pot != nil {
		t.Errorf("Potential(non-POI) = %v, want nil (caller computes its own)", pot)
	}
}

func TestShardSetRoadAdvancesGeneration(t *testing.T) {
	s := testShard(t, "mutating", 4)
	oldSnap := s.Snapshot(roadnet.WeightLength)
	hospital := s.Net().POIs()[0].Node
	oldPot := s.Potential(context.Background(), roadnet.WeightLength, hospital)

	road := s.Net().Road(0)
	road.LengthM *= 3
	if err := s.SetRoad(0, road); err != nil {
		t.Fatalf("SetRoad: %v", err)
	}
	if got := s.Generation(); got != 1 {
		t.Fatalf("generation = %d after SetRoad, want 1", got)
	}

	newSnap := s.Snapshot(roadnet.WeightLength)
	if newSnap == oldSnap {
		t.Error("Snapshot not rebuilt after SetRoad")
	}
	newPot := s.Potential(context.Background(), roadnet.WeightLength, hospital)
	if newPot == oldPot {
		t.Error("Potential not recomputed after SetRoad")
	}
	// The rebuilt table must match a fresh sweep over the mutated weights.
	fresh := graph.NewRouter(s.Net().Graph()).ReversePotential(hospital, s.Net().Weight(roadnet.WeightLength))
	for v := 0; v < s.Net().NumIntersections(); v++ {
		if newPot.At(graph.NodeID(v)) != fresh.At(graph.NodeID(v)) {
			t.Fatalf("post-SetRoad potential differs from fresh sweep at node %d", v)
		}
	}
}

func TestClonePoolRecyclesAndFlushes(t *testing.T) {
	s := testShard(t, "pooled", 3)

	c1, g1 := s.AcquireClone()
	if g1 != 0 {
		t.Fatalf("clone generation = %d, want 0", g1)
	}
	if c1 == s.Net() {
		t.Fatal("AcquireClone returned the master network")
	}
	s.ReleaseClone(c1, g1)
	c2, g2 := s.AcquireClone()
	if c2 != c1 {
		t.Error("released clone was not recycled at the same generation")
	}
	if st := s.Stats(); st.PoolHits != 1 || st.PoolMisses != 1 {
		t.Errorf("stats = %+v, want 1 hit (recycle), 1 miss (first cut)", st)
	}

	// A mutation makes the held clone stale: releasing it must drop it,
	// and the next acquire must cut a fresh clone with the new weights.
	road := s.Net().Road(0)
	road.LengthM *= 2
	if err := s.SetRoad(0, road); err != nil {
		t.Fatalf("SetRoad: %v", err)
	}
	s.ReleaseClone(c2, g2)
	c3, g3 := s.AcquireClone()
	if c3 == c2 {
		t.Error("stale clone recycled across a generation bump")
	}
	if g3 != 1 {
		t.Errorf("post-mutation clone at generation %d, want 1", g3)
	}
	if c3.Road(0).LengthM != road.LengthM {
		t.Errorf("fresh clone carries stale road: %v, want %v", c3.Road(0).LengthM, road.LengthM)
	}
	if st := s.Stats(); st.PoolStale == 0 {
		t.Errorf("stats = %+v, want stale drops recorded", st)
	}
}

func TestCloneDisabledEdgesSanitizedOnRelease(t *testing.T) {
	s := testShard(t, "sanitize", 3)
	c, gen := s.AcquireClone()
	c.Graph().DisableEdge(0) // simulate an attack that did not unwind
	s.ReleaseClone(c, gen)
	c2, _ := s.AcquireClone()
	if c2.Graph().EdgeDisabled(0) {
		t.Error("recycled clone still carries disabled edges from the previous attack")
	}
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	boston := testShard(t, "Boston", 3)
	providence := testShard(t, "providence", 3)
	if err := r.Add(boston); err != nil {
		t.Fatalf("Add(boston): %v", err)
	}
	if err := r.Add(providence); err != nil {
		t.Fatalf("Add(providence): %v", err)
	}

	// Names normalize: the shard registered from "Boston" answers to any
	// casing and space/hyphen spelling.
	for _, name := range []string{"boston", "Boston", "BOSTON", " boston "} {
		if s, ok := r.Get(name); !ok || s != boston {
			t.Errorf("Get(%q) = %v, %v; want the boston shard", name, s, ok)
		}
	}
	// Empty name falls through to the default (first added).
	if s, ok := r.Get(""); !ok || s != boston {
		t.Errorf("Get(\"\") = %v, %v; want default shard boston", s, ok)
	}
	if err := r.SetDefault("providence"); err != nil {
		t.Fatalf("SetDefault: %v", err)
	}
	if s, _ := r.Get(""); s != providence {
		t.Error("SetDefault did not change the default shard")
	}
	if _, ok := r.Get("gotham"); ok {
		t.Error("Get(unknown) must report false")
	}
	if err := r.SetDefault("gotham"); err == nil {
		t.Error("SetDefault(unknown) must fail")
	}
	if err := r.Add(testShard(t, "BOSTON", 3)); err == nil {
		t.Error("Add must reject duplicate (normalized) names")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "boston" || got[1] != "providence" {
		t.Errorf("Names() = %v, want [boston providence]", got)
	}
	if got := r.Shards(); len(got) != 2 || got[0] != boston || got[1] != providence {
		t.Errorf("Shards() out of registration order")
	}
}

func TestNewShardCancelledPreload(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewShard(ctx, "late", testNetwork(t, "late", 3), 1); err == nil {
		t.Error("NewShard under a dead context must fail, not preload partial tables")
	}
}
