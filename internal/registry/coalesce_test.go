package registry

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"altroute/internal/core"
)

// TestCoalesceSharesOneComputation checks the core contract: N concurrent
// callers with the same key trigger exactly one fn execution and all
// receive its result with shared=true.
func TestCoalesceSharesOneComputation(t *testing.T) {
	var g Group[string, int]
	const n = 8
	var runs atomic.Int64
	release := make(chan struct{})
	attached := make(chan struct{}, n)

	var wg sync.WaitGroup
	results := make([]int, n)
	errs := make([]error, n)
	sharedFlags := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], sharedFlags[i], errs[i] = g.Do(context.Background(), context.Background(), "k",
				func(ctx context.Context) (int, error) {
					runs.Add(1)
					attached <- struct{}{}
					<-release
					return 42, nil
				})
		}(i)
	}
	// Wait until the single computation is running, give the joiners a
	// moment to attach, then release.
	<-attached
	for {
		g.mu.Lock()
		c := g.calls["k"]
		w := 0
		if c != nil {
			w = c.waiters
		}
		g.mu.Unlock()
		if w == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != 42 {
			t.Errorf("caller %d: (%d, %v), want (42, nil)", i, results[i], errs[i])
		}
		if !sharedFlags[i] {
			t.Errorf("caller %d: shared=false, want true (all %d coalesced)", i, n)
		}
	}
	st := g.Stats()
	if st.Leaders != 1 || st.Joins != n-1 || st.InFlight != 0 {
		t.Errorf("stats = %+v, want 1 leader, %d joins, 0 in flight", st, n-1)
	}
}

// TestWaiterCancelDetachesWithoutKillingComputation: a waiter whose
// context dies mid-flight returns immediately with its own error, while
// the shared computation keeps running and delivers to the remaining
// waiter.
func TestWaiterCancelDetachesWithoutKillingComputation(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	computeCancelled := make(chan error, 1)

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), context.Background(), "k",
			func(ctx context.Context) (int, error) {
				close(started)
				select {
				case <-release:
					return 7, nil
				case <-ctx.Done():
					computeCancelled <- context.Cause(ctx)
					return 0, ctx.Err()
				}
			})
		leaderDone <- err
	}()
	<-started

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(waiterCtx, context.Background(), "k", func(context.Context) (int, error) {
			t.Error("joiner must not start a second computation")
			return 0, nil
		})
		waiterDone <- err
	}()
	// Wait for the join to register, then cancel only the waiter.
	for {
		if g.Stats().Joins == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}

	// The computation must still be alive: leader gets the real result.
	select {
	case err := <-computeCancelled:
		t.Fatalf("computation was cancelled (%v) although the leader still waits", err)
	default:
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader got %v after waiter detached, want nil", err)
	}
	if st := g.Stats(); st.Detaches != 1 {
		t.Errorf("stats = %+v, want 1 detach", st)
	}
}

// TestLastWaiterOutCancelsComputation: when every waiter has detached,
// the shared computation's context is cancelled with
// ErrComputationCancelled so it can stop burning CPU.
func TestLastWaiterOutCancelsComputation(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	gotCause := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, context.Background(), "k",
			func(runCtx context.Context) (int, error) {
				close(started)
				<-runCtx.Done()
				gotCause <- context.Cause(runCtx)
				return 0, runCtx.Err()
			})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller got %v, want context.Canceled", err)
	}
	select {
	case cause := <-gotCause:
		if !errors.Is(cause, ErrComputationCancelled) {
			t.Fatalf("computation cancelled with cause %v, want ErrComputationCancelled", cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("computation was never cancelled after its last waiter left")
	}
}

// TestLeaderPanicPropagatesToAllWaiters: a panic inside fn is recovered
// once and every attached caller receives exactly one error wrapping
// core.ErrPanic; the process survives and the key is reusable.
func TestLeaderPanicPropagatesToAllWaiters(t *testing.T) {
	var g Group[string, int]
	const n = 4
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do(context.Background(), context.Background(), "k",
				func(context.Context) (int, error) {
					<-release
					panic("poisoned instance")
				})
		}(i)
	}
	for {
		if st := g.Stats(); st.Leaders == 1 && st.Joins == n-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, core.ErrPanic) {
			t.Errorf("caller %d got %v, want core.ErrPanic", i, err)
		} else if !strings.Contains(err.Error(), "poisoned instance") {
			t.Errorf("caller %d error %q does not carry the panic value", i, err)
		}
	}
	st := g.Stats()
	if st.Panics != 1 {
		t.Errorf("stats = %+v, want exactly 1 recovered panic for %d waiters", st, n)
	}

	// The key must be usable again: a fresh call runs a fresh fn.
	v, shared, err := g.Do(context.Background(), context.Background(), "k",
		func(context.Context) (int, error) { return 9, nil })
	if err != nil || v != 9 || shared {
		t.Errorf("post-panic Do = (%d, %v, %v), want (9, false, nil)", v, shared, err)
	}
}

// TestJoinAfterLastDetachStartsFresh: a caller arriving after the last
// waiter detached (while the doomed computation is still unwinding) must
// start a fresh computation, not join the cancelled one.
func TestJoinAfterLastDetachStartsFresh(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	blocked := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, context.Background(), "k",
			func(runCtx context.Context) (int, error) {
				close(started)
				<-runCtx.Done()
				<-blocked // hold the doomed call open past the detach
				return 0, runCtx.Err()
			})
		firstDone <- err
	}()
	<-started
	cancel()
	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("first caller got %v, want context.Canceled", err)
	}

	// The doomed computation is still blocked, but the detach retired its
	// call entry: this Do must lead a fresh computation.
	v, _, err := g.Do(context.Background(), context.Background(), "k",
		func(context.Context) (int, error) { return 5, nil })
	close(blocked)
	if err != nil || v != 5 {
		t.Fatalf("fresh caller got (%d, %v), want (5, nil)", v, err)
	}
	if st := g.Stats(); st.Leaders != 2 {
		t.Errorf("stats = %+v, want 2 leaders (no join onto the doomed call)", st)
	}
}
