package registry

import "testing"

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache[string, int](100)
	c.Add("a", 1, 40)
	c.Add("b", 2, 40)
	// Touch a so b becomes the LRU victim.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Add("c", 3, 40) // 120 > 100: evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries, 80 bytes", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 3 hits, 1 miss", st)
	}
}

func TestCacheOversizedEntryDropped(t *testing.T) {
	c := NewCache[string, int](100)
	c.Add("small", 1, 10)
	c.Add("huge", 2, 101)
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized entry should be dropped, not stored")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("oversized Add must not evict existing entries")
	}
}

func TestCacheReplaceAdjustsBytes(t *testing.T) {
	c := NewCache[string, int](100)
	c.Add("k", 1, 30)
	c.Add("k", 2, 50)
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Fatalf("Get(k) = %d, %v; want replaced value 2", v, ok)
	}
	if st := c.Stats(); st.Bytes != 50 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 50 bytes in 1 entry after replace", st)
	}
}

func TestCacheZeroCapacityDisabled(t *testing.T) {
	c := NewCache[string, int](0)
	c.Add("k", 1, 1)
	if _, ok := c.Get("k"); ok {
		t.Error("zero-capacity cache must never store")
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 0 entries, 1 miss", st)
	}
}

func TestCacheEvictsMultipleForLargeEntry(t *testing.T) {
	c := NewCache[string, int](100)
	c.Add("a", 1, 30)
	c.Add("b", 2, 30)
	c.Add("c", 3, 30)
	c.Add("big", 4, 90) // must evict a, b, c
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 3 || st.Bytes != 90 {
		t.Errorf("stats = %+v, want only big left after 3 evictions", st)
	}
	if _, ok := c.Get("big"); !ok {
		t.Error("big should be resident")
	}
}
