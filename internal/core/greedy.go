package core

import (
	"context"
	"fmt"

	"altroute/internal/graph"
)

// greedyEdge implements the paper's GreedyEdge baseline: while p* is not
// the exclusive shortest path, take the current shortest (or tied) s->d
// path and cut its lowest-weight edge that is not on p*.
func greedyEdge(ctx context.Context, p Problem, opts Options) (Result, error) {
	return naiveCutLoop(ctx, p, opts, func(viol graph.Path, pstarSet map[graph.EdgeID]struct{}) graph.EdgeID {
		best := graph.InvalidEdge
		bestW := 0.0
		for _, e := range viol.Edges {
			if !p.cuttable(e, pstarSet) {
				continue
			}
			w := p.Weight(e)
			if best == graph.InvalidEdge || w < bestW || (w == bestW && e < best) { //lint:allow floateq deterministic tie-break: exact ties fall back to edge ID
				best, bestW = e, w
			}
		}
		return best
	})
}

// greedyEig implements the paper's GreedyEig baseline: like GreedyEdge, but
// the cut edge is the one on the current shortest path with the highest
// eigenvector-centrality score to removal-cost ratio. Scores default to a
// single computation on the intact graph (PATHATTACK's formulation);
// Options.RecomputeEigen rescoring after every cut is available as an
// ablation.
func greedyEig(ctx context.Context, p Problem, opts Options) (Result, error) {
	scores := graph.EdgeEigenScores(p.G, graph.EigenOptions{})
	return naiveCutLoop(ctx, p, opts, func(viol graph.Path, pstarSet map[graph.EdgeID]struct{}) graph.EdgeID {
		if opts.RecomputeEigen {
			scores = graph.EdgeEigenScores(p.G, graph.EigenOptions{})
		}
		best := graph.InvalidEdge
		bestRatio := 0.0
		for _, e := range viol.Edges {
			if !p.cuttable(e, pstarSet) {
				continue
			}
			c := p.Cost(e)
			if c <= 0 {
				c = 1e-12 // zero-cost edges are always the best choice
			}
			ratio := scores[e] / c
			if best == graph.InvalidEdge || ratio > bestRatio || (ratio == bestRatio && e < best) { //lint:allow floateq deterministic tie-break: exact ties fall back to edge ID
				best, bestRatio = e, ratio
			}
		}
		return best
	})
}

// naiveCutLoop is the shared skeleton of the two naive baselines: generate
// a violating path, let pick choose one of its cuttable edges, cut it, and
// repeat. Cuts are monotone (never reconsidered), which is what makes these
// algorithms fast and sub-optimal.
func naiveCutLoop(ctx context.Context, p Problem, opts Options, pick func(graph.Path, map[graph.EdgeID]struct{}) graph.EdgeID) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	r := p.router(ctx)
	pstarSet := p.PStar.EdgeSet()
	budget := p.budgetOrInf()
	// Built before the first cut: cuts only disable edges, so the bounds
	// the oracle caches here (a reverse potential for the baseline, the
	// overlay target labels when the problem carries a metric) stay
	// admissible for every later round.
	orc := p.newOracle(ctx, r)

	tx := p.G.Begin()
	defer func() {
		// Rollback re-enables this run's cuts; the metric's affected cells
		// must be marked for repair or a later clique read would serve
		// stale (too-large) entries for the restored state.
		undone := tx.Disabled()
		tx.Rollback()
		orc.uncut(undone)
	}()

	var res Result
	total := 0.0
	for round := 0; ; round++ {
		injectRound(ctx)
		if round >= opts.MaxRounds {
			return Result{}, fmt.Errorf("%w: no solution within %d cuts", ErrInfeasible, opts.MaxRounds)
		}
		viol, violated := orc.violating()
		// The context check must precede the success test: a cancelled
		// oracle can report "no violation" spuriously.
		if ctx.Err() != nil {
			return Result{}, ctxErr(ctx)
		}
		if !violated {
			res.Removed = tx.Disabled()
			res.TotalCost = total
			res.Rounds = round
			res.ConstraintPaths = round
			return res, nil
		}
		e := pick(viol, pstarSet)
		if e == graph.InvalidEdge {
			return Result{}, fmt.Errorf("%w: violating path %v has no edge off p*", ErrInfeasible, viol)
		}
		c := p.Cost(e)
		if c < 0 {
			return Result{}, fmt.Errorf("%w: negative cost on edge %d", ErrInvalidProblem, e)
		}
		if total+c > budget {
			return Result{}, fmt.Errorf("%w: next cut (edge %d, cost %.3f) would exceed budget %.3f",
				ErrBudgetExceeded, e, c, p.Budget)
		}
		tx.Disable(e)
		total += c
	}
}
