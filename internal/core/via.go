package core

import (
	"fmt"

	"altroute/internal/graph"
)

// BuildViaPath constructs the attacker's alternative route for the paper's
// toll-road scenario (§II-A: "force victim vehicles onto a chosen road
// segment, such as a toll road"): the best simple s->d path that traverses
// the chosen edge, assembled from the shortest s->tail prefix, the edge
// itself, and the shortest head->d suffix. The suffix search bans the
// prefix's nodes so the result is simple.
//
// The returned path can be used directly as Problem.PStar; forcing it makes
// every optimally-routing victim travel the chosen segment.
func BuildViaPath(g *graph.Graph, s, d graph.NodeID, via graph.EdgeID, w graph.WeightFunc) (graph.Path, error) {
	if via < 0 || int(via) >= g.NumEdges() || g.EdgeDisabled(via) {
		return graph.Path{}, fmt.Errorf("%w: via edge %d is not a live edge", ErrInvalidProblem, via)
	}
	arc := g.Arc(via)
	r := graph.NewRouter(g)

	prefix, ok := r.ShortestPath(s, arc.From, w)
	if !ok {
		return graph.Path{}, fmt.Errorf("%w: no path from source %d to via tail %d", ErrInfeasible, s, arc.From)
	}

	viaHop := graph.Path{
		Nodes:  []graph.NodeID{arc.From, arc.To},
		Edges:  []graph.EdgeID{via},
		Length: w(via),
	}
	head, err := prefix.Concat(viaHop)
	if err != nil {
		return graph.Path{}, fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	if !head.IsSimple() {
		return graph.Path{}, fmt.Errorf("%w: shortest prefix to via edge %d revisits its head", ErrInfeasible, via)
	}

	// Find the suffix avoiding every node already used (except arc.To, the
	// suffix's start).
	suffix, ok := shortestAvoiding(r, arc.To, d, w, head.Nodes[:len(head.Nodes)-1])
	if !ok {
		return graph.Path{}, fmt.Errorf("%w: no simple path from via head %d to destination %d avoiding the prefix", ErrInfeasible, arc.To, d)
	}
	full, err := head.Concat(suffix)
	if err != nil {
		return graph.Path{}, fmt.Errorf("%w: %v", ErrInvalidProblem, err)
	}
	if !full.IsSimple() {
		return graph.Path{}, fmt.Errorf("%w: via path is not simple", ErrInfeasible)
	}
	return full, nil
}

// shortestAvoiding finds the shortest s->d path that avoids the given
// nodes. It reuses the router's temporary ban mechanism through a one-shot
// Yen-style query: ban the nodes, run Dijkstra.
func shortestAvoiding(r *graph.Router, s, d graph.NodeID, w graph.WeightFunc, avoid []graph.NodeID) (graph.Path, bool) {
	return r.ShortestPathAvoiding(s, d, w, avoid)
}
